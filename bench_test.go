// Benchmarks: one per paper figure/extension, each iterating a single
// representative run of that experiment's workload at paper scale. They
// measure the cost of regenerating the result, not the statistics — the
// `figures` command does the 40-run aggregation.
package agentmesh_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	agentmesh "repro"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/parallel"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/routing"
)

// mapWorld returns the shared canonical mapping network.
func mapWorld(b *testing.B) *agentmesh.World {
	b.Helper()
	w, err := agentmesh.MappingNetwork(1)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// benchMapping runs one mapping run per iteration.
func benchMapping(b *testing.B, sc agentmesh.MappingScenario) {
	w := mapWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := agentmesh.RunMapping(w, sc, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Finished {
			b.Fatal("run did not finish")
		}
	}
}

// benchRouting runs one 300-step routing run per iteration on a fresh
// world (the world trace is identical every time, as in the paper).
func benchRouting(b *testing.B, sc agentmesh.RoutingScenario) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := agentmesh.RoutingNetwork(1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := agentmesh.RunRouting(w, sc, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1SingleAgentMinar(b *testing.B) {
	benchMapping(b, agentmesh.MappingScenario{Agents: 1, Kind: agentmesh.PolicyConscientious})
}

func BenchmarkFig2SingleAgentStigmergy(b *testing.B) {
	benchMapping(b, agentmesh.MappingScenario{Agents: 1, Kind: agentmesh.PolicyConscientious, Stigmergy: true})
}

func BenchmarkFig3Cooperation(b *testing.B) {
	benchMapping(b, agentmesh.MappingScenario{Agents: 15, Kind: agentmesh.PolicyConscientious, Cooperate: true})
}

func BenchmarkFig4CooperationStigmergy(b *testing.B) {
	benchMapping(b, agentmesh.MappingScenario{
		Agents: 15, Kind: agentmesh.PolicyConscientious, Cooperate: true, Stigmergy: true,
	})
}

func BenchmarkFig5SuperVsConscientious(b *testing.B) {
	// The expensive end of the Fig 5 sweep: 40 super-conscientious agents
	// whose meetings merge knowledge every step.
	benchMapping(b, agentmesh.MappingScenario{
		Agents: 40, Kind: agentmesh.PolicySuperConscientious, Cooperate: true,
	})
}

func BenchmarkFig6SuperStigmergy(b *testing.B) {
	benchMapping(b, agentmesh.MappingScenario{
		Agents: 40, Kind: agentmesh.PolicySuperConscientious, Cooperate: true, Stigmergy: true,
	})
}

func BenchmarkFig7OldestNodeConnectivity(b *testing.B) {
	benchRouting(b, agentmesh.RoutingScenario{Agents: 100, Kind: agentmesh.PolicyOldestNode})
}

func BenchmarkFig8PopulationSweep(b *testing.B) {
	// The expensive end of the Fig 8 sweep.
	benchRouting(b, agentmesh.RoutingScenario{Agents: 200, Kind: agentmesh.PolicyOldestNode})
}

func BenchmarkFig9HistorySweep(b *testing.B) {
	benchRouting(b, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, HistorySize: 64,
	})
}

func BenchmarkFig10RandomComm(b *testing.B) {
	benchRouting(b, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyRandom, Communicate: true,
	})
}

func BenchmarkFig11OldestComm(b *testing.B) {
	benchRouting(b, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true,
	})
}

// Instrumented twins of the heaviest figure benchmarks: same workloads
// with a live metrics registry attached, pinning the cost of the
// instrumentation layer (budget: <5% over the uninstrumented runs).

func BenchmarkFig8PopulationSweepInstrumented(b *testing.B) {
	benchRouting(b, agentmesh.RoutingScenario{
		Agents: 200, Kind: agentmesh.PolicyOldestNode,
		Metrics: agentmesh.NewMetricsRegistry(),
	})
}

func BenchmarkFig11OldestCommInstrumented(b *testing.B) {
	benchRouting(b, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true,
		Metrics: agentmesh.NewMetricsRegistry(),
	})
}

func BenchmarkExtStigmergicRouting(b *testing.B) {
	benchRouting(b, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true, Stigmergy: true,
	})
}

func BenchmarkExtEpsilonSuper(b *testing.B) {
	benchMapping(b, agentmesh.MappingScenario{
		Agents: 40, Kind: agentmesh.PolicySuperConscientious, Cooperate: true, Epsilon: 0.2,
	})
}

func BenchmarkExtBaselines(b *testing.B) {
	// Regenerating the overhead comparison is dominated by the network
	// generation plus one flooding pass; measure via the Figure API.
	if testing.Short() {
		b.Skip("extC regenerates multiple settings per iteration")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := agentmesh.Figure("extC", agentmesh.ExperimentConfig{Runs: 1, Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtDelivery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := agentmesh.RoutingNetwork(1)
		if err != nil {
			b.Fatal(err)
		}
		gen := agentmesh.NewTrafficGen(5, 64, 100, uint64(i))
		sc := agentmesh.RoutingScenario{
			Agents: 100, Kind: agentmesh.PolicyOldestNode, Observer: gen.Step,
		}
		if _, err := agentmesh.RunRouting(w, sc, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkGenerationMapping300(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := agentmesh.MappingNetwork(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkGenerationRouting250(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := agentmesh.RoutingNetwork(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Replication-batch benchmarks: one whole RunMany batch (8 runs) per
// iteration, sequential versus parallel across the machine's cores. The
// parallel variant grants the executor budget NumCPU-1 extra workers
// explicitly, so the measurement reflects the hardware it runs on — on a
// single-core host it degrades to the sequential path by design, and the
// recorded speedup is honestly ~1x.

func benchBatch(b *testing.B, runWorkers int, batch func() error) {
	if runWorkers > 1 {
		old := parallel.Budget()
		parallel.SetBudget(runtime.NumCPU() - 1)
		defer parallel.SetBudget(old)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := batch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMappingBatch(b *testing.B) {
	worldFor := func(int) (*agentmesh.World, error) { return agentmesh.MappingNetwork(1) }
	for _, bc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", runtime.NumCPU()}} {
		b.Run(bc.name, func(b *testing.B) {
			sc := agentmesh.MappingScenario{
				Agents: 15, Kind: agentmesh.PolicyConscientious, Cooperate: true,
				RunWorkers: bc.workers,
			}
			benchBatch(b, bc.workers, func() error {
				_, err := agentmesh.RunMappingBatch(worldFor, sc, 8, 7)
				return err
			})
		})
	}
}

func BenchmarkRoutingBatch(b *testing.B) {
	worldFor := func(int) (*agentmesh.World, error) { return agentmesh.RoutingNetwork(1) }
	for _, bc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", runtime.NumCPU()}} {
		b.Run(bc.name, func(b *testing.B) {
			sc := agentmesh.RoutingScenario{
				Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true,
				Steps: 120, RunWorkers: bc.workers,
			}
			benchBatch(b, bc.workers, func() error {
				_, err := agentmesh.RunRoutingBatch(worldFor, sc, 8, 7)
				return err
			})
		})
	}
}

func BenchmarkParallelVsSequentialMapping(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "sequential"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			w := mapWorld(b)
			sc := agentmesh.MappingScenario{
				Agents: 40, Kind: agentmesh.PolicyConscientious,
				Cooperate: true, Workers: workers,
			}
			if workers == 0 {
				sc.Workers = 8
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := agentmesh.RunMapping(w, sc, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchStepWorld builds a raw dynamic world at the paper's MANET density
// (scaled from the 250-node routing arena): half the nodes roam under the
// random-waypoint model — local hops with pause times, so at any step a
// fraction of the fleet is mid-leg and the rest is dwelling — half are
// stationary, and half of the stationary nodes carry decaying batteries.
// That is the mix the incremental topology engine classifies into
// moved-node box scans, dwell-time expiry checks, and decay cursors.
func benchStepWorld(b *testing.B, n int) *network.World {
	b.Helper()
	s := rng.New(uint64(n))
	side := 150 * math.Sqrt(float64(n)/250) // constant node density as n grows
	arena := geom.Square(side)
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: s.Range(0, side), Y: s.Range(0, side)}
		if i%4 == 1 {
			radios[i] = radio.NewBattery(s.Range(10, 20), 0.0005, 0.6)
		} else {
			radios[i] = radio.New(s.Range(10, 20))
		}
		if i%2 == 0 {
			pause := 40 + int(s.Intn(81)) // dwell 40-120 steps between hops
			movers[i] = mobility.NewLocalWaypoint(arena, 30, 0.5, 3, pause, s.Child(uint64(i)))
		} else {
			movers[i] = mobility.Static{}
		}
	}
	w, err := network.NewWorld(network.Config{
		Arena: arena, Positions: pos, Radios: radios, Movers: movers,
		Gateways: []network.NodeID{0, 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkWorldStep measures raw per-step topology maintenance at
// growing network sizes with mover fraction 0.5. mode=rebuild forces the
// pre-incremental full per-step recompute; mode=incremental is the
// churn-proportional engine (the default for dynamic worlds); mode=sharded
// steps the incremental engine as S concurrent spatial bands with
// deterministic halo exchange; mode=replay applies a pre-recorded
// trajectory — no mobility RNG, no disc scans, no grid — the engine the
// sweep harness amortises across replications. All modes produce
// bit-identical topologies (pinned by the equivalence and fuzz tests in
// internal/network), so the ratios are pure maintenance cost. The
// n=100000 tier adds the sharded modes — that is the scale where per-step
// work is large enough for intra-step parallelism to pay.
func BenchmarkWorldStep(b *testing.B) {
	benchWorldStep := func(b *testing.B, n, shards int, rebuild bool) {
		w := benchStepWorld(b, n)
		w.SetFullRebuild(rebuild)
		if shards > 1 {
			w.SetShardWorkers(shards)
			old := parallel.Budget()
			parallel.SetBudget(runtime.NumCPU() - 1)
			defer parallel.SetBudget(old)
		}
		// Warm scratch storage and let the waypoint fleet settle into
		// its steady-state moving/dwelling mix before timing.
		for i := 0; i < 150; i++ {
			w.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step()
		}
	}
	// benchWorldStepReplay records `record` steps of the same warmed world
	// once (untimed), then times pure delta application on replay worlds,
	// re-arming a fresh one with the timer stopped whenever the recording
	// is exhausted.
	benchWorldStepReplay := func(b *testing.B, n, record int) {
		w := benchStepWorld(b, n)
		for i := 0; i < 150; i++ {
			w.Step()
		}
		traj, err := network.RecordTrajectory(w, record, 0)
		if err != nil {
			b.Fatal(err)
		}
		rw, err := traj.World()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rw.TrajectoryRemaining() == 0 {
				b.StopTimer()
				if rw, err = traj.World(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			rw.Step()
		}
	}
	for _, n := range []int{500, 2000, 8000} {
		for _, mode := range []string{"rebuild", "incremental"} {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				benchWorldStep(b, n, 1, mode == "rebuild")
			})
		}
	}
	for _, n := range []int{500, 8000} {
		b.Run(fmt.Sprintf("n=%d/mode=replay", n), func(b *testing.B) {
			benchWorldStepReplay(b, n, 600)
		})
	}
	const big = 100000
	for _, mode := range []string{"rebuild", "incremental"} {
		b.Run(fmt.Sprintf("n=%d/mode=%s", big, mode), func(b *testing.B) {
			benchWorldStep(b, big, 1, mode == "rebuild")
		})
	}
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d/mode=sharded/S=%d", big, s), func(b *testing.B) {
			benchWorldStep(b, big, s, false)
		})
	}
	// 256 recorded steps keeps the n=100000 recording's memory bounded
	// while still amortising the untimed re-arm across the timed loop.
	b.Run(fmt.Sprintf("n=%d/mode=replay", big), func(b *testing.B) {
		benchWorldStepReplay(b, big, 256)
	})
}

// benchConnectivityTables seeds realistic routing state for the
// measurement benchmarks: every node that can reach a gateway over the
// current topology gets one shortest-path entry pointing at its BFS
// parent, like a converged agent fleet would leave behind.
func benchConnectivityTables(b *testing.B, w *network.World) *routing.Tables {
	b.Helper()
	n := w.N()
	ts := routing.NewTables(n, 2)
	topo := w.Topology()
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	parent := make([]network.NodeID, n)
	for i := range dist {
		dist[i] = inf
	}
	for _, g := range w.Gateways() {
		dist[g] = 0
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			for _, v := range topo.Out(network.NodeID(u)) {
				if dist[v] != inf && dist[v]+1 < dist[u] {
					dist[u] = dist[v] + 1
					parent[u] = v
					changed = true
				}
			}
		}
	}
	gw := w.Gateways()[0]
	for u := 0; u < n; u++ {
		if dist[u] != inf && dist[u] > 0 {
			ts.Update(network.NodeID(u), network.Entry{
				Gateway: gw, NextHop: parent[u], Hops: dist[u], Updated: 0,
			})
		}
	}
	return ts
}

// BenchmarkConnectivity measures the per-step cost of the routing
// harness's measurement phase — LocalConnectivity, end-to-end
// Connectivity, ConnectivityToGateways, and Staleness — over pre-seeded
// tables on a stepping world with a steady trickle of table writes.
// mode=full computes all four from scratch each step (the pre-incremental
// behaviour); mode=incr is the churn-proportional Meter, fed by the
// topology delta stream and table write tracking. The two are
// bit-identical at every step (pinned by the equivalence, property, and
// fuzz tests in internal/routing), so the ratio is pure measurement cost.
// World stepping and the writes happen with the timer stopped; only the
// measurement is timed. Acceptance floor: >=3x at n=8000 with 0 allocs/op
// in steady state.
func BenchmarkConnectivity(b *testing.B) {
	benchConn := func(b *testing.B, n int, incr bool) {
		w := benchStepWorld(b, n)
		for i := 0; i < 150; i++ {
			w.Step()
		}
		ts := benchConnectivityTables(b, w)
		gws := w.Gateways()
		s := rng.New(uint64(n) + 1)
		var scratch routing.Scratch
		var meter *routing.Meter
		if incr {
			meter = routing.NewMeter(w, ts)
		}
		step := 0
		iter := func(timed bool) {
			if timed {
				b.StopTimer()
			}
			w.Step()
			step++
			// The write mix mirrors a converged fleet: agents mostly refresh
			// the route a node already holds (freshest-wins timestamps), and
			// occasionally rewire a node through a different current
			// neighbour — deposits always name real links.
			for k := 0; k < 32; k++ {
				u := network.NodeID(s.Intn(n))
				e, ok := ts.Best(u)
				if !ok || k%8 == 0 {
					nbrs := w.Topology().Out(u)
					if len(nbrs) == 0 {
						continue
					}
					e = network.Entry{
						Gateway: gws[s.Intn(len(gws))], NextHop: nbrs[s.Intn(len(nbrs))],
						Hops: 1 + s.Intn(9),
					}
				}
				e.Updated = step
				ts.Update(u, e)
			}
			if timed {
				b.StartTimer()
			}
			if incr {
				meter.Measure(step)
			} else {
				routing.LocalConnectivity(w, ts)
				scratch.Connectivity(w, ts)
				w.ConnectivityToGateways()
				routing.Staleness(w, ts, step)
			}
		}
		// Warm-up: let every mirror, scratch, and reach buffer grow to its
		// steady-state footprint before timing starts. The gated world
		// (n=8000, where the 0 allocs/op floor applies) needs far longer:
		// mirror-row capacities ratchet to each node's in-degree high-water
		// mark, and the movers take a few thousand steps to sweep enough of
		// the field for those marks to plateau.
		warm := 300
		if incr && n == 8000 {
			warm = 3000
		}
		for i := 0; i < warm; i++ {
			iter(false)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			iter(true)
		}
	}
	for _, n := range []int{500, 8000, 100000} {
		for _, mode := range []string{"full", "incr"} {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				benchConn(b, n, mode == "incr")
			})
		}
	}
}
