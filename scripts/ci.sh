#!/usr/bin/env bash
# CI gate: vet, build, full test suite under the race detector, and a
# one-iteration benchmark smoke so the per-figure benchmarks stay runnable.
# Usage: scripts/ci.sh  (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== parallel determinism gate (GOMAXPROCS=2 and NumCPU, under -race)"
# The full suite above ran at the host's default GOMAXPROCS; re-run the
# executor equivalence and pinned-batch tests at a forced 2 so a many-core
# host also exercises the constrained-budget schedule (and a 1-core host
# exercises a parallel one).
GOMAXPROCS=2 go test -race -run 'ParallelEquivalence|ParallelDeterminism|ParallelSharedWorld|BatchPinned' \
  . ./internal/routing ./internal/mapping
go test -race -run 'ParallelEquivalence|ParallelDeterminism' \
  . ./internal/routing ./internal/mapping

echo "== incremental-vs-rebuild topology equivalence gate (-race)"
# The full -race suite above already runs these, but the equivalence of the
# incremental topology engine against the full per-step rebuild is a
# correctness cornerstone (bit-identical graphs under mobility, decay, and
# mode toggles), so it gets an explicit named gate that fails loudly on
# its own.
go test -race -count=1 \
  -run 'IncrementalMatchesFullRebuild|IncrementalModeToggle|IncrementalChurnCounters|WorldStepZeroAllocs' \
  ./internal/network

echo "== sharded-stepping determinism gate (GOMAXPROCS=2 and NumCPU, under -race)"
# Spatially sharded stepping must stay bit-identical to the sequential
# incremental path at every shard count and any worker budget. Run the
# equivalence/determinism/snapshot tests under the race detector twice: at
# a forced GOMAXPROCS=2 (a many-core host exercises the starved-budget
# schedule, a 1-core host a parallel one) and at the host default.
GOMAXPROCS=2 go test -race -count=1 -run 'Sharded|SnapshotShardLayout' ./internal/network
go test -race -count=1 -run 'Sharded|SnapshotShardLayout' ./internal/network

echo "== fault-injection gate (churn/partition equivalence + snapshot round-trip, -race)"
# The fault engine must leave every stepping path bit-identical: the
# engine-level equivalence test drives every fault preset through the
# incremental, full-rebuild, and sharded engines against a brute-force
# referee, and the harness-level test pins aggregates across
# runworkers x shardworkers in {1,2,4} (covering the 1 and 4 shard
# settings). The snapshot tests gate the versioned faulted round-trip.
GOMAXPROCS=2 go test -race -count=1 \
  -run 'FaultedEnginesMatch|FaultedSnapshotRoundTrip|SnapshotVersionRejected' \
  ./internal/network
go test -race -count=1 \
  -run 'FaultedRunEquivalence|FaultCountersPinned|RoutingChurnResultPinned' \
  . ./internal/network ./internal/routing

echo "== record/replay determinism gate"
# A recorded binary log must reconstruct the world bit-identically from
# snapshot anchors + deltas: record one small dynamic run and one faulted
# (churn) run, then verify each in full lockstep and at a mid-run seek.
replaydir=$(mktemp -d)
go build -o "$replaydir" ./cmd/routing ./cmd/replay
"$replaydir/routing" -nodes 60 -edges 400 -gateways 4 -agents 20 -steps 80 \
  -runs 1 -anchorevery 25 -binlog "$replaydir/run.alog" >/dev/null
# grep without -q so it drains the pipe to EOF: -q exits at the first
# match, and replay prints a summary line after it, so the writer can
# take a SIGPIPE (exit 141 under pipefail) depending on scheduling.
"$replaydir/replay" -log "$replaydir/run.alog" -verify | grep '^verify ok' >/dev/null
"$replaydir/replay" -log "$replaydir/run.alog" -step 40 -verify | grep '^verify step=40 ok' >/dev/null
"$replaydir/routing" -nodes 60 -edges 400 -gateways 4 -agents 20 -steps 120 \
  -runs 1 -anchorevery 30 -faults churn -binlog "$replaydir/churn.alog" >/dev/null
"$replaydir/replay" -log "$replaydir/churn.alog" -verify | grep '^verify ok' >/dev/null
"$replaydir/replay" -log "$replaydir/churn.alog" -step 77 -verify | grep '^verify step=77 ok' >/dev/null
rm -rf "$replaydir"

echo "== corrupt-log gate (framing fuzz seeds + corruption table, -race)"
# Truncated, bit-flipped, version-bumped, and garbage logs must produce
# clean errors — never panics or runaway allocations. The fuzz targets run
# their seed corpus as ordinary tests here; scheduled fuzzing can go
# deeper with: go test -fuzz FuzzLogReader ./internal/trace
go test -race -count=1 -run 'TestBinlogCorruption|FuzzLogReader|FuzzRead|LogWriterFailFast|WriterFailFast' \
  ./internal/trace

echo "== replay determinism tests (pinned run + faulted round-trips)"
go test -count=1 -run 'TestReplayMatchesPinnedRun' .
go test -count=1 -run 'TestLogRoundTrip' ./internal/replay

echo "== trajectory replay gate (cached-stepping equivalence + decode fuzz seeds, -race)"
# The record-once/replay-many engine must stay bit-identical to live
# stepping at every worker setting, and its binary decoder must reject
# corrupt trajectories cleanly (FuzzTrajectoryDecode runs its seed corpus
# as an ordinary test here; go test -fuzz FuzzTrajectoryDecode goes deeper).
go test -race -count=1 -run 'Trajectory|StepRecorder|RunManyCached|ReconstructAt' \
  ./internal/network ./internal/mapping ./internal/routing ./internal/replay

echo "== incremental-measurement equivalence gate (-race)"
# The churn-proportional measurement meter must report bit-identical
# numbers to the full scratch recompute at every step — across fault
# presets, stepping engines, worker grids, arbitrary table mutations, and
# skipped measures. These run in the full -race suite above too, but they
# pin the default measurement path of every routing run, so they get an
# explicit named gate that fails loudly on its own.
go test -race -count=1 \
  -run 'MeterMatchesFullMeasure|MeterRunManyGrids|MeterPropertyRandomMutations|MeterSteadyStateAllocs|FuzzMeterEquivalence' \
  ./internal/routing
go test -race -count=1 -run 'ConnTracker|DynReach' ./internal/network ./internal/graph

echo "== cached-sweep byte-identity gate (worldcache on/off, pointworkers 1 and 4)"
# The whole point of the trajectory cache is that nobody can tell it is on:
# for both scenarios, clean and faulted, the cached sweep's CSV must be
# byte-identical to the live-stepping sweep's at any point parallelism.
sweepdir=$(mktemp -d)
go build -o "$sweepdir" ./cmd/sweep
for sc in routing mapping; do
  for preset in "" churn; do
    "$sweepdir/sweep" -scenario "$sc" -param agents -values 5,10 -runs 2 \
      ${preset:+-faults "$preset"} -worldcache=0 > "$sweepdir/live.csv"
    for pw in 1 4; do
      "$sweepdir/sweep" -scenario "$sc" -param agents -values 5,10 -runs 2 \
        ${preset:+-faults "$preset"} -worldcache=1 -pointworkers "$pw" > "$sweepdir/cached.csv"
      diff "$sweepdir/live.csv" "$sweepdir/cached.csv" \
        || { echo "FAIL: cached sweep ($sc faults='$preset' pointworkers=$pw) differs from live" >&2; exit 1; }
    done
  done
done
rm -rf "$sweepdir"

echo "== benchmark smoke (1 iteration each)"
go test -run '^$' -bench . -benchtime=1x -benchmem .

echo "== bench.sh smoke (artifact pipeline, temp output)"
benchout=$(mktemp -d)
BENCH_OUT="$benchout" scripts/bench.sh 1x >/dev/null
test -s "$benchout/BENCH_parallel.json"
grep -q '"speedup_vs_sequential"' "$benchout/BENCH_parallel.json"
test -s "$benchout/BENCH_incremental.json"
grep -q '"speedup_vs_rebuild"' "$benchout/BENCH_incremental.json"
test -s "$benchout/BENCH_shard.json"
grep -q '"speedup_vs_incremental"' "$benchout/BENCH_shard.json"
test -s "$benchout/BENCH_trace.json"
grep -q '"jsonl_over_binary"' "$benchout/BENCH_trace.json"
test -s "$benchout/BENCH_trajectory.json"
grep -q '"speedup_vs_live"' "$benchout/BENCH_trajectory.json"
test -s "$benchout/BENCH_connectivity.json"
grep -q '"speedup_vs_full"' "$benchout/BENCH_connectivity.json"
rm -rf "$benchout"

echo "== metrics exposition smoke"
go run ./cmd/routing -runs 1 -metrics /tmp/ci-metrics.txt >/dev/null
grep -q '^routing_moves_total ' /tmp/ci-metrics.txt
rm -f /tmp/ci-metrics.txt

echo "CI OK"
