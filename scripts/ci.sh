#!/usr/bin/env bash
# CI gate: vet, build, full test suite under the race detector, and a
# one-iteration benchmark smoke so the per-figure benchmarks stay runnable.
# Usage: scripts/ci.sh  (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== benchmark smoke (1 iteration each)"
go test -run '^$' -bench . -benchtime=1x -benchmem .

echo "== metrics exposition smoke"
go run ./cmd/routing -runs 1 -metrics /tmp/ci-metrics.txt >/dev/null
grep -q '^routing_moves_total ' /tmp/ci-metrics.txt
rm -f /tmp/ci-metrics.txt

echo "CI OK"
