#!/usr/bin/env bash
# Replication benchmark harness: runs the RunMany batch benchmarks
# (sequential vs parallel executor) plus a sweep wall-clock comparison, and
# emits both the raw `go test -bench` output (results/bench_parallel.txt)
# and a machine-readable summary (results/BENCH_parallel.json) with
# per-benchmark ns/op, allocs/op, and parallel-over-sequential speedup.
# It then runs the per-step topology maintenance benchmarks (full rebuild
# vs incremental engine) and emits results/bench_incremental.txt plus
# results/BENCH_incremental.json with incremental-over-rebuild speedups;
# that JSON is also copied to the repo root as BENCH_incremental.json.
# Finally it runs the n=100000 spatial-sharding tier (rebuild vs
# incremental vs sharded at S=1,2,4,8) and emits results/bench_shard.txt
# plus results/BENCH_shard.json (root copy BENCH_shard.json) with
# sharded-over-incremental speedups and the host CPU count, since shard
# scaling is budget-limited: on a single-core host every shard phase
# degrades to sequential and the honest speedup is ~1x. The trajectory
# tier (results/BENCH_trajectory.json, root copy BENCH_trajectory.json)
# compares live incremental stepping against recorded-trajectory replay
# at n=500/8000/100000 plus an end-to-end cached-vs-live sweep timing,
# with a >=2x replay floor at n=8000. The connectivity tier
# (results/BENCH_connectivity.json, root copy BENCH_connectivity.json)
# compares the full-scratch measurement phase against the incremental
# meter at n=500/8000/100000, with >=3x and 0 allocs/op floors at n=8000.
# Usage: scripts/bench.sh [benchtime]   (default 5x; `scripts/bench.sh 1x`
# is the CI smoke run, which skips the sweep timing). The world-step
# benchmarks default to 600 fixed iterations for stable per-step numbers;
# override with WORLD_BENCHTIME. Set BENCH_OUT to redirect the artifacts
# away from results/ (CI smokes into a temp dir so the committed numbers
# survive).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-5x}"
out="${BENCH_OUT:-results}"
raw="$out/bench_parallel.txt"
json="$out/BENCH_parallel.json"
mkdir -p "$out"

{
  echo "# RunMany replication benchmarks — sequential vs parallel executor"
  echo "# host: $(nproc) CPU(s), $(go version | cut -d' ' -f3-)"
  echo "# benchtime: $benchtime"
  echo "#"
  echo "# NOTE: the parallel variant grants the executor budget NumCPU-1 extra"
  echo "# workers, so on a single-core host it degrades to the sequential path"
  echo "# and the recorded speedup is honestly ~1x. Replication is"
  echo "# embarrassingly parallel (independent runs, ordered reduction), so an"
  echo "# 8-core host runs the 8-run batches in ~ceil(8/8)=1 run-times instead"
  echo "# of 8 — i.e. the >=4x target engages once >=4 cores grant tokens."
  go test -run '^$' -benchtime "$benchtime" -benchmem \
    -bench 'Fig8PopulationSweep$|Fig11OldestComm$|MappingBatch|RoutingBatch' .
} | tee "$raw"

awk '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (!(name in ns)) order[n++] = name
  ns[name] = $3
  allocs[name] = $7
}
END {
  printf "[\n"
  for (i = 0; i < n; i++) {
    nm = order[i]
    base = nm
    sub(/\/parallel$/, "/sequential", base)
    sp = (nm ~ /\/parallel$/ && ns[base] + 0 > 0) ? ns[base] / ns[nm] : 1.0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"speedup_vs_sequential\": %.3f}%s\n", \
      nm, ns[nm], allocs[nm], sp, (i < n - 1 ? "," : "")
  }
  printf "]\n"
}' "$raw" > "$json"
echo "wrote $json"

# --- per-step topology maintenance: full rebuild vs incremental engine ---
# One world step at n nodes, mover fraction 0.5 (local random-waypoint with
# pause times; a quarter of the fleet on decaying batteries). mode=rebuild
# is the pre-incremental full per-step recompute, mode=incremental the
# churn-proportional engine; both produce bit-identical topologies.
world_benchtime="${WORLD_BENCHTIME:-600x}"
if [ "$benchtime" = "1x" ]; then
  world_benchtime="1x"
fi
iraw="$out/bench_incremental.txt"
ijson="$out/BENCH_incremental.json"

{
  echo "# Per-step topology maintenance — full rebuild vs incremental engine"
  echo "# host: $(nproc) CPU(s), $(go version | cut -d' ' -f3-)"
  echo "# benchtime: $world_benchtime"
  echo "#"
  echo "# mode=rebuild recomputes every link from the spatial grid each step"
  echo "# (the pre-incremental behaviour); mode=incremental repairs the"
  echo "# previous step's graph in place, touching only moved nodes and"
  echo "# decay-expired links. Equivalence and fuzz tests in internal/network"
  echo "# pin the two modes bit-identical, so the ratio is pure maintenance"
  echo "# cost. Acceptance floor: >=3x at n=8000."
  go test -run '^$' -benchtime "$world_benchtime" -benchmem \
    -bench 'BenchmarkWorldStep/n=(500|2000|8000)/' .
} | tee "$iraw"

awk '
/^BenchmarkWorldStep/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (!(name in ns)) order[n++] = name
  ns[name] = $3
  allocs[name] = $7
}
END {
  printf "[\n"
  for (i = 0; i < n; i++) {
    nm = order[i]
    base = nm
    sub(/mode=incremental$/, "mode=rebuild", base)
    sp = (nm ~ /mode=incremental$/ && ns[nm] + 0 > 0) ? ns[base] / ns[nm] : 1.0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"speedup_vs_rebuild\": %.3f}%s\n", \
      nm, ns[nm], allocs[nm], sp, (i < n - 1 ? "," : "")
  }
  printf "]\n"
}' "$iraw" > "$ijson"
# Mirror the JSON at the repo root for dashboard pickup — but only on a
# real run into results/, so CI smokes (BENCH_OUT=tempdir, 1 iteration)
# never clobber the committed numbers.
if [ "$out" = "results" ]; then
  cp "$ijson" BENCH_incremental.json
  echo "wrote $ijson (copied to ./BENCH_incremental.json)"
else
  echo "wrote $ijson"
fi

# --- spatial sharding: n=100000, rebuild vs incremental vs sharded S=1..8 ---
# The sharded modes step the incremental engine as S concurrent vertical
# bands with deterministic halo exchange (bit-identical topologies at any
# S, pinned by internal/network's equivalence/fuzz/race tests). Shard
# workers draw from the shared parallel budget, so the measured scaling is
# bounded by the host's cores; the emitted JSON records that count.
shard_benchtime="${SHARD_BENCHTIME:-150x}"
if [ "$benchtime" = "1x" ]; then
  shard_benchtime="1x"
fi
sraw="$out/bench_shard.txt"
sjson="$out/BENCH_shard.json"

{
  echo "# Per-step topology maintenance at n=100000 — spatial sharding tier"
  echo "# host: $(nproc) CPU(s), $(go version | cut -d' ' -f3-)"
  echo "# benchtime: $shard_benchtime"
  echo "#"
  echo "# mode=sharded/S=k partitions the grid into k vertical bands stepped"
  echo "# concurrently (budget permitting); cross-band edges merge through"
  echo "# per-shard halo buffers in fixed order, so every mode below yields"
  echo "# the same topology bit for bit. speedup_vs_incremental is measured"
  echo "# against this run's mode=incremental baseline; with fewer cores than"
  echo "# shards the surplus bands run inline and the ratio approaches 1x."
  go test -run '^$' -benchtime "$shard_benchtime" -benchmem \
    -bench 'BenchmarkWorldStep/n=100000/' .
} | tee "$sraw"

awk -v cpus="$(nproc)" '
/^BenchmarkWorldStep/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (!(name in ns)) order[n++] = name
  ns[name] = $3
  allocs[name] = $7
  if (name ~ /mode=incremental$/) base_ns = $3
}
END {
  printf "[\n"
  for (i = 0; i < n; i++) {
    nm = order[i]
    sp = (base_ns + 0 > 0 && ns[nm] + 0 > 0) ? base_ns / ns[nm] : 1.0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"speedup_vs_incremental\": %.3f, \"cpus\": %d}%s\n", \
      nm, ns[nm], allocs[nm], sp, cpus, (i < n - 1 ? "," : "")
  }
  printf "]\n"
}' "$sraw" > "$sjson"
if [ "$out" = "results" ]; then
  cp "$sjson" BENCH_shard.json
  echo "wrote $sjson (copied to ./BENCH_shard.json)"
else
  echo "wrote $sjson"
fi

# --- durable event logs: encode/decode throughput + Fig8 trace density ---
# BenchmarkTraceEncode/Decode serialise a routing-shaped stream (events +
# world deltas) through the JSONL debug format and the compressed binary
# log. The size tier then records ONE canonical 250-node routing run (the
# Fig 8 network) both ways and compares files on disk; the binary log must
# be >=5x smaller than the JSONL even though it additionally carries the
# replayable world stream. That floor is enforced here, so CI's bench
# smoke fails if the encoding regresses.
traw="$out/bench_trace.txt"
tjson="$out/BENCH_trace.json"

{
  echo "# Trace serialisation — JSONL debug format vs compressed binary log"
  echo "# host: $(nproc) CPU(s), $(go version | cut -d' ' -f3-)"
  echo "# benchtime: $benchtime"
  go test -run '^$' -benchtime "$benchtime" -benchmem \
    -bench 'BenchmarkTrace(Encode|Decode)' ./internal/trace
} | tee "$traw"

tracedir=$(mktemp -d)
go run ./cmd/routing -runs 1 -trace "$tracedir/fig8.jsonl" -binlog "$tracedir/fig8.alog" >/dev/null
jsonl_bytes=$(wc -c < "$tracedir/fig8.jsonl")
binary_bytes=$(wc -c < "$tracedir/fig8.alog")
rm -rf "$tracedir"
echo "fig8 trace: jsonl=${jsonl_bytes}B binary=${binary_bytes}B" | tee -a "$traw"

awk -v jb="$jsonl_bytes" -v bb="$binary_bytes" '
/^BenchmarkTrace/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (!(name in ns)) order[n++] = name
  ns[name] = $3
  for (i = 4; i < NF; i++) {
    if ($(i + 1) == "MB/s") mbs[name] = $i
    if ($(i + 1) == "bytes/event") bpe[name] = $i
    if ($(i + 1) == "allocs/op") allocs[name] = $i
  }
}
END {
  printf "[\n"
  for (i = 0; i < n; i++) {
    nm = order[i]
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"mb_per_s\": %s, \"allocs_per_op\": %s", \
      nm, ns[nm], mbs[nm], allocs[nm]
    if (nm in bpe) printf ", \"bytes_per_event\": %s", bpe[nm]
    printf "},\n"
  }
  printf "  {\"name\": \"fig8_trace_size\", \"jsonl_bytes\": %d, \"binary_bytes\": %d, \"jsonl_over_binary\": %.3f}\n", \
    jb, bb, jb / bb
  printf "]\n"
}' "$traw" > "$tjson"
if [ "$out" = "results" ]; then
  cp "$tjson" BENCH_trace.json
  echo "wrote $tjson (copied to ./BENCH_trace.json)"
else
  echo "wrote $tjson"
fi

ratio_ok=$(awk -v jb="$jsonl_bytes" -v bb="$binary_bytes" 'BEGIN { print (jb >= 5 * bb) ? 1 : 0 }')
if [ "$ratio_ok" != 1 ]; then
  echo "FAIL: binary log is only $(awk -v jb="$jsonl_bytes" -v bb="$binary_bytes" 'BEGIN{printf "%.2f", jb/bb}')x smaller than JSONL (floor: 5x)" >&2
  exit 1
fi

# --- trajectory replay: record-once, replay-many stepping engine ---
# mode=replay steps a world by applying a pre-recorded delta — no mobility
# RNG, no disc scans, no spatial grid. This is the engine cmd/sweep and the
# RunManyCached harnesses amortise across replications: record the world's
# evolution once, replay it for every point and run. Results are
# bit-identical to live stepping (pinned by the equivalence tests in
# internal/network, internal/mapping, internal/routing, and ci.sh's
# cached-sweep byte-identity gate). Acceptance floor: replay >=2x faster
# than the live incremental engine at n=8000 (skipped on the 1x smoke).
traj_benchtime="${WORLD_BENCHTIME:-600x}"
if [ "$benchtime" = "1x" ]; then
  traj_benchtime="1x"
fi
yraw="$out/bench_trajectory.txt"
yjson="$out/BENCH_trajectory.json"

{
  echo "# Trajectory replay — live incremental stepping vs recorded-delta replay"
  echo "# host: $(nproc) CPU(s), $(go version | cut -d' ' -f3-)"
  echo "# benchtime: $traj_benchtime"
  go test -run '^$' -benchtime "$traj_benchtime" -benchmem \
    -bench 'BenchmarkWorldStep/n=(500|8000|100000)/mode=(incremental|replay)$' .
} | tee "$yraw"

# End-to-end amortisation: the same routing sweep with the trajectory cache
# off and on. The CSV is byte-identical either way (ci.sh diffs it); only
# the wall clock moves.
sweep_live_ms=0
sweep_cached_ms=0
if [ "$benchtime" != "1x" ]; then
  for wc in 0 1; do
    start=$(date +%s%N)
    go run ./cmd/sweep -scenario routing -param agents -values 25,50 \
      -runs 4 -worldcache="$wc" >/dev/null
    end=$(date +%s%N)
    ms=$(( (end - start) / 1000000 ))
    echo "sweep worldcache=$wc: ${ms} ms" | tee -a "$yraw"
    if [ "$wc" = 0 ]; then sweep_live_ms=$ms; else sweep_cached_ms=$ms; fi
  done
fi

awk -v lms="$sweep_live_ms" -v cms="$sweep_cached_ms" '
/^BenchmarkWorldStep/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (!(name in ns)) order[n++] = name
  ns[name] = $3
  allocs[name] = $7
}
END {
  printf "[\n"
  for (i = 0; i < n; i++) {
    nm = order[i]
    base = nm
    sub(/mode=replay$/, "mode=incremental", base)
    sp = (nm ~ /mode=replay$/ && ns[nm] + 0 > 0) ? ns[base] / ns[nm] : 1.0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"speedup_vs_live\": %.3f},\n", \
      nm, ns[nm], allocs[nm], sp
  }
  sp = (lms + 0 > 0 && cms + 0 > 0) ? lms / cms : 1.0
  printf "  {\"name\": \"sweep_routing_agents_runs4\", \"live_ms\": %d, \"cached_ms\": %d, \"speedup_vs_live\": %.3f}\n", \
    lms, cms, sp
  printf "]\n"
}' "$yraw" > "$yjson"
if [ "$out" = "results" ]; then
  cp "$yjson" BENCH_trajectory.json
  echo "wrote $yjson (copied to ./BENCH_trajectory.json)"
else
  echo "wrote $yjson"
fi

if [ "$traj_benchtime" != "1x" ]; then
  floor_ok=$(awk '
    /^BenchmarkWorldStep\/n=8000\/mode=incremental/ { inc = $3 }
    /^BenchmarkWorldStep\/n=8000\/mode=replay/ { rep = $3 }
    END { print (rep + 0 > 0 && inc >= 2 * rep) ? 1 : 0 }' "$yraw")
  if [ "$floor_ok" != 1 ]; then
    echo "FAIL: trajectory replay is under the 2x floor vs live incremental stepping at n=8000" >&2
    exit 1
  fi
fi

# --- connectivity measurement: full scratch recompute vs incremental meter ---
# mode=full recomputes LocalConnectivity, end-to-end Connectivity,
# ConnectivityToGateways, and Staleness from scratch every step (the
# pre-incremental measurement phase); mode=incr is the churn-proportional
# Meter fed by the topology delta stream and table write tracking. The two
# are bit-identical at every step (equivalence, property, and fuzz tests in
# internal/routing), so the ratio is pure measurement cost. Acceptance
# floors at n=8000: >=3x over full AND 0 allocs/op in steady state
# (skipped on the 1x smoke).
conn_benchtime="${WORLD_BENCHTIME:-600x}"
if [ "$benchtime" = "1x" ]; then
  conn_benchtime="1x"
fi
craw="$out/bench_connectivity.txt"
cjson="$out/BENCH_connectivity.json"

{
  echo "# Connectivity measurement — full scratch recompute vs incremental meter"
  echo "# host: $(nproc) CPU(s), $(go version | cut -d' ' -f3-)"
  echo "# benchtime: $conn_benchtime"
  go test -run '^$' -benchtime "$conn_benchtime" -benchmem \
    -bench 'BenchmarkConnectivity/' .
} | tee "$craw"

awk '
/^BenchmarkConnectivity/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (!(name in ns)) order[n++] = name
  ns[name] = $3
  allocs[name] = $7
}
END {
  printf "[\n"
  for (i = 0; i < n; i++) {
    nm = order[i]
    base = nm
    sub(/mode=incr$/, "mode=full", base)
    sp = (nm ~ /mode=incr$/ && ns[nm] + 0 > 0) ? ns[base] / ns[nm] : 1.0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"speedup_vs_full\": %.3f}%s\n", \
      nm, ns[nm], allocs[nm], sp, (i < n - 1 ? "," : "")
  }
  printf "]\n"
}' "$craw" > "$cjson"
if [ "$out" = "results" ]; then
  cp "$cjson" BENCH_connectivity.json
  echo "wrote $cjson (copied to ./BENCH_connectivity.json)"
else
  echo "wrote $cjson"
fi

if [ "$conn_benchtime" != "1x" ]; then
  conn_ok=$(awk '
    /^BenchmarkConnectivity\/n=8000\/mode=full/ { full = $3 }
    /^BenchmarkConnectivity\/n=8000\/mode=incr/ { inc = $3; ia = $7 }
    END { print (inc + 0 > 0 && full >= 3 * inc && ia + 0 == 0) ? 1 : 0 }' "$craw")
  if [ "$conn_ok" != 1 ]; then
    echo "FAIL: incremental measurement at n=8000 missed its floor (need >=3x over full AND 0 allocs/op)" >&2
    exit 1
  fi
fi

if [ "$benchtime" != "1x" ]; then
  {
    echo ""
    echo "# sweep wall-clock: cmd/sweep routing agents sweep, runs=4/point,"
    echo "# -runworkers 1 vs -runworkers \$(nproc) (identical TSV either way)"
    for rw in 1 "$(nproc)"; do
      start=$(date +%s%N)
      go run ./cmd/sweep -scenario routing -param agents -values 25,50 \
        -runs 4 -runworkers "$rw" >/dev/null
      end=$(date +%s%N)
      echo "sweep runworkers=$rw: $(( (end - start) / 1000000 )) ms"
    done
  } | tee -a "$raw"
fi
