// Package agentmesh is the public API of this repository: a faithful Go
// implementation of "Mobile Software Agents for Wireless Network Mapping
// and Dynamic Routing" (Khazaei, Mišić, Mišić — ICDCS 2010).
//
// It exposes the three layers a downstream user needs:
//
//   - Network synthesis: GenerateNetwork builds wireless worlds — static
//     heterogeneous-range mapping networks or mobile battery-limited
//     MANETs with gateways (MappingNetwork / RoutingNetwork give the
//     paper's canonical 300- and 250-node setups).
//
//   - Scenario runners: RunMapping / RunMappingBatch send a team of
//     mobile agents (random, conscientious, super-conscientious — with
//     optional stigmergic footprints and meeting-time knowledge exchange)
//     to map a network and report finishing times and knowledge curves;
//     RunRouting / RunRoutingBatch have agents (random, oldest-node)
//     maintain per-node gateway routes on a moving network and report
//     connectivity.
//
//   - Experiments: Figure regenerates any of the paper's figures 1–11 or
//     the extension studies, returning the result table, plottable
//     series, and shape checks against the paper's claims.
//
// Everything is deterministic: a (seed, configuration) pair always
// reproduces the same run, bit-for-bit, on 1 worker or many.
package agentmesh

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/viz"
)

// NodeID identifies a node in a generated network.
type NodeID = network.NodeID

// World is a simulated wireless ad hoc network.
type World = network.World

// NetworkSpec describes a wireless network to synthesise.
type NetworkSpec = netgen.Spec

// Mobility models for NetworkSpec.
const (
	MobilityNone     = netgen.MobilityNone
	MobilityConstant = netgen.MobilityConstant
	MobilityRandom   = netgen.MobilityRandom
	MobilityWaypoint = netgen.MobilityWaypoint
)

// Agent movement policies.
const (
	PolicyRandom             = core.PolicyRandom
	PolicyConscientious      = core.PolicyConscientious
	PolicySuperConscientious = core.PolicySuperConscientious
	PolicyOldestNode         = core.PolicyOldestNode
)

// MappingNetwork returns the paper's canonical mapping network: 300
// stationary nodes, ~2164 directed links, heterogeneous radio ranges,
// strongly connected.
func MappingNetwork(seed uint64) (*World, error) {
	return netgen.Generate(netgen.Mapping300(), seed)
}

// RoutingNetwork returns the paper's canonical MANET: 250 nodes, 12
// stationary long-range gateways, half of the other nodes moving with
// random velocities on draining batteries.
func RoutingNetwork(seed uint64) (*World, error) {
	return netgen.Generate(netgen.Routing250(), seed)
}

// GenerateNetwork synthesises a custom world from spec; the same
// (spec, seed) pair always yields the same world.
func GenerateNetwork(spec NetworkSpec, seed uint64) (*World, error) {
	return netgen.Generate(spec, seed)
}

// DescribeNetwork returns a one-line summary of a world (size, degree
// statistics, connectivity structure).
func DescribeNetwork(w *World) string { return netgen.Describe(w) }

// MappingScenario configures a network-mapping run (population, policy,
// stigmergy, cooperation, epsilon randomness, memory bounds).
type MappingScenario = mapping.Scenario

// MappingResult is one mapping run's outcome.
type MappingResult = mapping.Result

// MappingBatch aggregates many mapping runs of one parameter setting.
type MappingBatch = mapping.Aggregate

// RunMapping performs one mapping run on w with agent placement drawn
// from seed.
func RunMapping(w *World, sc MappingScenario, seed uint64) (MappingResult, error) {
	return mapping.Run(w, sc, seed)
}

// RunMappingBatch performs runs independent mapping runs (the paper uses
// 40), averaging curves and summarising finishing times. worldFor supplies
// the world per run — return the same *World for a static network.
func RunMappingBatch(worldFor func(run int) (*World, error), sc MappingScenario, runs int, seed uint64) (MappingBatch, error) {
	return mapping.RunMany(worldFor, sc, runs, seed)
}

// RunMappingBatchCached is RunMappingBatch with the world's evolution
// recorded once (from a world supplied by build) and replayed for every
// run — bit-identical aggregates at a fraction of the world-step cost.
func RunMappingBatchCached(build func() (*World, error), sc MappingScenario, runs int, seed uint64) (MappingBatch, error) {
	return mapping.RunManyCached(build, sc, runs, seed)
}

// RoutingScenario configures a dynamic-routing run (population, policy,
// communication, stigmergy, history size, run length).
type RoutingScenario = routing.Scenario

// RoutingResult is one routing run's outcome.
type RoutingResult = routing.Result

// RoutingBatch aggregates many routing runs of one parameter setting.
type RoutingBatch = routing.Aggregate

// RoutingTables is the per-node routing state the agents maintain.
type RoutingTables = routing.Tables

// RunRouting performs one routing run on w (the world is consumed — use a
// fresh one per run) with agent placement drawn from seed.
func RunRouting(w *World, sc RoutingScenario, seed uint64) (RoutingResult, error) {
	return routing.Run(w, sc, seed)
}

// RunRoutingBatch performs runs independent routing runs. worldFor must
// build a fresh world per call; regenerate from one seed to follow the
// paper's fixed node placement and movement trace.
func RunRoutingBatch(worldFor func(run int) (*World, error), sc RoutingScenario, runs int, seed uint64) (RoutingBatch, error) {
	return routing.RunMany(worldFor, sc, runs, seed)
}

// RunRoutingBatchCached is RunRoutingBatch with the world's movement
// trace recorded once (from a world supplied by build) and replayed for
// every run — bit-identical aggregates at a fraction of the world-step
// cost.
func RunRoutingBatchCached(build func() (*World, error), sc RoutingScenario, runs int, seed uint64) (RoutingBatch, error) {
	return routing.RunManyCached(build, sc, runs, seed)
}

// MetricsRegistry collects counters, gauges, histograms and phase timers
// from instrumented runs. Attach one via MappingScenario.Metrics or
// RoutingScenario.Metrics; a nil registry disables instrumentation at
// near-zero cost, and instrumentation never perturbs seeded determinism.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry's instruments,
// reusable across scrapes to avoid steady-state allocation.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// ServeMetrics starts an HTTP server on addr exposing the registry at
// /metrics (Prometheus text; ?format=json for JSON), expvar at
// /debug/vars, and net/http/pprof at /debug/pprof/. It returns the bound
// address (useful with ":0") once the listener is up.
func ServeMetrics(addr string, r *MetricsRegistry) (string, error) {
	return metrics.StartServer(addr, r)
}

// WriteMetrics dumps a snapshot of r to path — Prometheus text format, or
// JSON when path ends in ".json".
func WriteMetrics(r *MetricsRegistry, path string) error {
	return metrics.WriteFile(r, path)
}

// ExperimentConfig tunes a figure reproduction (runs per setting, root
// seed, worker count, quick mode).
type ExperimentConfig = experiments.Config

// ExperimentReport is a regenerated figure: table, series, shape checks.
type ExperimentReport = experiments.Report

// Figure regenerates one of the paper's figures ("fig1".."fig11") or
// extension studies ("extA".."extE").
func Figure(id string, cfg ExperimentConfig) (ExperimentReport, error) {
	return experiments.Run(id, cfg)
}

// Figures lists the available experiment IDs in presentation order.
func Figures() []string { return experiments.IDs() }

// TrafficStats accumulates packet-delivery outcomes.
type TrafficStats = traffic.Stats

// TrafficGen injects packets at random nodes and forwards them one hop
// per step over the agents' routing tables. Plug its Step method into
// RoutingScenario.Observer to measure real deliverability alongside the
// connectivity metric.
type TrafficGen = traffic.Gen

// NewTrafficGen returns a generator injecting perStep packets per step
// with the given TTL (<=0 means 64), idle for the first warmup steps, and
// drawing sources from seed.
func NewTrafficGen(perStep, ttl, warmup int, seed uint64) *TrafficGen {
	return traffic.NewGen(perStep, ttl, warmup, rng.New(seed))
}

// FaultSchedule is a deterministic, immutable fault-injection schedule:
// node churn, gateway failure, partitions, and radio degradation fired at
// fixed world steps. Attach one via RoutingScenario.Faults or
// MappingScenario.Faults; one schedule may drive many worlds.
type FaultSchedule = faults.Schedule

// FaultEvent is one scheduled fault occurrence.
type FaultEvent = faults.Event

// FaultPlan is the parameterised generator of fault schedules: churn
// cadence, gateway-failure windows, partitions, and radio degradation,
// expanded into a concrete FaultSchedule by a seed.
type FaultPlan = faults.Plan

// NewFaultSchedule builds an explicit schedule from scripted events
// (stably sorted by step).
func NewFaultSchedule(events []FaultEvent) *FaultSchedule {
	return faults.NewSchedule(events)
}

// FaultPresetNames lists the built-in fault scenario presets ("churn",
// "gwfail", "partition", "degrade", "blackout").
func FaultPresetNames() []string { return faults.PresetNames() }

// FaultPreset expands a named preset for an n-node world with the given
// gateways over a run of the given length, spending all schedule
// randomness from seed.
func FaultPreset(name string, n int, gateways []NodeID, steps int, seed uint64) (*FaultSchedule, error) {
	return faults.Preset(name, n, gateways, steps, seed)
}

// SaveNetwork writes a static snapshot of the world (positions, current
// radio ranges, gateways — and, mid-fault, the dead/downed/partition
// state) as JSON. Snapshots share fixture networks; they do not
// checkpoint mobility or battery state — rebuild dynamic worlds from
// (NetworkSpec, seed) instead.
func SaveNetwork(w *World, out io.Writer) error {
	return network.WriteSnapshot(w, out)
}

// LoadNetwork reads a snapshot written by SaveNetwork and builds the
// static world it describes.
func LoadNetwork(in io.Reader) (*World, error) {
	return network.ReadSnapshot(in)
}

// Sparkline renders a series of [0,1] values as a one-line block-character
// chart, downsampled to at most width cells — handy for printing
// connectivity or knowledge curves in terminal output.
func Sparkline(xs []float64, width int) string {
	return viz.Sparkline(xs, width)
}

// ChartSeries renders named [0,1] series as a multi-row ASCII line chart.
func ChartSeries(names []string, series [][]float64, width, height int) string {
	return viz.Chart(names, series, width, height)
}

// AntColony is an AntHocNet-style pheromone router (the nature-inspired
// comparator from the paper's related work): forward ants explore, a
// backward ant reinforces the trail when a gateway is found, pheromone
// evaporates, packets follow the strongest trail.
type AntColony = baseline.AntColony

// NewAntColony creates a pheromone-routing colony over w. evaporation is
// the per-step pheromone loss (try 0.02) and ttl caps an ant's walk.
func NewAntColony(w *World, ants int, evaporation float64, ttl int, seed uint64) *AntColony {
	return baseline.NewAntColony(w, ants, evaporation, ttl, rng.New(seed))
}

// DistanceVector is the DSDV-style protocol baseline: every node
// exchanges gateway-distance vectors with its neighbours each step.
type DistanceVector = baseline.DistanceVector

// NewDistanceVector initialises the protocol baseline over w; maxAge is
// the route expiry in steps.
func NewDistanceVector(w *World, maxAge int) *DistanceVector {
	return baseline.NewDistanceVector(w, maxAge)
}

// FloodMapResult reports a flooding-based mapping baseline run.
type FloodMapResult = baseline.FloodResult

// FloodMap runs the synchronous flooding baseline for topology mapping on
// the world's current topology.
func FloodMap(w *World, maxRounds int) FloodMapResult {
	return baseline.FloodMap(w, maxRounds)
}
