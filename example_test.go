package agentmesh_test

import (
	"fmt"
	"log"

	agentmesh "repro"
)

// ExampleFigures lists every reproducible experiment.
func ExampleFigures() {
	for _, id := range agentmesh.Figures()[:3] {
		fmt.Println(id)
	}
	// Output:
	// fig1
	// fig2
	// fig3
}

// ExampleRunMapping maps a small network with a cooperating team.
func ExampleRunMapping() {
	world, err := agentmesh.GenerateNetwork(agentmesh.NetworkSpec{
		N: 50, TargetEdges: 300, ArenaSide: 40,
		RangeSpread: 0.25, RequireStrong: true,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := agentmesh.RunMapping(world, agentmesh.MappingScenario{
		Agents:    5,
		Kind:      agentmesh.PolicyConscientious,
		Cooperate: true,
		Stigmergy: true,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("finished:", res.Finished)
	// Output:
	// finished: true
}

// ExampleRunRouting keeps a small MANET routed to its gateways.
func ExampleRunRouting() {
	world, err := agentmesh.GenerateNetwork(agentmesh.NetworkSpec{
		N: 60, TargetEdges: 420, ArenaSide: 50, RangeSpread: 0.25,
		Mobility: agentmesh.MobilityRandom, MobileFraction: 0.5,
		MinSpeed: 0.1, MaxSpeed: 0.5,
		Gateways: 4, RangeBoost: 1.5,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := agentmesh.RunRouting(world, agentmesh.RoutingScenario{
		Agents: 20,
		Kind:   agentmesh.PolicyOldestNode,
		Steps:  150,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("routed more than half the nodes:", res.Mean > 0.5)
	// Output:
	// routed more than half the nodes: true
}

// ExampleFigure regenerates one of the paper's results.
func ExampleFigure() {
	rep, err := agentmesh.Figure("fig3", agentmesh.ExperimentConfig{
		Runs: 2, Quick: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.ID, "checks:", len(rep.Checks))
	// Output:
	// fig3 checks: 1
}
