package agentmesh

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestMappingNetworkShape(t *testing.T) {
	w, err := MappingNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 300 {
		t.Fatalf("N = %d", w.N())
	}
	if w.Dynamic() {
		t.Fatal("mapping network should be static")
	}
	if DescribeNetwork(w) == "" {
		t.Fatal("empty description")
	}
}

func TestRoutingNetworkShape(t *testing.T) {
	w, err := RoutingNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 250 || len(w.Gateways()) != 12 {
		t.Fatalf("N=%d gateways=%d", w.N(), len(w.Gateways()))
	}
	if !w.Dynamic() {
		t.Fatal("routing network should be dynamic")
	}
}

func TestGenerateNetworkCustom(t *testing.T) {
	w, err := GenerateNetwork(NetworkSpec{
		N: 40, TargetEdges: 200, ArenaSide: 30, RangeSpread: 0.2,
		RequireStrong: true,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 40 {
		t.Fatalf("N = %d", w.N())
	}
}

func TestEndToEndMapping(t *testing.T) {
	w, err := GenerateNetwork(NetworkSpec{
		N: 50, TargetEdges: 300, ArenaSide: 40, RangeSpread: 0.25,
		RequireStrong: true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMapping(w, MappingScenario{
		Agents: 5, Kind: PolicyConscientious, Cooperate: true, Stigmergy: true,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("mapping did not finish")
	}
	batch, err := RunMappingBatch(func(int) (*World, error) { return w, nil },
		MappingScenario{Agents: 5, Kind: PolicyConscientious, Cooperate: true}, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Completed != 3 {
		t.Fatalf("batch completed %d/3", batch.Completed)
	}
}

func TestEndToEndRouting(t *testing.T) {
	spec := NetworkSpec{
		N: 80, TargetEdges: 560, ArenaSide: 60, RangeSpread: 0.25,
		Mobility: MobilityRandom, MobileFraction: 0.5,
		MinSpeed: 0.1, MaxSpeed: 0.5, Gateways: 6, RangeBoost: 1.5,
	}
	w, err := GenerateNetwork(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRouting(w, RoutingScenario{
		Agents: 25, Kind: PolicyOldestNode, Steps: 150,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean <= 0 {
		t.Fatalf("connectivity = %v", res.Mean)
	}
	batch, err := RunRoutingBatch(
		func(int) (*World, error) { return GenerateNetwork(spec, 3) },
		RoutingScenario{Agents: 25, Kind: PolicyOldestNode, Steps: 150}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Mean.N != 3 {
		t.Fatalf("batch runs = %d", batch.Mean.N)
	}
}

// TestCachedBatchFacade pins the facade's record-once batch runners to
// their live-stepping counterparts: identical aggregates, same seeds.
func TestCachedBatchFacade(t *testing.T) {
	spec := NetworkSpec{
		N: 80, TargetEdges: 560, ArenaSide: 60, RangeSpread: 0.25,
		Mobility: MobilityRandom, MobileFraction: 0.5,
		MinSpeed: 0.1, MaxSpeed: 0.5, Gateways: 6, RangeBoost: 1.5,
	}
	rsc := RoutingScenario{Agents: 25, Kind: PolicyOldestNode, Steps: 150}
	live, err := RunRoutingBatch(
		func(int) (*World, error) { return GenerateNetwork(spec, 3) }, rsc, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunRoutingBatchCached(
		func() (*World, error) { return GenerateNetwork(spec, 3) }, rsc, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, cached) {
		t.Error("cached routing batch differs from live batch")
	}

	mspec := NetworkSpec{
		N: 50, TargetEdges: 300, ArenaSide: 40, RangeSpread: 0.25,
		RequireStrong: true,
	}
	msc := MappingScenario{Agents: 5, Kind: PolicyConscientious, Cooperate: true}
	mlive, err := RunMappingBatch(
		func(int) (*World, error) { return GenerateNetwork(mspec, 4) }, msc, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	mcached, err := RunMappingBatchCached(
		func() (*World, error) { return GenerateNetwork(mspec, 4) }, msc, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mlive, mcached) {
		t.Error("cached mapping batch differs from live batch")
	}
}

func TestFigureFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	ids := Figures()
	if len(ids) != 24 {
		t.Fatalf("figures = %v", ids)
	}
	rep, err := Figure("fig3", ExperimentConfig{Runs: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig3" || len(rep.Checks) == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := Figure("nope", ExperimentConfig{}); err == nil {
		t.Fatal("bad figure id accepted")
	}
}

func TestSaveLoadNetwork(t *testing.T) {
	w, err := GenerateNetwork(NetworkSpec{
		N: 30, TargetEdges: 150, ArenaSide: 25, RangeSpread: 0.2,
		Gateways: 2, RangeBoost: 1.5,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveNetwork(w, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != 30 || len(loaded.Gateways()) != 2 {
		t.Fatalf("loaded N=%d gateways=%d", loaded.N(), len(loaded.Gateways()))
	}
	if !loaded.Topology().Equal(w.Topology()) {
		t.Fatal("topology changed through save/load")
	}
	if _, err := LoadNetwork(strings.NewReader("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestVizFacade(t *testing.T) {
	if s := Sparkline([]float64{0, 1}, 10); len([]rune(s)) != 2 {
		t.Fatalf("Sparkline = %q", s)
	}
	out := ChartSeries([]string{"a"}, [][]float64{{0, 0.5, 1}}, 20, 5)
	if !strings.Contains(out, "a") {
		t.Fatalf("chart missing legend:\n%s", out)
	}
}

func TestTrafficGenFacade(t *testing.T) {
	spec := NetworkSpec{
		N: 60, TargetEdges: 420, ArenaSide: 50, RangeSpread: 0.25,
		Gateways: 4, RangeBoost: 1.5,
	}
	w, err := GenerateNetwork(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewTrafficGen(2, 32, 20, 9)
	res, err := RunRouting(w, RoutingScenario{
		Agents: 20, Kind: PolicyOldestNode, Steps: 100, Observer: gen.Step,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Stats()
	if st.Injected == 0 {
		t.Fatal("no packets injected")
	}
	if res.Mean <= 0 {
		t.Fatal("no connectivity")
	}
}

func TestMobilityConstantsDistinct(t *testing.T) {
	kinds := map[int]bool{
		int(MobilityNone): true, int(MobilityConstant): true,
		int(MobilityRandom): true, int(MobilityWaypoint): true,
	}
	if len(kinds) != 4 {
		t.Fatal("mobility constants collide")
	}
	policies := map[int]bool{
		int(PolicyRandom): true, int(PolicyConscientious): true,
		int(PolicySuperConscientious): true, int(PolicyOldestNode): true,
	}
	if len(policies) != 4 {
		t.Fatal("policy constants collide")
	}
}
