// Stigmergyroute: the paper's future-work proposal, working. Figure 11
// shows that letting oldest-node agents exchange routes backfires — after
// a meeting their histories are identical, so they chase each other and
// coverage collapses. The paper conjectures that stigmergy (indirect,
// footprint-based communication) would fix it. This example runs the four
// combinations side by side and shows footprints repairing the pathology
// while keeping the benefit of route exchange.
//
//	go run ./examples/stigmergyroute
package main

import (
	"fmt"
	"log"

	agentmesh "repro"
)

func main() {
	const runs = 10
	worldSeed := uint64(31)
	fresh := func(int) (*agentmesh.World, error) {
		return agentmesh.RoutingNetwork(worldSeed)
	}

	type variant struct {
		name        string
		communicate bool
		stigmergy   bool
	}
	variants := []variant{
		{"isolated", false, false},
		{"route exchange", true, false},
		{"footprints", false, true},
		{"route exchange + footprints", true, true},
	}

	fmt.Printf("%-30s %-14s %s\n", "agents (100 oldest-node)", "connectivity", "end-to-end")
	results := make(map[string]float64, len(variants))
	for _, v := range variants {
		batch, err := agentmesh.RunRoutingBatch(fresh, agentmesh.RoutingScenario{
			Agents:      100,
			Kind:        agentmesh.PolicyOldestNode,
			Communicate: v.communicate,
			Stigmergy:   v.stigmergy,
		}, runs, 7)
		if err != nil {
			log.Fatal(err)
		}
		results[v.name] = batch.Mean.Mean
		fmt.Printf("%-30s %.3f±%.3f    %.3f\n",
			v.name, batch.Mean.Mean, batch.Mean.CI, batch.EndToEnd.Mean)
	}

	fmt.Println()
	loss := results["isolated"] - results["route exchange"]
	gain := results["route exchange + footprints"] - results["route exchange"]
	fmt.Printf("route exchange alone costs %.0f%% connectivity (the Fig 11 pathology)\n", loss*100)
	fmt.Printf("adding footprints wins back %.0f%% — the paper's conjecture holds\n", gain*100)
	if results["route exchange + footprints"] >= results["isolated"] {
		fmt.Println("footprints + exchange even beats staying silent")
	}
}
