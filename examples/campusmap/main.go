// Campusmap: the paper's motivating mapping story end-to-end. A campus
// deploys a large ad hoc network of battery-powered radios; agents map it,
// the map goes stale as batteries drain and links drop, and the agents are
// "fired up again" to remap — exactly the lifecycle §II.A of the paper
// describes for its degraded-link environment.
//
//	go run ./examples/campusmap
package main

import (
	"fmt"
	"log"

	agentmesh "repro"
)

func main() {
	// A campus-scale network: 200 stationary radios, half on battery
	// power, so their ranges shrink over time and links silently die.
	spec := agentmesh.NetworkSpec{
		N:               200,
		TargetEdges:     1500,
		ArenaSide:       90,
		RangeSpread:     0.25,
		BatteryFraction: 0.5,
		DecayPerStep:    0.0003,
		FloorFraction:   0.5,
		RequireStrong:   true,
	}
	world, err := agentmesh.GenerateNetwork(spec, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("campus network:", agentmesh.DescribeNetwork(world))

	team := agentmesh.MappingScenario{
		Agents:    12,
		Kind:      agentmesh.PolicyConscientious,
		Cooperate: true,
		Stigmergy: true,
	}

	// Survey 1: map the fresh network.
	res, err := agentmesh.RunMapping(world, team, 1)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Finished {
		log.Fatal("initial survey did not complete")
	}
	fmt.Printf("survey 1 complete after %d steps (%d migrations)\n",
		res.FinishStep, res.Overhead.Moves)

	// Record the surveyed topology, then let the campus run for a while:
	// batteries drain, ranges shrink, links disappear.
	surveyed := world.Topology().Clone()
	const idleSteps = 800
	for i := 0; i < idleSteps; i++ {
		world.Step()
	}
	stale := staleness(world, surveyed)
	fmt.Printf("after %d idle steps the survey is stale for %.0f%% of nodes\n",
		idleSteps, stale*100)

	// Survey 2: fire the agents up again on the degraded network.
	res2, err := agentmesh.RunMapping(world, team, 2)
	if err != nil {
		log.Fatal(err)
	}
	if !res2.Finished {
		fmt.Println("survey 2 could not finish — battery decay partitioned the network")
		fmt.Printf("best coverage reached: %.0f%%\n",
			res2.Curve[len(res2.Curve)-1]*100)
		return
	}
	fmt.Printf("survey 2 complete after %d steps — the map is current again\n", res2.FinishStep)
}

// staleness returns the fraction of nodes whose out-neighbour list changed
// since the survey.
func staleness(w *agentmesh.World, surveyed interface {
	Out(agentmesh.NodeID) []agentmesh.NodeID
}) float64 {
	changed := 0
	for u := 0; u < w.N(); u++ {
		if !equal(surveyed.Out(agentmesh.NodeID(u)), w.Neighbors(agentmesh.NodeID(u))) {
			changed++
		}
	}
	return float64(changed) / float64(w.N())
}

func equal(a, b []agentmesh.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
