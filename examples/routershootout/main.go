// Routershootout: three ways to keep a MANET routed to its gateways, on
// the exact same network trace — the paper's deliberate history-driven
// agents, the nature-inspired ant colony from its related work, and a
// classical distance-vector protocol. Quality and traffic are printed
// side by side so the trade-off the paper argues for is visible in one
// screen.
//
//	go run ./examples/routershootout
package main

import (
	"fmt"
	"log"

	agentmesh "repro"
)

const steps = 300

func main() {
	worldSeed := uint64(7)

	// 1. The paper's agents.
	w1, err := agentmesh.RoutingNetwork(worldSeed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := agentmesh.RunRouting(w1, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Steps: steps,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Ant colony on the identical world trace.
	w2, err := agentmesh.RoutingNetwork(worldSeed)
	if err != nil {
		log.Fatal(err)
	}
	colony := agentmesh.NewAntColony(w2, 100, 0.02, 64, 3)
	var antLocal, antE2E float64
	samples := 0
	for step := 0; step < steps; step++ {
		colony.Step()
		if step >= steps/2 {
			antLocal += colony.LocalConnectivity(step)
			antE2E += colony.Connectivity(step)
			samples++
		}
		w2.Step()
	}
	antLocal /= float64(samples)
	antE2E /= float64(samples)

	// 3. Distance-vector protocol on the identical world trace.
	w3, err := agentmesh.RoutingNetwork(worldSeed)
	if err != nil {
		log.Fatal(err)
	}
	dv := agentmesh.NewDistanceVector(w3, 3)
	var dvConn float64
	samples = 0
	for step := 0; step < steps; step++ {
		dv.Step()
		if step >= steps/2 {
			dvConn += dv.Connectivity(step)
			samples++
		}
		w3.Step()
	}
	dvConn /= float64(samples)

	fmt.Println("same 250-node MANET, same movements, three routers:")
	fmt.Println()
	fmt.Printf("%-28s %-14s %-12s %s\n", "router", "connectivity", "end-to-end", "traffic")
	fmt.Printf("%-28s %-14.3f %-12.3f %d agent hops\n",
		"oldest-node agents (paper)", res.Mean, res.MeanEndToEnd, res.Overhead.Moves)
	fmt.Printf("%-28s %-14.3f %-12.3f %d ant hops\n",
		"ant colony (related work)", antLocal, antE2E, colony.Messages)
	fmt.Printf("%-28s %-14.3f %-12.3f %d vector messages\n",
		"distance-vector protocol", dvConn, dvConn, dv.Messages)
	fmt.Println()
	fmt.Printf("the protocol is near-perfect but costs %.0fx the agents' traffic;\n",
		float64(dv.Messages)/float64(res.Overhead.Moves))
	fmt.Println("ants buy whole-path consistency at lower coverage — the paper's agents")
	fmt.Println("cover almost every node and leave path repair to the network's density.")
}
