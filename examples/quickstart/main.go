// Quickstart: map an unknown wireless network with a small team of
// cooperating, stigmergic mobile agents and print how long it took.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	agentmesh "repro"
)

func main() {
	// Synthesise a 120-node wireless network: uniform node placement,
	// heterogeneous radio ranges (so some links are one-way), strongly
	// connected so agents can reach everything.
	world, err := agentmesh.GenerateNetwork(agentmesh.NetworkSpec{
		N:             120,
		TargetEdges:   900,
		ArenaSide:     80,
		RangeSpread:   0.25,
		RequireStrong: true,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", agentmesh.DescribeNetwork(world))

	// Inject 10 conscientious agents that exchange maps when they meet
	// and leave footprints so they stop retracing each other's steps.
	result, err := agentmesh.RunMapping(world, agentmesh.MappingScenario{
		Agents:    10,
		Kind:      agentmesh.PolicyConscientious,
		Cooperate: true,
		Stigmergy: true,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}

	if !result.Finished {
		log.Fatal("the team never finished — is the network connected?")
	}
	fmt.Printf("full topology mapped by every agent after %d steps\n", result.FinishStep)
	fmt.Printf("agent migrations: %d, meetings: %d, records exchanged: %d\n",
		result.Overhead.Moves, result.Overhead.Meetings, result.Overhead.TopoRecordsReceived)

	// The knowledge curve: how much of the network the slowest agent knew
	// over time.
	for _, milestone := range []float64{0.25, 0.5, 0.75, 1.0} {
		for step, frac := range result.MinCurve {
			if frac >= milestone {
				fmt.Printf("slowest agent reached %3.0f%% of the map at step %d\n",
					milestone*100, step)
				break
			}
		}
	}
}
