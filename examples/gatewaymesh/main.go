// Gatewaymesh: the paper's dynamic-routing story end-to-end. A mobile ad
// hoc network (half the nodes wandering, batteries draining) must keep
// every node routed to one of a few internet gateways. Nodes run no
// routing protocol — a swarm of oldest-node agents maintains their tables
// — and real packets are pushed over those tables to prove the routes
// carry traffic.
//
//	go run ./examples/gatewaymesh
package main

import (
	"fmt"
	"log"

	agentmesh "repro"
)

func main() {
	// The paper's canonical MANET: 250 nodes, 12 stationary long-range
	// gateways, half the other nodes mobile with random velocities.
	world, err := agentmesh.RoutingNetwork(99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh:", agentmesh.DescribeNetwork(world))

	// Packet generator: 4 packets per step at random nodes once the
	// tables have had 100 steps to warm up.
	gen := agentmesh.NewTrafficGen(4, 64, 100, 5)

	res, err := agentmesh.RunRouting(world, agentmesh.RoutingScenario{
		Agents:   100,
		Kind:     agentmesh.PolicyOldestNode,
		Steps:    300,
		Observer: gen.Step,
	}, 17)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("connectivity after convergence: %.1f%% of nodes hold a live gateway route\n",
		res.Mean*100)
	fmt.Printf("end-to-end (whole chain valid right now): %.1f%%\n", res.MeanEndToEnd*100)

	// Connectivity over time, as an ASCII sparkline.
	fmt.Println("\nconnectivity over 300 steps:")
	fmt.Println(agentmesh.Sparkline(res.Connectivity, 75))

	st := gen.Stats()
	fmt.Printf("\ntraffic: %d packets injected, %d delivered (%.1f%%), mean path %.1f hops\n",
		st.Injected, st.Delivered, st.DeliveryRatio()*100, st.MeanHops())
	fmt.Printf("route maintenance: %d deposits by %d agent migrations\n",
		res.Overhead.RouteDeposits, res.Overhead.Moves)
}
