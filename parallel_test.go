// Parallel-replication regression tests: the deterministic replication
// executor must produce bit-identical batch aggregates at every
// RunWorkers value — including under the race detector, which is how CI
// runs this file — and the metrics layer must stay both determinism-
// preserving and concurrency-correct when runs execute concurrently.
package agentmesh_test

import (
	"reflect"
	"runtime"
	"testing"

	agentmesh "repro"
	"repro/internal/parallel"
)

// withBudget grants the shared executor budget n extra goroutines for the
// duration of fn. Without an explicit grant, a 1-CPU CI container would
// degrade every parallel path to sequential and these tests would prove
// nothing.
func withBudget(t *testing.T, n int, fn func()) {
	t.Helper()
	old := parallel.Budget()
	parallel.SetBudget(n)
	defer parallel.SetBudget(old)
	fn()
}

func TestMappingBatchParallelEquivalence(t *testing.T) {
	worldFor := func(int) (*agentmesh.World, error) { return agentmesh.MappingNetwork(1) }
	sc := agentmesh.MappingScenario{
		Agents: 15, Kind: agentmesh.PolicyConscientious, Cooperate: true, Stigmergy: true,
	}
	base, err := agentmesh.RunMappingBatch(worldFor, sc, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.NumCPU(), 6} {
		withBudget(t, 8, func() {
			psc := sc
			psc.RunWorkers = workers
			got, err := agentmesh.RunMappingBatch(worldFor, psc, 4, 7)
			if err != nil {
				t.Fatalf("RunWorkers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("RunWorkers=%d: mapping aggregate differs from sequential", workers)
			}
		})
	}
}

func TestRoutingBatchParallelEquivalence(t *testing.T) {
	worldFor := func(int) (*agentmesh.World, error) { return agentmesh.RoutingNetwork(1) }
	sc := agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true, Steps: 120,
	}
	base, err := agentmesh.RunRoutingBatch(worldFor, sc, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.NumCPU(), 6} {
		withBudget(t, 8, func() {
			psc := sc
			psc.RunWorkers = workers
			got, err := agentmesh.RunRoutingBatch(worldFor, psc, 4, 7)
			if err != nil {
				t.Fatalf("RunWorkers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("RunWorkers=%d: routing aggregate differs from sequential", workers)
			}
		})
	}
}

// TestMetricsPreserveParallelDeterminism extends the metrics-layer
// determinism contract to concurrent replication: attaching a registry to
// a parallel batch must not change the aggregate, and the atomic counter
// totals must come out identical whether runs execute sequentially or
// concurrently (counter adds are commutative; gauges and histogram sums
// are exposition-only and carry no such pin).
func TestMetricsPreserveParallelDeterminism(t *testing.T) {
	worldFor := func(int) (*agentmesh.World, error) { return agentmesh.RoutingNetwork(1) }
	sc := agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true, Stigmergy: true,
		Steps: 120,
	}
	plain, err := agentmesh.RunRoutingBatch(worldFor, sc, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	seqReg := agentmesh.NewMetricsRegistry()
	seqSC := sc
	seqSC.Metrics = seqReg
	if _, err := agentmesh.RunRoutingBatch(worldFor, seqSC, 4, 7); err != nil {
		t.Fatal(err)
	}
	withBudget(t, 8, func() {
		parReg := agentmesh.NewMetricsRegistry()
		parSC := sc
		parSC.Metrics = parReg
		parSC.RunWorkers = 4
		instrumented, err := agentmesh.RunRoutingBatch(worldFor, parSC, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, instrumented) {
			t.Error("routing aggregate differs with metrics attached to a parallel batch")
		}
		seq, par := seqReg.Snapshot(nil), parReg.Snapshot(nil)
		for _, name := range []string{
			"routing_runs_total", "routing_steps_total", "routing_moves_total",
			"routing_meetings_total", "routing_deposits_total",
			"routing_route_adoptions_total", "routing_marks_total",
			"world_steps_total",
		} {
			if s, p := seq.Counter(name), par.Counter(name); s != p {
				t.Errorf("counter %s: sequential %d vs parallel %d", name, s, p)
			}
		}
	})
}
