// Determinism regression tests: each pins the exact Result of one seeded
// run — finishing time, window statistics to full float precision, and a
// position-weighted checksum of every per-step series. The hot-path
// optimisations (reusable CSR topology, scratch-buffered connectivity,
// pooled meetings) must preserve these values bit for bit; the pins were
// recorded on the pre-optimisation implementation, so a pass proves the
// rewrite changes nothing observable.
package agentmesh_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	agentmesh "repro"
	"repro/internal/netgen"
	"repro/internal/replay"
	"repro/internal/trace"
)

// pinF64 asserts got matches the pinned value exactly (by bit pattern, so
// NaN pins would also compare equal).
func pinF64(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s = %.17g (bits %#x), pinned %.17g (bits %#x)",
			name, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// weightedSum collapses a per-step series into one order-sensitive value:
// any change to any step, or to the series length, moves it.
func weightedSum(xs []float64) float64 {
	var sum float64
	for i, x := range xs {
		sum += x * float64(i+1)
	}
	return sum
}

func TestMappingResultPinned(t *testing.T) {
	w, err := agentmesh.MappingNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := agentmesh.RunMapping(w, agentmesh.MappingScenario{
		Agents: 15, Kind: agentmesh.PolicyConscientious, Cooperate: true,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("pinned mapping run did not finish")
	}
	if res.FinishStep != 439 {
		t.Errorf("FinishStep = %d, pinned 439", res.FinishStep)
	}
	if len(res.Curve) != 439 {
		t.Errorf("len(Curve) = %d, pinned 439", len(res.Curve))
	}
	pinF64(t, "Curve[last]", res.Curve[len(res.Curve)-1], 1.0)
	if res.Overhead.Moves != 6570 {
		t.Errorf("Overhead.Moves = %d, pinned 6570", res.Overhead.Moves)
	}
	if res.Overhead.Meetings != 305 {
		t.Errorf("Overhead.Meetings = %d, pinned 305", res.Overhead.Meetings)
	}
	if res.Overhead.TopoRecordsReceived != 3334 {
		t.Errorf("Overhead.TopoRecordsReceived = %d, pinned 3334", res.Overhead.TopoRecordsReceived)
	}
}

func TestRoutingResultPinned(t *testing.T) {
	w, err := agentmesh.RoutingNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := agentmesh.RunRouting(w, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	pinF64(t, "Mean", res.Mean, 0.5755462184873954)
	pinF64(t, "Std", res.Std, 0.048004049731793105)
	pinF64(t, "MeanEndToEnd", res.MeanEndToEnd, 0.16014005602240894)
	pinF64(t, "weightedSum(Connectivity)", weightedSum(res.Connectivity), 27373.436974789918)
	pinF64(t, "weightedSum(EndToEnd)", weightedSum(res.EndToEnd), 7898.5840336134479)
	pinF64(t, "weightedSum(Ideal)", weightedSum(res.Ideal), 44870.789915966387)
	if res.Overhead.Moves != 29926 {
		t.Errorf("Overhead.Moves = %d, pinned 29926", res.Overhead.Moves)
	}
	if res.Overhead.Meetings != 28527 {
		t.Errorf("Overhead.Meetings = %d, pinned 28527", res.Overhead.Meetings)
	}
	if res.Overhead.TrailAdoptions != 624 {
		t.Errorf("Overhead.TrailAdoptions = %d, pinned 624", res.Overhead.TrailAdoptions)
	}
	if res.Overhead.RouteDeposits != 3704 {
		t.Errorf("Overhead.RouteDeposits = %d, pinned 3704", res.Overhead.RouteDeposits)
	}
	if res.Overhead.VisitRecordsReceived != 17966 {
		t.Errorf("Overhead.VisitRecordsReceived = %d, pinned 17966", res.Overhead.VisitRecordsReceived)
	}
}

// TestMappingBatchPinned pins a whole RunMany aggregate. Run seeds derive
// from rng.DeriveSeed (SplitMix64 stream expansion of the base seed), so
// these values were recorded when that derivation landed and double as
// its regression goldens.
func TestMappingBatchPinned(t *testing.T) {
	worldFor := func(int) (*agentmesh.World, error) { return agentmesh.MappingNetwork(1) }
	agg, err := agentmesh.RunMappingBatch(worldFor, agentmesh.MappingScenario{
		Agents: 15, Kind: agentmesh.PolicyConscientious, Cooperate: true,
	}, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Completed != 5 {
		t.Errorf("Completed = %d, pinned 5", agg.Completed)
	}
	if want := []int{386, 227, 320, 256, 337}; !reflect.DeepEqual(agg.FinishTimes, want) {
		t.Errorf("FinishTimes = %v, pinned %v", agg.FinishTimes, want)
	}
	pinF64(t, "Finish.Mean", agg.Finish.Mean, 305.19999999999999)
	pinF64(t, "weightedSum(AvgCurve)", weightedSum(agg.AvgCurve), 70072.541955555571)
	pinF64(t, "weightedSum(AvgMinCurve)", weightedSum(agg.AvgMinCurve), 64679.971333333327)
	if agg.Overhead.Moves != 22815 {
		t.Errorf("Overhead.Moves = %d, pinned 22815", agg.Overhead.Moves)
	}
	if agg.Overhead.Meetings != 1067 {
		t.Errorf("Overhead.Meetings = %d, pinned 1067", agg.Overhead.Meetings)
	}
}

// TestRoutingBatchPinned is TestMappingBatchPinned's routing twin.
func TestRoutingBatchPinned(t *testing.T) {
	worldFor := func(int) (*agentmesh.World, error) { return agentmesh.RoutingNetwork(1) }
	agg, err := agentmesh.RunRoutingBatch(worldFor, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true,
	}, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	pinF64(t, "Mean.Mean", agg.Mean.Mean, 0.55895238095238109)
	pinF64(t, "EndToEnd.Mean", agg.EndToEnd.Mean, 0.17808403361344544)
	pinF64(t, "Stability", agg.Stability, 0.044690628385570613)
	pinF64(t, "weightedSum(AvgSeries)", weightedSum(agg.AvgSeries), 26876.319327731093)
	pinF64(t, "weightedSum(AvgIdeal)", weightedSum(agg.AvgIdeal), 44870.789915966387)
	if agg.Overhead.Moves != 149675 {
		t.Errorf("Overhead.Moves = %d, pinned 149675", agg.Overhead.Moves)
	}
	if agg.Overhead.Meetings != 142525 {
		t.Errorf("Overhead.Meetings = %d, pinned 142525", agg.Overhead.Meetings)
	}
	if agg.Overhead.RouteDeposits != 18529 {
		t.Errorf("Overhead.RouteDeposits = %d, pinned 18529", agg.Overhead.RouteDeposits)
	}
	if agg.Overhead.TrailAdoptions != 3745 {
		t.Errorf("Overhead.TrailAdoptions = %d, pinned 3745", agg.Overhead.TrailAdoptions)
	}
}

// TestMetricsPreserveDeterminism runs both scenarios with and without a
// metrics registry attached and requires bit-identical Results: the
// instrumentation layer must sit entirely outside the RNG and
// simulation-state paths.
func TestMetricsPreserveDeterminism(t *testing.T) {
	t.Run("mapping", func(t *testing.T) {
		sc := agentmesh.MappingScenario{
			Agents: 15, Kind: agentmesh.PolicyConscientious, Cooperate: true, Stigmergy: true,
		}
		run := func(reg *agentmesh.MetricsRegistry) agentmesh.MappingResult {
			w, err := agentmesh.MappingNetwork(1)
			if err != nil {
				t.Fatal(err)
			}
			s := sc
			s.Metrics = reg
			res, err := agentmesh.RunMapping(w, s, 7)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		plain := run(nil)
		reg := agentmesh.NewMetricsRegistry()
		instrumented := run(reg)
		if !reflect.DeepEqual(plain, instrumented) {
			t.Error("mapping Result differs with metrics attached")
		}
		if snap := reg.Snapshot(nil); snap.Counter("mapping_moves_total") == 0 {
			t.Error("registry recorded nothing — instrumentation not wired")
		}
	})
	t.Run("routing", func(t *testing.T) {
		sc := agentmesh.RoutingScenario{
			Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true, Stigmergy: true,
			Steps: 120,
		}
		run := func(reg *agentmesh.MetricsRegistry) agentmesh.RoutingResult {
			w, err := agentmesh.RoutingNetwork(1)
			if err != nil {
				t.Fatal(err)
			}
			s := sc
			s.Metrics = reg
			res, err := agentmesh.RunRouting(w, s, 7)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		plain := run(nil)
		reg := agentmesh.NewMetricsRegistry()
		instrumented := run(reg)
		if !reflect.DeepEqual(plain, instrumented) {
			t.Error("routing Result differs with metrics attached")
		}
		snap := reg.Snapshot(nil)
		if snap.Counter("routing_moves_total") == 0 {
			t.Error("registry recorded nothing — instrumentation not wired")
		}
		if snap.Counter("world_steps_total") == 0 {
			t.Error("world phase instrumentation not wired")
		}
	})
}

// TestReplayMatchesPinnedRun records the canonical pinned routing run
// (the TestRoutingResultPinned configuration) into an in-memory binary
// log, then proves the log is a faithful durable artefact three ways:
// attaching the recorder does not perturb the pinned result, the logged
// world stream verifies in lockstep against a fresh simulation, and the
// measurement curve recomputed purely from the log reproduces the pinned
// connectivity checksum bit for bit.
func TestReplayMatchesPinnedRun(t *testing.T) {
	meta := replay.RunMeta{
		Scenario:    "routing",
		Spec:        netgen.Routing250(),
		WorldSeed:   1,
		Seed:        7,
		Steps:       300,
		AnchorEvery: 50,
	}
	hdr, err := replay.NewLogHeader(meta)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	lw, err := trace.NewLogWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := agentmesh.RoutingNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := agentmesh.RunRouting(w, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true,
		Tracer: lw, AnchorEvery: meta.AnchorEvery,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	// Recording must not perturb the simulation: the pinned aggregates of
	// TestRoutingResultPinned still hold with the recorder attached.
	pinF64(t, "Mean", res.Mean, 0.5755462184873954)
	pinF64(t, "weightedSum(Connectivity)", weightedSum(res.Connectivity), 27373.436974789918)

	lr, err := trace.NewLogReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gotMeta, err := replay.MetaFromHeader(lr.Header())
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}
	checked, err := replay.VerifyLog(lr, gotMeta)
	if err != nil {
		t.Fatalf("VerifyLog: %v", err)
	}
	if checked < meta.Steps {
		t.Fatalf("VerifyLog checked only %d records over %d steps", checked, meta.Steps)
	}
	sum, err := replay.SummarizeLog(lr)
	if err != nil {
		t.Fatal(err)
	}
	pinF64(t, "weightedSum(log connectivity)",
		weightedSum(sum.MeasuresByName["connectivity"]), 27373.436974789918)
	pinF64(t, "weightedSum(log end-to-end)",
		weightedSum(sum.MeasuresByName["end-to-end"]), 7898.5840336134479)
}

// TestRoutingChurnResultPinned pins a fully faulted run — the "blackout"
// preset layers node churn, a gateway-failure window, and a partition over
// the canonical 250-node network — so the whole fault path (schedule
// expansion, masked topology maintenance, table purges, stranded-agent
// respawn, recovery statistics) is bit-stable. Any change to fault
// ordering, RNG stream layout, or the alive-mask stepping paths moves
// these values.
func TestRoutingChurnResultPinned(t *testing.T) {
	w, err := agentmesh.RoutingNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := agentmesh.FaultPreset("blackout", w.N(), w.Gateways(), 300, 21)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := agentmesh.RoutingNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := agentmesh.RunRouting(w2, agentmesh.RoutingScenario{
		Agents: 100, Kind: agentmesh.PolicyOldestNode, Communicate: true,
		Faults: sched,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	pinF64(t, "Mean", res.Mean, 0.52206638509669656)
	pinF64(t, "MeanStaleness", res.MeanStaleness, 38.500025574804162)
	pinF64(t, "weightedSum(Connectivity)", weightedSum(res.Connectivity), 25103.32629180299)
	pinF64(t, "weightedSum(Ideal)", weightedSum(res.Ideal), 44304.906462729938)
	pinF64(t, "weightedSum(Staleness)", weightedSum(res.Staleness), 1522505.7414287091)
	if res.Stranded != 19 {
		t.Errorf("Stranded = %d, pinned 19", res.Stranded)
	}
	if len(res.Recovery.Events) != 17 || res.Recovery.Recovered != 17 {
		t.Errorf("Recovery events=%d recovered=%d, pinned 17/17",
			len(res.Recovery.Events), res.Recovery.Recovered)
	}
	pinF64(t, "Recovery.Floor", res.Recovery.Floor, 0.36842105263157893)
	pinF64(t, "RecoveryEndToEnd.MeanSteps", res.RecoveryEndToEnd.MeanSteps, 0.058823529411764705)
	pinF64(t, "RecoveryEndToEnd.Floor", res.RecoveryEndToEnd.Floor, 0.040540540540540543)
	if res.Overhead.Moves != 28059 {
		t.Errorf("Overhead.Moves = %d, pinned 28059", res.Overhead.Moves)
	}
	if res.Overhead.RouteDeposits != 4136 {
		t.Errorf("Overhead.RouteDeposits = %d, pinned 4136", res.Overhead.RouteDeposits)
	}
}
