// Package sim provides the simulation machinery shared by both scenarios:
// a time-step run loop, a deterministic parallel executor that maps agents
// onto goroutines, and a small discrete-event queue used by the packet-
// level validation harness.
//
// Determinism contract: the parallel executor only runs *independent* units
// concurrently (per-agent learning, per-node meeting groups), so a
// simulation produces bit-identical results whether workers is 1 or
// runtime.NumCPU() — a property the engine equivalence tests pin down.
package sim

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// Engine executes batches of independent work items, sequentially or on a
// bounded worker pool.
type Engine struct {
	workers int
}

// NewEngine returns an engine running fn calls on the given number of
// workers. workers <= 1 yields a purely sequential engine; workers == 0 is
// normalised to 1. Use NewParallelEngine for a CPU-sized pool.
func NewEngine(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{workers: workers}
}

// NewParallelEngine returns an engine sized to the machine.
func NewParallelEngine() *Engine {
	return NewEngine(runtime.NumCPU())
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// Parallel reports whether the engine uses more than one goroutine.
func (e *Engine) Parallel() bool { return e.workers > 1 }

// ForEach invokes fn(i) for every i in [0, n). Calls MUST be mutually
// independent when the engine is parallel; the engine blocks until all
// complete. Order of execution is unspecified in parallel mode, so any
// dependence on ordering is a bug in the caller.
//
// Extra goroutines beyond the caller are claimed from the shared
// parallel budget per call, so an engine nested under a saturated
// run-level pool degrades gracefully to a sequential sweep — the outer
// replication parallelism takes priority (see internal/parallel).
func (e *Engine) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	extra := 0
	if workers > 1 {
		extra = parallel.TryAcquire(workers - 1)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Lock-free work stealing: each worker claims the next index with one
	// atomic add, so dispatch costs a single contended RMW instead of a
	// mutex round trip (see BenchmarkForEachDispatch for the difference).
	// The caller participates as a worker so exactly extra goroutines are
	// spawned for the extra budget tokens held.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
	parallel.Release(extra)
}

// StepFunc advances a simulation one step and reports whether the run is
// finished.
type StepFunc func(step int) (done bool)

// Run drives step 0..maxSteps-1, stopping early when fn reports done. It
// returns the number of steps executed and whether fn completed before the
// step budget ran out.
func Run(maxSteps int, fn StepFunc) (steps int, completed bool) {
	for step := 0; step < maxSteps; step++ {
		if fn(step) {
			return step + 1, true
		}
	}
	return maxSteps, false
}

// Event is a scheduled callback in the discrete-event queue.
type event struct {
	at  int
	seq int
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// EventQueue is a deterministic discrete-event scheduler: events fire in
// time order, FIFO within a time. The zero value is ready to use.
type EventQueue struct {
	h   eventHeap
	now int
	seq int
}

// Now returns the time of the most recently fired event.
func (q *EventQueue) Now() int { return q.now }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fn to fire at time at. Scheduling in the past (before
// Now) is clamped to Now — the event fires next.
func (q *EventQueue) Schedule(at int, fn func()) {
	if at < q.now {
		at = q.now
	}
	heap.Push(&q.h, event{at: at, seq: q.seq, fn: fn})
	q.seq++
}

// RunUntil fires events in order until the queue is empty or the next
// event is after deadline. It returns the number of events fired.
func (q *EventQueue) RunUntil(deadline int) int {
	fired := 0
	for len(q.h) > 0 && q.h[0].at <= deadline {
		ev := heap.Pop(&q.h).(event)
		q.now = ev.at
		ev.fn()
		fired++
	}
	return fired
}

// Drain fires all remaining events and returns how many fired.
func (q *EventQueue) Drain() int {
	fired := 0
	for len(q.h) > 0 {
		ev := heap.Pop(&q.h).(event)
		q.now = ev.at
		ev.fn()
		fired++
	}
	return fired
}
