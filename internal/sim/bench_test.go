package sim

import (
	"fmt"
	"sync"
	"testing"
)

// mutexForEach is the pre-optimisation dispatch loop (mutex-guarded shared
// counter), kept here as the benchmark baseline for the atomic version now
// in Engine.ForEach.
func mutexForEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkForEachDispatch isolates the per-item dispatch overhead of the
// parallel executor on a near-empty work body — the regime of the
// simulation's many-small-agents phases, where dispatch cost dominates.
func BenchmarkForEachDispatch(b *testing.B) {
	const n = 4096
	sink := make([]int64, n)
	work := func(i int) { sink[i]++ }
	for _, workers := range []int{4, 8} {
		e := NewEngine(workers)
		b.Run(fmt.Sprintf("atomic-%dw", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.ForEach(n, work)
			}
		})
		b.Run(fmt.Sprintf("mutex-%dw", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mutexForEach(workers, n, work)
			}
		})
	}
}
