package sim

import (
	"sync/atomic"
	"testing"
)

func TestNewEngineNormalises(t *testing.T) {
	if NewEngine(0).Workers() != 1 || NewEngine(-3).Workers() != 1 {
		t.Fatal("workers not normalised to 1")
	}
	if NewEngine(4).Workers() != 4 {
		t.Fatal("workers not kept")
	}
	if NewEngine(1).Parallel() || !NewEngine(2).Parallel() {
		t.Fatal("Parallel flag wrong")
	}
	if NewParallelEngine().Workers() < 1 {
		t.Fatal("parallel engine has no workers")
	}
}

func TestForEachCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		e := NewEngine(workers)
		const n = 1000
		var hits [n]int32
		e.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	NewEngine(4).ForEach(0, func(int) { called = true })
	NewEngine(4).ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachMoreWorkersThanItems(t *testing.T) {
	e := NewEngine(16)
	var count int32
	e.ForEach(3, func(int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestRunCompletes(t *testing.T) {
	steps, done := Run(100, func(step int) bool { return step == 41 })
	if !done || steps != 42 {
		t.Fatalf("steps=%d done=%v", steps, done)
	}
}

func TestRunExhaustsBudget(t *testing.T) {
	var seen []int
	steps, done := Run(5, func(step int) bool {
		seen = append(seen, step)
		return false
	})
	if done || steps != 5 {
		t.Fatalf("steps=%d done=%v", steps, done)
	}
	for i, s := range seen {
		if s != i {
			t.Fatalf("step sequence wrong: %v", seen)
		}
	}
}

func TestRunZeroBudget(t *testing.T) {
	steps, done := Run(0, func(int) bool { return true })
	if steps != 0 || done {
		t.Fatal("zero budget should do nothing")
	}
}

func TestEventQueueOrder(t *testing.T) {
	var q EventQueue
	var fired []int
	q.Schedule(5, func() { fired = append(fired, 5) })
	q.Schedule(1, func() { fired = append(fired, 1) })
	q.Schedule(3, func() { fired = append(fired, 3) })
	if n := q.Drain(); n != 3 {
		t.Fatalf("fired %d", n)
	}
	want := []int{1, 3, 5}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("order = %v", fired)
		}
	}
	if q.Now() != 5 {
		t.Fatalf("Now = %d", q.Now())
	}
}

func TestEventQueueFIFOWithinTime(t *testing.T) {
	var q EventQueue
	var fired []string
	q.Schedule(2, func() { fired = append(fired, "a") })
	q.Schedule(2, func() { fired = append(fired, "b") })
	q.Schedule(2, func() { fired = append(fired, "c") })
	q.Drain()
	if fired[0] != "a" || fired[1] != "b" || fired[2] != "c" {
		t.Fatalf("FIFO violated: %v", fired)
	}
}

func TestEventQueueRunUntil(t *testing.T) {
	var q EventQueue
	var fired []int
	for _, at := range []int{1, 5, 10} {
		at := at
		q.Schedule(at, func() { fired = append(fired, at) })
	}
	if n := q.RunUntil(5); n != 2 {
		t.Fatalf("RunUntil fired %d", n)
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d", q.Len())
	}
	q.Drain()
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEventQueueSchedulingDuringRun(t *testing.T) {
	var q EventQueue
	var fired []int
	q.Schedule(1, func() {
		fired = append(fired, 1)
		q.Schedule(2, func() { fired = append(fired, 2) })
	})
	q.Drain()
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("chained event lost: %v", fired)
	}
}

func TestEventQueuePastClamped(t *testing.T) {
	var q EventQueue
	var fired []int
	q.Schedule(10, func() {
		fired = append(fired, 10)
		q.Schedule(3, func() { fired = append(fired, 3) }) // in the past
	})
	q.Drain()
	if len(fired) != 2 {
		t.Fatalf("past event dropped: %v", fired)
	}
	if q.Now() != 10 {
		t.Fatalf("Now moved backwards: %d", q.Now())
	}
}

func BenchmarkForEachSequential(b *testing.B) {
	e := NewEngine(1)
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ForEach(100, func(j int) { sink.Add(int64(j)) })
	}
}

func BenchmarkForEachParallel(b *testing.B) {
	e := NewParallelEngine()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ForEach(100, func(j int) { sink.Add(int64(j)) })
	}
}
