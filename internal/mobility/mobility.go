// Package mobility implements the node-movement models of the paper's two
// scenarios: stationary nodes, constant-velocity movers (the Kramer/Minar
// assumption), random-velocity movers (the paper's modification), and
// random-waypoint movers as a more general comparator.
//
// Each node owns a Mover; calling Step advances the node one simulation
// step and returns the new position. All randomness comes from the stream
// handed to the constructor, so movement traces are reproducible and — as
// the paper requires for comparisons — identical across parameter settings
// that share a seed.
package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Mover advances one node's position per simulation step.
type Mover interface {
	// Step returns the node's next position given its current one.
	Step(p geom.Point) geom.Point
}

// Static is a Mover that never moves. Its zero value is ready to use.
type Static struct{}

// Step returns p unchanged.
func (Static) Step(p geom.Point) geom.Point { return p }

// straightLine moves with a constant velocity vector, bouncing off arena
// walls. It backs both the fixed-velocity and random-velocity models: they
// differ only in how the speed is chosen at construction.
type straightLine struct {
	arena geom.Rect
	vel   geom.Vec
}

func (m *straightLine) Step(p geom.Point) geom.Point {
	np, nv := m.arena.Bounce(p, m.vel)
	m.vel = nv
	return np
}

// NewConstantVelocity returns a Mover with the given speed and a random
// initial heading, bouncing off the arena walls. This is the mobility model
// of Kramer et al. [2]: every mobile node shares one fixed speed.
func NewConstantVelocity(arena geom.Rect, speed float64, s *rng.Stream) Mover {
	return &straightLine{arena: arena, vel: geom.FromAngle(s.Angle()).Scale(speed)}
}

// NewRandomVelocity returns a Mover whose speed is drawn uniformly from
// [minSpeed, maxSpeed) with a random heading — the paper's modification
// ("we assign random velocity to half of the nodes").
func NewRandomVelocity(arena geom.Rect, minSpeed, maxSpeed float64, s *rng.Stream) Mover {
	return &straightLine{
		arena: arena,
		vel:   geom.FromAngle(s.Angle()).Scale(s.Range(minSpeed, maxSpeed)),
	}
}

// Waypoint implements the classic random-waypoint model: pick a uniform
// destination and speed, travel there in a straight line, pause, repeat.
// A positive hop radius restricts each destination to a box around the
// current position (local roaming), which keeps travel legs short so the
// fleet alternates between moving and dwelling like the paper's scenarios.
type Waypoint struct {
	arena              geom.Rect
	hop                float64 // 0 = arena-wide destinations
	minSpeed, maxSpeed float64
	pauseSteps         int
	s                  *rng.Stream

	dest    geom.Point
	speed   float64
	pausing int
	started bool
}

// NewWaypoint returns a random-waypoint Mover. pauseSteps is the dwell time
// at each destination.
func NewWaypoint(arena geom.Rect, minSpeed, maxSpeed float64, pauseSteps int, s *rng.Stream) *Waypoint {
	return &Waypoint{
		arena:      arena,
		minSpeed:   minSpeed,
		maxSpeed:   maxSpeed,
		pauseSteps: pauseSteps,
		s:          s,
	}
}

// NewLocalWaypoint returns a random-waypoint Mover whose destinations stay
// within hop of the current position (clamped to the arena): nodes roam a
// neighbourhood instead of crossing the whole field between pauses.
func NewLocalWaypoint(arena geom.Rect, hop, minSpeed, maxSpeed float64, pauseSteps int, s *rng.Stream) *Waypoint {
	return &Waypoint{
		arena:      arena,
		hop:        hop,
		minSpeed:   minSpeed,
		maxSpeed:   maxSpeed,
		pauseSteps: pauseSteps,
		s:          s,
	}
}

func (m *Waypoint) pickDest(p geom.Point) {
	loX, hiX := m.arena.MinX, m.arena.MaxX
	loY, hiY := m.arena.MinY, m.arena.MaxY
	if m.hop > 0 {
		loX, hiX = math.Max(loX, p.X-m.hop), math.Min(hiX, p.X+m.hop)
		loY, hiY = math.Max(loY, p.Y-m.hop), math.Min(hiY, p.Y+m.hop)
	}
	m.dest = geom.Point{
		X: m.s.Range(loX, hiX),
		Y: m.s.Range(loY, hiY),
	}
	m.speed = m.s.Range(m.minSpeed, m.maxSpeed)
	m.started = true
}

// Step advances toward the current waypoint, pausing on arrival.
func (m *Waypoint) Step(p geom.Point) geom.Point {
	if m.pausing > 0 {
		m.pausing--
		return p
	}
	if !m.started {
		m.pickDest(p)
	}
	to := m.dest.Sub(p)
	d := to.Len()
	if d <= m.speed {
		m.pausing = m.pauseSteps
		m.started = false // pick a fresh destination after the pause
		return m.dest
	}
	return p.Add(to.Unit().Scale(m.speed))
}

// Fleet bundles one Mover per node and steps them together.
type Fleet struct {
	movers []Mover
}

// NewFleet wraps the given movers (indexed by node ID).
func NewFleet(movers []Mover) *Fleet { return &Fleet{movers: movers} }

// Len returns the number of nodes in the fleet.
func (f *Fleet) Len() int { return len(f.movers) }

// Step advances every position in place.
func (f *Fleet) Step(pos []geom.Point) {
	for i, m := range f.movers {
		pos[i] = m.Step(pos[i])
	}
}

// StepOne advances the single node i and returns its new position. Every
// mover owns its node's state and RNG stream exclusively (constructors
// take a per-node stream), so distinct nodes may be stepped concurrently
// and in any order with results identical to a whole-fleet Step — the
// contract sharded world stepping relies on.
func (f *Fleet) StepOne(i int, p geom.Point) geom.Point {
	return f.movers[i].Step(p)
}
