package mobility

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestStatic(t *testing.T) {
	var m Static
	p := geom.Point{X: 3, Y: 4}
	for i := 0; i < 10; i++ {
		if got := m.Step(p); got != p {
			t.Fatalf("static node moved to %v", got)
		}
	}
}

func TestConstantVelocitySpeed(t *testing.T) {
	arena := geom.Square(1000)
	s := rng.New(1)
	m := NewConstantVelocity(arena, 2.5, s)
	p := geom.Point{X: 500, Y: 500}
	for i := 0; i < 50; i++ {
		np := m.Step(p)
		if d := np.Dist(p); math.Abs(d-2.5) > 1e-9 {
			t.Fatalf("step %d moved %v, want 2.5", i, d)
		}
		p = np
	}
}

func TestConstantVelocityStaysInArena(t *testing.T) {
	arena := geom.Square(10)
	for seed := uint64(0); seed < 20; seed++ {
		m := NewConstantVelocity(arena, 3, rng.New(seed))
		p := geom.Point{X: 5, Y: 5}
		for i := 0; i < 200; i++ {
			p = m.Step(p)
			if !arena.Contains(p) {
				t.Fatalf("seed %d escaped arena at %v", seed, p)
			}
		}
	}
}

func TestRandomVelocityRange(t *testing.T) {
	arena := geom.Square(1000)
	for seed := uint64(0); seed < 30; seed++ {
		m := NewRandomVelocity(arena, 1, 4, rng.New(seed))
		p := geom.Point{X: 500, Y: 500}
		np := m.Step(p)
		d := np.Dist(p)
		if d < 1-1e-9 || d >= 4+1e-9 {
			t.Fatalf("seed %d speed %v outside [1,4)", seed, d)
		}
		// Speed stays constant for a given node.
		p2 := m.Step(np)
		if math.Abs(p2.Dist(np)-d) > 1e-9 {
			t.Fatalf("seed %d speed changed from %v to %v", seed, d, p2.Dist(np))
		}
	}
}

func TestRandomVelocityDiversity(t *testing.T) {
	arena := geom.Square(1000)
	s := rng.New(42)
	speeds := map[float64]bool{}
	for i := 0; i < 10; i++ {
		m := NewRandomVelocity(arena, 1, 4, s.Child(uint64(i)))
		p := m.Step(geom.Point{X: 500, Y: 500})
		speeds[math.Round(p.Dist(geom.Point{X: 500, Y: 500})*1e6)] = true
	}
	if len(speeds) < 8 {
		t.Fatalf("random velocities not diverse: %d distinct of 10", len(speeds))
	}
}

func TestWaypointReachesAndPauses(t *testing.T) {
	arena := geom.Square(100)
	m := NewWaypoint(arena, 5, 5, 3, rng.New(9))
	p := geom.Point{X: 50, Y: 50}
	var arrived geom.Point
	steps := 0
	for ; steps < 1000; steps++ {
		np := m.Step(p)
		if np == p && steps > 0 {
			arrived = p
			break
		}
		p = np
	}
	if steps == 1000 {
		t.Fatal("waypoint never paused")
	}
	// Must stay paused for the configured dwell.
	for i := 0; i < 2; i++ { // one pause step consumed by the detection loop
		if got := m.Step(arrived); got != arrived {
			t.Fatalf("moved during pause: %v", got)
		}
	}
	// Then it picks a new destination and moves again.
	moved := false
	for i := 0; i < 50; i++ {
		np := m.Step(arrived)
		if np != arrived {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("never resumed after pause")
	}
}

func TestWaypointStaysInArena(t *testing.T) {
	arena := geom.Square(50)
	m := NewWaypoint(arena, 1, 10, 0, rng.New(3))
	p := geom.Point{X: 25, Y: 25}
	for i := 0; i < 500; i++ {
		p = m.Step(p)
		if !arena.Contains(p) {
			t.Fatalf("waypoint escaped arena: %v", p)
		}
	}
}

func TestWaypointSpeedBounded(t *testing.T) {
	arena := geom.Square(100)
	m := NewWaypoint(arena, 2, 6, 0, rng.New(5))
	p := geom.Point{X: 10, Y: 10}
	for i := 0; i < 300; i++ {
		np := m.Step(p)
		if d := np.Dist(p); d > 6+1e-9 {
			t.Fatalf("step %d moved %v > max speed", i, d)
		}
		p = np
	}
}

func TestFleetStepsAll(t *testing.T) {
	arena := geom.Square(100)
	movers := []Mover{
		Static{},
		NewConstantVelocity(arena, 1, rng.New(1)),
		NewRandomVelocity(arena, 1, 2, rng.New(2)),
	}
	f := NewFleet(movers)
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	pos := []geom.Point{{X: 1, Y: 1}, {X: 50, Y: 50}, {X: 60, Y: 60}}
	orig := append([]geom.Point(nil), pos...)
	f.Step(pos)
	if pos[0] != orig[0] {
		t.Fatal("static node moved")
	}
	if pos[1] == orig[1] || pos[2] == orig[2] {
		t.Fatal("mobile node did not move")
	}
}

func TestDeterministicTraces(t *testing.T) {
	arena := geom.Square(100)
	run := func() []geom.Point {
		m := NewRandomVelocity(arena, 1, 3, rng.New(77))
		p := geom.Point{X: 20, Y: 20}
		var trace []geom.Point
		for i := 0; i < 100; i++ {
			p = m.Step(p)
			trace = append(trace, p)
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverged at step %d", i)
		}
	}
}

// TestFleetStepOneMatchesStep pins the shard-worker entry point: stepping
// each mover individually through StepOne (in any per-node order) must
// reproduce Fleet.Step exactly, because every mover owns a private RNG
// stream.
func TestFleetStepOneMatchesStep(t *testing.T) {
	arena := geom.Square(60)
	build := func() (*Fleet, []geom.Point) {
		s := rng.New(12)
		n := 24
		movers := make([]Mover, n)
		pos := make([]geom.Point, n)
		for i := range movers {
			pos[i] = geom.Point{X: s.Range(0, 60), Y: s.Range(0, 60)}
			switch i % 3 {
			case 0:
				movers[i] = NewRandomVelocity(arena, 0.5, 2, s.Child(uint64(i)))
			case 1:
				movers[i] = NewLocalWaypoint(arena, 10, 0.5, 2, 3, s.Child(uint64(i)))
			default:
				movers[i] = Static{}
			}
		}
		return NewFleet(movers), pos
	}
	fa, pa := build()
	fb, pb := build()
	for step := 0; step < 200; step++ {
		fa.Step(pa)
		// Step the twin one mover at a time, deliberately in reverse
		// order: per-mover RNG streams make the order unobservable.
		for i := fb.Len() - 1; i >= 0; i-- {
			pb[i] = fb.StepOne(i, pb[i])
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("step %d: mover %d diverged: %v vs %v", step, i, pa[i], pb[i])
			}
		}
	}
}
