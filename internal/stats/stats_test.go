package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEq(got, tt.want) {
				t.Fatalf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, math.Sqrt(32.0/7)) {
		t.Fatalf("StdDev = %v", got)
	}
	if StdDev([]float64{3}) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate StdDev should be 0")
	}
	if StdDev([]float64{5, 5, 5}) != 0 {
		t.Fatal("constant sample should have 0 sd")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	want := 1.96 * StdDev(xs) / math.Sqrt(5)
	if got := CI95(xs); !almostEq(got, want) {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("single-sample CI should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || !almostEq(s.Mean, 2.5) || !almostEq(s.Min, 1) || !almostEq(s.Max, 4) {
		t.Fatalf("Summary = %+v", s)
	}
	if !almostEq(s.Median, 2.5) {
		t.Fatalf("Median = %v", s.Median)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); !almostEq(got, tt.want) {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !almostEq(got, 1.5) {
		t.Fatalf("interpolated quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Fatal("single-element quantile")
	}
}

func TestInts(t *testing.T) {
	out := Ints([]int{1, 2, 3})
	if len(out) != 3 || out[2] != 3.0 {
		t.Fatalf("Ints = %v", out)
	}
}

func TestAverageSeriesEqualLengths(t *testing.T) {
	avg := AverageSeries([][]float64{{1, 2, 3}, {3, 4, 5}})
	want := []float64{2, 3, 4}
	for i := range want {
		if !almostEq(avg[i], want[i]) {
			t.Fatalf("avg = %v", avg)
		}
	}
}

func TestAverageSeriesPadsWithFinalValue(t *testing.T) {
	avg := AverageSeries([][]float64{{0, 1}, {0, 0, 0, 1}})
	// t=2: run0 padded with 1 → (1+0)/2; t=3: (1+1)/2.
	want := []float64{0, 0.5, 0.5, 1}
	if len(avg) != 4 {
		t.Fatalf("len = %d", len(avg))
	}
	for i := range want {
		if !almostEq(avg[i], want[i]) {
			t.Fatalf("avg = %v, want %v", avg, want)
		}
	}
}

func TestAverageSeriesEmptyRuns(t *testing.T) {
	if AverageSeries(nil) != nil {
		t.Fatal("nil runs should give nil")
	}
	avg := AverageSeries([][]float64{nil, {2, 4}})
	if len(avg) != 2 || !almostEq(avg[0], 2) {
		t.Fatalf("avg with empty run = %v", avg)
	}
}

func TestAverageSeriesMonotonePreserved(t *testing.T) {
	f := func(seed int64) bool {
		// Monotone non-decreasing inputs must average to a monotone series.
		r1 := []float64{0, 0.2, 0.5, 1}
		r2 := []float64{0, 0.6, 1}
		avg := AverageSeries([][]float64{r1, r2})
		for i := 1; i < len(avg); i++ {
			if avg[i] < avg[i-1]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := WindowMean(xs, 1, 4); !almostEq(got, 3) {
		t.Fatalf("WindowMean = %v", got)
	}
	if got := WindowMean(xs, -5, 100); !almostEq(got, 3) {
		t.Fatalf("clamped WindowMean = %v", got)
	}
	if !math.IsNaN(WindowMean(xs, 3, 3)) {
		t.Fatal("empty window should be NaN")
	}
}

func TestWindowStd(t *testing.T) {
	xs := []float64{1, 1, 2, 4, 4, 4}
	if got := WindowStd(xs, 0, 2); got != 0 {
		t.Fatalf("constant window sd = %v", got)
	}
	if got := WindowStd(xs, 10, 20); got != 0 {
		t.Fatal("empty window sd should be 0")
	}
	if WindowStd(xs, 0, len(xs)) != StdDev(xs) {
		t.Fatal("full window should equal StdDev")
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6}
	got := Downsample(xs, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("Downsample = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Downsample = %v", got)
		}
	}
	// Final point kept even when not on stride.
	got = Downsample([]float64{0, 1, 2, 3}, 3)
	if got[len(got)-1] != 3 {
		t.Fatalf("final point dropped: %v", got)
	}
	// k<=1 copies.
	cp := Downsample(xs, 1)
	cp[0] = 99
	if xs[0] == 99 {
		t.Fatal("Downsample(1) shares storage")
	}
}

func TestConvergenceStep(t *testing.T) {
	// Ramp then plateau at 1.0 with tiny wiggle.
	xs := []float64{0, 0.2, 0.5, 0.8, 0.99, 1.0, 0.99, 1.0, 1.0, 0.99, 1.0, 1.0}
	got := ConvergenceStep(xs, 0.05)
	if got != 4 {
		t.Fatalf("ConvergenceStep = %d, want 4", got)
	}
	// Never settles.
	saw := []float64{0, 1, 0, 1, 0, 1, 0, 1}
	if got := ConvergenceStep(saw, 0.1); got != -1 {
		t.Fatalf("oscillating series converged at %d", got)
	}
	// Constant series converges immediately.
	if got := ConvergenceStep([]float64{5, 5, 5, 5}, 0.01); got != 0 {
		t.Fatalf("constant series = %d", got)
	}
	if ConvergenceStep(nil, 0.1) != -1 {
		t.Fatal("empty series should be -1")
	}
}

func TestRecovery(t *testing.T) {
	// Baseline 1.0, fault at index 3 drops to 0.4, climbs back to within
	// tol of baseline at index 6; a second fault at index 8 never recovers.
	series := []float64{1, 1, 1, 0.4, 0.5, 0.8, 0.99, 1, 0.3, 0.35, 0.4}
	rs := Recovery(series, []int{3, 8}, 0.02)
	if len(rs.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(rs.Events))
	}
	ev := rs.Events[0]
	if !ev.Recovered || ev.Steps != 3 {
		t.Errorf("event 0: recovered=%v steps=%d, want recovery in 3 steps", ev.Recovered, ev.Steps)
	}
	if ev.Baseline != 1 || ev.Floor != 0.4 {
		t.Errorf("event 0: baseline=%v floor=%v, want 1 and 0.4", ev.Baseline, ev.Floor)
	}
	ev = rs.Events[1]
	if ev.Recovered {
		t.Error("event 1 should be censored")
	}
	if ev.Floor != 0.3 {
		t.Errorf("event 1: floor=%v, want 0.3", ev.Floor)
	}
	if rs.Recovered != 1 || rs.Censored != 1 {
		t.Errorf("recovered=%d censored=%d, want 1 and 1", rs.Recovered, rs.Censored)
	}
	if rs.MeanSteps != 3 {
		t.Errorf("MeanSteps=%v, want 3", rs.MeanSteps)
	}
	if rs.Floor != 0.3 {
		t.Errorf("global floor=%v, want 0.3", rs.Floor)
	}
}

func TestRecoveryEdgeCases(t *testing.T) {
	// Out-of-range and zero fault indices are skipped (no baseline exists).
	rs := Recovery([]float64{1, 0.5, 1}, []int{0, -2, 7}, 0.02)
	if len(rs.Events) != 0 {
		t.Fatalf("degenerate fault steps produced %d events", len(rs.Events))
	}
	if !math.IsNaN(rs.MeanSteps) || !math.IsNaN(rs.Floor) {
		t.Error("empty recovery stats should be NaN-valued")
	}
	// Instant recovery: the fault never dents the series.
	rs = Recovery([]float64{1, 1, 1}, []int{1}, 0.02)
	if rs.Recovered != 1 || rs.Events[0].Steps != 0 {
		t.Errorf("undented series: recovered=%d steps=%d, want instant recovery",
			rs.Recovered, rs.Events[0].Steps)
	}
	// A fault improving the metric also recovers instantly, floor above
	// baseline.
	rs = Recovery([]float64{0.5, 0.9, 0.9}, []int{1}, 0.02)
	if rs.Recovered != 1 || rs.Events[0].Floor != 0.9 {
		t.Errorf("improving fault: recovered=%d floor=%v", rs.Recovered, rs.Events[0].Floor)
	}
}
