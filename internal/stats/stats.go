// Package stats implements the aggregation the experiments report: means,
// dispersion, confidence intervals, and pointwise averaging of per-run time
// series (the paper averages every data point over 40 independent runs).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the normal-approximation 95% confidence half-width of the
// mean: 1.96·s/√n.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N                    int
	Mean, Std, Min, Max  float64
	Median, P25, P75, CI float64
}

// Summarize computes a Summary. An empty sample yields zero values with
// NaN mean/median.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs), CI: CI95(xs)}
	if len(xs) == 0 {
		s.Median = math.NaN()
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f±%.2f sd=%.2f min=%.2f med=%.2f max=%.2f",
		s.N, s.Mean, s.CI, s.Std, s.Min, s.Median, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ints converts an int sample to float64 for the helpers above.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// AverageSeries averages several per-run time series pointwise. Runs may
// have different lengths (mapping runs stop when the task finishes);
// shorter runs are padded by carrying their final value forward, which is
// the right semantics for monotone knowledge curves — once a run reaches
// 100% it stays there.
func AverageSeries(runs [][]float64) []float64 {
	maxLen := 0
	for _, r := range runs {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	if maxLen == 0 {
		return nil
	}
	out := make([]float64, maxLen)
	for t := 0; t < maxLen; t++ {
		sum, n := 0.0, 0
		for _, r := range runs {
			if len(r) == 0 {
				continue
			}
			v := r[len(r)-1]
			if t < len(r) {
				v = r[t]
			}
			sum += v
			n++
		}
		if n > 0 {
			out[t] = sum / float64(n)
		}
	}
	return out
}

// WindowMean averages xs over the index window [from, to), clamping the
// bounds to the slice. It returns NaN if the window is empty.
func WindowMean(xs []float64, from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(xs) {
		to = len(xs)
	}
	if from >= to {
		return math.NaN()
	}
	return Mean(xs[from:to])
}

// WindowStd returns the sample standard deviation over [from, to).
func WindowStd(xs []float64, from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(xs) {
		to = len(xs)
	}
	if from >= to {
		return 0
	}
	return StdDev(xs[from:to])
}

// Downsample keeps every k-th point of xs (plus the final point), for
// compact series printing. k <= 1 returns a copy.
func Downsample(xs []float64, k int) []float64 {
	if k <= 1 {
		return append([]float64(nil), xs...)
	}
	var out []float64
	for i := 0; i < len(xs); i += k {
		out = append(out, xs[i])
	}
	if len(xs) > 0 && (len(xs)-1)%k != 0 {
		out = append(out, xs[len(xs)-1])
	}
	return out
}

// RecoveryEvent is the measured response of a series to one fault event:
// how far the metric fell and how long it took to climb back.
type RecoveryEvent struct {
	// Step is the series index at which the fault first affected the
	// measurement.
	Step int
	// Baseline is the value immediately before the fault.
	Baseline float64
	// Floor is the minimum value from the fault until recovery (or the end
	// of the series when the event never recovers).
	Floor float64
	// Recovered reports whether the series climbed back to within tol of
	// the baseline before the series ended.
	Recovered bool
	// Steps is the time to reconvergence: indices from the fault until the
	// first value >= Baseline - tol. Valid only when Recovered.
	Steps int
}

// RecoveryStats summarises a series' graceful-degradation behaviour over a
// set of fault events.
type RecoveryStats struct {
	// Events holds one entry per observable fault step, in step order.
	Events []RecoveryEvent
	// Recovered and Censored partition the events: recovered within the
	// series versus still degraded when it ended.
	Recovered, Censored int
	// MeanSteps averages time-to-reconvergence over the recovered events
	// (NaN when none recovered).
	MeanSteps float64
	// Floor is the global minimum over every event's degradation window —
	// the connectivity floor during the worst disruption.
	Floor float64
}

// Recovery measures time-to-reconvergence and degradation floors: for each
// fault step k (a series index; out-of-range or zero indices are skipped),
// the baseline is series[k-1], and the series recovers at the first index
// j >= k with series[j] >= baseline - tol. Events that never recover are
// censored, with their floor taken over the remaining series. Overlapping
// windows (a second fault before the first recovered) are measured
// independently against their own baselines.
func Recovery(series []float64, faultSteps []int, tol float64) RecoveryStats {
	rs := RecoveryStats{Floor: math.NaN()}
	var recSteps []float64
	for _, k := range faultSteps {
		if k <= 0 || k >= len(series) {
			continue
		}
		ev := RecoveryEvent{Step: k, Baseline: series[k-1], Floor: math.Inf(1)}
		target := ev.Baseline - tol
		for j := k; j < len(series); j++ {
			if series[j] < ev.Floor {
				ev.Floor = series[j]
			}
			if series[j] >= target {
				ev.Recovered = true
				ev.Steps = j - k
				break
			}
		}
		if math.IsInf(ev.Floor, 1) {
			ev.Floor = ev.Baseline
		}
		if ev.Recovered {
			rs.Recovered++
			recSteps = append(recSteps, float64(ev.Steps))
		} else {
			rs.Censored++
		}
		if math.IsNaN(rs.Floor) || ev.Floor < rs.Floor {
			rs.Floor = ev.Floor
		}
		rs.Events = append(rs.Events, ev)
	}
	rs.MeanSteps = Mean(recSteps)
	return rs
}

// ConvergenceStep returns the first index from which the series stays
// within eps of its tail mean (the mean over the last half of the
// series), or -1 if it never settles. This is the "converged to its mean
// behaviour" detector the routing experiments use to justify their
// measurement window.
func ConvergenceStep(xs []float64, eps float64) int {
	if len(xs) == 0 {
		return -1
	}
	tail := Mean(xs[len(xs)/2:])
	for start := 0; start < len(xs); start++ {
		ok := true
		for _, v := range xs[start:] {
			if math.Abs(v-tail) > eps {
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
	return -1
}
