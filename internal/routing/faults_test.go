package routing

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/trace"
)

// testFaultSchedule builds the acceptance workload — node churn plus a
// gateway-failure window plus a partition — against the shared testSpec
// world geometry.
func testFaultSchedule(t *testing.T, steps int) *faults.Schedule {
	t.Helper()
	w, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.Preset("blackout", w.N(), w.Gateways(), steps, 4242)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Len() == 0 {
		t.Fatal("acceptance schedule is empty")
	}
	return sched
}

// TestFaultedRunEquivalenceAcrossWorkers is the PR's acceptance gate: a
// churn + gateway-failure + partition scenario must produce bit-identical
// aggregates at every RunWorkers and ShardWorkers setting in {1, 2, 4}.
func TestFaultedRunEquivalenceAcrossWorkers(t *testing.T) {
	const steps, runs = 120, 3
	sched := testFaultSchedule(t, steps)
	base := Scenario{
		Agents: 30, Communicate: true, Steps: steps, MeasureFrom: 40,
		Faults: sched,
	}
	var baseline Aggregate
	for _, rw := range []int{1, 2, 4} {
		for _, sw := range []int{1, 2, 4} {
			sc := base
			sc.RunWorkers, sc.ShardWorkers = rw, sw
			agg, err := RunMany(freshWorld(11), sc, runs, 99)
			if err != nil {
				t.Fatalf("runworkers=%d shardworkers=%d: %v", rw, sw, err)
			}
			if rw == 1 && sw == 1 {
				baseline = agg
				if agg.Stranded == 0 {
					t.Fatal("churn stranded no agents — workload too tame to gate on")
				}
				if agg.Recovered+agg.Censored == 0 {
					t.Fatal("no recovery events measured")
				}
				continue
			}
			if !reflect.DeepEqual(agg, baseline) {
				t.Errorf("runworkers=%d shardworkers=%d: aggregate diverges from sequential baseline", rw, sw)
			}
		}
	}
}

// TestFaultedRunEquivalenceAcrossEngines checks the same faulted scenario
// is bit-identical whether the world steps through the incremental engine
// or the per-step full rebuild.
func TestFaultedRunEquivalenceAcrossEngines(t *testing.T) {
	const steps = 100
	sched := testFaultSchedule(t, steps)
	sc := Scenario{Agents: 25, Communicate: true, Steps: steps, Faults: sched}
	wInc, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	wFull, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	wFull.SetFullRebuild(true)
	rInc, err := Run(wInc, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := Run(wFull, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rInc, rFull) {
		t.Error("faulted results diverge between incremental and full-rebuild stepping")
	}
}

// TestStrandedPolicies pins the two stranded-agent fates: both policies
// see the same stranded count (same schedule, same world), respawn keeps
// the population intact while kill shrinks the move budget.
func TestStrandedPolicies(t *testing.T) {
	const steps = 120
	sched := testFaultSchedule(t, steps)
	base := Scenario{Agents: 30, Communicate: true, Steps: steps, Faults: sched}

	w1, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	respawn := base
	respawn.StrandedPolicy = StrandedRespawn
	resR, err := Run(w1, respawn, 7)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	kill := base
	kill.StrandedPolicy = StrandedKill
	resK, err := Run(w2, kill, 7)
	if err != nil {
		t.Fatal(err)
	}
	if resR.Stranded == 0 {
		t.Fatal("no agent was ever stranded — churn workload too tame")
	}
	// The first stranding happens before policies diverge, so both runs
	// must observe at least one; after that the populations differ.
	if resK.Stranded == 0 {
		t.Error("kill policy observed no strandings")
	}
	if resK.Overhead.Moves >= resR.Overhead.Moves {
		t.Errorf("killing agents should cost fewer moves: kill=%d respawn=%d",
			resK.Overhead.Moves, resR.Overhead.Moves)
	}
}

// TestRecoveryAndStalenessPopulated checks the graceful-degradation
// measures come out of a faulted run: per-event recovery stats with sane
// floors, and a staleness series covering every step.
func TestRecoveryAndStalenessPopulated(t *testing.T) {
	const steps = 120
	sched := testFaultSchedule(t, steps)
	sc := Scenario{Agents: 30, Communicate: true, Steps: steps, MeasureFrom: 40, Faults: sched}
	w, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Staleness) != steps {
		t.Fatalf("staleness series has %d points, want %d", len(res.Staleness), steps)
	}
	if math.IsNaN(res.MeanStaleness) {
		t.Error("MeanStaleness is NaN")
	}
	if len(res.Recovery.Events) == 0 {
		t.Fatal("no recovery events measured")
	}
	for i, ev := range res.Recovery.Events {
		if ev.Floor < 0 || ev.Floor > 1 {
			t.Errorf("event %d: floor %v outside [0,1]", i, ev.Floor)
		}
		// A fault can *raise* connectivity (killing an unconnected node
		// shrinks the denominator), so the floor may sit above the
		// baseline for instantly-recovered events — but a censored event
		// by definition never climbed back within tolerance.
		if !ev.Recovered && ev.Floor >= ev.Baseline-sc.RecoveryTol {
			t.Errorf("event %d: censored but floor %v within tolerance of baseline %v",
				i, ev.Floor, ev.Baseline)
		}
		if ev.Recovered && ev.Steps < 0 {
			t.Errorf("event %d: negative reconvergence time %d", i, ev.Steps)
		}
	}
	if res.Recovery.Recovered+res.Recovery.Censored != len(res.Recovery.Events) {
		t.Error("recovered + censored does not partition the events")
	}
	if math.IsNaN(res.Recovery.Floor) || res.Recovery.Floor < 0 || res.Recovery.Floor > 1 {
		t.Errorf("global floor %v outside [0,1]", res.Recovery.Floor)
	}
}

// TestFaultInstrumentationDoesNotPerturb pins the no-perturbation
// contract for the faults_* counters: attaching a registry to a faulted
// run changes nothing in the seeded result, and the stranded counter
// agrees with the result's count.
func TestFaultInstrumentationDoesNotPerturb(t *testing.T) {
	const steps = 100
	sched := testFaultSchedule(t, steps)
	sc := Scenario{Agents: 25, Communicate: true, Steps: steps, Faults: sched}
	wPlain, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(wPlain, sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	wInst, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	sc.Metrics = reg
	inst, err := Run(wInst, sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, inst) {
		t.Error("attaching metrics perturbed the faulted run")
	}
	if got := reg.Counter("faults_stranded_agents_total").Value(); got != uint64(inst.Stranded) {
		t.Errorf("faults_stranded_agents_total = %d, want %d", got, inst.Stranded)
	}
	if reg.Counter("faults_injected_total").Value() == 0 {
		t.Error("faults_injected_total never incremented")
	}
	if reg.Counter("faults_routes_purged_total").Value() == 0 {
		t.Error("faults_routes_purged_total never incremented — table purge untested")
	}
}

// TestFaultTraceEvents checks each fault epoch emits exactly one
// trace.KindFault event.
func TestFaultTraceEvents(t *testing.T) {
	const steps = 100
	sched := testFaultSchedule(t, steps)
	counter := trace.NewCounter()
	sc := Scenario{Agents: 20, Steps: steps, Faults: sched, Tracer: counter}
	w, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w, sc, 13); err != nil {
		t.Fatal(err)
	}
	epochs := w.FaultEpoch()
	if epochs == 0 {
		t.Fatal("no fault epochs fired")
	}
	// Epochs fired on the final world step have no following harness step
	// to react in, so the trace may miss at most the last one.
	if got := counter.Count(trace.KindFault); got != epochs && got != epochs-1 {
		t.Errorf("fault trace events = %d, want %d (or %d)", got, epochs, epochs-1)
	}
}

// TestFaultsDetachedLeavesNoResidue runs a faulted run, then a clean run
// on a fresh world with the same seed, and checks the clean run matches a
// never-faulted baseline — no state leaks through the shared schedule or
// pooled run state.
func TestFaultsDetachedLeavesNoResidue(t *testing.T) {
	sched := testFaultSchedule(t, 80)
	scF := Scenario{Agents: 20, Steps: 80, Faults: sched}
	scC := Scenario{Agents: 20, Steps: 80}
	w1, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w1, scF, 3); err != nil {
		t.Fatal(err)
	}
	w2, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	clean1, err := Run(w2, scC, 3)
	if err != nil {
		t.Fatal(err)
	}
	w3, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	clean2, err := Run(w3, scC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean1, clean2) {
		t.Error("faulted run left residue that changed a later clean run")
	}
}
