package routing

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/rng"
)

// reachSetBrute is the O(N·(N+entries)) reference for ReachSet: a forward
// search per node over the live-entry graph.
func reachSetBrute(w *network.World, ts *Tables) []bool {
	n := w.N()
	topo := w.Topology()
	out := make([][]NodeID, n)
	for u := 0; u < n; u++ {
		for _, e := range ts.At(NodeID(u)).Entries() {
			if topo.HasEdge(NodeID(u), e.NextHop) {
				out[u] = append(out[u], e.NextHop)
			}
		}
	}
	isGW := make([]bool, n)
	for _, g := range w.Gateways() {
		isGW[g] = true
	}
	reach := make([]bool, n)
	for u := 0; u < n; u++ {
		seen := make([]bool, n)
		stack := []NodeID{NodeID(u)}
		seen[u] = true
		for len(stack) > 0 && !reach[u] {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if isGW[v] {
				reach[u] = true
			}
			for _, nxt := range out[v] {
				if !seen[nxt] {
					seen[nxt] = true
					stack = append(stack, nxt)
				}
			}
		}
	}
	return reach
}

// TestReachSetMatchesBrute checks the reverse-BFS ReachSet against the
// forward-search reference on randomized tables and evolving topologies.
func TestReachSetMatchesBrute(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 17)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(41)
	for trial := 0; trial < 25; trial++ {
		ts := randomTables(w, s, 0.9)
		got := ReachSet(w, ts)
		want := reachSetBrute(w, ts)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("trial %d: ReachSet[%d] = %v, brute = %v", trial, u, got[u], want[u])
			}
		}
		w.Step()
	}
}

// chainWorld is a static line 0—1—…—n-1 with node 0 the only gateway.
func chainWorld(t *testing.T, n int) *network.World {
	t.Helper()
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * 5, Y: 0}
		radios[i] = radio.New(6)
		movers[i] = mobility.Static{}
	}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Square(float64(n) * 5),
		Positions: pos,
		Radios:    radios,
		Movers:    movers,
		Gateways:  []network.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestReachSetQueueDrainsDeepChain pins the BFS queue semantics: a
// maximally deep propagation (every node's route chains through its
// predecessor toward the single gateway) must mark the entire chain. This
// exercises the head-indexed queue through n-1 pops with the queue growing
// while it drains — the pattern the old queue = queue[1:] form handled by
// keeping the whole backing array alive per pop.
func TestReachSetQueueDrainsDeepChain(t *testing.T) {
	const n = 120
	w := chainWorld(t, n)
	ts := NewTables(n, 1)
	for u := 1; u < n; u++ {
		ts.At(NodeID(u)).Update(network.Entry{
			Gateway: 0, NextHop: NodeID(u - 1), Hops: u, Updated: 1,
		})
	}
	reach := ReachSet(w, ts)
	for u := 0; u < n; u++ {
		if !reach[u] {
			t.Fatalf("node %d should chain to the gateway", u)
		}
	}
	// Break one link's entry mid-chain: everything past it must drop out.
	ts.At(60).Update(network.Entry{Gateway: 0, NextHop: 60, Hops: 1, Updated: 2})
	reach = ReachSet(w, ts)
	for u := 0; u < n; u++ {
		want := u < 60
		if u == 0 {
			want = true
		}
		if reach[u] != want {
			t.Fatalf("after cut: reach[%d] = %v, want %v", u, reach[u], want)
		}
	}
}

// TestScratchReachSetMatchesFresh reuses one Scratch across many calls and
// checks every result against the allocation-per-call package form.
func TestScratchReachSetMatchesFresh(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 23)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	var scratch Scratch
	for trial := 0; trial < 25; trial++ {
		ts := randomTables(w, s, s.Float64())
		got := scratch.ReachSet(w, ts)
		want := ReachSet(w, ts)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("trial %d: scratch[%d] = %v, fresh = %v", trial, u, got[u], want[u])
			}
		}
		if gc, fc := scratch.Connectivity(w, ts), Connectivity(w, ts); gc != fc {
			t.Fatalf("trial %d: scratch connectivity %v != fresh %v", trial, gc, fc)
		}
		w.Step()
	}
}

// TestScratchReachSetZeroAllocs enforces the allocation budget: after
// warmup, the scratch-buffered reach set must not allocate at all.
func TestScratchReachSetZeroAllocs(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 29)
	if err != nil {
		t.Fatal(err)
	}
	ts := randomTables(w, rng.New(8), 0.9)
	var scratch Scratch
	scratch.ReachSet(w, ts) // size the buffers
	avg := testing.AllocsPerRun(50, func() {
		scratch.ReachSet(w, ts)
	})
	if avg != 0 {
		t.Fatalf("Scratch.ReachSet allocates %v per run, want 0", avg)
	}
	avg = testing.AllocsPerRun(50, func() {
		scratch.Connectivity(w, ts)
	})
	if avg != 0 {
		t.Fatalf("Scratch.Connectivity allocates %v per run, want 0", avg)
	}
}
