package routing

import (
	"io"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// withBudget grants the shared executor budget n extra goroutines for the
// duration of fn — without it, the 1-CPU CI containers would silently
// serialise every "parallel" path and the equivalence tests would prove
// nothing.
func withBudget(t *testing.T, n int, fn func()) {
	t.Helper()
	old := parallel.Budget()
	parallel.SetBudget(n)
	defer parallel.SetBudget(old)
	fn()
}

// TestRunManyParallelEquivalence pins the determinism contract of the
// replication executor: the aggregate of a RunMany batch is bit-identical
// at every RunWorkers value, because each run derives its seed from its
// index alone and the reduction walks result slots in run order.
func TestRunManyParallelEquivalence(t *testing.T) {
	sc := Scenario{Agents: 25, Kind: core.PolicyOldestNode, Communicate: true, Steps: 100}
	const runs, seed = 5, 99
	base, err := RunMany(freshWorld(42), sc, runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, runtime.NumCPU(), runs + 3} {
		withBudget(t, 8, func() {
			psc := sc
			psc.RunWorkers = workers
			got, err := RunMany(freshWorld(42), psc, runs, seed)
			if err != nil {
				t.Fatalf("RunWorkers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("RunWorkers=%d: aggregate differs from sequential", workers)
			}
		})
	}
}

// TestRunManyParallelSharedWorldRejected pins the guard: a worldFor that
// returns one shared *World is fine sequentially but must fail loudly
// under parallel replication (worlds are stepped, so sharing is a race).
func TestRunManyParallelSharedWorldRejected(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	shared := func(int) (*network.World, error) { return w, nil }
	sc := Scenario{Agents: 10, Kind: core.PolicyOldestNode, Steps: 40}
	if _, err := RunMany(shared, sc, 3, 7); err != nil {
		t.Fatalf("sequential shared world rejected: %v", err)
	}
	withBudget(t, 4, func() {
		sc.RunWorkers = 4
		_, err := RunMany(shared, sc, 3, 7)
		if err == nil || !strings.Contains(err.Error(), "fresh world per run") {
			t.Fatalf("parallel shared world not rejected, err = %v", err)
		}
	})
}

// TestRunManyTracerForcesSequential pins that attaching a shared-sink
// Tracer downgrades RunWorkers to sequential execution: the shared static
// world passes the guard (which only engages in parallel mode), and the
// aggregate matches the plain sequential one.
func TestRunManyTracerForcesSequential(t *testing.T) {
	sc := Scenario{Agents: 10, Kind: core.PolicyOldestNode, Steps: 40}
	base, err := RunMany(freshWorld(42), sc, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	withBudget(t, 4, func() {
		traced := sc
		traced.RunWorkers = 4
		traced.Tracer = trace.NewWriter(io.Discard)
		got, err := RunMany(freshWorld(42), traced, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Error("traced batch differs from sequential baseline")
		}
	})
}

// TestRunReusesPooledState pins the zero-allocation property of the
// pooled per-worker scratch: after a warm-up run has populated the state
// pool, further runs must not rebuild tables, groupers, or the decided-
// move slice from scratch. Whole-run allocations (agents, result curves)
// remain, so the budget is a coarse ceiling calibrated against the
// warm-up run rather than zero.
func TestRunReusesPooledState(t *testing.T) {
	// Under the race detector sync.Pool deliberately drops a fraction of
	// Puts, so any single Run→Get round-trip can come back with a fresh
	// zero-cap state instead of the warm one; retry until a warm state
	// survives the pool.
	sc := Scenario{Agents: 10, Kind: core.PolicyOldestNode, Steps: 40}
	var st *runState
	var n int
	for attempt := 0; st == nil && attempt < 20; attempt++ {
		w, err := netgen.Generate(testSpec(), 42)
		if err != nil {
			t.Fatal(err)
		}
		n = w.N()
		if _, err := Run(w, sc, 7); err != nil {
			t.Fatal(err)
		}
		if got := statePool.Get().(*runState); cap(got.tables.tables) >= n {
			st = got
		}
	}
	if st == nil {
		t.Fatalf("no pooled state with >= %d tables survived 20 runs", n)
	}
	tablesCap, nextCap := cap(st.tables.tables), cap(st.next)
	if nextCap < sc.Agents {
		t.Fatalf("pooled next slice caps at %d, want >= %d", nextCap, sc.Agents)
	}
	// A second run on an equally sized world must reuse that storage:
	// every table survives reset with entries dropped and evictions
	// zeroed, indistinguishable from fresh tables.
	st.tables.tables[0].Update(network.Entry{Gateway: 1, NextHop: 2, Hops: 3, Updated: 4})
	st.reset(n, sc.Agents, 1)
	if got := st.tables.tables[0].Len(); got != 0 {
		t.Fatalf("reset table still holds %d entries", got)
	}
	if got := st.tables.Evictions(); got != 0 {
		t.Fatalf("reset tables report %d evictions", got)
	}
	if &st.tables.tables[0] == nil || cap(st.tables.tables) != tablesCap {
		t.Fatalf("reset reallocated table storage: cap %d → %d", tablesCap, cap(st.tables.tables))
	}
	statePool.Put(st)
}
