package routing

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/rng"
)

// randomTables fills tables with arbitrary (possibly nonsensical) entries.
func randomTables(w *network.World, s *rng.Stream, density float64) *Tables {
	ts := NewTables(w.N(), 3)
	gws := w.Gateways()
	for u := 0; u < w.N(); u++ {
		if !s.Bool(density) {
			continue
		}
		ts.At(NodeID(u)).Update(network.Entry{
			Gateway: gws[s.Intn(len(gws))],
			NextHop: NodeID(s.Intn(w.N())),
			Hops:    1 + s.Intn(10),
			Updated: s.Intn(100),
		})
	}
	return ts
}

// TestInvariantLocalDominatesEndToEnd: a node whose full chain reaches a
// gateway necessarily has a live first hop, so local connectivity can
// never be below end-to-end connectivity — even for adversarial tables.
func TestInvariantLocalDominatesEndToEnd(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		ts := randomTables(w, s, s.Float64())
		local := LocalConnectivity(w, ts)
		e2e := Connectivity(w, ts)
		if e2e > local+1e-12 {
			t.Fatalf("trial %d: end-to-end %v exceeds local %v", trial, e2e, local)
		}
		w.Step()
	}
}

// TestInvariantReachesImpliesReachSet: if single-best-entry forwarding
// delivers from u, then u must be in the any-entry reach set.
func TestInvariantReachesImpliesReachSet(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(7)
	visited := make([]bool, w.N())
	for trial := 0; trial < 20; trial++ {
		ts := randomTables(w, s, 0.8)
		reach := ReachSet(w, ts)
		for u := 0; u < w.N(); u++ {
			if Reaches(w, ts, NodeID(u), w.N(), visited) && !reach[u] {
				t.Fatalf("trial %d: node %d walks to a gateway but is outside ReachSet", trial, u)
			}
		}
		w.Step()
	}
}

// TestInvariantGatewaysAlwaysReach: gateways are trivially connected in
// both metrics' underlying sets.
func TestInvariantGatewaysAlwaysReach(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTables(w.N(), 1) // empty
	reach := ReachSet(w, ts)
	for _, g := range w.Gateways() {
		if !reach[g] {
			t.Fatalf("gateway %d not in its own reach set", g)
		}
	}
	visited := make([]bool, w.N())
	if !Reaches(w, ts, w.Gateways()[0], 10, visited) {
		t.Fatal("gateway does not Reach itself")
	}
}

// TestInvariantConnectivityMonotoneInEntries: adding a valid entry can
// only grow the reach set.
func TestInvariantConnectivityMonotoneInEntries(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 13)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(21)
	ts := NewTables(w.N(), 3)
	prev := Connectivity(w, ts)
	gws := w.Gateways()
	for i := 0; i < 200; i++ {
		// Insert a physically valid entry: next hop is a real neighbour.
		u := NodeID(s.Intn(w.N()))
		nbrs := w.Neighbors(u)
		if len(nbrs) == 0 {
			continue
		}
		ts.At(u).Update(network.Entry{
			Gateway: gws[s.Intn(len(gws))],
			NextHop: nbrs[s.Intn(len(nbrs))],
			Hops:    1 + s.Intn(5),
			Updated: 1000 + i, // strictly fresher each time, never evicted as stale
		})
		cur := Connectivity(w, ts)
		// Capacity-3 tables can evict, so strict monotonicity need not
		// hold; but with fresh timestamps eviction only replaces the
		// stalest of the SAME node, keeping its live-entry property.
		// The weaker invariant: connectivity never collapses to zero once
		// positive.
		if prev > 0 && cur == 0 {
			t.Fatalf("connectivity collapsed from %v to zero at insert %d", prev, i)
		}
		prev = cur
	}
	if prev == 0 {
		t.Fatal("200 valid entries produced zero connectivity")
	}
}

// TestInvariantRunMetricsBounded: every series value from a real run is a
// fraction, and EndToEnd ≤ Ideal pointwise.
func TestInvariantRunMetricsBounded(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, Scenario{Agents: 25, Kind: core.PolicyOldestNode, Steps: 120}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Connectivity {
		for _, v := range []float64{res.Connectivity[i], res.EndToEnd[i], res.Ideal[i]} {
			if v < 0 || v > 1 {
				t.Fatalf("step %d: metric %v out of [0,1]", i, v)
			}
		}
		if res.EndToEnd[i] > res.Ideal[i]+1e-9 {
			t.Fatalf("step %d: end-to-end %v above physical bound %v", i, res.EndToEnd[i], res.Ideal[i])
		}
	}
}
