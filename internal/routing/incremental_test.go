package routing

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/rng"
)

// meterSchedules returns the fault workloads the measurement-equivalence
// tests drive: every preset plus the clean run.
func meterSchedules(t *testing.T, steps int) map[string]*faults.Schedule {
	t.Helper()
	w, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*faults.Schedule{"clean": nil}
	for _, name := range faults.PresetNames() {
		s, err := faults.Preset(name, w.N(), w.Gateways(), steps, 4242)
		if err != nil {
			t.Fatal(err)
		}
		out["preset-"+name] = s
	}
	return out
}

// TestMeterMatchesFullMeasure is the tentpole acceptance gate: a run
// measured incrementally must be bit-identical — every per-step series
// value and every aggregate — to the same run measured by the scratch
// path, under every fault preset and every stepping engine.
func TestMeterMatchesFullMeasure(t *testing.T) {
	const steps = 100
	engines := map[string]struct {
		rebuild bool
		shards  int
	}{
		"incremental": {},
		"rebuild":     {rebuild: true},
		"sharded-3":   {shards: 3},
	}
	for sname, sched := range meterSchedules(t, steps) {
		for ename, eng := range engines {
			t.Run(sname+"/"+ename, func(t *testing.T) {
				sc := Scenario{
					Agents: 25, Communicate: true, Steps: steps, MeasureFrom: 30,
					Faults: sched, ShardWorkers: eng.shards,
				}
				run := func(full bool) Result {
					w, err := netgen.Generate(testSpec(), 11)
					if err != nil {
						t.Fatal(err)
					}
					if eng.rebuild {
						w.SetFullRebuild(true)
					}
					s := sc
					s.FullMeasure = full
					res, err := Run(w, s, 99)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				inc, full := run(false), run(true)
				if !reflect.DeepEqual(inc, full) {
					for i := range full.Connectivity {
						if inc.Connectivity[i] != full.Connectivity[i] ||
							inc.EndToEnd[i] != full.EndToEnd[i] ||
							inc.Ideal[i] != full.Ideal[i] ||
							inc.Staleness[i] != full.Staleness[i] {
							t.Fatalf("first divergence at step %d:\nincr local=%v e2e=%v ideal=%v stale=%v\nfull local=%v e2e=%v ideal=%v stale=%v",
								i, inc.Connectivity[i], inc.EndToEnd[i], inc.Ideal[i], inc.Staleness[i],
								full.Connectivity[i], full.EndToEnd[i], full.Ideal[i], full.Staleness[i])
						}
					}
					t.Fatal("results diverge outside the series (aggregates)")
				}
			})
		}
	}
}

// TestMeterRunManyGrids checks the incremental path through both batch
// runners at every worker setting: aggregates must be bit-identical to the
// FullMeasure baseline, and to each other across the grid.
func TestMeterRunManyGrids(t *testing.T) {
	const steps, runs = 80, 3
	sched := testFaultSchedule(t, steps)
	base := Scenario{
		Agents: 25, Communicate: true, Steps: steps, MeasureFrom: 30,
		Faults: sched,
	}
	full := base
	full.FullMeasure = true
	want, err := RunMany(freshWorld(11), full, runs, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, rw := range []int{1, 4} {
		for _, sw := range []int{1, 2} {
			sc := base
			sc.RunWorkers, sc.ShardWorkers = rw, sw
			got, err := RunMany(freshWorld(11), sc, runs, 99)
			if err != nil {
				t.Fatalf("runworkers=%d shardworkers=%d: %v", rw, sw, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("runworkers=%d shardworkers=%d: incremental aggregate diverges from FullMeasure baseline", rw, sw)
			}
		}
	}
	cached, err := RunManyCached(func() (*network.World, error) { return netgen.Generate(testSpec(), 11) }, base, runs, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, want) {
		t.Error("RunManyCached (trajectory replay) aggregate diverges from FullMeasure baseline")
	}
}

// scratchQuad is the reference measurement: the four metrics computed from
// scratch, exactly as the FullMeasure path does.
func scratchQuad(w *network.World, ts *Tables, s *Scratch, step int) Measurement {
	return Measurement{
		Local:     LocalConnectivity(w, ts),
		EndToEnd:  s.Connectivity(w, ts),
		Ideal:     w.ConnectivityToGateways(),
		Staleness: Staleness(w, ts, step),
	}
}

// TestMeterPropertyRandomMutations is the satellite property test: the
// meter is driven outside the harness by arbitrary interleavings of table
// Updates, DropIf purges, world steps, fault epochs, and skipped
// measurements — and must match the scratch quadruple at every probe.
func TestMeterPropertyRandomMutations(t *testing.T) {
	const steps = 150
	for _, seed := range []uint64{1, 7, 20260808} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, err := netgen.Generate(testSpec(), 11)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := faults.Preset("blackout", w.N(), w.Gateways(), steps, seed)
			if err != nil {
				t.Fatal(err)
			}
			w.SetFaults(sched)
			n := w.N()
			gws := w.Gateways()
			ts := NewTables(n, 3)
			meter := NewMeter(w, ts)
			var scratch Scratch
			s := rng.New(seed)
			for step := 0; step < steps; step++ {
				writes := s.Intn(40)
				for i := 0; i < writes; i++ {
					u := NodeID(s.Intn(n))
					ts.Update(u, network.Entry{
						Gateway: gws[s.Intn(len(gws))],
						NextHop: NodeID(s.Intn(n)),
						Hops:    1 + s.Intn(9),
						Updated: step - s.Intn(4),
					})
				}
				if s.Intn(10) == 0 {
					hops := 1 + s.Intn(9)
					for u := 0; u < n; u++ {
						ts.DropIf(NodeID(u), func(e network.Entry) bool { return e.Hops >= hops })
					}
				}
				// Occasionally skip a step's measurement entirely, forcing
				// the missed-step resync path.
				if s.Intn(8) != 0 {
					got := meter.Measure(step)
					want := scratchQuad(w, ts, &scratch, step)
					if got != want {
						t.Fatalf("step %d: meter %+v, scratch %+v", step, got, want)
					}
				}
				w.Step()
			}
			if meter.Resyncs() >= steps {
				t.Fatal("meter resynced every step — incremental path never exercised")
			}
		})
	}
}

// TestMeterStaysIncremental pins the control flow on a clean run: with no
// faults and a measurement every step, the meter must resync exactly once.
func TestMeterStaysIncremental(t *testing.T) {
	const steps = 120
	w, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	n := w.N()
	gws := w.Gateways()
	ts := NewTables(n, 2)
	meter := NewMeter(w, ts)
	s := rng.New(5)
	for step := 0; step < steps; step++ {
		for i := 0; i < 10; i++ {
			ts.Update(NodeID(s.Intn(n)), network.Entry{
				Gateway: gws[s.Intn(len(gws))], NextHop: NodeID(s.Intn(n)),
				Hops: 1 + s.Intn(9), Updated: step,
			})
		}
		meter.Measure(step)
		w.Step()
	}
	if got := meter.Resyncs(); got != 1 {
		t.Fatalf("Resyncs() = %d on a clean run, want 1", got)
	}
}

// TestMeterSteadyStateAllocs pins the zero-allocation property: once
// warmed up, a measure step (table writes + world step + Measure) must not
// allocate.
func TestMeterSteadyStateAllocs(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	n := w.N()
	gws := w.Gateways()
	ts := NewTables(n, 2)
	meter := NewMeter(w, ts)
	s := rng.New(5)
	step := 0
	iter := func() {
		for i := 0; i < 16; i++ {
			ts.Update(NodeID(s.Intn(n)), network.Entry{
				Gateway: gws[s.Intn(len(gws))], NextHop: NodeID(s.Intn(n)),
				Hops: 1 + s.Intn(9), Updated: step,
			})
		}
		meter.Measure(step)
		w.Step()
		step++
	}
	for i := 0; i < 300; i++ {
		iter() // warm-up: grow every buffer to its steady-state footprint
	}
	if avg := testing.AllocsPerRun(100, iter); avg != 0 {
		t.Fatalf("measure step allocates %.1f times in steady state, want 0", avg)
	}
}

// TestReachSetCallerOwned pins the pooled package helper's contract: the
// returned slice is the caller's copy, untouched by later calls.
func TestReachSetCallerOwned(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTables(w.N(), 2)
	for u := 0; u < w.N(); u++ {
		for _, v := range w.Topology().Out(NodeID(u)) {
			if w.IsGateway(v) {
				ts.Update(NodeID(u), network.Entry{Gateway: v, NextHop: v, Hops: 1, Updated: 0})
			}
		}
	}
	first := ReachSet(w, ts)
	snapshot := make([]bool, len(first))
	copy(snapshot, first)
	for i := 0; i < 3; i++ {
		ReachSet(w, ts) // reuses the pooled scratch; must not alias first
	}
	if !reflect.DeepEqual(first, snapshot) {
		t.Fatal("ReachSet result mutated by subsequent calls — pooled scratch leaked to the caller")
	}
}

// FuzzMeterEquivalence feeds arbitrary byte-driven op sequences (writes,
// purges, steps, skipped probes) to a meter over a small faulted world and
// demands scratch equality at every probe.
func FuzzMeterEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint64(1))
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x10, 0x20}, uint64(7))
	spec := netgen.Spec{
		N: 40, TargetEdges: 240, ArenaSide: 40, RangeSpread: 0.25,
		Mobility: netgen.MobilityRandom, MobileFraction: 0.5,
		MinSpeed: 0.1, MaxSpeed: 0.5, Gateways: 3, RangeBoost: 1.5,
	}
	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		if len(ops) == 0 || len(ops) > 512 {
			return
		}
		w, err := netgen.Generate(spec, 1+seed%16)
		if err != nil {
			return
		}
		sched, err := faults.Preset("churn", w.N(), w.Gateways(), 64, seed)
		if err != nil {
			t.Fatal(err)
		}
		w.SetFaults(sched)
		n := w.N()
		gws := w.Gateways()
		ts := NewTables(n, 2)
		meter := NewMeter(w, ts)
		var scratch Scratch
		step := 0
		for i := 0; i+3 < len(ops); i += 4 {
			a, b, c, d := int(ops[i]), int(ops[i+1]), int(ops[i+2]), int(ops[i+3])
			switch a % 4 {
			case 0:
				ts.Update(NodeID(b%n), network.Entry{
					Gateway: gws[c%len(gws)], NextHop: NodeID(d % n),
					Hops: 1 + c%9, Updated: step,
				})
			case 1:
				limit := 1 + d%9
				ts.DropIf(NodeID(b%n), func(e network.Entry) bool { return e.Hops >= limit })
			case 2:
				w.Step()
				step++
			case 3:
				got := meter.Measure(step)
				want := scratchQuad(w, ts, &scratch, step)
				if got != want {
					t.Fatalf("op %d (step %d): meter %+v, scratch %+v", i, step, got, want)
				}
			}
		}
		got := meter.Measure(step)
		want := scratchQuad(w, ts, &scratch, step)
		if got != want {
			t.Fatalf("final (step %d): meter %+v, scratch %+v", step, got, want)
		}
	})
}
