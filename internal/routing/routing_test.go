package routing

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/trace"
)

// testSpec is a scaled-down Routing250 for fast tests.
func testSpec() netgen.Spec {
	return netgen.Spec{
		N: 120, TargetEdges: 960, ArenaSide: 70, RangeSpread: 0.25,
		BatteryFraction: 1, DecayPerStep: 0.0005, FloorFraction: 0.6,
		Mobility: netgen.MobilityRandom, MobileFraction: 0.5,
		MinSpeed: 0.1, MaxSpeed: 0.5,
		Gateways: 8, RangeBoost: 1.5,
	}
}

// freshWorld regenerates the same world trace every call, following the
// paper's "same node placement and movements in every run".
func freshWorld(seed uint64) func(int) (*network.World, error) {
	return func(int) (*network.World, error) { return netgen.Generate(testSpec(), seed) }
}

func TestRunValidation(t *testing.T) {
	w, err := netgen.Generate(netgen.Spec{N: 20, TargetEdges: 100, ArenaSide: 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w, Scenario{Agents: 2}, 1); err == nil {
		t.Fatal("world without gateways accepted")
	}
	w2, err := netgen.Generate(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w2, Scenario{Agents: 2, Kind: core.PolicyConscientious}, 1); err == nil {
		t.Fatal("mapping policy accepted in routing")
	}
}

func TestConnectivityRampsFromZero(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, Scenario{Agents: 40, Kind: core.PolicyOldestNode, Steps: 200}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Connectivity[0] > 0.15 {
		t.Fatalf("connectivity should start near zero, got %v", res.Connectivity[0])
	}
	if res.Mean < 0.7 {
		t.Fatalf("converged connectivity too low: %v", res.Mean)
	}
	// End-to-end never exceeds the physical upper bound, and the local
	// metric never undercuts the end-to-end one (a live chain implies a
	// live first hop).
	for i := range res.EndToEnd {
		if res.EndToEnd[i] > res.Ideal[i]+1e-9 {
			t.Fatalf("step %d: end-to-end %v above ideal %v", i, res.EndToEnd[i], res.Ideal[i])
		}
		if res.EndToEnd[i] > res.Connectivity[i]+1e-9 {
			t.Fatalf("step %d: end-to-end %v above local %v", i, res.EndToEnd[i], res.Connectivity[i])
		}
	}
}

func TestOldestNodeBeatsRandom(t *testing.T) {
	// Low population makes the coverage advantage of oldest-node largest.
	sc := Scenario{Agents: 12, Steps: 200, HistorySize: 32}
	old := sc
	old.Kind = core.PolicyOldestNode
	rnd := sc
	rnd.Kind = core.PolicyRandom
	aggOld, err := RunMany(freshWorld(42), old, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	aggRnd, err := RunMany(freshWorld(42), rnd, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if aggOld.Mean.Mean <= aggRnd.Mean.Mean {
		t.Fatalf("oldest-node (%.3f) should beat random (%.3f)", aggOld.Mean.Mean, aggRnd.Mean.Mean)
	}
}

func TestMoreAgentsHigherConnectivity(t *testing.T) {
	small := Scenario{Agents: 8, Kind: core.PolicyOldestNode, Steps: 200}
	big := Scenario{Agents: 60, Kind: core.PolicyOldestNode, Steps: 200}
	aggS, err := RunMany(freshWorld(42), small, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	aggB, err := RunMany(freshWorld(42), big, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if aggB.Mean.Mean <= aggS.Mean.Mean {
		t.Fatalf("60 agents (%.3f) should beat 8 (%.3f)", aggB.Mean.Mean, aggS.Mean.Mean)
	}
}

func TestMoreHistoryHigherConnectivity(t *testing.T) {
	shortH := Scenario{Agents: 30, Kind: core.PolicyOldestNode, Steps: 200, HistorySize: 4}
	longH := Scenario{Agents: 30, Kind: core.PolicyOldestNode, Steps: 200, HistorySize: 48}
	aggS, err := RunMany(freshWorld(42), shortH, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	aggL, err := RunMany(freshWorld(42), longH, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if aggL.Mean.Mean <= aggS.Mean.Mean {
		t.Fatalf("history 48 (%.3f) should beat history 4 (%.3f)", aggL.Mean.Mean, aggS.Mean.Mean)
	}
}

func TestCommunicationHelpsRandomAgents(t *testing.T) {
	// The paper studies this across cache sizes; the benefit is largest
	// when agents forget quickly (small history).
	off := Scenario{Agents: 30, Kind: core.PolicyRandom, Steps: 200, HistorySize: 8}
	on := off
	on.Communicate = true
	aggOff, err := RunMany(freshWorld(42), off, 4, 70)
	if err != nil {
		t.Fatal(err)
	}
	aggOn, err := RunMany(freshWorld(42), on, 4, 70)
	if err != nil {
		t.Fatal(err)
	}
	if aggOn.Mean.Mean <= aggOff.Mean.Mean {
		t.Fatalf("communicating random (%.3f) should beat isolated (%.3f)",
			aggOn.Mean.Mean, aggOff.Mean.Mean)
	}
}

func TestCommunicationHurtsOldestNodeAgents(t *testing.T) {
	off := Scenario{Agents: 30, Kind: core.PolicyOldestNode, Steps: 200}
	on := off
	on.Communicate = true
	aggOff, err := RunMany(freshWorld(42), off, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	aggOn, err := RunMany(freshWorld(42), on, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	if aggOn.Mean.Mean >= aggOff.Mean.Mean {
		t.Fatalf("communicating oldest-node (%.3f) should lose to isolated (%.3f)",
			aggOn.Mean.Mean, aggOff.Mean.Mean)
	}
}

func TestStigmergyRescuesCommunicatingOldestNode(t *testing.T) {
	// The paper's future work: stigmergy should disperse agents. The
	// clearest case is the Fig 11 pathology — communicating oldest-node
	// agents chase each other after merging histories; footprints break
	// the chase and restore (even exceed) the isolated performance.
	comm := Scenario{Agents: 30, Kind: core.PolicyOldestNode, Steps: 200, Communicate: true}
	rescued := comm
	rescued.Stigmergy = true
	aggC, err := RunMany(freshWorld(42), comm, 4, 90)
	if err != nil {
		t.Fatal(err)
	}
	aggR, err := RunMany(freshWorld(42), rescued, 4, 90)
	if err != nil {
		t.Fatal(err)
	}
	if aggR.Mean.Mean <= aggC.Mean.Mean+0.05 {
		t.Fatalf("stigmergy (%.3f) should clearly rescue communicating oldest-node (%.3f)",
			aggR.Mean.Mean, aggC.Mean.Mean)
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := Scenario{Agents: 20, Kind: core.PolicyOldestNode, Communicate: true, Steps: 100}
	run := func() Result {
		w, err := netgen.Generate(testSpec(), 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, sc, 31)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Connectivity {
		if a.Connectivity[i] != b.Connectivity[i] {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	if a.Overhead != b.Overhead {
		t.Fatal("overhead diverged")
	}
}

func TestEngineEquivalence(t *testing.T) {
	for _, base := range []Scenario{
		{Agents: 20, Kind: core.PolicyOldestNode, Communicate: true, Steps: 80},
		{Agents: 20, Kind: core.PolicyRandom, Stigmergy: true, Steps: 80},
	} {
		run := func(workers int) Result {
			w, err := netgen.Generate(testSpec(), 5)
			if err != nil {
				t.Fatal(err)
			}
			sc := base
			sc.Workers = workers
			res, err := Run(w, sc, 11)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(1), run(8)
		for i := range a.Connectivity {
			if a.Connectivity[i] != b.Connectivity[i] {
				t.Fatalf("engines diverged at step %d", i)
			}
		}
		if a.Overhead != b.Overhead {
			t.Fatal("overhead diverged across engines")
		}
	}
}

func TestTablesBestAndReaches(t *testing.T) {
	// Hand-built chain: 0(gw) ← 1 ← 2, tables pointing back.
	w := lineWorldWithGateway(t)
	ts := NewTables(w.N(), 4)
	ts.At(1).Update(network.Entry{Gateway: 0, NextHop: 0, Hops: 1, Updated: 1})
	ts.At(2).Update(network.Entry{Gateway: 0, NextHop: 1, Hops: 2, Updated: 1})
	visited := make([]bool, w.N())
	if !Reaches(w, ts, 2, 10, visited) {
		t.Fatal("valid chain not detected")
	}
	if !Reaches(w, ts, 1, 10, visited) {
		t.Fatal("one-hop chain not detected")
	}
	if Reaches(w, ts, 3, 10, visited) {
		t.Fatal("node with empty table reached gateway")
	}
	if got := Connectivity(w, ts); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Connectivity = %v, want 2/3", got)
	}
}

func TestReachesDetectsLoop(t *testing.T) {
	w := lineWorldWithGateway(t)
	ts := NewTables(w.N(), 4)
	// 1 → 2 → 1 forwarding loop.
	ts.At(1).Update(network.Entry{Gateway: 0, NextHop: 2, Hops: 1, Updated: 1})
	ts.At(2).Update(network.Entry{Gateway: 0, NextHop: 1, Hops: 1, Updated: 1})
	visited := make([]bool, w.N())
	if Reaches(w, ts, 1, 100, visited) {
		t.Fatal("loop not detected")
	}
}

func TestReachesFailsOnBrokenLink(t *testing.T) {
	w := lineWorldWithGateway(t)
	ts := NewTables(w.N(), 4)
	// Entry points to a node that is not adjacent (no edge 3→0).
	ts.At(3).Update(network.Entry{Gateway: 0, NextHop: 0, Hops: 1, Updated: 1})
	visited := make([]bool, w.N())
	if Reaches(w, ts, 3, 10, visited) {
		t.Fatal("missing link not detected")
	}
}

func TestBestPrefersShorterThenFresher(t *testing.T) {
	ts := NewTables(3, 4)
	ts.At(0).Update(network.Entry{Gateway: 1, NextHop: 1, Hops: 3, Updated: 10})
	ts.At(0).Update(network.Entry{Gateway: 2, NextHop: 2, Hops: 1, Updated: 5})
	best, ok := ts.Best(0)
	if !ok || best.Gateway != 2 {
		t.Fatalf("Best = %+v, want gateway 2 (shorter)", best)
	}
	ts.At(1).Update(network.Entry{Gateway: 1, NextHop: 1, Hops: 2, Updated: 5})
	ts.At(1).Update(network.Entry{Gateway: 2, NextHop: 2, Hops: 2, Updated: 9})
	best, _ = ts.Best(1)
	if best.Gateway != 2 {
		t.Fatalf("Best = %+v, want fresher gateway 2", best)
	}
	if _, ok := ts.Best(2); ok {
		t.Fatal("empty table returned an entry")
	}
}

// lineWorldWithGateway builds the static chain 0—1—2—3 with node 0 as the
// gateway: nodes 10 apart with range 10.5, so only consecutive nodes link.
func lineWorldWithGateway(t *testing.T) *network.World {
	t.Helper()
	n := 4
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * 10, Y: 0}
		radios[i] = radio.New(10.5)
		movers[i] = mobility.Static{}
	}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Rect{MinX: 0, MinY: -1, MaxX: 40, MaxY: 1},
		Positions: pos,
		Radios:    radios,
		Movers:    movers,
		Gateways:  []NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTracedRoutingRun(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf trace.Buffer
	sc := Scenario{Agents: 15, Kind: core.PolicyOldestNode, Communicate: true,
		Steps: 60, Tracer: &buf}
	res, err := Run(w, sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.Kind]int{}
	for _, e := range buf.Events() {
		counts[e.Kind]++
	}
	if counts[trace.KindMove] != res.Overhead.Moves {
		t.Fatalf("traced moves %d != overhead moves %d", counts[trace.KindMove], res.Overhead.Moves)
	}
	if counts[trace.KindDeposit] != res.Overhead.RouteDeposits {
		t.Fatalf("traced deposits %d != overhead deposits %d",
			counts[trace.KindDeposit], res.Overhead.RouteDeposits)
	}
	// Three measures per step: connectivity, end-to-end, ideal.
	if counts[trace.KindMeasure] != 3*60 {
		t.Fatalf("measures = %d", counts[trace.KindMeasure])
	}
}

// TestCommPathologyRobustAcrossWorlds guards the Fig 11 result against
// seed-overfitting: the communication penalty for oldest-node agents must
// hold on freshly drawn worlds, not just the calibration seed.
func TestCommPathologyRobustAcrossWorlds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world robustness sweep is not short")
	}
	for _, worldSeed := range []uint64{42, 1043, 2044} {
		worldSeed := worldSeed
		off := Scenario{Agents: 30, Kind: core.PolicyOldestNode, Steps: 200}
		on := off
		on.Communicate = true
		aggOff, err := RunMany(freshWorld(worldSeed), off, 3, 500+worldSeed)
		if err != nil {
			t.Fatal(err)
		}
		aggOn, err := RunMany(freshWorld(worldSeed), on, 3, 500+worldSeed)
		if err != nil {
			t.Fatal(err)
		}
		if aggOn.Mean.Mean >= aggOff.Mean.Mean {
			t.Errorf("world %d: comm did not hurt oldest-node (%.3f vs %.3f)",
				worldSeed, aggOn.Mean.Mean, aggOff.Mean.Mean)
		}
	}
}
