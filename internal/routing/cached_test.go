package routing

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/network"
)

// cachedBuild adapts the test world generator to RunManyCached's record
// contract: one freshly generated live world for the recording pass.
func cachedBuild(seed uint64) func() (*network.World, error) {
	return func() (*network.World, error) { return netgen.Generate(testSpec(), seed) }
}

// TestRunManyCachedMatchesLive is the tentpole acceptance gate at the
// routing-harness level: a record-once/replay-many batch must produce an
// aggregate bit-identical to live per-run stepping, clean and under the
// blackout preset, at every RunWorkers × ShardWorkers in {1,2,4}².
func TestRunManyCachedMatchesLive(t *testing.T) {
	const steps, runs = 120, 3
	for _, faulted := range []bool{false, true} {
		name := "clean"
		if faulted {
			name = "blackout"
		}
		t.Run(name, func(t *testing.T) {
			sc := Scenario{
				Agents: 30, Kind: core.PolicyOldestNode,
				Communicate: true, Steps: steps, MeasureFrom: 40,
			}
			if faulted {
				sc.Faults = testFaultSchedule(t, steps)
			}
			base, err := RunMany(freshWorld(11), sc, runs, 31)
			if err != nil {
				t.Fatal(err)
			}
			if faulted && base.Recovered+base.Censored == 0 {
				t.Fatal("fault schedule never dented connectivity; the faulted case is vacuous")
			}
			for _, rw := range []int{1, 2, 4} {
				for _, sw := range []int{1, 2, 4} {
					t.Run(fmt.Sprintf("runworkers=%d/shardworkers=%d", rw, sw), func(t *testing.T) {
						withBudget(t, 8, func() {
							csc := sc
							csc.RunWorkers, csc.ShardWorkers = rw, sw
							got, err := RunManyCached(cachedBuild(11), csc, runs, 31)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(base, got) {
								t.Error("cached aggregate differs from live sequential baseline")
							}
						})
					})
				}
			}
		})
	}
}

// TestRunManyCachedSingleRunFallback pins the runs<=1 path: with nothing
// to amortize, RunManyCached must behave exactly like RunMany on one
// freshly built world rather than paying a recording pass.
func TestRunManyCachedSingleRunFallback(t *testing.T) {
	sc := Scenario{Agents: 20, Kind: core.PolicyOldestNode, Steps: 60}
	base, err := RunMany(freshWorld(11), sc, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunManyCached(cachedBuild(11), sc, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Error("single-run cached aggregate differs from RunMany")
	}
}

// TestRunManyCachedBuildErrorPropagates pins error plumbing through the
// sync.Once record phase: every run observes the one build failure.
func TestRunManyCachedBuildErrorPropagates(t *testing.T) {
	build := func() (*network.World, error) { return nil, fmt.Errorf("no world today") }
	sc := Scenario{Agents: 10, Kind: core.PolicyOldestNode, Steps: 60}
	if _, err := RunManyCached(build, sc, 3, 5); err == nil {
		t.Fatal("build error swallowed by the cached source")
	}
}
