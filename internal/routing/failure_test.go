package routing

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/radio"
)

// TestDyingNetworkConnectivityCollapses: when every non-gateway battery
// drains to nothing, connectivity must fall to zero and the run must end
// cleanly.
func TestDyingNetworkConnectivityCollapses(t *testing.T) {
	w, err := netgen.Generate(netgen.Spec{
		N: 60, TargetEdges: 420, ArenaSide: 45, RangeSpread: 0.2,
		BatteryFraction: 1, DecayPerStep: 0.02, FloorFraction: 0,
		Gateways: 4, RangeBoost: 1.5, MaxTries: 64,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, Scenario{Agents: 20, Kind: core.PolicyOldestNode, Steps: 150}, 3)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Connectivity[len(res.Connectivity)-1]
	if last > 0.05 {
		t.Fatalf("dead network still connected: %v", last)
	}
	peak := 0.0
	for _, v := range res.Connectivity {
		peak = math.Max(peak, v)
	}
	if peak < 0.1 {
		t.Fatalf("network never connected at all: peak %v", peak)
	}
}

// TestSingleAgentRouting: one agent is a legal population.
func TestSingleAgentRouting(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, Scenario{Agents: 1, Kind: core.PolicyOldestNode, Steps: 150}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean <= 0 {
		t.Fatalf("single agent achieved no connectivity: %v", res.Mean)
	}
}

// TestMinimumHistory: history below the trail minimum is raised, not
// rejected; the agent can still deposit one-hop routes.
func TestMinimumHistory(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, Scenario{Agents: 30, Kind: core.PolicyOldestNode,
		Steps: 150, HistorySize: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead.RouteDeposits == 0 {
		t.Fatal("history-1 agents never deposited")
	}
}

// TestIsolatedGateway: a gateway no agent can reach contributes nothing
// but breaks nothing.
func TestIsolatedGateway(t *testing.T) {
	pos := []geom.Point{
		{X: 0, Y: 0}, {X: 8, Y: 0}, {X: 16, Y: 0}, // chain with gateway 0
		{X: 200, Y: 0}, // isolated gateway
	}
	radios := []radio.Radio{radio.New(9), radio.New(9), radio.New(9), radio.New(9)}
	movers := []mobility.Mover{mobility.Static{}, mobility.Static{}, mobility.Static{}, mobility.Static{}}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Rect{MinX: 0, MinY: -1, MaxX: 250, MaxY: 1},
		Positions: pos, Radios: radios, Movers: movers,
		Gateways: []NodeID{0, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Several agents: ones injected on the isolated gateway are stranded
	// there forever, so the test needs survivors on the chain side.
	res, err := Run(w, Scenario{Agents: 6, Kind: core.PolicyOldestNode, Steps: 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 1 and 2 can be served via gateway 0: connectivity 1 among the
	// two non-gateway nodes is reachable.
	if res.Mean < 0.5 {
		t.Fatalf("reachable side under-served: %v", res.Mean)
	}
}

// TestObserverReceivesEveryStep: the observer hook fires exactly once per
// step with live tables.
func TestObserverReceivesEveryStep(t *testing.T) {
	w, err := netgen.Generate(testSpec(), 13)
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	sc := Scenario{Agents: 10, Kind: core.PolicyOldestNode, Steps: 50,
		Observer: func(step int, w *network.World, ts *Tables) {
			steps = append(steps, step)
			if ts == nil || w == nil {
				t.Fatal("nil observer arguments")
			}
		}}
	if _, err := Run(w, sc, 2); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 50 {
		t.Fatalf("observer fired %d times", len(steps))
	}
	for i, s := range steps {
		if s != i {
			t.Fatalf("observer steps out of order: %v", steps[:i+1])
		}
	}
}
