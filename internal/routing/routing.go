// Package routing implements the paper's second scenario: mobile agents
// maintain the routing tables of a dynamic ad hoc network so that every
// node keeps a multi-hop route to one of a few stationary gateways. Nodes
// run no protocol of their own — agents wandering the network deposit
// routes learned from their bounded trail back to the last gateway they
// crossed.
//
// Each simulated step an agent (1) decides where to move next, (2) meets
// co-located agents (optionally adopting the best gateway route and, for
// oldest-node agents, merging visit histories), (3) moves, learning the
// edge it travels, and (4) updates the routing table of the node it now
// occupies. The metric is connectivity: the fraction of non-gateway nodes
// whose routing-table forwarding chain actually reaches a gateway over the
// current topology, averaged over the post-convergence window.
package routing

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stigmergy"
	"repro/internal/trace"
)

// NodeID aliases network.NodeID.
type NodeID = network.NodeID

// Scenario configures one routing experiment.
type Scenario struct {
	// Agents is the population size.
	Agents int
	// Kind is PolicyRandom or PolicyOldestNode.
	Kind core.PolicyKind
	// Communicate enables the meeting exchange: everyone adopts the best
	// gateway route; oldest-node agents additionally merge histories.
	Communicate bool
	// Stigmergy enables footprints (the paper's future work).
	Stigmergy bool
	// HistorySize bounds both the visit memory and the gateway trail —
	// the paper's single "history size" knob (default 32).
	HistorySize int
	// TableCapacity bounds per-node routing tables. The default of 1
	// matches the paper's "simple routing table": each node holds the
	// single freshest route agents have offered it.
	TableCapacity int
	// Steps is the run length (default 300, as in the paper).
	Steps int
	// MeasureFrom is the start of the averaging window (default 150).
	MeasureFrom int
	// StigPerNode and StigWindow size the footprint board.
	StigPerNode int
	StigWindow  int
	// Workers sizes the engine (0/1 = sequential).
	Workers int
	// RunWorkers is the number of independent runs RunMany may execute
	// concurrently (0/1 = sequential). Replication is embarrassingly
	// parallel, so aggregates are bit-identical at any value; extra
	// goroutines are claimed from the shared parallel budget, with run
	// workers taking priority over the per-agent engine. When a Tracer or
	// Observer is attached, RunMany forces sequential execution so the
	// shared sink observes runs in order.
	RunWorkers int
	// ShardWorkers partitions the world grid into that many spatial
	// bands stepped concurrently (0 leaves the world's setting, 1 forces
	// the sequential incremental path). Topologies are bit-identical at
	// any value, so results never depend on it; shard workers draw from
	// the same parallel budget as RunWorkers and degrade to sequential
	// when outer run-level parallelism has claimed it.
	ShardWorkers int
	// Faults, if set, is a fault schedule attached to the world before the
	// run (see internal/faults): node churn, gateway failure, partitions,
	// and radio degradation fire at fixed world steps. The schedule is
	// immutable and may be shared across the runs of a RunMany batch. When
	// a fault epoch advances, the harness ages out routes through dead next
	// hops and routes to out-of-service gateways, and applies
	// StrandedPolicy to agents caught on dead nodes.
	Faults *faults.Schedule
	// StrandedPolicy selects what happens to an agent standing on a node
	// that dies: StrandedRespawn (default) teleports it to a random alive
	// node with a cleared trail; StrandedKill removes it for the rest of
	// the run.
	StrandedPolicy StrandedPolicy
	// RecoveryTol is the reconvergence tolerance for the post-fault
	// recovery statistics: an event recovers when connectivity climbs back
	// to within RecoveryTol of its pre-fault baseline (default 0.02).
	RecoveryTol float64
	// Observer, if set, is called once per step after deposits and
	// measurement, before the world moves — the hook the packet-level
	// traffic harness uses to forward packets against live tables. The
	// *Tables passed to it is recycled after the run ends; observers must
	// not retain it.
	Observer func(step int, w *network.World, tables *Tables)
	// Tracer, if set, receives structured events (moves, meetings,
	// deposits, per-step connectivity). Events are emitted from
	// sequential sections, so traces are reproducible with Workers <= 1.
	// A Tracer that also implements trace.WorldSink (the binary LogWriter
	// does) additionally receives snapshot anchors every AnchorEvery steps
	// and per-step world deltas, making the log replayable offline.
	Tracer trace.Tracer
	// AnchorEvery is the snapshot-anchor cadence for WorldSink tracers
	// (<= 0 uses network.DefaultAnchorEvery). Ignored for plain tracers.
	AnchorEvery int
	// Metrics, if set, receives live instrumentation: per-step phase
	// timers, domain counters (moves, meetings by size, deposits,
	// adoptions, evictions), and connectivity gauges. Instruments are
	// updated outside every RNG consumption path, so attaching a registry
	// cannot change seeded results. nil disables with near-zero overhead.
	Metrics *metrics.Registry
	// FullMeasure forces the legacy full-recompute measurement path (one
	// scratch BFS per metric per step) instead of the incremental Meter.
	// The two paths are bit-identical at every step — this knob exists for
	// performance comparison and differential testing, not correctness.
	FullMeasure bool
}

// StrandedPolicy selects the fate of agents standing on a node when a
// fault kills it.
type StrandedPolicy uint8

const (
	// StrandedRespawn teleports a stranded agent to a uniformly random
	// alive node (drawn from the run's dedicated fault stream) and clears
	// its trail — the recorded walk no longer connects to the new position.
	StrandedRespawn StrandedPolicy = iota
	// StrandedKill removes a stranded agent from the run permanently; its
	// accumulated overhead still counts.
	StrandedKill
)

func (sc Scenario) withDefaults() Scenario {
	if sc.Agents <= 0 {
		sc.Agents = 1
	}
	if sc.Kind == 0 {
		sc.Kind = core.PolicyOldestNode
	}
	if sc.HistorySize <= 0 {
		sc.HistorySize = 32
	}
	if sc.Steps <= 0 {
		sc.Steps = 300
	}
	if sc.MeasureFrom <= 0 || sc.MeasureFrom >= sc.Steps {
		sc.MeasureFrom = sc.Steps / 2
	}
	if sc.StigPerNode <= 0 {
		sc.StigPerNode = 3
	}
	if sc.RecoveryTol <= 0 {
		sc.RecoveryTol = 0.02
	}
	return sc
}

// Result reports one routing run.
type Result struct {
	// Connectivity is the per-step fraction of non-gateway nodes holding
	// a route entry whose next hop is currently alive (LocalConnectivity)
	// — the headline metric, matching what the paper's agents are tasked
	// with maintaining.
	Connectivity []float64
	// EndToEnd is the stricter per-step fraction whose table chains
	// actually reach a gateway over the current topology (Connectivity
	// function). Always ≤ Ideal.
	EndToEnd []float64
	// Ideal is the per-step physical upper bound (omniscient routing).
	Ideal []float64
	// Staleness is the per-step mean route age: for every alive non-gateway
	// node holding at least one entry, the age in steps of its freshest
	// entry, averaged over those nodes (0 when no node holds a route).
	Staleness []float64
	// Mean and Std summarise Connectivity over the measurement window.
	Mean, Std float64
	// MeanEndToEnd summarises EndToEnd over the same window.
	MeanEndToEnd float64
	// MeanStaleness summarises Staleness over the same window.
	MeanStaleness float64
	// Recovery measures the Connectivity series' response to each fault
	// event — time-to-reconvergence and connectivity floor. Populated only
	// when Scenario.Faults is set.
	Recovery stats.RecoveryStats
	// RecoveryEndToEnd is the same measurement over the stricter EndToEnd
	// series, where gateway failures and partitions actually sever paths —
	// the honest reconvergence time of the route fabric. Populated only
	// when Scenario.Faults is set.
	RecoveryEndToEnd stats.RecoveryStats
	// Stranded counts agents caught on dying nodes (respawned or killed,
	// per StrandedPolicy).
	Stranded int
	// Overhead aggregates all agents' cost counters.
	Overhead core.Overhead
}

// Tables is the per-node routing state agents maintain. When write
// tracking is enabled (a Meter does so), every mutation through Update or
// DropIf marks the written node on a dirty list the meter drains; direct
// writes through At() bypass tracking and must not be mixed with a Meter.
type Tables struct {
	tables []*network.Table

	track bool
	dirty []NodeID
	mark  []bool // mark[u]: u already on dirty
}

// NewTables builds empty tables for n nodes with the given per-table
// capacity.
func NewTables(n, capacity int) *Tables {
	ts := &Tables{tables: make([]*network.Table, n)}
	for i := range ts.tables {
		ts.tables[i] = network.NewTable(capacity)
	}
	return ts
}

// At returns node u's table. Mutations through the returned table are
// invisible to write tracking; harness code uses Update/DropIf instead.
func (ts *Tables) At(u NodeID) *network.Table { return ts.tables[u] }

// Update applies e to node u's table (freshest-wins, see network.Table)
// and reports whether the table changed, marking u dirty for any attached
// meter when it did.
func (ts *Tables) Update(u NodeID, e network.Entry) bool {
	changed := ts.tables[u].Update(e)
	if changed && ts.track {
		ts.markDirty(u)
	}
	return changed
}

// DropIf removes node u's entries matching drop, returning the count and
// marking u dirty for any attached meter when entries were removed.
func (ts *Tables) DropIf(u NodeID, drop func(network.Entry) bool) int {
	n := ts.tables[u].DropIf(drop)
	if n > 0 && ts.track {
		ts.markDirty(u)
	}
	return n
}

func (ts *Tables) markDirty(u NodeID) {
	if !ts.mark[u] {
		ts.mark[u] = true
		ts.dirty = append(ts.dirty, u)
	}
}

// setTracking turns write tracking on or off. Enabling sizes the mark set
// for the current node count and clears any stale dirty state.
func (ts *Tables) setTracking(on bool) {
	ts.track = on
	if !on {
		return
	}
	n := len(ts.tables)
	if cap(ts.mark) < n {
		ts.mark = make([]bool, n)
	}
	ts.mark = ts.mark[:n]
	for i := range ts.mark {
		ts.mark[i] = false
	}
	ts.dirty = ts.dirty[:0]
}

// clearDirty empties the dirty list (meter-side, after draining it).
func (ts *Tables) clearDirty() {
	for _, u := range ts.dirty {
		ts.mark[u] = false
	}
	ts.dirty = ts.dirty[:0]
}

// Evictions returns the total number of capacity evictions across all
// node tables.
func (ts *Tables) Evictions() int {
	total := 0
	for _, t := range ts.tables {
		total += t.Evictions()
	}
	return total
}

// Best returns the preferred forwarding entry at node u: fewest hops,
// then freshest, then lowest gateway ID. ok is false for an empty table.
func (ts *Tables) Best(u NodeID) (network.Entry, bool) {
	var best network.Entry
	found := false
	for _, e := range ts.tables[u].Entries() {
		if !found || better(e, best) {
			best, found = e, true
		}
	}
	return best, found
}

func better(a, b network.Entry) bool {
	if a.Hops != b.Hops {
		return a.Hops < b.Hops
	}
	if a.Updated != b.Updated {
		return a.Updated > b.Updated
	}
	return a.Gateway < b.Gateway
}

// Reaches reports whether forwarding from u along the tables' best entries
// arrives at any gateway over the current topology within maxWalk hops.
// This is the honest validity check: every hop must exist right now, and
// loops or empty tables fail the packet.
func Reaches(w *network.World, ts *Tables, u NodeID, maxWalk int, visited []bool) bool {
	for i := range visited {
		visited[i] = false
	}
	cur := u
	for hop := 0; hop <= maxWalk; hop++ {
		if w.IsGateway(cur) {
			return true
		}
		if visited[cur] {
			return false // forwarding loop
		}
		visited[cur] = true
		e, ok := ts.Best(cur)
		if !ok {
			return false
		}
		if !w.Topology().HasEdgeSorted(cur, e.NextHop) {
			return false // link gone
		}
		cur = e.NextHop
	}
	return false
}

// ReachSet returns, for every node, whether some chain of routing-table
// entries whose links all exist right now leads to a gateway. A node may
// switch target gateway mid-path (any entry counts — "a valid route to at
// least one gateway"), which matches nodes retrying their table entries.
// One reverse BFS from the gateway set makes this O(N + entries).
func ReachSet(w *network.World, ts *Tables) []bool {
	s := scratchPool.Get().(*Scratch)
	seen := s.ReachSet(w, ts)
	// The scratch's seen buffer goes back into the pool; hand the caller
	// its own copy (the documented package-level contract).
	out := make([]bool, len(seen))
	copy(out, seen)
	scratchPool.Put(s)
	return out
}

// scratchPool recycles the package-level helpers' BFS scratch, so casual
// ReachSet/Connectivity callers (baselines, traffic harness, tests) stop
// re-growing CSR buffers on every call.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Scratch carries the reusable buffers of the per-step connectivity
// metrics: the table-induced reverse adjacency in CSR form, the BFS seen
// set, and the BFS queue (drained by head index, so the backing array is
// reused instead of re-sliced away). One Scratch serves a whole run; the
// zero value is ready. Results returned by its methods alias the scratch
// and are valid until the next call.
type Scratch struct {
	revOff []int32  // n+1 CSR offsets into revDst
	revCur []int32  // per-node fill cursors
	revDst []NodeID // flat reverse edges
	seen   []bool
	queue  []NodeID
}

// ReachSet is the scratch-buffered form of the package-level ReachSet:
// identical results, zero steady-state allocations.
func (s *Scratch) ReachSet(w *network.World, ts *Tables) []bool {
	n := w.N()
	topo := w.Topology()
	if cap(s.revOff) < n+1 {
		s.revOff = make([]int32, n+1)
		s.revCur = make([]int32, n+1)
		s.seen = make([]bool, n)
		s.queue = make([]NodeID, 0, n)
	}
	s.revOff = s.revOff[:n+1]
	s.revCur = s.revCur[:n+1]
	s.seen = s.seen[:n]
	for i := range s.revOff {
		s.revOff[i] = 0
	}
	// Reverse adjacency over live table entries: an edge v←u for every
	// entry at u whose next hop v is currently a real link. Built in CSR
	// form with a counting pass so the flat buffer is reused across steps.
	// World topologies keep canonically sorted out-lists on both stepping
	// paths, so the liveness probe can binary-search.
	for u := 0; u < n; u++ {
		for _, e := range ts.tables[u].Entries() {
			if topo.HasEdgeSorted(NodeID(u), e.NextHop) {
				s.revOff[e.NextHop+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		s.revOff[v+1] += s.revOff[v]
	}
	total := int(s.revOff[n])
	if cap(s.revDst) < total {
		s.revDst = make([]NodeID, total)
	}
	s.revDst = s.revDst[:total]
	copy(s.revCur, s.revOff)
	for u := 0; u < n; u++ {
		for _, e := range ts.tables[u].Entries() {
			if topo.HasEdgeSorted(NodeID(u), e.NextHop) {
				s.revDst[s.revCur[e.NextHop]] = NodeID(u)
				s.revCur[e.NextHop]++
			}
		}
	}
	for i := range s.seen {
		s.seen[i] = false
	}
	queue := s.queue[:0]
	for _, g := range w.Gateways() {
		s.seen[g] = true
		queue = append(queue, g)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range s.revDst[s.revOff[v]:s.revOff[v+1]] {
			if !s.seen[u] {
				s.seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	s.queue = queue
	return s.seen
}

// Connectivity is the scratch-buffered form of the package-level
// Connectivity.
func (s *Scratch) Connectivity(w *network.World, ts *Tables) float64 {
	reach := s.ReachSet(w, ts)
	reached, total := 0, 0
	for u := 0; u < w.N(); u++ {
		if w.IsGateway(NodeID(u)) || !w.Alive(NodeID(u)) {
			continue
		}
		total++
		if reach[u] {
			reached++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(reached) / float64(total)
}

// LocalConnectivity returns the fraction of non-gateway nodes holding at
// least one route entry whose next hop is currently a live neighbour.
// This is the per-node view a deployed node actually has of its own
// connectivity (it can verify its next hop, not the whole path), and it
// rewards exactly what the agents are tasked with: covering every node
// with fresh table updates.
func LocalConnectivity(w *network.World, ts *Tables) float64 {
	topo := w.Topology()
	ok, total := 0, 0
	for u := 0; u < w.N(); u++ {
		if w.IsGateway(NodeID(u)) || !w.Alive(NodeID(u)) {
			continue
		}
		total++
		for _, e := range ts.tables[u].Entries() {
			if topo.HasEdgeSorted(NodeID(u), e.NextHop) {
				ok++
				break
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// Staleness returns the mean route age at the current step: for every
// alive non-gateway node holding at least one entry, the age in steps of
// its freshest entry. Nodes with empty tables do not dilute the mean —
// they are a coverage problem (connectivity), not a freshness one. Returns
// 0 when no node holds a route.
func Staleness(w *network.World, ts *Tables, step int) float64 {
	sum, cnt := 0, 0
	for u := 0; u < w.N(); u++ {
		if w.IsGateway(NodeID(u)) || !w.Alive(NodeID(u)) {
			continue
		}
		freshest := -1
		for _, e := range ts.tables[u].Entries() {
			if e.Updated > freshest {
				freshest = e.Updated
			}
		}
		if freshest >= 0 {
			sum += step - freshest
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// Connectivity returns the fraction of non-gateway nodes that currently
// reach a gateway through the tables (see ReachSet).
func Connectivity(w *network.World, ts *Tables) float64 {
	s := scratchPool.Get().(*Scratch)
	v := s.Connectivity(w, ts)
	scratchPool.Put(s)
	return v
}

// runMetrics bundles the routing harness's instrument handles. The zero
// value (no registry) makes every operation a no-op; enabled additionally
// gates the per-step O(agents) overhead-delta sweep.
type runMetrics struct {
	enabled bool

	runs  metrics.Counter
	steps metrics.Counter

	decide  metrics.Timer
	meet    metrics.Timer
	move    metrics.Timer
	deposit metrics.Timer
	measure metrics.Timer

	moves     metrics.Counter
	meetings  metrics.Counter
	meetSize  metrics.Histogram
	deposits  metrics.Counter
	adoptions metrics.Counter
	evictions metrics.Counter
	marks     metrics.Counter
	stranded  metrics.Counter
	purged    metrics.Counter

	connLocal metrics.Gauge
	connE2E   metrics.Gauge
	connIdeal metrics.Gauge
	staleness metrics.Gauge

	measResyncs metrics.Counter

	prevOverhead core.Overhead
	prevEvict    int
}

func newRunMetrics(r *metrics.Registry) runMetrics {
	if r == nil {
		return runMetrics{}
	}
	return runMetrics{
		enabled:   true,
		runs:      r.Counter("routing_runs_total"),
		steps:     r.Counter("routing_steps_total"),
		decide:    r.Timer("routing_phase_decide_seconds"),
		meet:      r.Timer("routing_phase_meet_seconds"),
		move:      r.Timer("routing_phase_move_seconds"),
		deposit:   r.Timer("routing_phase_deposit_seconds"),
		measure:   r.Timer("routing_phase_measure_seconds"),
		moves:     r.Counter("routing_moves_total"),
		meetings:  r.Counter("routing_meetings_total"),
		meetSize:  r.Histogram("routing_meeting_size", nil),
		deposits:  r.Counter("routing_deposits_total"),
		adoptions: r.Counter("routing_route_adoptions_total"),
		evictions: r.Counter("routing_route_evictions_total"),
		marks:     r.Counter("routing_marks_total"),
		stranded:  r.Counter("faults_stranded_agents_total"),
		purged:    r.Counter("faults_routes_purged_total"),
		connLocal: r.Gauge("routing_connectivity"),
		connE2E:   r.Gauge("routing_connectivity_end_to_end"),
		connIdeal: r.Gauge("routing_connectivity_ideal"),
		staleness: r.Gauge("routing_route_staleness"),

		measResyncs: r.Counter("routing_measure_resyncs_total"),
	}
}

// syncCounts publishes the per-step growth of the agents' overhead
// counters and the tables' eviction count. Runs in the sequential section
// after deposits, so it observes a settled step.
func (m *runMetrics) syncCounts(agents []*core.Agent, tables *Tables) {
	if !m.enabled {
		return
	}
	var cur core.Overhead
	for _, a := range agents {
		cur.Add(a.Overhead)
	}
	m.moves.Add(uint64(cur.Moves - m.prevOverhead.Moves))
	m.deposits.Add(uint64(cur.RouteDeposits - m.prevOverhead.RouteDeposits))
	m.adoptions.Add(uint64(cur.TrailAdoptions - m.prevOverhead.TrailAdoptions))
	m.marks.Add(uint64(cur.MarksLeft - m.prevOverhead.MarksLeft))
	m.prevOverhead = cur
	ev := tables.Evictions()
	m.evictions.Add(uint64(ev - m.prevEvict))
	m.prevEvict = ev
}

// runState carries the per-run buffers a replication worker reuses from
// run to run: the decided-move slice, the meeting grouper, the
// connectivity scratch, and the node tables. Pooling it keeps the
// zero-allocation property of a single run intact across a whole RunMany
// batch, sequential or parallel — each worker drains and refills the pool
// instead of reallocating per run. The zero value is ready; reset
// prepares it for a world of n nodes.
type runState struct {
	next    []NodeID
	grouper *core.Grouper
	scratch Scratch
	tables  Tables
	meter   Meter
}

// statePool recycles runState across runs and executor workers.
var statePool = sync.Pool{New: func() any { return new(runState) }}

// reset sizes st for a run over n nodes with the given agent count and
// table capacity, leaving every buffer indistinguishable from freshly
// allocated storage.
func (st *runState) reset(n, agents, capacity int) {
	if cap(st.next) < agents {
		st.next = make([]NodeID, agents)
	}
	st.next = st.next[:agents]
	if st.grouper == nil {
		st.grouper = core.NewGrouper(n)
	} else {
		st.grouper.Reset(n)
	}
	st.tables.reset(n, capacity)
}

// reset prepares ts for a fresh run over n nodes with per-table capacity,
// reusing table storage where possible.
func (ts *Tables) reset(n, capacity int) {
	// Tracking is per-run opt-in: the run's meter (if any) re-enables it
	// after reset, sized for the new n.
	ts.track = false
	ts.dirty = ts.dirty[:0]
	if cap(ts.tables) < n {
		ts.tables = make([]*network.Table, n)
	}
	ts.tables = ts.tables[:n]
	for i, t := range ts.tables {
		if t == nil {
			ts.tables[i] = network.NewTable(capacity)
		} else {
			t.Reset(capacity)
		}
	}
}

// Run executes one routing run on w. The world is consumed (stepped); use
// a fresh world per run. Agent placement is drawn from seed.
func Run(w *network.World, sc Scenario, seed uint64) (Result, error) {
	st := statePool.Get().(*runState)
	res, err := run(w, sc, seed, st)
	statePool.Put(st)
	return res, err
}

// run is Run on caller-provided scratch state.
func run(w *network.World, sc Scenario, seed uint64, st *runState) (Result, error) {
	sc = sc.withDefaults()
	if len(w.Gateways()) == 0 {
		return Result{}, fmt.Errorf("routing: world has no gateways")
	}
	switch sc.Kind {
	case core.PolicyRandom, core.PolicyOldestNode:
	default:
		return Result{}, fmt.Errorf("routing: unsupported policy %v", sc.Kind)
	}
	if sc.ShardWorkers > 0 {
		w.SetShardWorkers(sc.ShardWorkers)
	}
	if sc.Faults != nil {
		w.SetFaults(sc.Faults)
	}
	root := rng.New(seed).Named("routing")
	agents, err := placeAgents(w, sc, root)
	if err != nil {
		return Result{}, err
	}
	capacity := sc.TableCapacity
	if capacity <= 0 {
		capacity = 1
	}
	st.reset(w.N(), len(agents), capacity)
	tables := &st.tables
	var board *stigmergy.Board
	if sc.Stigmergy {
		board = stigmergy.NewBoard(w.N(), sc.StigPerNode, sc.StigWindow)
	}
	engine := sim.NewEngine(sc.Workers)
	next := st.next
	grouper := st.grouper
	scratch := &st.scratch
	// Measurement engine: incremental by default (bit-identical to the
	// scratch path, pinned by the differential tests), full recompute on
	// request. The meter enables write tracking on the run's tables.
	var meter *Meter
	if !sc.FullMeasure {
		meter = &st.meter
		meter.Reset(w, tables)
	}
	res := Result{
		Connectivity: make([]float64, 0, sc.Steps),
		EndToEnd:     make([]float64, 0, sc.Steps),
		Ideal:        make([]float64, 0, sc.Steps),
		Staleness:    make([]float64, 0, sc.Steps),
	}
	m := newRunMetrics(sc.Metrics)
	w.Instrument(sc.Metrics)
	m.runs.Inc()

	// alive is the agent population still in play; StrandedKill shrinks it.
	// The original agents slice is kept intact for the final overhead sweep.
	alive := agents
	var faultRng *rng.Stream
	lastEpoch := 0
	if sc.Faults != nil {
		faultRng = root.Named("faults")
		lastEpoch = w.FaultEpoch()
	}
	// A WorldSink tracer additionally records the world's evolution —
	// snapshot anchors plus per-step deltas — so the run can be replayed
	// offline. The recorder only observes (no RNG, no world mutation), so
	// recording cannot perturb the seeded result.
	var rec *network.StepRecorder
	if sink, ok := sc.Tracer.(trace.WorldSink); ok {
		rec = network.NewStepRecorder(w, sink, sc.AnchorEvery)
	}

	sim.Run(sc.Steps, func(step int) bool {
		m.steps.Inc()
		rec.BeforeStep(step)
		// Fault reaction: events fired inside the previous w.Step() advance
		// the epoch; react before agents decide, in the sequential section,
		// so the response is deterministic at any worker setting.
		if sc.Faults != nil {
			if ep := w.FaultEpoch(); ep != lastEpoch {
				lastEpoch = ep
				alive = reactToFaults(w, sc, step, tables, alive, faultRng, &res, &m)
			}
		}
		// Phase 1: decide (+ mark). Per-node groups keep stigmergic
		// board access race-free and deterministic.
		sp := m.decide.Start()
		if sc.Stigmergy {
			groups := grouper.All(alive)
			engine.ForEach(len(groups), func(g int) {
				for _, a := range groups[g] {
					next[a.ID] = a.Decide(board, step, w.Neighbors(a.At))
				}
			})
		} else {
			engine.ForEach(len(alive), func(i int) {
				a := alive[i]
				next[a.ID] = a.Decide(nil, step, w.Neighbors(a.At))
			})
		}
		sp.Stop()
		// Phase 2: meetings at the pre-move node.
		sp = m.meet.Start()
		if sc.Communicate && len(alive) > 1 {
			groups := grouper.Meetings(alive)
			if sc.Tracer != nil || m.enabled {
				for _, g := range groups {
					m.meetings.Inc()
					m.meetSize.Observe(float64(len(g)))
					if sc.Tracer != nil {
						sc.Tracer.Emit(trace.Event{
							Step: step, Kind: trace.KindMeet,
							Node: int32(g[0].At), Value: float64(len(g)),
						})
					}
				}
			}
			engine.ForEach(len(groups), func(g int) {
				core.ExchangeRoutes(groups[g])
			})
		}
		sp.Stop()
		if sc.Tracer != nil {
			for _, a := range alive {
				if next[a.ID] != a.At {
					sc.Tracer.Emit(trace.Event{
						Step: step, Kind: trace.KindMove,
						Agent: int32(a.ID), Node: int32(a.At), To: int32(next[a.ID]),
					})
				}
			}
		}
		// Phase 3: move and record; Phase 4: deposit at the new node.
		sp = m.move.Start()
		engine.ForEach(len(alive), func(i int) {
			a := alive[i]
			a.MoveTo(next[a.ID], w.IsGateway(next[a.ID]))
			a.RecordHere(step)
		})
		sp.Stop()
		// Deposits touch shared tables: keep them sequential in agent
		// order. Table updates are freshest-wins, so order only breaks
		// exact ties; fixing the order makes runs reproducible.
		sp = m.deposit.Start()
		for _, a := range alive {
			node := a.At
			agent := a
			a.DepositRoute(w.Neighbors(node), func(gw, hop NodeID, hops int) bool {
				changed := tables.Update(node, network.Entry{
					Gateway: gw, NextHop: hop, Hops: hops, Updated: step,
				})
				if changed && sc.Tracer != nil {
					sc.Tracer.Emit(trace.Event{
						Step: step, Kind: trace.KindDeposit,
						Agent: int32(agent.ID), Node: int32(node), To: int32(gw),
						Value: float64(hops),
					})
				}
				return changed
			})
		}
		sp.Stop()
		m.syncCounts(agents, tables)
		// Measure, then let the world move.
		sp = m.measure.Start()
		if meter != nil {
			mm := meter.Measure(step)
			res.Connectivity = append(res.Connectivity, mm.Local)
			res.EndToEnd = append(res.EndToEnd, mm.EndToEnd)
			res.Ideal = append(res.Ideal, mm.Ideal)
			res.Staleness = append(res.Staleness, mm.Staleness)
		} else {
			res.Connectivity = append(res.Connectivity, LocalConnectivity(w, tables))
			res.EndToEnd = append(res.EndToEnd, scratch.Connectivity(w, tables))
			res.Ideal = append(res.Ideal, w.ConnectivityToGateways())
			res.Staleness = append(res.Staleness, Staleness(w, tables, step))
		}
		sp.Stop()
		m.connLocal.Set(res.Connectivity[len(res.Connectivity)-1])
		m.connE2E.Set(res.EndToEnd[len(res.EndToEnd)-1])
		m.connIdeal.Set(res.Ideal[len(res.Ideal)-1])
		m.staleness.Set(res.Staleness[len(res.Staleness)-1])
		if sc.Tracer != nil {
			sc.Tracer.Emit(trace.Event{
				Step: step, Kind: trace.KindMeasure,
				Value: res.Connectivity[len(res.Connectivity)-1], Extra: "connectivity",
			})
			sc.Tracer.Emit(trace.Event{
				Step: step, Kind: trace.KindMeasure,
				Value: res.EndToEnd[len(res.EndToEnd)-1], Extra: "end-to-end",
			})
			sc.Tracer.Emit(trace.Event{
				Step: step, Kind: trace.KindMeasure,
				Value: res.Ideal[len(res.Ideal)-1], Extra: "ideal",
			})
		}
		if sc.Observer != nil {
			sc.Observer(step, w, tables)
		}
		w.Step()
		rec.AfterWorldStep()
		return false
	})

	if meter != nil {
		m.measResyncs.Add(uint64(meter.Resyncs()))
	}
	res.Mean = stats.WindowMean(res.Connectivity, sc.MeasureFrom, sc.Steps)
	res.Std = stats.WindowStd(res.Connectivity, sc.MeasureFrom, sc.Steps)
	res.MeanEndToEnd = stats.WindowMean(res.EndToEnd, sc.MeasureFrom, sc.Steps)
	res.MeanStaleness = stats.WindowMean(res.Staleness, sc.MeasureFrom, sc.Steps)
	if sc.Faults != nil {
		// An event scheduled at world step s fires inside the s-th Step()
		// call, after that step's measurement — its first observable effect
		// is series index s+1, with series[s] the pre-fault baseline.
		fsteps := sc.Faults.Steps()
		shifted := make([]int, len(fsteps))
		for i, s := range fsteps {
			shifted[i] = s + 1
		}
		res.Recovery = stats.Recovery(res.Connectivity, shifted, sc.RecoveryTol)
		res.RecoveryEndToEnd = stats.Recovery(res.EndToEnd, shifted, sc.RecoveryTol)
	}
	for _, a := range agents {
		res.Overhead.Add(a.Overhead)
	}
	return res, nil
}

// reactToFaults is the harness's response to a fault epoch advance: routes
// through dead next hops and routes to out-of-service gateways are aged
// out of every table, and agents caught on dead nodes are respawned (to a
// uniformly random alive node, trail cleared) or killed per
// Scenario.StrandedPolicy. Respawn targets are drawn from the run's
// dedicated fault stream over the ascending alive-node list, so the
// reaction is a pure function of the run seed and the schedule. Returns
// the surviving agent slice; the caller's original slice is never mutated.
func reactToFaults(w *network.World, sc Scenario, step int, tables *Tables, alive []*core.Agent, frng *rng.Stream, res *Result, m *runMetrics) []*core.Agent {
	purged := 0
	for u := 0; u < w.N(); u++ {
		purged += tables.DropIf(NodeID(u), func(e network.Entry) bool {
			return !w.Alive(e.NextHop) || !w.IsGateway(e.Gateway)
		})
	}
	m.purged.Add(uint64(purged))
	stranded := 0
	if sc.StrandedPolicy == StrandedKill {
		lost := 0
		for _, a := range alive {
			if !w.Alive(a.At) {
				lost++
			}
		}
		if lost > 0 {
			stranded = lost
			kept := make([]*core.Agent, 0, len(alive)-lost)
			for _, a := range alive {
				if w.Alive(a.At) {
					kept = append(kept, a)
				}
			}
			alive = kept
		}
	} else {
		var aliveNodes []NodeID
		for _, a := range alive {
			if w.Alive(a.At) {
				continue
			}
			stranded++
			if aliveNodes == nil {
				for u := 0; u < w.N(); u++ {
					if w.Alive(NodeID(u)) {
						aliveNodes = append(aliveNodes, NodeID(u))
					}
				}
			}
			if len(aliveNodes) == 0 {
				continue // nothing left to respawn onto; leave it in place
			}
			target := aliveNodes[frng.Intn(len(aliveNodes))]
			a.At = target
			if w.IsGateway(target) {
				a.Trail.ResetAt(target)
			} else {
				a.Trail.Clear()
			}
		}
	}
	res.Stranded += stranded
	m.stranded.Add(uint64(stranded))
	if sc.Tracer != nil {
		evs := w.LastFaultEvents()
		extra := ""
		if len(evs) > 0 {
			extra = evs[0].Kind.String()
		}
		sc.Tracer.Emit(trace.Event{
			Step: step, Kind: trace.KindFault,
			Value: float64(len(evs)), Extra: extra,
		})
	}
	return alive
}

func placeAgents(w *network.World, sc Scenario, root *rng.Stream) ([]*core.Agent, error) {
	place := root.Named("placement")
	agents := make([]*core.Agent, sc.Agents)
	for i := range agents {
		a, err := core.New(core.Config{
			ID:            i,
			Start:         NodeID(place.Intn(w.N())),
			Kind:          sc.Kind,
			NetworkSize:   w.N(),
			Stigmergy:     sc.Stigmergy,
			ShareRoutes:   sc.Communicate,
			VisitCapacity: sc.HistorySize,
			TrailCapacity: sc.HistorySize,
			Stream:        root.Named("agent").Child(uint64(i)),
		})
		if err != nil {
			return nil, fmt.Errorf("routing: %w", err)
		}
		// The paper's communicating oldest-node agents merge histories in
		// meetings — the mechanism behind Fig 11's collapse.
		if sc.Communicate && sc.Kind == core.PolicyOldestNode {
			a.EnableVisitSharing(true)
		}
		// An agent injected on a gateway starts with an anchored trail.
		if w.IsGateway(a.At) {
			a.Trail.ResetAt(a.At)
		}
		agents[i] = a
	}
	return agents, nil
}

// Aggregate summarises a batch of runs of one parameter setting.
type Aggregate struct {
	Runs int
	// Means holds each run's window-mean connectivity.
	Means []float64
	// Mean summarises Means across runs.
	Mean stats.Summary
	// EndToEnd summarises the runs' window-mean end-to-end connectivity.
	EndToEnd stats.Summary
	// Stability is the average within-run standard deviation over the
	// window (lower = steadier connectivity).
	Stability float64
	// AvgSeries is the pointwise mean connectivity curve.
	AvgSeries []float64
	// AvgIdeal is the pointwise mean physical upper bound.
	AvgIdeal []float64
	// MeanStaleness averages the runs' window-mean route staleness.
	MeanStaleness float64
	// Reconv summarises each run's mean time-to-reconvergence over its
	// recovered fault events (runs with no recovered event are excluded).
	// Meaningful only when the scenario carried a fault schedule.
	Reconv stats.Summary
	// Floor summarises each run's connectivity floor across its fault
	// degradation windows.
	Floor stats.Summary
	// ReconvE2E and FloorE2E are the same summaries over the end-to-end
	// series, where severed paths register fully.
	ReconvE2E stats.Summary
	FloorE2E  stats.Summary
	// Recovered and Censored total the fault events across runs that did
	// and did not reconverge before the run ended.
	Recovered, Censored int
	// Stranded totals agents caught on dying nodes across runs.
	Stranded int
	// Overhead sums all runs' agent overhead.
	Overhead core.Overhead
}

// RunMany executes runs independent runs. worldFor must return a FRESH
// world per call; to follow the paper (same node placement and movements
// in every run) regenerate from the same world seed each time.
//
// With Scenario.RunWorkers > 1 the runs execute on a bounded worker pool
// (see internal/parallel). Each run draws its seed from its index alone
// and writes into its own result slot, and the reduction below walks the
// slots in run order, so the aggregate is bit-identical to the sequential
// path at any worker count. A Tracer or Observer forces sequential
// execution: those sinks are shared across runs and must see them in
// order.
func RunMany(worldFor func(run int) (*network.World, error), sc Scenario, runs int, baseSeed uint64) (Aggregate, error) {
	if runs <= 0 {
		return Aggregate{}, fmt.Errorf("routing: runs must be positive")
	}
	workers := sc.RunWorkers
	if sc.Tracer != nil || sc.Observer != nil {
		workers = 1
	}
	pool := parallel.NewPool(workers)
	results := make([]Result, runs)
	// Static worlds tempt callers into returning one shared *World from
	// worldFor; Run still mutates it (step counter, metrics hook,
	// connectivity scratch), so that is a data race under run-level
	// parallelism. Catch it loudly rather than corrupting results.
	var guard worldGuard
	err := pool.Run(runs, func(r int) error {
		w, err := worldFor(r)
		if err != nil {
			return err
		}
		if pool.Parallel() {
			if err := guard.claim(w, r); err != nil {
				return err
			}
		}
		res, err := Run(w, sc, rng.DeriveSeed(baseSeed, uint64(r)))
		if err != nil {
			return err
		}
		results[r] = res
		return nil
	})
	if err != nil {
		return Aggregate{}, err
	}
	agg := Aggregate{Runs: runs}
	series := make([][]float64, 0, runs)
	ideal := make([][]float64, 0, runs)
	stds := make([]float64, 0, runs)
	e2e := make([]float64, 0, runs)
	var stal, reconv, floors, reconvE2E, floorsE2E []float64
	for r := 0; r < runs; r++ {
		res := results[r]
		if !math.IsNaN(res.Mean) {
			agg.Means = append(agg.Means, res.Mean)
		}
		if !math.IsNaN(res.MeanEndToEnd) {
			e2e = append(e2e, res.MeanEndToEnd)
		}
		if !math.IsNaN(res.MeanStaleness) {
			stal = append(stal, res.MeanStaleness)
		}
		if !math.IsNaN(res.Recovery.MeanSteps) {
			reconv = append(reconv, res.Recovery.MeanSteps)
		}
		if !math.IsNaN(res.Recovery.Floor) {
			floors = append(floors, res.Recovery.Floor)
		}
		if !math.IsNaN(res.RecoveryEndToEnd.MeanSteps) {
			reconvE2E = append(reconvE2E, res.RecoveryEndToEnd.MeanSteps)
		}
		if !math.IsNaN(res.RecoveryEndToEnd.Floor) {
			floorsE2E = append(floorsE2E, res.RecoveryEndToEnd.Floor)
		}
		agg.Recovered += res.Recovery.Recovered
		agg.Censored += res.Recovery.Censored
		agg.Stranded += res.Stranded
		stds = append(stds, res.Std)
		series = append(series, res.Connectivity)
		ideal = append(ideal, res.Ideal)
		agg.Overhead.Add(res.Overhead)
	}
	agg.Mean = stats.Summarize(agg.Means)
	agg.EndToEnd = stats.Summarize(e2e)
	agg.Stability = stats.Mean(stds)
	agg.AvgSeries = stats.AverageSeries(series)
	agg.AvgIdeal = stats.AverageSeries(ideal)
	agg.MeanStaleness = stats.Mean(stal)
	agg.Reconv = stats.Summarize(reconv)
	agg.Floor = stats.Summarize(floors)
	agg.ReconvE2E = stats.Summarize(reconvE2E)
	agg.FloorE2E = stats.Summarize(floorsE2E)
	return agg, nil
}

// RunManyCached is RunMany over a record-once, replay-many world source.
// The first run to need a world records a Trajectory from one freshly
// built live world — sync.Once inside the source, so exactly one
// recording happens at any RunWorkers — and every run (including the
// first) replays it through World.StepFromTrajectory. Replay is
// bit-identical to live stepping, so the aggregate matches
// RunMany(fresh-world-per-run, ...) exactly; it just skips the mobility
// RNG, disc scans, and grid maintenance on every run after the recording.
// Each run gets its own replay cursor over the shared immutable
// trajectory, so the source is safe for parallel replication. With a
// single run there is nothing to amortize and recording would double the
// world work, so it falls back to plain RunMany.
func RunManyCached(build func() (*network.World, error), sc Scenario, runs int, baseSeed uint64) (Aggregate, error) {
	if runs <= 1 {
		return RunMany(func(int) (*network.World, error) { return build() }, sc, runs, baseSeed)
	}
	d := sc.withDefaults()
	src := network.NewTrajectorySource(d.Steps, d.AnchorEvery, d.Faults, build)
	return RunMany(src.WorldFor, sc, runs, baseSeed)
}

// worldGuard detects worldFor implementations that hand the same *World
// to two concurrent runs.
type worldGuard struct {
	mu   sync.Mutex
	seen map[*network.World]int
}

func (g *worldGuard) claim(w *network.World, run int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seen == nil {
		g.seen = make(map[*network.World]int)
	}
	if prev, dup := g.seen[w]; dup {
		return fmt.Errorf("parallel replication needs a fresh world per run: worldFor returned the same *World for runs %d and %d", prev, run)
	}
	g.seen[w] = run
	return nil
}
