package routing

import (
	"repro/internal/graph"
	"repro/internal/network"
)

// This file implements the incremental measurement engine: a Meter
// maintains the harness's four per-step metrics — LocalConnectivity,
// end-to-end Connectivity, ConnectivityToGateways, and Staleness — in
// O(changes) per step instead of the three full graph traversals the
// scratch path pays. It is fed by two change streams: the world's
// per-step topology deltas (network.TopoDeltas) and the routing tables'
// write tracking (Tables.Update/DropIf mark dirty nodes). End-to-end
// reachability lives in a graph.DynReach witness forest over the
// "route graph" — the directed edges (u → entry.NextHop) whose links are
// currently up — and the ideal bound in a network.ConnTracker over the raw
// topology. Local connectivity and staleness reduce to counters patched on
// the same events.
//
// Steps whose changes cannot be enumerated — topology rebuilt wholesale
// (fault events, anchor restores, partition-active stepping), fault
// epochs (alive/gateway masks moved), or a missed step — degrade to one
// full recompute, which costs exactly what the scratch path pays every
// step. Every value the Meter emits is bit-identical to the scratch
// functions' across all of it, pinned by the equivalence, property, and
// fuzz tests in this package.
//
// Contract: between Measure calls, every mutation of the measured tables
// must go through Tables.Update / Tables.DropIf (the harness's only write
// paths). Writes that bypass tracking (Tables.At(u).Update(...)) are
// invisible and void the equivalence guarantee.

// Measurement is one step's metric values, as emitted by Meter.Measure.
type Measurement struct {
	// Local is LocalConnectivity: the fraction of eligible nodes holding
	// at least one entry whose next hop is currently a live link.
	Local float64
	// EndToEnd is Connectivity: the fraction of eligible nodes whose
	// table chains reach a gateway over the current topology.
	EndToEnd float64
	// Ideal is ConnectivityToGateways: the omniscient-routing bound.
	Ideal float64
	// Staleness is the mean age of eligible nodes' freshest entries.
	Staleness float64
}

// Meter measures routing metrics incrementally. One Meter serves one run
// at a time; Reset rebinds it to a new world/tables pair (pooled harness
// state reuses meters across runs). The zero value is ready after Reset.
type Meter struct {
	w  *network.World
	ts *Tables

	deltas *network.TopoDeltas
	ideal  *network.ConnTracker
	dr     graph.DynReach // end-to-end reach over the route graph
	orc    graph.ReachOracle

	// Route-graph mirrors, consistent with the tables as of the last
	// drain: hops[u] lists u's entry next hops (entry order), revEnt[v]
	// the multiset of nodes holding an entry with next hop v.
	hops   [][]NodeID
	revEnt [][]NodeID

	// Per-node aggregates patched on writes: fresh[u] is the freshest
	// Updated at u (-1 when empty); localOK[u] whether u holds an entry
	// with a live next hop; elig[u] the service-masked eligibility
	// (non-gateway ∧ alive), constant between fault epochs.
	fresh   []int
	localOK []bool
	elig    []bool

	eligible  int // count of elig
	localCnt  int // count of elig ∧ localOK
	withEntry int // count of elig ∧ fresh >= 0
	sumFresh  int // Σ fresh over the withEntry set

	lastEpoch int
	lastStep  int
	synced    bool
	resyncs   int
}

// NewMeter builds a meter over w's topology deltas and ts's write
// tracking (which it enables).
func NewMeter(w *network.World, ts *Tables) *Meter {
	m := &Meter{}
	m.Reset(w, ts)
	return m
}

// Reset rebinds the meter to a world/tables pair and forces a full
// recompute at the next Measure. Enables write tracking on ts.
func (m *Meter) Reset(w *network.World, ts *Tables) {
	m.w = w
	m.ts = ts
	m.deltas = w.WatchTopology()
	if m.ideal == nil {
		m.ideal = network.NewConnTracker(w)
	} else {
		m.ideal.Reset(w)
	}
	ts.setTracking(true)
	m.synced = false
	m.resyncs = 0
	if m.orc.LiveOut == nil {
		// Oracle closures are bound once per meter — they read m's current
		// fields, so Reset retargets them without allocating in any
		// per-step path.
		m.orc = graph.ReachOracle{
			LiveOut: func(u NodeID, dst []NodeID) []NodeID {
				topo := m.w.Topology()
				for _, e := range m.ts.tables[u].Entries() {
					if topo.HasEdgeSorted(u, e.NextHop) {
						dst = append(dst, e.NextHop)
					}
				}
				return dst
			},
			LiveIn: func(v NodeID, dst []NodeID) []NodeID {
				topo := m.w.Topology()
				for _, u := range m.revEnt[v] {
					if topo.HasEdgeSorted(u, v) {
						dst = append(dst, u)
					}
				}
				return dst
			},
			HasLive: func(u, v NodeID) bool {
				if !m.w.Topology().HasEdgeSorted(u, v) {
					return false
				}
				for _, h := range m.hops[u] {
					if h == v {
						return true
					}
				}
				return false
			},
			Countable: func(u NodeID) bool {
				return !m.w.IsGateway(u) && m.w.Alive(u)
			},
		}
	}
}

// Resyncs returns how many full recomputes the meter has performed since
// Reset (the first Measure included).
func (m *Meter) Resyncs() int { return m.resyncs }

// Measure brings the meter up to date with the world and tables and
// returns the step's metrics. step is the harness step used for entry
// ages (the same value the scratch Staleness takes).
func (m *Meter) Measure(step int) Measurement {
	w := m.w
	d := m.deltas
	// The incremental path is valid only when every change since the last
	// Measure is enumerable: the tables' dirty list always is; the
	// topology's stream is when no wholesale rebuild happened, the fault
	// masks did not move, and at most one world step elapsed.
	incrOK := m.synced && !d.Rebuilt && w.FaultEpoch() == m.lastEpoch &&
		(w.StepCount() == m.lastStep ||
			(d.Step == w.StepCount() && d.Step == m.lastStep+1))
	if !incrOK {
		m.resync()
	} else {
		if w.StepCount() != m.lastStep {
			m.applyTopoDeltas(d)
			m.lastStep = d.Step
		}
		m.drainWrites()
		m.dr.Flush()
	}
	var out Measurement
	out.Ideal = m.ideal.Connectivity()
	if m.eligible == 0 {
		out.Local, out.EndToEnd = 1, 1
	} else {
		out.Local = float64(m.localCnt) / float64(m.eligible)
		out.EndToEnd = float64(m.dr.Count()) / float64(m.eligible)
	}
	if m.withEntry > 0 {
		out.Staleness = float64(step*m.withEntry-m.sumFresh) / float64(m.withEntry)
	}
	return out
}

// resync rebuilds every mirror and aggregate from the current world and
// tables — the full-recompute fallback, one scratch-path step's worth of
// work. Pending dirty marks are absorbed wholesale.
func (m *Meter) resync() {
	w, ts := m.w, m.ts
	n := w.N()
	topo := w.Topology()
	m.lastEpoch = w.FaultEpoch()
	m.lastStep = w.StepCount()
	m.synced = true
	m.resyncs++
	ts.clearDirty()
	if cap(m.hops) < n {
		m.hops = make([][]NodeID, n)
		m.revEnt = make([][]NodeID, n)
		m.fresh = make([]int, n)
		m.localOK = make([]bool, n)
		m.elig = make([]bool, n)
	}
	m.hops = m.hops[:n]
	m.revEnt = m.revEnt[:n]
	m.fresh = m.fresh[:n]
	m.localOK = m.localOK[:n]
	m.elig = m.elig[:n]
	for v := range m.revEnt {
		m.revEnt[v] = m.revEnt[v][:0]
	}
	m.eligible, m.localCnt, m.withEntry, m.sumFresh = 0, 0, 0, 0
	for u := 0; u < n; u++ {
		id := NodeID(u)
		hu := m.hops[u][:0]
		fresh := -1
		lok := false
		for _, e := range ts.tables[u].Entries() {
			hu = append(hu, e.NextHop)
			m.revEnt[e.NextHop] = appendSlack(m.revEnt[e.NextHop], id)
			if e.Updated > fresh {
				fresh = e.Updated
			}
			if !lok && topo.HasEdgeSorted(id, e.NextHop) {
				lok = true
			}
		}
		m.hops[u] = hu
		m.fresh[u] = fresh
		m.localOK[u] = lok
		el := !w.IsGateway(id) && w.Alive(id)
		m.elig[u] = el
		if el {
			m.eligible++
			if lok {
				m.localCnt++
			}
			if fresh >= 0 {
				m.withEntry++
				m.sumFresh += fresh
			}
		}
	}
	m.dr.Reset(n, m.orc)
	m.dr.Recompute(w.Gateways())
}

// applyTopoDeltas feeds one step's edge churn into the route-graph reach
// forest and the local counter. Only endpoints that hold an entry through
// the churned edge can be affected. The hops mirror may lag this step's
// still-undrained table writes; any discrepancy is covered because those
// nodes are on the dirty list drainWrites processes next (over-reports
// here are harmless, under-reports impossible).
func (m *Meter) applyTopoDeltas(d *network.TopoDeltas) {
	for i := range d.RemU {
		u, v := d.RemU[i], d.RemV[i]
		if m.hasHop(u, v) {
			m.dr.Invalidate(u)
			m.refreshLocal(u)
		}
	}
	for i := range d.AddU {
		u, v := d.AddU[i], d.AddV[i]
		if m.hasHop(u, v) {
			m.dr.Candidate(u)
			m.refreshLocal(u)
		}
	}
}

// drainWrites absorbs the tables' dirty list: for each written node, diff
// the hops mirror against the current entries (fixing revEnt), refresh the
// freshness and local aggregates, and queue the node for reach repair.
func (m *Meter) drainWrites() {
	ts := m.ts
	for _, u := range ts.dirty {
		m.refreshNode(u)
	}
	ts.clearDirty()
}

// refreshNode re-derives node u's mirrors and aggregate contributions from
// its current table.
func (m *Meter) refreshNode(u NodeID) {
	ts := m.ts
	// Retire the old mirror: drop one revEnt occurrence per old hop.
	for _, h := range m.hops[u] {
		m.revRemove(u, h)
	}
	hu := m.hops[u][:0]
	fresh := -1
	for _, e := range ts.tables[u].Entries() {
		hu = append(hu, e.NextHop)
		m.revEnt[e.NextHop] = appendSlack(m.revEnt[e.NextHop], u)
		if e.Updated > fresh {
			fresh = e.Updated
		}
	}
	m.hops[u] = hu
	if m.elig[u] {
		old := m.fresh[u]
		if old >= 0 {
			m.withEntry--
			m.sumFresh -= old
		}
		if fresh >= 0 {
			m.withEntry++
			m.sumFresh += fresh
		}
	}
	m.fresh[u] = fresh
	m.refreshLocal(u)
	// The write may have removed the entry witnessing u's reach, or added
	// one that establishes it; both checks are cheap no-ops when not.
	m.dr.Invalidate(u)
	m.dr.Candidate(u)
}

// refreshLocal recomputes localOK[u] from the current entries and
// topology, patching the counter. Idempotent, so duplicate refreshes from
// overlapping events are harmless.
func (m *Meter) refreshLocal(u NodeID) {
	topo := m.w.Topology()
	lok := false
	for _, e := range m.ts.tables[u].Entries() {
		if topo.HasEdgeSorted(u, e.NextHop) {
			lok = true
			break
		}
	}
	if lok == m.localOK[u] {
		return
	}
	m.localOK[u] = lok
	if m.elig[u] {
		if lok {
			m.localCnt++
		} else {
			m.localCnt--
		}
	}
}

// hasHop reports whether the hops mirror lists v as one of u's entry next
// hops.
func (m *Meter) hasHop(u, v NodeID) bool {
	for _, h := range m.hops[u] {
		if h == v {
			return true
		}
	}
	return false
}

// appendSlack appends with headroom (rows grow to 2·len+8): revEnt rows
// track per-node entry in-degrees whose high-water marks drift for
// hundreds of steps; slack keeps the drift inside existing capacity so
// steady-state measures stay allocation-free.
func appendSlack(row []NodeID, u NodeID) []NodeID {
	if len(row) == cap(row) {
		grown := make([]NodeID, len(row), 2*len(row)+8)
		copy(grown, row)
		row = grown
	}
	return append(row, u)
}

// revRemove drops one occurrence of u from revEnt[v].
func (m *Meter) revRemove(u, v NodeID) {
	row := m.revEnt[v]
	for i, x := range row {
		if x == u {
			row[i] = row[len(row)-1]
			m.revEnt[v] = row[:len(row)-1]
			return
		}
	}
}
