// Package traffic validates agent-built routing tables with actual
// packets: a generator injects packets at random non-gateway nodes and a
// forwarder moves each packet one hop per step along the current best
// table entry while the network keeps moving underneath it. The delivery
// ratio is the ground-truth check on the connectivity metric — a table
// chain that looks valid must actually carry packets.
package traffic

import (
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/routing"
)

// NodeID aliases network.NodeID.
type NodeID = network.NodeID

// DropReason classifies packet failures.
type DropReason int

const (
	// DropNoRoute: the packet sat on a node with no usable table entry.
	DropNoRoute DropReason = iota + 1
	// DropDeadLink: the best entry pointed across a link that no longer
	// exists.
	DropDeadLink
	// DropLoop: the packet revisited a node.
	DropLoop
	// DropTTL: the hop budget ran out.
	DropTTL
)

// Stats accumulates traffic outcomes.
type Stats struct {
	Injected  int
	Delivered int
	Dropped   map[DropReason]int
	HopsSum   int // total hops over delivered packets
	AgeSum    int // total steps in flight over delivered packets
}

// DeliveryRatio returns delivered / injected (1 if nothing was injected
// and nothing is pending — vacuous success — otherwise the honest ratio
// counting still-pending packets as undelivered).
func (s Stats) DeliveryRatio() float64 {
	if s.Injected == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Injected)
}

// MeanHops returns the average path length of delivered packets.
func (s Stats) MeanHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.HopsSum) / float64(s.Delivered)
}

// MeanLatency returns the average steps-in-flight of delivered packets.
func (s Stats) MeanLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.AgeSum) / float64(s.Delivered)
}

type packet struct {
	at      NodeID
	hops    int
	born    int
	ttl     int
	visited map[NodeID]bool
}

// Gen injects and forwards packets. Construct with NewGen; plug its Step
// into routing.Scenario.Observer.
type Gen struct {
	// PerStep is how many packets to inject each step.
	PerStep int
	// TTL is the per-packet hop budget.
	TTL int
	// WarmupSteps suppresses injection early on while tables are empty.
	WarmupSteps int

	stream  *rng.Stream
	flight  []packet
	stats   Stats
	scratch []packet
}

// NewGen returns a generator injecting perStep packets per step with the
// given TTL (<=0 means 64), skipping the first warmup steps.
func NewGen(perStep, ttl, warmup int, stream *rng.Stream) *Gen {
	if ttl <= 0 {
		ttl = 64
	}
	return &Gen{
		PerStep:     perStep,
		TTL:         ttl,
		WarmupSteps: warmup,
		stream:      stream,
		stats:       Stats{Dropped: map[DropReason]int{}},
	}
}

// Stats returns the accumulated outcomes so far.
func (g *Gen) Stats() Stats { return g.stats }

// InFlight returns the number of packets still travelling.
func (g *Gen) InFlight() int { return len(g.flight) }

// Step injects new packets and forwards every in-flight packet one hop
// along the node's best table entry. It is shaped to be used as a
// routing.Scenario Observer.
func (g *Gen) Step(step int, w *network.World, tables *routing.Tables) {
	// Forward first so a packet needs at least one step per hop.
	g.scratch = g.scratch[:0]
	for _, p := range g.flight {
		e, ok := tables.Best(p.at)
		if !ok {
			g.stats.Dropped[DropNoRoute]++
			continue
		}
		if !w.Topology().HasEdge(p.at, e.NextHop) {
			g.stats.Dropped[DropDeadLink]++
			continue
		}
		p.at = e.NextHop
		p.hops++
		if w.IsGateway(p.at) {
			g.stats.Delivered++
			g.stats.HopsSum += p.hops
			g.stats.AgeSum += step - p.born
			continue
		}
		if p.visited[p.at] {
			g.stats.Dropped[DropLoop]++
			continue
		}
		p.visited[p.at] = true
		if p.hops >= p.ttl {
			g.stats.Dropped[DropTTL]++
			continue
		}
		g.scratch = append(g.scratch, p)
	}
	g.flight, g.scratch = g.scratch, g.flight
	if step < g.WarmupSteps {
		return
	}
	for i := 0; i < g.PerStep; i++ {
		src := NodeID(g.stream.Intn(w.N()))
		if w.IsGateway(src) {
			continue // gateways have nothing to send upstream
		}
		g.stats.Injected++
		g.flight = append(g.flight, packet{
			at:      src,
			born:    step,
			ttl:     g.TTL,
			visited: map[NodeID]bool{src: true},
		})
	}
}
