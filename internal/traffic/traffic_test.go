package traffic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/routing"
)

// chainWorld builds a static bidirectional chain, gateway at node 0.
func chainWorld(t *testing.T, n int) *network.World {
	t.Helper()
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * 10, Y: 0}
		radios[i] = radio.New(10.5)
		movers[i] = mobility.Static{}
	}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Rect{MinX: 0, MinY: -1, MaxX: float64(n) * 10, MaxY: 1},
		Positions: pos,
		Radios:    radios,
		Movers:    movers,
		Gateways:  []NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// chainTables routes every node back along the chain.
func chainTables(w *network.World) *routing.Tables {
	ts := routing.NewTables(w.N(), 1)
	for u := 1; u < w.N(); u++ {
		ts.At(NodeID(u)).Update(network.Entry{
			Gateway: 0, NextHop: NodeID(u - 1), Hops: u, Updated: 0,
		})
	}
	return ts
}

func TestDeliveryOnPerfectTables(t *testing.T) {
	w := chainWorld(t, 5)
	ts := chainTables(w)
	g := NewGen(2, 0, 0, rng.New(1))
	for step := 0; step < 30; step++ {
		g.Step(step, w, ts)
	}
	// Drain in-flight packets.
	gDrain := *g
	_ = gDrain
	g.PerStep = 0
	for step := 30; step < 45; step++ {
		g.Step(step, w, ts)
	}
	st := g.Stats()
	if st.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if st.Delivered != st.Injected {
		t.Fatalf("perfect tables dropped packets: %+v", st)
	}
	if st.DeliveryRatio() != 1 {
		t.Fatalf("ratio = %v", st.DeliveryRatio())
	}
	if st.MeanHops() <= 0 || st.MeanLatency() < st.MeanHops() {
		t.Fatalf("hops/latency implausible: hops=%v latency=%v", st.MeanHops(), st.MeanLatency())
	}
}

func TestNoRouteDrops(t *testing.T) {
	w := chainWorld(t, 4)
	ts := routing.NewTables(w.N(), 1) // empty tables
	g := NewGen(1, 0, 0, rng.New(2))
	for step := 0; step < 10; step++ {
		g.Step(step, w, ts)
	}
	st := g.Stats()
	if st.Delivered != 0 {
		t.Fatal("delivered without routes")
	}
	if st.Dropped[DropNoRoute] == 0 {
		t.Fatalf("expected no-route drops: %+v", st.Dropped)
	}
	if st.DeliveryRatio() != 0 {
		t.Fatalf("ratio = %v", st.DeliveryRatio())
	}
}

func TestDeadLinkDrops(t *testing.T) {
	w := chainWorld(t, 4)
	ts := routing.NewTables(w.N(), 1)
	// Node 3 points at node 1, which is out of radio range.
	ts.At(3).Update(network.Entry{Gateway: 0, NextHop: 1, Hops: 2, Updated: 0})
	g := NewGen(0, 0, 0, rng.New(3))
	g.flight = append(g.flight, packet{at: 3, ttl: 10, visited: map[NodeID]bool{3: true}})
	g.stats.Injected++
	g.Step(0, w, ts)
	if g.Stats().Dropped[DropDeadLink] != 1 {
		t.Fatalf("dead link not detected: %+v", g.Stats().Dropped)
	}
}

func TestLoopDrops(t *testing.T) {
	w := chainWorld(t, 4)
	ts := routing.NewTables(w.N(), 1)
	// 2 → 3 → 2 loop.
	ts.At(2).Update(network.Entry{Gateway: 0, NextHop: 3, Hops: 1, Updated: 0})
	ts.At(3).Update(network.Entry{Gateway: 0, NextHop: 2, Hops: 1, Updated: 0})
	g := NewGen(0, 0, 0, rng.New(4))
	g.flight = append(g.flight, packet{at: 2, ttl: 50, visited: map[NodeID]bool{2: true}})
	g.stats.Injected++
	for step := 0; step < 5 && g.InFlight() > 0; step++ {
		g.Step(step, w, ts)
	}
	if g.Stats().Dropped[DropLoop] != 1 {
		t.Fatalf("loop not detected: %+v", g.Stats().Dropped)
	}
}

func TestTTLDrops(t *testing.T) {
	w := chainWorld(t, 8)
	ts := chainTables(w)
	g := NewGen(0, 2, 0, rng.New(5)) // TTL 2: far nodes can't make it
	g.flight = append(g.flight, packet{at: 7, ttl: 2, visited: map[NodeID]bool{7: true}})
	g.stats.Injected++
	for step := 0; step < 10 && g.InFlight() > 0; step++ {
		g.Step(step, w, ts)
	}
	if g.Stats().Dropped[DropTTL] != 1 {
		t.Fatalf("TTL not enforced: %+v", g.Stats().Dropped)
	}
}

func TestWarmupSuppressesInjection(t *testing.T) {
	w := chainWorld(t, 4)
	ts := chainTables(w)
	g := NewGen(3, 0, 5, rng.New(6))
	for step := 0; step < 5; step++ {
		g.Step(step, w, ts)
	}
	if g.Stats().Injected != 0 {
		t.Fatal("injected during warmup")
	}
	g.Step(5, w, ts)
	if g.Stats().Injected == 0 {
		t.Fatal("no injection after warmup")
	}
}

func TestIntegrationWithRoutingRun(t *testing.T) {
	// End-to-end: agents maintain tables, packets flow over them, and the
	// delivery ratio roughly tracks the end-to-end connectivity.
	w, err := netgen.Generate(netgen.Spec{
		N: 120, TargetEdges: 960, ArenaSide: 70, RangeSpread: 0.25,
		Mobility: netgen.MobilityRandom, MobileFraction: 0.5,
		MinSpeed: 0.1, MaxSpeed: 0.5,
		Gateways: 8, RangeBoost: 1.5,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGen(3, 32, 60, rng.New(9))
	sc := routing.Scenario{
		Agents: 40, Kind: core.PolicyOldestNode, Steps: 200,
		Observer: gen.Step,
	}
	res, err := routing.Run(w, sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Stats()
	if st.Injected < 300 {
		t.Fatalf("too few packets: %+v", st)
	}
	ratio := st.DeliveryRatio()
	if ratio <= 0 {
		t.Fatal("no packets delivered over agent tables")
	}
	// Delivery (single-entry forwarding) should be within a plausible
	// band around the strict end-to-end connectivity.
	if ratio < res.MeanEndToEnd*0.3 {
		t.Fatalf("delivery ratio %v implausibly below end-to-end connectivity %v", ratio, res.MeanEndToEnd)
	}
}
