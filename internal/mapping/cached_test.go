package mapping

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/network"
)

// cachedBuild adapts freshFactory to RunManyCached's record contract:
// one freshly generated live world for the recording pass.
func cachedBuild() func() (*network.World, error) {
	f := freshFactory()
	return func() (*network.World, error) { return f(0) }
}

// TestRunManyCachedMatchesLive is the tentpole acceptance gate at the
// mapping-harness level: a record-once/replay-many batch must produce an
// aggregate bit-identical to live per-run stepping, clean and under node
// churn (which exercises the stranded-respawn path through the replayed
// fault epochs), at every RunWorkers × ShardWorkers in {1,2,4}².
func TestRunManyCachedMatchesLive(t *testing.T) {
	const runs, maxSteps = 3, 2000
	w := smallWorld(t)
	churn, err := faults.Preset("churn", w.N(), w.Gateways(), 400, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		// Clean: a full cooperating team on the bare static world.
		{"clean", Scenario{
			Agents: 8, Kind: core.PolicyConscientious, Cooperate: true,
			MaxSteps: maxSteps,
		}},
		// Churn: a slow two-agent team so the runs span the whole fault
		// schedule instead of finishing before the first death wave.
		{"churn", Scenario{
			Agents: 2, Kind: core.PolicyRandom, Cooperate: true,
			MaxSteps: maxSteps, Faults: churn,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := tc.sc
			base, err := RunMany(freshFactory(), sc, runs, 7)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Faults != nil && base.Stranded == 0 {
				t.Fatal("churn never stranded an agent; the faulted case is vacuous")
			}
			for _, rw := range []int{1, 2, 4} {
				for _, sw := range []int{1, 2, 4} {
					t.Run(fmt.Sprintf("runworkers=%d/shardworkers=%d", rw, sw), func(t *testing.T) {
						withBudget(t, 8, func() {
							csc := sc
							csc.RunWorkers, csc.ShardWorkers = rw, sw
							got, err := RunManyCached(cachedBuild(), csc, runs, 7)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(base, got) {
								t.Error("cached aggregate differs from live sequential baseline")
							}
						})
					})
				}
			}
		})
	}
}

// TestRunManyCachedSingleRunFallback pins the runs<=1 path: with nothing
// to amortize, RunManyCached must behave exactly like RunMany on one
// freshly built world rather than paying a recording pass.
func TestRunManyCachedSingleRunFallback(t *testing.T) {
	sc := Scenario{Agents: 8, Kind: core.PolicyConscientious, Cooperate: true}
	base, err := RunMany(freshFactory(), sc, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunManyCached(cachedBuild(), sc, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Error("single-run cached aggregate differs from RunMany")
	}
}
