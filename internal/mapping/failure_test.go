package mapping

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/radio"
)

// TestPartitionedNetworkNeverFinishes: on a disconnected network the team
// cannot complete the map; the run must stop at the budget, not hang.
func TestPartitionedNetworkNeverFinishes(t *testing.T) {
	// Two clusters, out of radio range of each other.
	var pos []geom.Point
	for i := 0; i < 5; i++ {
		pos = append(pos, geom.Point{X: float64(i) * 3, Y: 0})
	}
	for i := 0; i < 5; i++ {
		pos = append(pos, geom.Point{X: 200 + float64(i)*3, Y: 0})
	}
	radios := make([]radio.Radio, len(pos))
	movers := make([]mobility.Mover, len(pos))
	for i := range radios {
		radios[i] = radio.New(4)
		movers[i] = mobility.Static{}
	}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Rect{MinX: 0, MinY: -1, MaxX: 250, MaxY: 1},
		Positions: pos, Radios: radios, Movers: movers,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, Scenario{Agents: 3, Kind: core.PolicyConscientious,
		Cooperate: true, MaxSteps: 500}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished {
		t.Fatal("partitioned network reported complete map")
	}
	// The team still learned its own partition.
	if final := res.Curve[len(res.Curve)-1]; final <= 0 || final >= 1 {
		t.Fatalf("final coverage %v implausible for a partition", final)
	}
}

// TestDeadBatteriesStrandAgents: radios that decay to zero range strand
// every agent; the run must terminate cleanly at the budget.
func TestDeadBatteriesStrandAgents(t *testing.T) {
	w, err := netgen.Generate(netgen.Spec{
		N: 30, TargetEdges: 150, ArenaSide: 25, RangeSpread: 0.2,
		BatteryFraction: 1, DecayPerStep: 0.05, FloorFraction: 0,
		MaxTries: 64,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, Scenario{Agents: 2, Kind: core.PolicyRandom, MaxSteps: 300}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// After ~20 steps all links are gone; agents are stranded but the
	// simulation keeps stepping to the budget without panicking.
	if len(res.Curve) != 300 && !res.Finished {
		t.Fatalf("run stopped unexpectedly at %d steps", len(res.Curve))
	}
}

// TestSingleNodeWorld: an agent on a one-node network knows everything
// immediately.
func TestSingleNodeWorld(t *testing.T) {
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Square(5),
		Positions: []geom.Point{{X: 1, Y: 1}},
		Radios:    []radio.Radio{radio.New(1)},
		Movers:    []mobility.Mover{mobility.Static{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, Scenario{Agents: 1, Kind: core.PolicyConscientious}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || res.FinishStep != 1 {
		t.Fatalf("single-node map: finished=%v step=%d", res.Finished, res.FinishStep)
	}
}

// TestAllAgentsSameStart: co-located injection is legal and the dispersal
// mechanisms still complete the map.
func TestAllAgentsSameStart(t *testing.T) {
	w := smallWorld(t)
	// Force same start by retrying seeds until placement collides is
	// fragile; instead run many agents so collisions certainly occur.
	res, err := Run(w, Scenario{Agents: 30, Kind: core.PolicySuperConscientious,
		Cooperate: true, Stigmergy: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("crowded team did not finish")
	}
}

// TestZeroMemoryAgent: visit capacity 1 degrades but must not crash or
// spin forever on a small network.
func TestZeroMemoryAgent(t *testing.T) {
	w := smallWorld(t)
	res, err := Run(w, Scenario{Agents: 4, Kind: core.PolicyConscientious,
		Cooperate: true, VisitCapacity: 1, MaxSteps: 20000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("memory-1 team did not finish on the small world")
	}
}
