package mapping

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/parallel"
)

// withBudget grants the shared executor budget n extra goroutines for the
// duration of fn, so parallel paths engage even on 1-CPU CI containers.
func withBudget(t *testing.T, n int, fn func()) {
	t.Helper()
	old := parallel.Budget()
	parallel.SetBudget(n)
	defer parallel.SetBudget(old)
	fn()
}

// freshFactory regenerates an identical world per call — what parallel
// replication requires instead of the shared staticFactory world.
func freshFactory() func(int) (*network.World, error) {
	return func(int) (*network.World, error) {
		return netgen.Generate(netgen.Spec{
			N: 60, TargetEdges: 400, ArenaSide: 50, RangeSpread: 0.25,
			RequireStrong: true,
		}, 1234)
	}
}

// TestRunManyParallelEquivalence pins the determinism contract of the
// replication executor on the mapping scenario: bit-identical aggregates
// at every RunWorkers value.
func TestRunManyParallelEquivalence(t *testing.T) {
	sc := Scenario{Agents: 8, Kind: core.PolicyConscientious, Cooperate: true}
	const runs, seed = 5, 99
	base, err := RunMany(freshFactory(), sc, runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, runtime.NumCPU(), runs + 3} {
		withBudget(t, 8, func() {
			psc := sc
			psc.RunWorkers = workers
			got, err := RunMany(freshFactory(), psc, runs, seed)
			if err != nil {
				t.Fatalf("RunWorkers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("RunWorkers=%d: aggregate differs from sequential", workers)
			}
		})
	}
}

// TestRunManyParallelSharedWorldRejected pins the guard: the shared
// static world the sequential path allows must be rejected loudly under
// parallel replication (even static worlds are stepped and instrumented).
func TestRunManyParallelSharedWorldRejected(t *testing.T) {
	w := smallWorld(t)
	sc := Scenario{Agents: 8, Kind: core.PolicyConscientious, Cooperate: true}
	if _, err := RunMany(staticFactory(w), sc, 3, 7); err != nil {
		t.Fatalf("sequential shared world rejected: %v", err)
	}
	withBudget(t, 4, func() {
		sc.RunWorkers = 4
		_, err := RunMany(staticFactory(w), sc, 3, 7)
		if err == nil || !strings.Contains(err.Error(), "fresh world per run") {
			t.Fatalf("parallel shared world not rejected, err = %v", err)
		}
	})
}

// TestFreshWorldMatchesShared pins the fact the parallel call sites rely
// on: regenerating a static world from the same spec and seed yields the
// same results as sharing one world across sequential runs.
func TestFreshWorldMatchesShared(t *testing.T) {
	sc := Scenario{Agents: 8, Kind: core.PolicyConscientious, Cooperate: true}
	shared, err := RunMany(staticFactory(smallWorld(t)), sc, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunMany(freshFactory(), sc, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shared, fresh) {
		t.Error("regenerated static worlds give different results than a shared world")
	}
}
