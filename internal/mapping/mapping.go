// Package mapping implements the paper's first scenario: a team of mobile
// agents cooperatively builds the full topology map of a (mostly) static
// wireless network. Each simulated step every agent (1) learns the edges
// off its current node first-hand, (2) learns everything it can from
// co-located agents, (3) chooses its next node — filtered through
// stigmergic footprints if enabled — and (4) moves.
//
// The headline metric is the finishing time: the first step at which every
// agent's map is complete, which measures the team, not any individual.
package mapping

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stigmergy"
	"repro/internal/trace"
)

// NodeID aliases network.NodeID.
type NodeID = network.NodeID

// TeamSpec is one homogeneous slice of a mixed team.
type TeamSpec struct {
	Kind  core.PolicyKind
	Count int
}

// Scenario configures one mapping experiment.
type Scenario struct {
	// Agents is the population size.
	Agents int
	// Kind selects the movement policy for every agent.
	Kind core.PolicyKind
	// Team, when non-empty, overrides Agents/Kind with a mixed
	// population — the paper's "diversity of the agent types" dimension.
	// Agents are created in slice order, so agent IDs are deterministic.
	Team []TeamSpec
	// Stigmergy enables footprints.
	Stigmergy bool
	// Cooperate lets co-located agents exchange topology knowledge.
	// Single-agent runs are unaffected.
	Cooperate bool
	// Epsilon is Minar's randomness fix (0 disables).
	Epsilon float64
	// VisitCapacity bounds agent visit memory (0 = unbounded).
	VisitCapacity int
	// StigPerNode and StigWindow size the footprint board (defaults 3
	// marks/node, never expiring).
	StigPerNode int
	StigWindow  int
	// MaxSteps bounds the run (default 50000).
	MaxSteps int
	// Workers sizes the engine (0/1 = sequential).
	Workers int
	// RunWorkers is the number of independent runs RunMany may execute
	// concurrently (0/1 = sequential). Replication is embarrassingly
	// parallel, so aggregates are bit-identical at any value; extra
	// goroutines come from the shared parallel budget, with run workers
	// taking priority over the per-agent engine. Parallel replication
	// requires worldFor to return a fresh world per run (even static
	// worlds are stepped), which RunMany enforces. A Tracer forces
	// sequential execution so the shared sink observes runs in order.
	RunWorkers int
	// ShardWorkers partitions the world grid into that many spatial
	// bands stepped concurrently (0 leaves the world's setting, 1 forces
	// the sequential incremental path); static worlds ignore it.
	// Topologies are bit-identical at any value, so results never depend
	// on it; shard workers draw from the same parallel budget as
	// RunWorkers and degrade to sequential when the budget is claimed.
	ShardWorkers int
	// Faults, if set, is a fault schedule attached to the world before
	// the run (see internal/faults). The mapping reaction is minimal:
	// agents caught on a node killed by churn are respawned on a
	// uniformly random alive node with their knowledge intact — the map
	// is software state and survives the crash. Note that completion may
	// become unreachable while parts of the network stay dead; MaxSteps
	// still bounds the run.
	Faults *faults.Schedule
	// Tracer, if set, receives structured events (moves, meetings,
	// per-step knowledge). Events are emitted from sequential sections,
	// so traces are reproducible with Workers <= 1. A Tracer that also
	// implements trace.WorldSink (the binary LogWriter does) additionally
	// receives snapshot anchors every AnchorEvery steps and per-step world
	// deltas, making the log replayable offline.
	Tracer trace.Tracer
	// AnchorEvery is the snapshot-anchor cadence for WorldSink tracers
	// (<= 0 uses network.DefaultAnchorEvery). Ignored for plain tracers.
	AnchorEvery int
	// Metrics, if set, receives live instrumentation: per-step phase
	// timers, domain counters (moves, meetings by size, knowledge-record
	// merges, marks), and knowledge gauges. Instruments sit outside every
	// RNG consumption path, so attaching a registry cannot change seeded
	// results. nil disables with near-zero overhead.
	Metrics *metrics.Registry
}

func (sc Scenario) withDefaults() Scenario {
	if len(sc.Team) > 0 {
		sc.Agents = 0
		for _, t := range sc.Team {
			sc.Agents += t.Count
		}
	}
	if sc.Agents <= 0 {
		sc.Agents = 1
	}
	if sc.Kind == 0 {
		sc.Kind = core.PolicyConscientious
	}
	if sc.StigPerNode <= 0 {
		sc.StigPerNode = 3
	}
	if sc.MaxSteps <= 0 {
		sc.MaxSteps = 50000
	}
	return sc
}

// Result reports one mapping run.
type Result struct {
	// Finished reports whether every agent completed its map in budget.
	Finished bool
	// FinishStep is the completion step (valid when Finished).
	FinishStep int
	// Curve is the team-average knowledge fraction after each step.
	Curve []float64
	// MinCurve is the slowest agent's knowledge fraction after each step
	// (the curve whose arrival at 1.0 defines the finishing time).
	MinCurve []float64
	// Overhead aggregates all agents' cost counters.
	Overhead core.Overhead
	// Stranded counts agents respawned off dead nodes over the run (fault
	// injection only; zero otherwise).
	Stranded int
}

// runMetrics bundles the mapping harness's instrument handles. The zero
// value (no registry) makes every operation a no-op; enabled additionally
// gates the per-step O(agents) overhead-delta sweep.
type runMetrics struct {
	enabled bool

	runs      metrics.Counter
	completed metrics.Counter
	steps     metrics.Counter

	learn   metrics.Timer
	meet    metrics.Timer
	decide  metrics.Timer
	move    metrics.Timer
	measure metrics.Timer

	moves    metrics.Counter
	meetings metrics.Counter
	meetSize metrics.Histogram
	merges   metrics.Counter
	marks    metrics.Counter

	knowAvg     metrics.Gauge
	knowMin     metrics.Gauge
	finishSteps metrics.Histogram

	prevOverhead core.Overhead
}

func newRunMetrics(r *metrics.Registry) runMetrics {
	if r == nil {
		return runMetrics{}
	}
	// Finishing times span single-agent runs (thousands of steps) down to
	// large stigmergic teams (~100): bucket by powers of two.
	finishBounds := []float64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	return runMetrics{
		enabled:     true,
		runs:        r.Counter("mapping_runs_total"),
		completed:   r.Counter("mapping_runs_completed_total"),
		steps:       r.Counter("mapping_steps_total"),
		learn:       r.Timer("mapping_phase_learn_seconds"),
		meet:        r.Timer("mapping_phase_meet_seconds"),
		decide:      r.Timer("mapping_phase_decide_seconds"),
		move:        r.Timer("mapping_phase_move_seconds"),
		measure:     r.Timer("mapping_phase_measure_seconds"),
		moves:       r.Counter("mapping_moves_total"),
		meetings:    r.Counter("mapping_meetings_total"),
		meetSize:    r.Histogram("mapping_meeting_size", nil),
		merges:      r.Counter("mapping_topo_records_merged_total"),
		marks:       r.Counter("mapping_marks_total"),
		knowAvg:     r.Gauge("mapping_knowledge_avg"),
		knowMin:     r.Gauge("mapping_knowledge_min"),
		finishSteps: r.Histogram("mapping_finish_steps", finishBounds),
	}
}

// syncCounts publishes the per-step growth of the agents' overhead
// counters. Runs in a sequential section so it observes a settled step.
func (m *runMetrics) syncCounts(agents []*core.Agent) {
	if !m.enabled {
		return
	}
	var cur core.Overhead
	for _, a := range agents {
		cur.Add(a.Overhead)
	}
	m.moves.Add(uint64(cur.Moves - m.prevOverhead.Moves))
	m.merges.Add(uint64(cur.TopoRecordsReceived - m.prevOverhead.TopoRecordsReceived))
	m.marks.Add(uint64(cur.MarksLeft - m.prevOverhead.MarksLeft))
	m.prevOverhead = cur
}

// runState carries the per-run buffers a replication worker reuses from
// run to run: the decided-move slice and the meeting grouper. Pooling it
// keeps the zero-allocation property of a single run intact across a
// whole RunMany batch, sequential or parallel.
type runState struct {
	next    []NodeID
	grouper *core.Grouper
}

// statePool recycles runState across runs and executor workers.
var statePool = sync.Pool{New: func() any { return new(runState) }}

// reset sizes st for a run over n nodes with the given agent count.
func (st *runState) reset(n, agents int) {
	if cap(st.next) < agents {
		st.next = make([]NodeID, agents)
	}
	st.next = st.next[:agents]
	if st.grouper == nil {
		st.grouper = core.NewGrouper(n)
	} else {
		st.grouper.Reset(n)
	}
}

// Run executes one mapping run on w with random agent placement drawn from
// seed. Static worlds can be shared across sequential runs; dynamic worlds
// are stepped and should be freshly generated per run.
func Run(w *network.World, sc Scenario, seed uint64) (Result, error) {
	st := statePool.Get().(*runState)
	res, err := run(w, sc, seed, st)
	statePool.Put(st)
	return res, err
}

// run is Run on caller-provided scratch state.
func run(w *network.World, sc Scenario, seed uint64, st *runState) (Result, error) {
	sc = sc.withDefaults()
	if sc.ShardWorkers > 0 {
		w.SetShardWorkers(sc.ShardWorkers)
	}
	if sc.Faults != nil {
		w.SetFaults(sc.Faults)
	}
	root := rng.New(seed).Named("mapping")
	agents, err := placeAgents(w, sc, root)
	if err != nil {
		return Result{}, err
	}
	var board *stigmergy.Board
	if sc.Stigmergy {
		board = stigmergy.NewBoard(w.N(), sc.StigPerNode, sc.StigWindow)
	}
	engine := sim.NewEngine(sc.Workers)
	st.reset(w.N(), len(agents))
	next := st.next
	grouper := st.grouper
	res := Result{
		Curve:    make([]float64, 0, 1024),
		MinCurve: make([]float64, 0, 1024),
	}
	m := newRunMetrics(sc.Metrics)
	w.Instrument(sc.Metrics)
	m.runs.Inc()

	var faultRng *rng.Stream
	lastEpoch := 0
	if sc.Faults != nil {
		faultRng = root.Named("faults")
		lastEpoch = w.FaultEpoch()
	}
	// A WorldSink tracer additionally records the world's evolution —
	// snapshot anchors plus per-step deltas — so the run can be replayed
	// offline. The recorder only observes (no RNG, no world mutation), so
	// recording cannot perturb the seeded result.
	var rec *network.StepRecorder
	if sink, ok := sc.Tracer.(trace.WorldSink); ok {
		rec = network.NewStepRecorder(w, sink, sc.AnchorEvery)
	}

	steps, completed := sim.Run(sc.MaxSteps, func(step int) bool {
		m.steps.Inc()
		rec.BeforeStep(step)
		// Fault reaction: respawn agents stranded on nodes that died during
		// the previous world step. Sequential, so deterministic at any
		// worker setting.
		if sc.Faults != nil {
			if ep := w.FaultEpoch(); ep != lastEpoch {
				lastEpoch = ep
				res.Stranded += respawnStranded(w, agents, faultRng, sc.Tracer, step)
			}
		}
		// Phase 1: first-hand learning + visit recording (independent).
		sp := m.learn.Start()
		engine.ForEach(len(agents), func(i int) {
			a := agents[i]
			a.RecordHere(step)
			a.LearnNeighbors(w.Neighbors(a.At))
		})
		sp.Stop()
		// Phase 2: meetings (independent across co-located groups).
		sp = m.meet.Start()
		if sc.Cooperate && len(agents) > 1 {
			groups := grouper.Meetings(agents)
			if sc.Tracer != nil || m.enabled {
				for _, g := range groups {
					m.meetings.Inc()
					m.meetSize.Observe(float64(len(g)))
					if sc.Tracer != nil {
						sc.Tracer.Emit(trace.Event{
							Step: step, Kind: trace.KindMeet,
							Node: int32(g[0].At), Value: float64(len(g)),
						})
					}
				}
			}
			engine.ForEach(len(groups), func(g int) {
				core.ExchangeTopology(groups[g])
			})
		}
		sp.Stop()
		// Metrics + completion check. The slowest agent and the finish test
		// ride on the cached known-count (an O(1) popcount the topology
		// maintains) — same-denominator fractions order like their integer
		// numerators, so minKnown/n is bit-identical to min over Fraction().
		// The average keeps the original per-agent float summation order.
		sp = m.measure.Start()
		sum := 0.0
		minKnown := int(^uint(0) >> 1)
		for _, a := range agents {
			sum += a.Topo.Fraction()
			if k := a.Topo.KnownCount(); k < minKnown {
				minKnown = k
			}
		}
		total := agents[0].Topo.N()
		min := 1.0 // Fraction() of a 0-node world is defined as 1
		if total > 0 {
			min = float64(minKnown) / float64(total)
		}
		res.Curve = append(res.Curve, sum/float64(len(agents)))
		res.MinCurve = append(res.MinCurve, min)
		sp.Stop()
		m.knowAvg.Set(sum / float64(len(agents)))
		m.knowMin.Set(min)
		if sc.Tracer != nil {
			sc.Tracer.Emit(trace.Event{
				Step: step, Kind: trace.KindMeasure,
				Value: sum / float64(len(agents)), Extra: "avg-knowledge",
			})
			sc.Tracer.Emit(trace.Event{
				Step: step, Kind: trace.KindMeasure,
				Value: min, Extra: "min-knowledge",
			})
		}
		if minKnown >= total {
			m.syncCounts(agents)
			if sc.Tracer != nil {
				sc.Tracer.Emit(trace.Event{Step: step, Kind: trace.KindFinish})
			}
			return true
		}
		// Phase 3: decide + mark. Agents on distinct nodes are
		// independent (footprints are only read and written at the
		// agent's own node), so parallelise across node groups and keep
		// agent order within a group — bit-identical to sequential.
		sp = m.decide.Start()
		if sc.Stigmergy {
			groups := grouper.All(agents)
			engine.ForEach(len(groups), func(g int) {
				for _, a := range groups[g] {
					next[a.ID] = a.Decide(board, step, w.Neighbors(a.At))
				}
			})
		} else {
			engine.ForEach(len(agents), func(i int) {
				a := agents[i]
				next[a.ID] = a.Decide(nil, step, w.Neighbors(a.At))
			})
		}
		sp.Stop()
		// Phase 4: move, then the world itself evolves.
		sp = m.move.Start()
		for _, a := range agents {
			if sc.Tracer != nil && next[a.ID] != a.At {
				sc.Tracer.Emit(trace.Event{
					Step: step, Kind: trace.KindMove,
					Agent: int32(a.ID), Node: int32(a.At), To: int32(next[a.ID]),
				})
			}
			a.MoveTo(next[a.ID], w.IsGateway(next[a.ID]))
		}
		sp.Stop()
		m.syncCounts(agents)
		w.Step()
		rec.AfterWorldStep()
		return false
	})

	res.Finished = completed
	if completed {
		res.FinishStep = steps
		m.completed.Inc()
		m.finishSteps.Observe(float64(steps))
	} else {
		res.FinishStep = -1
	}
	for _, a := range agents {
		res.Overhead.Add(a.Overhead)
	}
	return res, nil
}

// placeAgents builds and randomly places the team.
func placeAgents(w *network.World, sc Scenario, root *rng.Stream) ([]*core.Agent, error) {
	place := root.Named("placement")
	kinds := make([]core.PolicyKind, 0, sc.Agents)
	if len(sc.Team) > 0 {
		for _, t := range sc.Team {
			for i := 0; i < t.Count; i++ {
				kinds = append(kinds, t.Kind)
			}
		}
	} else {
		for i := 0; i < sc.Agents; i++ {
			kinds = append(kinds, sc.Kind)
		}
	}
	agents := make([]*core.Agent, len(kinds))
	for i, kind := range kinds {
		a, err := core.New(core.Config{
			ID:            i,
			Start:         NodeID(place.Intn(w.N())),
			Kind:          kind,
			NetworkSize:   w.N(),
			Stigmergy:     sc.Stigmergy,
			ShareTopology: sc.Cooperate,
			VisitCapacity: sc.VisitCapacity,
			Epsilon:       sc.Epsilon,
			Stream:        root.Named("agent").Child(uint64(i)),
		})
		if err != nil {
			return nil, fmt.Errorf("mapping: %w", err)
		}
		agents[i] = a
	}
	return agents, nil
}

// Aggregate summarises a batch of runs of one parameter setting.
type Aggregate struct {
	// Runs is the number of runs attempted, Completed how many finished.
	Runs, Completed int
	// FinishTimes holds the finishing step of each completed run.
	FinishTimes []int
	// Finish summarises FinishTimes.
	Finish stats.Summary
	// AvgCurve is the pointwise mean of the per-run team-average curves.
	AvgCurve []float64
	// AvgMinCurve is the pointwise mean of the per-run slowest-agent
	// curves.
	AvgMinCurve []float64
	// Overhead sums all runs' agent overhead.
	Overhead core.Overhead
	// Stranded sums all runs' stranded-agent respawns (fault injection).
	Stranded int
}

// RunMany executes runs independent runs, drawing run i's placement from
// the i-th seed of a SplitMix64 stream rooted at baseSeed
// (rng.DeriveSeed). worldFor supplies the world for each run: return the
// same static world every time (sequential only), or generate a fresh one
// for dynamic mapping.
//
// With Scenario.RunWorkers > 1 the runs execute on a bounded worker pool
// (see internal/parallel). Each run draws its seed from its index alone
// and writes into its own result slot, and the reduction below walks the
// slots in run order, so the aggregate is bit-identical to the sequential
// path at any worker count. Parallel replication requires worldFor to
// return a fresh world per run — even static worlds carry mutable state
// (step counter, metrics hook) — and RunMany fails loudly when it sees
// the same *World twice. A Tracer forces sequential execution: the sink
// is shared across runs and must see them in order.
func RunMany(worldFor func(run int) (*network.World, error), sc Scenario, runs int, baseSeed uint64) (Aggregate, error) {
	if runs <= 0 {
		return Aggregate{}, fmt.Errorf("mapping: runs must be positive")
	}
	workers := sc.RunWorkers
	if sc.Tracer != nil {
		workers = 1
	}
	pool := parallel.NewPool(workers)
	results := make([]Result, runs)
	var guard worldGuard
	err := pool.Run(runs, func(r int) error {
		w, err := worldFor(r)
		if err != nil {
			return err
		}
		if pool.Parallel() {
			if err := guard.claim(w, r); err != nil {
				return err
			}
		}
		res, err := Run(w, sc, rng.DeriveSeed(baseSeed, uint64(r)))
		if err != nil {
			return err
		}
		results[r] = res
		return nil
	})
	if err != nil {
		return Aggregate{}, err
	}
	agg := Aggregate{Runs: runs}
	curves := make([][]float64, 0, runs)
	minCurves := make([][]float64, 0, runs)
	for r := 0; r < runs; r++ {
		res := results[r]
		if res.Finished {
			agg.Completed++
			agg.FinishTimes = append(agg.FinishTimes, res.FinishStep)
		}
		curves = append(curves, res.Curve)
		minCurves = append(minCurves, res.MinCurve)
		agg.Overhead.Add(res.Overhead)
		agg.Stranded += res.Stranded
	}
	agg.Finish = stats.Summarize(stats.Ints(agg.FinishTimes))
	agg.AvgCurve = stats.AverageSeries(curves)
	agg.AvgMinCurve = stats.AverageSeries(minCurves)
	return agg, nil
}

// RunManyCached is RunMany over a record-once, replay-many world source.
// The first run to need a world records a Trajectory from one freshly
// built live world — sync.Once inside the source, so exactly one
// recording happens at any RunWorkers — and every run (including the
// first) replays it through World.StepFromTrajectory. Replay is
// bit-identical to live stepping, so the aggregate matches
// RunMany(fresh-world-per-run, ...) exactly; it just skips the mobility
// RNG, disc scans, and grid maintenance on every run after the recording.
// Each run gets its own replay cursor over the shared immutable
// trajectory, so the source is safe for parallel replication. With a
// single run there is nothing to amortize and recording would double the
// world work, so it falls back to plain RunMany.
func RunManyCached(build func() (*network.World, error), sc Scenario, runs int, baseSeed uint64) (Aggregate, error) {
	if runs <= 1 {
		return RunMany(func(int) (*network.World, error) { return build() }, sc, runs, baseSeed)
	}
	d := sc.withDefaults()
	src := network.NewTrajectorySource(d.MaxSteps, d.AnchorEvery, d.Faults, build)
	return RunMany(src.WorldFor, sc, runs, baseSeed)
}

// worldGuard detects worldFor implementations that hand the same *World
// to two concurrent runs.
type worldGuard struct {
	mu   sync.Mutex
	seen map[*network.World]int
}

func (g *worldGuard) claim(w *network.World, run int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seen == nil {
		g.seen = make(map[*network.World]int)
	}
	if prev, dup := g.seen[w]; dup {
		return fmt.Errorf("parallel replication needs a fresh world per run: worldFor returned the same *World for runs %d and %d", prev, run)
	}
	g.seen[w] = run
	return nil
}

// Accuracy compares an agent's reconstructed map against the world's
// current topology and returns the fraction of nodes whose known
// out-neighbour list exactly matches reality. Used by the degraded-network
// extension, where "perfect knowledge" is a moving target.
func Accuracy(a *core.Agent, w *network.World) float64 {
	n := w.N()
	if n == 0 {
		return 1
	}
	match := 0
	// Walk only the known set, straight off the knowledge bitmask: 64
	// nodes per word instead of a per-node Knows probe.
	for wi, mw := range a.Topo.KnownMask() {
		for mw != 0 {
			u := NodeID(wi<<6 + bits.TrailingZeros64(mw))
			mw &= mw - 1
			if equalIDs(a.Topo.Neighbors(u), w.Neighbors(u)) {
				match++
			}
		}
	}
	return float64(match) / float64(n)
}

func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MovesPerNode returns the team's exploration redundancy: agent
// migrations per network node. A perfect division of labour with perfect
// coordination would approach 1; Minar et al. frame this as the "work"
// the system spends for its map.
func (r Result) MovesPerNode(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(r.Overhead.Moves) / float64(n)
}

// MeetingRate returns meetings per agent migration — how social the run
// was. Cooperation effects (good and pathological) scale with it.
func (r Result) MeetingRate() float64 {
	if r.Overhead.Moves == 0 {
		return 0
	}
	return float64(r.Overhead.Meetings) / float64(r.Overhead.Moves)
}

// respawnStranded teleports every agent standing on a dead node to a
// uniformly random alive node, drawn from the run's dedicated fault
// stream over the ascending alive-node list, and returns how many agents
// it moved. Knowledge is kept — the map is software state. With nothing
// alive to land on, agents stay put (a dead node has no out-edges, so
// they idle until the world recovers).
func respawnStranded(w *network.World, agents []*core.Agent, frng *rng.Stream, tr trace.Tracer, step int) int {
	var aliveNodes []NodeID
	moved := 0
	for _, a := range agents {
		if w.Alive(a.At) {
			continue
		}
		if aliveNodes == nil {
			for u := 0; u < w.N(); u++ {
				if w.Alive(NodeID(u)) {
					aliveNodes = append(aliveNodes, NodeID(u))
				}
			}
		}
		if len(aliveNodes) == 0 {
			return moved
		}
		a.At = aliveNodes[frng.Intn(len(aliveNodes))]
		moved++
	}
	if moved > 0 && tr != nil {
		tr.Emit(trace.Event{
			Step: step, Kind: trace.KindFault,
			Value: float64(moved), Extra: "stranded-respawn",
		})
	}
	return moved
}
