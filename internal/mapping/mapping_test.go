package mapping

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/trace"
)

var (
	worldOnce sync.Once
	testWorld *network.World
)

// smallWorld returns a shared 60-node strongly connected static network.
func smallWorld(t *testing.T) *network.World {
	t.Helper()
	worldOnce.Do(func() {
		w, err := netgen.Generate(netgen.Spec{
			N: 60, TargetEdges: 400, ArenaSide: 50, RangeSpread: 0.25,
			RequireStrong: true,
		}, 1234)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		testWorld = w
	})
	return testWorld
}

func staticFactory(w *network.World) func(int) (*network.World, error) {
	return func(int) (*network.World, error) { return w, nil }
}

func TestRunSingleAgentFinishes(t *testing.T) {
	w := smallWorld(t)
	res, err := Run(w, Scenario{Agents: 1, Kind: core.PolicyConscientious}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("single conscientious agent never finished")
	}
	if res.FinishStep <= 0 {
		t.Fatalf("FinishStep = %d", res.FinishStep)
	}
	if got := res.MinCurve[len(res.MinCurve)-1]; got != 1 {
		t.Fatalf("final MinCurve = %v", got)
	}
}

func TestCurvesMonotoneAndOrdered(t *testing.T) {
	w := smallWorld(t)
	res, err := Run(w, Scenario{Agents: 5, Kind: core.PolicyConscientious, Cooperate: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Curve {
		if i > 0 && res.Curve[i] < res.Curve[i-1]-1e-12 {
			t.Fatalf("avg curve decreased at %d", i)
		}
		if res.MinCurve[i] > res.Curve[i]+1e-12 {
			t.Fatalf("min curve above avg at %d", i)
		}
	}
}

func TestConscientiousBeatsRandom(t *testing.T) {
	w := smallWorld(t)
	con, err := RunMany(staticFactory(w), Scenario{Agents: 1, Kind: core.PolicyConscientious}, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RunMany(staticFactory(w), Scenario{Agents: 1, Kind: core.PolicyRandom}, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if con.Completed != 8 || rnd.Completed != 8 {
		t.Fatalf("completions: %d/%d", con.Completed, rnd.Completed)
	}
	if con.Finish.Mean >= rnd.Finish.Mean {
		t.Fatalf("conscientious (%.1f) should beat random (%.1f)", con.Finish.Mean, rnd.Finish.Mean)
	}
}

func TestStigmergySpeedsUpSingleAgent(t *testing.T) {
	w := smallWorld(t)
	runs := 10
	plain, err := RunMany(staticFactory(w), Scenario{Agents: 1, Kind: core.PolicyRandom}, runs, 55)
	if err != nil {
		t.Fatal(err)
	}
	stig, err := RunMany(staticFactory(w), Scenario{Agents: 1, Kind: core.PolicyRandom, Stigmergy: true}, runs, 55)
	if err != nil {
		t.Fatal(err)
	}
	if stig.Finish.Mean >= plain.Finish.Mean {
		t.Fatalf("stigmergic random (%.1f) should beat plain random (%.1f)",
			stig.Finish.Mean, plain.Finish.Mean)
	}
}

func TestCooperationSpeedsUpTeam(t *testing.T) {
	w := smallWorld(t)
	solo, err := RunMany(staticFactory(w), Scenario{Agents: 8, Kind: core.PolicyConscientious}, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	coop, err := RunMany(staticFactory(w), Scenario{Agents: 8, Kind: core.PolicyConscientious, Cooperate: true}, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if coop.Finish.Mean >= solo.Finish.Mean {
		t.Fatalf("cooperation (%.1f) should beat isolation (%.1f)", coop.Finish.Mean, solo.Finish.Mean)
	}
}

func TestMorePopulationFinishesFaster(t *testing.T) {
	w := smallWorld(t)
	small, err := RunMany(staticFactory(w), Scenario{Agents: 2, Kind: core.PolicyConscientious, Cooperate: true}, 6, 21)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunMany(staticFactory(w), Scenario{Agents: 12, Kind: core.PolicyConscientious, Cooperate: true}, 6, 21)
	if err != nil {
		t.Fatal(err)
	}
	if big.Finish.Mean >= small.Finish.Mean {
		t.Fatalf("12 agents (%.1f) should beat 2 agents (%.1f)", big.Finish.Mean, small.Finish.Mean)
	}
}

func TestRunDeterministic(t *testing.T) {
	w := smallWorld(t)
	sc := Scenario{Agents: 6, Kind: core.PolicySuperConscientious, Cooperate: true, Stigmergy: true}
	a, err := Run(w, sc, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, sc, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinishStep != b.FinishStep || len(a.Curve) != len(b.Curve) {
		t.Fatalf("same seed diverged: %d vs %d", a.FinishStep, b.FinishStep)
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("curves diverged at %d", i)
		}
	}
	c, err := Run(w, sc, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.FinishStep == a.FinishStep && len(c.Curve) == len(a.Curve) {
		same := true
		for i := range a.Curve {
			if a.Curve[i] != c.Curve[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestEngineEquivalence(t *testing.T) {
	// The concurrent engine must be bit-identical to the sequential one.
	w := smallWorld(t)
	for _, sc := range []Scenario{
		{Agents: 8, Kind: core.PolicyConscientious, Cooperate: true},
		{Agents: 8, Kind: core.PolicySuperConscientious, Cooperate: true, Stigmergy: true},
		{Agents: 8, Kind: core.PolicyRandom, Stigmergy: true},
	} {
		seq := sc
		seq.Workers = 1
		par := sc
		par.Workers = 8
		a, err := Run(w, seq, 77)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(w, par, 77)
		if err != nil {
			t.Fatal(err)
		}
		if a.FinishStep != b.FinishStep {
			t.Fatalf("%v: engines diverged: %d vs %d", sc.Kind, a.FinishStep, b.FinishStep)
		}
		for i := range a.Curve {
			if a.Curve[i] != b.Curve[i] {
				t.Fatalf("%v: curves diverged at step %d", sc.Kind, i)
			}
		}
		if a.Overhead != b.Overhead {
			t.Fatalf("%v: overhead diverged: %+v vs %+v", sc.Kind, a.Overhead, b.Overhead)
		}
	}
}

func TestMaxStepsBudget(t *testing.T) {
	w := smallWorld(t)
	res, err := Run(w, Scenario{Agents: 1, Kind: core.PolicyRandom, MaxSteps: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished || res.FinishStep != -1 {
		t.Fatal("tiny budget should not finish")
	}
	if len(res.Curve) != 3 {
		t.Fatalf("curve length = %d", len(res.Curve))
	}
}

func TestRunManyAggregates(t *testing.T) {
	w := smallWorld(t)
	agg, err := RunMany(staticFactory(w), Scenario{Agents: 4, Kind: core.PolicyConscientious, Cooperate: true}, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 5 || agg.Completed != 5 {
		t.Fatalf("runs=%d completed=%d", agg.Runs, agg.Completed)
	}
	if len(agg.FinishTimes) != 5 || agg.Finish.N != 5 {
		t.Fatal("finish times missing")
	}
	if len(agg.AvgCurve) == 0 || agg.AvgCurve[len(agg.AvgCurve)-1] < 0.99 {
		t.Fatalf("avg curve should approach 1: %v", agg.AvgCurve[len(agg.AvgCurve)-1])
	}
	if agg.Overhead.Moves == 0 {
		t.Fatal("no overhead recorded")
	}
	if _, err := RunMany(staticFactory(w), Scenario{}, 0, 1); err == nil {
		t.Fatal("zero runs accepted")
	}
}

func TestOverheadStigmergyMarks(t *testing.T) {
	w := smallWorld(t)
	res, err := Run(w, Scenario{Agents: 2, Kind: core.PolicyConscientious, Stigmergy: true, Cooperate: true}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead.MarksLeft == 0 {
		t.Fatal("stigmergic run left no marks")
	}
	plain, err := Run(w, Scenario{Agents: 2, Kind: core.PolicyConscientious, Cooperate: true}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Overhead.MarksLeft != 0 {
		t.Fatal("non-stigmergic run left marks")
	}
}

func TestAccuracyOnStaticWorld(t *testing.T) {
	w := smallWorld(t)
	a, err := core.New(core.Config{
		ID: 0, Kind: core.PolicyConscientious, NetworkSize: w.N(),
		Stream: rng.New(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := Accuracy(a, w); got != 0 {
		t.Fatalf("fresh agent accuracy = %v", got)
	}
	for u := 0; u < w.N(); u++ {
		a.Topo.LearnFirstHand(NodeID(u), w.Neighbors(NodeID(u)))
	}
	if got := Accuracy(a, w); got != 1 {
		t.Fatalf("full map accuracy = %v", got)
	}
}

func TestDegradedWorldAccuracyDrops(t *testing.T) {
	// On a decaying network, a snapshot taken at step 0 loses accuracy.
	w, err := netgen.Generate(netgen.Spec{
		N: 60, TargetEdges: 400, ArenaSide: 50, RangeSpread: 0.25,
		BatteryFraction: 0.5, DecayPerStep: 0.01, FloorFraction: 0.2,
	}, 777)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(core.Config{
		ID: 0, Kind: core.PolicyConscientious, NetworkSize: w.N(),
		Stream: rng.New(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < w.N(); u++ {
		a.Topo.LearnFirstHand(NodeID(u), w.Neighbors(NodeID(u)))
	}
	for i := 0; i < 50; i++ {
		w.Step()
	}
	if got := Accuracy(a, w); got >= 1 {
		t.Fatalf("accuracy should drop on decayed network, got %v", got)
	}
}

func TestSingleAgentSuperEqualsConscientious(t *testing.T) {
	// With one agent there is nobody to learn from: the paper notes the
	// super-conscientious agent must behave exactly like a conscientious
	// one. Same seed ⇒ identical runs.
	w := smallWorld(t)
	con, err := Run(w, Scenario{Agents: 1, Kind: core.PolicyConscientious}, 13)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Run(w, Scenario{Agents: 1, Kind: core.PolicySuperConscientious}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if con.FinishStep != sup.FinishStep {
		t.Fatalf("single-agent runs differ: %d vs %d", con.FinishStep, sup.FinishStep)
	}
}

func TestSuperLosesAtLargePopulation(t *testing.T) {
	// The paper's "surprising result" (Fig 5): at large populations
	// super-conscientious agents meet often, become identical, and start
	// choosing identical targets — conscientious agents win clearly.
	runs := 8
	con, err := RunMany(staticFactory(smallWorld(t)),
		Scenario{Agents: 16, Kind: core.PolicyConscientious, Cooperate: true}, runs, 200)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := RunMany(staticFactory(smallWorld(t)),
		Scenario{Agents: 16, Kind: core.PolicySuperConscientious, Cooperate: true}, runs, 200)
	if err != nil {
		t.Fatal(err)
	}
	if sup.Finish.Mean <= con.Finish.Mean {
		t.Fatalf("Fig 5 shape missing: super (%.1f) should lose to conscientious (%.1f) at pop 16",
			sup.Finish.Mean, con.Finish.Mean)
	}
}

func TestStigmergyRepairsSuperAtLargePopulation(t *testing.T) {
	// Fig 6: with footprints, meeting-merged super-conscientious agents
	// are pushed apart again and beat conscientious agents at every
	// population size, including large ones.
	runs := 8
	con, err := RunMany(staticFactory(smallWorld(t)),
		Scenario{Agents: 16, Kind: core.PolicyConscientious, Cooperate: true, Stigmergy: true}, runs, 300)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := RunMany(staticFactory(smallWorld(t)),
		Scenario{Agents: 16, Kind: core.PolicySuperConscientious, Cooperate: true, Stigmergy: true}, runs, 300)
	if err != nil {
		t.Fatal(err)
	}
	if sup.Finish.Mean >= con.Finish.Mean {
		t.Fatalf("Fig 6 shape missing: stigmergic super (%.1f) should beat stigmergic conscientious (%.1f)",
			sup.Finish.Mean, con.Finish.Mean)
	}
}

func TestEpsilonDispersesSuper(t *testing.T) {
	// Minar's own fix: adding randomness to super-conscientious decisions
	// breaks the identical-choice lockstep at large populations.
	runs := 8
	plain, err := RunMany(staticFactory(smallWorld(t)),
		Scenario{Agents: 16, Kind: core.PolicySuperConscientious, Cooperate: true}, runs, 400)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := RunMany(staticFactory(smallWorld(t)),
		Scenario{Agents: 16, Kind: core.PolicySuperConscientious, Cooperate: true, Epsilon: 0.2}, runs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if eps.Finish.Mean >= plain.Finish.Mean {
		t.Fatalf("epsilon fix (%.1f) should beat plain super (%.1f) at pop 16",
			eps.Finish.Mean, plain.Finish.Mean)
	}
}

func TestMixedTeam(t *testing.T) {
	w := smallWorld(t)
	res, err := Run(w, Scenario{
		Team: []TeamSpec{
			{Kind: core.PolicyConscientious, Count: 4},
			{Kind: core.PolicyRandom, Count: 2},
		},
		Cooperate: true,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("mixed team did not finish")
	}
	// Team overrides Agents/Kind.
	res2, err := Run(w, Scenario{
		Agents: 99, Kind: core.PolicyRandom,
		Team:      []TeamSpec{{Kind: core.PolicyConscientious, Count: 2}},
		Cooperate: true,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Finished {
		t.Fatal("team-override run did not finish")
	}
	// 2 conscientious agents move far less than 99 random ones would.
	if res2.Overhead.Moves > res2.FinishStep*2 {
		t.Fatalf("Team did not override Agents: %d moves in %d steps",
			res2.Overhead.Moves, res2.FinishStep)
	}
}

func TestMixedTeamDeterministic(t *testing.T) {
	w := smallWorld(t)
	sc := Scenario{
		Team: []TeamSpec{
			{Kind: core.PolicyConscientious, Count: 3},
			{Kind: core.PolicySuperConscientious, Count: 3},
		},
		Cooperate: true, Stigmergy: true,
	}
	a, err := Run(w, sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinishStep != b.FinishStep || a.Overhead != b.Overhead {
		t.Fatal("mixed-team runs not reproducible")
	}
}

func TestTracedRun(t *testing.T) {
	w := smallWorld(t)
	var buf trace.Buffer
	sc := Scenario{Agents: 4, Kind: core.PolicyConscientious, Cooperate: true, Tracer: &buf}
	res, err := Run(w, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.Kind]int{}
	for _, e := range buf.Events() {
		counts[e.Kind]++
	}
	if counts[trace.KindMove] != res.Overhead.Moves {
		t.Fatalf("traced moves %d != overhead moves %d", counts[trace.KindMove], res.Overhead.Moves)
	}
	// Two measures per step: avg-knowledge and min-knowledge.
	if counts[trace.KindMeasure] != 2*len(res.Curve) {
		t.Fatalf("traced measures %d != 2x curve points %d", counts[trace.KindMeasure], len(res.Curve))
	}
	if counts[trace.KindFinish] != 1 {
		t.Fatalf("finish events = %d", counts[trace.KindFinish])
	}
	if counts[trace.KindMeet] == 0 {
		t.Fatal("no meetings traced for a cooperating team")
	}
	// Traces are reproducible with the sequential engine.
	var buf2 trace.Buffer
	sc.Tracer = &buf2
	if _, err := Run(w, sc, 5); err != nil {
		t.Fatal(err)
	}
	a, b := buf.Events(), buf2.Events()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestResultEfficiencyMetrics(t *testing.T) {
	w := smallWorld(t)
	res, err := Run(w, Scenario{Agents: 6, Kind: core.PolicyConscientious, Cooperate: true}, 9)
	if err != nil {
		t.Fatal(err)
	}
	mpn := res.MovesPerNode(w.N())
	if mpn <= 0 {
		t.Fatalf("MovesPerNode = %v", mpn)
	}
	// A cooperating conscientious team should need only a few visits per
	// node on this small world.
	if mpn > 50 {
		t.Fatalf("implausible redundancy %v", mpn)
	}
	if res.MeetingRate() <= 0 {
		t.Fatalf("MeetingRate = %v", res.MeetingRate())
	}
	if (Result{}).MovesPerNode(0) != 0 || (Result{}).MeetingRate() != 0 {
		t.Fatal("degenerate metrics should be 0")
	}
}

// TestFig5ShapeRobustAcrossWorlds guards the Fig 5 surprise against
// seed-overfitting: super-conscientious must lose at a large population
// on freshly drawn networks too.
func TestFig5ShapeRobustAcrossWorlds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world robustness sweep is not short")
	}
	for _, worldSeed := range []uint64{1234, 77, 9001} {
		w, err := netgen.Generate(netgen.Spec{
			N: 80, TargetEdges: 560, ArenaSide: 60, RangeSpread: 0.25,
			RequireStrong: true,
		}, worldSeed)
		if err != nil {
			t.Fatal(err)
		}
		static := func(int) (*network.World, error) { return w, nil }
		con, err := RunMany(static, Scenario{Agents: 20, Kind: core.PolicyConscientious, Cooperate: true}, 4, worldSeed)
		if err != nil {
			t.Fatal(err)
		}
		sup, err := RunMany(static, Scenario{Agents: 20, Kind: core.PolicySuperConscientious, Cooperate: true}, 4, worldSeed)
		if err != nil {
			t.Fatal(err)
		}
		if sup.Finish.Mean <= con.Finish.Mean {
			t.Errorf("world %d: super (%.0f) did not lose to conscientious (%.0f) at pop 20",
				worldSeed, sup.Finish.Mean, con.Finish.Mean)
		}
	}
}
