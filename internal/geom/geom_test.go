package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Dist = %v, want %v", got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); math.Abs(got-tt.want*tt.want) > 1e-9 {
				t.Fatalf("Dist2 = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Len(); got != 5 {
		t.Fatalf("Len = %v", got)
	}
	u := v.Unit()
	if math.Abs(u.Len()-1) > 1e-12 {
		t.Fatalf("Unit length = %v", u.Len())
	}
	if (Vec{}).Unit() != (Vec{}) {
		t.Fatal("Unit of zero vector should be zero")
	}
	if got := v.Scale(2); got != (Vec{6, 8}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := (Point{1, 1}).Add(Vec{2, 3}); got != (Point{3, 4}) {
		t.Fatalf("Add = %v", got)
	}
	if got := (Point{3, 4}).Sub(Point{1, 1}); got != (Vec{2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
}

func TestFromAngle(t *testing.T) {
	for _, theta := range []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2} {
		v := FromAngle(theta)
		if math.Abs(v.Len()-1) > 1e-12 {
			t.Fatalf("FromAngle(%v) not unit: %v", theta, v)
		}
	}
	v := FromAngle(0)
	if math.Abs(v.X-1) > 1e-12 || math.Abs(v.Y) > 1e-12 {
		t.Fatalf("FromAngle(0) = %v", v)
	}
}

func TestRect(t *testing.T) {
	r := Square(10)
	if r.Width() != 10 || r.Height() != 10 {
		t.Fatalf("Square dims: %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{5, 5}) || r.Contains(Point{11, 5}) || r.Contains(Point{5, -0.1}) {
		t.Fatal("Contains wrong")
	}
	if got := r.Clamp(Point{-3, 12}); got != (Point{0, 10}) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestBounceStaysInArena(t *testing.T) {
	r := Square(100)
	f := func(px, py, vx, vy float64) bool {
		p := r.Clamp(Point{math.Abs(math.Mod(px, 100)), math.Abs(math.Mod(py, 100))})
		v := Vec{math.Mod(vx, 500), math.Mod(vy, 500)}
		if math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsNaN(p.X) || math.IsNaN(p.Y) {
			return true
		}
		np, nv := r.Bounce(p, v)
		return r.Contains(np) && math.Abs(nv.X) == math.Abs(v.X) && math.Abs(nv.Y) == math.Abs(v.Y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBounceReflects(t *testing.T) {
	r := Square(10)
	p, v := r.Bounce(Point{9, 5}, Vec{3, 0})
	if p != (Point{8, 5}) {
		t.Fatalf("position after bounce = %v, want (8,5)", p)
	}
	if v != (Vec{-3, 0}) {
		t.Fatalf("velocity after bounce = %v, want (-3,0)", v)
	}
	// No wall crossing: velocity unchanged.
	p, v = r.Bounce(Point{5, 5}, Vec{1, 1})
	if p != (Point{6, 6}) || v != (Vec{1, 1}) {
		t.Fatalf("straight move changed: %v %v", p, v)
	}
}

func TestBounceDegenerateRect(t *testing.T) {
	r := Rect{5, 5, 5, 5}
	p, v := r.Bounce(Point{5, 5}, Vec{10, -10})
	if p != (Point{5, 5}) || v != (Vec{}) {
		t.Fatalf("degenerate bounce = %v %v", p, v)
	}
}

// bruteWithin is the O(n) reference implementation for Grid.Within.
func bruteWithin(pos []Point, p Point, r float64, exclude int) map[int32]bool {
	out := map[int32]bool{}
	for id, q := range pos {
		if id == exclude {
			continue
		}
		if q.Dist2(p) <= r*r {
			out[int32(id)] = true
		}
	}
	return out
}

func TestGridMatchesBruteForce(t *testing.T) {
	s := rng.New(2024)
	arena := Square(100)
	for trial := 0; trial < 50; trial++ {
		n := 1 + s.Intn(200)
		pos := make([]Point, n)
		for i := range pos {
			pos[i] = Point{s.Range(0, 100), s.Range(0, 100)}
		}
		cell := s.Range(1, 30)
		g := NewGrid(arena, n, cell)
		g.Rebuild(pos)
		for q := 0; q < 20; q++ {
			p := Point{s.Range(0, 100), s.Range(0, 100)}
			r := s.Range(0, 40)
			exclude := s.Intn(n)
			got := g.Within(p, r, exclude, nil)
			want := bruteWithin(pos, p, r, exclude)
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d ids, want %d (r=%v cell=%v)", trial, len(got), len(want), r, cell)
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("trial %d: unexpected id %d", trial, id)
				}
			}
		}
	}
}

func TestGridRebuildReuse(t *testing.T) {
	arena := Square(10)
	g := NewGrid(arena, 3, 2)
	g.Rebuild([]Point{{1, 1}, {2, 2}, {9, 9}})
	first := g.Within(Point{1, 1}, 2, -1, nil)
	if len(first) != 2 {
		t.Fatalf("first query found %d, want 2", len(first))
	}
	// Rebuild with items moved away; stale entries must be gone.
	g.Rebuild([]Point{{9, 9}, {8, 8}, {7, 7}})
	second := g.Within(Point{1, 1}, 2, -1, nil)
	if len(second) != 0 {
		t.Fatalf("stale entries after rebuild: %v", second)
	}
}

func TestGridGrowsWithMoreItems(t *testing.T) {
	g := NewGrid(Square(10), 2, 2)
	pos := []Point{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	g.Rebuild(pos) // more items than initial n
	got := g.Within(Point{0, 0}, 100, -1, nil)
	if len(got) != 4 {
		t.Fatalf("grid lost items on growth: %d", len(got))
	}
}

func TestGridNegativeRadius(t *testing.T) {
	g := NewGrid(Square(10), 1, 2)
	g.Rebuild([]Point{{5, 5}})
	if got := g.Within(Point{5, 5}, -1, -1, nil); len(got) != 0 {
		t.Fatalf("negative radius returned %v", got)
	}
}

func TestGridZeroCellDoesNotPanic(t *testing.T) {
	g := NewGrid(Square(10), 1, 0)
	g.Rebuild([]Point{{5, 5}})
	if got := g.Within(Point{5, 5}, 1, -1, nil); len(got) != 1 {
		t.Fatalf("zero cell side broke queries: %v", got)
	}
}

func BenchmarkGridRebuild300(b *testing.B) {
	s := rng.New(1)
	pos := make([]Point, 300)
	for i := range pos {
		pos[i] = Point{s.Range(0, 100), s.Range(0, 100)}
	}
	g := NewGrid(Square(100), 300, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Rebuild(pos)
	}
}

func BenchmarkGridWithin(b *testing.B) {
	s := rng.New(1)
	pos := make([]Point, 300)
	for i := range pos {
		pos[i] = Point{s.Range(0, 100), s.Range(0, 100)}
	}
	g := NewGrid(Square(100), 300, 12)
	g.Rebuild(pos)
	buf := make([]int32, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(pos[i%300], 12, i%300, buf[:0])
	}
}

// TestGridColOf pins the column mapping the spatial shard layout is built
// on: positions map to their containing grid column, and out-of-arena
// positions clamp to the edge columns instead of escaping the band table.
func TestGridColOf(t *testing.T) {
	g := NewGrid(Square(100), 100, 10)
	cols := g.Cols()
	if cols < 2 {
		t.Fatalf("Cols = %d, want at least 2", cols)
	}
	cases := []struct {
		p    Point
		want int
	}{
		{Point{0, 50}, 0},
		{Point{5, 0}, 0},
		{Point{95, 100}, int(95 / g.CellSize())},
		{Point{-3, 50}, 0},         // clamped left
		{Point{107, 50}, cols - 1}, // clamped right
	}
	for _, c := range cases {
		if got := g.ColOf(c.p); got != c.want {
			t.Errorf("ColOf(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	// ColOf must agree with the cell the point actually buckets into:
	// same column as a Within query centred there would scan.
	s := rng.New(4)
	for i := 0; i < 200; i++ {
		p := Point{s.Range(0, 100), s.Range(0, 100)}
		c := g.ColOf(p)
		if c < 0 || c >= cols {
			t.Fatalf("ColOf(%v) = %d out of [0,%d)", p, c, cols)
		}
		if want := int(p.X / g.CellSize()); want < cols && c != want {
			t.Fatalf("ColOf(%v) = %d, want %d", p, c, want)
		}
	}
}

// TestGridReserveBucketsNoSteadyStateGrowth pins ReserveBuckets' purpose:
// after reserving for the item count, single-node Update churn must not
// grow any cell bucket, so incremental stepping stays allocation-free.
func TestGridReserveBucketsNoSteadyStateGrowth(t *testing.T) {
	const n = 200
	s := rng.New(9)
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{s.Range(0, 100), s.Range(0, 100)}
	}
	g := NewGrid(Square(100), n, 10)
	g.ReserveBuckets(n)
	g.Rebuild(pos)
	avg := testing.AllocsPerRun(100, func() {
		for id := int32(0); id < n; id++ {
			p := Point{s.Range(0, 100), s.Range(0, 100)}
			g.Update(id, p)
		}
	})
	if avg > 0.1 {
		t.Fatalf("Update churn allocates %v per sweep after ReserveBuckets, want ~0", avg)
	}
}
