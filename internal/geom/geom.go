// Package geom provides the 2-D geometry primitives used by the wireless
// simulator: points, vectors, the rectangular arena nodes live in, and a
// uniform spatial hash grid for fast radio-neighbourhood queries.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the 2-D arena.
type Point struct {
	X, Y float64
}

// Vec is a displacement or velocity in the plane.
type Vec struct {
	X, Y float64
}

// Add returns p translated by v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. Prefer it
// over Dist for comparisons: it avoids the square root.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{v.X * k, v.Y * k} }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y) }

// Unit returns the unit vector in the direction of v, or the zero vector if
// v has zero length.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return Vec{v.X / l, v.Y / l}
}

// FromAngle returns the unit vector at the given angle (radians).
func FromAngle(theta float64) Vec {
	return Vec{math.Cos(theta), math.Sin(theta)}
}

// Rect is the axis-aligned arena [MinX, MaxX] × [MinY, MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns the arena [0, side] × [0, side].
func Square(side float64) Rect { return Rect{0, 0, side, side} }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// Bounce advances p by v and reflects the motion off the walls of r,
// returning the new position and the (possibly flipped) velocity. It
// handles displacements larger than the arena by iterating reflections.
func (r Rect) Bounce(p Point, v Vec) (Point, Vec) {
	x, vx := bounce1(p.X+v.X, r.MinX, r.MaxX, v.X)
	y, vy := bounce1(p.Y+v.Y, r.MinY, r.MaxY, v.Y)
	return Point{x, y}, Vec{vx, vy}
}

// bounce1 reflects coordinate c into [lo, hi], flipping the velocity
// component each time it crosses a wall.
func bounce1(c, lo, hi, v float64) (float64, float64) {
	if hi <= lo {
		return lo, 0
	}
	for c < lo || c > hi {
		if c < lo {
			c = 2*lo - c
			v = -v
		}
		if c > hi {
			c = 2*hi - c
			v = -v
		}
	}
	return c, v
}
