package geom

// Grid is a uniform spatial hash over an arena. It answers "which items lie
// within radius r of point p" in expected O(1 + k) time, replacing the
// O(n²) all-pairs scan when rebuilding wireless topologies every step.
//
// Items are dense integer IDs in [0, n). The zero value is not usable;
// construct with NewGrid.
type Grid struct {
	arena    Rect
	cell     float64
	cols     int
	rows     int
	cells    [][]CellEntry // cell index -> items with embedded positions
	pos      []Point       // item id -> position
	occupied []int         // cells touched since the last Rebuild, for fast Reset
	inOcc    []bool        // cell index -> already listed in occupied
}

// CellEntry is one item in a grid cell bucket. The position is embedded so
// distance filters read the bucket sequentially instead of chasing the
// item id into a separate position array — the dominant cost of candidate
// scans at scale. X and Y are exact copies of the item's position.
type CellEntry struct {
	X, Y float64
	ID   int32
}

// NewGrid returns a grid over arena sized for n items with the given cell
// side. A good cell side is the maximum radio range: then any radius-r
// query with r <= cell touches at most 9 cells.
func NewGrid(arena Rect, n int, cell float64) *Grid {
	if cell <= 0 {
		cell = 1
	}
	cols := int(arena.Width()/cell) + 1
	rows := int(arena.Height()/cell) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		arena: arena,
		cell:  cell,
		cols:  cols,
		rows:  rows,
		cells: make([][]CellEntry, cols*rows),
		pos:   make([]Point, n),
		inOcc: make([]bool, cols*rows),
	}
}

// cellIndex returns the flat cell index for p, clamped to the arena.
func (g *Grid) cellIndex(p Point) int {
	cx := int((p.X - g.arena.MinX) / g.cell)
	cy := int((p.Y - g.arena.MinY) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Rebuild clears the grid and inserts every position in pos, which is
// indexed by item ID. The slice is copied into the grid's own storage.
func (g *Grid) Rebuild(pos []Point) { g.RebuildMasked(pos, nil) }

// RebuildMasked is Rebuild with an exclusion mask: items with omit[id] set
// are left out of every cell bucket — queries cannot see them — but their
// positions are still recorded, so Pos keeps answering for excluded items
// (world fault injection uses this to make dead nodes invisible without
// losing track of where they froze). A nil omit excludes nothing.
func (g *Grid) RebuildMasked(pos []Point, omit []bool) {
	for _, ci := range g.occupied {
		g.cells[ci] = g.cells[ci][:0]
		g.inOcc[ci] = false
	}
	g.occupied = g.occupied[:0]
	if len(g.pos) < len(pos) {
		g.pos = make([]Point, len(pos))
	}
	g.pos = g.pos[:len(pos)]
	copy(g.pos, pos)
	for id, p := range pos {
		if omit != nil && omit[id] {
			continue
		}
		ci := g.cellIndex(p)
		if !g.inOcc[ci] {
			g.inOcc[ci] = true
			g.occupied = append(g.occupied, ci)
		}
		g.cells[ci] = append(g.cells[ci], CellEntry{X: p.X, Y: p.Y, ID: int32(id)})
	}
}

// Pos returns the position currently stored for item id — the position as
// of the last Rebuild or Update for that item.
func (g *Grid) Pos(id int32) Point { return g.pos[id] }

// Update moves item id to p, relocating it between cell buckets only when
// its cell actually changed — the incremental alternative to a full
// Rebuild when most items are stationary. Bucket order is not preserved
// (swap-remove), so callers that need ordered results must sort; the
// simulator canonicalizes adjacency to sorted NodeID order regardless of
// bucket order, so query order never reaches observable state.
func (g *Grid) Update(id int32, p Point) {
	old := g.pos[id]
	g.pos[id] = p
	oc := g.cellIndex(old)
	nc := g.cellIndex(p)
	e := CellEntry{X: p.X, Y: p.Y, ID: id}
	if oc == nc {
		bucket := g.cells[oc]
		for i := range bucket {
			if bucket[i].ID == id {
				bucket[i] = e
				break
			}
		}
		return
	}
	bucket := g.cells[oc]
	for i := range bucket {
		if bucket[i].ID == id {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			g.cells[oc] = bucket[:last]
			break
		}
	}
	if !g.inOcc[nc] {
		g.inOcc[nc] = true
		g.occupied = append(g.occupied, nc)
	}
	g.cells[nc] = append(g.cells[nc], e)
}

// BoxCellRange returns the inclusive cell-coordinate rectangle covering
// the axis-aligned box [lo, hi], clamped to the arena. Together with Cols
// and CellBucket it lets hot loops iterate raw cell buckets without
// copying candidates into an intermediate slice — the candidate query of
// the incremental topology engine, where one box covers a mover's old and
// new interaction discs. Flat cell indices are cy*Cols()+cx.
func (g *Grid) BoxCellRange(lo, hi Point) (minCX, maxCX, minCY, maxCY int) {
	minCX = int((lo.X - g.arena.MinX) / g.cell)
	maxCX = int((hi.X - g.arena.MinX) / g.cell)
	minCY = int((lo.Y - g.arena.MinY) / g.cell)
	maxCY = int((hi.Y - g.arena.MinY) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	return minCX, maxCX, minCY, maxCY
}

// Cols returns the number of cell columns (the flat-index row stride).
func (g *Grid) Cols() int { return g.cols }

// ColOf returns the cell-column index of p, clamped to the arena — the
// spatial coordinate world sharding partitions on.
func (g *Grid) ColOf(p Point) int {
	cx := int((p.X - g.arena.MinX) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	return cx
}

// ReserveBuckets pre-grows every cell bucket to hold roughly twice the
// mean occupancy for items uniformly spread over the grid, so steady-state
// Update churn (a node entering a cell fuller than that cell has ever
// been) stops growing buckets one realloc at a time. Call once before the
// first Rebuild on grids that will be incrementally updated.
func (g *Grid) ReserveBuckets(items int) {
	perCell := 2*items/len(g.cells) + 4
	for ci := range g.cells {
		if cap(g.cells[ci]) < perCell {
			g.cells[ci] = make([]CellEntry, 0, perCell)
		}
	}
}

// CellSize returns the side length of one grid cell.
func (g *Grid) CellSize() float64 { return g.cell }

// Origin returns the arena corner cell (0,0) is anchored at, so callers
// of BoxCellRange can recover each cell's rectangle for distance pruning.
func (g *Grid) Origin() Point { return Point{X: g.arena.MinX, Y: g.arena.MinY} }

// CellBucket returns the items stored in the flat cell index ci, with
// their embedded positions. The returned slice is grid-owned and valid
// until the next Update or Rebuild; callers must not modify or retain it.
func (g *Grid) CellBucket(ci int) []CellEntry { return g.cells[ci] }

// Within appends to dst the IDs of all items whose distance to p is at most
// r, excluding the item with ID exclude (pass a negative value to exclude
// nothing), and returns the extended slice. Results are in ascending cell
// order but otherwise unsorted.
func (g *Grid) Within(p Point, r float64, exclude int, dst []int32) []int32 {
	if r < 0 {
		return dst
	}
	minCX := int((p.X - r - g.arena.MinX) / g.cell)
	maxCX := int((p.X + r - g.arena.MinX) / g.cell)
	minCY := int((p.Y - r - g.arena.MinY) / g.cell)
	maxCY := int((p.Y + r - g.arena.MinY) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	r2 := r * r
	for cy := minCY; cy <= maxCY; cy++ {
		base := cy * g.cols
		for cx := minCX; cx <= maxCX; cx++ {
			for _, e := range g.cells[base+cx] {
				if int(e.ID) == exclude {
					continue
				}
				dx, dy := e.X-p.X, e.Y-p.Y
				if dx*dx+dy*dy <= r2 {
					dst = append(dst, e.ID)
				}
			}
		}
	}
	return dst
}
