package geom

// Grid is a uniform spatial hash over an arena. It answers "which items lie
// within radius r of point p" in expected O(1 + k) time, replacing the
// O(n²) all-pairs scan when rebuilding wireless topologies every step.
//
// Items are dense integer IDs in [0, n). The zero value is not usable;
// construct with NewGrid.
type Grid struct {
	arena    Rect
	cell     float64
	cols     int
	rows     int
	cells    [][]int32 // cell index -> item ids
	pos      []Point   // item id -> position
	occupied []int     // cells currently non-empty, for fast Reset
}

// NewGrid returns a grid over arena sized for n items with the given cell
// side. A good cell side is the maximum radio range: then any radius-r
// query with r <= cell touches at most 9 cells.
func NewGrid(arena Rect, n int, cell float64) *Grid {
	if cell <= 0 {
		cell = 1
	}
	cols := int(arena.Width()/cell) + 1
	rows := int(arena.Height()/cell) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		arena: arena,
		cell:  cell,
		cols:  cols,
		rows:  rows,
		cells: make([][]int32, cols*rows),
		pos:   make([]Point, n),
	}
}

// cellIndex returns the flat cell index for p, clamped to the arena.
func (g *Grid) cellIndex(p Point) int {
	cx := int((p.X - g.arena.MinX) / g.cell)
	cy := int((p.Y - g.arena.MinY) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Rebuild clears the grid and inserts every position in pos, which is
// indexed by item ID. The slice is copied into the grid's own storage.
func (g *Grid) Rebuild(pos []Point) {
	for _, ci := range g.occupied {
		g.cells[ci] = g.cells[ci][:0]
	}
	g.occupied = g.occupied[:0]
	if len(g.pos) < len(pos) {
		g.pos = make([]Point, len(pos))
	}
	g.pos = g.pos[:len(pos)]
	copy(g.pos, pos)
	for id, p := range pos {
		ci := g.cellIndex(p)
		if len(g.cells[ci]) == 0 {
			g.occupied = append(g.occupied, ci)
		}
		g.cells[ci] = append(g.cells[ci], int32(id))
	}
}

// Within appends to dst the IDs of all items whose distance to p is at most
// r, excluding the item with ID exclude (pass a negative value to exclude
// nothing), and returns the extended slice. Results are in ascending cell
// order but otherwise unsorted.
func (g *Grid) Within(p Point, r float64, exclude int, dst []int32) []int32 {
	if r < 0 {
		return dst
	}
	minCX := int((p.X - r - g.arena.MinX) / g.cell)
	maxCX := int((p.X + r - g.arena.MinX) / g.cell)
	minCY := int((p.Y - r - g.arena.MinY) / g.cell)
	maxCY := int((p.Y + r - g.arena.MinY) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	r2 := r * r
	for cy := minCY; cy <= maxCY; cy++ {
		base := cy * g.cols
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[base+cx] {
				if int(id) == exclude {
					continue
				}
				if g.pos[id].Dist2(p) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}
