// Package rng provides deterministic, splittable pseudo-random number
// streams for the simulator.
//
// Every stochastic decision in the repository draws from a named Stream
// derived from a root experiment seed. Streams are cheap value types built
// on xoshiro256** seeded through SplitMix64, so a (seed, path) pair always
// yields the same sequence regardless of which engine — sequential or
// concurrent — consumes it. That property is what makes the goroutine-per-
// agent engine bit-identical to the sequential one.
package rng

import "math"

// Stream is a deterministic pseudo-random number generator
// (xoshiro256**). The zero value is NOT usable; construct streams with New
// or derive them with Child/Named.
type Stream struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only to expand seeds into full generator state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from seed. Distinct seeds give statistically
// independent sequences.
func New(seed uint64) *Stream {
	st := seed
	s := &Stream{}
	s.s0 = splitMix64(&st)
	s.s1 = splitMix64(&st)
	s.s2 = splitMix64(&st)
	s.s3 = splitMix64(&st)
	// xoshiro forbids the all-zero state; seed 0 would otherwise produce it
	// with probability ~2^-256, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
	return s
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// DeriveSeed expands (base, index) into the index-th seed of a SplitMix64
// stream rooted at base. Successive indices yield statistically
// independent seeds — unlike base+index, whose xoshiro initial states are
// correlated across nearby runs. RunMany-style replication loops use this
// to give run r the seed DeriveSeed(baseSeed, r), which is a pure function
// of (base, index) and therefore identical no matter which worker, or how
// many workers, execute the run.
func DeriveSeed(base, index uint64) uint64 {
	st := base + index*0x9e3779b97f4a7c15
	return splitMix64(&st)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Child derives an independent sub-stream identified by the integer path
// ids. The same (parent seed, path) always yields the same child, and
// different paths yield independent children. Deriving a child does not
// advance the parent.
func (s *Stream) Child(path ...uint64) *Stream {
	// Mix the current state with the path through SplitMix64 so children of
	// the same parent with different paths decorrelate fully.
	st := s.s0 ^ rotl(s.s1, 13) ^ rotl(s.s2, 29) ^ rotl(s.s3, 41)
	for _, p := range path {
		st ^= p + 0x9e3779b97f4a7c15
		st = splitMix64(&st)
	}
	return New(st)
}

// Named derives an independent sub-stream identified by a label. Equal
// labels yield equal children; the parent is not advanced.
func (s *Stream) Named(label string) *Stream {
	// FNV-1a over the label, then fold into Child.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return s.Child(h)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's unbiased bounded generation.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask+a0*b1)>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Angle returns a uniform angle in [0, 2π).
func (s *Stream) Angle() float64 {
	return s.Float64() * 2 * math.Pi
}

// Shuffle permutes n elements in place using the provided swap function
// (Fisher–Yates).
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](s *Stream, xs []T) T {
	return xs[s.Intn(len(xs))]
}
