package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams with equal seed diverged at draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestChildIndependentOfParentAdvance(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	p2.Uint64() // advancing the copy must not change a child derived earlier
	c1 := p1.Child(3)
	// Children depend on parent state, so derive both before advancing.
	if c1.Uint64() == p2.Child(3).Uint64() {
		t.Fatal("child derived after parent advanced should differ (state-dependent derivation)")
	}
	// Same state + same path => same child.
	q1, q2 := New(7).Child(3), New(7).Child(3)
	for i := 0; i < 100; i++ {
		if q1.Uint64() != q2.Uint64() {
			t.Fatalf("equal-path children diverged at draw %d", i)
		}
	}
}

func TestChildPathsDistinct(t *testing.T) {
	p := New(99)
	c1 := p.Child(1)
	c2 := p.Child(2)
	c12 := p.Child(1, 2)
	seen := map[uint64]string{}
	for name, c := range map[string]*Stream{"c1": c1, "c2": c2, "c12": c12} {
		v := c.Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("children %s and %s produced identical first draw", prev, name)
		}
		seen[v] = name
	}
}

func TestNamedStable(t *testing.T) {
	a := New(5).Named("mobility")
	b := New(5).Named("mobility")
	c := New(5).Named("placement")
	if a.Uint64() != b.Uint64() {
		t.Fatal("equal labels must give equal streams")
	}
	if New(5).Named("mobility").Uint64() == c.Uint64() {
		t.Fatal("distinct labels should give distinct streams")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(123)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates more than 10%% from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(77)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRange(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		v := s.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) produced %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(4)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%50) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPickCoversAll(t *testing.T) {
	s := New(3)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[Pick(s, xs)] = true
	}
	if len(seen) != len(xs) {
		t.Fatalf("Pick over 200 draws covered only %v", seen)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		xs := []int{1, 2, 2, 3, 5, 8, 13}
		sum := 0
		for _, v := range xs {
			sum += v
		}
		s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		got := 0
		for _, v := range xs {
			got += v
		}
		return got == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero-seeded stream looks stuck at zero")
	}
}

func TestDeriveSeedStable(t *testing.T) {
	if DeriveSeed(1, 5) != DeriveSeed(1, 5) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different bases produced the same run seed")
	}
}

// TestDeriveSeedDecorrelated checks the property that motivated replacing
// base+index: seeds of adjacent indices must not produce correlated
// low-bit sequences.
func TestDeriveSeedDecorrelated(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		s := DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate seed at index %d", i)
		}
		seen[s] = true
	}
	// Adjacent streams should disagree on roughly half their bits.
	agree := 0
	const trials = 64
	for i := uint64(0); i < trials; i++ {
		a, b := New(DeriveSeed(7, i)), New(DeriveSeed(7, i+1))
		for j := 0; j < 16; j++ {
			if a.Uint64()&1 == b.Uint64()&1 {
				agree++
			}
		}
	}
	frac := float64(agree) / float64(trials*16)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("adjacent derived streams agree on %.2f of low bits, want ~0.5", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(300)
	}
}
