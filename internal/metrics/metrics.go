// Package metrics is the simulation's zero-allocation instrumentation
// layer: monotonic counters, gauges, and fixed-bucket histograms held in a
// Registry. Every instrument is preallocated at registration time and
// addressed through a small value handle, so the steady-state operations —
// Counter.Inc, Gauge.Set, Histogram.Observe, Timer spans — cost no
// allocations and no map lookups, mirroring how routing.Scratch keeps the
// per-step metric sweeps allocation-free.
//
// The layer is nil-safe end to end: registering on a nil *Registry returns
// a zero handle, and every operation on a zero handle is a cheap no-op.
// Harness code therefore instruments unconditionally and pays near-zero
// overhead when no registry is attached.
//
// Instruments never touch the simulation's RNG streams or observable
// state, so attaching a registry cannot perturb seeded results — the
// determinism regression tests pin this by running with instrumentation on
// and off.
//
// Updates are atomic, so instruments may be bumped from the engine's
// parallel sections and scraped concurrently by the HTTP exposition
// handler while a run is in flight.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// counterSlot is the storage behind a Counter handle.
type counterSlot struct {
	name string
	v    atomic.Uint64
}

// gaugeSlot stores a float64 as raw bits behind a Gauge handle.
type gaugeSlot struct {
	name string
	bits atomic.Uint64
}

// histSlot is the storage behind a Histogram (or Timer) handle: k upper
// bounds and k+1 bucket counts (the last bucket is +Inf), plus the running
// count and sum.
type histSlot struct {
	name    string
	bounds  []float64 // immutable after registration
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func (h *histSlot) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing instrument. The zero value is a
// valid no-op handle.
type Counter struct{ s *counterSlot }

// Inc adds one.
func (c Counter) Inc() {
	if c.s != nil {
		c.s.v.Add(1)
	}
}

// Add adds n.
func (c Counter) Add(n uint64) {
	if c.s != nil {
		c.s.v.Add(n)
	}
}

// Value returns the current count (0 for a zero handle).
func (c Counter) Value() uint64 {
	if c.s == nil {
		return 0
	}
	return c.s.v.Load()
}

// Enabled reports whether the handle is backed by a registry.
func (c Counter) Enabled() bool { return c.s != nil }

// Gauge is a set-to-current-value instrument. The zero value is a valid
// no-op handle.
type Gauge struct{ s *gaugeSlot }

// Set records v as the current value.
func (g Gauge) Set(v float64) {
	if g.s != nil {
		g.s.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 for a zero handle).
func (g Gauge) Value() float64 {
	if g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// Enabled reports whether the handle is backed by a registry.
func (g Gauge) Enabled() bool { return g.s != nil }

// Histogram is a fixed-bucket distribution instrument. The zero value is a
// valid no-op handle.
type Histogram struct{ s *histSlot }

// Observe records v into its bucket.
func (h Histogram) Observe(v float64) {
	if h.s != nil {
		h.s.observe(v)
	}
}

// Count returns how many observations were recorded.
func (h Histogram) Count() uint64 {
	if h.s == nil {
		return 0
	}
	return h.s.count.Load()
}

// Enabled reports whether the handle is backed by a registry.
func (h Histogram) Enabled() bool { return h.s != nil }

// Timer is a Histogram of elapsed seconds. The zero value is a valid
// no-op handle whose spans never read the clock.
type Timer struct{ s *histSlot }

// Span is one in-flight timed section, produced by Timer.Start.
type Span struct {
	s  *histSlot
	t0 time.Time
}

// Start begins a span. On a zero Timer this returns a zero Span without
// touching the clock.
func (t Timer) Start() Span {
	if t.s == nil {
		return Span{}
	}
	return Span{s: t.s, t0: time.Now()}
}

// Stop records the elapsed seconds since Start. Zero spans are no-ops.
func (sp Span) Stop() {
	if sp.s != nil {
		sp.s.observe(time.Since(sp.t0).Seconds())
	}
}

// Enabled reports whether the handle is backed by a registry.
func (t Timer) Enabled() bool { return t.s != nil }

// DefBuckets is the default histogram bucket layout for plain value
// distributions (meeting sizes, hop counts): powers-of-two-ish up to 256.
var DefBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}

// DurationBuckets is the default bucket layout for Timers, in seconds:
// exponential from 1µs to ~4s.
var DurationBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4,
}

// Registry owns a set of named instruments. Registration (Counter, Gauge,
// Histogram, Timer) allocates and may take a lock; it is meant for run
// setup, not hot loops. Registering an existing name returns a handle to
// the existing instrument, so harnesses can re-register per run and
// accumulate across runs. A nil *Registry is a valid no-op registry.
type Registry struct {
	mu       sync.Mutex
	index    map[string]int // name -> slot index, per kind via prefix below
	counters []*counterSlot
	gauges   []*gaugeSlot
	hists    []*histSlot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Instrument names share one namespace; the index maps a kind-prefixed key
// so a counter and a gauge cannot silently collide under one name.
const (
	kindCounter = "c\x00"
	kindGauge   = "g\x00"
	kindHist    = "h\x00"
)

// Counter registers (or finds) a monotonic counter.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[kindCounter+name]; ok {
		return Counter{s: r.counters[i]}
	}
	s := &counterSlot{name: name}
	r.index[kindCounter+name] = len(r.counters)
	r.counters = append(r.counters, s)
	return Counter{s: s}
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[kindGauge+name]; ok {
		return Gauge{s: r.gauges[i]}
	}
	s := &gaugeSlot{name: name}
	r.index[kindGauge+name] = len(r.gauges)
	r.gauges = append(r.gauges, s)
	return Gauge{s: s}
}

// Histogram registers (or finds) a fixed-bucket histogram. bounds must be
// sorted ascending; nil selects DefBuckets. Re-registration keeps the
// original bounds.
func (r *Registry) Histogram(name string, bounds []float64) Histogram {
	if r == nil {
		return Histogram{}
	}
	return Histogram{s: r.histSlot(name, bounds, DefBuckets)}
}

// Timer registers (or finds) a histogram of elapsed seconds. bounds nil
// selects DurationBuckets.
func (r *Registry) Timer(name string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{s: r.histSlot(name, nil, DurationBuckets)}
}

func (r *Registry) histSlot(name string, bounds, def []float64) *histSlot {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[kindHist+name]; ok {
		return r.hists[i]
	}
	if bounds == nil {
		bounds = def
	}
	s := &histSlot{
		name:    name,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.index[kindHist+name] = len(r.hists)
	r.hists = append(r.hists, s)
	return s
}

// CounterPoint is one counter's value in a Snapshot.
type CounterPoint struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugePoint is one gauge's value in a Snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistPoint is one histogram's state in a Snapshot. Bounds aliases the
// registry's immutable bucket bounds; Buckets is copied into a buffer the
// Snapshot owns and reuses.
type HistPoint struct {
	Name    string    `json:"name"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, suitable for exposition
// while the run keeps mutating the live instruments. Reuse one Snapshot
// across scrapes to avoid steady-state allocations.
type Snapshot struct {
	Counters []CounterPoint `json:"counters"`
	Gauges   []GaugePoint   `json:"gauges"`
	Hists    []HistPoint    `json:"histograms"`
}

// Snapshot copies the registry's current state into dst and returns it.
// dst may be nil (a fresh Snapshot is allocated) or a previous snapshot
// whose storage is reused; after warm-up, snapshotting a stable registry
// allocates nothing. Instruments appear in registration order.
func (r *Registry) Snapshot(dst *Snapshot) *Snapshot {
	if dst == nil {
		dst = &Snapshot{}
	}
	if r == nil {
		dst.Counters = dst.Counters[:0]
		dst.Gauges = dst.Gauges[:0]
		dst.Hists = dst.Hists[:0]
		return dst
	}
	r.mu.Lock()
	counters, gauges, hists := r.counters, r.gauges, r.hists
	r.mu.Unlock()

	dst.Counters = dst.Counters[:0]
	for _, s := range counters {
		dst.Counters = append(dst.Counters, CounterPoint{Name: s.name, Value: s.v.Load()})
	}
	dst.Gauges = dst.Gauges[:0]
	for _, s := range gauges {
		dst.Gauges = append(dst.Gauges, GaugePoint{
			Name: s.name, Value: math.Float64frombits(s.bits.Load()),
		})
	}
	if cap(dst.Hists) < len(hists) {
		dst.Hists = make([]HistPoint, 0, len(hists))
	}
	dst.Hists = dst.Hists[:len(hists)]
	for i, s := range hists {
		p := &dst.Hists[i]
		p.Name = s.name
		p.Bounds = s.bounds
		if cap(p.Buckets) < len(s.buckets) {
			p.Buckets = make([]uint64, len(s.buckets))
		}
		p.Buckets = p.Buckets[:len(s.buckets)]
		for j := range s.buckets {
			p.Buckets[j] = s.buckets[j].Load()
		}
		p.Count = s.count.Load()
		p.Sum = math.Float64frombits(s.sumBits.Load())
	}
	return dst
}

// Merge folds src's instruments into r: counters and histogram buckets,
// counts, and sums add; gauges adopt src's value (last merge wins).
// Instruments absent from r are registered with src's bounds. Parallel
// sweeps give every parameter point a private registry so per-point
// counter deltas stay race-free, then Merge the points in index order
// into the sweep-wide registry the exposition endpoints serve.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	counters, gauges, hists := src.counters, src.gauges, src.hists
	src.mu.Unlock()
	for _, s := range counters {
		r.Counter(s.name).Add(s.v.Load())
	}
	for _, s := range gauges {
		r.Gauge(s.name).Set(math.Float64frombits(s.bits.Load()))
	}
	for _, s := range hists {
		dst := r.histSlot(s.name, s.bounds, s.bounds)
		if len(dst.buckets) == len(s.buckets) {
			for i := range s.buckets {
				dst.buckets[i].Add(s.buckets[i].Load())
			}
		}
		dst.count.Add(s.count.Load())
		for {
			old := dst.sumBits.Load()
			next := math.Float64bits(math.Float64frombits(old) + math.Float64frombits(s.sumBits.Load()))
			if dst.sumBits.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

// Counter returns the snapshotted value of the named counter (0 if
// absent) — the lookup sweep/watch use for per-point deltas.
func (s *Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshotted value of the named gauge (0 if absent).
func (s *Snapshot) Gauge(name string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}
