package metrics

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("edges")
	g.Set(2164)
	if got := g.Value(); got != 2164 {
		t.Errorf("gauge = %g, want 2164", got)
	}
	// Re-registering the same name must return the same slot.
	if c2 := r.Counter("requests_total"); c2.Value() != 5 {
		t.Errorf("re-registered counter = %d, want 5", c2.Value())
	}
	c2 := r.Counter("requests_total")
	c2.Inc()
	if got := c.Value(); got != 6 {
		t.Errorf("original handle sees %d after alias Inc, want 6", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 2, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	s := r.Snapshot(nil)
	if len(s.Hists) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(s.Hists))
	}
	p := s.Hists[0]
	// le=1 gets 0.5 and 1; le=2 gets 2; le=4 gets 3; +Inf gets 100.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if p.Buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, p.Buckets[i], w)
		}
	}
	if p.Sum != 106.5 {
		t.Errorf("sum = %g, want 106.5", p.Sum)
	}
}

func TestNilRegistryAndZeroHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	tm := r.Timer("x")
	c.Inc()
	c.Add(10)
	g.Set(3)
	h.Observe(1)
	sp := tm.Start()
	sp.Stop()
	if c.Enabled() || g.Enabled() || h.Enabled() || tm.Enabled() {
		t.Error("nil-registry handles report Enabled")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("zero handles accumulated state")
	}
	if s := r.Snapshot(nil); len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Error("nil registry snapshot is not empty")
	}
}

func TestTimerRecordsSeconds(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("phase_seconds")
	sp := tm.Start()
	sp.Stop()
	s := r.Snapshot(nil)
	if s.Hists[0].Count != 1 {
		t.Errorf("timer count = %d, want 1", s.Hists[0].Count)
	}
	if s.Hists[0].Sum < 0 {
		t.Errorf("timer sum = %g, want >= 0", s.Hists[0].Sum)
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(0.25)
	s := r.Snapshot(nil)
	if s.Counter("a") != 7 {
		t.Errorf("Snapshot.Counter(a) = %d, want 7", s.Counter("a"))
	}
	if s.Counter("missing") != 0 {
		t.Error("missing counter should read 0")
	}
	if s.Gauge("b") != 0.25 {
		t.Errorf("Snapshot.Gauge(b) = %g, want 0.25", s.Gauge("b"))
	}
}

func TestMergeFoldsRegistries(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("runs").Add(2)
	dst.Gauge("conn").Set(0.5)
	dst.Histogram("size", []float64{1, 2}).Observe(1)

	src := NewRegistry()
	src.Counter("runs").Add(3)
	src.Counter("fresh").Add(9)
	src.Gauge("conn").Set(0.75)
	h := src.Histogram("size", []float64{1, 2})
	h.Observe(2)
	h.Observe(5)

	dst.Merge(src)
	s := dst.Snapshot(nil)
	if got := s.Counter("runs"); got != 5 {
		t.Errorf("merged counter = %d, want 5", got)
	}
	if got := s.Counter("fresh"); got != 9 {
		t.Errorf("counter absent from dst should be adopted: got %d, want 9", got)
	}
	if got := s.Gauge("conn"); got != 0.75 {
		t.Errorf("merged gauge = %g, want src value 0.75", got)
	}
	var hp *HistPoint
	for i := range s.Hists {
		if s.Hists[i].Name == "size" {
			hp = &s.Hists[i]
		}
	}
	if hp == nil {
		t.Fatal("merged histogram missing")
	}
	if hp.Count != 3 || hp.Sum != 8 {
		t.Errorf("merged histogram count/sum = %d/%g, want 3/8", hp.Count, hp.Sum)
	}
	wantBuckets := []uint64{1, 1, 1} // obs 1, 2, 5 against bounds {1,2}
	for i, w := range wantBuckets {
		if hp.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hp.Buckets[i], w)
		}
	}
	// nil receivers and sources are no-ops.
	var nilReg *Registry
	nilReg.Merge(src)
	dst.Merge(nil)
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("moves_total").Add(3)
	r.Gauge("edges").Set(10)
	h := r.Histogram("meeting_size", []float64{1, 2})
	h.Observe(1)
	h.Observe(5)
	var sb strings.Builder
	if err := r.Snapshot(nil).WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"moves_total 3",
		"edges 10",
		`meeting_size_bucket{le="1"} 1`,
		`meeting_size_bucket{le="2"} 1`,
		`meeting_size_bucket{le="+Inf"} 2`,
		"meeting_size_sum 6",
		"meeting_size_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterIncZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	if avg := testing.AllocsPerRun(1000, c.Inc); avg != 0 {
		t.Errorf("Counter.Inc allocates %v per call, want 0", avg)
	}
	var zero Counter
	if avg := testing.AllocsPerRun(1000, zero.Inc); avg != 0 {
		t.Errorf("zero Counter.Inc allocates %v per call, want 0", avg)
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hot", nil)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		h.Observe(float64(i % 300))
		i++
	})
	if avg != 0 {
		t.Errorf("Histogram.Observe allocates %v per call, want 0", avg)
	}
}

func TestSnapshotReuseZeroAllocs(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"a", "b", "c"} {
		r.Counter(name).Inc()
		r.Gauge(name).Set(1)
		r.Histogram(name, nil).Observe(1)
	}
	var s Snapshot
	r.Snapshot(&s) // warm up the reusable storage
	avg := testing.AllocsPerRun(100, func() {
		r.Snapshot(&s)
	})
	if avg != 0 {
		t.Errorf("Registry.Snapshot with reused dst allocates %v per call, want 0", avg)
	}
}
