package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
)

// WriteProm writes the snapshot in the Prometheus text exposition format:
// counters as `name value`, gauges likewise, histograms as cumulative
// `name_bucket{le="..."}` series plus `_sum` and `_count`.
func (s *Snapshot) WriteProm(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
			g.Name, g.Name, formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for i := range s.Hists {
		h := &s.Hists[i]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
			return err
		}
		cum := uint64(0)
		for j, b := range h.Bounds {
			cum += h.Buckets[j]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				h.Name, formatFloat(b), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			h.Name, h.Count, h.Name, formatFloat(h.Sum), h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float compactly ("3" not "3.000000"), with inf
// spelled the Prometheus way.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile dumps a snapshot of r to path: JSON when the path ends in
// ".json", Prometheus text format otherwise. This backs the cmds'
// `-metrics out.txt` flag.
func WriteFile(r *Registry, path string) error {
	s := r.Snapshot(nil)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := error(nil)
	if strings.HasSuffix(path, ".json") {
		werr = s.WriteJSON(f)
	} else {
		werr = s.WriteProm(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Handler returns an http.Handler serving the registry snapshot — the
// Prometheus text format by default, JSON with `?format=json`.
func (r *Registry) Handler() http.Handler {
	var mu sync.Mutex
	var snap Snapshot
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		r.Snapshot(&snap)
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = snap.WriteProm(w)
	})
}

// Expvar returns an expvar.Func that renders the registry snapshot, for
// publishing under /debug/vars next to the runtime's memstats.
func (r *Registry) Expvar() expvar.Func {
	return func() any { return r.Snapshot(nil) }
}

// publishOnce guards the process-global expvar name against duplicate
// Publish panics when several registries serve in one process (tests).
var publishOnce sync.Once

// StartServer binds addr and serves, in a background goroutine:
//
//	/metrics          registry snapshot (Prometheus text; ?format=json)
//	/debug/vars       expvar, including the snapshot under "simulation"
//	/debug/pprof/...  live CPU/heap/goroutine profiling
//
// The bind happens synchronously so flag typos fail fast; the returned
// address is the concrete listen address (useful with ":0").
func StartServer(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	publishOnce.Do(func() { expvar.Publish("simulation", r.Expvar()) })
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
