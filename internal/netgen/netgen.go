// Package netgen generates the wireless worlds the experiments run on.
//
// The paper evaluates on "a single connected network consisting of 300
// nodes with 2164 edges" (mapping) and a 250-node network with 12 gateway
// nodes (routing) but publishes neither coordinates nor adjacency. We
// therefore synthesise random geometric networks at the same scale: nodes
// placed uniformly in a square arena, per-node radio ranges sampled around
// a base range, and the base range binary-searched so the directed edge
// count hits the paper's target. Seeds are retried until the required
// connectivity property holds, so every generated world is usable and every
// (spec, seed) pair is reproducible.
package netgen

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/rng"
)

// PlacementKind selects how node positions are drawn.
type PlacementKind int

const (
	// PlacementUniform scatters nodes uniformly over the arena (the
	// paper: "nodes are distributed in a two dimension environment
	// randomly").
	PlacementUniform PlacementKind = iota
	// PlacementClustered drops nodes around a handful of cluster centres
	// — a campus of buildings rather than an open field.
	PlacementClustered
	// PlacementGrid arranges nodes on a jittered grid — a planned
	// deployment.
	PlacementGrid
)

// MobilityKind selects the movement model for mobile nodes.
type MobilityKind int

const (
	// MobilityNone makes every node stationary (mapping scenario).
	MobilityNone MobilityKind = iota
	// MobilityConstant gives each mobile node one shared speed
	// (the Kramer et al. assumption).
	MobilityConstant
	// MobilityRandom gives each mobile node a uniformly drawn speed
	// (the paper's modification).
	MobilityRandom
	// MobilityWaypoint uses the random-waypoint model (extension).
	MobilityWaypoint
)

// Spec describes a world to generate.
type Spec struct {
	N           int     // number of nodes
	TargetEdges int     // desired directed edge count
	ArenaSide   float64 // square arena side length
	RangeSpread float64 // per-node range factor drawn from [1-s, 1+s]

	// Placement selects the node layout (default uniform). Clusters is
	// the cluster count for PlacementClustered (default 5).
	Placement PlacementKind
	Clusters  int

	// Degradation: fraction of nodes whose radios decay, and how fast.
	BatteryFraction float64
	DecayPerStep    float64
	FloorFraction   float64

	// Mobility. MobileFraction of non-gateway nodes move.
	Mobility       MobilityKind
	MobileFraction float64
	MinSpeed       float64
	MaxSpeed       float64

	// Gateways: stationary, never battery-limited, RangeBoost × base range.
	Gateways   int
	RangeBoost float64

	// RequireStrong retries seeds until the topology is strongly
	// connected (mapping needs it so agents can reach every node).
	RequireStrong bool
	// MaxTries bounds the seed retries (default 128 — at ~2164 directed
	// edges on 300 nodes a single layout is strongly connected only part
	// of the time, so a generous budget keeps Generate effectively
	// infallible while staying deterministic).
	MaxTries int
}

// Mapping300 is the canonical mapping-scenario spec: 300 stationary nodes,
// 2164 directed edges, heterogeneous ranges, strongly connected.
func Mapping300() Spec {
	return Spec{
		N:             300,
		TargetEdges:   2164,
		ArenaSide:     100,
		RangeSpread:   0.25,
		Mobility:      MobilityNone,
		RequireStrong: true,
	}
}

// Routing250 is the canonical routing-scenario spec: 250 nodes, 12
// stationary boosted gateways, half of the other nodes mobile with random
// velocities and decaying batteries.
func Routing250() Spec {
	return Spec{
		N:               250,
		TargetEdges:     2000,
		ArenaSide:       100,
		RangeSpread:     0.25,
		BatteryFraction: 1, // applies to mobile nodes only, see build
		DecayPerStep:    0.0005,
		FloorFraction:   0.6,
		Mobility:        MobilityRandom,
		MobileFraction:  0.5,
		MinSpeed:        0.1,
		MaxSpeed:        0.5,
		Gateways:        12,
		RangeBoost:      1.5,
	}
}

// Generate builds a world from spec. The same (spec, seed) pair always
// yields the same world.
func Generate(spec Spec, seed uint64) (*network.World, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("netgen: N must be positive, got %d", spec.N)
	}
	if spec.TargetEdges <= 0 {
		return nil, fmt.Errorf("netgen: TargetEdges must be positive, got %d", spec.TargetEdges)
	}
	if spec.ArenaSide <= 0 {
		return nil, fmt.Errorf("netgen: ArenaSide must be positive")
	}
	if spec.Gateways >= spec.N {
		return nil, fmt.Errorf("netgen: %d gateways for %d nodes", spec.Gateways, spec.N)
	}
	maxTries := spec.MaxTries
	if maxTries <= 0 {
		maxTries = 128
	}
	root := rng.New(seed).Named("netgen")
	for try := 0; try < maxTries; try++ {
		w, err := build(spec, root.Child(uint64(try)))
		if err != nil {
			return nil, err
		}
		if !spec.RequireStrong || w.Topology().StronglyConnected() {
			return w, nil
		}
	}
	return nil, fmt.Errorf("netgen: no strongly connected layout in %d tries (N=%d, edges=%d)",
		maxTries, spec.N, spec.TargetEdges)
}

// build assembles one candidate world from a stream.
func build(spec Spec, s *rng.Stream) (*network.World, error) {
	n := spec.N
	arena := geom.Square(spec.ArenaSide)
	pos := placeNodes(spec, s.Named("placement"))

	// Per-node range multipliers around the (searched) base range.
	factors := make([]float64, n)
	rs := s.Named("ranges")
	for i := range factors {
		if spec.RangeSpread > 0 {
			factors[i] = rs.Range(1-spec.RangeSpread, 1+spec.RangeSpread)
		} else {
			factors[i] = 1
		}
	}

	gateways := pickGateways(pos, spec.Gateways)
	isGateway := make([]bool, n)
	for _, g := range gateways {
		isGateway[g] = true
	}
	boost := spec.RangeBoost
	if boost <= 0 {
		boost = 1
	}
	for _, g := range gateways {
		factors[g] = boost
	}

	base := searchBaseRange(arena, pos, factors, spec.TargetEdges)

	// Mobility assignment: gateways are always static; a MobileFraction of
	// the remaining nodes move.
	mobile := make([]bool, n)
	if spec.Mobility != MobilityNone && spec.MobileFraction > 0 {
		candidates := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !isGateway[i] {
				candidates = append(candidates, i)
			}
		}
		ms := s.Named("mobile-pick")
		ms.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		want := int(math.Round(spec.MobileFraction * float64(len(candidates))))
		for _, id := range candidates[:want] {
			mobile[id] = true
		}
	}

	radios := make([]radio.Radio, n)
	bs := s.Named("battery")
	for i := range radios {
		r := base * factors[i]
		decays := !isGateway[i] && spec.BatteryFraction > 0 &&
			(mobile[i] || spec.Mobility == MobilityNone) && bs.Bool(spec.BatteryFraction)
		if decays {
			radios[i] = radio.NewBattery(r, spec.DecayPerStep, spec.FloorFraction)
		} else {
			radios[i] = radio.New(r)
		}
	}

	movers := make([]mobility.Mover, n)
	vs := s.Named("velocity")
	for i := range movers {
		if !mobile[i] {
			movers[i] = mobility.Static{}
			continue
		}
		stream := vs.Child(uint64(i))
		switch spec.Mobility {
		case MobilityConstant:
			movers[i] = mobility.NewConstantVelocity(arena, spec.MaxSpeed, stream)
		case MobilityRandom:
			movers[i] = mobility.NewRandomVelocity(arena, spec.MinSpeed, spec.MaxSpeed, stream)
		case MobilityWaypoint:
			movers[i] = mobility.NewWaypoint(arena, spec.MinSpeed, spec.MaxSpeed, 5, stream)
		default:
			movers[i] = mobility.Static{}
		}
	}

	return network.NewWorld(network.Config{
		Arena:     arena,
		Positions: pos,
		Radios:    radios,
		Movers:    movers,
		Gateways:  gateways,
	})
}

// placeNodes draws node positions according to the spec's placement kind.
func placeNodes(spec Spec, place *rng.Stream) []geom.Point {
	n := spec.N
	side := spec.ArenaSide
	pos := make([]geom.Point, n)
	switch spec.Placement {
	case PlacementClustered:
		k := spec.Clusters
		if k <= 0 {
			k = 5
		}
		centres := make([]geom.Point, k)
		for i := range centres {
			centres[i] = geom.Point{X: place.Range(0, side), Y: place.Range(0, side)}
		}
		// Cluster spread scales with the room each cluster has.
		spread := side / (2 * math.Sqrt(float64(k)))
		arena := geom.Square(side)
		for i := range pos {
			c := centres[place.Intn(k)]
			p := geom.Point{
				X: c.X + place.Range(-spread, spread),
				Y: c.Y + place.Range(-spread, spread),
			}
			pos[i] = arena.Clamp(p)
		}
	case PlacementGrid:
		cols := int(math.Ceil(math.Sqrt(float64(n))))
		cell := side / float64(cols)
		arena := geom.Square(side)
		for i := range pos {
			cx := float64(i%cols)*cell + cell/2
			cy := float64(i/cols)*cell + cell/2
			jitter := cell / 3
			pos[i] = arena.Clamp(geom.Point{
				X: cx + place.Range(-jitter, jitter),
				Y: cy + place.Range(-jitter, jitter),
			})
		}
	default: // PlacementUniform
		for i := range pos {
			pos[i] = geom.Point{X: place.Range(0, side), Y: place.Range(0, side)}
		}
	}
	return pos
}

// pickGateways spreads k gateways over the node set by farthest-point
// sampling so that gateways cover the arena rather than clustering.
func pickGateways(pos []geom.Point, k int) []network.NodeID {
	if k <= 0 {
		return nil
	}
	n := len(pos)
	// Start from the node nearest the arena centre for determinism.
	var cx, cy float64
	for _, p := range pos {
		cx += p.X
		cy += p.Y
	}
	centre := geom.Point{X: cx / float64(n), Y: cy / float64(n)}
	first, bestD := 0, math.Inf(1)
	for i, p := range pos {
		if d := p.Dist2(centre); d < bestD {
			first, bestD = i, d
		}
	}
	chosen := []network.NodeID{network.NodeID(first)}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = pos[i].Dist2(pos[first])
	}
	for len(chosen) < k {
		next, far := -1, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > far {
				next, far = i, minDist[i]
			}
		}
		chosen = append(chosen, network.NodeID(next))
		for i := 0; i < n; i++ {
			if d := pos[i].Dist2(pos[next]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return chosen
}

// countEdges counts directed links if every node i transmits to radius
// base×factors[i].
func countEdges(grid *geom.Grid, pos []geom.Point, factors []float64, base float64) int {
	total := 0
	var buf []int32
	for i := range pos {
		buf = grid.Within(pos[i], base*factors[i], i, buf[:0])
		total += len(buf)
	}
	return total
}

// searchBaseRange binary-searches the base radio range so the directed
// edge count is as close as possible to target.
func searchBaseRange(arena geom.Rect, pos []geom.Point, factors []float64, target int) float64 {
	maxFactor := 0.0
	for _, f := range factors {
		if f > maxFactor {
			maxFactor = f
		}
	}
	hi := math.Sqrt(arena.Width()*arena.Width()+arena.Height()*arena.Height()) / maxFactor
	lo := 0.0
	grid := geom.NewGrid(arena, len(pos), hi*maxFactor/8+1)
	grid.Rebuild(pos)
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		if countEdges(grid, pos, factors, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Describe returns a one-line summary of a world, handy for CLI output.
func Describe(w *network.World) string {
	g := w.Topology()
	st := g.OutDegreeStats()
	scc := len(g.LargestSCC())
	diam, connected := g.Diameter()
	diamStr := fmt.Sprintf("%d", diam)
	if !connected {
		diamStr += "(partial)"
	}
	return fmt.Sprintf("nodes=%d edges=%d outdeg[min=%d mean=%.1f max=%d] largestSCC=%d diameter=%s gateways=%d dynamic=%v",
		w.N(), g.M(), st.Min, st.Mean, st.Max, scc, diamStr, len(w.Gateways()), w.Dynamic())
}

// LargestSCCCoverage returns the fraction of nodes inside the largest
// strongly connected component.
func LargestSCCCoverage(g *graph.Directed) float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(len(g.LargestSCC())) / float64(g.N())
}
