package netgen

import (
	"math"
	"testing"

	"repro/internal/network"
)

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
	}{
		{"zero N", Spec{TargetEdges: 10, ArenaSide: 10}},
		{"zero edges", Spec{N: 10, ArenaSide: 10}},
		{"zero arena", Spec{N: 10, TargetEdges: 10}},
		{"too many gateways", Spec{N: 5, TargetEdges: 10, ArenaSide: 10, Gateways: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.spec, 1); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

func TestMapping300Shape(t *testing.T) {
	w, err := Generate(Mapping300(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 300 {
		t.Fatalf("N = %d", w.N())
	}
	m := w.Topology().M()
	if math.Abs(float64(m-2164)) > 2164*0.02 {
		t.Fatalf("edges = %d, want ~2164", m)
	}
	if !w.Topology().StronglyConnected() {
		t.Fatal("mapping world must be strongly connected")
	}
	if w.Dynamic() {
		t.Fatal("mapping world should be static")
	}
}

func TestMapping300HeterogeneousRanges(t *testing.T) {
	w, err := Generate(Mapping300(), 7)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for u := 0; u < w.N(); u++ {
		r := w.Radio(network.NodeID(u))
		distinct[r.Range()] = true
	}
	if len(distinct) < w.N()/2 {
		t.Fatalf("ranges look homogeneous: %d distinct", len(distinct))
	}
	// Asymmetric links must exist somewhere.
	g := w.Topology()
	asym := 0
	for u := 0; u < w.N(); u++ {
		for _, v := range g.Out(network.NodeID(u)) {
			if !g.HasEdge(v, network.NodeID(u)) {
				asym++
			}
		}
	}
	if asym == 0 {
		t.Fatal("heterogeneous ranges should produce asymmetric links")
	}
}

func TestRouting250Shape(t *testing.T) {
	w, err := Generate(Routing250(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 250 {
		t.Fatalf("N = %d", w.N())
	}
	if len(w.Gateways()) != 12 {
		t.Fatalf("gateways = %d", len(w.Gateways()))
	}
	if !w.Dynamic() {
		t.Fatal("routing world must be dynamic")
	}
	m := w.Topology().M()
	if math.Abs(float64(m-2000)) > 2000*0.05 {
		t.Fatalf("edges = %d, want ~2000", m)
	}
	// Physical connectivity to gateways should be high initially.
	if c := w.ConnectivityToGateways(); c < 0.8 {
		t.Fatalf("initial physical connectivity %v too low", c)
	}
}

func TestRoutingGatewaysStaticUnderMobility(t *testing.T) {
	w, err := Generate(Routing250(), 3)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[network.NodeID][2]float64)
	for _, g := range w.Gateways() {
		p := w.Pos(g)
		before[g] = [2]float64{p.X, p.Y}
	}
	moved := 0
	positions0 := w.Positions()
	for i := 0; i < 20; i++ {
		w.Step()
	}
	for _, g := range w.Gateways() {
		p := w.Pos(g)
		if b := before[g]; p.X != b[0] || p.Y != b[1] {
			t.Fatalf("gateway %d moved", g)
		}
	}
	for u := 0; u < w.N(); u++ {
		if w.Pos(network.NodeID(u)) != positions0[u] {
			moved++
		}
	}
	// Half of the 238 non-gateway nodes should move.
	if moved < 100 || moved > 140 {
		t.Fatalf("moved nodes = %d, want ~119", moved)
	}
}

func TestRoutingGatewayRangeBoost(t *testing.T) {
	w, err := Generate(Routing250(), 5)
	if err != nil {
		t.Fatal(err)
	}
	var gwMin, otherMax float64 = math.Inf(1), 0
	for u := 0; u < w.N(); u++ {
		r := w.Radio(network.NodeID(u)).BaseRange()
		if w.IsGateway(network.NodeID(u)) {
			if r < gwMin {
				gwMin = r
			}
		} else if r > otherMax {
			otherMax = r
		}
	}
	if gwMin <= otherMax*1.5/1.25*0.99 {
		// Gateways are at boost 1.5, non-gateways at most 1.25 of base.
		t.Fatalf("gateway ranges not boosted: gwMin=%v otherMax=%v", gwMin, otherMax)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Routing250(), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Routing250(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Topology().Equal(b.Topology()) {
		t.Fatal("same seed produced different initial topologies")
	}
	for i := 0; i < 30; i++ {
		a.Step()
		b.Step()
	}
	if !a.Topology().Equal(b.Topology()) {
		t.Fatal("same seed diverged after stepping")
	}
	c, err := Generate(Routing250(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology().Equal(c.Topology()) {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestSmallSpecs(t *testing.T) {
	spec := Spec{N: 20, TargetEdges: 80, ArenaSide: 30, RangeSpread: 0.2, RequireStrong: true}
	w, err := Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Topology().StronglyConnected() {
		t.Fatal("RequireStrong violated")
	}
}

func TestPickGatewaysSpread(t *testing.T) {
	w, err := Generate(Routing250(), 11)
	if err != nil {
		t.Fatal(err)
	}
	gws := w.Gateways()
	// Farthest-point sampling should avoid tight clusters: min pairwise
	// distance among 12 gateways in a 100×100 arena must exceed a sanity
	// threshold.
	minD := math.Inf(1)
	for i := 0; i < len(gws); i++ {
		for j := i + 1; j < len(gws); j++ {
			if d := w.Pos(gws[i]).Dist(w.Pos(gws[j])); d < minD {
				minD = d
			}
		}
	}
	if minD < 10 {
		t.Fatalf("gateways cluster: min pairwise distance %v", minD)
	}
}

func TestDescribe(t *testing.T) {
	w, err := Generate(Spec{N: 10, TargetEdges: 30, ArenaSide: 20, MaxTries: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := Describe(w)
	if s == "" {
		t.Fatal("empty description")
	}
}

func TestLargestSCCCoverage(t *testing.T) {
	w, err := Generate(Mapping300(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if c := LargestSCCCoverage(w.Topology()); c != 1 {
		t.Fatalf("strongly connected world coverage = %v", c)
	}
}

func BenchmarkGenerateMapping300(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Mapping300(), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPlacementClustered(t *testing.T) {
	spec := Spec{
		N: 100, TargetEdges: 800, ArenaSide: 100,
		Placement: PlacementClustered, Clusters: 4, MaxTries: 64,
	}
	w, err := Generate(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Clustered layouts concentrate nodes: mean nearest-neighbour
	// distance must be clearly below the uniform layout's.
	uniform, err := Generate(Spec{
		N: 100, TargetEdges: 800, ArenaSide: 100, MaxTries: 64,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c, u := meanNearestNeighbour(w), meanNearestNeighbour(uniform); c >= u*0.9 {
		t.Fatalf("clustered NN distance %v not below uniform %v", c, u)
	}
}

func TestPlacementGrid(t *testing.T) {
	spec := Spec{
		N: 100, TargetEdges: 800, ArenaSide: 100,
		Placement: PlacementGrid, MaxTries: 64,
	}
	w, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Grid layouts are more even than uniform: the nearest-neighbour
	// distance varies less.
	var ds []float64
	for u := 0; u < w.N(); u++ {
		ds = append(ds, nearestNeighbour(w, network.NodeID(u)))
	}
	min, max := ds[0], ds[0]
	for _, d := range ds {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max > min*6 {
		t.Fatalf("grid layout too ragged: nn in [%v, %v]", min, max)
	}
}

func TestPlacementDeterministic(t *testing.T) {
	spec := Spec{
		N: 50, TargetEdges: 300, ArenaSide: 60,
		Placement: PlacementClustered, MaxTries: 64,
	}
	a, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Topology().Equal(b.Topology()) {
		t.Fatal("clustered placement not deterministic")
	}
}

func meanNearestNeighbour(w *network.World) float64 {
	total := 0.0
	for u := 0; u < w.N(); u++ {
		total += nearestNeighbour(w, network.NodeID(u))
	}
	return total / float64(w.N())
}

func nearestNeighbour(w *network.World, u network.NodeID) float64 {
	best := math.Inf(1)
	pu := w.Pos(u)
	for v := 0; v < w.N(); v++ {
		if network.NodeID(v) == u {
			continue
		}
		if d := pu.Dist(w.Pos(network.NodeID(v))); d < best {
			best = d
		}
	}
	return best
}
