// Package faults is the deterministic fault-injection engine: a Schedule
// maps simulation steps to fault events — node churn (leave/join), gateway
// failure and timed recovery, a vertical region partition suppressing every
// cross-partition link, and radio degradation (range shrink) with restore.
//
// Schedules are immutable once built, so one Schedule can drive any number
// of concurrent runs; all randomness is spent at BUILD time (from a seeded
// rng stream), never at injection time, so a (plan, seed) pair always
// compiles to the same explicit event script and a faulted run stays
// bit-identical across stepping engines and worker counts. The World
// consumes events at step boundaries (network.World.SetFaults).
package faults

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Kind enumerates the fault event types.
type Kind uint8

const (
	// NodeDown removes a node from the network: it vanishes from the
	// topology, stops moving, and strands any agents occupying it.
	NodeDown Kind = iota + 1
	// NodeUp revives a previously downed node, optionally respawning it
	// at a new position (RX, RY).
	NodeUp
	// GatewayDown takes a gateway out of service: the node stays alive
	// and keeps relaying, but no longer counts as a route target.
	GatewayDown
	// GatewayUp restores a downed gateway to service.
	GatewayUp
	// PartitionStart splits the arena at a vertical cut (Factor = the cut
	// as a fraction of arena width); all links crossing the cut are
	// suppressed until PartitionEnd.
	PartitionStart
	// PartitionEnd heals the active partition.
	PartitionEnd
	// RadioDegrade scales a node's radio range by Factor in [0, 1]
	// (interference/damage, independent of battery charge).
	RadioDegrade
	// RadioRestore removes all degradation from a node's radio.
	RadioRestore
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	case GatewayDown:
		return "gateway-down"
	case GatewayUp:
		return "gateway-up"
	case PartitionStart:
		return "partition-start"
	case PartitionEnd:
		return "partition-end"
	case RadioDegrade:
		return "radio-degrade"
	case RadioRestore:
		return "radio-restore"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault. Step is the world step count at which the
// event fires (the first Step call is step 1). Node targets churn, gateway
// and radio events; Factor carries the partition cut fraction or the radio
// degradation multiplier; RX/RY are a NodeUp respawn position as arena
// fractions in [0, 1], used only when Respawn is set.
type Event struct {
	Step    int
	Kind    Kind
	Node    int32
	Factor  float64
	RX, RY  float64
	Respawn bool
}

// Schedule is an immutable, step-sorted fault script. The zero value and
// nil are both valid empty schedules.
type Schedule struct {
	events []Event
	steps  []int // distinct event steps, ascending
}

// NewSchedule sorts evs by step (stable, so same-step events keep their
// authoring order) and returns the schedule.
func NewSchedule(evs []Event) *Schedule {
	s := &Schedule{events: append([]Event(nil), evs...)}
	sort.SliceStable(s.events, func(i, j int) bool {
		return s.events[i].Step < s.events[j].Step
	})
	for i, e := range s.events {
		if i == 0 || e.Step != s.events[i-1].Step {
			s.steps = append(s.steps, e.Step)
		}
	}
	return s
}

// Len returns the total event count.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// At returns the events scheduled for exactly the given step, in authoring
// order. The returned slice aliases the schedule; callers must not modify
// it.
func (s *Schedule) At(step int) []Event {
	if s == nil || len(s.events) == 0 {
		return nil
	}
	lo := sort.Search(len(s.events), func(i int) bool { return s.events[i].Step >= step })
	hi := lo
	for hi < len(s.events) && s.events[hi].Step == step {
		hi++
	}
	if lo == hi {
		return nil
	}
	return s.events[lo:hi]
}

// Steps returns the distinct steps at which events fire, ascending. The
// returned slice aliases the schedule; callers must not modify it.
func (s *Schedule) Steps() []int {
	if s == nil {
		return nil
	}
	return s.steps
}

// Events returns all events in step order. The returned slice aliases the
// schedule; callers must not modify it.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events
}

// Plan is the declarative description a Schedule is compiled from. Zero
// fields disable the corresponding fault family, so plans compose by
// setting only the families wanted. Victim selection and respawn positions
// are drawn from the build seed, making (Plan, n, gateways, steps, seed)
// → Schedule a pure function.
type Plan struct {
	// Node churn: every ChurnEvery steps from ChurnStart on, ChurnKills
	// random non-gateway nodes (not already down) leave, each rejoining
	// ChurnDowntime steps later (<= 0: they never rejoin). ChurnEvery <= 0
	// means a single burst at ChurnStart. RespawnElsewhere revives each
	// node at a fresh uniform position instead of where it died.
	ChurnStart       int
	ChurnEvery       int
	ChurnKills       int
	ChurnDowntime    int
	RespawnElsewhere bool

	// Gateway outage: at GatewayFailStep, GatewayKills random gateways go
	// out of service, recovering GatewayDowntime steps later (<= 0: never).
	GatewayFailStep int
	GatewayKills    int
	GatewayDowntime int

	// Partition: at PartitionStep the arena splits at a vertical cut
	// PartitionFrac (fraction of width; outside (0,1) defaults to 0.5),
	// healing PartitionHeal steps later (<= 0: never).
	PartitionStep int
	PartitionHeal int
	PartitionFrac float64

	// Radio degradation: at DegradeStep, DegradeCount random nodes have
	// their radio range scaled by DegradeFactor (outside (0,1) defaults to
	// 0.5), restored DegradeRestore steps later (<= 0: never).
	DegradeStep    int
	DegradeCount   int
	DegradeRestore int
	DegradeFactor  float64
}

// Build compiles the plan into an explicit Schedule for a network of n
// nodes with the given gateway set over a run of the given step count.
func (p Plan) Build(n int, gateways []int32, steps int, seed uint64) *Schedule {
	root := rng.New(seed).Named("faults.plan")
	isGW := make([]bool, n)
	for _, g := range gateways {
		if g >= 0 && int(g) < n {
			isGW[g] = true
		}
	}
	var evs []Event

	if p.ChurnKills > 0 && p.ChurnStart > 0 && p.ChurnStart < steps {
		cs := root.Named("churn")
		downUntil := make([]int, n) // step at which the node is back up
		for step := p.ChurnStart; step < steps; {
			var cands []int32
			for u := 0; u < n; u++ {
				if !isGW[u] && downUntil[u] <= step {
					cands = append(cands, int32(u))
				}
			}
			for k := 0; k < p.ChurnKills && len(cands) > 0; k++ {
				i := cs.Intn(len(cands))
				u := cands[i]
				cands[i] = cands[len(cands)-1]
				cands = cands[:len(cands)-1]
				evs = append(evs, Event{Step: step, Kind: NodeDown, Node: u})
				if p.ChurnDowntime > 0 {
					up := Event{Step: step + p.ChurnDowntime, Kind: NodeUp, Node: u}
					if p.RespawnElsewhere {
						up.Respawn = true
						up.RX, up.RY = cs.Float64(), cs.Float64()
					}
					evs = append(evs, up)
					downUntil[u] = step + p.ChurnDowntime
				} else {
					downUntil[u] = steps + 1
				}
			}
			if p.ChurnEvery <= 0 {
				break
			}
			step += p.ChurnEvery
		}
	}

	if p.GatewayKills > 0 && p.GatewayFailStep > 0 && len(gateways) > 0 {
		gs := root.Named("gateways")
		cands := append([]int32(nil), gateways...)
		for k := 0; k < p.GatewayKills && len(cands) > 0; k++ {
			i := gs.Intn(len(cands))
			g := cands[i]
			cands[i] = cands[len(cands)-1]
			cands = cands[:len(cands)-1]
			evs = append(evs, Event{Step: p.GatewayFailStep, Kind: GatewayDown, Node: g})
			if p.GatewayDowntime > 0 {
				evs = append(evs, Event{
					Step: p.GatewayFailStep + p.GatewayDowntime, Kind: GatewayUp, Node: g,
				})
			}
		}
	}

	if p.PartitionStep > 0 {
		frac := p.PartitionFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		evs = append(evs, Event{Step: p.PartitionStep, Kind: PartitionStart, Factor: frac})
		if p.PartitionHeal > 0 {
			evs = append(evs, Event{Step: p.PartitionStep + p.PartitionHeal, Kind: PartitionEnd})
		}
	}

	if p.DegradeCount > 0 && p.DegradeStep > 0 {
		ds := root.Named("degrade")
		factor := p.DegradeFactor
		if factor <= 0 || factor >= 1 {
			factor = 0.5
		}
		cands := make([]int32, n)
		for u := range cands {
			cands[u] = int32(u)
		}
		for k := 0; k < p.DegradeCount && len(cands) > 0; k++ {
			i := ds.Intn(len(cands))
			u := cands[i]
			cands[i] = cands[len(cands)-1]
			cands = cands[:len(cands)-1]
			evs = append(evs, Event{Step: p.DegradeStep, Kind: RadioDegrade, Node: u, Factor: factor})
			if p.DegradeRestore > 0 {
				evs = append(evs, Event{Step: p.DegradeStep + p.DegradeRestore, Kind: RadioRestore, Node: u})
			}
		}
	}

	return NewSchedule(evs)
}

// PresetNames lists the named fault scenarios Preset accepts, in
// presentation order.
func PresetNames() []string {
	return []string{"churn", "gwfail", "partition", "degrade", "blackout"}
}

// PresetPlan returns the Plan behind a named scenario, scaled to a network
// of n nodes with the given gateway count over a run of the given steps:
//
//	churn      periodic node leave/join with respawn elsewhere
//	gwfail     a third of the gateways fail mid-run, recovering later
//	partition  a vertical split severs the arena for a quarter of the run
//	degrade    a fifth of the radios lose half their range, then recover
//	blackout   churn + gateway failure + partition combined
func PresetPlan(name string, n, gateways, steps int) (Plan, error) {
	churn := Plan{
		ChurnStart:       steps / 5,
		ChurnEvery:       maxInt(1, steps/10),
		ChurnKills:       maxInt(1, n/25),
		ChurnDowntime:    maxInt(1, steps/6),
		RespawnElsewhere: true,
	}
	gwfail := Plan{
		GatewayFailStep: steps / 3,
		GatewayKills:    maxInt(1, gateways/3),
		GatewayDowntime: maxInt(1, steps/4),
	}
	partition := Plan{
		PartitionStep: steps / 3,
		PartitionHeal: maxInt(1, steps/4),
		PartitionFrac: 0.5,
	}
	switch name {
	case "churn":
		return churn, nil
	case "gwfail":
		return gwfail, nil
	case "partition":
		return partition, nil
	case "degrade":
		return Plan{
			DegradeStep:    steps / 4,
			DegradeCount:   maxInt(1, n/5),
			DegradeRestore: maxInt(1, steps/4),
			DegradeFactor:  0.5,
		}, nil
	case "blackout":
		p := churn
		p.GatewayFailStep = gwfail.GatewayFailStep
		p.GatewayKills = gwfail.GatewayKills
		p.GatewayDowntime = gwfail.GatewayDowntime
		p.PartitionStep = partition.PartitionStep
		p.PartitionHeal = partition.PartitionHeal
		p.PartitionFrac = partition.PartitionFrac
		return p, nil
	default:
		return Plan{}, fmt.Errorf("faults: unknown preset %q (have %v)", name, PresetNames())
	}
}

// Preset compiles a named scenario (see PresetPlan) into a Schedule.
func Preset(name string, n int, gateways []int32, steps int, seed uint64) (*Schedule, error) {
	p, err := PresetPlan(name, n, len(gateways), steps)
	if err != nil {
		return nil, err
	}
	return p.Build(n, gateways, steps, seed), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
