package faults

import (
	"reflect"
	"testing"
)

func TestScheduleAt(t *testing.T) {
	s := NewSchedule([]Event{
		{Step: 30, Kind: NodeUp, Node: 4},
		{Step: 10, Kind: NodeDown, Node: 4},
		{Step: 10, Kind: NodeDown, Node: 7},
		{Step: 20, Kind: PartitionStart, Factor: 0.5},
	})
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.At(10); len(got) != 2 || got[0].Node != 4 || got[1].Node != 7 {
		t.Fatalf("At(10) = %+v, want the two step-10 events in authoring order", got)
	}
	if got := s.At(15); got != nil {
		t.Fatalf("At(15) = %+v, want nil", got)
	}
	if got := s.At(30); len(got) != 1 || got[0].Kind != NodeUp {
		t.Fatalf("At(30) = %+v, want the node-up event", got)
	}
	if got := s.Steps(); !reflect.DeepEqual(got, []int{10, 20, 30}) {
		t.Fatalf("Steps = %v, want [10 20 30]", got)
	}
}

func TestNilScheduleIsEmpty(t *testing.T) {
	var s *Schedule
	if s.Len() != 0 || s.At(1) != nil || s.Steps() != nil || s.Events() != nil {
		t.Fatal("nil schedule must behave as empty")
	}
}

func TestPlanBuildDeterministic(t *testing.T) {
	p := Plan{
		ChurnStart: 20, ChurnEvery: 15, ChurnKills: 3, ChurnDowntime: 10,
		RespawnElsewhere: true,
		GatewayFailStep:  40, GatewayKills: 1, GatewayDowntime: 25,
		PartitionStep: 50, PartitionHeal: 30,
		DegradeStep: 25, DegradeCount: 4, DegradeRestore: 20, DegradeFactor: 0.4,
	}
	gws := []int32{0, 1}
	a := p.Build(50, gws, 100, 7)
	b := p.Build(50, gws, 100, 7)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same (plan, seed) built different schedules")
	}
	c := p.Build(50, gws, 100, 8)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds built identical schedules (victim choice not seeded?)")
	}
	if a.Len() == 0 {
		t.Fatal("plan built an empty schedule")
	}
}

func TestPlanNeverKillsGateways(t *testing.T) {
	p := Plan{ChurnStart: 5, ChurnEvery: 5, ChurnKills: 4, ChurnDowntime: 3}
	gws := []int32{0, 3, 9}
	isGW := map[int32]bool{0: true, 3: true, 9: true}
	s := p.Build(10, gws, 60, 99)
	for _, e := range s.Events() {
		if (e.Kind == NodeDown || e.Kind == NodeUp) && isGW[e.Node] {
			t.Fatalf("churn event targets gateway %d: %+v", e.Node, e)
		}
	}
}

func TestPlanChurnRespawnPairsUp(t *testing.T) {
	p := Plan{ChurnStart: 10, ChurnEvery: 20, ChurnKills: 2, ChurnDowntime: 8, RespawnElsewhere: true}
	s := p.Build(30, []int32{0}, 100, 5)
	down := map[int32]int{}
	for _, e := range s.Events() {
		switch e.Kind {
		case NodeDown:
			down[e.Node]++
		case NodeUp:
			if down[e.Node] == 0 {
				t.Fatalf("node %d revived without dying first", e.Node)
			}
			down[e.Node]--
			if !e.Respawn {
				t.Fatalf("RespawnElsewhere plan produced in-place revival: %+v", e)
			}
			if e.RX < 0 || e.RX > 1 || e.RY < 0 || e.RY > 1 {
				t.Fatalf("respawn fractions out of [0,1]: %+v", e)
			}
		}
	}
	for u, c := range down {
		if c != 0 {
			t.Fatalf("node %d left permanently down despite ChurnDowntime > 0", u)
		}
	}
}

func TestPresets(t *testing.T) {
	gws := []int32{0, 1, 2}
	for _, name := range PresetNames() {
		s, err := Preset(name, 100, gws, 300, 11)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if s.Len() == 0 {
			t.Fatalf("Preset(%q) built an empty schedule", name)
		}
		for _, e := range s.Events() {
			if e.Step <= 0 {
				t.Fatalf("Preset(%q) scheduled event at non-positive step: %+v", name, e)
			}
		}
	}
	if _, err := Preset("nope", 100, gws, 300, 11); err == nil {
		t.Fatal("unknown preset must error")
	}
}
