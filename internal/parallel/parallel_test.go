package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// withBudget runs fn under a temporary budget and restores the old limit.
func withBudget(t *testing.T, n int, fn func()) {
	t.Helper()
	old := Budget()
	SetBudget(n)
	defer SetBudget(old)
	fn()
}

func TestTryAcquireRespectsLimit(t *testing.T) {
	withBudget(t, 3, func() {
		if got := TryAcquire(2); got != 2 {
			t.Fatalf("TryAcquire(2) = %d, want 2", got)
		}
		if got := TryAcquire(5); got != 1 {
			t.Fatalf("TryAcquire(5) = %d, want remaining 1", got)
		}
		if got := TryAcquire(1); got != 0 {
			t.Fatalf("TryAcquire on spent budget = %d, want 0", got)
		}
		Release(3)
		if got := InUse(); got != 0 {
			t.Fatalf("InUse after release = %d, want 0", got)
		}
	})
}

func TestTryAcquireZeroAndNegative(t *testing.T) {
	withBudget(t, 2, func() {
		if TryAcquire(0) != 0 || TryAcquire(-1) != 0 {
			t.Fatal("non-positive requests must grant nothing")
		}
		Release(0)
		Release(-5) // must not corrupt the pool
		if got := TryAcquire(2); got != 2 {
			t.Fatalf("budget corrupted: TryAcquire(2) = %d", got)
		}
		Release(2)
	})
}

func TestPoolRunsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			withBudget(t, 8, func() {
				const n = 100
				var counts [n]atomic.Int32
				err := NewPool(workers).Run(n, func(i int) error {
					counts[i].Add(1)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range counts {
					if c := counts[i].Load(); c != 1 {
						t.Fatalf("item %d ran %d times", i, c)
					}
				}
			})
		})
	}
}

func TestPoolReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		withBudget(t, 4, func() {
			err := NewPool(workers).Run(10, func(i int) error {
				switch i {
				case 3:
					return errA
				case 7:
					return errB
				}
				return nil
			})
			if !errors.Is(err, errA) {
				t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errA)
			}
		})
	}
}

func TestPoolSequentialFailsFast(t *testing.T) {
	// With one worker the pool must behave like the historical loop:
	// stop at the first error without touching later items.
	ran := 0
	err := NewPool(1).Run(10, func(i int) error {
		ran++
		if i == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || ran != 3 {
		t.Fatalf("sequential pool ran %d items (err %v), want fail-fast after 3", ran, err)
	}
}

func TestPoolReleasesBudget(t *testing.T) {
	withBudget(t, 4, func() {
		pool := NewPool(4)
		for round := 0; round < 3; round++ {
			if err := pool.Run(16, func(int) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
		if got := InUse(); got != 0 {
			t.Fatalf("pool leaked %d budget tokens", got)
		}
	})
}

func TestPoolExhaustedBudgetDegradesSequential(t *testing.T) {
	withBudget(t, 0, func() {
		var maxConcurrent, cur atomic.Int32
		err := NewPool(8).Run(32, func(int) error {
			c := cur.Add(1)
			if c > maxConcurrent.Load() {
				maxConcurrent.Store(c)
			}
			cur.Add(-1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if maxConcurrent.Load() != 1 {
			t.Fatalf("spent budget still ran %d items concurrently", maxConcurrent.Load())
		}
	})
}

func TestNewPoolNormalises(t *testing.T) {
	if NewPool(0).Workers() != 1 || NewPool(-3).Workers() != 1 {
		t.Fatal("workers < 1 must normalise to 1")
	}
	if NewPool(1).Parallel() || !NewPool(2).Parallel() {
		t.Fatal("Parallel() misreports")
	}
}

func TestSetBudgetClamps(t *testing.T) {
	old := Budget()
	defer SetBudget(old)
	SetBudget(-7)
	if Budget() != 0 {
		t.Fatalf("SetBudget(-7) stored %d, want 0", Budget())
	}
}

// TestGroupRunsEveryItemOnce checks Do's basic contract at several worker
// counts, including the degraded inline path.
func TestGroupRunsEveryItemOnce(t *testing.T) {
	for _, budget := range []int{0, 1, 3} {
		withBudget(t, budget, func() {
			var g Group
			g.Acquire(4)
			defer g.Release()
			const n = 100
			var counts [n]atomic.Int64
			g.Do(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("budget %d: item %d ran %d times", budget, i, got)
				}
			}
		})
	}
}

// TestGroupDegradesInlineAtZeroBudget pins that a starved group runs the
// batch on the caller goroutine — and therefore allocation-free, the
// property the sharded world-step degraded mode relies on.
func TestGroupDegradesInlineAtZeroBudget(t *testing.T) {
	withBudget(t, 0, func() {
		var g Group
		g.Acquire(8)
		defer g.Release()
		if w := g.Workers(); w != 1 {
			t.Fatalf("Workers = %d with zero budget, want 1", w)
		}
		sum := 0
		fn := func(i int) { sum += i } // caller-only: no races possible
		avg := testing.AllocsPerRun(100, func() {
			sum = 0
			g.Do(10, fn)
		})
		if sum != 45 {
			t.Fatalf("sum = %d, want 45", sum)
		}
		if avg > 0 {
			t.Fatalf("degraded Do allocates %v per batch, want 0", avg)
		}
	})
}

// TestGroupReleaseReturnsTokens checks Acquire/Release round-trip the
// budget so a stepping loop cannot leak tokens.
func TestGroupReleaseReturnsTokens(t *testing.T) {
	withBudget(t, 4, func() {
		var g Group
		g.Acquire(5)
		if got := g.Workers(); got != 5 {
			t.Fatalf("Workers = %d, want 5 (4 tokens + caller)", got)
		}
		if free := Budget() - InUse(); free != 0 {
			t.Fatalf("free tokens = %d during hold, want 0", free)
		}
		g.Release()
		if InUse() != 0 {
			t.Fatalf("InUse = %d after Release, want 0", InUse())
		}
	})
}

// TestGroupResultIndependentOfWorkers runs the same deterministic batch at
// several worker counts and checks the merged-by-index outputs are
// identical — the Do determinism contract.
func TestGroupResultIndependentOfWorkers(t *testing.T) {
	const n = 64
	run := func(budget int) [n]int {
		var out [n]int
		withBudget(t, budget, func() {
			var g Group
			g.Acquire(8)
			defer g.Release()
			g.Do(n, func(i int) { out[i] = i * i })
		})
		return out
	}
	want := run(0)
	for _, budget := range []int{1, 2, 7} {
		if got := run(budget); got != want {
			t.Fatalf("budget %d produced different outputs", budget)
		}
	}
}
