// Package parallel provides the run-level concurrency machinery shared by
// the replication executors (mapping.RunMany, routing.RunMany) and the
// parameter-point loops of cmd/sweep and cmd/figures: a deterministic
// bounded worker pool and a process-wide concurrency budget.
//
// Determinism contract: a Pool only runs *independent* items concurrently
// and makes no scheduling decision observable to the work function — item
// i always receives the same inputs regardless of worker count, every item
// runs exactly once, and the caller merges outputs by item index. A batch
// therefore produces bit-identical results whether the pool has 1 worker
// or runtime.NumCPU() — the same contract sim.Engine pins for agents,
// lifted one level up to whole runs.
//
// The budget keeps the two levels from oversubscribing the machine: every
// extra goroutine (beyond the caller, which always participates) must be
// claimed from one shared token pool sized to GOMAXPROCS-1. Outer pools
// claim tokens for the lifetime of their batch, so they win over the inner
// per-agent engines, which claim per phase and fall back to sequential
// execution when the budget is spent — the Amdahl-favoured priority, since
// replications scale perfectly while agent phases do not.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// budget is the process-wide token pool. limit is the configured number of
// extra worker goroutines allowed at once; inUse counts tokens currently
// claimed.
var (
	limit atomic.Int64
	inUse atomic.Int64
)

func init() {
	SetBudget(runtime.GOMAXPROCS(0) - 1)
}

// SetBudget sets the number of extra worker goroutines (beyond each
// blocked caller) the process may run at once. n < 0 is clamped to 0,
// which forces every executor in the process to run sequentially.
// Outstanding claims are unaffected. Intended for tests and for runners
// that want to pin total parallelism explicitly.
func SetBudget(n int) {
	if n < 0 {
		n = 0
	}
	limit.Store(int64(n))
}

// Budget returns the configured token limit.
func Budget() int { return int(limit.Load()) }

// TryAcquire claims up to n tokens from the budget and returns how many it
// got (possibly 0). It never blocks: callers degrade to fewer workers —
// ultimately to the caller goroutine alone — instead of queueing.
func TryAcquire(n int) int {
	if n <= 0 {
		return 0
	}
	for {
		used := inUse.Load()
		avail := limit.Load() - used
		if avail <= 0 {
			return 0
		}
		grant := int64(n)
		if grant > avail {
			grant = avail
		}
		if inUse.CompareAndSwap(used, used+grant) {
			return int(grant)
		}
	}
}

// Release returns n tokens claimed with TryAcquire.
func Release(n int) {
	if n > 0 {
		inUse.Add(-int64(n))
	}
}

// InUse returns the number of tokens currently claimed.
func InUse() int { return int(inUse.Load()) }

// Pool executes batches of independent work items on up to Workers
// goroutines, claiming budget tokens for the duration of each batch.
type Pool struct {
	workers int
}

// NewPool returns a pool that runs batches on up to workers goroutines
// (the caller counts as one). workers < 1 is normalised to 1.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the configured worker cap.
func (p *Pool) Workers() int { return p.workers }

// Parallel reports whether the pool may use more than one goroutine.
func (p *Pool) Parallel() bool { return p.workers > 1 }

// Group is the inner-loop counterpart of Pool: a reusable fan-out for
// per-step data parallelism (e.g. the world's spatial shards), built so a
// hot path can dispatch the same batch shape every step without
// allocating. One Acquire claims budget tokens for a span of Do calls
// (typically the phases of one step) and Release returns them; with no
// tokens granted — the budget spent by outer run-level pools, which claim
// for whole batches and therefore win — Do degrades to an inline
// sequential loop, exactly the engine rule run-level parallelism follows.
//
// Do carries the same determinism contract as Pool.Run: items must be
// mutually independent, every item runs exactly once, and no scheduling
// decision is observable to fn — so results are bit-identical whether the
// group got 0 extra workers or many.
//
// A Group is not safe for concurrent use; it belongs to one stepping loop.
type Group struct {
	extra int // tokens currently claimed
	n     int
	fn    func(int)
	next  atomic.Int64
	wg    sync.WaitGroup
}

// Acquire claims up to workers-1 budget tokens for the coming Do calls.
// Call Release when the span ends; Acquire on a group already holding
// tokens is a bug.
func (g *Group) Acquire(workers int) {
	g.extra = TryAcquire(workers - 1)
}

// Workers returns how many goroutines Do will use (claimed tokens + the
// caller).
func (g *Group) Workers() int { return g.extra + 1 }

// Release returns the tokens claimed by Acquire.
func (g *Group) Release() {
	Release(g.extra)
	g.extra = 0
}

// Do invokes fn(i) for every i in [0, n) exactly once and blocks until all
// calls return, fanning out over the claimed workers. The group's own
// fields back the dispatch and workers are spawned as bound methods, so a
// steady-state Do is allocation-free.
func (g *Group) Do(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	extra := g.extra
	if extra > n-1 {
		extra = n - 1
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	g.n = n
	g.fn = fn
	g.next.Store(0)
	g.wg.Add(extra)
	for w := 0; w < extra; w++ {
		go g.work()
	}
	g.drain()
	g.wg.Wait()
	g.fn = nil
}

// drain is the caller's share of a Do batch.
func (g *Group) drain() {
	n := int64(g.n)
	for {
		i := g.next.Add(1) - 1
		if i >= n {
			return
		}
		g.fn(int(i))
	}
}

// work is one spawned worker's share of a Do batch.
func (g *Group) work() {
	defer g.wg.Done()
	g.drain()
}

// Run invokes fn(i) for every i in [0, n) exactly once and blocks until
// all calls return. Calls MUST be mutually independent: execution order is
// unspecified in parallel mode. Every item runs even if another item
// fails, so the set of executed calls never depends on scheduling; the
// returned error is the lowest-index failure, matching what a sequential
// loop that collected all errors would report.
//
// The pool claims up to workers-1 budget tokens for the duration of the
// batch and the caller participates as a worker, so an exhausted budget
// degrades Run to a plain sequential loop.
func (p *Pool) Run(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	extra := 0
	if workers > 1 {
		extra = TryAcquire(workers - 1)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	defer Release(extra)
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
