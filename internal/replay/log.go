// Log-driven replay: everything that turns a durable binary event log back
// into worlds and statistics without re-simulating. A recorded log carries
// three streams — events, per-step world deltas, and periodic full snapshot
// anchors — plus a self-describing header naming the scenario that produced
// it (RunMeta). From those, this file reconstructs the world at any
// recorded step (nearest anchor + delta tail), verifies a log against a
// fresh simulation step by step, and builds streaming summaries.
package replay

import (
	"encoding/json"
	"fmt"

	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/trace"
)

// RunMeta describes the run a log records — enough to regenerate the same
// world (and fault schedule) from scratch, which is what log verification
// does. It travels as the log header's Config blob.
type RunMeta struct {
	// Scenario names the harness: "routing" or "mapping".
	Scenario string `json:"scenario"`
	// Spec is the generator specification of the recorded world.
	Spec netgen.Spec `json:"spec"`
	// WorldSeed seeds world generation (and the fault preset).
	WorldSeed uint64 `json:"world_seed"`
	// Seed is the run seed (agent placement and per-agent streams).
	Seed uint64 `json:"seed"`
	// Steps is the recorded run length.
	Steps int `json:"steps"`
	// FaultPreset, when non-empty, names the injected fault preset
	// (faults.Preset), compiled for the generated world with WorldSeed.
	FaultPreset string `json:"fault_preset,omitempty"`
	// AnchorEvery is the snapshot-anchor cadence the recorder used.
	AnchorEvery int `json:"anchor_every"`
}

// NewLogHeader builds the binary log header for a run: the run seed plus
// the full RunMeta as the config blob (hashed by the writer).
func NewLogHeader(meta RunMeta) (trace.Header, error) {
	cfg, err := json.Marshal(meta)
	if err != nil {
		return trace.Header{}, fmt.Errorf("replay: encoding run meta: %w", err)
	}
	return trace.Header{BaseSeed: meta.Seed, Config: cfg}, nil
}

// MetaFromHeader decodes the RunMeta a log header carries.
func MetaFromHeader(h trace.Header) (RunMeta, error) {
	var m RunMeta
	if len(h.Config) == 0 {
		return m, fmt.Errorf("replay: log header carries no run configuration")
	}
	if err := json.Unmarshal(h.Config, &m); err != nil {
		return m, fmt.Errorf("replay: decoding run meta: %w", err)
	}
	return m, nil
}

// FreshWorld regenerates the recorded run's world — same spec, same seed,
// same fault schedule — exactly as the recording harness built it.
func (m RunMeta) FreshWorld() (*network.World, error) {
	w, err := netgen.Generate(m.Spec, m.WorldSeed)
	if err != nil {
		return nil, fmt.Errorf("replay: regenerating world: %w", err)
	}
	if m.FaultPreset != "" {
		sched, err := faults.Preset(m.FaultPreset, w.N(), w.Gateways(), m.Steps, m.WorldSeed)
		if err != nil {
			return nil, fmt.Errorf("replay: rebuilding fault schedule: %w", err)
		}
		w.SetFaults(sched)
	}
	return w, nil
}

// ReconstructAt rebuilds the world state at the given step from the log
// alone: the nearest snapshot anchor at or before step, plus the world
// deltas in between. The returned snapshot is exactly what the recording
// harness observed at that step; call .World() on it to get a live static
// world.
func ReconstructAt(lr *trace.LogReader, step int) (network.Snapshot, error) {
	var snap network.Snapshot
	idx, err := lr.AnchorIndexBefore(step)
	if err != nil {
		return snap, err
	}
	if idx < 0 {
		return snap, fmt.Errorf("replay: log has no snapshot anchor at or before step %d", step)
	}
	found := false
	err = lr.ScanFrom(idx, func(r trace.Record) error {
		switch r.Kind {
		case trace.RecordAnchor:
			if r.Step > step {
				return trace.ErrStop
			}
			if err := json.Unmarshal(r.Anchor, &snap); err != nil {
				return fmt.Errorf("replay: decoding anchor at step %d: %w", r.Step, err)
			}
			found = true
		case trace.RecordDelta:
			if r.Delta.Step > step {
				return trace.ErrStop
			}
			if found {
				applyDelta(&snap, r.Delta)
			}
		}
		return nil
	})
	if err != nil {
		return snap, err
	}
	if !found {
		return snap, fmt.Errorf("replay: log has no snapshot anchor at or before step %d", step)
	}
	return snap, nil
}

// applyDelta folds one recorded world delta into a snapshot: changed
// positions and radio ranges, plus — on fault transitions — the complete
// replacement fault state.
func applyDelta(s *network.Snapshot, d trace.WorldDelta) {
	for i, u := range d.Nodes {
		if int(u) < len(s.Positions) {
			s.Positions[u].X = d.X[i]
			s.Positions[u].Y = d.Y[i]
		}
	}
	for i, u := range d.RangeNodes {
		if int(u) < len(s.Ranges) {
			s.Ranges[u] = d.Ranges[i]
		}
	}
	if !d.FaultChanged {
		return
	}
	s.Dead = s.Dead[:0]
	for _, u := range d.Dead {
		s.Dead = append(s.Dead, network.NodeID(u))
	}
	if len(s.Dead) == 0 {
		s.Dead = nil
	}
	s.DownGateways = s.DownGateways[:0]
	for _, g := range d.DownGateways {
		s.DownGateways = append(s.DownGateways, network.NodeID(g))
	}
	if len(s.DownGateways) == 0 {
		s.DownGateways = nil
	}
	if d.Partition {
		x := d.PartitionX
		s.PartitionX = &x
	} else {
		s.PartitionX = nil
	}
}

// VerifyAt reconstructs the world at step from the log and compares it
// bit-for-bit against a fresh simulation of the recorded run advanced to
// the same step. A nil error means the reconstruction is exact.
func VerifyAt(lr *trace.LogReader, meta RunMeta, step int) error {
	rec, err := ReconstructAt(lr, step)
	if err != nil {
		return err
	}
	live, err := meta.FreshWorld()
	if err != nil {
		return err
	}
	for s := 0; s < step; s++ {
		live.Step()
	}
	if err := snapEqual(rec, live.Snapshot()); err != nil {
		return fmt.Errorf("replay: reconstruction at step %d diverges from fresh simulation: %w", step, err)
	}
	return nil
}

// VerifyLog replays the whole log in lockstep with a fresh simulation of
// the recorded run: every anchor must match the live world's snapshot
// byte for byte, and after every recorded world delta the running
// reconstruction must match the live world bit for bit. One pass over the
// log, one pass over the simulation. Returns the number of steps checked.
func VerifyLog(lr *trace.LogReader, meta RunMeta) (int, error) {
	live, err := meta.FreshWorld()
	if err != nil {
		return 0, err
	}
	stepped := 0
	advance := func(to int) {
		for stepped < to {
			live.Step()
			stepped++
		}
	}
	var cur network.Snapshot
	haveCur := false
	checked := 0
	err = lr.Scan(func(r trace.Record) error {
		switch r.Kind {
		case trace.RecordAnchor:
			advance(r.Step)
			liveBytes, err := json.Marshal(live.Snapshot())
			if err != nil {
				return err
			}
			if string(liveBytes) != string(r.Anchor) {
				return fmt.Errorf("replay: anchor at step %d does not match fresh simulation", r.Step)
			}
			if err := json.Unmarshal(r.Anchor, &cur); err != nil {
				return fmt.Errorf("replay: decoding anchor at step %d: %w", r.Step, err)
			}
			haveCur = true
			checked++
		case trace.RecordDelta:
			advance(r.Delta.Step)
			if !haveCur {
				return nil // deltas before the first anchor are unverifiable
			}
			applyDelta(&cur, r.Delta)
			if err := snapEqual(cur, live.Snapshot()); err != nil {
				return fmt.Errorf("replay: reconstruction diverges at step %d: %w", r.Delta.Step, err)
			}
			checked++
		}
		return nil
	})
	if err != nil {
		return checked, err
	}
	if checked == 0 {
		return 0, fmt.Errorf("replay: log carries no world stream to verify (recorded without a WorldSink?)")
	}
	return checked, nil
}

// snapEqual compares two snapshots bit for bit (float64 equality is exact
// here: both sides are untransformed IEEE values), reporting the first
// divergence.
func snapEqual(a, b network.Snapshot) error {
	if len(a.Positions) != len(b.Positions) {
		return fmt.Errorf("node count %d != %d", len(a.Positions), len(b.Positions))
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			return fmt.Errorf("node %d position %v != %v", i, a.Positions[i], b.Positions[i])
		}
	}
	if len(a.Ranges) != len(b.Ranges) {
		return fmt.Errorf("range count %d != %d", len(a.Ranges), len(b.Ranges))
	}
	for i := range a.Ranges {
		if a.Ranges[i] != b.Ranges[i] {
			return fmt.Errorf("node %d range %v != %v", i, a.Ranges[i], b.Ranges[i])
		}
	}
	if err := idsEqual("dead", a.Dead, b.Dead); err != nil {
		return err
	}
	if err := idsEqual("down gateway", a.DownGateways, b.DownGateways); err != nil {
		return err
	}
	switch {
	case (a.PartitionX == nil) != (b.PartitionX == nil):
		return fmt.Errorf("partition active %v != %v", a.PartitionX != nil, b.PartitionX != nil)
	case a.PartitionX != nil && *a.PartitionX != *b.PartitionX:
		return fmt.Errorf("partition cut %v != %v", *a.PartitionX, *b.PartitionX)
	}
	return nil
}

func idsEqual(what string, a, b []network.NodeID) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s count %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%s list diverges at %d: %d != %d", what, i, a[i], b[i])
		}
	}
	return nil
}

// SummarizeLog builds a Summary from a binary log in one streaming pass —
// events feed the builder as they decode; the full event stream is never
// materialised.
func SummarizeLog(lr *trace.LogReader) (Summary, error) {
	b := NewSummaryBuilder()
	err := lr.Scan(func(r trace.Record) error {
		if r.Kind == trace.RecordEvent {
			b.Add(r.Event)
		}
		return nil
	})
	return b.Summary(), err
}
