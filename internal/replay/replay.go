// Package replay turns a recorded simulation trace back into analysable
// structure: per-kind tallies, meeting-size distributions, per-agent
// paths, node heat, and measurement curves. It is the analysis layer
// behind cmd/tracestat and a building block for custom post-processing.
package replay

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Summary condenses a trace.
type Summary struct {
	// Events is the total event count, Steps the number of simulated
	// steps covered (last step + 1).
	Events, Steps int
	// ByKind tallies events per kind.
	ByKind map[trace.Kind]int
	// MeetingSizes maps meeting size (number of co-located agents) to
	// occurrence count.
	MeetingSizes map[int]int
	// AgentMoves maps agent ID to its migration count.
	AgentMoves map[int32]int
	// Measures is the primary measurement curve: the values of the
	// first-seen measure name, in recorded order.
	Measures []float64
	// MeasureName is the Extra label of the primary measurements (if any).
	MeasureName string
	// MeasureNames lists every distinct measure name in first-seen order —
	// harnesses emit several per step (e.g. "connectivity", "end-to-end",
	// "ideal").
	MeasureNames []string
	// MeasuresByName holds each named measurement curve in recorded order.
	MeasuresByName map[string][]float64
	// FinishStep is the step of the finish event, or -1.
	FinishStep int
}

// Summarize scans events (in recorded order) into a Summary.
func Summarize(events []trace.Event) Summary {
	s := Summary{
		ByKind:         make(map[trace.Kind]int),
		MeetingSizes:   make(map[int]int),
		AgentMoves:     make(map[int32]int),
		MeasuresByName: make(map[string][]float64),
		FinishStep:     -1,
	}
	for _, e := range events {
		s.Events++
		if e.Step+1 > s.Steps {
			s.Steps = e.Step + 1
		}
		s.ByKind[e.Kind]++
		switch e.Kind {
		case trace.KindMeet:
			s.MeetingSizes[int(e.Value)]++
		case trace.KindMove:
			s.AgentMoves[e.Agent]++
		case trace.KindMeasure:
			if s.MeasureName == "" {
				s.MeasureName = e.Extra
			}
			if e.Extra == s.MeasureName {
				s.Measures = append(s.Measures, e.Value)
			}
			if _, seen := s.MeasuresByName[e.Extra]; !seen {
				s.MeasureNames = append(s.MeasureNames, e.Extra)
			}
			s.MeasuresByName[e.Extra] = append(s.MeasuresByName[e.Extra], e.Value)
		case trace.KindFinish:
			s.FinishStep = e.Step
		}
	}
	return s
}

// AgentPath reconstructs the node sequence one agent occupied, starting
// at its first recorded position. Steps where the agent stayed put do not
// appear (only moves are traced).
func AgentPath(events []trace.Event, agent int32) []int32 {
	var path []int32
	for _, e := range events {
		if e.Kind != trace.KindMove || e.Agent != agent {
			continue
		}
		if len(path) == 0 {
			path = append(path, e.Node)
		}
		path = append(path, e.To)
	}
	return path
}

// NodeHeat returns, for each node in [0, n), how often agents arrived on
// it, normalised so the hottest node is 1. Nodes never visited are 0.
func NodeHeat(events []trace.Event, n int) []float64 {
	counts := make([]float64, n)
	maxC := 0.0
	for _, e := range events {
		if e.Kind != trace.KindMove || int(e.To) >= n || e.To < 0 {
			continue
		}
		counts[e.To]++
		if counts[e.To] > maxC {
			maxC = counts[e.To]
		}
	}
	if maxC > 0 {
		for i := range counts {
			counts[i] /= maxC
		}
	}
	return counts
}

// DepositsPerStep returns the number of route deposits in each step.
func DepositsPerStep(events []trace.Event) []int {
	var out []int
	for _, e := range events {
		if e.Kind != trace.KindDeposit {
			continue
		}
		for len(out) <= e.Step {
			out = append(out, 0)
		}
		out[e.Step]++
	}
	return out
}

// MeetingSizesSorted returns the distribution as (size, count) pairs in
// ascending size order.
func (s Summary) MeetingSizesSorted() (sizes []int, counts []int) {
	for sz := range s.MeetingSizes {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)
	counts = make([]int, len(sizes))
	for i, sz := range sizes {
		counts[i] = s.MeetingSizes[sz]
	}
	return sizes, counts
}

// MoveStats returns min/max/total migrations across agents.
func (s Summary) MoveStats() (agents, total, min, max int) {
	min = -1
	for _, m := range s.AgentMoves {
		agents++
		total += m
		if min < 0 || m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if min < 0 {
		min = 0
	}
	return agents, total, min, max
}

// String renders a compact one-line description.
func (s Summary) String() string {
	return fmt.Sprintf("%d events over %d steps (%d moves, %d meetings, %d deposits, %d measures)",
		s.Events, s.Steps, s.ByKind[trace.KindMove], s.ByKind[trace.KindMeet],
		s.ByKind[trace.KindDeposit], s.ByKind[trace.KindMeasure])
}
