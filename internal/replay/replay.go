// Package replay turns a recorded simulation trace back into analysable
// structure: per-kind tallies, meeting-size distributions, per-agent
// paths, node heat, and measurement curves. It is the analysis layer
// behind cmd/tracestat and a building block for custom post-processing.
package replay

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Summary condenses a trace.
type Summary struct {
	// Events is the total event count, Steps the number of simulated
	// steps covered (last step + 1).
	Events, Steps int
	// ByKind tallies events per kind.
	ByKind map[trace.Kind]int
	// MeetingSizes maps meeting size (number of co-located agents) to
	// occurrence count.
	MeetingSizes map[int]int
	// AgentMoves maps agent ID to its migration count.
	AgentMoves map[int32]int
	// Measures is the primary measurement curve: the values of the
	// first-seen measure name, in recorded order.
	Measures []float64
	// MeasureName is the Extra label of the primary measurements (if any).
	MeasureName string
	// MeasureNames lists every distinct measure name in first-seen order —
	// harnesses emit several per step (e.g. "connectivity", "end-to-end",
	// "ideal").
	MeasureNames []string
	// MeasuresByName holds each named measurement curve in recorded order.
	MeasuresByName map[string][]float64
	// DepositsPerStep is the number of route deposits in each step
	// (length = last step with a deposit + 1; empty without deposits).
	DepositsPerStep []int
	// FaultSteps lists the steps at which fault events fired, in recorded
	// order (one per fault epoch the harness reacted to).
	FaultSteps []int
	// FinishStep is the step of the finish event, or -1.
	FinishStep int
}

// SummaryBuilder accumulates a Summary one event at a time — the streaming
// form of Summarize. It never materialises the event stream, so it scales
// to logs far larger than memory: feed it from trace.LogReader.Scan (or
// any ordered event source) and call Summary when done. The zero value is
// not ready; use NewSummaryBuilder.
type SummaryBuilder struct {
	s Summary
}

// NewSummaryBuilder returns an empty builder.
func NewSummaryBuilder() *SummaryBuilder {
	return &SummaryBuilder{s: Summary{
		ByKind:         make(map[trace.Kind]int),
		MeetingSizes:   make(map[int]int),
		AgentMoves:     make(map[int32]int),
		MeasuresByName: make(map[string][]float64),
		FinishStep:     -1,
	}}
}

// Add folds one event into the summary. Events must arrive in recorded
// order.
func (b *SummaryBuilder) Add(e trace.Event) {
	s := &b.s
	s.Events++
	if e.Step+1 > s.Steps {
		s.Steps = e.Step + 1
	}
	s.ByKind[e.Kind]++
	switch e.Kind {
	case trace.KindMeet:
		s.MeetingSizes[int(e.Value)]++
	case trace.KindMove:
		s.AgentMoves[e.Agent]++
	case trace.KindDeposit:
		for len(s.DepositsPerStep) <= e.Step {
			s.DepositsPerStep = append(s.DepositsPerStep, 0)
		}
		s.DepositsPerStep[e.Step]++
	case trace.KindMeasure:
		if s.MeasureName == "" {
			s.MeasureName = e.Extra
		}
		if e.Extra == s.MeasureName {
			s.Measures = append(s.Measures, e.Value)
		}
		if _, seen := s.MeasuresByName[e.Extra]; !seen {
			s.MeasureNames = append(s.MeasureNames, e.Extra)
		}
		s.MeasuresByName[e.Extra] = append(s.MeasuresByName[e.Extra], e.Value)
	case trace.KindFault:
		s.FaultSteps = append(s.FaultSteps, e.Step)
	case trace.KindFinish:
		s.FinishStep = e.Step
	}
}

// Summary returns the accumulated summary. The builder may keep absorbing
// events afterwards; the returned value shares the builder's storage.
func (b *SummaryBuilder) Summary() Summary { return b.s }

// Summarize scans events (in recorded order) into a Summary.
func Summarize(events []trace.Event) Summary {
	b := NewSummaryBuilder()
	for _, e := range events {
		b.Add(e)
	}
	return b.Summary()
}

// Recovery computes post-fault reconvergence statistics for the named
// measurement curve (Summary.MeasureName when name is empty), using the
// recorded fault steps. The harness emits its fault event at the top of
// the step on which it reacts, before that step's measurement settles the
// response — so the first post-fault measurement the live harness accounts
// is the step after the recorded one, and the recorded step itself is the
// baseline. Shifting each fault step by +1 reproduces the live harness's
// Recovery accounting bit for bit (pinned by TestLogRoundTripFaultedRuns).
func (s Summary) Recovery(name string, tol float64) (stats.RecoveryStats, error) {
	if name == "" {
		name = s.MeasureName
	}
	series, ok := s.MeasuresByName[name]
	if !ok {
		return stats.RecoveryStats{}, fmt.Errorf("replay: no measurement curve named %q in trace", name)
	}
	shifted := make([]int, len(s.FaultSteps))
	for i, fs := range s.FaultSteps {
		shifted[i] = fs + 1
	}
	return stats.Recovery(series, shifted, tol), nil
}

// AgentPath reconstructs the node sequence one agent occupied, starting
// at its first recorded position. Steps where the agent stayed put do not
// appear (only moves are traced).
func AgentPath(events []trace.Event, agent int32) []int32 {
	var path []int32
	for _, e := range events {
		if e.Kind != trace.KindMove || e.Agent != agent {
			continue
		}
		if len(path) == 0 {
			path = append(path, e.Node)
		}
		path = append(path, e.To)
	}
	return path
}

// NodeHeat returns, for each node in [0, n), how often agents arrived on
// it, normalised so the hottest node is 1. Nodes never visited are 0.
func NodeHeat(events []trace.Event, n int) []float64 {
	counts := make([]float64, n)
	maxC := 0.0
	for _, e := range events {
		if e.Kind != trace.KindMove || int(e.To) >= n || e.To < 0 {
			continue
		}
		counts[e.To]++
		if counts[e.To] > maxC {
			maxC = counts[e.To]
		}
	}
	if maxC > 0 {
		for i := range counts {
			counts[i] /= maxC
		}
	}
	return counts
}

// DepositsPerStep returns the number of route deposits in each step.
func DepositsPerStep(events []trace.Event) []int {
	var out []int
	for _, e := range events {
		if e.Kind != trace.KindDeposit {
			continue
		}
		for len(out) <= e.Step {
			out = append(out, 0)
		}
		out[e.Step]++
	}
	return out
}

// MeetingSizesSorted returns the distribution as (size, count) pairs in
// ascending size order.
func (s Summary) MeetingSizesSorted() (sizes []int, counts []int) {
	for sz := range s.MeetingSizes {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)
	counts = make([]int, len(sizes))
	for i, sz := range sizes {
		counts[i] = s.MeetingSizes[sz]
	}
	return sizes, counts
}

// MoveStats returns min/max/total migrations across agents.
func (s Summary) MoveStats() (agents, total, min, max int) {
	min = -1
	for _, m := range s.AgentMoves {
		agents++
		total += m
		if min < 0 || m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if min < 0 {
		min = 0
	}
	return agents, total, min, max
}

// String renders a compact one-line description.
func (s Summary) String() string {
	return fmt.Sprintf("%d events over %d steps (%d moves, %d meetings, %d deposits, %d measures)",
		s.Events, s.Steps, s.ByKind[trace.KindMove], s.ByKind[trace.KindMeet],
		s.ByKind[trace.KindDeposit], s.ByKind[trace.KindMeasure])
}
