package replay_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/replay"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/trace"
)

// testSpec is a small dynamic routing world, fast enough to round-trip
// many times per test run.
func testSpec() netgen.Spec {
	spec := netgen.Routing250()
	spec.N = 60
	spec.TargetEdges = 400
	spec.Gateways = 4
	return spec
}

// recordRun executes one sequential routing run recorded into an in-memory
// binary log, returning the log bytes, its meta, and the live result.
func recordRun(t *testing.T, meta replay.RunMeta) ([]byte, routing.Result) {
	t.Helper()
	w, err := meta.FreshWorld()
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	hdr, err := replay.NewLogHeader(meta)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	lw, err := trace.NewLogWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	sc := routing.Scenario{
		Agents:      20,
		Steps:       meta.Steps,
		Workers:     1,
		Tracer:      lw,
		AnchorEvery: meta.AnchorEvery,
	}
	if meta.FaultPreset != "" {
		sched, err := faults.Preset(meta.FaultPreset, w.N(), w.Gateways(), meta.Steps, meta.WorldSeed)
		if err != nil {
			t.Fatalf("preset: %v", err)
		}
		sc.Faults = sched
	}
	res, err := routing.Run(w, sc, meta.Seed)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := lw.Close(); err != nil {
		t.Fatalf("log close: %v", err)
	}
	return buf.Bytes(), res
}

func openLog(t *testing.T, data []byte) (*trace.LogReader, replay.RunMeta) {
	t.Helper()
	lr, err := trace.NewLogReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	meta, err := replay.MetaFromHeader(lr.Header())
	if err != nil {
		t.Fatal(err)
	}
	return lr, meta
}

// TestLogRoundTripDynamicRouting is the restore-correctness gate for
// unfaulted runs: the full log verifies in lockstep against a fresh
// simulation, any individual step reconstructs bit-identically, and the
// log-derived measurement curves equal the live run's series exactly.
func TestLogRoundTripDynamicRouting(t *testing.T) {
	meta := replay.RunMeta{
		Scenario:    "routing",
		Spec:        testSpec(),
		WorldSeed:   1,
		Seed:        7,
		Steps:       80,
		AnchorEvery: 25,
	}
	data, res := recordRun(t, meta)
	lr, gotMeta := openLog(t, data)
	if gotMeta != meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}

	checked, err := replay.VerifyLog(lr, gotMeta)
	if err != nil {
		t.Fatalf("VerifyLog: %v", err)
	}
	// One check per recorded delta plus one per anchor; a dynamic world
	// moves every step.
	if checked < meta.Steps {
		t.Fatalf("VerifyLog checked only %d records over %d steps", checked, meta.Steps)
	}

	for _, step := range []int{0, 1, 24, 25, 26, 57, 79, 80} {
		if err := replay.VerifyAt(lr, gotMeta, step); err != nil {
			t.Fatalf("VerifyAt(%d): %v", step, err)
		}
	}

	sum, err := replay.SummarizeLog(lr)
	if err != nil {
		t.Fatalf("SummarizeLog: %v", err)
	}
	conn := sum.MeasuresByName["connectivity"]
	if len(conn) != len(res.Connectivity) {
		t.Fatalf("log connectivity curve has %d points, live %d", len(conn), len(res.Connectivity))
	}
	for i := range conn {
		if math.Float64bits(conn[i]) != math.Float64bits(res.Connectivity[i]) {
			t.Fatalf("connectivity[%d]: log %v != live %v", i, conn[i], res.Connectivity[i])
		}
	}
	e2e := sum.MeasuresByName["end-to-end"]
	for i := range e2e {
		if math.Float64bits(e2e[i]) != math.Float64bits(res.EndToEnd[i]) {
			t.Fatalf("end-to-end[%d]: log %v != live %v", i, e2e[i], res.EndToEnd[i])
		}
	}
}

// TestLogRoundTripFaultedRuns round-trips every structural fault preset
// through the binary log and asserts (a) the reconstructed world matches
// the live faulted run bit for bit at every step, including snapshot v2
// fault state, and (b) the recovery statistics recomputed purely from the
// log equal the live harness's bit for bit.
func TestLogRoundTripFaultedRuns(t *testing.T) {
	for _, preset := range []string{"churn", "gwfail", "partition"} {
		t.Run(preset, func(t *testing.T) {
			meta := replay.RunMeta{
				Scenario:    "routing",
				Spec:        testSpec(),
				WorldSeed:   3,
				Seed:        11,
				Steps:       120,
				FaultPreset: preset,
				AnchorEvery: 30,
			}
			data, res := recordRun(t, meta)
			lr, gotMeta := openLog(t, data)

			if _, err := replay.VerifyLog(lr, gotMeta); err != nil {
				t.Fatalf("VerifyLog: %v", err)
			}
			sum, err := replay.SummarizeLog(lr)
			if err != nil {
				t.Fatalf("SummarizeLog: %v", err)
			}
			if len(sum.FaultSteps) == 0 {
				t.Fatal("faulted run logged no fault events")
			}
			// Spot-check reconstruction right at the fault transitions the
			// log recorded, plus the run's endpoints.
			probes := append([]int{0, meta.Steps / 2, meta.Steps}, sum.FaultSteps...)
			for _, step := range probes {
				if err := replay.VerifyAt(lr, gotMeta, step); err != nil {
					t.Fatalf("VerifyAt(%d): %v", step, err)
				}
			}
			gotRec, err := sum.Recovery("connectivity", 0.02)
			if err != nil {
				t.Fatal(err)
			}
			compareRecovery(t, "connectivity", gotRec, res.Recovery)
			gotE2E, err := sum.Recovery("end-to-end", 0.02)
			if err != nil {
				t.Fatal(err)
			}
			compareRecovery(t, "end-to-end", gotE2E, res.RecoveryEndToEnd)
		})
	}
}

// compareRecovery asserts two recovery measurements are bit-identical.
func compareRecovery(t *testing.T, what string, got, want stats.RecoveryStats) {
	t.Helper()
	if got.Recovered != want.Recovered || got.Censored != want.Censored {
		t.Fatalf("%s: recovered/censored %d/%d, live %d/%d",
			what, got.Recovered, got.Censored, want.Recovered, want.Censored)
	}
	if math.Float64bits(got.MeanSteps) != math.Float64bits(want.MeanSteps) {
		t.Fatalf("%s: MeanSteps %v != live %v", what, got.MeanSteps, want.MeanSteps)
	}
	if math.Float64bits(got.Floor) != math.Float64bits(want.Floor) {
		t.Fatalf("%s: Floor %v != live %v", what, got.Floor, want.Floor)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("%s: %d recovery events, live %d", what, len(got.Events), len(want.Events))
	}
	for i := range got.Events {
		g, w := got.Events[i], want.Events[i]
		if g.Step != w.Step || g.Recovered != w.Recovered || g.Steps != w.Steps ||
			math.Float64bits(g.Baseline) != math.Float64bits(w.Baseline) ||
			math.Float64bits(g.Floor) != math.Float64bits(w.Floor) {
			t.Fatalf("%s: recovery event %d: log %+v != live %+v", what, i, g, w)
		}
	}
}

// TestSummaryBuilderMatchesSummarize pins the streaming builder against
// the slice-based Summarize on a recorded event stream.
func TestSummaryBuilderMatchesSummarize(t *testing.T) {
	meta := replay.RunMeta{
		Scenario:    "routing",
		Spec:        testSpec(),
		WorldSeed:   1,
		Seed:        7,
		Steps:       40,
		AnchorEvery: 20,
	}
	data, _ := recordRun(t, meta)
	lr, _ := openLog(t, data)

	var events []trace.Event
	b := replay.NewSummaryBuilder()
	err := lr.Scan(func(r trace.Record) error {
		if r.Kind == trace.RecordEvent {
			events = append(events, r.Event)
			b.Add(r.Event)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := replay.Summarize(events)
	stream := b.Summary()
	if stream.String() != batch.String() {
		t.Fatalf("streaming summary %q != batch %q", stream.String(), batch.String())
	}
	if len(stream.Measures) != len(batch.Measures) || stream.MeasureName != batch.MeasureName {
		t.Fatal("streaming and batch measure curves differ")
	}
	for i := range stream.Measures {
		if stream.Measures[i] != batch.Measures[i] {
			t.Fatalf("measure %d differs", i)
		}
	}
	if len(stream.DepositsPerStep) != len(batch.DepositsPerStep) {
		t.Fatal("deposit curves differ in length")
	}
	for i := range stream.DepositsPerStep {
		if stream.DepositsPerStep[i] != batch.DepositsPerStep[i] {
			t.Fatalf("deposits[%d] differ", i)
		}
	}
}
