package replay_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/replay"
)

// TestReconstructAtAnchorBoundaries pins the off-by-one behaviour of
// anchor-based reconstruction: for anchor cadence K, steps K-1 (last
// delta before the anchor), K (the anchor itself), and K+1 (first delta
// after it) must all reconstruct bit-identically to a fresh lockstep
// simulation — at K=1 (anchor before every step), at the run endpoints,
// and across fault transitions that land next to anchors.
func TestReconstructAtAnchorBoundaries(t *testing.T) {
	for _, tc := range []struct {
		preset string
		every  int
	}{
		{"", 1},
		{"churn", 25},
		{"partition", 30},
	} {
		name := fmt.Sprintf("preset=%s/every=%d", tc.preset, tc.every)
		if tc.preset == "" {
			name = fmt.Sprintf("clean/every=%d", tc.every)
		}
		t.Run(name, func(t *testing.T) {
			const steps = 60
			meta := replay.RunMeta{
				Scenario:    "routing",
				Spec:        testSpec(),
				WorldSeed:   5,
				Seed:        9,
				Steps:       steps,
				FaultPreset: tc.preset,
				AnchorEvery: tc.every,
			}
			data, _ := recordRun(t, meta)
			lr, gotMeta := openLog(t, data)

			probes := map[int]bool{0: true, 1: true, steps - 1: true, steps: true}
			for b := tc.every; b <= steps; b += tc.every {
				for _, s := range []int{b - 1, b, b + 1} {
					if s >= 0 && s <= steps {
						probes[s] = true
					}
				}
			}
			for s := range probes {
				if err := replay.VerifyAt(lr, gotMeta, s); err != nil {
					t.Errorf("VerifyAt(%d): %v", s, err)
				}
			}

			// The world is dynamic every step, so reconstruction across an
			// anchor boundary must not stick to the anchor state: K and K+1
			// have to differ.
			atAnchor, err := replay.ReconstructAt(lr, tc.every)
			if err != nil {
				t.Fatalf("ReconstructAt(%d): %v", tc.every, err)
			}
			after, err := replay.ReconstructAt(lr, tc.every+1)
			if err != nil {
				t.Fatalf("ReconstructAt(%d): %v", tc.every+1, err)
			}
			a, _ := json.Marshal(atAnchor)
			b, _ := json.Marshal(after)
			if string(a) == string(b) {
				t.Errorf("reconstruction at step %d equals step %d: the post-anchor delta was dropped",
					tc.every, tc.every+1)
			}
		})
	}
}

// TestReconstructAtBeforeFirstAnchor pins the error path: a step before
// any anchor (negative) must fail loudly instead of returning a zero
// snapshot.
func TestReconstructAtBeforeFirstAnchor(t *testing.T) {
	meta := replay.RunMeta{
		Scenario:    "routing",
		Spec:        testSpec(),
		WorldSeed:   5,
		Seed:        9,
		Steps:       20,
		AnchorEvery: 10,
	}
	data, _ := recordRun(t, meta)
	lr, _ := openLog(t, data)
	if _, err := replay.ReconstructAt(lr, -1); err == nil {
		t.Fatal("ReconstructAt(-1) returned a snapshot from a log whose first anchor is step 0")
	}
}
