package replay

import (
	"testing"

	"repro/internal/trace"
)

func sampleEvents() []trace.Event {
	return []trace.Event{
		{Step: 0, Kind: trace.KindMeet, Node: 5, Value: 2},
		{Step: 0, Kind: trace.KindMove, Agent: 0, Node: 5, To: 6},
		{Step: 0, Kind: trace.KindMove, Agent: 1, Node: 5, To: 7},
		{Step: 0, Kind: trace.KindMeasure, Value: 0.1, Extra: "connectivity"},
		{Step: 1, Kind: trace.KindMove, Agent: 0, Node: 6, To: 7},
		{Step: 1, Kind: trace.KindDeposit, Agent: 0, Node: 7, To: 2, Value: 3},
		{Step: 1, Kind: trace.KindMeasure, Value: 0.4, Extra: "connectivity"},
		{Step: 2, Kind: trace.KindMeet, Node: 7, Value: 3},
		{Step: 2, Kind: trace.KindDeposit, Agent: 1, Node: 7, To: 2, Value: 2},
		{Step: 2, Kind: trace.KindMeasure, Value: 0.8, Extra: "connectivity"},
		{Step: 2, Kind: trace.KindFinish},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents())
	if s.Events != 11 || s.Steps != 3 {
		t.Fatalf("events=%d steps=%d", s.Events, s.Steps)
	}
	if s.ByKind[trace.KindMove] != 3 || s.ByKind[trace.KindMeet] != 2 {
		t.Fatalf("byKind = %v", s.ByKind)
	}
	if s.MeetingSizes[2] != 1 || s.MeetingSizes[3] != 1 {
		t.Fatalf("meeting sizes = %v", s.MeetingSizes)
	}
	if s.AgentMoves[0] != 2 || s.AgentMoves[1] != 1 {
		t.Fatalf("agent moves = %v", s.AgentMoves)
	}
	if len(s.Measures) != 3 || s.Measures[2] != 0.8 {
		t.Fatalf("measures = %v", s.Measures)
	}
	if s.MeasureName != "connectivity" {
		t.Fatalf("measure name = %q", s.MeasureName)
	}
	if s.FinishStep != 2 {
		t.Fatalf("finish = %d", s.FinishStep)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || s.Steps != 0 || s.FinishStep != -1 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestAgentPath(t *testing.T) {
	path := AgentPath(sampleEvents(), 0)
	want := []int32{5, 6, 7}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if got := AgentPath(sampleEvents(), 99); got != nil {
		t.Fatalf("unknown agent path = %v", got)
	}
}

func TestNodeHeat(t *testing.T) {
	heat := NodeHeat(sampleEvents(), 10)
	// Node 7 was arrived at twice (hottest), node 6 once.
	if heat[7] != 1 {
		t.Fatalf("hottest node heat = %v", heat[7])
	}
	if heat[6] != 0.5 {
		t.Fatalf("node 6 heat = %v", heat[6])
	}
	if heat[0] != 0 {
		t.Fatalf("unvisited heat = %v", heat[0])
	}
	// Out-of-range destinations are ignored.
	heat = NodeHeat([]trace.Event{{Kind: trace.KindMove, To: 50}}, 10)
	for _, h := range heat {
		if h != 0 {
			t.Fatal("out-of-range move counted")
		}
	}
}

func TestDepositsPerStep(t *testing.T) {
	d := DepositsPerStep(sampleEvents())
	if len(d) != 3 || d[0] != 0 || d[1] != 1 || d[2] != 1 {
		t.Fatalf("deposits = %v", d)
	}
	if got := DepositsPerStep(nil); len(got) != 0 {
		t.Fatalf("empty deposits = %v", got)
	}
}

func TestMeetingSizesSorted(t *testing.T) {
	s := Summarize(sampleEvents())
	sizes, counts := s.MeetingSizesSorted()
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestMoveStats(t *testing.T) {
	s := Summarize(sampleEvents())
	agents, total, min, max := s.MoveStats()
	if agents != 2 || total != 3 || min != 1 || max != 2 {
		t.Fatalf("stats = %d %d %d %d", agents, total, min, max)
	}
	empty := Summarize(nil)
	if _, _, min, _ := empty.MoveStats(); min != 0 {
		t.Fatal("empty min should be 0")
	}
}
