package trace

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// sampleEvents exercises every encoder path: known and custom kinds,
// sparse fields, repeated Extra strings (interning), step deltas including
// a repeat and a jump.
func sampleEvents() []Event {
	return []Event{
		{Step: 0, Kind: KindMove, Agent: 3, Node: 10, To: 11},
		{Step: 0, Kind: KindMeet, Node: 11, Value: 2},
		{Step: 1, Kind: KindDeposit, Agent: 3, Node: 11, To: 0, Value: 4},
		{Step: 1, Kind: KindMeasure, Value: 0.52, Extra: "connectivity"},
		{Step: 1, Kind: KindMeasure, Value: 0.11, Extra: "end-to-end"},
		{Step: 2, Kind: KindMeasure, Value: 0.53, Extra: "connectivity"},
		{Step: 7, Kind: KindFault, Value: 3, Extra: "node-down"},
		{Step: 9, Kind: Kind("custom-kind"), Agent: 1, Extra: "custom-extra"},
		{Step: 9, Kind: KindFinish},
	}
}

func writeLog(t *testing.T, hdr Header, emit func(*LogWriter)) []byte {
	t.Helper()
	var buf bytes.Buffer
	lw, err := NewLogWriter(&buf, hdr)
	if err != nil {
		t.Fatalf("NewLogWriter: %v", err)
	}
	emit(lw)
	if err := lw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func readAll(t *testing.T, data []byte) (*LogReader, []Record) {
	t.Helper()
	lr, err := NewLogReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewLogReader: %v", err)
	}
	var recs []Record
	err = lr.Scan(func(r Record) error {
		// Deep-copy: Delta slices and Anchor alias reader scratch.
		c := r
		c.Delta.Nodes = append([]int32(nil), r.Delta.Nodes...)
		c.Delta.X = append([]float64(nil), r.Delta.X...)
		c.Delta.Y = append([]float64(nil), r.Delta.Y...)
		c.Delta.RangeNodes = append([]int32(nil), r.Delta.RangeNodes...)
		c.Delta.Ranges = append([]float64(nil), r.Delta.Ranges...)
		c.Delta.Dead = append([]int32(nil), r.Delta.Dead...)
		c.Delta.DownGateways = append([]int32(nil), r.Delta.DownGateways...)
		c.Anchor = append([]byte(nil), r.Anchor...)
		recs = append(recs, c)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return lr, recs
}

func TestBinlogEventRoundTrip(t *testing.T) {
	events := sampleEvents()
	data := writeLog(t, Header{BaseSeed: 7, Config: []byte(`{"x":1}`)}, func(lw *LogWriter) {
		for _, e := range events {
			lw.Emit(e)
		}
	})
	lr, recs := readAll(t, data)
	if lr.Header().BaseSeed != 7 {
		t.Fatalf("header base seed = %d, want 7", lr.Header().BaseSeed)
	}
	if lr.Header().ConfigHash != ConfigHashOf([]byte(`{"x":1}`)) {
		t.Fatalf("header config hash not derived from config")
	}
	if len(recs) != len(events) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(events))
	}
	for i, r := range recs {
		if r.Kind != RecordEvent {
			t.Fatalf("record %d kind = %v, want event", i, r.Kind)
		}
		if r.Event != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, r.Event, events[i])
		}
	}
}

func TestBinlogDeterministicBytes(t *testing.T) {
	emit := func(lw *LogWriter) {
		for _, e := range sampleEvents() {
			lw.Emit(e)
		}
		lw.EmitAnchor(10, []byte(`{"version":2}`))
		lw.EmitWorld(WorldDelta{Step: 11, Nodes: []int32{1, 4}, X: []float64{0.5, 1.5}, Y: []float64{2.5, 3.5}})
	}
	hdr := Header{BaseSeed: 3, Config: []byte(`{"s":"a"}`)}
	a := writeLog(t, hdr, emit)
	b := writeLog(t, hdr, emit)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different log bytes (%d vs %d)", len(a), len(b))
	}
}

func TestBinlogWorldStreamRoundTrip(t *testing.T) {
	anchor0 := []byte(`{"version":2,"positions":[]}`)
	anchor2 := []byte(`{"version":2,"positions":[{}]}`)
	d1 := WorldDelta{Step: 1, Nodes: []int32{0, 2}, X: []float64{1, 2}, Y: []float64{3, 4},
		RangeNodes: []int32{2}, Ranges: []float64{9.5}}
	d2 := WorldDelta{Step: 2, Nodes: []int32{2}, X: []float64{2.25}, Y: []float64{4.5},
		FaultChanged: true, Dead: []int32{5, 7}, DownGateways: []int32{1}, Partition: true, PartitionX: 42.5}
	d3 := WorldDelta{Step: 3, Nodes: []int32{2}, X: []float64{2.5}, Y: []float64{4.75},
		FaultChanged: true}
	data := writeLog(t, Header{}, func(lw *LogWriter) {
		lw.EmitAnchor(0, anchor0)
		lw.EmitWorld(d1)
		lw.EmitAnchor(2, anchor2)
		lw.EmitWorld(d2)
		lw.EmitWorld(d3)
	})
	lr, recs := readAll(t, data)
	want := []Record{
		{Kind: RecordAnchor, Step: 0, Anchor: anchor0},
		{Kind: RecordDelta, Delta: d1},
		{Kind: RecordAnchor, Step: 2, Anchor: anchor2},
		{Kind: RecordDelta, Delta: d2},
		{Kind: RecordDelta, Delta: d3},
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if fmt.Sprintf("%+v", recs[i]) != fmt.Sprintf("%+v", want[i]) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, recs[i], want[i])
		}
	}

	// Seeking: the same tail must decode identically when the scan starts
	// at the second anchor instead of the file start (XOR chain reset).
	idx, err := lr.AnchorIndexBefore(3)
	if err != nil {
		t.Fatalf("AnchorIndexBefore: %v", err)
	}
	blocks, _ := lr.Blocks()
	if blocks[idx].First != 2 {
		t.Fatalf("nearest anchor to step 3 observes step %d, want 2", blocks[idx].First)
	}
	var tail []string
	err = lr.ScanFrom(idx, func(r Record) error {
		tail = append(tail, fmt.Sprintf("%+v", r))
		return nil
	})
	if err != nil {
		t.Fatalf("ScanFrom: %v", err)
	}
	if len(tail) != 3 {
		t.Fatalf("tail decoded %d records, want 3", len(tail))
	}
	for i, w := range want[2:] {
		if tail[i] != fmt.Sprintf("%+v", w) {
			t.Fatalf("tail record %d:\n got %s\nwant %+v", i, tail[i], w)
		}
	}
}

func TestBinlogSeekRequiresAnchor(t *testing.T) {
	data := writeLog(t, Header{}, func(lw *LogWriter) {
		lw.Emit(Event{Step: 0, Kind: KindMove})
		lw.EmitAnchor(1, []byte(`{}`))
	})
	lr, err := NewLogReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := lr.ScanFrom(0, func(Record) error { return nil }); err != nil {
		t.Fatalf("ScanFrom(0) should always be allowed: %v", err)
	}
	// Block 0 holds events, block 1 the anchor: starting mid-file at a
	// non-anchor block must be refused (the XOR chain state is unknown).
	blocks, _ := lr.Blocks()
	for i, b := range blocks {
		if b.Type != blockAnchor && i > 0 {
			if err := lr.ScanFrom(i, func(Record) error { return nil }); err == nil {
				t.Fatalf("ScanFrom(%d) on a non-anchor block succeeded", i)
			}
		}
	}
}

// TestBinlogCorruption: truncation, bit flips in the payload (CRC), and a
// future format version must all surface as errors — never panics, never
// silently wrong data.
func TestBinlogCorruption(t *testing.T) {
	data := writeLog(t, Header{BaseSeed: 1}, func(lw *LogWriter) {
		for _, e := range sampleEvents() {
			lw.Emit(e)
		}
		lw.EmitAnchor(10, []byte(`{"version":2}`))
	})

	scan := func(b []byte) error {
		lr, err := NewLogReader(bytes.NewReader(b))
		if err != nil {
			return err
		}
		return lr.Scan(func(Record) error { return nil })
	}

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{len(data) - 1, len(data) - 7, len(data) / 2, 12, 3} {
			if cut < 0 || cut >= len(data) {
				continue
			}
			if err := scan(data[:cut]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation at %d: got %v, want ErrCorrupt", cut, err)
			}
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		// Flip a byte inside the last block's compressed payload: the CRC
		// must catch it.
		mut := append([]byte(nil), data...)
		mut[len(mut)-3] ^= 0xFF
		if err := scan(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("payload bit flip: got %v, want ErrCorrupt", err)
		}
	})

	t.Run("newer-version", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[8] = LogVersion + 1 // version varint directly follows the magic
		_, err := NewLogReader(bytes.NewReader(mut))
		if err == nil || !strings.Contains(err.Error(), "newer") {
			t.Fatalf("future version: got %v, want newer-version error", err)
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[0] = 'X'
		if _, err := NewLogReader(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
		}
	})
}

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n      int
	wrote  int
	failed bool
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.wrote+len(p) > f.n {
		f.failed = true
		return 0, errors.New("sink full")
	}
	f.wrote += len(p)
	return len(p), nil
}

// TestWriterFailFast pins the JSONL writer's error latch: the first write
// error makes every subsequent Emit a no-op immediately (n stops
// advancing), and Close reports the error.
func TestWriterFailFast(t *testing.T) {
	fw := &failWriter{n: 4096} // one bufio flush fits, the next fails
	w := NewWriter(fw)
	e := Event{Kind: KindMeasure, Value: 0.123456789, Extra: "connectivity"}
	for i := 0; i < 200 && w.Err() == nil; i++ {
		e.Step = i
		w.Emit(e)
	}
	if w.Err() == nil {
		t.Fatal("writer never latched the sink error")
	}
	latched := w.Count()
	for i := 0; i < 50; i++ {
		w.Emit(e)
	}
	if w.Count() != latched {
		t.Fatalf("Emit after latched error still counted: %d -> %d", latched, w.Count())
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close returned nil after a latched error")
	}
}

// TestLogWriterFailFast pins the same latch on the binary writer: once a
// block write fails, Emit/EmitAnchor turn into no-ops and Close reports.
func TestLogWriterFailFast(t *testing.T) {
	fw := &failWriter{n: 64} // header fits; the first block write fails
	lw, err := NewLogWriter(fw, Header{})
	if err != nil {
		t.Fatalf("NewLogWriter: %v", err)
	}
	lw.Emit(Event{Step: 0, Kind: KindMove})
	lw.EmitAnchor(0, []byte(`{}`)) // forces a block flush against the dead sink
	if !fw.failed {
		t.Fatal("anchor flush never reached the failing sink")
	}
	before := lw.Count()
	for i := 0; i < 50; i++ {
		lw.Emit(Event{Step: i, Kind: KindMove})
	}
	if lw.Count() != before {
		t.Fatalf("Emit after latched error still counted: %d -> %d", before, lw.Count())
	}
	if err := lw.Close(); err == nil {
		t.Fatal("Close returned nil after a latched write error")
	}
}

// TestLogMetricsNoPerturbation pins the observability contract: attaching
// a metrics registry must not change a single byte of the log, and the
// counters must agree with the writer's own accounting.
func TestLogMetricsNoPerturbation(t *testing.T) {
	emit := func(lw *LogWriter) {
		for _, e := range sampleEvents() {
			lw.Emit(e)
		}
		lw.EmitAnchor(10, []byte(`{"version":2}`))
		lw.EmitWorld(WorldDelta{Step: 11, Nodes: []int32{0}, X: []float64{1}, Y: []float64{2}})
	}
	plain := writeLog(t, Header{BaseSeed: 9}, emit)

	reg := metrics.NewRegistry()
	var buf bytes.Buffer
	lw, err := NewLogWriter(&buf, Header{BaseSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lw.Instrument(reg)
	emit(lw)
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, buf.Bytes()) {
		t.Fatal("attaching a metrics registry changed the log bytes")
	}

	snap := reg.Snapshot(nil)
	want := map[string]uint64{
		"trace_events_total":   uint64(len(sampleEvents())),
		"trace_bytes_written":  uint64(buf.Len()),
		"trace_blocks_flushed": uint64(len(lw.Index())),
	}
	for name, w := range want {
		if got := snap.Counter(name); got != w {
			t.Fatalf("%s = %v, want %v", name, got, w)
		}
	}

	// Reader side: replay_blocks_read counts every decoded block.
	rreg := metrics.NewRegistry()
	lr, err := NewLogReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lr.Instrument(rreg)
	if err := lr.Scan(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := rreg.Snapshot(nil).Counter("replay_blocks_read"); got != uint64(len(lw.Index())) {
		t.Fatalf("replay_blocks_read = %v, want %d", got, len(lw.Index()))
	}
}

// TestFileLogSidecarIndex: CreateLog writes a sidecar index on Close;
// OpenLog uses it, and still works (scanning) when the sidecar is gone.
func TestFileLogSidecarIndex(t *testing.T) {
	path := t.TempDir() + "/run.alog"
	fl, err := CreateLog(path, Header{BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sampleEvents() {
		fl.Emit(e)
	}
	fl.EmitAnchor(10, []byte(`{"version":2}`))
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(label string) {
		lr, closer, err := OpenLog(path)
		if err != nil {
			t.Fatalf("%s: OpenLog: %v", label, err)
		}
		defer closer()
		blocks, err := lr.Blocks()
		if err != nil {
			t.Fatalf("%s: Blocks: %v", label, err)
		}
		if len(blocks) == 0 {
			t.Fatalf("%s: no blocks", label)
		}
		n := 0
		if err := lr.Scan(func(r Record) error {
			if r.Kind == RecordEvent {
				n++
			}
			return nil
		}); err != nil {
			t.Fatalf("%s: Scan: %v", label, err)
		}
		if n != len(sampleEvents()) {
			t.Fatalf("%s: decoded %d events, want %d", label, n, len(sampleEvents()))
		}
	}
	check("with sidecar")
	if err := os.Remove(path + ".idx"); err != nil {
		t.Fatal(err)
	}
	check("scan fallback")
}
