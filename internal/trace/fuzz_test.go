package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the trace parser never panics and that whatever it
// successfully parses round-trips through the writer.
func FuzzRead(f *testing.F) {
	f.Add(`{"step":1,"kind":"move","agent":2,"node":3,"to":4}`)
	f.Add(`{"step":0,"kind":"measure","value":0.5,"extra":"connectivity"}`)
	f.Add("")
	f.Add("{}\n{}\n")
	f.Add(`{"step":-1,"kind":"bogus"}`)
	f.Add("not json at all")
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Read(strings.NewReader(input))
		if err != nil {
			return // malformed input is allowed to error, never to panic
		}
		// Round-trip what was parsed.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range events {
			w.Emit(e)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}

// fuzzLogBytes builds a small well-formed binary log for seeding.
func fuzzLogBytes() []byte {
	var buf bytes.Buffer
	lw, err := NewLogWriter(&buf, Header{BaseSeed: 1, Config: []byte(`{"scenario":"routing"}`)})
	if err != nil {
		panic(err)
	}
	lw.EmitAnchor(0, []byte(`{"version":2,"positions":[{"x":1,"y":2}],"ranges":[3]}`))
	lw.Emit(Event{Step: 0, Kind: KindMove, Agent: 1, Node: 2, To: 3})
	lw.Emit(Event{Step: 0, Kind: KindMeasure, Value: 0.5, Extra: "connectivity"})
	lw.EmitWorld(WorldDelta{Step: 1, Nodes: []int32{0}, X: []float64{1.5}, Y: []float64{2.5}})
	lw.Emit(Event{Step: 1, Kind: KindFinish})
	if err := lw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzLogReader hammers the binary log decoder with mutated inputs: a
// truncated block, a flipped payload byte (CRC), a bumped format version,
// and arbitrary garbage must all produce errors — never a panic, hang, or
// huge allocation.
func FuzzLogReader(f *testing.F) {
	valid := fuzzLogBytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated final block
	f.Add(valid[:11])           // truncated header
	crc := append([]byte(nil), valid...)
	crc[len(crc)-2] ^= 0x40 // payload bit flip: CRC mismatch
	f.Add(crc)
	ver := append([]byte(nil), valid...)
	ver[8] = LogVersion + 1 // unknown future version
	f.Add(ver)
	f.Add([]byte("AMESHLOG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		lr, err := NewLogReader(bytes.NewReader(data))
		if err != nil {
			return // malformed input may error, never panic
		}
		// Whatever decodes must round-trip through a fresh writer into an
		// identically decodable stream.
		var events []Event
		_ = lr.Scan(func(r Record) error {
			if r.Kind == RecordEvent {
				events = append(events, r.Event)
			}
			return nil
		})
		var buf bytes.Buffer
		lw, err := NewLogWriter(&buf, lr.Header())
		if err != nil {
			return
		}
		for _, e := range events {
			lw.Emit(e)
		}
		if err := lw.Close(); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		lr2, err := NewLogReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read header failed: %v", err)
		}
		i := 0
		err = lr2.Scan(func(r Record) error {
			if r.Kind != RecordEvent {
				return nil
			}
			if i >= len(events) || r.Event != events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatalf("re-scan failed: %v", err)
		}
		if i != len(events) {
			t.Fatalf("round trip changed count: %d -> %d", len(events), i)
		}
	})
}
