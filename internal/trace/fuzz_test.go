package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the trace parser never panics and that whatever it
// successfully parses round-trips through the writer.
func FuzzRead(f *testing.F) {
	f.Add(`{"step":1,"kind":"move","agent":2,"node":3,"to":4}`)
	f.Add(`{"step":0,"kind":"measure","value":0.5,"extra":"connectivity"}`)
	f.Add("")
	f.Add("{}\n{}\n")
	f.Add(`{"step":-1,"kind":"bogus"}`)
	f.Add("not json at all")
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Read(strings.NewReader(input))
		if err != nil {
			return // malformed input is allowed to error, never to panic
		}
		// Round-trip what was parsed.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range events {
			w.Emit(e)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}
