// Binary event-log persistence: a compact framed encoding of the trace
// event stream, with embedded world-snapshot anchors and per-step world
// deltas, wrapped in per-block gzip compression. The format is the durable
// counterpart of the JSONL Writer (which stays the human-readable debug
// format): write a run once, analyse it forever — replay the measurement
// curves, rebuild summaries, or reconstruct the world at any recorded step
// without re-simulating.
//
// File layout:
//
//	magic "AMESHLOG" | uvarint version | uvarint len | header JSON
//	block*                         (events/deltas or snapshot anchors)
//
// Each block is independently framed:
//
//	0xB1 | type | uvarint first | uvarint last | uvarint count
//	     | uvarint rawLen | uvarint compLen | crc32(comp) LE | comp bytes
//
// where comp is the gzip of the raw record payload and first/last bound the
// steps the block covers. A sidecar index (written by FileLog as
// "<path>.idx") lists every block's offset and step range so readers can
// seek; readers fall back to a header-walking scan when it is missing.
//
// Event records use varint-delta steps, a one-byte kind code, a field
// presence mask, and per-block string interning for Extra labels, so blocks
// are self-contained and decodable from any offset. World-delta records
// carry changed positions and radio ranges as XOR-against-previous float64
// bits (columnar, so the shared high bytes compress well); the XOR chain
// resets at every snapshot anchor, which keeps anchor-rooted tails
// self-contained — exactly the access path offline replay uses.
package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"repro/internal/metrics"
)

// LogVersion is the binary log format version this package writes. Readers
// reject files declaring a newer version instead of misparsing them.
const LogVersion = 1

var logMagic = [8]byte{'A', 'M', 'E', 'S', 'H', 'L', 'O', 'G'}

// ErrCorrupt tags every structural decoding failure — truncated block, CRC
// mismatch, bad varint, string-table violation. Test with errors.Is.
var ErrCorrupt = errors.New("corrupt log")

// Block types.
const (
	blockEvents byte = 1 // event + world-delta records
	blockAnchor byte = 2 // one full world snapshot (JSON payload)
)

const blockMagic byte = 0xB1

// Record tags inside an events block.
const (
	recEvent byte = 0
	recDelta byte = 1
)

// flushRawLen is the raw-payload size at which the writer seals a block.
const flushRawLen = 32 << 10

// Header is the self-describing preamble of a binary log.
type Header struct {
	// Version echoes the format version (the framed version is
	// authoritative; this copy makes the JSON self-contained).
	Version int `json:"version"`
	// BaseSeed is the root seed of the recorded run.
	BaseSeed uint64 `json:"base_seed"`
	// ConfigHash is the FNV-64a hash of Config, so tooling can cheaply
	// detect whether two logs came from the same scenario configuration.
	ConfigHash uint64 `json:"config_hash,omitempty"`
	// Config is an opaque scenario description (see replay.RunMeta).
	Config json.RawMessage `json:"config,omitempty"`
}

// ConfigHashOf returns the FNV-64a hash of a header config blob.
func ConfigHashOf(config []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range config {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// BlockInfo locates one block: its byte offset from the start of the file,
// type, covered step range, and record count.
type BlockInfo struct {
	Off   int64 `json:"off"`
	Type  byte  `json:"type"`
	First int   `json:"first"`
	Last  int   `json:"last"`
	Count int   `json:"count"`
}

// kind <-> wire code. Code 0 means "custom kind", carried as an interned
// string so third-party kinds survive the round trip.
var kindToCode = map[Kind]byte{
	KindMove:    1,
	KindMeet:    2,
	KindDeposit: 3,
	KindMeasure: 4,
	KindFinish:  5,
	KindFault:   6,
}

var codeToKind = [...]Kind{1: KindMove, 2: KindMeet, 3: KindDeposit, 4: KindMeasure, 5: KindFinish, 6: KindFault}

// Event field presence mask bits.
const (
	maskAgent = 1 << iota
	maskNode
	maskTo
	maskValue
	maskExtra
)

// laneState is one node's predictor context in a world-delta float lane:
// the bit patterns of its last two values and how many the chain has seen.
type laneState struct {
	v1, v2 uint64 // most recent, second most recent
	seen   uint8  // saturates at 2
}

// xorState holds the per-node float predictors for the position and range
// streams. Samples are XORed against a linear extrapolation from the two
// previous values (2*v1 - v2): mobility is piecewise constant-velocity and
// battery drain is linear, so the prediction is exact up to FP rounding
// and the residual has only a handful of low bits set — which the uvarint
// wire encoding then stores in 1-3 bytes instead of 8. The chain resets at
// every snapshot anchor, so a reader starting at any anchor reconstructs
// the same values the writer saw.
type xorState struct {
	x, y, r []laneState
}

func (s *xorState) reset() {
	for i := range s.x {
		s.x[i] = laneState{}
	}
	for i := range s.y {
		s.y[i] = laneState{}
	}
	for i := range s.r {
		s.r[i] = laneState{}
	}
}

func grow(s []laneState, n int) []laneState {
	if n <= len(s) {
		return s
	}
	return append(s, make([]laneState, n-len(s))...)
}

// predictLane returns the predicted bit pattern for node u's next value:
// 0 (absolute encoding) before any sample, the previous value after one,
// and the linear extrapolation 2*v1 - v2 from then on. Both 2*v1 and the
// subtraction are single correctly-rounded IEEE ops, so encoder and
// decoder compute bit-identical predictions on any platform.
func predictLane(lane *[]laneState, u int) uint64 {
	*lane = grow(*lane, u+1)
	st := (*lane)[u]
	switch st.seen {
	case 0:
		return 0
	case 1:
		return st.v1
	default:
		return math.Float64bits(2*math.Float64frombits(st.v1) - math.Float64frombits(st.v2))
	}
}

// pushLane records bits as node u's newest value. The lane is already
// grown by the predictLane call that precedes every push.
func pushLane(lane []laneState, u int, bits uint64) {
	st := &lane[u]
	st.v2, st.v1 = st.v1, bits
	if st.seen < 2 {
		st.seen++
	}
}

// xorLane runs one encode step of the predictor chain: the wire residual
// for bits at node u. unxorLane is its decode mirror.
func xorLane(lane *[]laneState, u int, bits uint64) uint64 {
	out := bits ^ predictLane(lane, u)
	pushLane(*lane, u, bits)
	return out
}

// LogWriter streams events, world deltas, and snapshot anchors into the
// compact binary format. It implements Tracer and WorldSink. Like the JSONL
// Writer it is error-latched: the first write error turns every subsequent
// Emit into a no-op and is reported by Close. Construct with NewLogWriter
// (any io.Writer) or CreateLog (file plus sidecar index).
type LogWriter struct {
	mu  sync.Mutex
	w   io.Writer
	off int64
	err error

	typ      byte // block type being accumulated (blockEvents)
	raw      []byte
	count    int
	first    int
	last     int
	prevStep int
	strings  map[string]int

	xs xorState

	index  []BlockInfo
	events int

	gz    *gzip.Writer
	gzBuf bytes.Buffer

	mEvents metrics.Counter
	mBytes  metrics.Counter
	mBlocks metrics.Counter
}

// NewLogWriter writes the file preamble for hdr and returns the writer.
// hdr.Version is stamped to LogVersion and hdr.ConfigHash is derived from
// hdr.Config when unset.
func NewLogWriter(w io.Writer, hdr Header) (*LogWriter, error) {
	hdr.Version = LogVersion
	if hdr.ConfigHash == 0 && len(hdr.Config) > 0 {
		hdr.ConfigHash = ConfigHashOf(hdr.Config)
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("trace: encoding log header: %w", err)
	}
	lw := &LogWriter{w: w, strings: make(map[string]int)}
	var pre []byte
	pre = append(pre, logMagic[:]...)
	pre = binary.AppendUvarint(pre, LogVersion)
	pre = binary.AppendUvarint(pre, uint64(len(hb)))
	pre = append(pre, hb...)
	if err := lw.write(pre); err != nil {
		return nil, err
	}
	return lw, nil
}

// Instrument registers the writer's counters on r: trace_events_total,
// trace_bytes_written, and trace_blocks_flushed. Instruments sit entirely
// outside the simulation, so attaching a registry cannot change either
// seeded results or the log bytes.
func (lw *LogWriter) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.mEvents = r.Counter("trace_events_total")
	lw.mBytes = r.Counter("trace_bytes_written")
	lw.mBlocks = r.Counter("trace_blocks_flushed")
	lw.mBytes.Add(uint64(lw.off))
}

func (lw *LogWriter) write(b []byte) error {
	n, err := lw.w.Write(b)
	lw.off += int64(n)
	lw.mBytes.Add(uint64(n))
	if err != nil && lw.err == nil {
		lw.err = err
	}
	return err
}

// beginRecord opens (or continues) an events block and encodes the step
// delta shared by every record type.
func (lw *LogWriter) beginRecord(tag byte, step int) {
	if lw.count == 0 {
		lw.typ = blockEvents
		lw.first = step
		lw.prevStep = step
	}
	lw.raw = append(lw.raw, tag)
	lw.raw = appendZigzag(lw.raw, int64(step-lw.prevStep))
	lw.prevStep = step
	if step > lw.last || lw.count == 0 {
		lw.last = step
	}
	if step < lw.first {
		lw.first = step
	}
	lw.count++
}

// Emit encodes the event. Implements Tracer; errors latch the writer and
// surface at Close.
func (lw *LogWriter) Emit(e Event) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.err != nil {
		return
	}
	lw.beginRecord(recEvent, e.Step)
	code := kindToCode[e.Kind]
	lw.raw = append(lw.raw, code)
	if code == 0 {
		lw.intern(string(e.Kind))
	}
	var mask byte
	if e.Agent != 0 {
		mask |= maskAgent
	}
	if e.Node != 0 {
		mask |= maskNode
	}
	if e.To != 0 {
		mask |= maskTo
	}
	if e.Value != 0 {
		mask |= maskValue
	}
	if e.Extra != "" {
		mask |= maskExtra
	}
	lw.raw = append(lw.raw, mask)
	if mask&maskAgent != 0 {
		lw.raw = appendZigzag(lw.raw, int64(e.Agent))
	}
	if mask&maskNode != 0 {
		lw.raw = appendZigzag(lw.raw, int64(e.Node))
	}
	if mask&maskTo != 0 {
		lw.raw = appendZigzag(lw.raw, int64(e.To))
	}
	if mask&maskValue != 0 {
		lw.raw = binary.LittleEndian.AppendUint64(lw.raw, math.Float64bits(e.Value))
	}
	if mask&maskExtra != 0 {
		lw.intern(e.Extra)
	}
	lw.events++
	lw.mEvents.Inc()
	lw.maybeFlushLocked()
}

// intern appends the block-local string id for s, defining it inline (id
// followed by length + bytes) on first use within the block.
func (lw *LogWriter) intern(s string) {
	id, ok := lw.strings[s]
	if !ok {
		id = len(lw.strings)
		lw.strings[s] = id
		lw.raw = binary.AppendUvarint(lw.raw, uint64(id))
		lw.raw = binary.AppendUvarint(lw.raw, uint64(len(s)))
		lw.raw = append(lw.raw, s...)
		return
	}
	lw.raw = binary.AppendUvarint(lw.raw, uint64(id))
}

// EmitWorld encodes one step's world delta. Implements WorldSink.
func (lw *LogWriter) EmitWorld(d WorldDelta) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.err != nil {
		return
	}
	lw.beginRecord(recDelta, d.Step)
	lw.raw = appendIDs(lw.raw, d.Nodes)
	for i, u := range d.Nodes {
		lw.raw = binary.AppendUvarint(lw.raw, xorLane(&lw.xs.x, int(u), math.Float64bits(d.X[i])))
	}
	for i, u := range d.Nodes {
		lw.raw = binary.AppendUvarint(lw.raw, xorLane(&lw.xs.y, int(u), math.Float64bits(d.Y[i])))
	}
	lw.raw = appendIDs(lw.raw, d.RangeNodes)
	for i, u := range d.RangeNodes {
		lw.raw = binary.AppendUvarint(lw.raw, xorLane(&lw.xs.r, int(u), math.Float64bits(d.Ranges[i])))
	}
	if d.FaultChanged {
		lw.raw = append(lw.raw, 1)
		lw.raw = appendIDs(lw.raw, d.Dead)
		lw.raw = appendIDs(lw.raw, d.DownGateways)
		if d.Partition {
			lw.raw = append(lw.raw, 1)
			lw.raw = binary.LittleEndian.AppendUint64(lw.raw, math.Float64bits(d.PartitionX))
		} else {
			lw.raw = append(lw.raw, 0)
		}
	} else {
		lw.raw = append(lw.raw, 0)
	}
	lw.maybeFlushLocked()
}

// EmitAnchor seals the current block and writes a snapshot anchor block.
// Anchors reset the world-delta XOR chain, so a reader can decode the delta
// tail starting from any anchor without earlier context. Implements
// WorldSink.
func (lw *LogWriter) EmitAnchor(step int, snapshot []byte) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.err != nil {
		return
	}
	lw.flushLocked()
	lw.xs.reset()
	lw.writeBlockLocked(blockAnchor, step, step, 1, snapshot)
}

// Count returns the number of events written (world deltas and anchors are
// not events).
func (lw *LogWriter) Count() int {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.events
}

// Index returns the blocks written so far (sealed blocks only).
func (lw *LogWriter) Index() []BlockInfo {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return append([]BlockInfo(nil), lw.index...)
}

func (lw *LogWriter) maybeFlushLocked() {
	if len(lw.raw) >= flushRawLen {
		lw.flushLocked()
	}
}

func (lw *LogWriter) flushLocked() {
	if lw.count == 0 {
		return
	}
	lw.writeBlockLocked(lw.typ, lw.first, lw.last, lw.count, lw.raw)
	lw.raw = lw.raw[:0]
	lw.count = 0
	clear(lw.strings)
}

func (lw *LogWriter) writeBlockLocked(typ byte, first, last, count int, raw []byte) {
	off := lw.off
	lw.gzBuf.Reset()
	if lw.gz == nil {
		lw.gz, _ = gzip.NewWriterLevel(&lw.gzBuf, gzip.DefaultCompression)
	} else {
		lw.gz.Reset(&lw.gzBuf)
	}
	if _, err := lw.gz.Write(raw); err != nil {
		if lw.err == nil {
			lw.err = err
		}
		return
	}
	if err := lw.gz.Close(); err != nil {
		if lw.err == nil {
			lw.err = err
		}
		return
	}
	comp := lw.gzBuf.Bytes()
	var hdr []byte
	hdr = append(hdr, blockMagic, typ)
	hdr = binary.AppendUvarint(hdr, uint64(first))
	hdr = binary.AppendUvarint(hdr, uint64(last))
	hdr = binary.AppendUvarint(hdr, uint64(count))
	hdr = binary.AppendUvarint(hdr, uint64(len(raw)))
	hdr = binary.AppendUvarint(hdr, uint64(len(comp)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(comp))
	if err := lw.write(hdr); err != nil {
		return
	}
	if err := lw.write(comp); err != nil {
		return
	}
	lw.index = append(lw.index, BlockInfo{Off: off, Type: typ, First: first, Last: last, Count: count})
	lw.mBlocks.Inc()
}

// Flush seals and writes the current partial block.
func (lw *LogWriter) Flush() error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.flushLocked()
	return lw.err
}

// Close seals the final block and returns the first error the writer
// encountered. The writer must not be used after Close.
func (lw *LogWriter) Close() error {
	return lw.Flush()
}

// FileLog is a LogWriter backed by a file plus its sidecar block index
// ("<path>.idx"), written on Close.
type FileLog struct {
	*LogWriter
	f       *os.File
	idxPath string
}

// CreateLog creates path (truncating) and returns a FileLog writing hdr.
func CreateLog(path string, hdr Header) (*FileLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	lw, err := NewLogWriter(f, hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileLog{LogWriter: lw, f: f, idxPath: path + ".idx"}, nil
}

// sidecar is the JSON shape of the "<path>.idx" index file.
type sidecar struct {
	Version int         `json:"version"`
	Blocks  []BlockInfo `json:"blocks"`
}

// Close seals the log, writes the sidecar index, and closes the file. The
// log file itself stays fully readable without the sidecar (readers fall
// back to scanning); a failed index write therefore only degrades seeking.
func (l *FileLog) Close() error {
	err := l.LogWriter.Close()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		b, merr := json.MarshalIndent(sidecar{Version: LogVersion, Blocks: l.LogWriter.index}, "", " ")
		if merr == nil {
			merr = os.WriteFile(l.idxPath, b, 0o644)
		}
		err = merr
	}
	return err
}

// --- varint helpers -------------------------------------------------------

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64((v<<1)^(v>>63)))
}

// appendIDs encodes an ascending id list as a count plus first-value-then-
// gap deltas.
func appendIDs(b []byte, ids []int32) []byte {
	b = binary.AppendUvarint(b, uint64(len(ids)))
	prev := int32(0)
	for _, id := range ids {
		b = binary.AppendUvarint(b, uint64(id-prev))
		prev = id
	}
	return b
}

// byteCursor walks a decoded raw payload.
type byteCursor struct {
	b   []byte
	pos int
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: bad varint at payload offset %d: %w", c.pos, ErrCorrupt)
	}
	c.pos += n
	return v, nil
}

func (c *byteCursor) zigzag() (int64, error) {
	u, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (c *byteCursor) byte() (byte, error) {
	if c.pos >= len(c.b) {
		return 0, fmt.Errorf("trace: truncated payload: %w", ErrCorrupt)
	}
	v := c.b[c.pos]
	c.pos++
	return v, nil
}

func (c *byteCursor) u64() (uint64, error) {
	if c.pos+8 > len(c.b) {
		return 0, fmt.Errorf("trace: truncated payload: %w", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint64(c.b[c.pos:])
	c.pos += 8
	return v, nil
}

func (c *byteCursor) take(n int) ([]byte, error) {
	if n < 0 || c.pos+n > len(c.b) {
		return nil, fmt.Errorf("trace: truncated payload: %w", ErrCorrupt)
	}
	v := c.b[c.pos : c.pos+n]
	c.pos += n
	return v, nil
}

func (c *byteCursor) ids(dst []int32) ([]int32, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.b)-c.pos) { // each id needs >= 1 byte
		return nil, fmt.Errorf("trace: id list longer than payload: %w", ErrCorrupt)
	}
	dst = dst[:0]
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		prev += int64(d)
		if prev > math.MaxInt32 {
			return nil, fmt.Errorf("trace: id overflow: %w", ErrCorrupt)
		}
		dst = append(dst, int32(prev))
	}
	return dst, nil
}
