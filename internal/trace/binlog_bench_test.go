package trace

import (
	"bytes"
	"math"
	"testing"
)

// benchStream synthesises a routing-shaped trace: per step ~agents moves,
// a trickle of deposits and meetings, and three measurement curves — plus
// a world-delta stream (mobile halves of a 250-node fleet under
// constant-velocity motion and linear battery drain) matching what the
// harness records. Deterministic by construction.
func benchStream(steps, agents int) ([]Event, []WorldDelta) {
	var events []Event
	var deltas []WorldDelta
	const nodes = 250
	rnd := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return int(rnd % uint64(n))
	}
	x := make([]float64, nodes)
	y := make([]float64, nodes)
	vx := make([]float64, nodes)
	vy := make([]float64, nodes)
	rng := make([]float64, nodes)
	for u := 0; u < nodes; u++ {
		x[u] = float64(next(1000)) / 10
		y[u] = float64(next(1000)) / 10
		vx[u] = float64(next(100)-50) / 200
		vy[u] = float64(next(100)-50) / 200
		rng[u] = 10 + float64(next(100))/50
	}
	for s := 0; s < steps; s++ {
		for a := 0; a < agents; a++ {
			from := int32(next(nodes))
			events = append(events, Event{Step: s, Kind: KindMove, Agent: int32(a), Node: from, To: int32(next(nodes))})
			if a%8 == 0 {
				events = append(events, Event{Step: s, Kind: KindDeposit, Agent: int32(a), Node: from, Value: float64(next(32))})
			}
			if a%13 == 0 {
				events = append(events, Event{Step: s, Kind: KindMeet, Node: from, Value: 2})
			}
		}
		for _, name := range []string{"connectivity", "end-to-end", "ideal"} {
			events = append(events, Event{Step: s, Kind: KindMeasure, Value: float64(next(1000)) / 1000, Extra: name})
		}
		d := WorldDelta{Step: s + 1}
		for u := 0; u < nodes/2; u++ {
			x[u] += vx[u]
			y[u] += vy[u]
			d.Nodes = append(d.Nodes, int32(u))
			d.X = append(d.X, x[u])
			d.Y = append(d.Y, y[u])
			if u%4 == 0 {
				rng[u] -= 0.01
				d.RangeNodes = append(d.RangeNodes, int32(u))
				d.Ranges = append(d.Ranges, rng[u])
			}
		}
		deltas = append(deltas, d)
	}
	return events, deltas
}

// countWriter tallies bytes without storing them.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

const benchSteps, benchAgents = 120, 100

// BenchmarkTraceEncode measures event-stream serialisation throughput and
// density: JSONL (the debug format) vs the compressed binary log. The
// binary case additionally carries the world-delta stream JSONL cannot
// express, so its bytes/event figure is an upper bound.
func BenchmarkTraceEncode(b *testing.B) {
	events, deltas := benchStream(benchSteps, benchAgents)
	b.Run("format=jsonl", func(b *testing.B) {
		var size int64
		for i := 0; i < b.N; i++ {
			cw := &countWriter{}
			w := NewWriter(cw)
			for _, e := range events {
				w.Emit(e)
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			size = cw.n
		}
		b.SetBytes(size)
		b.ReportMetric(float64(size)/float64(len(events)), "bytes/event")
	})
	b.Run("format=binary", func(b *testing.B) {
		var size int64
		for i := 0; i < b.N; i++ {
			cw := &countWriter{}
			lw, err := NewLogWriter(cw, Header{BaseSeed: 1})
			if err != nil {
				b.Fatal(err)
			}
			di := 0
			for _, e := range events {
				for di < len(deltas) && deltas[di].Step <= e.Step {
					lw.EmitWorld(deltas[di])
					di++
				}
				lw.Emit(e)
			}
			if err := lw.Close(); err != nil {
				b.Fatal(err)
			}
			size = cw.n
		}
		b.SetBytes(size)
		b.ReportMetric(float64(size)/float64(len(events)), "bytes/event")
	})
}

// BenchmarkTraceDecode measures the reverse direction on the same stream.
func BenchmarkTraceDecode(b *testing.B) {
	events, deltas := benchStream(benchSteps, benchAgents)
	b.Run("format=jsonl", func(b *testing.B) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range events {
			w.Emit(e)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := Read(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != len(events) {
				b.Fatalf("decoded %d events, want %d", len(got), len(events))
			}
		}
	})
	b.Run("format=binary", func(b *testing.B) {
		var buf bytes.Buffer
		lw, err := NewLogWriter(&buf, Header{BaseSeed: 1})
		if err != nil {
			b.Fatal(err)
		}
		di := 0
		for _, e := range events {
			for di < len(deltas) && deltas[di].Step <= e.Step {
				lw.EmitWorld(deltas[di])
				di++
			}
			lw.Emit(e)
		}
		if err := lw.Close(); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lr, err := NewLogReader(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			var sum float64
			err = lr.Scan(func(r Record) error {
				switch r.Kind {
				case RecordEvent:
					n++
				case RecordDelta:
					if len(r.Delta.X) > 0 {
						sum += r.Delta.X[0]
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != len(events) {
				b.Fatalf("decoded %d events, want %d", n, len(events))
			}
			if math.IsNaN(sum) {
				b.Fatal("delta stream decoded to NaN")
			}
		}
	})
}
