package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := []Event{
		{Step: 0, Kind: KindMove, Agent: 1, Node: 2, To: 3},
		{Step: 1, Kind: KindMeet, Node: 5, Value: 3},
		{Step: 2, Kind: KindMeasure, Value: 0.75, Extra: "connectivity"},
		{Step: 3, Kind: KindFinish},
	}
	for _, e := range events {
		w.Emit(e)
	}
	if w.Count() != len(events) {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

// failAfter errors every write once n bytes have passed through,
// simulating a disk filling up mid-trace.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written >= f.n {
		return 0, errDiskFull
	}
	f.written += len(p)
	return len(p), nil
}

var errDiskFull = fmt.Errorf("disk full")

func TestWriterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Step: 1, Kind: KindMove})
	if err := w.Close(); err != nil {
		t.Fatalf("Close on healthy writer = %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("Close did not flush buffered events")
	}
}

func TestWriterCloseSurfacesEmitError(t *testing.T) {
	// Small buffer so Emit itself hits the failing writer.
	w := NewWriter(&failAfter{n: 0})
	w.bw = bufio.NewWriterSize(&failAfter{n: 0}, 16)
	w.enc = json.NewEncoder(w.bw)
	for i := 0; i < 10; i++ {
		w.Emit(Event{Step: i, Kind: KindMove})
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the write error")
	}
}

func TestReadMalformed(t *testing.T) {
	_, err := Read(strings.NewReader("{\"step\":1}\nnot json\n"))
	if err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read = %v, %v", got, err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Emit(Event{Kind: KindMove})
	c.Emit(Event{Kind: KindMove})
	c.Emit(Event{Kind: KindMeet})
	if c.Count(KindMove) != 2 || c.Count(KindMeet) != 1 || c.Count(KindFinish) != 0 {
		t.Fatal("counts wrong")
	}
}

func TestBuffer(t *testing.T) {
	var b Buffer
	b.Emit(Event{Step: 1, Kind: KindDeposit})
	b.Emit(Event{Step: 2, Kind: KindDeposit})
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	es := b.Events()
	es[0].Step = 99
	if b.Events()[0].Step == 99 {
		t.Fatal("Events leaked internal storage")
	}
}

func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	c := NewCounter()
	var b Buffer
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				e := Event{Step: i, Kind: KindMove}
				w.Emit(e)
				c.Emit(e)
				b.Emit(e)
			}
		}()
	}
	wg.Wait()
	if w.Count() != 800 || c.Count(KindMove) != 800 || b.Len() != 800 {
		t.Fatalf("lost events: %d %d %d", w.Count(), c.Count(KindMove), b.Len())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 800 {
		t.Fatalf("read %d, %v", len(got), err)
	}
}
