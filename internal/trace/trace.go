// Package trace records structured simulation events — agent moves,
// meetings, route deposits, per-step measurements — so runs can be
// inspected, replayed into analysis pipelines, or diffed across code
// changes. Scenario harnesses emit events only from their sequential
// sections, so a trace taken with Workers=1 is byte-for-byte reproducible.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the scenario harnesses.
const (
	KindMove    Kind = "move"    // Agent moved Node → To
	KindMeet    Kind = "meet"    // a meeting of Value agents at Node
	KindDeposit Kind = "deposit" // Agent wrote a route at Node toward To
	KindMeasure Kind = "measure" // per-step metric; Extra names it
	KindFinish  Kind = "finish"  // run completed at Step
	KindFault   Kind = "fault"   // fault events fired; Value counts them, Extra names the first kind
)

// Event is one simulation occurrence.
type Event struct {
	Step  int     `json:"step"`
	Kind  Kind    `json:"kind"`
	Agent int32   `json:"agent,omitempty"`
	Node  int32   `json:"node,omitempty"`
	To    int32   `json:"to,omitempty"`
	Value float64 `json:"value,omitempty"`
	Extra string  `json:"extra,omitempty"`
}

// Tracer receives events. Implementations must be safe for concurrent use
// if the caller runs parallel phases; the harnesses only emit from
// sequential sections.
type Tracer interface {
	Emit(Event)
}

// WorldDelta is one step's world evolution: the nodes whose positions
// changed (ascending IDs with their new coordinates), the nodes whose radio
// ranges changed, and — when a fault epoch advanced — the complete new
// fault state. Step labels the simulation step that observes the new state.
// Harnesses emit one delta after each world step (empty deltas are
// skipped), so a log's anchor snapshots plus the delta tail reconstruct the
// world at any recorded step.
type WorldDelta struct {
	Step int

	// Nodes lists position changes in ascending node order; X[i], Y[i] are
	// node Nodes[i]'s new coordinates.
	Nodes []int32
	X, Y  []float64

	// RangeNodes lists radio-range changes in ascending node order;
	// Ranges[i] is node RangeNodes[i]'s new current range.
	RangeNodes []int32
	Ranges     []float64

	// FaultChanged reports that the fault state below replaces the previous
	// one wholesale (it is a full state, not a diff): dead nodes,
	// out-of-service gateways, and the active partition cut.
	FaultChanged bool
	Dead         []int32
	DownGateways []int32
	Partition    bool
	PartitionX   float64
}

// WorldSink is a Tracer that can additionally absorb world evolution:
// periodic full snapshot anchors (opaque serialised network.Snapshot JSON)
// and per-step world deltas. The binary LogWriter implements it; the plain
// JSONL Writer deliberately does not (it is the debug format for the event
// stream alone).
type WorldSink interface {
	Tracer
	// EmitAnchor records a full world snapshot observed at step.
	EmitAnchor(step int, snapshot []byte)
	// EmitWorld records one step's world delta.
	EmitWorld(d WorldDelta)
}

// Writer streams events as JSON Lines. Construct with NewWriter and Close
// (or Flush) when done; Close also surfaces the first error swallowed by
// Emit, so callers learn about silently dropped events.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
	err error // first encode/flush error, surfaced by Close
}

// NewWriter returns a Tracer writing one JSON object per line to w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes the event. Encoding errors never fail a simulation — but
// they latch the writer: the first error makes every subsequent Emit an
// immediate no-op (no further encoding work, no further writes against a
// sink that already failed), and Close reports it.
func (w *Writer) Emit(e Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return // error-latched fast path: drop without re-encoding
	}
	if err := w.enc.Encode(e); err == nil {
		w.n++
	} else {
		w.err = err
	}
}

// Err returns the writer's latched error, if any, without flushing. Once
// non-nil, every further Emit is a no-op.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Count returns the number of events written.
func (w *Writer) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bw.Flush()
}

// Close flushes buffered output and returns the first error the writer
// encountered — a swallowed Emit encode failure or the flush itself. The
// writer must not be used after Close.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Counter tallies events by kind without storing them — the cheap tracer
// for tests and statistics.
type Counter struct {
	mu     sync.Mutex
	counts map[Kind]int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[Kind]int)}
}

// Emit counts the event.
func (c *Counter) Emit(e Event) {
	c.mu.Lock()
	c.counts[e.Kind]++
	c.mu.Unlock()
}

// Count returns how many events of kind were seen.
func (c *Counter) Count(kind Kind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[kind]
}

// Buffer stores every event in memory, for tests and small runs.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (b *Buffer) Emit(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Read parses a JSONL trace back into events.
func Read(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("trace: line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}
