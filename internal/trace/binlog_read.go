package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/metrics"
)

// ErrStop, returned by a Scan callback, ends the scan early without error.
var ErrStop = errors.New("stop scan")

// maxBlockLen caps per-block allocations while decoding, so a corrupt
// length field fails cleanly instead of attempting a huge allocation.
const maxBlockLen = 1 << 28

// RecordKind discriminates the records a scan yields.
type RecordKind uint8

const (
	RecordEvent  RecordKind = iota + 1 // Event is set
	RecordDelta                        // Delta is set
	RecordAnchor                       // Step and Anchor are set
)

// Record is one decoded log record. Delta's slices and Anchor alias reader
// scratch buffers: they are valid only for the duration of the callback and
// must be copied to be retained.
type Record struct {
	Kind   RecordKind
	Event  Event
	Delta  WorldDelta
	Step   int    // anchor records: the step the snapshot observes
	Anchor []byte // anchor records: serialised network.Snapshot JSON
}

// LogReader decodes a binary event log. Construct with OpenLog (file +
// sidecar index) or NewLogReader (any io.ReadSeeker; the block index is
// rebuilt by scanning frame headers). Not safe for concurrent use.
type LogReader struct {
	r         io.ReadSeeker
	hdr       Header
	headerEnd int64
	blocks    []BlockInfo
	indexed   bool

	gz      *gzip.Reader
	comp    []byte
	raw     []byte
	strings []string
	xs      xorState
	delta   WorldDelta

	mBlocks metrics.Counter
}

// NewLogReader parses the preamble of a binary log. Logs declaring a newer
// format version than LogVersion are rejected.
func NewLogReader(r io.ReadSeeker) (*LogReader, error) {
	cr := &countReader{r: r}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading log magic: %w", ErrCorrupt)
	}
	if magic != logMagic {
		return nil, fmt.Errorf("trace: bad log magic %q: %w", magic[:], ErrCorrupt)
	}
	ver, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("trace: reading log version: %w", ErrCorrupt)
	}
	if ver > LogVersion {
		return nil, fmt.Errorf("trace: log format version %d is newer than supported %d", ver, LogVersion)
	}
	hlen, err := binary.ReadUvarint(cr)
	if err != nil || hlen > maxBlockLen {
		return nil, fmt.Errorf("trace: reading log header length: %w", ErrCorrupt)
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(cr, hb); err != nil {
		return nil, fmt.Errorf("trace: truncated log header: %w", ErrCorrupt)
	}
	var hdr Header
	if err := json.Unmarshal(hb, &hdr); err != nil {
		return nil, fmt.Errorf("trace: decoding log header: %w", ErrCorrupt)
	}
	return &LogReader{r: r, hdr: hdr, headerEnd: cr.n}, nil
}

// OpenLog opens a binary log file, loading its sidecar index
// ("<path>.idx") when present and consistent; otherwise the index is
// rebuilt by scanning the file. The caller owns closing the reader.
func OpenLog(path string) (*LogReader, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	lr, err := NewLogReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if b, err := os.ReadFile(path + ".idx"); err == nil {
		var sc sidecar
		if json.Unmarshal(b, &sc) == nil && sc.Version == LogVersion && sidecarSane(sc.Blocks, lr.headerEnd) {
			lr.blocks, lr.indexed = sc.Blocks, true
		}
	}
	return lr, f.Close, nil
}

// sidecarSane rejects index files that cannot match this log: offsets must
// start right after the header and ascend.
func sidecarSane(blocks []BlockInfo, headerEnd int64) bool {
	prev := headerEnd
	for i, b := range blocks {
		if i == 0 && b.Off != headerEnd {
			return false
		}
		if b.Off < prev || (b.Type != blockEvents && b.Type != blockAnchor) {
			return false
		}
		prev = b.Off
	}
	return true
}

// Header returns the log's self-describing header.
func (lr *LogReader) Header() Header { return lr.hdr }

// Instrument registers the reader's replay_blocks_read counter on r.
func (lr *LogReader) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	lr.mBlocks = r.Counter("replay_blocks_read")
}

// Blocks returns the log's block index, scanning frame headers to build it
// when no sidecar index was loaded.
func (lr *LogReader) Blocks() ([]BlockInfo, error) {
	if lr.indexed {
		return lr.blocks, nil
	}
	if _, err := lr.r.Seek(lr.headerEnd, io.SeekStart); err != nil {
		return nil, err
	}
	lr.blocks = lr.blocks[:0]
	off := lr.headerEnd
	for {
		fr, hlen, err := readFrame(lr.r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		lr.blocks = append(lr.blocks, BlockInfo{Off: off, Type: fr.typ, First: fr.first, Last: fr.last, Count: fr.count})
		off += hlen + int64(fr.compLen)
		if _, err := lr.r.Seek(int64(fr.compLen), io.SeekCurrent); err != nil {
			return nil, err
		}
	}
	lr.indexed = true
	return lr.blocks, nil
}

// blockFrame is one decoded block header.
type blockFrame struct {
	typ                byte
	first, last, count int
	rawLen, compLen    int
	crc                uint32
}

// countReader adapts an io.Reader to io.ByteReader while counting consumed
// bytes.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(c.r, b[:])
	if err == nil {
		c.n++
	}
	return b[0], err
}

// readFrame parses one block header from r. A clean EOF on the first byte
// means end of log; any other shortfall is corruption. Returns the frame
// and the number of header bytes consumed.
func readFrame(r io.Reader) (*blockFrame, int64, error) {
	cr := &countReader{r: r}
	m, err := cr.ReadByte()
	if err == io.EOF {
		return nil, 0, io.EOF
	}
	if err != nil {
		return nil, 0, fmt.Errorf("trace: reading block magic: %w", ErrCorrupt)
	}
	if m != blockMagic {
		return nil, 0, fmt.Errorf("trace: bad block magic 0x%02x: %w", m, ErrCorrupt)
	}
	typ, err := cr.ReadByte()
	if err != nil || (typ != blockEvents && typ != blockAnchor) {
		return nil, 0, fmt.Errorf("trace: bad block type: %w", ErrCorrupt)
	}
	var vals [5]uint64
	for i := range vals {
		v, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, 0, fmt.Errorf("trace: truncated block header: %w", ErrCorrupt)
		}
		vals[i] = v
	}
	first, last, count, rawLen, compLen := vals[0], vals[1], vals[2], vals[3], vals[4]
	if rawLen > maxBlockLen || compLen > maxBlockLen || first > last {
		return nil, 0, fmt.Errorf("trace: implausible block header: %w", ErrCorrupt)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(cr, crcb[:]); err != nil {
		return nil, 0, fmt.Errorf("trace: truncated block header: %w", ErrCorrupt)
	}
	return &blockFrame{
		typ:     typ,
		first:   int(first),
		last:    int(last),
		count:   int(count),
		rawLen:  int(rawLen),
		compLen: int(compLen),
		crc:     binary.LittleEndian.Uint32(crcb[:]),
	}, cr.n, nil
}

// readBlockAt seeks to a block and returns its frame plus decompressed,
// CRC-verified payload (aliasing reader scratch; valid until the next
// readBlockAt call).
func (lr *LogReader) readBlockAt(off int64) (*blockFrame, []byte, error) {
	if _, err := lr.r.Seek(off, io.SeekStart); err != nil {
		return nil, nil, err
	}
	fr, _, err := readFrame(lr.r)
	if err == io.EOF {
		return nil, nil, fmt.Errorf("trace: block offset %d beyond log end: %w", off, ErrCorrupt)
	}
	if err != nil {
		return nil, nil, err
	}
	if cap(lr.comp) < fr.compLen {
		lr.comp = make([]byte, fr.compLen)
	}
	comp := lr.comp[:fr.compLen]
	if _, err := io.ReadFull(lr.r, comp); err != nil {
		return nil, nil, fmt.Errorf("trace: truncated block payload: %w", ErrCorrupt)
	}
	if got := crc32.ChecksumIEEE(comp); got != fr.crc {
		return nil, nil, fmt.Errorf("trace: block CRC mismatch (got %08x want %08x): %w", got, fr.crc, ErrCorrupt)
	}
	if lr.gz == nil {
		lr.gz = new(gzip.Reader)
	}
	if err := lr.gz.Reset(bytes.NewReader(comp)); err != nil {
		return nil, nil, fmt.Errorf("trace: block gzip header: %w", ErrCorrupt)
	}
	if cap(lr.raw) < fr.rawLen {
		lr.raw = make([]byte, fr.rawLen)
	}
	raw := lr.raw[:fr.rawLen]
	if _, err := io.ReadFull(lr.gz, raw); err != nil {
		return nil, nil, fmt.Errorf("trace: block decompression: %w", ErrCorrupt)
	}
	var one [1]byte
	if n, _ := lr.gz.Read(one[:]); n != 0 {
		return nil, nil, fmt.Errorf("trace: block longer than declared raw length: %w", ErrCorrupt)
	}
	lr.mBlocks.Inc()
	return fr, raw, nil
}

// Scan decodes every record in the log in order, invoking fn for each.
// fn returning ErrStop ends the scan cleanly; any other error aborts.
func (lr *LogReader) Scan(fn func(Record) error) error {
	blocks, err := lr.Blocks()
	if err != nil {
		return err
	}
	return lr.scanBlocks(blocks, fn)
}

// AnchorIndexBefore returns the index (into Blocks) of the last anchor
// block observing a step <= step, or -1 if none exists.
func (lr *LogReader) AnchorIndexBefore(step int) (int, error) {
	blocks, err := lr.Blocks()
	if err != nil {
		return 0, err
	}
	best := -1
	for i, b := range blocks {
		if b.Type == blockAnchor && b.First <= step {
			best = i
		}
	}
	return best, nil
}

// ScanFrom decodes records starting at block index from (which must be an
// anchor block or 0: the world-delta XOR chain resets there). fn returning
// ErrStop ends the scan cleanly.
func (lr *LogReader) ScanFrom(from int, fn func(Record) error) error {
	blocks, err := lr.Blocks()
	if err != nil {
		return err
	}
	if from < 0 || from > len(blocks) {
		return fmt.Errorf("trace: scan start block %d out of range [0,%d]", from, len(blocks))
	}
	if from > 0 && blocks[from].Type != blockAnchor {
		return fmt.Errorf("trace: scan must start at an anchor block (block %d is not)", from)
	}
	return lr.scanBlocks(blocks[from:], fn)
}

func (lr *LogReader) scanBlocks(blocks []BlockInfo, fn func(Record) error) error {
	lr.xs.reset()
	for _, b := range blocks {
		fr, raw, err := lr.readBlockAt(b.Off)
		if err != nil {
			return err
		}
		switch fr.typ {
		case blockAnchor:
			lr.xs.reset()
			if err := fn(Record{Kind: RecordAnchor, Step: fr.first, Anchor: raw}); err != nil {
				if errors.Is(err, ErrStop) {
					return nil
				}
				return err
			}
		case blockEvents:
			if err := lr.decodeEvents(fr, raw, fn); err != nil {
				if errors.Is(err, ErrStop) {
					return nil
				}
				return err
			}
		}
	}
	return nil
}

// decodeEvents walks one events block's payload, yielding records.
func (lr *LogReader) decodeEvents(fr *blockFrame, raw []byte, fn func(Record) error) error {
	cur := &byteCursor{b: raw}
	lr.strings = lr.strings[:0]
	prevStep := fr.first
	for cur.pos < len(cur.b) {
		tag, err := cur.byte()
		if err != nil {
			return err
		}
		sd, err := cur.zigzag()
		if err != nil {
			return err
		}
		step := prevStep + int(sd)
		prevStep = step
		switch tag {
		case recEvent:
			e, err := lr.decodeEvent(cur, step)
			if err != nil {
				return err
			}
			if err := fn(Record{Kind: RecordEvent, Event: e}); err != nil {
				return err
			}
		case recDelta:
			d, err := lr.decodeDelta(cur, step)
			if err != nil {
				return err
			}
			if err := fn(Record{Kind: RecordDelta, Delta: d}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("trace: unknown record tag %d: %w", tag, ErrCorrupt)
		}
	}
	return nil
}

func (lr *LogReader) decodeEvent(cur *byteCursor, step int) (Event, error) {
	e := Event{Step: step}
	code, err := cur.byte()
	if err != nil {
		return e, err
	}
	if code == 0 {
		s, err := lr.readString(cur)
		if err != nil {
			return e, err
		}
		e.Kind = Kind(s)
	} else if int(code) < len(codeToKind) {
		e.Kind = codeToKind[code]
	} else {
		return e, fmt.Errorf("trace: unknown event kind code %d: %w", code, ErrCorrupt)
	}
	mask, err := cur.byte()
	if err != nil {
		return e, err
	}
	if mask&maskAgent != 0 {
		v, err := cur.zigzag()
		if err != nil {
			return e, err
		}
		e.Agent = int32(v)
	}
	if mask&maskNode != 0 {
		v, err := cur.zigzag()
		if err != nil {
			return e, err
		}
		e.Node = int32(v)
	}
	if mask&maskTo != 0 {
		v, err := cur.zigzag()
		if err != nil {
			return e, err
		}
		e.To = int32(v)
	}
	if mask&maskValue != 0 {
		bits, err := cur.u64()
		if err != nil {
			return e, err
		}
		e.Value = math.Float64frombits(bits)
	}
	if mask&maskExtra != 0 {
		s, err := lr.readString(cur)
		if err != nil {
			return e, err
		}
		e.Extra = s
	}
	return e, nil
}

// readString resolves a block-local interned string id, absorbing an
// inline definition when the id is new.
func (lr *LogReader) readString(cur *byteCursor) (string, error) {
	id, err := cur.uvarint()
	if err != nil {
		return "", err
	}
	if id < uint64(len(lr.strings)) {
		return lr.strings[id], nil
	}
	if id != uint64(len(lr.strings)) {
		return "", fmt.Errorf("trace: string id %d skips table (len %d): %w", id, len(lr.strings), ErrCorrupt)
	}
	n, err := cur.uvarint()
	if err != nil {
		return "", err
	}
	b, err := cur.take(int(n))
	if err != nil {
		return "", err
	}
	s := string(b)
	lr.strings = append(lr.strings, s)
	return s, nil
}

// unxorLane reverses xorLane: the wire residual XOR the decoder's own
// prediction yields the value, which then extends the chain.
func unxorLane(lane *[]laneState, u int, wire uint64) uint64 {
	v := wire ^ predictLane(lane, u)
	pushLane(*lane, u, v)
	return v
}

func (lr *LogReader) decodeDelta(cur *byteCursor, step int) (WorldDelta, error) {
	d := &lr.delta
	*d = WorldDelta{
		Step:         step,
		Nodes:        d.Nodes[:0],
		X:            d.X[:0],
		Y:            d.Y[:0],
		RangeNodes:   d.RangeNodes[:0],
		Ranges:       d.Ranges[:0],
		Dead:         d.Dead[:0],
		DownGateways: d.DownGateways[:0],
	}
	var err error
	if d.Nodes, err = cur.ids(d.Nodes); err != nil {
		return *d, err
	}
	for _, u := range d.Nodes {
		wire, err := cur.uvarint()
		if err != nil {
			return *d, err
		}
		d.X = append(d.X, math.Float64frombits(unxorLane(&lr.xs.x, int(u), wire)))
	}
	for _, u := range d.Nodes {
		wire, err := cur.uvarint()
		if err != nil {
			return *d, err
		}
		d.Y = append(d.Y, math.Float64frombits(unxorLane(&lr.xs.y, int(u), wire)))
	}
	if d.RangeNodes, err = cur.ids(d.RangeNodes); err != nil {
		return *d, err
	}
	for _, u := range d.RangeNodes {
		wire, err := cur.uvarint()
		if err != nil {
			return *d, err
		}
		d.Ranges = append(d.Ranges, math.Float64frombits(unxorLane(&lr.xs.r, int(u), wire)))
	}
	fc, err := cur.byte()
	if err != nil {
		return *d, err
	}
	if fc == 1 {
		d.FaultChanged = true
		if d.Dead, err = cur.ids(d.Dead); err != nil {
			return *d, err
		}
		if d.DownGateways, err = cur.ids(d.DownGateways); err != nil {
			return *d, err
		}
		p, err := cur.byte()
		if err != nil {
			return *d, err
		}
		if p == 1 {
			d.Partition = true
			bits, err := cur.u64()
			if err != nil {
				return *d, err
			}
			d.PartitionX = math.Float64frombits(bits)
		}
	} else if fc != 0 {
		return *d, fmt.Errorf("trace: bad fault-changed flag %d: %w", fc, ErrCorrupt)
	}
	return *d, nil
}
