// Package core implements the paper's contribution: mobile software agents
// that map a wireless network and maintain its routing tables, with the
// cooperation mechanisms the paper studies layered on top — direct
// knowledge exchange when agents meet, and stigmergic footprints that keep
// agents from retracing each other's (and their own) steps.
//
// An Agent is pure state plus a decision rule; the scenario harnesses in
// internal/mapping and internal/routing drive the per-step protocol
// (learn → meet → move → mark / deposit). Keeping agents passive makes the
// same Agent type usable from both the sequential and the concurrent
// engine.
package core

import (
	"fmt"

	"repro/internal/knowledge"
	"repro/internal/rng"
	"repro/internal/stigmergy"
)

// Config assembles an Agent.
type Config struct {
	// ID is the agent's index; it also seeds the agent's private RNG
	// stream, so it must be unique within a simulation.
	ID int
	// Start is the node the agent is injected at.
	Start NodeID
	// Kind selects the movement policy.
	Kind PolicyKind
	// NetworkSize is the number of nodes (needed to size knowledge).
	NetworkSize int

	// Stigmergy makes the agent read and write footprints.
	Stigmergy bool
	// ShareTopology lets co-located agents exchange topology knowledge
	// (mapping scenario; all of Minar's cooperative agents do this).
	ShareTopology bool
	// ShareRoutes lets co-located agents adopt the best gateway trail
	// (routing scenario's direct communication).
	ShareRoutes bool

	// VisitCapacity bounds the visit memory (0 = unbounded). The routing
	// scenario's "history size" bounds both this and TrailCapacity.
	VisitCapacity int
	// TrailCapacity bounds the gateway trail (routing scenario).
	TrailCapacity int
	// Epsilon adds Minar's randomness fix: with probability Epsilon the
	// agent moves randomly regardless of policy.
	Epsilon float64

	// Stream is the agent's private randomness. Required.
	Stream *rng.Stream
}

// Agent is one mobile software agent.
type Agent struct {
	ID NodeID
	// At is the node the agent currently occupies.
	At NodeID

	// Topo is the agent's accumulated map (mapping scenario).
	Topo *knowledge.Topology
	// Visits is the agent's movement history.
	Visits *knowledge.Visits
	// Trail is the agent's path back to the last gateway (routing).
	Trail *knowledge.Trail
	// Overhead tallies the work this agent has caused.
	Overhead Overhead

	kind          PolicyKind
	stigmergy     bool
	shareTopology bool
	shareVisits   bool
	shareRoutes   bool
	epsilon       float64
	stream        *rng.Stream
	tieSalt       uint64

	stigBuf []NodeID // scratch for footprint filtering
}

// New validates cfg and builds an agent.
func New(cfg Config) (*Agent, error) {
	if cfg.Stream == nil {
		return nil, fmt.Errorf("core: agent %d needs a Stream", cfg.ID)
	}
	if cfg.NetworkSize <= 0 {
		return nil, fmt.Errorf("core: agent %d needs a positive NetworkSize", cfg.ID)
	}
	if int(cfg.Start) < 0 || int(cfg.Start) >= cfg.NetworkSize {
		return nil, fmt.Errorf("core: agent %d start %d outside [0,%d)", cfg.ID, cfg.Start, cfg.NetworkSize)
	}
	switch cfg.Kind {
	case PolicyRandom, PolicyConscientious, PolicySuperConscientious, PolicyOldestNode:
	default:
		return nil, fmt.Errorf("core: agent %d has unknown policy %d", cfg.ID, cfg.Kind)
	}
	if cfg.Epsilon < 0 || cfg.Epsilon > 1 {
		return nil, fmt.Errorf("core: agent %d epsilon %v outside [0,1]", cfg.ID, cfg.Epsilon)
	}
	a := &Agent{
		ID:            NodeID(cfg.ID),
		At:            cfg.Start,
		Topo:          knowledge.NewTopology(cfg.NetworkSize),
		Visits:        knowledge.NewVisits(cfg.VisitCapacity),
		Trail:         knowledge.NewTrail(cfg.TrailCapacity),
		kind:          cfg.Kind,
		stigmergy:     cfg.Stigmergy,
		shareTopology: cfg.ShareTopology,
		shareVisits:   cfg.Kind == PolicySuperConscientious,
		shareRoutes:   cfg.ShareRoutes,
		epsilon:       cfg.Epsilon,
		stream:        cfg.Stream,
		tieSalt:       saltFor(cfg.ID),
	}
	return a, nil
}

// saltFor derives an agent's private tie-break salt from its ID
// (SplitMix64 finaliser).
func saltFor(id int) uint64 {
	x := uint64(id)*0x9e3779b97f4a7c15 + 0x1234567
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// TieSalt returns the agent's current tie-break salt. Salts start unique
// per agent and are unified when visit histories merge.
func (a *Agent) TieSalt() uint64 { return a.tieSalt }

// Kind returns the agent's movement policy.
func (a *Agent) Kind() PolicyKind { return a.kind }

// Stigmergic reports whether the agent uses footprints.
func (a *Agent) Stigmergic() bool { return a.stigmergy }

// SharesTopology reports whether the agent exchanges maps when meeting.
func (a *Agent) SharesTopology() bool { return a.shareTopology }

// SharesVisits reports whether meeting merges visit histories (the
// super-conscientious behaviour, and the cause of oldest-node agents
// chasing each other under direct communication).
func (a *Agent) SharesVisits() bool { return a.shareVisits }

// SharesRoutes reports whether the agent adopts peers' best gateway trail.
func (a *Agent) SharesRoutes() bool { return a.shareRoutes }

// EnableVisitSharing turns visit-history merging on or off; the routing
// scenario sets it together with ShareRoutes for oldest-node agents.
func (a *Agent) EnableVisitSharing(on bool) { a.shareVisits = on }

// RecordHere notes the agent stood on its current node at the given step.
func (a *Agent) RecordHere(step int) { a.Visits.Record(a.At, step) }

// LearnNeighbors records the current node's out-edges first-hand.
func (a *Agent) LearnNeighbors(neighbors []NodeID) {
	a.Topo.LearnFirstHand(a.At, neighbors)
}

// Decide picks the next node from candidates (the current node's
// out-neighbours). When the agent is stigmergic and board is non-nil it
// first discards recently footprinted neighbours (falling back to the full
// set if everything is marked) and imprints its own choice before
// returning. An empty candidate set strands the agent for the step and
// returns its current node.
func (a *Agent) Decide(board *stigmergy.Board, step int, candidates []NodeID) NodeID {
	if len(candidates) == 0 {
		return a.At
	}
	cands := candidates
	if a.stigmergy && board != nil {
		a.stigBuf = board.Unmarked(a.At, step, candidates, a.stigBuf[:0])
		if len(a.stigBuf) > 0 {
			cands = a.stigBuf
		}
	}
	next := a.choose(step, cands)
	if a.stigmergy && board != nil {
		board.Leave(a.At, next, step)
		a.Overhead.MarksLeft++
	}
	return next
}

// MoveTo relocates the agent and updates its trail: arriving on a gateway
// re-anchors the trail, any other node extends it.
func (a *Agent) MoveTo(next NodeID, isGateway bool) {
	if next != a.At {
		a.Overhead.Moves++
	}
	a.At = next
	if isGateway {
		a.Trail.ResetAt(next)
	} else {
		a.Trail.Extend(next)
	}
}

// DepositRoute writes the agent's current gateway route into the table of
// the node it occupies. neighbors is the current node's out-neighbour list
// — the agent can see it by standing there — and the deposited next hop is
// the EARLIEST trail node (closest to the gateway) that appears in it.
// That one check does two jobs: it never writes a route whose first link
// is already dead (asymmetric radio ranges make the reverse of the walked
// edge unreliable, especially next to long-range gateways), and it
// shortcuts the agent's wander into the shortest route its trail supports.
// It reports whether an entry was offered.
func (a *Agent) DepositRoute(neighbors []NodeID, update func(gw, nextHop NodeID, hops int) bool) bool {
	if !a.Trail.Anchored() {
		return false
	}
	if a.Trail.Hops() == 0 {
		// Standing on the gateway itself: nothing to write.
		return false
	}
	for i := 0; i < a.Trail.Len()-1; i++ {
		hop := a.Trail.At(i)
		if !containsID(neighbors, hop) {
			continue
		}
		if update(a.Trail.Gateway(), hop, i+1) {
			a.Overhead.RouteDeposits++
		}
		return true
	}
	return false
}

// containsID reports whether xs (sorted ascending) contains v.
func containsID(xs []NodeID, v NodeID) bool {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(xs) && xs[lo] == v
}
