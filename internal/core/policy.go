package core

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// NodeID aliases graph.NodeID.
type NodeID = graph.NodeID

// PolicyKind names the movement algorithms studied in the paper.
type PolicyKind int

const (
	// PolicyRandom moves to a uniformly random reachable neighbour — the
	// baseline in both scenarios.
	PolicyRandom PolicyKind = iota + 1
	// PolicyConscientious moves to the neighbour never visited or visited
	// least recently, judged by the agent's own (first-hand) history.
	PolicyConscientious
	// PolicySuperConscientious is conscientious but also folds visit
	// history learned from peers into its movement decision.
	PolicySuperConscientious
	// PolicyOldestNode is the routing scenario's name for the
	// conscientious chooser: prefer the neighbour last visited longest
	// ago, never visited, or not remembered.
	PolicyOldestNode
)

// String returns the paper's name for the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyRandom:
		return "random"
	case PolicyConscientious:
		return "conscientious"
	case PolicySuperConscientious:
		return "super-conscientious"
	case PolicyOldestNode:
		return "oldest-node"
	default:
		return "unknown"
	}
}

// usesRecency reports whether the policy consults visit history.
func (k PolicyKind) usesRecency() bool { return k != PolicyRandom }

// tieKey ranks equal-recency candidates. Ties must resolve
// deterministically, and two agents whose histories have become identical
// (after a visit-history merge) must resolve them identically — that
// identity is the mechanism behind the paper's cooperation pathologies:
// merged super-conscientious agents pick identical targets (Fig 5) and
// communicating oldest-node agents chase one another (Fig 11), which
// stigmergy then repairs. But a tie-break shared by ALL agents would herd
// even unrelated agents together whenever they co-locate. So the key
// hashes (node, step, candidate) with the agent's tie salt: each agent is
// born with a private salt (no herding), and merging visit histories also
// merges the salts (merged agents really do become identical deciders).
func tieKey(salt uint64, node NodeID, step int, candidate NodeID) uint64 {
	x := salt ^ uint64(node)<<40 ^ uint64(uint32(step))<<16 ^ uint64(candidate)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// choose picks the next node from candidates (non-empty) for agent a at
// the given step.
func (a *Agent) choose(step int, candidates []NodeID) NodeID {
	if a.epsilon > 0 && a.stream.Bool(a.epsilon) {
		return rng.Pick(a.stream, candidates)
	}
	if !a.kind.usesRecency() {
		return rng.Pick(a.stream, candidates)
	}
	// Recency-based choice: unvisited (or forgotten) neighbours rank as
	// "visited at -1", i.e. before the simulation began; ties resolve by
	// the shared tieKey hash.
	const never = -1
	bestStep := int(^uint(0) >> 1) // max int
	var best NodeID
	var bestKey uint64
	for _, c := range candidates {
		s, ok := a.Visits.Last(c)
		if !ok {
			s = never
		}
		if s > bestStep {
			continue
		}
		key := tieKey(a.tieSalt, a.At, step, c)
		if s < bestStep || key < bestKey || (key == bestKey && c < best) {
			bestStep, best, bestKey = s, c, key
		}
	}
	return best
}
