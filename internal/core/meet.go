package core

import (
	"math/bits"
	"slices"
	"sync"

	"repro/internal/knowledge"
)

// Grouper partitions agents by the node they occupy using reusable
// node-indexed buckets (a counting sort), replacing the per-step map the
// simulation loops used to allocate. One Grouper serves a whole run; the
// group slices its methods return are views into internal storage and are
// valid until the next call.
type Grouper struct {
	count   []int32  // per-node occupancy this round
	cursor  []int32  // per-node fill cursors / end offsets
	touched []NodeID // nodes with at least one agent this round
	members []*Agent // all agents, bucketed by node
	groups  [][]*Agent
}

// NewGrouper returns a grouper for a network of n nodes.
func NewGrouper(n int) *Grouper {
	return &Grouper{count: make([]int32, n), cursor: make([]int32, n)}
}

// Reset re-sizes the grouper for a network of n nodes, reusing its buckets
// when they are already big enough. Groupers keep their count array zeroed
// between calls, so a reset grouper behaves exactly like a fresh one —
// the property run-level executors rely on when recycling per-worker
// scratch across runs.
func (gr *Grouper) Reset(n int) {
	if cap(gr.count) < n {
		gr.count = make([]int32, n)
		gr.cursor = make([]int32, n)
		return
	}
	gr.count = gr.count[:n]
	gr.cursor = gr.cursor[:n]
	for i := range gr.count {
		gr.count[i] = 0
	}
}

// Meetings returns the groups with at least two members, ordered by node
// ID with members in input order — the same deterministic contract as
// GroupByNode.
func (gr *Grouper) Meetings(agents []*Agent) [][]*Agent {
	return gr.group(agents, false)
}

// All returns the meeting groups (node order) followed by singleton groups
// in agent input order — the partition the stigmergic decide phase
// parallelises over.
func (gr *Grouper) All(agents []*Agent) [][]*Agent {
	return gr.group(agents, true)
}

func (gr *Grouper) group(agents []*Agent, singletons bool) [][]*Agent {
	gr.touched = gr.touched[:0]
	for _, a := range agents {
		if gr.count[a.At] == 0 {
			gr.touched = append(gr.touched, a.At)
		}
		gr.count[a.At]++
	}
	slices.Sort(gr.touched)
	if cap(gr.members) < len(agents) {
		gr.members = make([]*Agent, len(agents))
	}
	gr.members = gr.members[:len(agents)]
	cum := int32(0)
	for _, node := range gr.touched {
		gr.cursor[node] = cum
		cum += gr.count[node]
	}
	for _, a := range agents {
		gr.members[gr.cursor[a.At]] = a
		gr.cursor[a.At]++
	}
	// cursor[node] now holds the end offset of node's bucket.
	gr.groups = gr.groups[:0]
	for _, node := range gr.touched {
		if gr.count[node] > 1 {
			end := gr.cursor[node]
			start := end - gr.count[node]
			gr.groups = append(gr.groups, gr.members[start:end:end])
		}
	}
	if singletons {
		for _, a := range agents {
			if gr.count[a.At] == 1 {
				end := gr.cursor[a.At]
				gr.groups = append(gr.groups, gr.members[end-1:end:end])
			}
		}
	}
	for _, node := range gr.touched {
		gr.count[node] = 0
	}
	return gr.groups
}

// GroupByNode partitions agents by the node they currently occupy and
// returns only the groups with at least two members — the meetings.
// Groups are ordered by node ID and members keep the order of the input
// slice, so meeting processing is deterministic. Simulation loops should
// hold a Grouper instead; this convenience form sizes one per call.
func GroupByNode(agents []*Agent) [][]*Agent {
	maxNode := NodeID(-1)
	for _, a := range agents {
		if a.At > maxNode {
			maxNode = a.At
		}
	}
	return NewGrouper(int(maxNode + 1)).Meetings(agents)
}

// meetScratch holds the buffers a meeting needs. Meetings run concurrently
// across co-located groups, so the scratch is pooled rather than shared.
type meetScratch struct {
	sharers []*Agent
	vs      []*Agent
	masks   []uint64 // pre-meeting known-mask snapshots + their union
	mems    []*knowledge.Visits
	merge   knowledge.MergeScratch
}

var meetPool = sync.Pool{New: func() any { return new(meetScratch) }}

// release clears the agent pointers (so pooled scratch does not pin a
// finished run's agents) and returns the scratch to the pool.
func (ms *meetScratch) release() {
	clear(ms.sharers)
	clear(ms.vs)
	clear(ms.mems)
	meetPool.Put(ms)
}

// ExchangeTopology runs the mapping-scenario meeting for one co-located
// group: every sharing agent learns, second-hand and simultaneously, the
// topology its peers know. Simultaneity is modelled by snapshotting every
// participant before any merge, so the outcome does not depend on member
// order. Agents flagged super-conscientious additionally merge visit
// histories — that is what lets peer experience steer their movement.
func ExchangeTopology(group []*Agent) {
	ms := meetPool.Get().(*meetScratch)
	defer ms.release()
	sharers := ms.sharers[:0]
	for _, a := range group {
		if a.SharesTopology() {
			sharers = append(sharers, a)
		}
	}
	ms.sharers = sharers
	if len(sharers) < 2 {
		return
	}
	// Everyone ends up with the union of the group's knowledge. The data
	// a holder passes on is identical whether it knew the record first-
	// or second-hand, so direct transfer from the first pre-meeting
	// knower preserves the simultaneous-exchange semantics. Pre-meeting
	// known-mask snapshots make the set arithmetic word-parallel: each
	// member's missing records are (union &^ own) scans, 64 nodes per
	// word, and the per-record holder search only runs for records that
	// actually transfer. Records known before the meeting are never
	// relearned during it, so a holder's neighbour list is stable while
	// the group updates.
	n := sharers[0].Topo.N()
	words := (n + 63) / 64
	need := (len(sharers) + 1) * words
	if cap(ms.masks) < need {
		ms.masks = make([]uint64, need)
	}
	masks := ms.masks[:need]
	union := masks[len(sharers)*words:]
	clear(union)
	for j, a := range sharers {
		snap := masks[j*words : (j+1)*words]
		copy(snap, a.Topo.KnownMask())
		for wi, mw := range snap {
			union[wi] |= mw
		}
	}
	for i, a := range sharers {
		a.Overhead.Meetings++
		snap := masks[i*words : (i+1)*words]
		for wi := 0; wi < words; wi++ {
			missing := union[wi] &^ snap[wi]
			for missing != 0 {
				b := bits.TrailingZeros64(missing)
				missing &= missing - 1
				u := NodeID(wi<<6 + b)
				for j := range sharers {
					if masks[j*words+wi]&(1<<uint(b)) != 0 {
						a.Topo.LearnSecondHand(u, sharers[j].Topo.Neighbors(u))
						break
					}
				}
				a.Overhead.TopoRecordsReceived++
			}
		}
	}
	mergeVisitSharers(sharers, ms)
	unifySalts(sharers)
}

// mergeVisitSharers merges the visit histories of the group's
// visit-sharing members into their union.
func mergeVisitSharers(group []*Agent, ms *meetScratch) {
	vs := ms.vs[:0]
	for _, a := range group {
		if a.SharesVisits() {
			vs = append(vs, a)
		}
	}
	ms.vs = vs
	if len(vs) < 2 {
		return
	}
	if cap(ms.mems) < len(vs) {
		ms.mems = make([]*knowledge.Visits, len(vs))
	}
	mems := ms.mems[:len(vs)]
	for i, a := range vs {
		mems[i] = a.Visits
	}
	ms.mems = mems
	changed := ms.merge.MergeAll(mems)
	for i, a := range vs {
		a.Overhead.VisitRecordsReceived += changed[i]
	}
}

// unifySalts makes all visit-sharing members of a meeting adopt one salt:
// having merged their histories they are now identical deciders, the
// pathology the paper's Figs 5 and 11 document.
func unifySalts(group []*Agent) {
	var min uint64
	found := false
	for _, a := range group {
		if a.SharesVisits() && (!found || a.tieSalt < min) {
			min = a.tieSalt
			found = true
		}
	}
	if !found {
		return
	}
	for _, a := range group {
		if a.SharesVisits() {
			a.tieSalt = min
		}
	}
}

// ExchangeRoutes runs the routing-scenario meeting for one co-located
// group: all route-sharing agents adopt the best (fewest-hops, anchored)
// gateway trail present, and agents that also share visit histories merge
// them — the mechanism the paper identifies as making oldest-node agents
// identical after a meeting, so they chase one another.
func ExchangeRoutes(group []*Agent) {
	ms := meetPool.Get().(*meetScratch)
	defer ms.release()
	sharers := ms.sharers[:0]
	for _, a := range group {
		if a.SharesRoutes() {
			sharers = append(sharers, a)
		}
	}
	ms.sharers = sharers
	if len(sharers) < 2 {
		return
	}
	best := -1
	for i, a := range sharers {
		if !a.Trail.Anchored() {
			continue
		}
		if best < 0 || a.Trail.BetterThan(sharers[best].Trail) {
			best = i
		}
	}
	for i, a := range sharers {
		a.Overhead.Meetings++
		if best >= 0 && i != best && sharers[best].Trail.BetterThan(a.Trail) {
			a.Trail.CopyFrom(sharers[best].Trail)
			a.Overhead.TrailAdoptions++
		}
	}
	mergeVisitSharers(sharers, ms)
	unifySalts(sharers)
}
