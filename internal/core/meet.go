package core

import (
	"sort"

	"repro/internal/knowledge"
)

// GroupByNode partitions agents by the node they currently occupy and
// returns only the groups with at least two members — the meetings.
// Groups are ordered by node ID and members keep the order of the input
// slice, so meeting processing is deterministic.
func GroupByNode(agents []*Agent) [][]*Agent {
	byNode := make(map[NodeID][]*Agent)
	for _, a := range agents {
		byNode[a.At] = append(byNode[a.At], a)
	}
	nodes := make([]NodeID, 0, len(byNode))
	for n, g := range byNode {
		if len(g) > 1 {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	groups := make([][]*Agent, 0, len(nodes))
	for _, n := range nodes {
		groups = append(groups, byNode[n])
	}
	return groups
}

// ExchangeTopology runs the mapping-scenario meeting for one co-located
// group: every sharing agent learns, second-hand and simultaneously, the
// topology its peers know. Simultaneity is modelled by snapshotting every
// participant before any merge, so the outcome does not depend on member
// order. Agents flagged super-conscientious additionally merge visit
// histories — that is what lets peer experience steer their movement.
func ExchangeTopology(group []*Agent) {
	sharers := group[:0:0]
	for _, a := range group {
		if a.SharesTopology() {
			sharers = append(sharers, a)
		}
	}
	if len(sharers) < 2 {
		return
	}
	// Everyone ends up with the union of the group's knowledge. Rather
	// than snapshotting every member (expensive when merged agents clump
	// and meet every step), precompute one holder per node record from
	// the pre-meeting state; the data a holder passes on is identical
	// whether it knew the record first- or second-hand, so direct
	// transfer preserves the simultaneous-exchange semantics.
	n := sharers[0].Topo.N()
	holder := make([]int16, n)
	for u := 0; u < n; u++ {
		holder[u] = -1
		for j, a := range sharers {
			if a.Topo.Knows(NodeID(u)) {
				holder[u] = int16(j)
				break
			}
		}
	}
	for i, a := range sharers {
		a.Overhead.Meetings++
		for u := 0; u < n; u++ {
			j := holder[u]
			if j < 0 || int(j) == i || a.Topo.Knows(NodeID(u)) {
				continue
			}
			a.Topo.LearnSecondHand(NodeID(u), sharers[j].Topo.Neighbors(NodeID(u)))
			a.Overhead.TopoRecordsReceived++
		}
	}
	mergeVisitSharers(sharers)
	unifySalts(sharers)
}

// mergeVisitSharers merges the visit histories of the group's
// visit-sharing members into their union.
func mergeVisitSharers(group []*Agent) {
	vs := group[:0:0]
	for _, a := range group {
		if a.SharesVisits() {
			vs = append(vs, a)
		}
	}
	if len(vs) < 2 {
		return
	}
	mems := make([]*knowledge.Visits, len(vs))
	for i, a := range vs {
		mems[i] = a.Visits
	}
	changed := knowledge.MergeAll(mems)
	for i, a := range vs {
		a.Overhead.VisitRecordsReceived += changed[i]
	}
}

// unifySalts makes all visit-sharing members of a meeting adopt one salt:
// having merged their histories they are now identical deciders, the
// pathology the paper's Figs 5 and 11 document.
func unifySalts(group []*Agent) {
	var min uint64
	found := false
	for _, a := range group {
		if a.SharesVisits() && (!found || a.tieSalt < min) {
			min = a.tieSalt
			found = true
		}
	}
	if !found {
		return
	}
	for _, a := range group {
		if a.SharesVisits() {
			a.tieSalt = min
		}
	}
}

// ExchangeRoutes runs the routing-scenario meeting for one co-located
// group: all route-sharing agents adopt the best (fewest-hops, anchored)
// gateway trail present, and agents that also share visit histories merge
// them — the mechanism the paper identifies as making oldest-node agents
// identical after a meeting, so they chase one another.
func ExchangeRoutes(group []*Agent) {
	sharers := group[:0:0]
	for _, a := range group {
		if a.SharesRoutes() {
			sharers = append(sharers, a)
		}
	}
	if len(sharers) < 2 {
		return
	}
	best := -1
	for i, a := range sharers {
		if !a.Trail.Anchored() {
			continue
		}
		if best < 0 || a.Trail.BetterThan(sharers[best].Trail) {
			best = i
		}
	}
	for i, a := range sharers {
		a.Overhead.Meetings++
		if best >= 0 && i != best && sharers[best].Trail.BetterThan(a.Trail) {
			a.Trail.CopyFrom(sharers[best].Trail)
			a.Overhead.TrailAdoptions++
		}
	}
	mergeVisitSharers(sharers)
	unifySalts(sharers)
}
