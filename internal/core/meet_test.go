package core

import (
	"testing"

	"repro/internal/rng"
)

func mkAgent(t *testing.T, id int, at NodeID, kind PolicyKind, opts func(*Config)) *Agent {
	t.Helper()
	cfg := Config{
		ID:          id,
		Start:       at,
		Kind:        kind,
		NetworkSize: 20,
		Stream:      rng.New(uint64(id) + 500),
	}
	if opts != nil {
		opts(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGroupByNode(t *testing.T) {
	a := mkAgent(t, 0, 5, PolicyRandom, nil)
	b := mkAgent(t, 1, 5, PolicyRandom, nil)
	c := mkAgent(t, 2, 3, PolicyRandom, nil)
	d := mkAgent(t, 3, 3, PolicyRandom, nil)
	e := mkAgent(t, 4, 9, PolicyRandom, nil) // alone
	groups := GroupByNode([]*Agent{a, b, c, d, e})
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	// Ordered by node: group at 3 first, then 5; members in input order.
	if groups[0][0] != c || groups[0][1] != d {
		t.Fatal("group at node 3 wrong")
	}
	if groups[1][0] != a || groups[1][1] != b {
		t.Fatal("group at node 5 wrong")
	}
}

func TestGroupByNodeNoMeetings(t *testing.T) {
	a := mkAgent(t, 0, 1, PolicyRandom, nil)
	b := mkAgent(t, 1, 2, PolicyRandom, nil)
	if groups := GroupByNode([]*Agent{a, b}); len(groups) != 0 {
		t.Fatalf("unexpected groups: %d", len(groups))
	}
}

func TestExchangeTopologySharesKnowledge(t *testing.T) {
	share := func(c *Config) { c.ShareTopology = true }
	a := mkAgent(t, 0, 5, PolicyConscientious, share)
	b := mkAgent(t, 1, 5, PolicyConscientious, share)
	a.Topo.LearnFirstHand(1, []NodeID{2})
	b.Topo.LearnFirstHand(2, []NodeID{3})
	ExchangeTopology([]*Agent{a, b})
	if !a.Topo.Knows(2) || !b.Topo.Knows(1) {
		t.Fatal("knowledge not exchanged")
	}
	if a.Overhead.TopoRecordsReceived != 1 || b.Overhead.TopoRecordsReceived != 1 {
		t.Fatalf("records = %d/%d", a.Overhead.TopoRecordsReceived, b.Overhead.TopoRecordsReceived)
	}
	if a.Overhead.Meetings != 1 || b.Overhead.Meetings != 1 {
		t.Fatal("meetings not counted")
	}
}

func TestExchangeTopologySimultaneous(t *testing.T) {
	// Three agents, knowledge chains must NOT propagate transitively
	// within one meeting beyond what snapshots allow — everyone ends with
	// the union regardless of member order.
	share := func(c *Config) { c.ShareTopology = true }
	agents := make([]*Agent, 3)
	for i := range agents {
		agents[i] = mkAgent(t, i, 5, PolicyConscientious, share)
		agents[i].Topo.LearnFirstHand(NodeID(i), []NodeID{NodeID(i + 1)})
	}
	ExchangeTopology(agents)
	for i, a := range agents {
		for u := 0; u < 3; u++ {
			if !a.Topo.Knows(NodeID(u)) {
				t.Fatalf("agent %d missing node %d", i, u)
			}
		}
	}
}

func TestExchangeTopologyNonSharersExcluded(t *testing.T) {
	a := mkAgent(t, 0, 5, PolicyConscientious, func(c *Config) { c.ShareTopology = true })
	b := mkAgent(t, 1, 5, PolicyConscientious, nil) // does not share
	a.Topo.LearnFirstHand(1, nil)
	b.Topo.LearnFirstHand(2, nil)
	ExchangeTopology([]*Agent{a, b})
	if a.Topo.Knows(2) || b.Topo.Knows(1) {
		t.Fatal("non-sharer exchanged knowledge")
	}
	if a.Overhead.Meetings != 0 {
		t.Fatal("lone sharer counted a meeting")
	}
}

func TestExchangeTopologyVisitMergeOnlySuper(t *testing.T) {
	share := func(c *Config) { c.ShareTopology = true }
	super1 := mkAgent(t, 0, 5, PolicySuperConscientious, share)
	super2 := mkAgent(t, 1, 5, PolicySuperConscientious, share)
	con := mkAgent(t, 2, 5, PolicyConscientious, share)
	super1.Visits.Record(7, 3)
	super2.Visits.Record(8, 4)
	con.Visits.Record(9, 5)
	ExchangeTopology([]*Agent{super1, super2, con})
	// Supers merge each other's visits.
	if _, ok := super1.Visits.Last(8); !ok {
		t.Fatal("super1 missing super2's visit")
	}
	if _, ok := super2.Visits.Last(7); !ok {
		t.Fatal("super2 missing super1's visit")
	}
	// Supers do not take the conscientious agent's visits, nor vice versa.
	if _, ok := super1.Visits.Last(9); ok {
		t.Fatal("super merged non-sharer's visits")
	}
	if _, ok := con.Visits.Last(7); ok {
		t.Fatal("conscientious agent merged visits")
	}
}

func TestExchangeRoutesAdoptBest(t *testing.T) {
	share := func(c *Config) { c.ShareRoutes = true; c.TrailCapacity = 8 }
	a := mkAgent(t, 0, 5, PolicyRandom, share)
	b := mkAgent(t, 1, 5, PolicyRandom, share)
	// a: gateway 2 hops away; b: gateway 1 hop away.
	a.MoveTo(1, true)
	a.MoveTo(3, false)
	a.MoveTo(5, false)
	b.MoveTo(2, true)
	b.MoveTo(5, false)
	ExchangeRoutes([]*Agent{a, b})
	if a.Trail.Gateway() != 2 || a.Trail.Hops() != 1 {
		t.Fatalf("a did not adopt best trail: gw=%d hops=%d", a.Trail.Gateway(), a.Trail.Hops())
	}
	if b.Trail.Gateway() != 2 || b.Trail.Hops() != 1 {
		t.Fatal("b's better trail changed")
	}
	if a.Overhead.TrailAdoptions != 1 || b.Overhead.TrailAdoptions != 0 {
		t.Fatalf("adoptions = %d/%d", a.Overhead.TrailAdoptions, b.Overhead.TrailAdoptions)
	}
}

func TestExchangeRoutesUnanchoredGainsRoute(t *testing.T) {
	share := func(c *Config) { c.ShareRoutes = true; c.TrailCapacity = 8 }
	a := mkAgent(t, 0, 5, PolicyRandom, share) // never saw a gateway
	b := mkAgent(t, 1, 5, PolicyRandom, share)
	a.MoveTo(5, false)
	b.MoveTo(2, true)
	b.MoveTo(5, false)
	ExchangeRoutes([]*Agent{a, b})
	if !a.Trail.Anchored() || a.Trail.Gateway() != 2 {
		t.Fatal("unanchored agent did not adopt peer trail")
	}
}

func TestExchangeRoutesNooneAnchored(t *testing.T) {
	share := func(c *Config) { c.ShareRoutes = true }
	a := mkAgent(t, 0, 5, PolicyRandom, share)
	b := mkAgent(t, 1, 5, PolicyRandom, share)
	ExchangeRoutes([]*Agent{a, b})
	if a.Trail.Anchored() || b.Trail.Anchored() {
		t.Fatal("phantom route appeared")
	}
	if a.Overhead.Meetings != 1 {
		t.Fatal("meeting still counts")
	}
}

func TestExchangeRoutesVisitMergeForOldestNode(t *testing.T) {
	share := func(c *Config) { c.ShareRoutes = true; c.VisitCapacity = 16 }
	a := mkAgent(t, 0, 5, PolicyOldestNode, share)
	b := mkAgent(t, 1, 5, PolicyOldestNode, share)
	a.EnableVisitSharing(true)
	b.EnableVisitSharing(true)
	a.Visits.Record(3, 1)
	b.Visits.Record(4, 2)
	ExchangeRoutes([]*Agent{a, b})
	if _, ok := a.Visits.Last(4); !ok {
		t.Fatal("a missing b's history")
	}
	if _, ok := b.Visits.Last(3); !ok {
		t.Fatal("b missing a's history")
	}
	if a.Overhead.VisitRecordsReceived != 1 {
		t.Fatalf("VisitRecordsReceived = %d", a.Overhead.VisitRecordsReceived)
	}
}

func TestExchangeRoutesCommOffIsolates(t *testing.T) {
	a := mkAgent(t, 0, 5, PolicyOldestNode, nil)
	b := mkAgent(t, 1, 5, PolicyOldestNode, func(c *Config) { c.ShareRoutes = true; c.TrailCapacity = 8 })
	b.MoveTo(2, true)
	b.MoveTo(5, false)
	ExchangeRoutes([]*Agent{a, b})
	if a.Trail.Anchored() {
		t.Fatal("comm-off agent adopted a trail")
	}
}

func TestOverheadAdd(t *testing.T) {
	var o Overhead
	o.Add(Overhead{Moves: 1, Meetings: 2, TopoRecordsReceived: 3, VisitRecordsReceived: 4,
		TrailAdoptions: 5, RouteDeposits: 6, MarksLeft: 7})
	o.Add(Overhead{Moves: 1})
	if o.Moves != 2 || o.Meetings != 2 || o.TopoRecordsReceived != 3 ||
		o.VisitRecordsReceived != 4 || o.TrailAdoptions != 5 ||
		o.RouteDeposits != 6 || o.MarksLeft != 7 {
		t.Fatalf("Add wrong: %+v", o)
	}
}

func TestSizeBytesGrowsWithKnowledge(t *testing.T) {
	a := mkAgent(t, 0, 5, PolicyConscientious, nil)
	empty := SizeBytes(a)
	if empty != CodeBytes {
		t.Fatalf("empty agent size = %d, want %d", empty, CodeBytes)
	}
	a.Topo.LearnFirstHand(1, []NodeID{2})
	a.Visits.Record(1, 1)
	a.MoveTo(3, true)
	grown := SizeBytes(a)
	if grown != CodeBytes+TopoRecordBytes+VisitRecordBytes+TrailNodeBytes {
		t.Fatalf("size = %d", grown)
	}
	if TotalTrafficBytes(a) != 1*grown {
		t.Fatalf("traffic = %d", TotalTrafficBytes(a))
	}
}

// BenchmarkExchangeTopologyClump guards the holder-based exchange: a
// clump of merged agents meeting every step was the hot path that made
// Fig 5 40x slower with clone-based merging.
func BenchmarkExchangeTopologyClump(b *testing.B) {
	const n, g = 300, 25
	agents := make([]*Agent, g)
	for i := range agents {
		a, err := New(Config{
			ID: i, Kind: PolicySuperConscientious, NetworkSize: n,
			ShareTopology: true, Stream: rng.New(uint64(i)),
		})
		if err != nil {
			b.Fatal(err)
		}
		for u := 0; u < n; u++ {
			a.Topo.LearnFirstHand(NodeID(u), []NodeID{NodeID((u + 1) % n)})
			a.Visits.Record(NodeID(u), u)
		}
		agents[i] = a
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExchangeTopology(agents)
	}
}
