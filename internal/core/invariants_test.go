package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stigmergy"
)

// TestInvariantDecideReturnsCandidate: whatever the policy, memory state,
// or footprints, the decision is always drawn from the candidate set.
func TestInvariantDecideReturnsCandidate(t *testing.T) {
	kinds := []PolicyKind{PolicyRandom, PolicyConscientious, PolicySuperConscientious, PolicyOldestNode}
	f := func(seed uint64) bool {
		s := rng.New(seed)
		kind := kinds[s.Intn(len(kinds))]
		a, err := New(Config{
			ID: int(seed % 1000), Kind: kind, NetworkSize: 30,
			Stigmergy:     s.Bool(0.5),
			VisitCapacity: s.Intn(10),
			Epsilon:       s.Float64() * 0.5,
			Stream:        s.Child(1),
		})
		if err != nil {
			return false
		}
		board := stigmergy.NewBoard(30, 2, 5)
		for step := 0; step < 30; step++ {
			n := 1 + s.Intn(6)
			cands := make([]NodeID, 0, n)
			seen := map[NodeID]bool{}
			for len(cands) < n {
				c := NodeID(s.Intn(30))
				if !seen[c] {
					seen[c] = true
					cands = append(cands, c)
				}
			}
			next := a.Decide(board, step, cands)
			if !seen[next] {
				return false
			}
			a.MoveTo(next, false)
			a.RecordHere(step)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantMergedAgentsStayIdentical: once two visit-sharing agents
// meet, and as long as they keep co-locating and observing the same
// candidates, they decide identically forever — the lockstep behind the
// paper's Figs 5/11.
func TestInvariantMergedAgentsStayIdentical(t *testing.T) {
	mk := func(id int) *Agent {
		a, err := New(Config{
			ID: id, Kind: PolicySuperConscientious, NetworkSize: 20,
			ShareTopology: true, Stream: rng.New(uint64(id)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := mk(1), mk(2)
	// Give them different histories first.
	a.Visits.Record(3, 1)
	b.Visits.Record(7, 2)
	ExchangeTopology([]*Agent{a, b})
	s := rng.New(5)
	for step := 10; step < 60; step++ {
		cands := []NodeID{NodeID(s.Intn(20)), NodeID(s.Intn(20) + 0), NodeID(s.Intn(20))}
		na := a.Decide(nil, step, cands)
		nb := b.Decide(nil, step, cands)
		if na != nb {
			t.Fatalf("step %d: merged agents diverged: %d vs %d", step, na, nb)
		}
		a.MoveTo(na, false)
		b.MoveTo(nb, false)
		a.RecordHere(step)
		b.RecordHere(step)
	}
}

// TestInvariantExchangeTopologyUnion: after a meeting, every sharer knows
// the union of what the group knew before — no more, no less.
func TestInvariantExchangeTopologyUnion(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 10 + s.Intn(20)
		g := 2 + s.Intn(4)
		agents := make([]*Agent, g)
		before := make([][]bool, g)
		for i := range agents {
			a, err := New(Config{
				ID: i, Kind: PolicyConscientious, NetworkSize: n,
				ShareTopology: true, Stream: s.Child(uint64(i)),
			})
			if err != nil {
				return false
			}
			before[i] = make([]bool, n)
			for u := 0; u < n; u++ {
				if s.Bool(0.3) {
					a.Topo.LearnFirstHand(NodeID(u), nil)
					before[i][u] = true
				}
			}
			agents[i] = a
		}
		union := make([]bool, n)
		for _, b := range before {
			for u, known := range b {
				union[u] = union[u] || known
			}
		}
		ExchangeTopology(agents)
		for _, a := range agents {
			for u := 0; u < n; u++ {
				if a.Topo.Knows(NodeID(u)) != union[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantExchangeRoutesBestWins: after a routing meeting, every
// sharer's trail is at least as good as the best pre-meeting trail allows.
func TestInvariantExchangeRoutesBestWins(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		g := 2 + s.Intn(4)
		agents := make([]*Agent, g)
		bestHops := -1
		for i := range agents {
			a, err := New(Config{
				ID: i, Kind: PolicyRandom, NetworkSize: 40,
				ShareRoutes: true, TrailCapacity: 16, Stream: s.Child(uint64(i)),
			})
			if err != nil {
				return false
			}
			// Random walk, maybe through a gateway.
			sawGW := s.Bool(0.7)
			if sawGW {
				a.MoveTo(NodeID(s.Intn(40)), true)
			}
			hops := s.Intn(6)
			for h := 0; h < hops; h++ {
				a.MoveTo(NodeID(s.Intn(40)), false)
			}
			// All meet at node 39.
			a.MoveTo(39, false)
			if a.Trail.Anchored() {
				if bestHops < 0 || a.Trail.Hops() < bestHops {
					bestHops = a.Trail.Hops()
				}
			}
			agents[i] = a
		}
		ExchangeRoutes(agents)
		for _, a := range agents {
			if bestHops < 0 {
				if a.Trail.Anchored() {
					return false // route appeared from nowhere
				}
				continue
			}
			if !a.Trail.Anchored() || a.Trail.Hops() > bestHops {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
