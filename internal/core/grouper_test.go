package core

import (
	"testing"

	"repro/internal/rng"
)

// TestGrouperMatchesGroupByNode drives one reused Grouper over many random
// agent placements and checks Meetings against the convenience form, and
// All against the documented order (meetings by node, then singletons in
// agent order).
func TestGrouperMatchesGroupByNode(t *testing.T) {
	const n = 20
	agents := make([]*Agent, 12)
	for i := range agents {
		agents[i] = mkAgent(t, i, 0, PolicyRandom, nil)
	}
	gr := NewGrouper(n)
	s := rng.New(77)
	for trial := 0; trial < 50; trial++ {
		for _, a := range agents {
			a.At = NodeID(s.Intn(n))
		}
		want := GroupByNode(agents)
		got := gr.Meetings(agents)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d meetings, want %d", trial, len(got), len(want))
		}
		for g := range want {
			if len(got[g]) != len(want[g]) {
				t.Fatalf("trial %d group %d: size %d, want %d", trial, g, len(got[g]), len(want[g]))
			}
			for m := range want[g] {
				if got[g][m] != want[g][m] {
					t.Fatalf("trial %d group %d member %d differs", trial, g, m)
				}
			}
		}

		all := gr.All(agents)
		covered := 0
		for _, g := range all {
			covered += len(g)
		}
		if covered != len(agents) {
			t.Fatalf("trial %d: All covers %d agents, want %d", trial, covered, len(agents))
		}
		// Meetings first (node order), then singletons in agent order.
		meetings := 0
		for _, g := range all {
			if len(g) > 1 {
				meetings++
			}
		}
		prevNode := NodeID(-1)
		for _, g := range all[:meetings] {
			if len(g) < 2 {
				t.Fatalf("trial %d: singleton before meetings end", trial)
			}
			if g[0].At <= prevNode {
				t.Fatalf("trial %d: meetings not in node order", trial)
			}
			prevNode = g[0].At
		}
		prevID := NodeID(-1)
		for _, g := range all[meetings:] {
			if len(g) != 1 {
				t.Fatalf("trial %d: meeting after singletons start", trial)
			}
			if g[0].ID <= prevID {
				t.Fatalf("trial %d: singletons not in agent order", trial)
			}
			prevID = g[0].ID
		}
	}
}

// TestGrouperZeroAllocs enforces the allocation budget: a warmed Grouper
// must partition without allocating.
func TestGrouperZeroAllocs(t *testing.T) {
	const n = 20
	agents := make([]*Agent, 16)
	for i := range agents {
		agents[i] = mkAgent(t, i, NodeID(i%5), PolicyRandom, nil)
	}
	gr := NewGrouper(n)
	gr.Meetings(agents)
	gr.All(agents)
	if avg := testing.AllocsPerRun(50, func() { gr.Meetings(agents) }); avg != 0 {
		t.Fatalf("Grouper.Meetings allocates %v per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { gr.All(agents) }); avg != 0 {
		t.Fatalf("Grouper.All allocates %v per run, want 0", avg)
	}
}
