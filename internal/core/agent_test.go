package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/stigmergy"
)

func newAgent(t *testing.T, cfg Config) *Agent {
	t.Helper()
	if cfg.Stream == nil {
		cfg.Stream = rng.New(uint64(cfg.ID) + 1000)
	}
	if cfg.NetworkSize == 0 {
		cfg.NetworkSize = 10
	}
	if cfg.Kind == 0 {
		cfg.Kind = PolicyRandom
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	valid := Config{Kind: PolicyRandom, NetworkSize: 5, Stream: rng.New(1)}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil stream", func(c *Config) { c.Stream = nil }},
		{"zero network", func(c *Config) { c.NetworkSize = 0 }},
		{"start out of range", func(c *Config) { c.Start = 7 }},
		{"negative start", func(c *Config) { c.Start = -1 }},
		{"unknown policy", func(c *Config) { c.Kind = 0 }},
		{"bad epsilon", func(c *Config) { c.Epsilon = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	if _, err := New(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPolicyKindString(t *testing.T) {
	tests := []struct {
		k    PolicyKind
		want string
	}{
		{PolicyRandom, "random"},
		{PolicyConscientious, "conscientious"},
		{PolicySuperConscientious, "super-conscientious"},
		{PolicyOldestNode, "oldest-node"},
		{PolicyKind(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Fatalf("String(%d) = %q", tt.k, got)
		}
	}
}

func TestSuperConscientiousSharesVisits(t *testing.T) {
	super := newAgent(t, Config{ID: 1, Kind: PolicySuperConscientious})
	if !super.SharesVisits() {
		t.Fatal("super-conscientious must share visits")
	}
	con := newAgent(t, Config{ID: 2, Kind: PolicyConscientious})
	if con.SharesVisits() {
		t.Fatal("conscientious must not share visits")
	}
	con.EnableVisitSharing(true)
	if !con.SharesVisits() {
		t.Fatal("EnableVisitSharing failed")
	}
}

func TestDecideStrandedStays(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Start: 3})
	if next := a.Decide(nil, 0, nil); next != 3 {
		t.Fatalf("stranded agent moved to %d", next)
	}
}

func TestDecideRandomUniform(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Kind: PolicyRandom})
	counts := map[NodeID]int{}
	cands := []NodeID{1, 2, 3}
	for i := 0; i < 3000; i++ {
		counts[a.Decide(nil, i, cands)]++
	}
	for _, c := range cands {
		if counts[c] < 800 {
			t.Fatalf("candidate %d picked only %d/3000", c, counts[c])
		}
	}
}

func TestDecideConscientiousPrefersUnvisited(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Kind: PolicyConscientious})
	a.Visits.Record(1, 5)
	a.Visits.Record(2, 9)
	// 3 is unvisited: must always win.
	for i := 0; i < 50; i++ {
		if next := a.Decide(nil, 10, []NodeID{1, 2, 3}); next != 3 {
			t.Fatalf("picked visited node %d over unvisited", next)
		}
	}
}

func TestDecideConscientiousPrefersOldest(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Kind: PolicyConscientious})
	a.Visits.Record(1, 5)
	a.Visits.Record(2, 9)
	a.Visits.Record(3, 7)
	for i := 0; i < 50; i++ {
		if next := a.Decide(nil, 10, []NodeID{1, 2, 3}); next != 1 {
			t.Fatalf("picked %d, want oldest-visited 1", next)
		}
	}
}

func TestDecideConscientiousTieBreaks(t *testing.T) {
	// Equal-recency ties resolve via a salted hash. Agents sharing salt
	// and history (the post-merge state behind the paper's Fig 5 and
	// Fig 11 pathologies) must choose identically; independent agents must
	// not herd; and the choice must vary across steps so no fixed
	// preference biases the walk.
	a := newAgent(t, Config{ID: 1, Kind: PolicyConscientious})
	twin := newAgent(t, Config{ID: 1, Kind: PolicyConscientious}) // same salt
	other := newAgent(t, Config{ID: 2, Kind: PolicyConscientious})
	cands := []NodeID{5, 4, 7}
	picks := map[NodeID]bool{}
	diverged := false
	for step := 0; step < 50; step++ {
		pa := a.Decide(nil, step, cands)
		if pt := twin.Decide(nil, step, cands); pt != pa {
			t.Fatalf("step %d: same-salt agents diverged: %d vs %d", step, pa, pt)
		}
		if other.Decide(nil, step, cands) != pa {
			diverged = true
		}
		picks[pa] = true
	}
	if len(picks) < 2 {
		t.Fatalf("tie-break shows fixed preference: %v", picks)
	}
	if !diverged {
		t.Fatal("different-salt agents never diverged over 50 steps")
	}
}

func TestSaltUnifiedOnVisitMerge(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Kind: PolicySuperConscientious, ShareTopology: true})
	b := newAgent(t, Config{ID: 2, Kind: PolicySuperConscientious, ShareTopology: true})
	if a.TieSalt() == b.TieSalt() {
		t.Fatal("fresh agents should have distinct salts")
	}
	ExchangeTopology([]*Agent{a, b})
	if a.TieSalt() != b.TieSalt() {
		t.Fatal("visit merge must unify salts")
	}
	// Conscientious (non-visit-sharing) agents keep their own salts.
	c := newAgent(t, Config{ID: 3, Kind: PolicyConscientious, ShareTopology: true})
	d := newAgent(t, Config{ID: 4, Kind: PolicyConscientious, ShareTopology: true})
	ExchangeTopology([]*Agent{c, d})
	if c.TieSalt() == d.TieSalt() {
		t.Fatal("non-visit-sharers must keep private salts")
	}
}

func TestDecideForgottenCountsAsUnvisited(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Kind: PolicyOldestNode, VisitCapacity: 2})
	a.Visits.Record(1, 1)
	a.Visits.Record(2, 2)
	a.Visits.Record(3, 3) // evicts node 1 from the bounded memory
	// Node 1 is now "not remembered" and must be preferred over 2 and 3.
	for i := 0; i < 30; i++ {
		if next := a.Decide(nil, 4, []NodeID{1, 2, 3}); next != 1 {
			t.Fatalf("forgotten node not preferred: %d", next)
		}
	}
}

func TestEpsilonForcesRandomness(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Kind: PolicyConscientious, Epsilon: 1})
	a.Visits.Record(1, 5)
	// With epsilon=1 every move is random, so visited node 1 is sometimes
	// chosen even though 2 is unvisited.
	saw1 := false
	for i := 0; i < 200 && !saw1; i++ {
		saw1 = a.Decide(nil, 10, []NodeID{1, 2}) == 1
	}
	if !saw1 {
		t.Fatal("epsilon=1 never produced a random pick")
	}
}

func TestDecideStigmergyAvoidsMarked(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Start: 0, Kind: PolicyRandom, Stigmergy: true})
	for i := 0; i < 50; i++ {
		// Fresh board each trial: the agent's own footprint from a previous
		// decision must not pollute the check.
		board := stigmergy.NewBoard(10, 3, 0)
		board.Leave(0, 1, 0)
		board.Leave(0, 2, 0)
		if next := a.Decide(board, 1, []NodeID{1, 2, 3}); next != 3 {
			t.Fatalf("stigmergic agent followed a mark to %d", next)
		}
	}
}

func TestDecideStigmergyFallsBackWhenAllMarked(t *testing.T) {
	board := stigmergy.NewBoard(10, 3, 0)
	a := newAgent(t, Config{ID: 1, Start: 0, Kind: PolicyRandom, Stigmergy: true})
	board.Leave(0, 1, 0)
	board.Leave(0, 2, 0)
	next := a.Decide(board, 1, []NodeID{1, 2})
	if next != 1 && next != 2 {
		t.Fatalf("fallback pick = %d", next)
	}
}

func TestDecideStigmergyLeavesMark(t *testing.T) {
	board := stigmergy.NewBoard(10, 3, 0)
	a := newAgent(t, Config{ID: 1, Start: 0, Kind: PolicyRandom, Stigmergy: true})
	next := a.Decide(board, 5, []NodeID{1, 2, 3})
	if !board.IsMarked(0, next, 6) {
		t.Fatal("no footprint left")
	}
	if a.Overhead.MarksLeft != 1 {
		t.Fatalf("MarksLeft = %d", a.Overhead.MarksLeft)
	}
}

func TestNonStigmergicIgnoresBoard(t *testing.T) {
	board := stigmergy.NewBoard(10, 3, 0)
	board.Leave(0, 1, 0)
	a := newAgent(t, Config{ID: 1, Start: 0, Kind: PolicyRandom})
	saw1 := false
	for i := 0; i < 200 && !saw1; i++ {
		saw1 = a.Decide(board, 1, []NodeID{1, 2}) == 1
	}
	if !saw1 {
		t.Fatal("non-stigmergic agent appears to respect marks")
	}
	if a.Overhead.MarksLeft != 0 {
		t.Fatal("non-stigmergic agent left marks")
	}
}

func TestMoveToTrailHandling(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Start: 0, TrailCapacity: 8})
	a.MoveTo(1, false)
	if a.Trail.Anchored() {
		t.Fatal("trail anchored without gateway visit")
	}
	a.MoveTo(2, true) // gateway
	if !a.Trail.Anchored() || a.Trail.Gateway() != 2 || a.Trail.Hops() != 0 {
		t.Fatal("gateway visit did not anchor trail")
	}
	a.MoveTo(3, false)
	a.MoveTo(4, false)
	if a.Trail.Hops() != 2 {
		t.Fatalf("hops = %d", a.Trail.Hops())
	}
	if a.Overhead.Moves != 4 {
		t.Fatalf("Moves = %d", a.Overhead.Moves)
	}
	// Staying put does not count as a move.
	a.MoveTo(4, false)
	if a.Overhead.Moves != 4 {
		t.Fatal("self-move counted")
	}
}

func TestDepositRoute(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Start: 0, TrailCapacity: 8})
	var gotGW, gotHop NodeID
	var gotHops int
	update := func(gw, hop NodeID, hops int) bool {
		gotGW, gotHop, gotHops = gw, hop, hops
		return true
	}
	all := []NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	// Unanchored: nothing to deposit.
	if a.DepositRoute(all, update) {
		t.Fatal("unanchored agent deposited")
	}
	a.MoveTo(5, true) // gateway
	// Standing on gateway: nothing to deposit.
	if a.DepositRoute(all, update) {
		t.Fatal("deposited while on gateway")
	}
	a.MoveTo(6, false)
	if !a.DepositRoute(all, update) {
		t.Fatal("deposit failed")
	}
	if gotGW != 5 || gotHop != 5 || gotHops != 1 {
		t.Fatalf("deposit = gw%d hop%d hops%d", gotGW, gotHop, gotHops)
	}
	a.MoveTo(7, false)
	// Node 7 is adjacent to the gateway itself, so the deposit shortcuts
	// straight to it.
	a.DepositRoute(all, update)
	if gotGW != 5 || gotHop != 5 || gotHops != 1 {
		t.Fatalf("second deposit = gw%d hop%d hops%d", gotGW, gotHop, gotHops)
	}
	// With the gateway out of radio range, the next trail node is used.
	a.DepositRoute([]NodeID{6, 9}, update)
	if gotHop != 6 || gotHops != 2 {
		t.Fatalf("fallback deposit = gw%d hop%d hops%d", gotGW, gotHop, gotHops)
	}
	// With no trail node in range, nothing is offered.
	if a.DepositRoute([]NodeID{9}, update) {
		t.Fatal("deposited with no reachable trail node")
	}
	if a.Overhead.RouteDeposits != 3 {
		t.Fatalf("RouteDeposits = %d", a.Overhead.RouteDeposits)
	}
	// Rejected updates still count as offers but not deposits.
	before := a.Overhead.RouteDeposits
	if !a.DepositRoute(all, func(NodeID, NodeID, int) bool { return false }) {
		t.Fatal("offer should be reported")
	}
	if a.Overhead.RouteDeposits != before {
		t.Fatal("rejected update counted as deposit")
	}
}

func TestLearnNeighborsAndRecordHere(t *testing.T) {
	a := newAgent(t, Config{ID: 1, Start: 3, Kind: PolicyConscientious})
	a.LearnNeighbors([]NodeID{4, 5})
	if !a.Topo.Knows(3) || len(a.Topo.Neighbors(3)) != 2 {
		t.Fatal("LearnNeighbors failed")
	}
	a.RecordHere(9)
	if s, ok := a.Visits.Last(3); !ok || s != 9 {
		t.Fatal("RecordHere failed")
	}
}

func TestAgentDeterminism(t *testing.T) {
	run := func() []NodeID {
		a := newAgent(t, Config{ID: 7, Kind: PolicyConscientious, Stream: rng.New(55)})
		var picks []NodeID
		for i := 0; i < 100; i++ {
			next := a.Decide(nil, i, []NodeID{1, 2, 3, 4})
			picks = append(picks, next)
			a.MoveTo(next, false)
			a.RecordHere(i)
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("agent behaviour diverged at step %d", i)
		}
	}
}
