package core

// Overhead tallies the cost an agent imposes on the network. The paper
// argues its agents add "negligible overhead" compared to prior work
// ([3] ~5×, [10] ~4×); these counters plus SizeBytes let the baseline
// experiments make that comparison concrete.
type Overhead struct {
	// Moves counts agent migrations (each migration ships the agent's
	// code and state across a link).
	Moves int
	// Meetings counts meeting sessions this agent took part in.
	Meetings int
	// TopoRecordsReceived counts node-adjacency records obtained from
	// peers during meetings.
	TopoRecordsReceived int
	// VisitRecordsReceived counts visit-history records merged from peers.
	VisitRecordsReceived int
	// TrailAdoptions counts best-route adoptions during meetings.
	TrailAdoptions int
	// RouteDeposits counts routing-table entries written into nodes.
	RouteDeposits int
	// MarksLeft counts stigmergic footprints written.
	MarksLeft int
}

// Add accumulates o2 into o.
func (o *Overhead) Add(o2 Overhead) {
	o.Moves += o2.Moves
	o.Meetings += o2.Meetings
	o.TopoRecordsReceived += o2.TopoRecordsReceived
	o.VisitRecordsReceived += o2.VisitRecordsReceived
	o.TrailAdoptions += o2.TrailAdoptions
	o.RouteDeposits += o2.RouteDeposits
	o.MarksLeft += o2.MarksLeft
}

// Byte-cost model for an agent in flight. The constants are the paper's
// spirit, not its letter (it publishes no encoding): a fixed code bundle
// plus the serialised knowledge the agent carries.
const (
	// CodeBytes is the fixed size of the agent's code bundle.
	CodeBytes = 512
	// TopoRecordBytes is one node-adjacency record (node ID + ~7 edges).
	TopoRecordBytes = 32
	// VisitRecordBytes is one (node, step) visit record.
	VisitRecordBytes = 8
	// TrailNodeBytes is one trail element.
	TrailNodeBytes = 4
)

// SizeBytes estimates how many bytes migrating agent a costs per hop.
func SizeBytes(a *Agent) int {
	return CodeBytes +
		a.Topo.KnownCount()*TopoRecordBytes +
		a.Visits.Len()*VisitRecordBytes +
		a.Trail.Len()*TrailNodeBytes
}

// TotalTrafficBytes estimates the cumulative bytes this agent has moved
// across links so far: every migration ships the agent at its current
// size. currentSize should be SizeBytes(a); the estimate charges every
// past move at the agent's current (upper-bound) size.
func TotalTrafficBytes(a *Agent) int {
	return a.Overhead.Moves * SizeBytes(a)
}
