// Package experiments defines one reproducible experiment per table/figure
// in the paper's evaluation (Figs 1–11) plus the extensions DESIGN.md
// commits to (stigmergic routing, the epsilon fix, overhead baselines,
// packet-level validation). Each experiment builds the paper-scale
// workload, runs it over independent seeded runs, and returns a Report
// containing the regenerated series, a results table, and shape checks
// that compare the outcome against the paper's qualitative claims.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config tunes an experiment run.
type Config struct {
	// Runs is the number of independent runs per parameter setting
	// (the paper uses 40). 0 means 40.
	Runs int
	// Seed is the root seed; all randomness derives from it. 0 means 1.
	Seed uint64
	// Workers sizes the simulation engine (0/1 = sequential).
	Workers int
	// RunWorkers is the number of independent replications each RunMany
	// batch may execute concurrently (0/1 = sequential). Aggregates are
	// bit-identical at any value; see internal/parallel for the shared
	// budget that keeps RunWorkers × Workers from oversubscribing.
	RunWorkers int
	// ShardWorkers partitions each dynamic world's grid into that many
	// concurrently stepped spatial bands (0/1 = sequential stepping).
	// Topologies are bit-identical at any value; see internal/network.
	ShardWorkers int
	// Quick shrinks workloads (fewer runs, smaller sweeps) for smoke
	// runs; reports note when it is set.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Quick && c.Runs > 8 {
		c.Runs = 8
	}
	return c
}

// Table is a formatted result table.
type Table struct {
	Columns []string
	Rows    [][]string
}

// Series is a named curve (one value per simulation step).
type Series struct {
	Name   string
	Values []float64
}

// Check records whether one of the paper's qualitative claims held.
// Known marks an expected, documented deviation (see EXPERIMENTS.md):
// it is reported but does not count as a reproduction failure.
type Check struct {
	Name   string
	OK     bool
	Known  bool
	Detail string
}

// Report is the output of one experiment.
type Report struct {
	ID         string
	Title      string
	PaperClaim string
	Params     string
	Table      Table
	Series     []Series
	Checks     []Check
}

// String renders the report for terminals.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	fmt.Fprintf(&b, "setup: %s\n\n", r.Params)
	b.WriteString(r.Table.String())
	if len(r.Checks) > 0 {
		b.WriteString("\nshape checks:\n")
		for _, c := range r.Checks {
			status := "OK "
			if !c.OK {
				status = "DEV"
				if c.Known {
					status = "dev (known)"
				}
			}
			fmt.Fprintf(&b, "  [%s] %-40s %s\n", status, c.Name, c.Detail)
		}
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t Table) String() string {
	if len(t.Columns) == 0 {
		return ""
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// TSV renders all series side by side (step column first, shorter series
// padded with their final value), ready for plotting.
func (r Report) TSV() string {
	if len(r.Series) == 0 {
		return ""
	}
	maxLen := 0
	for _, s := range r.Series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	var b strings.Builder
	b.WriteString("step")
	for _, s := range r.Series {
		b.WriteByte('\t')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for t := 0; t < maxLen; t++ {
		fmt.Fprintf(&b, "%d", t)
		for _, s := range r.Series {
			v := 0.0
			switch {
			case t < len(s.Values):
				v = s.Values[t]
			case len(s.Values) > 0:
				v = s.Values[len(s.Values)-1]
			}
			fmt.Fprintf(&b, "\t%.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// runner executes one experiment.
type runner func(Config) (Report, error)

var registry = map[string]struct {
	title string
	run   runner
}{
	"fig1":  {"single agent, Minar agents (random vs conscientious)", fig1},
	"fig2":  {"single agent with stigmergy", fig2},
	"fig3":  {"15 cooperating conscientious agents (Minar)", fig3},
	"fig4":  {"15 cooperating stigmergic conscientious agents", fig4},
	"fig5":  {"conscientious vs super-conscientious across populations (Minar)", fig5},
	"fig6":  {"conscientious vs super-conscientious, stigmergic", fig6},
	"fig7":  {"connectivity over time, 100 oldest-node agents", fig7},
	"fig8":  {"connectivity vs population size", fig8},
	"fig9":  {"connectivity vs history size", fig9},
	"fig10": {"direct communication, random agents", fig10},
	"fig11": {"direct communication, oldest-node agents", fig11},
	"extA":  {"extension: stigmergy in dynamic routing (future work)", extA},
	"extB":  {"extension: epsilon randomness fix for super-conscientious", extB},
	"extC":  {"extension: overhead vs flooding and distance-vector baselines", extC},
	"extD":  {"extension: packet delivery validates connectivity", extD},
	"extE":  {"extension: remapping a battery-degraded network", extE},
	"extF":  {"extension: team diversity (mixed agent types)", extF},
	"extG":  {"extension: agent memory sweep (mapping)", extG},
	"extH":  {"ablation: mobility models (constant vs random vs waypoint)", extH},
	"extI":  {"ablation: radio-range heterogeneity (Minar's env vs the paper's)", extI},
	"extJ":  {"comparison: deliberate agents vs ant colony vs distance-vector", extJ},
	"extK":  {"ablation: node placement (uniform vs clustered vs grid)", extK},
	"extL":  {"robustness: node churn — graceful degradation and stranded agents", extL},
	"extM":  {"robustness: gateway failure and partitions — reconvergence", extM},
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		fi, fj := strings.HasPrefix(ids[i], "fig"), strings.HasPrefix(ids[j], "fig")
		if fi != fj {
			return fi
		}
		if fi {
			return figNum(ids[i]) < figNum(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

func figNum(id string) int {
	n := 0
	fmt.Sscanf(id, "fig%d", &n)
	return n
}

// Title returns the registered title for an experiment ID.
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (Report, error) {
	e, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	rep, err := e.run(cfg.withDefaults())
	if err != nil {
		return Report{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	rep.ID = id
	rep.Title = e.title
	return rep, nil
}

// NormalizeID canonicalises user input for an experiment ID: "1" and
// "fig1" name Figure 1; "A" and "extA" name extension A.
func NormalizeID(s string) string {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "fig") || strings.HasPrefix(s, "ext") {
		return s
	}
	if len(s) == 1 && s[0] >= 'A' && s[0] <= 'Z' {
		return "ext" + s
	}
	return "fig" + s
}

// check builds a Check from a comparison.
func check(name string, ok bool, format string, args ...any) Check {
	return Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)}
}

// f1 formats a float at one decimal, f3 at three.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Markdown renders the report as a GitHub-flavoured Markdown section:
// heading, claim, setup, result table, and check list.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&b, "**Paper:** %s\n\n", r.PaperClaim)
	fmt.Fprintf(&b, "**Setup:** %s\n\n", r.Params)
	if len(r.Table.Columns) > 0 {
		b.WriteString("| " + strings.Join(r.Table.Columns, " | ") + " |\n")
		sep := make([]string, len(r.Table.Columns))
		for i := range sep {
			sep[i] = "---"
		}
		b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
		for _, row := range r.Table.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		b.WriteByte('\n')
	}
	for _, c := range r.Checks {
		mark := "✓"
		if !c.OK {
			mark = "✗ (known deviation)"
			if !c.Known {
				mark = "✗"
			}
		}
		fmt.Fprintf(&b, "- %s %s — %s\n", mark, c.Name, c.Detail)
	}
	b.WriteByte('\n')
	return b.String()
}
