package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// routingBuild generates the canonical 250-node MANET with the same node
// placement and movement trace for every run, as the paper does.
func routingBuild(seed uint64) func() (*network.World, error) {
	return func() (*network.World, error) {
		return netgen.Generate(netgen.Routing250(), seed)
	}
}

// routeSetting runs one routing parameter setting through the cached
// trajectory source: the world's mobility + link churn is recorded once
// per setting and replayed bit-identically by every run, so replication
// parallelises safely without paying the world-step cost R times.
func routeSetting(cfg Config, label string, sc routing.Scenario) (routing.Aggregate, error) {
	sc.Workers = cfg.Workers
	sc.RunWorkers = cfg.RunWorkers
	sc.ShardWorkers = cfg.ShardWorkers
	return routing.RunManyCached(routingBuild(cfg.Seed), sc, cfg.Runs, seedFor(cfg.Seed, label))
}

var connectivityColumns = []string{"setting", "connectivity", "end-to-end", "stability (std)"}

func connRow(name string, agg routing.Aggregate) []string {
	return []string{
		name,
		f3(agg.Mean.Mean) + "±" + f3(agg.Mean.CI),
		f3(agg.EndToEnd.Mean),
		f3(agg.Stability),
	}
}

func fig7(cfg Config) (Report, error) {
	agg, err := routeSetting(cfg, "fig7",
		routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode})
	if err != nil {
		return Report{}, err
	}
	early := stats.WindowMean(agg.AvgSeries, 0, 10)
	late := stats.WindowMean(agg.AvgSeries, 150, 300)
	lateStd := stats.WindowStd(agg.AvgSeries, 150, 300)
	converged := stats.ConvergenceStep(agg.AvgSeries, 0.05)
	return Report{
		PaperClaim: "connectivity starts at zero, ramps quickly, then fluctuates around a converged mean (converged by step 150)",
		Params:     fmt.Sprintf("250-node MANET, 12 gateways, 100 oldest-node agents, 300 steps, %d runs", cfg.Runs),
		Table: Table{Columns: connectivityColumns, Rows: [][]string{
			connRow("100 oldest-node", agg),
		}},
		Series: []Series{
			{Name: "connectivity", Values: agg.AvgSeries},
			{Name: "physical-upper-bound", Values: agg.AvgIdeal},
		},
		Checks: []Check{
			check("starts near zero", early < 0.3, "first-10-step mean %.3f", early),
			check("converges to a plateau", late > early*2, "early %.3f vs late %.3f", early, late),
			check("fluctuates tightly after convergence", lateStd < 0.1, "window std %.3f", lateStd),
			check("converged before the measurement window", converged >= 0 && converged <= 150,
				"converged at step %d (paper: 'at time 150 or well before')", converged),
		},
	}, nil
}

func fig8(cfg Config) (Report, error) {
	pops := []int{10, 25, 50, 100, 200}
	if cfg.Quick {
		pops = []int{10, 50, 150}
	}
	table := Table{Columns: []string{"population", "oldest-node", "random", "oldest stability", "random stability"}}
	oldSeries := Series{Name: "oldest-node"}
	rndSeries := Series{Name: "random"}
	oldWins := 0
	var oldMeans, oldStds []float64
	for _, pop := range pops {
		old, err := routeSetting(cfg, fmt.Sprintf("fig8/old/%d", pop),
			routing.Scenario{Agents: pop, Kind: core.PolicyOldestNode})
		if err != nil {
			return Report{}, err
		}
		rnd, err := routeSetting(cfg, fmt.Sprintf("fig8/rnd/%d", pop),
			routing.Scenario{Agents: pop, Kind: core.PolicyRandom})
		if err != nil {
			return Report{}, err
		}
		if old.Mean.Mean > rnd.Mean.Mean {
			oldWins++
		}
		oldMeans = append(oldMeans, old.Mean.Mean)
		oldStds = append(oldStds, old.Stability)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", pop),
			f3(old.Mean.Mean) + "±" + f3(old.Mean.CI),
			f3(rnd.Mean.Mean) + "±" + f3(rnd.Mean.CI),
			f3(old.Stability),
			f3(rnd.Stability),
		})
		oldSeries.Values = append(oldSeries.Values, old.Mean.Mean)
		rndSeries.Values = append(rndSeries.Values, rnd.Mean.Mean)
	}
	monotone := true
	for i := 1; i < len(oldMeans); i++ {
		if oldMeans[i] < oldMeans[i-1]-0.02 {
			monotone = false
		}
	}
	return Report{
		PaperClaim: "higher population ⇒ higher and more stable connectivity; oldest-node beats random at every setting",
		Params:     fmt.Sprintf("250-node MANET, populations %v, %d runs each", pops, cfg.Runs),
		Table:      table,
		Series:     []Series{oldSeries, rndSeries},
		Checks: []Check{
			check("population raises connectivity", monotone,
				"oldest means %v", fmtFloats(oldMeans)),
			check("population steadies connectivity", oldStds[len(oldStds)-1] < oldStds[0],
				"stability %0.3f → %0.3f", oldStds[0], oldStds[len(oldStds)-1]),
			check("oldest-node wins at every population", oldWins == len(pops),
				"%d/%d settings", oldWins, len(pops)),
		},
	}, nil
}

func fig9(cfg Config) (Report, error) {
	hists := []int{4, 8, 16, 32, 64}
	if cfg.Quick {
		hists = []int{4, 16, 64}
	}
	table := Table{Columns: []string{"history size", "connectivity", "end-to-end", "stability (std)"}}
	series := Series{Name: "connectivity-vs-history"}
	var means, stds []float64
	for _, h := range hists {
		agg, err := routeSetting(cfg, fmt.Sprintf("fig9/%d", h),
			routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode, HistorySize: h})
		if err != nil {
			return Report{}, err
		}
		means = append(means, agg.Mean.Mean)
		stds = append(stds, agg.Stability)
		table.Rows = append(table.Rows, connRow(fmt.Sprintf("%d", h), agg))
		series.Values = append(series.Values, agg.Mean.Mean)
	}
	monotone := true
	for i := 1; i < len(means); i++ {
		if means[i] < means[i-1]-0.02 {
			monotone = false
		}
	}
	return Report{
		PaperClaim: "larger history ⇒ higher and more stable connectivity",
		Params:     fmt.Sprintf("250-node MANET, 100 oldest-node agents, history sizes %v, %d runs", hists, cfg.Runs),
		Table:      table,
		Series:     []Series{series},
		Checks: []Check{
			check("history raises connectivity", monotone, "means %v", fmtFloats(means)),
			check("history steadies connectivity", stds[len(stds)-1] <= stds[0]+0.01,
				"stability %0.3f → %0.3f", stds[0], stds[len(stds)-1]),
		},
	}, nil
}

// commExperiment is the shared machinery of Figs 10 and 11.
func commExperiment(cfg Config, label string, kind core.PolicyKind, hists []int) (Table, []Series, map[int][2]float64, error) {
	table := Table{Columns: []string{"history", "comm off", "comm on", "effect"}}
	offSeries := Series{Name: "comm-off"}
	onSeries := Series{Name: "comm-on"}
	results := make(map[int][2]float64, len(hists))
	for _, h := range hists {
		off, err := routeSetting(cfg, fmt.Sprintf("%s/off/%d", label, h),
			routing.Scenario{Agents: 100, Kind: kind, HistorySize: h})
		if err != nil {
			return Table{}, nil, nil, err
		}
		on, err := routeSetting(cfg, fmt.Sprintf("%s/on/%d", label, h),
			routing.Scenario{Agents: 100, Kind: kind, HistorySize: h, Communicate: true})
		if err != nil {
			return Table{}, nil, nil, err
		}
		effect := "helps"
		if on.Mean.Mean < off.Mean.Mean {
			effect = "hurts"
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", h),
			f3(off.Mean.Mean) + "±" + f3(off.Mean.CI),
			f3(on.Mean.Mean) + "±" + f3(on.Mean.CI),
			effect,
		})
		offSeries.Values = append(offSeries.Values, off.Mean.Mean)
		onSeries.Values = append(onSeries.Values, on.Mean.Mean)
		results[h] = [2]float64{off.Mean.Mean, on.Mean.Mean}
	}
	return table, []Series{offSeries, onSeries}, results, nil
}

func fig10(cfg Config) (Report, error) {
	hists := []int{8, 16, 32}
	if cfg.Quick {
		hists = []int{8, 32}
	}
	table, series, results, err := commExperiment(cfg, "fig10", core.PolicyRandom, hists)
	if err != nil {
		return Report{}, err
	}
	helped := 0
	for _, h := range hists {
		if results[h][1] > results[h][0] {
			helped++
		}
	}
	return Report{
		PaperClaim: "exchanging the best route in meetings improves random agents' connectivity (shown per cache size)",
		Params:     fmt.Sprintf("250-node MANET, 100 random agents, history sizes %v, %d runs", hists, cfg.Runs),
		Table:      table,
		Series:     series,
		Checks: []Check{
			check("communication helps random agents", helped >= (len(hists)+1)/2,
				"helped at %d/%d history sizes", helped, len(hists)),
		},
	}, nil
}

func fig11(cfg Config) (Report, error) {
	hists := []int{8, 16, 32}
	if cfg.Quick {
		hists = []int{8, 32}
	}
	table, series, results, err := commExperiment(cfg, "fig11", core.PolicyOldestNode, hists)
	if err != nil {
		return Report{}, err
	}
	hurt := 0
	for _, h := range hists {
		if results[h][1] < results[h][0] {
			hurt++
		}
	}
	return Report{
		PaperClaim: "communication HURTS oldest-node agents: merged histories make them identical, so they chase one another",
		Params:     fmt.Sprintf("250-node MANET, 100 oldest-node agents, history sizes %v, %d runs", hists, cfg.Runs),
		Table:      table,
		Series:     series,
		Checks: []Check{
			check("communication hurts oldest-node agents", hurt == len(hists),
				"hurt at %d/%d history sizes", hurt, len(hists)),
		},
	}, nil
}

func extA(cfg Config) (Report, error) {
	settings := []struct {
		name string
		sc   routing.Scenario
	}{
		{"oldest", routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode}},
		{"oldest + stig", routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode, Stigmergy: true}},
		{"oldest + comm", routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode, Communicate: true}},
		{"oldest + comm + stig", routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode, Communicate: true, Stigmergy: true}},
	}
	table := Table{Columns: connectivityColumns}
	means := make(map[string]float64, len(settings))
	var curves []Series
	for _, s := range settings {
		agg, err := routeSetting(cfg, "extA/"+s.name, s.sc)
		if err != nil {
			return Report{}, err
		}
		means[s.name] = agg.Mean.Mean
		table.Rows = append(table.Rows, connRow(s.name, agg))
		curves = append(curves, Series{Name: s.name, Values: agg.AvgSeries})
	}
	return Report{
		PaperClaim: "future work: stigmergy should improve routing agents — it must at least repair the Fig 11 chasing pathology",
		Params:     fmt.Sprintf("250-node MANET, 100 oldest-node agents, %d runs", cfg.Runs),
		Table:      table,
		Series:     curves,
		Checks: []Check{
			check("stigmergy rescues communicating agents",
				means["oldest + comm + stig"] > means["oldest + comm"]+0.03,
				"%.3f vs %.3f", means["oldest + comm + stig"], means["oldest + comm"]),
			check("stigmergy does not hurt isolated agents",
				means["oldest + stig"] >= means["oldest"]-0.02,
				"%.3f vs %.3f", means["oldest + stig"], means["oldest"]),
		},
	}, nil
}

func extC(cfg Config) (Report, error) {
	// Mapping overhead: agents vs flooding on the same 300-node network.
	w, err := mappingWorld(cfg.Seed)
	if err != nil {
		return Report{}, err
	}
	flood := baseline.FloodMap(w, 0)
	team, err := mapSetting(cfg, "extC/map",
		mapping.Scenario{Agents: 15, Kind: core.PolicyConscientious, Cooperate: true, Stigmergy: true})
	if err != nil {
		return Report{}, err
	}
	agentRecords := team.Overhead.TopoRecordsReceived / cfg.Runs
	agentMoves := team.Overhead.Moves / cfg.Runs
	agentBytes := agentMoves*core.CodeBytes + agentRecords*core.TopoRecordBytes

	// Routing overhead: agents vs distance-vector on the same MANET trace.
	dvWorld, err := netgen.Generate(netgen.Routing250(), cfg.Seed)
	if err != nil {
		return Report{}, err
	}
	dv := baseline.NewDistanceVector(dvWorld, 3)
	var dvConn []float64
	for step := 0; step < 300; step++ {
		dv.Step()
		if step >= 150 {
			dvConn = append(dvConn, dv.Connectivity(step))
		}
		dvWorld.Step()
	}
	dvMessages := dv.Messages
	dvBytes := dvMessages * 12 * 8 // 12 gateway entries of ~8 bytes per advertisement
	agents, err := routeSetting(cfg, "extC/route",
		routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode})
	if err != nil {
		return Report{}, err
	}
	perRun := agents.Overhead.Moves / cfg.Runs
	agentRouteBytes := perRun * (core.CodeBytes + 32*core.VisitRecordBytes)

	return Report{
		PaperClaim: "mobile agents approach protocol-grade results at a fraction of the message cost (the paper's overhead argument vs [3],[10])",
		Params:     fmt.Sprintf("300-node mapping net + 250-node MANET, %d runs for agent numbers", cfg.Runs),
		Table: Table{
			Columns: []string{"approach", "result", "messages", "est. bytes"},
			Rows: [][]string{
				{"flooding map", fmt.Sprintf("complete in %d rounds", flood.Rounds),
					fmt.Sprintf("%d", flood.Messages), fmt.Sprintf("%d", flood.Bytes)},
				{"15 stig agents map", fmt.Sprintf("complete in %.0f steps", team.Finish.Mean),
					fmt.Sprintf("%d moves", agentMoves), fmt.Sprintf("%d", agentBytes)},
				{"distance-vector routing", fmt.Sprintf("connectivity %.3f", stats.Mean(dvConn)),
					fmt.Sprintf("%d", dvMessages), fmt.Sprintf("%d", dvBytes)},
				{"100 oldest-node agents", fmt.Sprintf("connectivity %.3f (e2e %.3f)", agents.Mean.Mean, agents.EndToEnd.Mean),
					fmt.Sprintf("%d moves", perRun), fmt.Sprintf("%d", agentRouteBytes)},
			},
		},
		Checks: []Check{
			check("agent mapping far cheaper than flooding", agentBytes < flood.Bytes/2,
				"%d vs %d bytes", agentBytes, flood.Bytes),
			check("agent routing cheaper than distance-vector", agentRouteBytes < dvBytes,
				"%d vs %d bytes (%.1fx)", agentRouteBytes, dvBytes, float64(dvBytes)/float64(agentRouteBytes)),
			check("distance-vector still wins on raw connectivity", stats.Mean(dvConn) > agents.EndToEnd.Mean,
				"dv %.3f vs agents %.3f end-to-end", stats.Mean(dvConn), agents.EndToEnd.Mean),
		},
	}, nil
}

func extD(cfg Config) (Report, error) {
	runs := cfg.Runs
	if runs > 10 {
		runs = 10
	}
	var ratios, conns, e2es, hops []float64
	for r := 0; r < runs; r++ {
		w, err := netgen.Generate(netgen.Routing250(), cfg.Seed)
		if err != nil {
			return Report{}, err
		}
		gen := traffic.NewGen(5, 64, 100, rng.New(seedFor(cfg.Seed, "extD/traffic")+uint64(r)))
		sc := routing.Scenario{
			Agents: 100, Kind: core.PolicyOldestNode,
			Workers: cfg.Workers, ShardWorkers: cfg.ShardWorkers,
			Observer: gen.Step,
		}
		res, err := routing.Run(w, sc, seedFor(cfg.Seed, "extD")+uint64(r))
		if err != nil {
			return Report{}, err
		}
		st := gen.Stats()
		ratios = append(ratios, st.DeliveryRatio())
		conns = append(conns, res.Mean)
		e2es = append(e2es, res.MeanEndToEnd)
		hops = append(hops, st.MeanHops())
	}
	ratio := stats.Mean(ratios)
	e2e := stats.Mean(e2es)
	return Report{
		PaperClaim: "the connectivity metric reflects real multi-hop deliverability ('an average packet will use a multi-hop path to reach one of those gateways')",
		Params:     fmt.Sprintf("250-node MANET, 100 oldest-node agents, 5 packets/step after step 100, %d runs", runs),
		Table: Table{
			Columns: []string{"quantity", "mean"},
			Rows: [][]string{
				{"delivery ratio", f3(ratio)},
				{"end-to-end connectivity", f3(e2e)},
				{"local connectivity", f3(stats.Mean(conns))},
				{"mean hops (delivered)", f1(stats.Mean(hops))},
			},
		},
		Checks: []Check{
			check("packets actually flow", ratio > 0.05, "delivery ratio %.3f", ratio),
			check("delivery tracks end-to-end connectivity", ratio > e2e*0.3 && ratio < e2e*3+0.2,
				"ratio %.3f vs e2e %.3f", ratio, e2e),
			check("delivered packets are multi-hop", stats.Mean(hops) > 1.5,
				"mean hops %.1f", stats.Mean(hops)),
		},
	}, nil
}

func fmtFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = f3(x)
	}
	return "[" + joinStrings(parts, " ") + "]"
}

func joinStrings(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}

// extJ compares three ways to route the same MANET at matched population:
// the paper's deliberate history-driven agents, an AntHocNet-style ant
// colony (the nature-inspired approach of the paper's related work [9],
// [11]), and the distance-vector protocol. It reports result quality and
// traffic side by side.
func extJ(cfg Config) (Report, error) {
	// Deliberate agents (paper).
	agents, err := routeSetting(cfg, "extJ/agents",
		routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode})
	if err != nil {
		return Report{}, err
	}
	agentMoves := agents.Overhead.Moves / cfg.Runs

	// Ant colony, same population, same world trace, same window.
	runs := cfg.Runs
	var antLocal, antE2E []float64
	antMessages := 0
	for r := 0; r < runs; r++ {
		w, err := netgen.Generate(netgen.Routing250(), cfg.Seed)
		if err != nil {
			return Report{}, err
		}
		colony := baseline.NewAntColony(w, 100, 0.02, 64,
			rng.New(seedFor(cfg.Seed, "extJ/ants")+uint64(r)))
		var local, e2e []float64
		for step := 0; step < 300; step++ {
			colony.Step()
			if step >= 150 {
				local = append(local, colony.LocalConnectivity(step))
				e2e = append(e2e, colony.Connectivity(step))
			}
			w.Step()
		}
		antLocal = append(antLocal, stats.Mean(local))
		antE2E = append(antE2E, stats.Mean(e2e))
		antMessages += colony.Messages
	}
	antMessages /= runs

	// Distance-vector on the same trace (single deterministic run).
	dvWorld, err := netgen.Generate(netgen.Routing250(), cfg.Seed)
	if err != nil {
		return Report{}, err
	}
	dv := baseline.NewDistanceVector(dvWorld, 3)
	var dvConn []float64
	for step := 0; step < 300; step++ {
		dv.Step()
		if step >= 150 {
			dvConn = append(dvConn, dv.Connectivity(step))
		}
		dvWorld.Step()
	}

	antL := stats.Mean(antLocal)
	antE := stats.Mean(antE2E)
	return Report{
		PaperClaim: "the paper positions its deliberate agents against nature-inspired ant routing ([9],[11]); both should be far cheaper than a full protocol",
		Params:     fmt.Sprintf("250-node MANET, population 100, %d runs (DV is deterministic)", cfg.Runs),
		Table: Table{
			Columns: []string{"router", "connectivity", "end-to-end", "traffic/run"},
			Rows: [][]string{
				{"oldest-node agents (paper)", f3(agents.Mean.Mean), f3(agents.EndToEnd.Mean),
					fmt.Sprintf("%d agent hops", agentMoves)},
				{"ant colony (AntHocNet-style)", f3(antL), f3(antE),
					fmt.Sprintf("%d ant hops", antMessages)},
				{"distance-vector protocol", f3(stats.Mean(dvConn)), f3(stats.Mean(dvConn)),
					fmt.Sprintf("%d vector msgs", dv.Messages)},
			},
		},
		Checks: []Check{
			check("both agent systems achieve substantial connectivity",
				agents.Mean.Mean > 0.6 && antL > 0.3,
				"agents %.3f, ants %.3f", agents.Mean.Mean, antL),
			check("agent-style traffic is the same order of magnitude",
				antMessages < 4*agentMoves && agentMoves < 4*antMessages,
				"%d vs %d hops", agentMoves, antMessages),
			check("protocol still wins raw connectivity at higher traffic",
				stats.Mean(dvConn) > agents.Mean.Mean && dv.Messages > 5*agentMoves,
				"dv %.3f @ %d msgs", stats.Mean(dvConn), dv.Messages),
		},
	}, nil
}
