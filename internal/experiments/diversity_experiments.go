package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapping"
)

// extF studies the paper's "diversity of the agent types" dimension:
// mixed teams of 16 agents on the mapping task. Minar et al. found that
// division of labour matters — here the interesting mix is conscientious
// explorers plus random agents that act as knowledge couriers between
// them.
func extF(cfg Config) (Report, error) {
	teams := []struct {
		name string
		team []mapping.TeamSpec
	}{
		{"16 conscientious", []mapping.TeamSpec{
			{Kind: core.PolicyConscientious, Count: 16},
		}},
		{"16 random", []mapping.TeamSpec{
			{Kind: core.PolicyRandom, Count: 16},
		}},
		{"12 conscientious + 4 random", []mapping.TeamSpec{
			{Kind: core.PolicyConscientious, Count: 12},
			{Kind: core.PolicyRandom, Count: 4},
		}},
		{"8 conscientious + 8 random", []mapping.TeamSpec{
			{Kind: core.PolicyConscientious, Count: 8},
			{Kind: core.PolicyRandom, Count: 8},
		}},
		{"12 conscientious + 4 super", []mapping.TeamSpec{
			{Kind: core.PolicyConscientious, Count: 12},
			{Kind: core.PolicySuperConscientious, Count: 4},
		}},
	}
	table := Table{Columns: finishColumns}
	means := make(map[string]float64, len(teams))
	for _, tm := range teams {
		agg, err := mapSetting(cfg, "extF/"+tm.name, mapping.Scenario{
			Team: tm.team, Cooperate: true,
		})
		if err != nil {
			return Report{}, err
		}
		means[tm.name] = agg.Finish.Mean
		table.Rows = append(table.Rows, finishRow(tm.name, agg))
	}
	pure := means["16 conscientious"]
	pureRandom := means["16 random"]
	bestMix := means["12 conscientious + 4 random"]
	if m := means["8 conscientious + 8 random"]; m < bestMix {
		bestMix = m
	}
	return Report{
		PaperClaim: "agent diversity matters: efficient division of labour without central control has a subtle, important effect (Minar via §I)",
		Params:     fmt.Sprintf("300-node net, 16-agent mixed teams, %d runs", cfg.Runs),
		Table:      table,
		Checks: []Check{
			check("any conscientious presence beats pure random", bestMix < pureRandom,
				"best mix %.0f vs pure random %.0f", bestMix, pureRandom),
			knownDeviation("a mixed team beats the pure conscientious team", bestMix < pure,
				"best mix %.0f vs pure conscientious %.0f - with near-optimal explorers, diluting the team with random couriers is not expected to pay; the check documents where the diversity trade-off lands in this environment",
				bestMix, pure),
		},
	}, nil
}

// extG studies the paper's "agent memory" dimension on the mapping task:
// bounding the visit memory of conscientious agents degrades them toward
// random walkers, and the curve between the two extremes quantifies how
// much memory the policy actually needs.
func extG(cfg Config) (Report, error) {
	memories := []int{2, 4, 8, 16, 32, 64, 0} // 0 = unbounded
	table := Table{Columns: []string{"visit memory", "finish mean", "completed"}}
	series := Series{Name: "finish-vs-memory"}
	var means []float64
	for _, m := range memories {
		agg, err := mapSetting(cfg, fmt.Sprintf("extG/%d", m), mapping.Scenario{
			Agents: 15, Kind: core.PolicyConscientious, Cooperate: true,
			VisitCapacity: m,
		})
		if err != nil {
			return Report{}, err
		}
		label := fmt.Sprintf("%d", m)
		if m == 0 {
			label = "unbounded"
		}
		table.Rows = append(table.Rows, []string{
			label,
			f1(agg.Finish.Mean) + "±" + f1(agg.Finish.CI),
			fmt.Sprintf("%d/%d", agg.Completed, agg.Runs),
		})
		series.Values = append(series.Values, agg.Finish.Mean)
		means = append(means, agg.Finish.Mean)
	}
	tiny := means[0]
	unbounded := means[len(means)-1]
	big := means[len(means)-2]
	return Report{
		PaperClaim: "agent memory is one of the efficiency dimensions (§I); too little memory degrades a conscientious agent toward a random walker",
		Params:     fmt.Sprintf("300-node net, 15 conscientious agents, visit-memory sweep, %d runs", cfg.Runs),
		Table:      table,
		Series:     []Series{series},
		Checks: []Check{
			check("tiny memory is clearly worse", tiny > unbounded*1.3,
				"memory 2 %.0f vs unbounded %.0f", tiny, unbounded),
			check("moderate memory approaches unbounded", big < unbounded*1.5,
				"memory 64 %.0f vs unbounded %.0f", big, unbounded),
		},
	}, nil
}
