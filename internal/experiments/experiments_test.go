package experiments

import (
	"strings"
	"testing"
)

// tiny is the smallest config that exercises every code path quickly.
func tiny() Config {
	return Config{Runs: 2, Seed: 1, Quick: true}
}

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11",
		"extA", "extB", "extC", "extD", "extE", "extF", "extG", "extH", "extI", "extJ", "extK",
		"extL", "extM"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s (full: %v)", i, ids[i], want[i], ids)
		}
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Fatalf("missing title for %s", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", tiny()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Runs != 40 || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	q := Config{Quick: true, Runs: 40}.withDefaults()
	if q.Runs != 8 {
		t.Fatalf("quick should cap runs: %+v", q)
	}
}

func TestTableString(t *testing.T) {
	tb := Table{
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"wide-cell", "3"}},
	}
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if len(lines[0]) != len(lines[2]) {
		t.Fatalf("misaligned table:\n%s", s)
	}
	if (Table{}).String() != "" {
		t.Fatal("empty table should render empty")
	}
}

func TestReportTSV(t *testing.T) {
	r := Report{Series: []Series{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{3}},
	}}
	tsv := r.TSV()
	lines := strings.Split(strings.TrimRight(tsv, "\n"), "\n")
	if lines[0] != "step\ta\tb" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("tsv rows = %d", len(lines)-1)
	}
	// Short series padded with final value.
	if !strings.HasSuffix(lines[2], "\t3.0000") {
		t.Fatalf("padding wrong: %q", lines[2])
	}
	if (Report{}).TSV() != "" {
		t.Fatal("no-series TSV should be empty")
	}
}

func TestCheckRendering(t *testing.T) {
	r := Report{
		ID: "x", Title: "t", PaperClaim: "c", Params: "p",
		Table: Table{Columns: []string{"k"}, Rows: [][]string{{"v"}}},
		Checks: []Check{
			{Name: "good", OK: true, Detail: "d"},
			{Name: "bad", OK: false, Detail: "d"},
			{Name: "known-bad", OK: false, Known: true, Detail: "d"},
		},
	}
	s := r.String()
	if !strings.Contains(s, "[OK ]") || !strings.Contains(s, "[DEV]") ||
		!strings.Contains(s, "[dev (known)]") {
		t.Fatalf("check statuses missing:\n%s", s)
	}
}

// TestEveryExperimentRuns smoke-runs each registered experiment at minimal
// size and validates report structure. The paper-shape assertions live in
// the scenario packages' integration tests; this guards the harness.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, tiny())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.ID != id || rep.Title == "" || rep.PaperClaim == "" || rep.Params == "" {
				t.Fatalf("incomplete report header: %+v", rep)
			}
			if len(rep.Table.Columns) == 0 || len(rep.Table.Rows) == 0 {
				t.Fatal("empty table")
			}
			if len(rep.Checks) == 0 {
				t.Fatal("no checks")
			}
			if rep.String() == "" {
				t.Fatal("empty render")
			}
		})
	}
}

func TestSeedChangesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	a, err := Run("fig3", Config{Runs: 2, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig3", Config{Runs: 2, Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.Rows[0][1] == b.Table.Rows[0][1] {
		t.Fatalf("different seeds produced identical finish stats: %v", a.Table.Rows[0])
	}
	c, err := Run("fig3", Config{Runs: 2, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.Rows[0][1] != c.Table.Rows[0][1] {
		t.Fatal("same seed not reproducible")
	}
}

func TestReportMarkdown(t *testing.T) {
	r := Report{
		ID: "fig1", Title: "t", PaperClaim: "claim", Params: "setup",
		Table: Table{Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}},
		Checks: []Check{
			{Name: "ok-check", OK: true, Detail: "fine"},
			{Name: "dev-check", OK: false, Detail: "off"},
			{Name: "known-check", OK: false, Known: true, Detail: "expected"},
		},
	}
	md := r.Markdown()
	for _, want := range []string{
		"### fig1 — t", "**Paper:** claim", "| a | b |", "| 1 | 2 |",
		"✓ ok-check", "✗ dev-check", "✗ (known deviation) known-check",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestNormalizeID(t *testing.T) {
	tests := []struct{ in, want string }{
		{"1", "fig1"},
		{"11", "fig11"},
		{"fig5", "fig5"},
		{"A", "extA"},
		{"extK", "extK"},
		{" 7 ", "fig7"},
	}
	for _, tt := range tests {
		if got := NormalizeID(tt.in); got != tt.want {
			t.Fatalf("NormalizeID(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
