package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/routing"
)

// Robustness studies: run the canonical MANET routing workload under the
// deterministic fault schedules (internal/faults) and report the
// graceful-degradation measures — connectivity floor during a fault
// window, time-to-reconvergence, route staleness, and stranded agents.
// The end-to-end (E2E) columns are the informative ones: the headline
// local-connectivity metric recovers almost instantly because agents only
// need a live next hop, while severed gateway paths register fully in the
// end-to-end series.

// faultedSetting expands one named fault preset against the canonical
// 250-node MANET geometry and runs the routing workload under it.
func faultedSetting(cfg Config, label, preset string, sc routing.Scenario) (routing.Aggregate, error) {
	if preset != "" {
		probe, err := netgen.Generate(netgen.Routing250(), cfg.Seed)
		if err != nil {
			return routing.Aggregate{}, err
		}
		sched, err := faults.Preset(preset, probe.N(), probe.Gateways(),
			sc.Steps, seedFor(cfg.Seed, "faults/"+label))
		if err != nil {
			return routing.Aggregate{}, err
		}
		sc.Faults = sched
	}
	return routeSetting(cfg, label, sc)
}

var robustnessColumns = []string{
	"setting", "connectivity", "end-to-end", "staleness",
	"reconv e2e", "floor e2e", "recovered", "stranded",
}

func robustnessRow(name string, agg routing.Aggregate) []string {
	return []string{
		name,
		f3(agg.Mean.Mean) + "±" + f3(agg.Mean.CI),
		f3(agg.EndToEnd.Mean),
		f1(agg.MeanStaleness),
		f1(agg.ReconvE2E.Mean),
		f3(agg.FloorE2E.Mean),
		fmt.Sprintf("%d/%d", agg.Recovered, agg.Recovered+agg.Censored),
		fmt.Sprintf("%d", agg.Stranded),
	}
}

// extL — node churn: nodes die and revive (some respawning elsewhere)
// while 100 oldest-node agents maintain gateway routes. Compares the
// clean baseline against churn under both stranded-agent policies.
func extL(cfg Config) (Report, error) {
	const steps = 300
	base := routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode,
		Communicate: true, Steps: steps}

	clean, err := faultedSetting(cfg, "extL/clean", "", base)
	if err != nil {
		return Report{}, err
	}
	respawn := base
	respawn.StrandedPolicy = routing.StrandedRespawn
	churnR, err := faultedSetting(cfg, "extL/churn", "churn", respawn)
	if err != nil {
		return Report{}, err
	}
	kill := base
	kill.StrandedPolicy = routing.StrandedKill
	churnK, err := faultedSetting(cfg, "extL/churn-kill", "churn", kill)
	if err != nil {
		return Report{}, err
	}

	return Report{
		PaperClaim: "the agent system is robust to node churn: connectivity degrades gracefully and reconverges after each death wave (extension; the paper only varies battery drain)",
		Params: fmt.Sprintf("250-node MANET, 100 oldest-node agents, churn preset, %d steps, %d runs",
			steps, cfg.Runs),
		Table: Table{Columns: robustnessColumns, Rows: [][]string{
			robustnessRow("no faults", clean),
			robustnessRow("churn, respawn stranded", churnR),
			robustnessRow("churn, kill stranded", churnK),
		}},
		Series: []Series{
			{Name: "clean", Values: clean.AvgSeries},
			{Name: "churn-respawn", Values: churnR.AvgSeries},
			{Name: "churn-kill", Values: churnK.AvgSeries},
		},
		Checks: []Check{
			check("churn strands agents", churnR.Stranded > 0,
				"respawn policy handled %d stranded agents", churnR.Stranded),
			check("fault events reconverge", churnR.Recovered > 0,
				"%d of %d events recovered, mean %.1f steps (e2e)",
				churnR.Recovered, churnR.Recovered+churnR.Censored, churnR.ReconvE2E.Mean),
			check("degradation is graceful", churnR.Mean.Mean > 0.5*clean.Mean.Mean,
				"churn mean %.3f vs clean %.3f", churnR.Mean.Mean, clean.Mean.Mean),
			check("respawn outperforms kill", churnR.Mean.Mean >= churnK.Mean.Mean-0.02,
				"respawn %.3f vs kill %.3f", churnR.Mean.Mean, churnK.Mean.Mean),
		},
	}, nil
}

// extM — gateway failure and partitions: infrastructure-level faults.
// Gateway outages remove routing destinations, partitions sever every
// link across a vertical cut, and the blackout preset combines both with
// churn. The end-to-end floor and reconvergence columns show how far
// service drops and how fast the agents repair the tables.
func extM(cfg Config) (Report, error) {
	const steps = 300
	base := routing.Scenario{Agents: 100, Kind: core.PolicyOldestNode,
		Communicate: true, Steps: steps}

	clean, err := faultedSetting(cfg, "extM/clean", "", base)
	if err != nil {
		return Report{}, err
	}
	gwfail, err := faultedSetting(cfg, "extM/gwfail", "gwfail", base)
	if err != nil {
		return Report{}, err
	}
	part, err := faultedSetting(cfg, "extM/partition", "partition", base)
	if err != nil {
		return Report{}, err
	}
	blackout, err := faultedSetting(cfg, "extM/blackout", "blackout", base)
	if err != nil {
		return Report{}, err
	}

	return Report{
		PaperClaim: "agents repair routing state after gateway failures and network partitions without any global coordination (extension; graceful-degradation study)",
		Params: fmt.Sprintf("250-node MANET, 100 oldest-node agents, gwfail/partition/blackout presets, %d steps, %d runs",
			steps, cfg.Runs),
		Table: Table{Columns: robustnessColumns, Rows: [][]string{
			robustnessRow("no faults", clean),
			robustnessRow("gateway failures", gwfail),
			robustnessRow("partition", part),
			robustnessRow("blackout (all faults)", blackout),
		}},
		Series: []Series{
			{Name: "clean", Values: clean.AvgSeries},
			{Name: "gwfail", Values: gwfail.AvgSeries},
			{Name: "partition", Values: part.AvgSeries},
			{Name: "blackout", Values: blackout.AvgSeries},
		},
		Checks: []Check{
			check("gateway failures dent end-to-end service", gwfail.FloorE2E.Mean < gwfail.EndToEnd.Mean,
				"gwfail e2e floor %.3f vs its run mean %.3f", gwfail.FloorE2E.Mean, gwfail.EndToEnd.Mean),
			check("partitions dent end-to-end service", part.FloorE2E.Mean < part.EndToEnd.Mean,
				"partition e2e floor %.3f vs its run mean %.3f", part.FloorE2E.Mean, part.EndToEnd.Mean),
			check("faults reconverge", gwfail.Recovered > 0 && part.Recovered > 0,
				"gwfail %d recovered, partition %d recovered", gwfail.Recovered, part.Recovered),
			check("blackout is the hardest setting", blackout.FloorE2E.Mean <= gwfail.FloorE2E.Mean+0.05,
				"blackout e2e floor %.3f vs gwfail %.3f", blackout.FloorE2E.Mean, gwfail.FloorE2E.Mean),
		},
	}, nil
}
