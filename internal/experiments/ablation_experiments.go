package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/routing"
)

// extH ablates the mobility model. The paper replaces Kramer et al.'s
// constant-velocity nodes with random velocities "to be closer to real
// networks"; this experiment quantifies how much the choice matters by
// also including the classic random-waypoint model.
func extH(cfg Config) (Report, error) {
	models := []struct {
		name string
		kind netgen.MobilityKind
	}{
		{"constant velocity (Kramer)", netgen.MobilityConstant},
		{"random velocity (paper)", netgen.MobilityRandom},
		{"random waypoint", netgen.MobilityWaypoint},
	}
	table := Table{Columns: connectivityColumns}
	var curves []Series
	means := make(map[string]float64, len(models))
	for _, m := range models {
		spec := netgen.Routing250()
		spec.Mobility = m.kind
		build := func() (*network.World, error) {
			return netgen.Generate(spec, cfg.Seed)
		}
		agg, err := routing.RunManyCached(build, routing.Scenario{
			Agents: 100, Kind: core.PolicyOldestNode,
			Workers: cfg.Workers, RunWorkers: cfg.RunWorkers, ShardWorkers: cfg.ShardWorkers,
		}, cfg.Runs, seedFor(cfg.Seed, "extH/"+m.name))
		if err != nil {
			return Report{}, err
		}
		means[m.name] = agg.Mean.Mean
		table.Rows = append(table.Rows, connRow(m.name, agg))
		curves = append(curves, Series{Name: m.name, Values: agg.AvgSeries})
	}
	lo, hi := 1.0, 0.0
	for _, v := range means {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return Report{
		PaperClaim: "the paper swaps constant velocities for random ones to be 'closer to real networks'; agent routing should be robust to the mobility model",
		Params:     fmt.Sprintf("250-node MANET, 100 oldest-node agents, 3 mobility models, %d runs", cfg.Runs),
		Table:      table,
		Series:     curves,
		Checks: []Check{
			check("agents work under every mobility model", lo > 0.5,
				"worst model connectivity %.3f", lo),
			check("mobility model shifts results only moderately", hi-lo < 0.2,
				"spread %.3f (%.3f..%.3f)", hi-lo, lo, hi),
		},
	}, nil
}

// extI ablates the paper's core environment change: heterogeneous radio
// ranges (asymmetric, directed links) versus Minar's identical ranges
// (bidirectional links). The paper argues its environment is harder and
// more realistic; this measures exactly what that realism costs.
func extI(cfg Config) (Report, error) {
	type setting struct {
		name   string
		spread float64
	}
	settings := []setting{
		{"identical ranges (Minar)", 0},
		{"±10% ranges", 0.10},
		{"±25% ranges (paper)", 0.25},
		{"±40% ranges", 0.40},
	}
	table := Table{Columns: []string{"environment", "mapping finish", "routing connectivity", "asymmetric links"}}
	var mapMeans, routeMeans []float64
	for _, st := range settings {
		// Mapping: same scale as Fig 3 (15 cooperating conscientious).
		mapSpec := netgen.Mapping300()
		mapSpec.RangeSpread = st.spread
		w, err := netgen.Generate(mapSpec, cfg.Seed)
		if err != nil {
			return Report{}, err
		}
		asym := asymmetryFraction(w)
		static := staticWorldFor(cfg, w)
		mapAgg, err := mapping.RunMany(static, mapping.Scenario{
			Agents: 15, Kind: core.PolicyConscientious, Cooperate: true,
			MaxSteps: 200000, Workers: cfg.Workers, RunWorkers: cfg.RunWorkers, ShardWorkers: cfg.ShardWorkers,
		}, cfg.Runs, seedFor(cfg.Seed, "extI/map/"+st.name))
		if err != nil {
			return Report{}, err
		}
		// Routing: same scale as Fig 7.
		routeSpec := netgen.Routing250()
		routeSpec.RangeSpread = st.spread
		build := func() (*network.World, error) {
			return netgen.Generate(routeSpec, cfg.Seed)
		}
		routeAgg, err := routing.RunManyCached(build, routing.Scenario{
			Agents: 100, Kind: core.PolicyOldestNode,
			Workers: cfg.Workers, RunWorkers: cfg.RunWorkers, ShardWorkers: cfg.ShardWorkers,
		}, cfg.Runs, seedFor(cfg.Seed, "extI/route/"+st.name))
		if err != nil {
			return Report{}, err
		}
		mapMeans = append(mapMeans, mapAgg.Finish.Mean)
		routeMeans = append(routeMeans, routeAgg.Mean.Mean)
		table.Rows = append(table.Rows, []string{
			st.name,
			f1(mapAgg.Finish.Mean) + "±" + f1(mapAgg.Finish.CI),
			f3(routeAgg.Mean.Mean) + "±" + f3(routeAgg.Mean.CI),
			f3(asym),
		})
	}
	return Report{
		PaperClaim: "the paper's heterogeneous ranges create one-way links and a harder, more realistic environment than Minar's identical ranges",
		Params:     fmt.Sprintf("range-spread ablation on both scenarios, %d runs each", cfg.Runs),
		Table:      table,
		Series: []Series{
			{Name: "mapping-finish", Values: mapMeans},
			{Name: "routing-connectivity", Values: routeMeans},
		},
		Checks: []Check{
			check("identical ranges have no asymmetric links", firstAsym(table) == "0.000",
				"asymmetry column: %s", firstAsym(table)),
			check("agents survive the paper's harder environment",
				routeMeans[2] > 0.7 && mapMeans[2] > 0,
				"paper setting: finish %.0f, connectivity %.3f", mapMeans[2], routeMeans[2]),
		},
	}, nil
}

// asymmetryFraction returns the fraction of links without a reverse link.
func asymmetryFraction(w *network.World) float64 {
	g := w.Topology()
	total, oneWay := 0, 0
	for u := 0; u < w.N(); u++ {
		for _, v := range g.Out(network.NodeID(u)) {
			total++
			if !g.HasEdge(v, network.NodeID(u)) {
				oneWay++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(oneWay) / float64(total)
}

func firstAsym(t Table) string {
	if len(t.Rows) == 0 || len(t.Rows[0]) < 4 {
		return ""
	}
	return t.Rows[0][3]
}

// extK ablates node placement. The paper assumes nodes are "distributed
// in a two dimension environment randomly"; real deployments cluster
// around buildings or follow planned grids. This measures how much the
// conclusions depend on the uniform-placement assumption.
func extK(cfg Config) (Report, error) {
	layouts := []struct {
		name string
		kind netgen.PlacementKind
	}{
		{"uniform (paper)", netgen.PlacementUniform},
		{"clustered", netgen.PlacementClustered},
		{"jittered grid", netgen.PlacementGrid},
	}
	table := Table{Columns: []string{"placement", "mapping finish", "routing connectivity", "routing e2e"}}
	var routeMeans []float64
	for _, l := range layouts {
		// Full mapping needs a strongly connected network. At the paper's
		// edge budget, clustered layouts essentially never are (the
		// binary-searched radio range saturates on intra-cluster links
		// before the clusters interconnect) — which is a finding in
		// itself, reported as n/a rather than forced.
		mapCell := "n/a (not strongly connected)"
		mapSpec := netgen.Mapping300()
		mapSpec.Placement = l.kind
		mapSpec.MaxTries = 64
		if w, err := netgen.Generate(mapSpec, cfg.Seed); err == nil {
			static := staticWorldFor(cfg, w)
			mapAgg, err := mapping.RunMany(static, mapping.Scenario{
				Agents: 15, Kind: core.PolicyConscientious, Cooperate: true,
				MaxSteps: 200000, Workers: cfg.Workers, RunWorkers: cfg.RunWorkers, ShardWorkers: cfg.ShardWorkers,
			}, cfg.Runs, seedFor(cfg.Seed, "extK/map/"+l.name))
			if err != nil {
				return Report{}, err
			}
			mapCell = f1(mapAgg.Finish.Mean) + "±" + f1(mapAgg.Finish.CI)
		}
		routeSpec := netgen.Routing250()
		routeSpec.Placement = l.kind
		build := func() (*network.World, error) {
			return netgen.Generate(routeSpec, cfg.Seed)
		}
		routeAgg, err := routing.RunManyCached(build, routing.Scenario{
			Agents: 100, Kind: core.PolicyOldestNode,
			Workers: cfg.Workers, RunWorkers: cfg.RunWorkers, ShardWorkers: cfg.ShardWorkers,
		}, cfg.Runs, seedFor(cfg.Seed, "extK/route/"+l.name))
		if err != nil {
			return Report{}, err
		}
		routeMeans = append(routeMeans, routeAgg.Mean.Mean)
		table.Rows = append(table.Rows, []string{
			l.name,
			mapCell,
			f3(routeAgg.Mean.Mean) + "±" + f3(routeAgg.Mean.CI),
			f3(routeAgg.EndToEnd.Mean),
		})
	}
	lo, hi := routeMeans[0], routeMeans[0]
	for _, v := range routeMeans {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return Report{
		PaperClaim: "the paper assumes uniformly random placement; conclusions should not be an artefact of it",
		Params:     fmt.Sprintf("placement ablation on both scenarios, %d runs each", cfg.Runs),
		Table:      table,
		Checks: []Check{
			check("agents route every layout", lo > 0.5, "worst layout connectivity %.3f", lo),
			check("placement shifts connectivity only moderately", hi-lo < 0.25,
				"spread %.3f (%.3f..%.3f)", hi-lo, lo, hi),
		},
	}, nil
}
