package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/stats"
)

// mappingWorlds memoises the canonical 300-node mapping network per seed:
// the paper runs every mapping experiment on one fixed network.
var mappingWorlds sync.Map

func mappingWorld(seed uint64) (*network.World, error) {
	if w, ok := mappingWorlds.Load(seed); ok {
		return w.(*network.World), nil
	}
	w, err := netgen.Generate(netgen.Mapping300(), seed)
	if err != nil {
		return nil, err
	}
	mappingWorlds.Store(seed, w)
	return w, nil
}

// seedFor derives a distinct base seed per parameter setting.
func seedFor(root uint64, label string) uint64 {
	return rng.New(root).Named(label).Uint64()
}

// staticWorldFor adapts a shared static world to RunMany's worldFor
// contract. Sequential replication shares w across runs; parallel
// replication (cfg.RunWorkers > 1) needs a world per run, so every call
// clones w through the snapshot machinery — a bit-identical world at a
// fraction of the netgen cost (no placement retries, no connectivity
// check, no radio-range binary search).
func staticWorldFor(cfg Config, w *network.World) func(int) (*network.World, error) {
	if cfg.RunWorkers > 1 {
		snap := w.Snapshot()
		return func(int) (*network.World, error) { return snap.World() }
	}
	return func(int) (*network.World, error) { return w, nil }
}

// mapSetting runs one mapping parameter setting.
func mapSetting(cfg Config, label string, sc mapping.Scenario) (mapping.Aggregate, error) {
	sc.Workers = cfg.Workers
	sc.RunWorkers = cfg.RunWorkers
	sc.ShardWorkers = cfg.ShardWorkers
	if sc.MaxSteps == 0 {
		sc.MaxSteps = 200000
	}
	w, err := mappingWorld(cfg.Seed)
	if err != nil {
		return mapping.Aggregate{}, err
	}
	worldFor := staticWorldFor(cfg, w)
	return mapping.RunMany(worldFor, sc, cfg.Runs, seedFor(cfg.Seed, label))
}

// finishRow formats one agent type's finishing-time statistics.
func finishRow(name string, agg mapping.Aggregate) []string {
	return []string{
		name,
		f1(agg.Finish.Mean) + "±" + f1(agg.Finish.CI),
		f1(agg.Finish.Min),
		f1(agg.Finish.Median),
		f1(agg.Finish.Max),
		fmt.Sprintf("%d/%d", agg.Completed, agg.Runs),
	}
}

var finishColumns = []string{"agent", "finish mean", "min", "median", "max", "completed"}

func fig1(cfg Config) (Report, error) {
	rnd, err := mapSetting(cfg, "fig1/random", mapping.Scenario{Agents: 1, Kind: core.PolicyRandom})
	if err != nil {
		return Report{}, err
	}
	con, err := mapSetting(cfg, "fig1/conscientious", mapping.Scenario{Agents: 1, Kind: core.PolicyConscientious})
	if err != nil {
		return Report{}, err
	}
	ratio := rnd.Finish.Mean / con.Finish.Mean
	return Report{
		PaperClaim: "single conscientious agent finishes ~3000 steps vs ~8000 for random (~2.7x)",
		Params:     fmt.Sprintf("300-node net, 1 agent, %d runs", cfg.Runs),
		Table: Table{Columns: finishColumns, Rows: [][]string{
			finishRow("random", rnd),
			finishRow("conscientious", con),
		}},
		Series: []Series{
			{Name: "random", Values: rnd.AvgMinCurve},
			{Name: "conscientious", Values: con.AvgMinCurve},
		},
		Checks: []Check{
			check("conscientious beats random", con.Finish.Mean < rnd.Finish.Mean,
				"%.0f vs %.0f (ratio %.2fx, paper ~2.7x)", con.Finish.Mean, rnd.Finish.Mean, ratio),
		},
	}, nil
}

func fig2(cfg Config) (Report, error) {
	rnd, err := mapSetting(cfg, "fig2/random", mapping.Scenario{Agents: 1, Kind: core.PolicyRandom, Stigmergy: true})
	if err != nil {
		return Report{}, err
	}
	con, err := mapSetting(cfg, "fig2/conscientious", mapping.Scenario{Agents: 1, Kind: core.PolicyConscientious, Stigmergy: true})
	if err != nil {
		return Report{}, err
	}
	// The non-stigmergic counterparts for the cross-figure comparison.
	plainRnd, err := mapSetting(cfg, "fig1/random", mapping.Scenario{Agents: 1, Kind: core.PolicyRandom})
	if err != nil {
		return Report{}, err
	}
	plainCon, err := mapSetting(cfg, "fig1/conscientious", mapping.Scenario{Agents: 1, Kind: core.PolicyConscientious})
	if err != nil {
		return Report{}, err
	}
	return Report{
		PaperClaim: "stigmergy speeds up both single agents: conscientious 3000→2500, random 8000→6600",
		Params:     fmt.Sprintf("300-node net, 1 agent, footprints on, %d runs", cfg.Runs),
		Table: Table{Columns: finishColumns, Rows: [][]string{
			finishRow("stig random", rnd),
			finishRow("stig conscientious", con),
			finishRow("plain random", plainRnd),
			finishRow("plain conscientious", plainCon),
		}},
		Series: []Series{
			{Name: "stig-random", Values: rnd.AvgMinCurve},
			{Name: "stig-conscientious", Values: con.AvgMinCurve},
		},
		Checks: []Check{
			check("stigmergy speeds up random", rnd.Finish.Mean < plainRnd.Finish.Mean,
				"%.0f vs %.0f", rnd.Finish.Mean, plainRnd.Finish.Mean),
			knownDeviation("stigmergy speeds up conscientious",
				con.Finish.Mean < plainCon.Finish.Mean,
				"%.0f vs %.0f - our conscientious walker is already near-optimal (~2.8 visits/node vs the paper's ~10), leaving stigmergy nothing to repair for a single agent",
				con.Finish.Mean, plainCon.Finish.Mean),
			check("stig conscientious beats stig random", con.Finish.Mean < rnd.Finish.Mean,
				"%.0f vs %.0f", con.Finish.Mean, rnd.Finish.Mean),
		},
	}, nil
}

func fig3(cfg Config) (Report, error) {
	team, err := mapSetting(cfg, "fig3/team",
		mapping.Scenario{Agents: 15, Kind: core.PolicyConscientious, Cooperate: true})
	if err != nil {
		return Report{}, err
	}
	solo, err := mapSetting(cfg, "fig3/solo",
		mapping.Scenario{Agents: 15, Kind: core.PolicyConscientious})
	if err != nil {
		return Report{}, err
	}
	return Report{
		PaperClaim: "15 cooperating conscientious agents finish in ~140 steps; cooperation is the driver",
		Params:     fmt.Sprintf("300-node net, 15 agents, %d runs", cfg.Runs),
		Table: Table{Columns: finishColumns, Rows: [][]string{
			finishRow("cooperating", team),
			finishRow("isolated", solo),
		}},
		Series: []Series{
			{Name: "avg-knowledge", Values: team.AvgCurve},
			{Name: "slowest-agent", Values: team.AvgMinCurve},
		},
		Checks: []Check{
			check("cooperation beats isolation", team.Finish.Mean < solo.Finish.Mean,
				"%.0f vs %.0f", team.Finish.Mean, solo.Finish.Mean),
		},
	}, nil
}

func fig4(cfg Config) (Report, error) {
	stig, err := mapSetting(cfg, "fig4/stig",
		mapping.Scenario{Agents: 15, Kind: core.PolicyConscientious, Cooperate: true, Stigmergy: true})
	if err != nil {
		return Report{}, err
	}
	plain, err := mapSetting(cfg, "fig3/team",
		mapping.Scenario{Agents: 15, Kind: core.PolicyConscientious, Cooperate: true})
	if err != nil {
		return Report{}, err
	}
	speedup := (plain.Finish.Mean - stig.Finish.Mean) / plain.Finish.Mean * 100
	return Report{
		PaperClaim: "15 stigmergic conscientious agents finish ~125 steps, ~10% faster than Minar's (~140)",
		Params:     fmt.Sprintf("300-node net, 15 agents, footprints on, %d runs", cfg.Runs),
		Table: Table{Columns: finishColumns, Rows: [][]string{
			finishRow("stigmergic", stig),
			finishRow("plain", plain),
		}},
		Series: []Series{
			{Name: "stig-avg-knowledge", Values: stig.AvgCurve},
			{Name: "plain-avg-knowledge", Values: plain.AvgCurve},
		},
		Checks: []Check{
			knownDeviation("stigmergy speeds up the team",
				stig.Finish.Mean < plain.Finish.Mean,
				"%.0f vs %.0f (%.0f%% faster, paper ~10%%) - neutral here for the same reason as Fig 2: the conscientious baseline is already near-optimal, so footprints have no inefficiency to remove; their value shows where agents herd (Figs 6, extA)",
				stig.Finish.Mean, plain.Finish.Mean, speedup),
		},
	}, nil
}

// populationSweep is the shared machinery of Figs 5 and 6.
func populationSweep(cfg Config, label string, stigmergy bool) (Report, error) {
	pops := []int{1, 2, 5, 10, 15, 25, 40}
	if cfg.Quick {
		pops = []int{2, 10, 40}
	}
	table := Table{Columns: []string{"population", "conscientious", "super-conscientious", "winner"}}
	var conSeries, supSeries Series
	conSeries.Name, supSeries.Name = "conscientious", "super-conscientious"
	var smallOK, largeDiverge bool
	var firstCon, firstSup, lastCon, lastSup float64
	for i, pop := range pops {
		con, err := mapSetting(cfg, fmt.Sprintf("%s/con/%d", label, pop),
			mapping.Scenario{Agents: pop, Kind: core.PolicyConscientious, Cooperate: true, Stigmergy: stigmergy})
		if err != nil {
			return Report{}, err
		}
		sup, err := mapSetting(cfg, fmt.Sprintf("%s/sup/%d", label, pop),
			mapping.Scenario{Agents: pop, Kind: core.PolicySuperConscientious, Cooperate: true, Stigmergy: stigmergy})
		if err != nil {
			return Report{}, err
		}
		winner := "super"
		if con.Finish.Mean < sup.Finish.Mean {
			winner = "conscientious"
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", pop),
			f1(con.Finish.Mean) + "±" + f1(con.Finish.CI),
			f1(sup.Finish.Mean) + "±" + f1(sup.Finish.CI),
			winner,
		})
		conSeries.Values = append(conSeries.Values, con.Finish.Mean)
		supSeries.Values = append(supSeries.Values, sup.Finish.Mean)
		if i == 0 {
			firstCon, firstSup = con.Finish.Mean, sup.Finish.Mean
			smallOK = sup.Finish.Mean <= con.Finish.Mean*1.05
		}
		if i == len(pops)-1 {
			lastCon, lastSup = con.Finish.Mean, sup.Finish.Mean
			largeDiverge = sup.Finish.Mean > con.Finish.Mean
		}
	}
	rep := Report{
		Params: fmt.Sprintf("300-node net, populations %v, %d runs each", pops, cfg.Runs),
		Table:  table,
		Series: []Series{conSeries, supSeries},
	}
	if stigmergy {
		rep.PaperClaim = "with stigmergy, super-conscientious wins at ALL population sizes"
		rep.Checks = []Check{
			check("super wins at smallest population", firstSup <= firstCon*1.05,
				"super %.0f vs con %.0f", firstSup, firstCon),
			check("super wins at largest population", lastSup < lastCon,
				"super %.0f vs con %.0f", lastSup, lastCon),
		}
	} else {
		rep.PaperClaim = "super wins small populations but LOSES to conscientious at large ones (the surprising result)"
		rep.Checks = []Check{
			check("super competitive at smallest population", smallOK,
				"super %.0f vs con %.0f", firstSup, firstCon),
			check("conscientious wins at largest population", largeDiverge,
				"super %.0f vs con %.0f", lastSup, lastCon),
		}
	}
	return rep, nil
}

func fig5(cfg Config) (Report, error) { return populationSweep(cfg, "fig5", false) }
func fig6(cfg Config) (Report, error) { return populationSweep(cfg, "fig6", true) }

func extB(cfg Config) (Report, error) {
	pop := 40
	if cfg.Quick {
		pop = 16
	}
	table := Table{Columns: []string{"epsilon", "finish mean", "completed"}}
	var series Series
	series.Name = "finish-vs-epsilon"
	epsilons := []float64{0, 0.05, 0.1, 0.2, 0.4}
	means := make([]float64, len(epsilons))
	for i, eps := range epsilons {
		agg, err := mapSetting(cfg, fmt.Sprintf("extB/%v", eps), mapping.Scenario{
			Agents: pop, Kind: core.PolicySuperConscientious, Cooperate: true, Epsilon: eps,
		})
		if err != nil {
			return Report{}, err
		}
		means[i] = agg.Finish.Mean
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.2f", eps),
			f1(agg.Finish.Mean) + "±" + f1(agg.Finish.CI),
			fmt.Sprintf("%d/%d", agg.Completed, agg.Runs),
		})
		series.Values = append(series.Values, agg.Finish.Mean)
	}
	best := means[0]
	for _, m := range means[1:] {
		if m < best {
			best = m
		}
	}
	return Report{
		PaperClaim: "Minar's fix: randomness disperses large super-conscientious populations (best case matches conscientious)",
		Params:     fmt.Sprintf("300-node net, %d super-conscientious agents, epsilon sweep, %d runs", pop, cfg.Runs),
		Table:      table,
		Series:     []Series{series},
		Checks: []Check{
			check("some epsilon beats epsilon=0", best < means[0],
				"best %.0f vs plain %.0f", best, means[0]),
		},
	}, nil
}

func extE(cfg Config) (Report, error) {
	// A battery-degraded mapping network: map it once, let it decay, and
	// measure how stale the map becomes and what a remap costs.
	spec := netgen.Mapping300()
	spec.BatteryFraction = 0.5
	spec.DecayPerStep = 0.0003 // slow enough for the initial survey to finish
	spec.FloorFraction = 0.8   // degrade links without partitioning the network
	runs := cfg.Runs
	if runs > 10 {
		runs = 10 // each run regenerates and decays a full world
	}
	var firstFinish, accAtFinish, accAfterDecay, remapCoverage []float64
	const decaySteps = 800
	for r := 0; r < runs; r++ {
		w, err := netgen.Generate(spec, cfg.Seed+uint64(r))
		if err != nil {
			return Report{}, err
		}
		sc := mapping.Scenario{Agents: 15, Kind: core.PolicyConscientious,
			Cooperate: true, Stigmergy: true,
			Workers: cfg.Workers, ShardWorkers: cfg.ShardWorkers}
		res, err := mapping.Run(w, sc, seedFor(cfg.Seed, "extE")+uint64(r))
		if err != nil {
			return Report{}, err
		}
		if !res.Finished {
			continue
		}
		firstFinish = append(firstFinish, float64(res.FinishStep))
		// Reconstruct team knowledge accuracy via a probe agent that is
		// taught the world as the team finished it: compare the world at
		// finish time vs after decay.
		snapshot := w.Topology().Clone()
		match := 0
		for u := 0; u < w.N(); u++ {
			if equalIDs(snapshot.Out(network.NodeID(u)), w.Neighbors(network.NodeID(u))) {
				match++
			}
		}
		accAtFinish = append(accAtFinish, float64(match)/float64(w.N()))
		for i := 0; i < decaySteps; i++ {
			w.Step()
		}
		match = 0
		for u := 0; u < w.N(); u++ {
			if equalIDs(snapshot.Out(network.NodeID(u)), w.Neighbors(network.NodeID(u))) {
				match++
			}
		}
		accAfterDecay = append(accAfterDecay, float64(match)/float64(w.N()))
		// Remap the decayed network. Degradation usually costs the
		// network strong connectivity, so "perfect knowledge of every
		// node" is no longer achievable — the honest remap metric is the
		// coverage a fresh team reaches within a bounded budget.
		remapSC := sc
		remapSC.MaxSteps = 5000
		res2, err := mapping.Run(w, remapSC, seedFor(cfg.Seed, "extE/remap")+uint64(r))
		if err != nil {
			return Report{}, err
		}
		remapCoverage = append(remapCoverage, res2.Curve[len(res2.Curve)-1])
	}
	finish := stats.Summarize(firstFinish)
	acc0 := stats.Summarize(accAtFinish)
	acc1 := stats.Summarize(accAfterDecay)
	remap := stats.Summarize(remapCoverage)
	return Report{
		PaperClaim: "link degradation invalidates the map over time, so agents must be fired up again (paper §II.A)",
		Params: fmt.Sprintf("300-node net, 50%% battery nodes decaying, %d decay steps, %d runs",
			decaySteps, runs),
		Table: Table{
			Columns: []string{"quantity", "mean", "min", "max"},
			Rows: [][]string{
				{"initial map finish (steps)", f1(finish.Mean), f1(finish.Min), f1(finish.Max)},
				{"map accuracy at finish", f3(acc0.Mean), f3(acc0.Min), f3(acc0.Max)},
				{"map accuracy after decay", f3(acc1.Mean), f3(acc1.Min), f3(acc1.Max)},
				{"remap coverage (fraction)", f3(remap.Mean), f3(remap.Min), f3(remap.Max)},
			},
		},
		Checks: []Check{
			check("decay invalidates the map", acc1.Mean < acc0.Mean,
				"accuracy %.3f → %.3f", acc0.Mean, acc1.Mean),
			check("remap re-learns the reachable network", remap.N > 0 && remap.Mean > 0.6,
				"remap coverage %.3f over %d runs (degradation usually breaks strong connectivity, so full coverage is impossible)", remap.Mean, remap.N),
		},
	}, nil
}

// knownDeviation builds a Check flagged as a documented deviation when it
// fails.
func knownDeviation(name string, ok bool, format string, args ...any) Check {
	c := check(name, ok, format, args...)
	c.Known = true
	return c
}

func equalIDs(a, b []network.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
