package network

// TopoDeltas is the per-step topology change stream consumers subscribe to
// through World.WatchTopology: the directed edges the last Step added and
// removed, or — when the step ran through a path that rewrites the whole
// graph (full rebuilds, fault events, out-of-band SetFaults/snapshot
// restores) — the Rebuilt flag instead of an edge list. The buffer is
// reset at the top of every Step and is valid until the next one;
// consumers keep their own step cursor (Step) and must fall back to a full
// resync whenever Rebuilt is set or their cursor shows a missed step.
//
// The stream may over-report: the incremental and sharded engines emit at
// decision points, so an entry can name an edge whose surgical edit turned
// out to be a no-op (it was already present or already gone). Consumers
// must tolerate that — the DynReach protocol does by construction. The
// stream never under-reports on a step with Rebuilt == false.
type TopoDeltas struct {
	// Step is the world step these deltas describe (StepCount after it).
	Step int
	// Rebuilt marks a step whose changes are not enumerated: the topology
	// was rewritten wholesale. Consumers must resync. Out-of-band rebuilds
	// (SetFaults detach, snapshot restore) set it too, outside any Step.
	Rebuilt bool
	// AddU/AddV and RemU/RemV are the added and removed directed edges,
	// as parallel slices.
	AddU, AddV []NodeID
	RemU, RemV []NodeID
}

func (d *TopoDeltas) reset(step int) {
	d.Step = step
	d.Rebuilt = false
	d.AddU = d.AddU[:0]
	d.AddV = d.AddV[:0]
	d.RemU = d.RemU[:0]
	d.RemV = d.RemV[:0]
}

func (d *TopoDeltas) add(u, v NodeID) {
	d.AddU = append(d.AddU, u)
	d.AddV = append(d.AddV, v)
}

func (d *TopoDeltas) remove(u, v NodeID) {
	d.RemU = append(d.RemU, u)
	d.RemV = append(d.RemV, v)
}

// WatchTopology attaches (or returns the already-attached) per-step
// topology delta buffer. The World owns the buffer and rewrites it every
// Step; multiple consumers may read it, each keeping its own cursor.
// Watching is free on the full-rebuild path and costs two appends per
// churned edge on the incremental/sharded/replay paths; an unwatched world
// pays nothing. The returned buffer starts with Rebuilt set so a consumer
// attaching mid-run starts from a resync.
func (w *World) WatchTopology() *TopoDeltas {
	if w.watch == nil {
		w.watch = &TopoDeltas{Step: w.step, Rebuilt: true}
	}
	return w.watch
}
