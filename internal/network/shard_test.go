package network

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/metrics"
	"repro/internal/parallel"
)

// TestShardedMatchesSequential is the sharded-stepping equivalence gate:
// on every incremental-engine scenario and several shard counts, the
// concurrently sharded topology must stay bit-identical to the sequential
// incremental path (itself pinned to the full rebuild) after every step,
// including the maintained edge count. Shard workers draw from the live
// parallel budget, so under `go test -race` this also exercises the halo
// exchange for data races.
func TestShardedMatchesSequential(t *testing.T) {
	for name, sc := range incrementalScenarios() {
		for _, shards := range []int{2, 3, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				seq := buildPlannedWorld(t, sc.plans(), sc.p, 42)
				shd := buildPlannedWorld(t, sc.plans(), sc.p, 42)
				shd.SetShardWorkers(shards)
				if !seq.Dynamic() {
					t.Fatal("scenario built a static world — equivalence is vacuous")
				}
				for step := 0; step < sc.steps; step++ {
					seq.Step()
					shd.Step()
					if diff, ok := sameTopology(seq.Topology(), shd.Topology()); !ok {
						t.Fatalf("step %d (shards=%d): sequential vs sharded: %s",
							step+1, shards, diff)
					}
					if step%67 == 0 {
						if diff, ok := sameTopology(shd.Topology(), bruteForceTopology(shd)); !ok {
							t.Fatalf("step %d: sharded vs brute force: %s", step+1, diff)
						}
					}
				}
			})
		}
	}
}

// TestShardedDeterminismAcrossBudgets pins that the sharded path's result
// cannot depend on how many workers the budget actually grants: a world
// stepped with the budget forced to zero (every phase degrades to an
// inline sequential loop over the bands) matches one stepped with a full
// budget, step for step.
func TestShardedDeterminismAcrossBudgets(t *testing.T) {
	sc := incrementalScenarios()["mixed-mobile-decay"]
	starved := buildPlannedWorld(t, sc.plans(), sc.p, 9)
	funded := buildPlannedWorld(t, sc.plans(), sc.p, 9)
	starved.SetShardWorkers(4)
	funded.SetShardWorkers(4)
	old := parallel.Budget()
	defer parallel.SetBudget(old)
	for step := 0; step < 200; step++ {
		parallel.SetBudget(0)
		starved.Step()
		parallel.SetBudget(runtime.NumCPU())
		funded.Step()
		if diff, ok := sameTopology(starved.Topology(), funded.Topology()); !ok {
			t.Fatalf("step %d: budget=0 vs budget=NumCPU: %s", step+1, diff)
		}
	}
}

// TestShardedModeToggle cycles a world through sequential-incremental,
// sharded (at varying shard counts) and full-rebuild stepping mid-run and
// checks it still tracks an always-full-rebuild twin exactly — SetShards
// and SetFullRebuild are safe at any step boundary.
func TestShardedModeToggle(t *testing.T) {
	sc := incrementalScenarios()["waypoint-pause-decay"]
	toggled := buildPlannedWorld(t, sc.plans(), sc.p, 5)
	full := buildPlannedWorld(t, sc.plans(), sc.p, 5)
	full.SetFullRebuild(true)
	for step := 0; step < 240; step++ {
		switch (step / 30) % 4 {
		case 0:
			toggled.SetFullRebuild(false)
			toggled.SetShardWorkers(1)
		case 1:
			toggled.SetFullRebuild(false)
			toggled.SetShardWorkers(3)
		case 2:
			toggled.SetFullRebuild(true)
		default:
			toggled.SetFullRebuild(false)
			toggled.SetShardWorkers(7)
		}
		toggled.Step()
		full.Step()
		if diff, ok := sameTopology(toggled.Topology(), full.Topology()); !ok {
			t.Fatalf("step %d: toggled vs full rebuild: %s", step+1, diff)
		}
	}
}

// TestShardedChurnCountersMatch checks the sharded path's merged churn
// counters agree with the full-rebuild topology diff, so the
// world_links_{added,removed}_total metrics mean the same thing on all
// three stepping paths.
func TestShardedChurnCountersMatch(t *testing.T) {
	sc := incrementalScenarios()["mixed-mobile-decay"]
	shd := buildPlannedWorld(t, sc.plans(), sc.p, 11)
	full := buildPlannedWorld(t, sc.plans(), sc.p, 11)
	shd.SetShardWorkers(4)
	full.SetFullRebuild(true)
	rShd, rFull := metrics.NewRegistry(), metrics.NewRegistry()
	shd.Instrument(rShd)
	full.Instrument(rFull)
	for step := 0; step < 200; step++ {
		shd.Step()
		full.Step()
	}
	for _, name := range []string{"world_links_added_total", "world_links_removed_total"} {
		a, b := rShd.Counter(name).Value(), rFull.Counter(name).Value()
		if a != b {
			t.Errorf("%s: sharded %d vs full rebuild %d", name, a, b)
		}
		if a == 0 {
			t.Errorf("%s: no churn recorded — scenario is not exercising the counters", name)
		}
	}
}

// TestSnapshotShardLayoutIndependent pins that snapshots are oblivious to
// the shard layout: a world stepped with S=4 snapshots byte-identically to
// its sequentially stepped twin, the restored world carries the identical
// topology, and restoring under any shard-worker setting behaves the same.
func TestSnapshotShardLayoutIndependent(t *testing.T) {
	sc := incrementalScenarios()["mixed-mobile-decay"]
	shd := buildPlannedWorld(t, sc.plans(), sc.p, 17)
	seq := buildPlannedWorld(t, sc.plans(), sc.p, 17)
	shd.SetShardWorkers(4)
	for step := 0; step < 120; step++ {
		shd.Step()
		seq.Step()
	}
	var bufShd, bufSeq bytes.Buffer
	if err := WriteSnapshot(shd, &bufShd); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(seq, &bufSeq); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufShd.Bytes(), bufSeq.Bytes()) {
		t.Fatal("snapshot of S=4 world differs from its sequentially stepped twin")
	}
	restored, err := ReadSnapshot(bytes.NewReader(bufShd.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if diff, ok := sameTopology(restored.Topology(), shd.Topology()); !ok {
		t.Fatalf("restored topology differs from the snapshotted world: %s", diff)
	}
	// Restored snapshots are static worlds; requesting shard workers is an
	// explicit no-op and stepping changes nothing, at any setting.
	restored4, err := ReadSnapshot(bytes.NewReader(bufShd.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored4.SetShardWorkers(4)
	for step := 0; step < 10; step++ {
		restored.Step()
		restored4.Step()
	}
	if diff, ok := sameTopology(restored.Topology(), restored4.Topology()); !ok {
		t.Fatalf("restored worlds diverged across shard settings: %s", diff)
	}
	// Round-trip: snapshotting the restored world reproduces the bytes.
	var again bytes.Buffer
	if err := WriteSnapshot(restored, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), bufShd.Bytes()) {
		t.Fatal("snapshot round-trip is not byte-stable")
	}
}

// TestShardedZeroAllocsDegraded enforces the sharded path's scratch
// budget: with the parallel budget forced to zero (every phase inlined on
// the caller), a warmed sharded world must step allocation-free — proof
// that the per-shard scan lists, halo buffers and counters are pre-sized
// and reused. The parallel variant additionally pays a handful of bytes
// per step for goroutine wake-ups, which is why the pinned budget uses the
// degraded mode.
func TestShardedZeroAllocsDegraded(t *testing.T) {
	w := buildAllocWorld(t, 1000)
	w.SetShardWorkers(4)
	old := parallel.Budget()
	parallel.SetBudget(0)
	defer parallel.SetBudget(old)
	for i := 0; i < 300; i++ {
		w.Step()
		w.ConnectivityToGateways()
	}
	avg := testing.AllocsPerRun(200, func() {
		w.Step()
		w.ConnectivityToGateways()
	})
	if avg > 0.05 {
		t.Fatalf("sharded World.Step (degraded) allocates %v per step, want ~0", avg)
	}
}
