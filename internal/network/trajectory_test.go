package network

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// sameWorldState compares every observable the harnesses read: topology,
// alive mask, gateway set, fault epoch, partition, positions, and ranges.
func sameWorldState(t *testing.T, step int, live, rep *World) {
	t.Helper()
	if diff, ok := sameTopology(live.Topology(), rep.Topology()); !ok {
		t.Fatalf("step %d: replay topology diverges: %s", step, diff)
	}
	if live.AliveCount() != rep.AliveCount() {
		t.Fatalf("step %d: alive %d vs %d", step, live.AliveCount(), rep.AliveCount())
	}
	if live.FaultEpoch() != rep.FaultEpoch() {
		t.Fatalf("step %d: epoch %d vs %d", step, live.FaultEpoch(), rep.FaultEpoch())
	}
	if ga, gb := fmt.Sprint(live.Gateways()), fmt.Sprint(rep.Gateways()); ga != gb {
		t.Fatalf("step %d: gateways %s vs %s", step, ga, gb)
	}
	cutA, actA := live.Partition()
	cutB, actB := rep.Partition()
	if actA != actB || cutA != cutB {
		t.Fatalf("step %d: partition (%v,%v) vs (%v,%v)", step, cutA, actA, cutB, actB)
	}
	for u := 0; u < live.N(); u++ {
		if live.pos[u] != rep.pos[u] {
			t.Fatalf("step %d: node %d at %v vs %v", step, u, live.pos[u], rep.pos[u])
		}
		if lr, rr := live.radios[u].Range(), rep.radios[u].Range(); lr != rr {
			t.Fatalf("step %d: node %d range %v vs %v", step, u, lr, rr)
		}
	}
}

// TestTrajectoryReplayMatchesLive is the tentpole equivalence gate: under
// every fault preset, the scripted all-kinds schedule, and a clean dynamic
// run, a replayed trajectory must match live stepping bit for bit at every
// step — and every stored anchor must equal the replay world's snapshot at
// that step.
func TestTrajectoryReplayMatchesLive(t *testing.T) {
	const n, steps = 120, 120
	gateways := []NodeID{0, 40, 80}
	scheds := faultSchedules(n, gateways, steps)
	scheds["clean"] = nil
	for name, sched := range scheds {
		t.Run(name, func(t *testing.T) {
			recWorld := buildFaultWorld(t, n, gateways, 3)
			if sched != nil {
				recWorld.SetFaults(sched)
			}
			traj, err := RecordTrajectory(recWorld, steps, 30)
			if err != nil {
				t.Fatal(err)
			}
			if traj.Steps() != steps {
				t.Fatalf("trajectory covers %d steps, want %d", traj.Steps(), steps)
			}
			live := buildFaultWorld(t, n, gateways, 3)
			if sched != nil {
				live.SetFaults(sched)
			}
			rep, err := traj.World()
			if err != nil {
				t.Fatal(err)
			}
			if sched != nil {
				rep.SetFaults(sched)
			}
			if rep.Dynamic() != live.Dynamic() {
				t.Fatalf("replay world dynamic=%v, live=%v", rep.Dynamic(), live.Dynamic())
			}
			anchors := traj.Anchors()
			for step := 1; step <= steps; step++ {
				live.Step()
				rep.Step()
				sameWorldState(t, step, live, rep)
				for _, a := range anchors {
					if a.Step == step {
						got, err := json.Marshal(rep.Snapshot())
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(got, a.Snap) {
							t.Fatalf("step %d: replay snapshot differs from stored anchor", step)
						}
					}
				}
			}
			if rem := rep.TrajectoryRemaining(); rem != 0 {
				t.Fatalf("TrajectoryRemaining = %d after full replay, want 0", rem)
			}
			if sched != nil && live.FaultEpoch() == 0 {
				t.Fatal("schedule fired no events — equivalence is vacuous")
			}
		})
	}
}

// TestTrajectoryReplayCounters pins the instrument parity: a replay world
// with a registry attached reports the same faults_* and link-churn
// counters as the live run.
func TestTrajectoryReplayCounters(t *testing.T) {
	const n, steps = 80, 80
	gateways := []NodeID{0, 30}
	sched, err := faults.Preset("blackout", n, gateways, steps, 99)
	if err != nil {
		t.Fatal(err)
	}
	recWorld := buildFaultWorld(t, n, gateways, 7)
	recWorld.SetFaults(sched)
	traj, err := RecordTrajectory(recWorld, steps, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(w *World) *metrics.Registry {
		reg := metrics.NewRegistry()
		w.Instrument(reg)
		w.SetFaults(sched)
		for i := 0; i < steps; i++ {
			w.Step()
		}
		return reg
	}
	liveReg := run(buildFaultWorld(t, n, gateways, 7))
	rep, err := traj.World()
	if err != nil {
		t.Fatal(err)
	}
	repReg := run(rep)
	for _, c := range []string{"faults_injected_total", "faults_recovered_total", "world_steps_total"} {
		if lv, rv := liveReg.Counter(c).Value(), repReg.Counter(c).Value(); lv != rv {
			t.Errorf("%s: live %d vs replay %d", c, lv, rv)
		}
	}
	if lv, rv := liveReg.Gauge("faults_nodes_down").Value(), repReg.Gauge("faults_nodes_down").Value(); lv != rv {
		t.Errorf("faults_nodes_down: live %v vs replay %v", lv, rv)
	}
	if lv, rv := liveReg.Gauge("world_edges").Value(), repReg.Gauge("world_edges").Value(); lv != rv {
		t.Errorf("world_edges: live %v vs replay %v", lv, rv)
	}
	// Live full-rebuild churn counting and the replay's recorded churn must
	// agree (the incremental engine pins the same equality to the rebuild
	// diff in its own tests).
	for _, c := range []string{"world_links_added_total", "world_links_removed_total"} {
		if lv, rv := liveReg.Counter(c).Value(), repReg.Counter(c).Value(); lv != rv {
			t.Errorf("%s: live %d vs replay %d", c, lv, rv)
		}
	}
}

// TestTrajectoryStaticWorld checks the static fast path: a static faulted
// world records only its fault epochs (everything else is gap-coded), and
// the replay still matches live stepping.
func TestTrajectoryStaticWorld(t *testing.T) {
	const n, steps = 60, 200
	gateways := []NodeID{0, 20}
	// A snapshot restore yields a fully static twin: same positions and
	// ranges, static movers.
	snap := buildFaultWorld(t, n, gateways, 9).Snapshot()
	staticWorld := func() *World {
		w, err := snap.World()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	sched := faults.NewSchedule([]faults.Event{
		{Step: 20, Kind: faults.NodeDown, Node: 5},
		{Step: 60, Kind: faults.PartitionStart, Factor: 0.5},
		{Step: 120, Kind: faults.PartitionEnd},
		{Step: 150, Kind: faults.NodeUp, Node: 5, Respawn: true, RX: 0.25, RY: 0.75},
	})
	recWorld := staticWorld()
	recWorld.SetFaults(sched)
	traj, err := RecordTrajectory(recWorld, steps, 50)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Dynamic() {
		t.Fatal("static world recorded as dynamic")
	}
	if traj.Records() != sched.Len() && traj.Records() > 4 {
		t.Fatalf("static trajectory holds %d records for 4 fault epochs", traj.Records())
	}
	live := staticWorld()
	live.SetFaults(sched)
	rep, err := traj.World()
	if err != nil {
		t.Fatal(err)
	}
	rep.SetFaults(sched)
	for step := 1; step <= steps; step++ {
		live.Step()
		rep.Step()
		sameWorldState(t, step, live, rep)
	}
}

// TestTrajectoryExhaustionPanics pins the horizon contract.
func TestTrajectoryExhaustionPanics(t *testing.T) {
	w := buildFaultWorld(t, 30, []NodeID{0}, 5)
	traj, err := RecordTrajectory(w, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := traj.World()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rep.Step()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stepping past the trajectory horizon did not panic")
		}
	}()
	rep.Step()
}

// TestTrajectoryMarshalRoundTrip serialises a faulted trajectory, decodes
// it, and demands the decoded copy replay bit-identically to the original.
func TestTrajectoryMarshalRoundTrip(t *testing.T) {
	const n, steps = 80, 100
	gateways := []NodeID{0, 30}
	sched, err := faults.Preset("blackout", n, gateways, steps, 17)
	if err != nil {
		t.Fatal(err)
	}
	w := buildFaultWorld(t, n, gateways, 13)
	w.SetFaults(sched)
	traj, err := RecordTrajectory(w, steps, 25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traj.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTrajectory(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Steps() != traj.Steps() || back.N() != traj.N() ||
		back.Records() != traj.Records() || back.Dynamic() != traj.Dynamic() {
		t.Fatalf("framing changed in round trip: %+v vs %+v", back, traj)
	}
	w1, err := traj.World()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := back.World()
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= steps; step++ {
		w1.Step()
		w2.Step()
		if diff, ok := sameTopology(w1.Topology(), w2.Topology()); !ok {
			t.Fatalf("step %d: decoded replay diverges: %s", step, diff)
		}
		if !reflect.DeepEqual(w1.Snapshot(), w2.Snapshot()) {
			t.Fatalf("step %d: decoded replay snapshot diverges", step)
		}
	}
}

// TestTrajectoryCorruptionRejected walks a table of corruptions — the
// serialised form must fail with a clean ErrTrajectoryCorrupt error, never
// a panic.
func TestTrajectoryCorruptionRejected(t *testing.T) {
	w := buildFaultWorld(t, 40, []NodeID{0}, 21)
	sched, err := faults.Preset("churn", 40, []NodeID{0}, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	w.SetFaults(sched)
	traj, err := RecordTrajectory(w, 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := traj.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     valid[:8],
		"truncated": valid[:len(valid)/2],
		"bad-magic": append([]byte("NOTMAGIC"), valid[8:]...),
	}
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40
	cases["bit-flip-mid"] = flip
	flipAnchor := append([]byte(nil), valid...)
	flipAnchor[len(trajMagic)+20] ^= 0x01
	cases["bit-flip-header"] = flipAnchor
	for name, data := range cases {
		if _, err := UnmarshalTrajectory(data); err == nil {
			t.Errorf("%s: corruption accepted", name)
		} else if !errors.Is(err, ErrTrajectoryCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrTrajectoryCorrupt", name, err)
		}
	}
}

// TestTrajectorySourceRecordsOnce drives one TrajectorySource from many
// goroutines (the -race CI gates catch unsynchronised recording) and checks
// the build function ran exactly once while every world replays the same
// trajectory.
func TestTrajectorySourceRecordsOnce(t *testing.T) {
	const n, steps, workers = 60, 50, 8
	var builds atomic.Int32
	src := NewTrajectorySource(steps, 0, nil, func() (*World, error) {
		builds.Add(1)
		return buildFaultWorld(t, n, []NodeID{0}, 11), nil
	})
	snaps := make([]Snapshot, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w, err := src.WorldFor(slot)
			if err != nil {
				t.Error(err)
				return
			}
			for s := 0; s < steps; s++ {
				w.Step()
			}
			snaps[slot] = w.Snapshot()
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	for i := 1; i < workers; i++ {
		if !reflect.DeepEqual(snaps[0], snaps[i]) {
			t.Fatalf("worker %d replayed a different world", i)
		}
	}
}

// FuzzTrajectoryDecode fuzzes the serialised form: any input must either
// fail cleanly or decode into a trajectory whose full replay neither panics
// nor breaks world invariants.
func FuzzTrajectoryDecode(f *testing.F) {
	w := buildFaultWorld(f, 40, []NodeID{0, 20}, 31)
	sched, err := faults.Preset("blackout", 40, []NodeID{0, 20}, 60, 77)
	if err != nil {
		f.Fatal(err)
	}
	w.SetFaults(sched)
	traj, err := RecordTrajectory(w, 60, 15)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := traj.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:len(valid)/3])
	flip := append([]byte(nil), valid...)
	flip[len(flip)/4] ^= 0x10
	f.Add(flip)
	f.Add([]byte(trajMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		traj, err := UnmarshalTrajectory(data)
		if err != nil {
			if !errors.Is(err, ErrTrajectoryCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrTrajectoryCorrupt", err)
			}
			return
		}
		w, err := traj.World()
		if err != nil {
			return // snapshot-level rejection is a clean outcome too
		}
		for i := 0; i < traj.Steps(); i++ {
			w.Step()
		}
		if m := w.Topology().M(); m < 0 {
			t.Fatalf("negative edge count %d after replay", m)
		}
	})
}

// collectSink records anchors and deltas for the StepRecorder tests.
type collectSink struct {
	anchorSteps []int
	anchors     [][]byte
	deltas      []trace.WorldDelta
}

func (s *collectSink) Emit(trace.Event) {}
func (s *collectSink) EmitAnchor(step int, snap []byte) {
	s.anchorSteps = append(s.anchorSteps, step)
	s.anchors = append(s.anchors, append([]byte(nil), snap...))
}
func (s *collectSink) EmitWorld(d trace.WorldDelta) {
	c := d
	c.Nodes = append([]int32(nil), d.Nodes...)
	c.X = append([]float64(nil), d.X...)
	c.Y = append([]float64(nil), d.Y...)
	c.RangeNodes = append([]int32(nil), d.RangeNodes...)
	c.Ranges = append([]float64(nil), d.Ranges...)
	c.Dead = append([]int32(nil), d.Dead...)
	c.DownGateways = append([]int32(nil), d.DownGateways...)
	s.deltas = append(s.deltas, c)
}

// TestStepRecorderAnchorEveryOne pins the densest anchor cadence: with
// AnchorEvery=1 the recorder must anchor before every harness step, each
// anchor must equal the world's snapshot at that instant, and every
// non-empty world step must still emit exactly one delta labeled step+1.
func TestStepRecorderAnchorEveryOne(t *testing.T) {
	const steps = 25
	w := buildFaultWorld(t, 50, []NodeID{0}, 19)
	sink := &collectSink{}
	rec := NewStepRecorder(w, sink, 1)
	if rec == nil {
		t.Fatal("recorder is nil for a non-nil sink")
	}
	want := make(map[int][]byte)
	for step := 0; step < steps; step++ {
		b, err := json.Marshal(w.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		want[step] = b
		rec.BeforeStep(step)
		w.Step()
		rec.AfterWorldStep()
	}
	if len(sink.anchorSteps) != steps {
		t.Fatalf("got %d anchors, want one per step (%d)", len(sink.anchorSteps), steps)
	}
	for i, step := range sink.anchorSteps {
		if step != i {
			t.Fatalf("anchor %d labeled step %d", i, step)
		}
		if !bytes.Equal(sink.anchors[i], want[step]) {
			t.Fatalf("anchor at step %d does not match the world snapshot", step)
		}
	}
	// A dynamic world moves every step here, so the deltas must cover steps
	// 1..steps in order.
	if len(sink.deltas) != steps {
		t.Fatalf("got %d deltas, want %d", len(sink.deltas), steps)
	}
	for i, d := range sink.deltas {
		if d.Step != i+1 {
			t.Fatalf("delta %d labeled step %d, want %d", i, d.Step, i+1)
		}
	}
}
