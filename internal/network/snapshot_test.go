package network

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/radio"
)

func TestSnapshotRoundTrip(t *testing.T) {
	orig := lineWorld(t, 5, 10, 10.5, 0, 4)
	var buf bytes.Buffer
	if err := WriteSnapshot(orig, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != orig.N() {
		t.Fatalf("N = %d", loaded.N())
	}
	if !loaded.Topology().Equal(orig.Topology()) {
		t.Fatal("topology changed through snapshot")
	}
	if len(loaded.Gateways()) != 2 || !loaded.IsGateway(0) || !loaded.IsGateway(4) {
		t.Fatal("gateways lost")
	}
	if loaded.Dynamic() {
		t.Fatal("loaded snapshot must be static")
	}
}

func TestSnapshotCapturesCurrentRanges(t *testing.T) {
	// A battery world decayed for a while snapshots at its CURRENT range.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 9, Y: 0}}
	w, err := NewWorld(Config{
		Arena:     geom.Square(20),
		Positions: pos,
		Radios:    []radio.Radio{radio.NewBattery(10, 0.05, 0), radio.New(10)},
		Movers:    []mobility.Mover{mobility.Static{}, mobility.Static{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.Step() // node 0's range drops below 9: link 0→1 dies
	}
	snap := w.Snapshot()
	if snap.Ranges[0] >= 9 {
		t.Fatalf("snapshot took base range, not current: %v", snap.Ranges[0])
	}
	loaded, err := snap.World()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Topology().HasEdge(0, 1) {
		t.Fatal("dead link resurrected by snapshot")
	}
	if !loaded.Topology().HasEdge(1, 0) {
		t.Fatal("living link lost by snapshot")
	}
}

func TestSnapshotValidation(t *testing.T) {
	bad := Snapshot{
		Arena:     geom.Square(10),
		Positions: []geom.Point{{X: 1, Y: 1}},
		Ranges:    []float64{1, 2},
	}
	if _, err := bad.World(); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	neg := Snapshot{
		Arena:     geom.Square(10),
		Positions: []geom.Point{{X: 1, Y: 1}},
		Ranges:    []float64{-1},
	}
	if _, err := neg.World(); err == nil {
		t.Fatal("negative range accepted")
	}
}

func TestReadSnapshotMalformed(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}
