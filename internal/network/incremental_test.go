package network

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
)

// nodePlan describes one node of an equivalence-test world. Worlds are
// regenerated from the same plan and seed for each stepping mode, because
// movers carry RNG state and cannot be shared between two worlds.
type nodePlan struct {
	mover byte    // %4: 0 static, 1 random-velocity, 2 waypoint, 3 constant-velocity
	decay float64 // battery decay per step (0 = never decays)
	floor float64
}

// planParams bundles the world-level knobs of a planned equivalence world.
type planParams struct {
	arena              float64
	minR, maxR         float64
	minSpeed, maxSpeed float64
	pause              int
}

func buildPlannedWorld(t testing.TB, plans []nodePlan, p planParams, seed uint64) *World {
	t.Helper()
	s := rng.New(seed)
	box := geom.Square(p.arena)
	n := len(plans)
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i, pl := range plans {
		pos[i] = geom.Point{X: s.Range(0, p.arena), Y: s.Range(0, p.arena)}
		base := s.Range(p.minR, p.maxR)
		if pl.decay > 0 {
			radios[i] = radio.NewBattery(base, pl.decay, pl.floor)
		} else {
			radios[i] = radio.New(base)
		}
		ms := s.Child(uint64(i))
		switch pl.mover % 4 {
		case 0:
			movers[i] = mobility.Static{}
		case 1:
			movers[i] = mobility.NewRandomVelocity(box, p.minSpeed, p.maxSpeed, ms)
		case 2:
			movers[i] = mobility.NewWaypoint(box, p.minSpeed, p.maxSpeed, p.pause, ms)
		default:
			movers[i] = mobility.NewConstantVelocity(box, p.maxSpeed, ms)
		}
	}
	w, err := NewWorld(Config{
		Arena: box, Positions: pos, Radios: radios, Movers: movers,
		Gateways: []NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// sameTopology demands bit-identical adjacency — same out-lists in the
// same (canonical sorted) order — not just equal edge sets.
func sameTopology(a, b *graph.Directed) (string, bool) {
	if a.N() != b.N() {
		return fmt.Sprintf("node counts differ: %d vs %d", a.N(), b.N()), false
	}
	if a.M() != b.M() {
		return fmt.Sprintf("edge counts differ: %d vs %d", a.M(), b.M()), false
	}
	for u := 0; u < a.N(); u++ {
		if !slices.Equal(a.Out(NodeID(u)), b.Out(NodeID(u))) {
			return fmt.Sprintf("out-lists of node %d differ: %v vs %v",
				u, a.Out(NodeID(u)), b.Out(NodeID(u))), false
		}
	}
	return "", true
}

// bruteForceTopology recomputes the directed link graph from first
// principles — O(n²), no grid — as an independent referee for both
// stepping paths.
func bruteForceTopology(w *World) *graph.Directed {
	n := w.N()
	g := graph.New(n)
	for u := 0; u < n; u++ {
		r := w.radios[u].Range()
		if r <= 0 {
			continue
		}
		r2 := r * r
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if w.pos[v].Dist2(w.pos[u]) <= r2 {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	g.SortAdjacency()
	return g
}

// incrementalScenarios covers every edge class of the incremental engine:
// mover-incident updates (random-velocity, waypoint-with-pause, constant
// velocity), decay cursors (static decaying sources), their interaction
// (decaying statics next to paused movers), ranges draining to exactly
// zero, and displacements larger than a grid cell.
func incrementalScenarios() map[string]struct {
	plans func() []nodePlan
	p     planParams
	steps int
} {
	plan := func(n int, f func(i int) nodePlan) func() []nodePlan {
		return func() []nodePlan {
			plans := make([]nodePlan, n)
			for i := range plans {
				plans[i] = f(i)
			}
			return plans
		}
	}
	return map[string]struct {
		plans func() []nodePlan
		p     planParams
		steps int
	}{
		"mixed-mobile-decay": {
			plans: plan(120, func(i int) nodePlan {
				pl := nodePlan{mover: byte(i % 2)} // half static, half random-velocity
				if i%3 == 0 {
					pl.decay, pl.floor = 0.002, 0.5
				}
				return pl
			}),
			p:     planParams{arena: 100, minR: 8, maxR: 16, minSpeed: 0.5, maxSpeed: 3},
			steps: 250,
		},
		"waypoint-pause-decay": {
			plans: plan(90, func(i int) nodePlan {
				pl := nodePlan{}
				if i%2 == 0 {
					pl.mover = 2 // waypoint: pauses leave movers with zero displacement
				} else {
					pl.decay, pl.floor = 0.004, 0.3
				}
				return pl
			}),
			p:     planParams{arena: 80, minR: 6, maxR: 14, minSpeed: 0.5, maxSpeed: 2.5, pause: 5},
			steps: 250,
		},
		"all-mobile": {
			plans: plan(80, func(i int) nodePlan { return nodePlan{mover: byte(1 + i%3)} }),
			p:     planParams{arena: 90, minR: 8, maxR: 15, minSpeed: 1, maxSpeed: 4, pause: 3},
			steps: 200,
		},
		"static-decay-to-zero": {
			plans: plan(100, func(i int) nodePlan {
				return nodePlan{decay: 0.003, floor: 0} // every range drains to exactly 0
			}),
			p:     planParams{arena: 70, minR: 5, maxR: 12},
			steps: 400,
		},
		"fast-movers": {
			plans: plan(60, func(i int) nodePlan { return nodePlan{mover: byte(i % 2)} }),
			p:     planParams{arena: 100, minR: 8, maxR: 12, minSpeed: 5, maxSpeed: 15},
			steps: 200,
		},
	}
}

// TestIncrementalMatchesFullRebuild is the equivalence gate of the
// incremental topology engine: on randomized dynamic worlds, the
// incrementally maintained topology must be bit-identical to a full
// rebuild after every single step, and both must match an O(n²)
// brute-force referee periodically.
func TestIncrementalMatchesFullRebuild(t *testing.T) {
	for name, sc := range incrementalScenarios() {
		for _, seed := range []uint64{1, 42, 20260805} {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				inc := buildPlannedWorld(t, sc.plans(), sc.p, seed)
				full := buildPlannedWorld(t, sc.plans(), sc.p, seed)
				full.SetFullRebuild(true)
				if !inc.Dynamic() {
					t.Fatal("scenario built a static world — equivalence is vacuous")
				}
				for step := 0; step < sc.steps; step++ {
					inc.Step()
					full.Step()
					if diff, ok := sameTopology(inc.Topology(), full.Topology()); !ok {
						t.Fatalf("step %d: incremental vs full rebuild: %s", step+1, diff)
					}
					if step%50 == 0 || step == sc.steps-1 {
						if diff, ok := sameTopology(inc.Topology(), bruteForceTopology(inc)); !ok {
							t.Fatalf("step %d: incremental vs brute force: %s", step+1, diff)
						}
					}
				}
			})
		}
	}
}

// TestIncrementalModeToggle flips SetFullRebuild mid-run in both
// directions and checks the world still tracks an always-full-rebuild
// twin exactly — the property that makes the knob safe for benchmarks.
func TestIncrementalModeToggle(t *testing.T) {
	sc := incrementalScenarios()["mixed-mobile-decay"]
	toggled := buildPlannedWorld(t, sc.plans(), sc.p, 7)
	full := buildPlannedWorld(t, sc.plans(), sc.p, 7)
	full.SetFullRebuild(true)
	for step := 0; step < 240; step++ {
		toggled.SetFullRebuild(step/40%2 == 1) // alternate modes every 40 steps
		toggled.Step()
		full.Step()
		if diff, ok := sameTopology(toggled.Topology(), full.Topology()); !ok {
			t.Fatalf("step %d: toggled vs full rebuild: %s", step+1, diff)
		}
	}
}

// TestIncrementalChurnCountersMatch checks the incremental engine's
// surgical churn counts agree with the full-rebuild path's topology diff,
// so the world_links_{added,removed}_total metrics mean the same thing on
// either path.
func TestIncrementalChurnCountersMatch(t *testing.T) {
	sc := incrementalScenarios()["mixed-mobile-decay"]
	inc := buildPlannedWorld(t, sc.plans(), sc.p, 11)
	full := buildPlannedWorld(t, sc.plans(), sc.p, 11)
	full.SetFullRebuild(true)
	rInc, rFull := metrics.NewRegistry(), metrics.NewRegistry()
	inc.Instrument(rInc)
	full.Instrument(rFull)
	for step := 0; step < 200; step++ {
		inc.Step()
		full.Step()
	}
	for _, name := range []string{"world_links_added_total", "world_links_removed_total"} {
		a, b := rInc.Counter(name).Value(), rFull.Counter(name).Value()
		if a != b {
			t.Errorf("%s: incremental %d vs full rebuild %d", name, a, b)
		}
		if a == 0 {
			t.Errorf("%s: no churn recorded — scenario is not exercising the counters", name)
		}
	}
}
