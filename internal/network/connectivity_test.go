package network

import "testing"

// connEngines enumerates the stepping paths the tracker must agree under;
// each setup configures a freshly built world.
func connEngines() map[string]func(w *World) {
	return map[string]func(w *World){
		"incremental": func(w *World) {},
		"rebuild":     func(w *World) { w.SetFullRebuild(true) },
		"sharded-2":   func(w *World) { w.SetShardWorkers(2) },
		"sharded-4":   func(w *World) { w.SetShardWorkers(4) },
	}
}

// TestConnTrackerMatchesScratch is the tentpole equivalence gate for the
// incremental ideal-connectivity tracker: at every step of every fault
// workload under every stepping engine, ConnTracker.Connectivity must be
// bit-identical to the scratch ConnectivityToGateways.
func TestConnTrackerMatchesScratch(t *testing.T) {
	const n, steps = 120, 120
	gateways := []NodeID{0, 40, 80}
	scheds := faultSchedules(n, gateways, steps)
	scheds["clean"] = nil
	for sname, sched := range scheds {
		for ename, setup := range connEngines() {
			t.Run(sname+"/"+ename, func(t *testing.T) {
				w := buildFaultWorld(t, n, gateways, 3)
				setup(w)
				if sched != nil {
					w.SetFaults(sched)
				}
				tr := NewConnTracker(w)
				for step := 0; step <= steps; step++ {
					got := tr.Connectivity()
					want := w.ConnectivityToGateways()
					if got != want {
						t.Fatalf("step %d: tracker %v, scratch %v", step, got, want)
					}
					// Same-step queries must stay consistent (and cheap).
					if again := tr.Connectivity(); again != got {
						t.Fatalf("step %d: repeated query changed: %v vs %v", step, again, got)
					}
					w.Step()
				}
				if tr.Resyncs() < 1 {
					t.Fatal("tracker never performed its initial recompute")
				}
			})
		}
	}
}

// TestConnTrackerReplay runs the tracker over a trajectory-replay world:
// the recorded delta stream is exact, so the tracker must stay bit-identical
// there too, including across replayed fault steps.
func TestConnTrackerReplay(t *testing.T) {
	const n, steps = 120, 120
	gateways := []NodeID{0, 40, 80}
	scheds := faultSchedules(n, gateways, steps)
	scheds["clean"] = nil
	for sname, sched := range scheds {
		t.Run(sname, func(t *testing.T) {
			rec := buildFaultWorld(t, n, gateways, 3)
			if sched != nil {
				rec.SetFaults(sched)
			}
			traj, err := RecordTrajectory(rec, steps, 30)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := traj.World()
			if err != nil {
				t.Fatal(err)
			}
			if sched != nil {
				rep.SetFaults(sched)
			}
			tr := NewConnTracker(rep)
			for step := 0; step < steps; step++ {
				if got, want := tr.Connectivity(), rep.ConnectivityToGateways(); got != want {
					t.Fatalf("step %d: tracker %v, scratch %v", step, got, want)
				}
				rep.Step()
			}
		})
	}
}

// TestConnTrackerStaysIncremental pins the O(changes) claim's control
// flow: on a clean dynamic world stepped incrementally, the tracker must
// resync exactly once (first use) and ride the delta stream thereafter —
// otherwise the fallback would silently absorb every step.
func TestConnTrackerStaysIncremental(t *testing.T) {
	const steps = 200
	w := buildFaultWorld(t, 120, []NodeID{0, 40, 80}, 3)
	tr := NewConnTracker(w)
	for step := 0; step < steps; step++ {
		tr.Connectivity()
		w.Step()
	}
	tr.Connectivity()
	if got := tr.Resyncs(); got != 1 {
		t.Fatalf("Resyncs() = %d on a clean incremental run, want 1", got)
	}
}

// TestConnTrackerSkippedStepsResync pins the degradation path: a consumer
// that misses steps (queries every k-th step) cannot trust the one-step
// delta buffer and must fall back to a recompute, still bit-identical.
func TestConnTrackerSkippedStepsResync(t *testing.T) {
	const steps = 120
	w := buildFaultWorld(t, 120, []NodeID{0, 40, 80}, 3)
	tr := NewConnTracker(w)
	for step := 0; step < steps; step++ {
		if step%7 == 0 {
			if got, want := tr.Connectivity(), w.ConnectivityToGateways(); got != want {
				t.Fatalf("step %d: tracker %v, scratch %v", step, got, want)
			}
		}
		w.Step()
	}
	if tr.Resyncs() < steps/7 {
		t.Fatalf("Resyncs() = %d, want one per skipped-step query (~%d)", tr.Resyncs(), steps/7)
	}
}

// TestConnTrackerResetRebinds reuses one tracker across two different
// worlds, as the pooled harness state does.
func TestConnTrackerResetRebinds(t *testing.T) {
	wA := buildFaultWorld(t, 120, []NodeID{0, 40, 80}, 3)
	wB := buildFaultWorld(t, 90, []NodeID{5}, 17)
	tr := NewConnTracker(wA)
	for step := 0; step < 30; step++ {
		if got, want := tr.Connectivity(), wA.ConnectivityToGateways(); got != want {
			t.Fatalf("world A step %d: tracker %v, scratch %v", step, got, want)
		}
		wA.Step()
	}
	tr.Reset(wB)
	for step := 0; step < 30; step++ {
		if got, want := tr.Connectivity(), wB.ConnectivityToGateways(); got != want {
			t.Fatalf("world B step %d: tracker %v, scratch %v", step, got, want)
		}
		wB.Step()
	}
}
