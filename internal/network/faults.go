package network

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/geom"
)

// This file wires the deterministic fault-injection engine (internal/faults)
// into the World. Faults mutate world state only at step boundaries, through
// an explicit, pre-compiled schedule:
//
//   - NodeDown/NodeUp maintain an alive mask. Dead nodes vanish from the
//     topology (they are omitted from the spatial grid, contribute no
//     out-links, and — being invisible to every scan — receive none), stop
//     moving (their movers are skipped identically on all stepping paths,
//     so per-node RNG streams pause in lockstep), and keep draining their
//     batteries. NodeUp revives a node where it froze, or respawns it at a
//     scheduled position.
//   - GatewayDown/GatewayUp maintain a service mask over the gateway set:
//     a downed gateway keeps relaying as an ordinary node but disappears
//     from Gateways()/IsGateway, so routes to it stop counting.
//   - PartitionStart/PartitionEnd suppress every link crossing a vertical
//     cut through the arena.
//   - RadioDegrade/RadioRestore scale a node's radio range (independent of
//     battery charge; degradation only ever shrinks range, so the grid cell
//     side stays valid).
//
// Determinism contract: every step on which an event fires — and every step
// while a partition is active on a dynamic world — is executed through the
// mask-aware full-rebuild path, and the incremental engine's caches are
// marked stale so its first post-fault step resynchronises from the world
// (range cache, decay cursors, in-source lists, shard band stamps). Between
// fault steps the incremental invariants hold unchanged: dead nodes are
// frozen, invisible to candidate scans, and link-free, so the sequential
// incremental and sharded engines remain bit-identical to the full rebuild
// at every step, which the fault equivalence and fuzz tests pin.
type faultState struct {
	sched      *faults.Schedule
	dead       []bool
	aliveCount int
	gwDown     []bool
	activeGW   []NodeID // gateways alive and in service
	partActive bool
	partX      float64 // absolute x of the active vertical cut
	epoch      int
	lastEvents []faults.Event

	// Cumulative event-effect counts, mirroring the faults_injected_total /
	// faults_recovered_total instruments but always on: the trajectory
	// recorder reads them so replay maintains identical counters even when
	// the recording world had no registry attached.
	injectedTotal, recoveredTotal uint64
}

// SetFaults attaches a fault schedule to the world. A nil or empty
// schedule detaches fault handling entirely (every node alive again). On a
// world with no fault state the masks start clean; on a world restored
// from a faulted snapshot the restored masks are preserved, so re-attaching
// the original schedule resumes the faulted run exactly where the snapshot
// was taken. Schedules are immutable, so one schedule may drive many
// worlds concurrently.
func (w *World) SetFaults(s *faults.Schedule) {
	if s.Len() == 0 {
		if w.flt != nil {
			w.flt = nil
			w.rebuildTopology()
			if w.incr != nil {
				w.incr.stale = true
			}
		}
		return
	}
	if w.flt == nil {
		w.initFaultState()
	}
	w.flt.sched = s
}

func (w *World) initFaultState() {
	n := w.N()
	w.flt = &faultState{
		dead:       make([]bool, n),
		gwDown:     make([]bool, n),
		aliveCount: n,
		activeGW:   append([]NodeID(nil), w.gateways...),
	}
}

// Alive reports whether node u is currently alive. Worlds without fault
// injection report every node alive.
func (w *World) Alive(u NodeID) bool {
	return w.flt == nil || !w.flt.dead[u]
}

// AliveCount returns the number of currently alive nodes.
func (w *World) AliveCount() int {
	if w.flt == nil {
		return w.N()
	}
	return w.flt.aliveCount
}

// FaultEpoch counts the fault applications so far: it increments once per
// step on which at least one fault event fired. Harnesses watch it to react
// to fault transitions (purge routing entries, handle stranded agents)
// without rescanning state every step. Always 0 without fault injection.
func (w *World) FaultEpoch() int {
	if w.flt == nil {
		return 0
	}
	return w.flt.epoch
}

// LastFaultEvents returns the events applied at the most recent fault
// epoch (aliasing the schedule; callers must not modify).
func (w *World) LastFaultEvents() []faults.Event {
	if w.flt == nil {
		return nil
	}
	return w.flt.lastEvents
}

// Partition returns the active partition's vertical cut (absolute x) and
// whether one is active.
func (w *World) Partition() (cutX float64, active bool) {
	if w.flt == nil || !w.flt.partActive {
		return 0, false
	}
	return w.flt.partX, true
}

// applyFaults executes one step's fault events against the world state.
// The caller (Step) follows with a mask-aware full rebuild.
func (w *World) applyFaults(evs []faults.Event) {
	f := w.flt
	n := w.N()
	var injected, recovered uint64
	for _, e := range evs {
		u := int(e.Node)
		switch e.Kind {
		case faults.NodeDown:
			if u < 0 || u >= n || f.dead[u] {
				continue
			}
			f.dead[u] = true
			f.aliveCount--
			injected++
		case faults.NodeUp:
			if u < 0 || u >= n || !f.dead[u] {
				continue
			}
			f.dead[u] = false
			f.aliveCount++
			if e.Respawn {
				w.pos[u] = geom.Point{
					X: w.arena.MinX + e.RX*w.arena.Width(),
					Y: w.arena.MinY + e.RY*w.arena.Height(),
				}
			}
			recovered++
		case faults.GatewayDown:
			if u < 0 || u >= n || !w.isGateway[u] || f.gwDown[u] {
				continue
			}
			f.gwDown[u] = true
			injected++
		case faults.GatewayUp:
			if u < 0 || u >= n || !w.isGateway[u] || !f.gwDown[u] {
				continue
			}
			f.gwDown[u] = false
			recovered++
		case faults.PartitionStart:
			if f.partActive {
				continue
			}
			f.partActive = true
			f.partX = w.arena.MinX + e.Factor*w.arena.Width()
			injected++
		case faults.PartitionEnd:
			if !f.partActive {
				continue
			}
			f.partActive = false
			recovered++
		case faults.RadioDegrade:
			if u < 0 || u >= n {
				continue
			}
			w.radios[u].Degrade(e.Factor)
			injected++
		case faults.RadioRestore:
			if u < 0 || u >= n || !w.radios[u].Degraded() {
				continue
			}
			w.radios[u].Restore()
			recovered++
		}
	}
	w.refreshActiveGateways()
	f.epoch++
	f.lastEvents = evs
	f.injectedTotal += injected
	f.recoveredTotal += recovered
	w.m.faultsInjected.Add(injected)
	w.m.faultsRecovered.Add(recovered)
	w.m.faultsNodesDown.Set(float64(n - f.aliveCount))
}

// refreshActiveGateways re-derives the in-service gateway list from the
// alive and service masks, preserving the configured gateway order.
func (w *World) refreshActiveGateways() {
	f := w.flt
	f.activeGW = f.activeGW[:0]
	for _, g := range w.gateways {
		if !f.dead[g] && !f.gwDown[g] {
			f.activeGW = append(f.activeGW, g)
		}
	}
}

// restoreFaultState re-applies captured fault state (snapshot restore):
// dead nodes, out-of-service gateways, and an optional partition cut, then
// rebuilds the topology so the restored world's links match the captured
// world's bit for bit.
func (w *World) restoreFaultState(dead, downGateways []NodeID, partX *float64) error {
	n := w.N()
	w.initFaultState()
	f := w.flt
	for _, u := range dead {
		if int(u) < 0 || int(u) >= n {
			return fmt.Errorf("network: snapshot dead node %d out of range [0,%d)", u, n)
		}
		if !f.dead[u] {
			f.dead[u] = true
			f.aliveCount--
		}
	}
	for _, g := range downGateways {
		if int(g) < 0 || int(g) >= n || !w.isGateway[g] {
			return fmt.Errorf("network: snapshot down gateway %d is not a gateway", g)
		}
		f.gwDown[g] = true
	}
	if partX != nil {
		f.partActive, f.partX = true, *partX
	}
	w.refreshActiveGateways()
	w.rebuildTopology()
	if w.incr != nil {
		// The incremental caches were initialised from the unmasked
		// topology; resynchronise on the next incremental step.
		w.incr.stale = true
	}
	return nil
}
