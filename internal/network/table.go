package network

// Entry is one route in a node's routing table: to reach Gateway, forward
// to NextHop; the depositing agent believed the gateway was Hops hops away
// as of step Updated.
type Entry struct {
	Gateway NodeID
	NextHop NodeID
	Hops    int
	Updated int
}

// Table is a node's routing table. Nodes run no routing protocol of their
// own — only agents write entries — so the table is a passive, bounded
// store: at most one entry per gateway and at most capacity entries
// overall, evicting the stalest when full. Entries live in a small slice
// (tables hold a handful of routes, one by default), which keeps lookups
// branch-friendly and lets the per-step metric loops iterate without
// allocating. The zero value is unusable; construct with NewTable.
type Table struct {
	capacity  int
	entries   []Entry
	evictions int
}

// NewTable returns a table that holds at most capacity gateway entries.
// capacity <= 0 means unbounded.
func NewTable(capacity int) *Table {
	return &Table{capacity: capacity}
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return len(t.entries) }

// Evictions returns how many entries this table has evicted to stay
// within capacity over its lifetime.
func (t *Table) Evictions() int { return t.evictions }

// Lookup returns the entry for the given gateway, if any.
func (t *Table) Lookup(gw NodeID) (Entry, bool) {
	for _, e := range t.entries {
		if e.Gateway == gw {
			return e, true
		}
	}
	return Entry{}, false
}

// Entries returns all entries in unspecified order. The returned slice is
// owned by the table and valid until the next mutation; callers must not
// modify it.
func (t *Table) Entries() []Entry {
	return t.entries
}

// Update installs e unless a fresher (or equally fresh but shorter)
// entry for the same gateway is already present. It reports whether the
// table changed.
func (t *Table) Update(e Entry) bool {
	for i := range t.entries {
		if t.entries[i].Gateway != e.Gateway {
			continue
		}
		old := t.entries[i]
		if old.Updated > e.Updated {
			return false
		}
		if old.Updated == e.Updated && old.Hops <= e.Hops {
			return false
		}
		t.entries[i] = e
		return true
	}
	if t.capacity > 0 && len(t.entries) >= t.capacity {
		t.evictStalest()
	}
	t.entries = append(t.entries, e)
	return true
}

// evictStalest removes the entry with the oldest Updated stamp, breaking
// ties by larger hop count, then by gateway ID for determinism.
func (t *Table) evictStalest() {
	if len(t.entries) == 0 {
		return
	}
	victim := 0
	for i := 1; i < len(t.entries); i++ {
		if staler(t.entries[i], t.entries[victim]) {
			victim = i
		}
	}
	last := len(t.entries) - 1
	t.entries[victim] = t.entries[last]
	t.entries = t.entries[:last]
	t.evictions++
}

// staler reports whether a is a worse entry to keep than b.
func staler(a, b Entry) bool {
	if a.Updated != b.Updated {
		return a.Updated < b.Updated
	}
	if a.Hops != b.Hops {
		return a.Hops > b.Hops
	}
	return a.Gateway < b.Gateway
}

// Clear removes all entries.
func (t *Table) Clear() {
	t.entries = t.entries[:0]
}

// DropIf removes every entry for which drop returns true (swap-remove, so
// order is not preserved) and reports how many were removed. The routing
// harness uses it to age out routes through dead next hops and routes to
// gateways that fell out of service after a fault epoch. Drops do not count
// as capacity evictions.
func (t *Table) DropIf(drop func(Entry) bool) int {
	removed := 0
	for i := 0; i < len(t.entries); {
		if drop(t.entries[i]) {
			last := len(t.entries) - 1
			t.entries[i] = t.entries[last]
			t.entries = t.entries[:last]
			removed++
			continue
		}
		i++
	}
	return removed
}

// Reset returns the table to its just-constructed state with the given
// capacity, keeping the entry storage: entries are dropped and the
// eviction count is zeroed. Run-level executors reset pooled tables
// between runs so a recycled table is indistinguishable from a fresh one.
func (t *Table) Reset(capacity int) {
	t.capacity = capacity
	t.entries = t.entries[:0]
	t.evictions = 0
}
