package network

// Entry is one route in a node's routing table: to reach Gateway, forward
// to NextHop; the depositing agent believed the gateway was Hops hops away
// as of step Updated.
type Entry struct {
	Gateway NodeID
	NextHop NodeID
	Hops    int
	Updated int
}

// Table is a node's routing table. Nodes run no routing protocol of their
// own — only agents write entries — so the table is a passive, bounded
// store: at most one entry per gateway and at most capacity entries
// overall, evicting the stalest when full. The zero value is unusable;
// construct with NewTable.
type Table struct {
	capacity int
	entries  map[NodeID]Entry
}

// NewTable returns a table that holds at most capacity gateway entries.
// capacity <= 0 means unbounded.
func NewTable(capacity int) *Table {
	return &Table{capacity: capacity, entries: make(map[NodeID]Entry)}
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return len(t.entries) }

// Lookup returns the entry for the given gateway, if any.
func (t *Table) Lookup(gw NodeID) (Entry, bool) {
	e, ok := t.entries[gw]
	return e, ok
}

// Entries returns all entries in unspecified order.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	return out
}

// Update installs e unless a fresher (or equally fresh but shorter)
// entry for the same gateway is already present. It reports whether the
// table changed.
func (t *Table) Update(e Entry) bool {
	if old, ok := t.entries[e.Gateway]; ok {
		if old.Updated > e.Updated {
			return false
		}
		if old.Updated == e.Updated && old.Hops <= e.Hops {
			return false
		}
		t.entries[e.Gateway] = e
		return true
	}
	if t.capacity > 0 && len(t.entries) >= t.capacity {
		t.evictStalest()
	}
	t.entries[e.Gateway] = e
	return true
}

// evictStalest removes the entry with the oldest Updated stamp, breaking
// ties by larger hop count, then by gateway ID for determinism.
func (t *Table) evictStalest() {
	first := true
	var victim NodeID
	var worst Entry
	for gw, e := range t.entries {
		if first || staler(e, worst) {
			victim, worst, first = gw, e, false
		}
	}
	if !first {
		delete(t.entries, victim)
	}
}

// staler reports whether a is a worse entry to keep than b.
func staler(a, b Entry) bool {
	if a.Updated != b.Updated {
		return a.Updated < b.Updated
	}
	if a.Hops != b.Hops {
		return a.Hops > b.Hops
	}
	return a.Gateway < b.Gateway
}

// Clear removes all entries.
func (t *Table) Clear() {
	for k := range t.entries {
		delete(t.entries, k)
	}
}
