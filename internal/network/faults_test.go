package network

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
)

// buildFaultWorld builds a mixed dynamic world (half static, half
// random-velocity, a third battery-decaying) with the given gateways —
// the planned-world recipe of the incremental tests, parameterised on the
// gateway set so gateway-failure schedules have targets.
func buildFaultWorld(t testing.TB, n int, gateways []NodeID, seed uint64) *World {
	t.Helper()
	s := rng.New(seed)
	box := geom.Square(100)
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := 0; i < n; i++ {
		pos[i] = geom.Point{X: s.Range(0, 100), Y: s.Range(0, 100)}
		base := s.Range(8, 16)
		if i%3 == 0 {
			radios[i] = radio.NewBattery(base, 0.002, 0.5)
		} else {
			radios[i] = radio.New(base)
		}
		if i%2 == 0 {
			movers[i] = mobility.Static{}
		} else {
			movers[i] = mobility.NewRandomVelocity(box, 0.5, 3, s.Child(uint64(i)))
		}
	}
	w, err := NewWorld(Config{
		Arena: box, Positions: pos, Radios: radios, Movers: movers,
		Gateways: gateways,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// bruteForceFaultTopology is the O(n²) fault-aware referee: dead nodes
// contribute and receive no links, and an active partition suppresses
// every link crossing the cut.
func bruteForceFaultTopology(w *World) *graph.Directed {
	n := w.N()
	g := graph.New(n)
	cutX, partActive := w.Partition()
	for u := 0; u < n; u++ {
		if !w.Alive(NodeID(u)) {
			continue
		}
		r := w.radios[u].Range()
		if r <= 0 {
			continue
		}
		r2 := r * r
		for v := 0; v < n; v++ {
			if v == u || !w.Alive(NodeID(v)) {
				continue
			}
			if partActive && (w.pos[u].X >= cutX) != (w.pos[v].X >= cutX) {
				continue
			}
			if w.pos[v].Dist2(w.pos[u]) <= r2 {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	g.SortAdjacency()
	return g
}

// faultSchedules returns the fault workloads the equivalence tests drive:
// every preset plan plus a hand-scripted schedule that exercises all eight
// event kinds, including respawn-elsewhere revivals and overlapping
// windows.
func faultSchedules(n int, gateways []NodeID, steps int) map[string]*faults.Schedule {
	out := make(map[string]*faults.Schedule)
	for _, name := range faults.PresetNames() {
		s, err := faults.Preset(name, n, gateways, steps, 99)
		if err != nil {
			panic(err)
		}
		out["preset-"+name] = s
	}
	out["scripted-all-kinds"] = faults.NewSchedule([]faults.Event{
		{Step: 10, Kind: faults.NodeDown, Node: 5},
		{Step: 10, Kind: faults.NodeDown, Node: 7},
		{Step: 12, Kind: faults.RadioDegrade, Node: 9, Factor: 0.4},
		{Step: 15, Kind: faults.GatewayDown, Node: gateways[0]},
		{Step: 20, Kind: faults.PartitionStart, Factor: 0.5},
		{Step: 25, Kind: faults.NodeUp, Node: 5, Respawn: true, RX: 0.9, RY: 0.1},
		{Step: 30, Kind: faults.PartitionEnd},
		{Step: 32, Kind: faults.GatewayUp, Node: gateways[0]},
		{Step: 35, Kind: faults.RadioRestore, Node: 9},
		{Step: 40, Kind: faults.NodeUp, Node: 7},
	})
	return out
}

// TestFaultedEnginesMatch is the fault-equivalence gate: under every fault
// workload, the incremental, sharded, and full-rebuild stepping paths must
// produce bit-identical topologies, alive masks, and gateway sets at every
// step, and all must match the fault-aware brute-force referee.
func TestFaultedEnginesMatch(t *testing.T) {
	const n, steps = 120, 120
	gateways := []NodeID{0, 40, 80}
	for name, sched := range faultSchedules(n, gateways, steps) {
		t.Run(name, func(t *testing.T) {
			inc := buildFaultWorld(t, n, gateways, 3)
			full := buildFaultWorld(t, n, gateways, 3)
			shd := buildFaultWorld(t, n, gateways, 3)
			full.SetFullRebuild(true)
			shd.SetShardWorkers(3)
			for _, w := range []*World{inc, full, shd} {
				w.SetFaults(sched)
			}
			fired := 0
			for step := 0; step < steps; step++ {
				inc.Step()
				full.Step()
				shd.Step()
				if inc.FaultEpoch() != full.FaultEpoch() || inc.FaultEpoch() != shd.FaultEpoch() {
					t.Fatalf("step %d: fault epochs diverge: %d/%d/%d",
						step+1, inc.FaultEpoch(), full.FaultEpoch(), shd.FaultEpoch())
				}
				fired = inc.FaultEpoch()
				if inc.AliveCount() != full.AliveCount() || inc.AliveCount() != shd.AliveCount() {
					t.Fatalf("step %d: alive counts diverge: %d/%d/%d",
						step+1, inc.AliveCount(), full.AliveCount(), shd.AliveCount())
				}
				if ga, gb := fmt.Sprint(inc.Gateways()), fmt.Sprint(full.Gateways()); ga != gb {
					t.Fatalf("step %d: gateway sets diverge: %s vs %s", step+1, ga, gb)
				}
				if diff, ok := sameTopology(inc.Topology(), full.Topology()); !ok {
					t.Fatalf("step %d: incremental vs full rebuild: %s", step+1, diff)
				}
				if diff, ok := sameTopology(shd.Topology(), full.Topology()); !ok {
					t.Fatalf("step %d: sharded vs full rebuild: %s", step+1, diff)
				}
				if step%10 == 0 || step == steps-1 {
					if diff, ok := sameTopology(inc.Topology(), bruteForceFaultTopology(inc)); !ok {
						t.Fatalf("step %d: incremental vs brute force: %s", step+1, diff)
					}
				}
			}
			if fired == 0 {
				t.Fatal("schedule fired no events — equivalence is vacuous")
			}
		})
	}
}

// TestPartitionSuppressesCrossLinks checks the structural partition
// property directly: while the cut is active no link crosses it, and after
// PartitionEnd cross links reappear.
func TestPartitionSuppressesCrossLinks(t *testing.T) {
	const n = 150
	sched := faults.NewSchedule([]faults.Event{
		{Step: 5, Kind: faults.PartitionStart, Factor: 0.5},
		{Step: 40, Kind: faults.PartitionEnd},
	})
	w := buildFaultWorld(t, n, []NodeID{0}, 17)
	w.SetFaults(sched)
	crossLinks := func() int {
		cut := w.arena.MinX + 0.5*w.arena.Width()
		cnt := 0
		for u := 0; u < n; u++ {
			for _, v := range w.Topology().Out(NodeID(u)) {
				if (w.pos[u].X >= cut) != (w.pos[v].X >= cut) {
					cnt++
				}
			}
		}
		return cnt
	}
	sawCrossBefore := false
	for step := 0; step < 60; step++ {
		w.Step()
		c := crossLinks()
		_, active := w.Partition()
		switch {
		case step+1 < 5:
			sawCrossBefore = sawCrossBefore || c > 0
		case active && c != 0:
			t.Fatalf("step %d: %d links cross the active partition", step+1, c)
		}
		if step+1 >= 5 && step+1 < 40 && !active {
			t.Fatalf("step %d: partition should be active", step+1)
		}
	}
	if !sawCrossBefore {
		t.Skip("world never had cross links — cannot witness suppression")
	}
	if crossLinks() == 0 {
		t.Error("cross links did not return after PartitionEnd")
	}
}

// TestDegenerateWorlds pins the zero-gateway / zero-alive guards: the
// connectivity measure returns 0 instead of dividing by nothing, and
// stepping an all-dead world neither panics nor resurrects anyone.
func TestDegenerateWorlds(t *testing.T) {
	t.Run("no-gateways", func(t *testing.T) {
		w := buildFaultWorld(t, 30, nil, 5)
		if got := w.ConnectivityToGateways(); got != 0 {
			t.Fatalf("zero-gateway connectivity = %v, want 0", got)
		}
		w.Step() // must not panic
	})
	t.Run("all-gateways-down", func(t *testing.T) {
		evs := []faults.Event{{Step: 1, Kind: faults.GatewayDown, Node: 0}}
		w := buildFaultWorld(t, 30, []NodeID{0}, 5)
		w.SetFaults(faults.NewSchedule(evs))
		w.Step()
		if len(w.Gateways()) != 0 {
			t.Fatalf("gateways still in service: %v", w.Gateways())
		}
		if got := w.ConnectivityToGateways(); got != 0 {
			t.Fatalf("connectivity with all gateways down = %v, want 0", got)
		}
	})
	t.Run("all-nodes-dead", func(t *testing.T) {
		const n = 20
		evs := make([]faults.Event, n)
		for i := range evs {
			evs[i] = faults.Event{Step: 1, Kind: faults.NodeDown, Node: NodeID(i)}
		}
		w := buildFaultWorld(t, n, []NodeID{0}, 5)
		w.SetFaults(faults.NewSchedule(evs))
		w.Step()
		if w.AliveCount() != 0 {
			t.Fatalf("alive count = %d, want 0", w.AliveCount())
		}
		if got := w.ConnectivityToGateways(); got != 0 {
			t.Fatalf("connectivity of dead world = %v, want 0", got)
		}
		if m := w.Topology().M(); m != 0 {
			t.Fatalf("dead world still has %d links", m)
		}
		for i := 0; i < 5; i++ {
			w.Step() // must not panic with zero alive nodes
		}
	})
}

// TestDeadNodesFreeze pins the lifecycle semantics: a dead mobile node
// stays exactly where it died, and on revival (without respawn) resumes
// from that position with its RNG stream intact — so a twin world whose
// node never died but was frozen over the same window agrees bit for bit.
func TestDeadNodesFreeze(t *testing.T) {
	const victim = 1 // odd ids are random-velocity movers
	sched := faults.NewSchedule([]faults.Event{
		{Step: 5, Kind: faults.NodeDown, Node: victim},
		{Step: 25, Kind: faults.NodeUp, Node: victim},
	})
	w := buildFaultWorld(t, 40, []NodeID{0}, 23)
	w.SetFaults(sched)
	var frozen geom.Point
	for step := 1; step <= 40; step++ {
		w.Step()
		if step == 5 {
			frozen = w.pos[victim]
		}
		if step > 5 && step <= 24 {
			if w.Alive(victim) {
				t.Fatalf("step %d: victim should be dead", step)
			}
			if w.pos[victim] != frozen {
				t.Fatalf("step %d: dead node moved from %v to %v", step, frozen, w.pos[victim])
			}
			if got := len(w.Topology().Out(victim)); got != 0 {
				t.Fatalf("step %d: dead node has %d out-links", step, got)
			}
		}
		if step >= 25 && !w.Alive(victim) {
			t.Fatalf("step %d: victim should be revived", step)
		}
	}
	if w.pos[victim] == frozen {
		t.Error("revived mover never moved again")
	}
}

// TestFaultedSnapshotRoundTrip restores a world mid-fault (dead nodes, a
// downed gateway, an active partition) and demands the restored world be
// bit-identical — same topology, masks, and gateway set — and, after
// re-attaching the schedule, step forward in lockstep with the original.
func TestFaultedSnapshotRoundTrip(t *testing.T) {
	const n, steps = 100, 60
	gateways := []NodeID{0, 50}
	sched := faults.NewSchedule([]faults.Event{
		{Step: 5, Kind: faults.NodeDown, Node: 3},
		{Step: 8, Kind: faults.NodeDown, Node: 11},
		{Step: 10, Kind: faults.GatewayDown, Node: 50},
		{Step: 12, Kind: faults.PartitionStart, Factor: 0.4},
		{Step: 30, Kind: faults.PartitionEnd},
		{Step: 35, Kind: faults.NodeUp, Node: 3},
		{Step: 40, Kind: faults.GatewayUp, Node: 50},
	})
	w := buildFaultWorld(t, n, gateways, 31)
	w.SetFaults(sched)
	for i := 0; i < 20; i++ { // stop mid-partition with faults live
		w.Step()
	}
	snap := w.Snapshot()
	if snap.Version != SnapshotVersion {
		t.Fatalf("snapshot version = %d, want %d", snap.Version, SnapshotVersion)
	}
	if len(snap.Dead) != 2 || len(snap.DownGateways) != 1 || snap.PartitionX == nil {
		t.Fatalf("fault state not captured: dead=%v gwDown=%v partX=%v",
			snap.Dead, snap.DownGateways, snap.PartitionX)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	restored, err := back.World()
	if err != nil {
		t.Fatal(err)
	}
	if diff, ok := sameTopology(w.Topology(), restored.Topology()); !ok {
		t.Fatalf("restored topology differs: %s", diff)
	}
	if restored.AliveCount() != w.AliveCount() {
		t.Fatalf("restored alive count %d, want %d", restored.AliveCount(), w.AliveCount())
	}
	if ga, gb := fmt.Sprint(w.Gateways()), fmt.Sprint(restored.Gateways()); ga != gb {
		t.Fatalf("restored gateway set %s, want %s", gb, ga)
	}
	cutA, actA := w.Partition()
	cutB, actB := restored.Partition()
	if actA != actB || cutA != cutB {
		t.Fatalf("restored partition (%v,%v), want (%v,%v)", cutB, actB, cutA, actA)
	}
	// Resume the schedule on two independent restores (restored worlds are
	// static, and their step counters restart, so both replay the schedule
	// from the top — already-applied events no-op): the remaining events
	// and every topology must replay bit-identically.
	resumed, err := back.World()
	if err != nil {
		t.Fatal(err)
	}
	cont, err := w.Snapshot().World()
	if err != nil {
		t.Fatal(err)
	}
	resumed.SetFaults(sched)
	cont.SetFaults(sched)
	for i := 20; i < steps; i++ {
		resumed.Step()
		cont.Step()
		if diff, ok := sameTopology(resumed.Topology(), cont.Topology()); !ok {
			t.Fatalf("resumed step %d: %s", i+1, diff)
		}
		if resumed.AliveCount() != cont.AliveCount() {
			t.Fatalf("resumed step %d: alive %d vs %d", i+1, resumed.AliveCount(), cont.AliveCount())
		}
	}
	if _, active := resumed.Partition(); active {
		t.Error("partition still active after PartitionEnd replay")
	}
}

// TestSnapshotVersionRejected pins the future-version guard.
func TestSnapshotVersionRejected(t *testing.T) {
	w := buildFaultWorld(t, 10, []NodeID{0}, 1)
	snap := w.Snapshot()
	snap.Version = SnapshotVersion + 1
	if _, err := snap.World(); err == nil {
		t.Fatal("future snapshot version accepted")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("unhelpful version error: %v", err)
	}
}

// TestFaultCountersPinned pins the faults_* instruments for one schedule —
// and, run with an un-instrumented twin, that attaching the registry does
// not perturb the seeded topology (instrumentation sits outside every RNG
// path).
func TestFaultCountersPinned(t *testing.T) {
	const n, steps = 60, 50
	sched := faults.NewSchedule([]faults.Event{
		{Step: 5, Kind: faults.NodeDown, Node: 2},
		{Step: 5, Kind: faults.NodeDown, Node: 4},
		{Step: 10, Kind: faults.GatewayDown, Node: 0},
		{Step: 20, Kind: faults.NodeUp, Node: 2},
		{Step: 30, Kind: faults.GatewayUp, Node: 0},
	})
	instrumented := buildFaultWorld(t, n, []NodeID{0}, 77)
	plain := buildFaultWorld(t, n, []NodeID{0}, 77)
	reg := metrics.NewRegistry()
	instrumented.Instrument(reg)
	instrumented.SetFaults(sched)
	plain.SetFaults(sched)
	for i := 0; i < steps; i++ {
		instrumented.Step()
		plain.Step()
	}
	if diff, ok := sameTopology(instrumented.Topology(), plain.Topology()); !ok {
		t.Fatalf("instrumentation perturbed the topology: %s", diff)
	}
	if got := reg.Counter("faults_injected_total").Value(); got != 3 {
		t.Errorf("faults_injected_total = %d, want 3", got)
	}
	if got := reg.Counter("faults_recovered_total").Value(); got != 2 {
		t.Errorf("faults_recovered_total = %d, want 2", got)
	}
	if got := reg.Gauge("faults_nodes_down").Value(); got != 1 {
		t.Errorf("faults_nodes_down = %v, want 1 (node 4 still dead)", got)
	}
}
