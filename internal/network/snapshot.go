package network

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/radio"
)

// Snapshot is a serialisable capture of a world at one instant: node
// positions, *current* radio ranges, and the gateway set. Loading a
// snapshot yields a static world with exactly the captured topology —
// mobility and battery state are deliberately not captured (movers carry
// RNG state), so snapshots are for sharing fixture networks, not for
// checkpointing dynamic runs. Dynamic runs are reproduced from
// (spec, seed) instead. Snapshots are also oblivious to how the world is
// stepped: all three stepping paths (full rebuild, sequential
// incremental, spatially sharded) maintain bit-identical positions and
// topology, so a world stepped with any SetShardWorkers setting
// serialises byte-for-byte the same (pinned by
// TestSnapshotShardLayoutIndependent).
type Snapshot struct {
	Arena     geom.Rect    `json:"arena"`
	Positions []geom.Point `json:"positions"`
	Ranges    []float64    `json:"ranges"`
	Gateways  []NodeID     `json:"gateways,omitempty"`
}

// Snapshot captures the world's current geometry.
func (w *World) Snapshot() Snapshot {
	ranges := make([]float64, w.N())
	for i := range ranges {
		ranges[i] = w.radios[i].Range()
	}
	return Snapshot{
		Arena:     w.arena,
		Positions: w.Positions(),
		Ranges:    ranges,
		Gateways:  append([]NodeID(nil), w.gateways...),
	}
}

// World builds a static world from the snapshot.
func (s Snapshot) World() (*World, error) {
	if len(s.Positions) != len(s.Ranges) {
		return nil, fmt.Errorf("network: snapshot has %d positions but %d ranges",
			len(s.Positions), len(s.Ranges))
	}
	radios := make([]radio.Radio, len(s.Ranges))
	movers := make([]mobility.Mover, len(s.Ranges))
	for i, r := range s.Ranges {
		if r < 0 {
			return nil, fmt.Errorf("network: snapshot range %d is negative", i)
		}
		radios[i] = radio.New(r)
		movers[i] = mobility.Static{}
	}
	return NewWorld(Config{
		Arena:     s.Arena,
		Positions: s.Positions,
		Radios:    radios,
		Movers:    movers,
		Gateways:  s.Gateways,
	})
}

// WriteSnapshot serialises the world's snapshot as JSON.
func WriteSnapshot(w *World, out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	if err := enc.Encode(w.Snapshot()); err != nil {
		return fmt.Errorf("network: encoding snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot deserialises a snapshot and builds the static world.
func ReadSnapshot(in io.Reader) (*World, error) {
	var s Snapshot
	if err := json.NewDecoder(in).Decode(&s); err != nil {
		return nil, fmt.Errorf("network: decoding snapshot: %w", err)
	}
	return s.World()
}
