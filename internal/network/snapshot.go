package network

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/radio"
)

// SnapshotVersion is the current snapshot format version. Version history:
//
//	0/1  unversioned legacy format: arena, positions, ranges, gateways
//	2    adds fault state: dead nodes, out-of-service gateways, partition
//
// Readers accept any version up to the current one (absent fields default
// to fault-free) and reject newer versions with a clear error instead of
// silently misparsing them.
const SnapshotVersion = 2

// Snapshot is a serialisable capture of a world at one instant: node
// positions, *current* radio ranges (including any fault degradation), the
// gateway set, and — when fault injection is active — the fault state
// (dead nodes, out-of-service gateways, partition cut). Loading a snapshot
// yields a static world with exactly the captured topology, bit for bit —
// mobility, battery state and the fault schedule are deliberately not
// captured (movers carry RNG state), so snapshots are for sharing fixture
// networks, not for checkpointing dynamic runs. Dynamic runs are reproduced
// from (spec, seed) instead. Snapshots are also oblivious to how the world
// is stepped: all three stepping paths (full rebuild, sequential
// incremental, spatially sharded) maintain bit-identical positions and
// topology, so a world stepped with any SetShardWorkers setting serialises
// byte-for-byte the same (pinned by TestSnapshotShardLayoutIndependent).
type Snapshot struct {
	Version   int          `json:"version"`
	Arena     geom.Rect    `json:"arena"`
	Positions []geom.Point `json:"positions"`
	Ranges    []float64    `json:"ranges"`
	Gateways  []NodeID     `json:"gateways,omitempty"`

	// Fault state (version >= 2). Dead lists nodes currently down,
	// DownGateways lists gateways out of service (but alive), and
	// PartitionX is the active partition's vertical cut, if any.
	Dead         []NodeID `json:"dead,omitempty"`
	DownGateways []NodeID `json:"down_gateways,omitempty"`
	PartitionX   *float64 `json:"partition_x,omitempty"`
}

// Snapshot captures the world's current geometry and fault state.
func (w *World) Snapshot() Snapshot {
	ranges := make([]float64, w.N())
	for i := range ranges {
		ranges[i] = w.radios[i].Range()
	}
	s := Snapshot{
		Version:   SnapshotVersion,
		Arena:     w.arena,
		Positions: w.Positions(),
		Ranges:    ranges,
		Gateways:  append([]NodeID(nil), w.gateways...),
	}
	if f := w.flt; f != nil {
		for u := 0; u < w.N(); u++ {
			if f.dead[u] {
				s.Dead = append(s.Dead, NodeID(u))
			}
			if f.gwDown[u] {
				s.DownGateways = append(s.DownGateways, NodeID(u))
			}
		}
		if f.partActive {
			x := f.partX
			s.PartitionX = &x
		}
	}
	return s
}

// World builds a static world from the snapshot, re-applying any captured
// fault state so the restored topology matches the captured one bit for
// bit.
func (s Snapshot) World() (*World, error) {
	if s.Version > SnapshotVersion {
		return nil, fmt.Errorf("network: snapshot version %d is newer than the supported version %d — rebuild or upgrade",
			s.Version, SnapshotVersion)
	}
	if len(s.Positions) != len(s.Ranges) {
		return nil, fmt.Errorf("network: snapshot has %d positions but %d ranges",
			len(s.Positions), len(s.Ranges))
	}
	radios := make([]radio.Radio, len(s.Ranges))
	movers := make([]mobility.Mover, len(s.Ranges))
	for i, r := range s.Ranges {
		if r < 0 {
			return nil, fmt.Errorf("network: snapshot range %d is negative", i)
		}
		radios[i] = radio.New(r)
		movers[i] = mobility.Static{}
	}
	w, err := NewWorld(Config{
		Arena:     s.Arena,
		Positions: s.Positions,
		Radios:    radios,
		Movers:    movers,
		Gateways:  s.Gateways,
	})
	if err != nil {
		return nil, err
	}
	if len(s.Dead) > 0 || len(s.DownGateways) > 0 || s.PartitionX != nil {
		if err := w.restoreFaultState(s.Dead, s.DownGateways, s.PartitionX); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// WriteSnapshot serialises the world's snapshot as JSON.
func WriteSnapshot(w *World, out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	if err := enc.Encode(w.Snapshot()); err != nil {
		return fmt.Errorf("network: encoding snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot deserialises a snapshot and builds the static world.
func ReadSnapshot(in io.Reader) (*World, error) {
	var s Snapshot
	if err := json.NewDecoder(in).Decode(&s); err != nil {
		return nil, fmt.Errorf("network: decoding snapshot: %w", err)
	}
	return s.World()
}
