package network

import (
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/mobility"
)

// This file implements the incremental topology engine: instead of
// rebuilding the whole directed link graph every step, the World mutates
// the previous step's graph in place, touching only the links that can
// have changed. Per-step link change in the paper's MANET scenarios is
// sparse churn — half the nodes are stationary, waypoint movers dwell at
// their destinations, and battery decay only ever shrinks ranges — so
// maintenance cost is proportional to the nodes that actually moved this
// step plus the links that actually churned, not to the whole graph.
//
// Edges fall into classes, each covered by exactly one mechanism:
//
//  1. static source → static target, source non-decaying: distance and
//     range are both constant, so the edge never changes — never touched.
//  2. static decaying source → static target: distance is constant and
//     Range() shrinks monotonically, so the edge can only disappear, once,
//     when the range crosses the fixed distance. Per source a list of
//     static targets sorted by descending distance plus a cursor turns
//     all such removals into an amortized O(removed)-per-step scan.
//  3. any pair with an endpoint that MOVED this step: re-derived from the
//     moved endpoint's candidate box scan (below), which checks both
//     directions of every candidate pair.
//  4. static decaying source → mobility-capable target that did NOT move
//     this step: distance is momentarily constant and the source's range
//     only shrinks, so — exactly as in class 2 — the edge can only
//     disappear. Each mobile node keeps the list of decaying static
//     sources currently linking to it (with the squared distance); while
//     it dwells, a per-step compare against the source's shrunk range
//     drops expired entries. The list is rebuilt from the box scan on
//     every step the node moves, so stored distances are always current.
//  5. mobility-capable DECAYING source that did not move this step →
//     anything: its own range shrank, so its out-edges can only
//     disappear; a walk over its current out-list removes targets that
//     fell out of range. Targets that moved this step were already
//     settled by their own box scan (class 3) with the same predicate, so
//     the two mechanisms always agree.
//
// Nodes are classified as mobility-capable by mover *type* (anything but
// mobility.Static), but only the ones whose position actually changed this
// step pay for a box scan: a Waypoint mover dwelling at its destination
// costs one position compare plus the class-4/5 cursor-style checks.
//
// Candidate coverage: let maxDisp be the largest displacement of any node
// this step, and reach = maxRange + maxDisp (plus a small float-safety
// slack). For a moved node v, any node w whose pair (v,w) had a link
// before this step or wants one after it lies — at its current, post-move
// position — within ONE disc, disc(v_old, reach): a link existed ⇒
// dist(v_old, w_old) ≤ maxRange and w moved ≤ maxDisp, so
// dist(v_old, w_new) ≤ reach; a link is wanted now ⇒
// dist(v_new, w_new) ≤ maxRange, and v itself moved ≤ maxDisp, so again
// dist(v_old, w_new) ≤ reach. The grid box covering that disc therefore
// contains every relevant w, and a single squared distance per candidate
// is the whole reject test. For each survivor, membership before (from
// snapshotted positions and ranges) and after the step is recomputed with
// the same float expressions as the full rebuild, and the sorted out-lists
// are surgically edited only when the two differ — so the maintained graph
// is bit-identical to a full rebuild, which the equivalence and fuzz tests
// in this package pin. (The coverage argument assumes positions stay
// inside the arena, which Rect.Bounce and the generators guarantee; the
// grid clamps outside positions into border cells, where a box query could
// miss them.)

// rangeR2 caches one node's squared range before and after the current
// decay phase, in the sqOrNeg encoding. Candidate positions come straight
// from the grid's cell buckets (geom.CellEntry embeds them), so this
// 16-byte record is the only random access a surviving candidate costs.
type rangeR2 struct {
	prev float64
	cur  float64
}

// incrState is the per-world state of the incremental topology engine.
type incrState struct {
	mobile   []int32 // mobility-capable node ids, ascending
	isMobile []bool  // node id -> mover is not mobility.Static
	decays   []bool  // node id -> radio battery decays
	moved    []bool  // node id -> position changed this step

	// prevPos[id] is the pre-step position — written (and later read)
	// only for nodes that moved this step; everything else is at its
	// bucket-embedded position on both sides of the step.
	prevPos      []geom.Point
	r2           []rangeR2
	rangeChanged []bool  // node id -> range shrank this step
	decayIds     []int32 // all decaying node ids (r2 refresh set)

	decaySrcs []int32 // static decaying sources (classes 2 and 4)
	decay     []decayCursor
	inDecay   [][]inSrc // mobile node id -> decaying static in-sources
	outBuf    []int32   // class-5 out-walk scratch

	// stale marks the r2 cache and inDecay lists invalid: full-rebuild
	// steps move nodes, drain batteries, and rewrite the topology without
	// maintaining them, so the first incremental step after a mode toggle
	// resynchronizes from the world (decay cursors tolerate staleness on
	// their own).
	stale bool
}

// decayCursor tracks class-2 edges (static decaying source → static
// target): dst holds the source's static in-range targets by descending
// distance, and cursor advances — removing edges — as Range() shrinks
// below each stored distance. Ranges never grow, so the cursor never
// rewinds and every class-2 edge is removed exactly once.
type decayCursor struct {
	src    NodeID
	dst    []NodeID  // static targets, descending distance order
	d2     []float64 // squared distance to dst[i]
	cursor int
}

// inSrc is one class-4 entry: a decaying static source currently linking
// to a mobile node, with the squared distance between them. While the
// mobile node dwells the distance is constant, so the edge expires exactly
// when the source's squared range drops below d2.
type inSrc struct {
	src NodeID
	d2  float64
}

// sqOrNeg maps a range to its squared value, or -1 for ranges <= 0, so a
// single "dist2 <= sqOrNeg(r)" compare reproduces the rebuild membership
// predicate "r > 0 && dist2 <= r*r" bit for bit (dist2 >= 0 > -1).
func sqOrNeg(r float64) float64 {
	if r > 0 {
		return r * r
	}
	return -1
}

// initIncremental builds the engine state for a freshly constructed
// dynamic world: mover classification, the squared-range cache, the
// class-2 decay cursors, and the class-4 in-source lists. Called after the
// initial rebuildTopology, so the grid and topology are populated.
func (w *World) initIncremental(movers []mobility.Mover) {
	n := w.N()
	t := &incrState{
		isMobile:     make([]bool, n),
		decays:       make([]bool, n),
		moved:        make([]bool, n),
		prevPos:      make([]geom.Point, n),
		r2:           make([]rangeR2, n),
		rangeChanged: make([]bool, n),
		inDecay:      make([][]inSrc, n),
	}
	for i, m := range movers {
		if _, static := m.(mobility.Static); !static {
			t.isMobile[i] = true
			t.mobile = append(t.mobile, int32(i))
		}
	}
	for u := 0; u < n; u++ {
		t.decays[u] = w.radios[u].Decays()
		r2 := sqOrNeg(w.radios[u].Range())
		t.r2[u] = rangeR2{prev: r2, cur: r2}
		if t.decays[u] {
			t.decayIds = append(t.decayIds, int32(u))
		}
		if t.isMobile[u] || !t.decays[u] {
			continue
		}
		t.decaySrcs = append(t.decaySrcs, int32(u))
		// One cursor per source, even when its target list is currently
		// empty: t.decay indices stay aligned with decaySrcs forever, which
		// the shard cursor partition and the fault-resync cursor rebuild
		// rely on (an empty cursor is a no-op).
		t.decay = append(t.decay, decayCursor{src: NodeID(u)})
	}
	w.incr = t
	w.fillDecayCursors()
	w.rebuildInLists()
	// Pre-size the steady-state growth points so maintenance settles into
	// zero allocations at any n, not just small worlds: class-4 in-source
	// lists get headroom over their initial population, the class-5 walk
	// buffer starts at a realistic degree bound, and every adjacency row
	// migrates out of the CSR build with insert headroom (a CSR row's
	// first surgical insert would otherwise reallocate it, and rows at
	// their exact high-water degree would keep reallocating one by one).
	for _, vi := range t.mobile {
		if have := len(t.inDecay[vi]); cap(t.inDecay[vi]) < have+4 {
			grown := make([]inSrc, have, have+4)
			copy(grown, t.inDecay[vi])
			t.inDecay[vi] = grown
		}
	}
	t.outBuf = make([]int32, 0, 64)
	w.topo.OwnRows(8)
}

// rebuildInLists derives the class-4 in-source lists from the current
// topology and positions: for every decaying static source, each of its
// current mobile out-neighbours records the source and the (current)
// squared distance. Runs at init and after full-rebuild interludes.
func (w *World) rebuildInLists() {
	t := w.incr
	for _, vi := range t.mobile {
		t.inDecay[vi] = t.inDecay[vi][:0]
	}
	for _, ui := range t.decaySrcs {
		pu := w.pos[ui]
		for _, tv := range w.topo.Out(NodeID(ui)) {
			if t.isMobile[tv] {
				t.inDecay[tv] = append(t.inDecay[tv], inSrc{src: NodeID(ui), d2: pu.Dist2(w.pos[tv])})
			}
		}
	}
}

// fillDecayCursors (re)derives every class-2 cursor's target list from the
// CURRENT world state: the source's static in-range targets by descending
// distance, cursor at the start. Runs at init and on fault resyncs — fault
// events can grow a range back (RadioRestore) or teleport a static node
// (respawn), both of which invalidate a cursor's never-rewind premise; a
// rebuilt cursor restores it, since between fault steps ranges only shrink.
// Entries keep their slot (one per decay source), so indices held by shard
// cursor partitions stay valid. Dead sources get an empty list: they have
// no out-edges to expire, and revival is itself a fault resync.
func (w *World) fillDecayCursors() {
	t := w.incr
	for i := range t.decay {
		dc := &t.decay[i]
		dc.dst = dc.dst[:0]
		dc.d2 = dc.d2[:0]
		dc.cursor = 0
		u := int(dc.src)
		if w.flt != nil && w.flt.dead[u] {
			continue
		}
		r := w.radios[u].Range()
		if r <= 0 {
			continue
		}
		w.nbrBuf = w.grid.Within(w.pos[u], r, u, w.nbrBuf[:0])
		for _, v := range w.nbrBuf {
			if t.isMobile[v] {
				continue
			}
			dc.dst = append(dc.dst, v)
		}
		// Descending distance with an id tie-break keeps the removal tape
		// deterministic; equal-distance targets drop in the same step
		// anyway, so the tie-break never reaches observable state.
		slices.SortFunc(dc.dst, func(a, b NodeID) int {
			da, db := w.pos[u].Dist2(w.pos[a]), w.pos[u].Dist2(w.pos[b])
			switch {
			case da > db:
				return -1
			case da < db:
				return 1
			default:
				return int(a - b)
			}
		})
		for _, v := range dc.dst {
			dc.d2 = append(dc.d2, w.pos[u].Dist2(w.pos[v]))
		}
	}
}

// resyncAfterFullRebuild refreshes the squared-range cache (batteries
// drained — and fault events may have degraded or restored any radio —
// while full-rebuild steps ran; the grid was rebuilt by those steps
// already), the class-2 decay cursors, and the class-4 lists.
func (w *World) resyncAfterFullRebuild() {
	t := w.incr
	for u := range t.r2 {
		r2 := sqOrNeg(w.radios[u].Range())
		t.r2[u] = rangeR2{prev: r2, cur: r2}
	}
	w.fillDecayCursors()
	w.rebuildInLists()
}

// stepIncremental is the churn-proportional Step body: move and re-bucket
// the nodes that actually moved, drain batteries, then repair the link
// graph in place.
func (w *World) stepIncremental() {
	t := w.incr
	if t.stale {
		w.resyncAfterFullRebuild()
		t.stale = false
	}
	sp := w.m.mobility.Start()
	var dead []bool
	if w.flt != nil {
		dead = w.flt.dead
	}
	maxDisp2 := 0.0
	for _, id := range t.mobile {
		// Dead nodes freeze: mover not stepped (RNG pauses), position
		// unchanged — identical to the full-rebuild and sharded paths.
		if dead != nil && dead[id] {
			t.moved[id] = false
			continue
		}
		// The grid stores each node's position as of its last Update, i.e.
		// the pre-step position — the movement detector and the snapshot
		// for this step's "had" predicates in one place.
		old := w.grid.Pos(id)
		w.pos[id] = w.fleet.StepOne(int(id), w.pos[id])
		if w.pos[id] == old {
			t.moved[id] = false
			continue
		}
		t.moved[id] = true
		t.prevPos[id] = old
		if d2 := old.Dist2(w.pos[id]); d2 > maxDisp2 {
			maxDisp2 = d2
		}
		w.grid.Update(id, w.pos[id])
	}
	sp.Stop()
	sp = w.m.decay.Start()
	w.advanceDecay()
	sp.Stop()
	sp = w.m.rebuild.Start()
	added, removed := w.applyChurn(math.Sqrt(maxDisp2))
	sp.Stop()
	w.m.linksAdded.Add(added)
	w.m.linksRemoved.Add(removed)
	w.m.edges.Set(float64(w.topo.M()))
}

// advanceDecay drains the decaying radios one step and refreshes the
// squared-range cache — the decay phase shared by the sequential and
// sharded incremental paths.
func (w *World) advanceDecay() {
	t := w.incr
	for _, id := range t.decayIds {
		t.r2[id].prev = t.r2[id].cur
		w.radios[id].Step()
		c2 := sqOrNeg(w.radios[id].Range())
		t.r2[id].cur = c2
		// sqOrNeg is injective on the non-negative ranges radios produce,
		// so comparing encodings detects exactly the real range changes.
		t.rangeChanged[id] = c2 != t.r2[id].prev
	}
}

// applyChurn repairs the topology after movers re-bucketed and batteries
// drained, returning the directed link churn (for the world's metrics —
// the same counts the full-rebuild path derives by diffing topologies).
func (w *World) applyChurn(maxDisp float64) (added, removed uint64) {
	t := w.incr
	g := w.topo
	// Topology watchers receive every edit this function decides on.
	// Class-3 emissions mirror the churn counters (recorded at decision
	// time, unconditionally); the success-gated classes emit inside their
	// success branches. Either way the stream may only over-report, which
	// the TopoDeltas contract allows.
	dl := w.watch
	maxR2 := w.maxRange * w.maxRange
	// Every candidate relevant to a moved node v lies within
	// maxRange+maxDisp of v's OLD position (see the coverage argument in
	// the file comment), so one disc — one distance per candidate — is the
	// whole reject test. The small absolute slack keeps the triangle-
	// inequality containment valid under float rounding; it admits a
	// vanishing sliver of extra candidates and can never exclude a real one.
	reach := w.maxRange + maxDisp + 1e-6
	reach2 := reach * reach
	cols := w.grid.Cols()
	moved, prevPos, r2 := t.moved, t.prevPos, t.r2
	// Class 3: box scan per moved node, both directions per candidate
	// pair. The box covers disc(pOld, maxRange+maxDisp) ∪ disc(pNew,
	// maxRange). Candidate positions are read sequentially out of the
	// bucket entries; a pair farther than maxRange both before and after
	// the step cannot have churned (and cannot hold a class-4 entry), so
	// it is rejected on bucket data alone — only survivors chase the
	// per-node range cache.
	for _, vi := range t.mobile {
		if !t.moved[vi] {
			continue
		}
		v := NodeID(vi)
		pOld, pNew := t.prevPos[vi], w.pos[vi]
		pr2v, cr2v := t.r2[vi].prev, t.r2[vi].cur
		lo := geom.Point{X: pOld.X - reach, Y: pOld.Y - reach}
		hi := geom.Point{X: pOld.X + reach, Y: pOld.Y + reach}
		x0, x1, y0, y1 := w.grid.BoxCellRange(lo, hi)
		ins := t.inDecay[vi][:0]
		for cy := y0; cy <= y1; cy++ {
			base := cy * cols
			for cx := x0; cx <= x1; cx++ {
				bucket := w.grid.CellBucket(base + cx)
				for bi := range bucket {
					e := &bucket[bi]
					// dOldS measures pOld against w's *current* position.
					// Candidates beyond reach cannot have had a link, cannot
					// want one (disc(pNew, maxRange) ⊆ disc(pOld, reach)),
					// and cannot hold a class-4 entry — so the vast majority
					// reject on one distance over sequential bucket data,
					// before any random load.
					ddx, ddy := pOld.X-e.X, pOld.Y-e.Y
					dOldS := ddx*ddx + ddy*ddy
					if dOldS > reach2 {
						continue
					}
					dx, dy := pNew.X-e.X, pNew.Y-e.Y
					dNew := dx*dx + dy*dy
					wi := e.ID
					if wi == vi {
						continue
					}
					// The bucket holds w's current position; its pre-step
					// position differs only if w moved this step. A pair of
					// moved nodes appears in both box scans; the lower id's
					// scan (which runs first — mobile is ascending) handles
					// it once, both directions.
					dOld := dOldS
					if moved[wi] {
						if wi < vi {
							continue
						}
						pp := prevPos[wi]
						ddx, ddy = pOld.X-pp.X, pOld.Y-pp.Y
						dOld = ddx*ddx + ddy*ddy
					}
					if dOld > maxR2 && dNew > maxR2 {
						continue
					}
					// v→w, then w→v: same membership predicate as the
					// rebuild path, evaluated on the pre-step snapshot for
					// "had" and the current state for "want".
					if (dNew <= cr2v) != (dOld <= pr2v) {
						if dNew <= cr2v {
							g.InsertEdgeSorted(v, wi)
							added++
							if dl != nil {
								dl.add(v, wi)
							}
						} else {
							g.RemoveEdgeSorted(v, wi)
							removed++
							if dl != nil {
								dl.remove(v, wi)
							}
						}
					}
					rw := r2[wi]
					wantIn := dNew <= rw.cur
					if wantIn != (dOld <= rw.prev) {
						if wantIn {
							g.InsertEdgeSorted(wi, v)
							added++
							if dl != nil {
								dl.add(wi, v)
							}
						} else {
							g.RemoveEdgeSorted(wi, v)
							removed++
							if dl != nil {
								dl.remove(wi, v)
							}
						}
					}
					if wantIn && t.decays[wi] && !t.isMobile[wi] {
						ins = append(ins, inSrc{src: NodeID(wi), d2: dNew})
					}
				}
			}
		}
		t.inDecay[vi] = ins
	}
	// Classes 4 and 5: mobile nodes that did not move this step. Their
	// stored distances are current (any move rebuilds the class-4 list
	// above and settles class-5 pairs), so expiry is a plain compare
	// against the shrunk squared range.
	for _, vi := range t.mobile {
		if t.moved[vi] {
			continue
		}
		if lst := t.inDecay[vi]; len(lst) > 0 {
			for k := 0; k < len(lst); {
				if lst[k].d2 <= t.r2[lst[k].src].cur {
					k++
					continue
				}
				if g.RemoveEdgeSorted(lst[k].src, NodeID(vi)) {
					removed++
					if dl != nil {
						dl.remove(lst[k].src, NodeID(vi))
					}
				}
				lst[k] = lst[len(lst)-1]
				lst = lst[:len(lst)-1]
			}
			t.inDecay[vi] = lst
		}
		if !t.rangeChanged[vi] {
			continue
		}
		// Class 5: own range shrank while dwelling — out-edges can only
		// expire. Collect first: removal shifts the out-list in place.
		cr2 := t.r2[vi].cur
		pv := w.pos[vi]
		t.outBuf = t.outBuf[:0]
		for _, tv := range g.Out(NodeID(vi)) {
			if pv.Dist2(w.pos[tv]) > cr2 {
				t.outBuf = append(t.outBuf, tv)
			}
		}
		for _, tv := range t.outBuf {
			if g.RemoveEdgeSorted(NodeID(vi), tv) {
				removed++
				if dl != nil {
					dl.remove(NodeID(vi), tv)
				}
			}
		}
	}
	// Class-2 removals: each decaying static source's cursor advances
	// while its shrinking range excludes the next-farthest static target.
	// RemoveEdgeSorted reports whether the edge still existed, which keeps
	// the churn counters exact even if full-rebuild steps (mode toggles)
	// already dropped some cursor edges.
	for i := range t.decay {
		dc := &t.decay[i]
		r := w.radios[dc.src].Range()
		r2 := r * r
		for dc.cursor < len(dc.d2) && (r <= 0 || dc.d2[dc.cursor] > r2) {
			if g.RemoveEdgeSorted(dc.src, dc.dst[dc.cursor]) {
				removed++
				if dl != nil {
					dl.remove(dc.src, dc.dst[dc.cursor])
				}
			}
			dc.cursor++
		}
	}
	return added, removed
}
