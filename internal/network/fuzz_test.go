package network

import (
	"testing"

	"repro/internal/faults"
)

// FuzzIncrementalTopology drives a mixed mobility/decay tape: each tape
// byte configures one node (mover kind, whether its battery decays, decay
// speed, floor), and the trailing bytes pick the seed spread, step count,
// and the maximum radio range (up to most of the arena, so discs straddle
// many shard-band boundaries at once). The same bytes also script a fault
// schedule — node death and revival (sometimes respawned elsewhere), radio
// degradation and restoration, gateway service flaps, and a partition
// window — interleaved with the mobility churn. For every tape the
// incrementally maintained topology must stay bit-identical to a full
// rebuild after every single step — and so must a spatially sharded twin
// at every shard count in {1, 2, 3, 7} — and all must match an O(n²)
// fault-aware brute-force referee at the end.
func FuzzIncrementalTopology(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 30})
	f.Add(uint64(42), []byte{255, 0, 255, 0, 128, 64, 200})
	f.Add(uint64(9), []byte{7, 7, 7, 7})
	f.Add(uint64(77), []byte{9, 13, 5, 240, 6, 12, 1, 19, 161}) // long-range tape
	f.Fuzz(func(t *testing.T, seed uint64, tape []byte) {
		if len(tape) < 2 {
			t.Skip()
		}
		steps := 5 + int(tape[len(tape)-1]%45)
		body := tape[:len(tape)-1]
		n := len(body)
		if n > 48 {
			n = 48
		}
		plans := make([]nodePlan, n)
		for i := range plans {
			b := body[i]
			plans[i] = nodePlan{mover: b % 4}
			if b&4 != 0 {
				plans[i].decay = 0.001 + float64(b>>4)*0.002 // up to 0.031/step
				plans[i].floor = float64(b>>6) * 0.25        // 0, .25, .5, .75
			}
		}
		p := planParams{
			arena: 40, minR: 3,
			// Up to 30 on a 40-unit arena: discs can cover most of the grid,
			// so a single moved node straddles every shard-band boundary.
			maxR:     6 + float64(tape[len(tape)-1]%25),
			minSpeed: 0.2, maxSpeed: 1 + float64(tape[0]%8), // up to speeds past the cell size
			pause: int(tape[0] % 5),
		}
		sched := fuzzFaultSchedule(body, n, steps)
		inc := buildPlannedWorld(t, plans, p, seed)
		full := buildPlannedWorld(t, plans, p, seed)
		full.SetFullRebuild(true)
		inc.SetFaults(sched)
		full.SetFaults(sched)
		if !inc.Dynamic() {
			// All-static, never-decaying tape: only the fault events change
			// the topology, and every stepping path degenerates to the same
			// masked rebuild — compare against the referee as faults fire.
			for step := 0; step < steps; step++ {
				inc.Step()
				if diff, ok := sameTopology(inc.Topology(), bruteForceFaultTopology(inc)); !ok {
					t.Fatalf("static step %d: vs brute force: %s", step+1, diff)
				}
			}
			return
		}
		shardCounts := []int{1, 2, 3, 7}
		sharded := make([]*World, len(shardCounts))
		for i, s := range shardCounts {
			sharded[i] = buildPlannedWorld(t, plans, p, seed)
			sharded[i].SetShardWorkers(s)
			sharded[i].SetFaults(sched)
		}
		for step := 0; step < steps; step++ {
			inc.Step()
			full.Step()
			if diff, ok := sameTopology(inc.Topology(), full.Topology()); !ok {
				t.Fatalf("step %d: incremental vs full rebuild: %s", step+1, diff)
			}
			for i, w := range sharded {
				w.Step()
				if diff, ok := sameTopology(inc.Topology(), w.Topology()); !ok {
					t.Fatalf("step %d: incremental vs sharded S=%d: %s",
						step+1, shardCounts[i], diff)
				}
			}
		}
		if diff, ok := sameTopology(inc.Topology(), bruteForceFaultTopology(inc)); !ok {
			t.Fatalf("final step: incremental vs brute force: %s", diff)
		}
	})
}

// FuzzTableUpdate drives a routing table with an arbitrary update tape
// and checks the capacity bound plus freshest-wins semantics.
func FuzzTableUpdate(f *testing.F) {
	f.Add(uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), []byte{0, 0, 0})
	f.Add(uint8(0), []byte{255, 1, 128})
	f.Fuzz(func(t *testing.T, capacity uint8, tape []byte) {
		tb := NewTable(int(capacity))
		freshest := map[NodeID]int{}
		for i := 0; i+2 < len(tape); i += 3 {
			e := Entry{
				Gateway: NodeID(tape[i] % 8),
				NextHop: NodeID(tape[i+1] % 16),
				Hops:    int(tape[i+2]%10) + 1,
				Updated: int(tape[i] % 50),
			}
			tb.Update(e)
			if capacity > 0 && tb.Len() > int(capacity) {
				t.Fatalf("len %d > capacity %d", tb.Len(), capacity)
			}
			if cur, ok := tb.Lookup(e.Gateway); ok {
				// A stored entry for this gateway is never staler than
				// the best update we have offered so far.
				if prev, seen := freshest[e.Gateway]; seen && cur.Updated < prev && cur.Updated < e.Updated {
					t.Fatalf("gateway %d holds staler entry (%d) than offered (%d)",
						e.Gateway, cur.Updated, max(prev, e.Updated))
				}
			}
			if prev, seen := freshest[e.Gateway]; !seen || e.Updated > prev {
				freshest[e.Gateway] = e.Updated
			}
		}
		// All stored entries must be among the offered gateways.
		for _, e := range tb.Entries() {
			if _, ok := freshest[e.Gateway]; !ok {
				t.Fatalf("phantom gateway %d", e.Gateway)
			}
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fuzzFaultSchedule scripts a deterministic fault tape from the same body
// bytes that configured the nodes: bit 3 of a node's byte kills it partway
// through the run and revives it later (bit 5 respawns it at a
// tape-derived position instead), bit 4 degrades and later restores its
// radio, the first byte flaps gateway 0's service and may open a partition
// window. Everything lands on tape-derived steps so the fuzzer explores
// fault/mobility interleavings the hand-written scenarios never tried.
func fuzzFaultSchedule(body []byte, n, steps int) *faults.Schedule {
	var evs []faults.Event
	at := func(b byte) int { return 1 + int(b)%steps }
	for i := 0; i < n; i++ {
		b := body[i]
		u := NodeID(i)
		if b&8 != 0 {
			down := at(b)
			up := down + 1 + int(b>>4)
			ev := faults.Event{Step: up, Kind: faults.NodeUp, Node: u}
			if b&32 != 0 {
				ev.Respawn = true
				ev.RX = float64(b) / 255
				ev.RY = float64(b^0xff) / 255
			}
			evs = append(evs,
				faults.Event{Step: down, Kind: faults.NodeDown, Node: u}, ev)
		}
		if b&16 != 0 {
			deg := at(b >> 1)
			evs = append(evs,
				faults.Event{Step: deg, Kind: faults.RadioDegrade, Node: u,
					Factor: 0.2 + float64(b%5)*0.15},
				faults.Event{Step: deg + 2 + int(b%7), Kind: faults.RadioRestore, Node: u})
		}
	}
	head := body[0]
	if head&1 != 0 {
		evs = append(evs,
			faults.Event{Step: at(head), Kind: faults.GatewayDown, Node: 0},
			faults.Event{Step: at(head) + 3, Kind: faults.GatewayUp, Node: 0})
	}
	if head&2 != 0 {
		start := 1 + steps/3
		evs = append(evs,
			faults.Event{Step: start, Kind: faults.PartitionStart,
				Factor: 0.25 + float64(head%3)*0.25},
			faults.Event{Step: start + steps/3, Kind: faults.PartitionEnd})
	}
	return faults.NewSchedule(evs)
}
