package network

import "testing"

// FuzzTableUpdate drives a routing table with an arbitrary update tape
// and checks the capacity bound plus freshest-wins semantics.
func FuzzTableUpdate(f *testing.F) {
	f.Add(uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), []byte{0, 0, 0})
	f.Add(uint8(0), []byte{255, 1, 128})
	f.Fuzz(func(t *testing.T, capacity uint8, tape []byte) {
		tb := NewTable(int(capacity))
		freshest := map[NodeID]int{}
		for i := 0; i+2 < len(tape); i += 3 {
			e := Entry{
				Gateway: NodeID(tape[i] % 8),
				NextHop: NodeID(tape[i+1] % 16),
				Hops:    int(tape[i+2]%10) + 1,
				Updated: int(tape[i] % 50),
			}
			tb.Update(e)
			if capacity > 0 && tb.Len() > int(capacity) {
				t.Fatalf("len %d > capacity %d", tb.Len(), capacity)
			}
			if cur, ok := tb.Lookup(e.Gateway); ok {
				// A stored entry for this gateway is never staler than
				// the best update we have offered so far.
				if prev, seen := freshest[e.Gateway]; seen && cur.Updated < prev && cur.Updated < e.Updated {
					t.Fatalf("gateway %d holds staler entry (%d) than offered (%d)",
						e.Gateway, cur.Updated, max(prev, e.Updated))
				}
			}
			if prev, seen := freshest[e.Gateway]; !seen || e.Updated > prev {
				freshest[e.Gateway] = e.Updated
			}
		}
		// All stored entries must be among the offered gateways.
		for _, e := range tb.Entries() {
			if _, ok := freshest[e.Gateway]; !ok {
				t.Fatalf("phantom gateway %d", e.Gateway)
			}
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
