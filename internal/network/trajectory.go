package network

// Trajectory replay: the fourth world-stepping engine, alongside the full
// rebuild, the sequential incremental engine, and the sharded engine.
//
// The paper's agents only *observe* the world — mobility and link churn
// evolve independently of agent decisions — so every replication and every
// sweep point over one (world spec, seed, fault schedule) steps an
// identical world. A TrajectoryRecorder captures one live run's evolution
// — position deltas, edge add/remove churn, range updates, fault-epoch
// transitions — into an in-memory Trajectory, delta-coded with the same
// predictor/XOR float lanes and varint framing as the trace binlog.
// Subsequent runs replay it through World.StepFromTrajectory, which applies
// the cached churn in O(changes) with zero mobility RNG, zero disc scans,
// and zero grid maintenance, and is bit-identical to live stepping (pinned
// by the equivalence, fuzz, and -race gates in trajectory_test.go).
//
// Wire format for Trajectory.data — a sequence of records, each:
//
//	uvarint gap      empty steps preceding this record
//	byte    flags    trajMoved | trajRanges | trajAdds | trajRemoves | trajFault
//	payloads         in flag order, see encode/decode below
//
// Trailing empty steps carry no bytes at all (the step count bounds them).
// Float values ride the predictor chain (xor against a linear extrapolation
// of the node's last two values), and the chains reset at every anchor-era
// boundary — both sides derive the era from the record's step number alone,
// so a Trajectory decodes identically whether or not an anchor was stored.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"

	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/trace"
)

const (
	trajMoved   = 1 << iota // changed positions
	trajRanges              // changed radio ranges
	trajAdds                // edges that appeared
	trajRemoves             // edges that vanished
	trajFault               // fault-epoch transition (full masks)

	trajAllFlags = trajMoved | trajRanges | trajAdds | trajRemoves | trajFault
)

// trajMagic and trajVersion frame the serialised form (MarshalBinary).
const (
	trajMagic   = "AMSHTRAJ"
	trajVersion = 1
)

// ErrTrajectoryCorrupt wraps every decode/validation failure so callers can
// distinguish corruption from I/O errors.
var ErrTrajectoryCorrupt = errors.New("corrupt trajectory")

func trajCorrupt(format string, args ...any) error {
	return fmt.Errorf("network: %w: "+format, append([]any{ErrTrajectoryCorrupt}, args...)...)
}

// TrajAnchor pairs a step number with the JSON world snapshot captured
// after that step. Anchors are stored only at era boundaries the world
// actually changed before, so an all-static stretch costs nothing.
type TrajAnchor struct {
	Step int
	Snap []byte
}

// Trajectory is a recorded world evolution: the start snapshot, the
// delta-coded churn stream, and periodic snapshot anchors. It is immutable
// after Finish/Unmarshal and safe to share across concurrent replay worlds
// — each World() call gets its own decode cursor.
type Trajectory struct {
	n       int
	steps   int
	every   int
	dynamic bool
	start   []byte   // JSON snapshot at record start
	snap    Snapshot // decoded start, cached
	anchors []TrajAnchor
	data    []byte
	records int
	hash    uint64
}

// Steps returns how many world steps the trajectory covers.
func (t *Trajectory) Steps() int { return t.steps }

// N returns the node count of the recorded world.
func (t *Trajectory) N() int { return t.n }

// AnchorEvery returns the anchor/lane-reset cadence in steps.
func (t *Trajectory) AnchorEvery() int { return t.every }

// Dynamic reports whether the recorded world was dynamic.
func (t *Trajectory) Dynamic() bool { return t.dynamic }

// Records returns how many non-empty step records the stream holds.
func (t *Trajectory) Records() int { return t.records }

// StartSnapshot returns the JSON snapshot of the recorded world's start
// state. Callers must not modify it.
func (t *Trajectory) StartSnapshot() []byte { return t.start }

// Anchors returns the stored snapshot anchors. Callers must not modify.
func (t *Trajectory) Anchors() []TrajAnchor { return t.anchors }

// World builds a fresh replay world positioned at the trajectory's start.
// Every Step on it applies the next recorded delta instead of running
// mobility, decay, or topology maintenance; stepping past Steps() panics.
// Worlds from the same Trajectory are independent (the shared data is read
// only), so concurrent replications are race-free.
func (t *Trajectory) World() (*World, error) {
	w, err := t.snap.World()
	if err != nil {
		return nil, err
	}
	// The snapshot build aliases adjacency rows in one flat CSR array;
	// replay mutates rows surgically, so migrate them to owned storage
	// once, exactly as the incremental engine does.
	w.topo.OwnRows(8)
	// Replay worlds observe like the recorded one: Dynamic() must agree so
	// callers (and re-recording) see the same world shape. The dispatch in
	// Step routes every call to the trajectory before any dynamic branch.
	w.dynamic = t.dynamic
	w.traj = newTrajDecoder(t)
	return w, nil
}

// hashInput assembles the bytes the config hash covers: the framing ints
// and the start snapshot, so a hash mismatch catches a trajectory applied
// to the wrong world shape.
func (t *Trajectory) hashInput() []byte {
	b := make([]byte, 0, len(t.start)+32)
	b = binary.AppendUvarint(b, uint64(t.n))
	b = binary.AppendUvarint(b, uint64(t.steps))
	b = binary.AppendUvarint(b, uint64(t.every))
	if t.dynamic {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return append(b, t.start...)
}

// ---------------------------------------------------------------------------
// Recording

// TrajectoryRecorder captures a live world's per-step churn into a
// Trajectory. It only observes — it never mutates the world or consumes RNG
// — so recording cannot perturb a seeded run. Protocol:
//
//	rec, err := NewTrajectoryRecorder(w, every) // world at its start state
//	for i := 0; i < steps; i++ { w.Step(); rec.AfterStep() }
//	traj := rec.Finish()
type TrajectoryRecorder struct {
	w     *World
	t     *Trajectory
	every int

	steps int  // AfterStep calls so far
	gap   int  // empty steps since the last emitted record
	dirty bool // a record was emitted since the last stored anchor
	era   int

	prevX, prevY, prevRange     []float64
	prevEpoch                   int
	prevInjected, prevRecovered uint64
	prevOff                     []int32
	prevDst                     []NodeID

	xs, ys, rs []trajLane

	movedIDs, rangeIDs     []int32
	addU, addV, remU, remV []int32
}

// NewTrajectoryRecorder starts recording w; every <= 0 uses
// DefaultAnchorEvery. The world's current state becomes the trajectory's
// start snapshot, so construct the recorder before the first Step.
func NewTrajectoryRecorder(w *World, every int) (*TrajectoryRecorder, error) {
	if every <= 0 {
		every = DefaultAnchorEvery
	}
	snap := w.Snapshot()
	start, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("network: marshalling trajectory start snapshot: %w", err)
	}
	n := w.N()
	r := &TrajectoryRecorder{
		w:     w,
		every: every,
		t: &Trajectory{
			n:       n,
			every:   every,
			dynamic: w.dynamic,
			start:   start,
			snap:    snap,
		},
		prevX:     make([]float64, n),
		prevY:     make([]float64, n),
		prevRange: make([]float64, n),
		prevEpoch: w.FaultEpoch(),
		xs:        make([]trajLane, n),
		ys:        make([]trajLane, n),
		rs:        make([]trajLane, n),
	}
	if f := w.flt; f != nil {
		r.prevInjected, r.prevRecovered = f.injectedTotal, f.recoveredTotal
	}
	for u := 0; u < n; u++ {
		p := w.pos[u]
		r.prevX[u], r.prevY[u] = p.X, p.Y
		r.prevRange[u] = w.radios[u].Range()
	}
	r.captureTopo()
	return r, nil
}

// captureTopo copies the world's adjacency into the recorder's flat CSR
// baseline.
func (r *TrajectoryRecorder) captureTopo() {
	g := r.w.topo
	n := r.w.N()
	r.prevOff = append(r.prevOff[:0], 0)
	r.prevDst = r.prevDst[:0]
	for u := 0; u < n; u++ {
		r.prevDst = append(r.prevDst, g.Out(NodeID(u))...)
		r.prevOff = append(r.prevOff, int32(len(r.prevDst)))
	}
}

// diffTopo merges each node's previous and current sorted out-lists into
// the add/remove churn lists — O(E_prev + E_cur) total.
func (r *TrajectoryRecorder) diffTopo() {
	r.addU, r.addV = r.addU[:0], r.addV[:0]
	r.remU, r.remV = r.remU[:0], r.remV[:0]
	g := r.w.topo
	n := r.w.N()
	for u := 0; u < n; u++ {
		prev := r.prevDst[r.prevOff[u]:r.prevOff[u+1]]
		cur := g.Out(NodeID(u))
		i, j := 0, 0
		for i < len(prev) && j < len(cur) {
			switch {
			case prev[i] == cur[j]:
				i++
				j++
			case prev[i] < cur[j]:
				r.remU = append(r.remU, int32(u))
				r.remV = append(r.remV, int32(prev[i]))
				i++
			default:
				r.addU = append(r.addU, int32(u))
				r.addV = append(r.addV, int32(cur[j]))
				j++
			}
		}
		for ; i < len(prev); i++ {
			r.remU = append(r.remU, int32(u))
			r.remV = append(r.remV, int32(prev[i]))
		}
		for ; j < len(cur); j++ {
			r.addU = append(r.addU, int32(u))
			r.addV = append(r.addV, int32(cur[j]))
		}
	}
}

// AfterStep records the delta between the world's previous and current
// state. Call immediately after every World.Step.
func (r *TrajectoryRecorder) AfterStep() {
	w := r.w
	r.steps++
	rel := r.steps
	faultChanged := w.FaultEpoch() != r.prevEpoch
	if w.dynamic || faultChanged {
		r.emitDiff(rel, faultChanged)
	} else {
		// Static world between fault epochs: nothing can have changed.
		r.gap++
	}
	if rel%r.every == 0 && r.dirty {
		if b, err := json.Marshal(w.Snapshot()); err == nil {
			r.t.anchors = append(r.t.anchors, TrajAnchor{Step: rel, Snap: b})
			r.dirty = false
		}
	}
}

func (r *TrajectoryRecorder) emitDiff(rel int, faultChanged bool) {
	w := r.w
	n := w.N()
	r.movedIDs, r.rangeIDs = r.movedIDs[:0], r.rangeIDs[:0]
	for u := 0; u < n; u++ {
		p := w.pos[u]
		if p.X != r.prevX[u] || p.Y != r.prevY[u] {
			r.movedIDs = append(r.movedIDs, int32(u))
		}
		if rg := w.radios[u].Range(); rg != r.prevRange[u] {
			r.rangeIDs = append(r.rangeIDs, int32(u))
		}
	}
	r.diffTopo()
	var flags byte
	if len(r.movedIDs) > 0 {
		flags |= trajMoved
	}
	if len(r.rangeIDs) > 0 {
		flags |= trajRanges
	}
	if len(r.addU) > 0 {
		flags |= trajAdds
	}
	if len(r.remU) > 0 {
		flags |= trajRemoves
	}
	if faultChanged {
		flags |= trajFault
	}
	if flags == 0 {
		r.gap++
		return
	}
	if era := (rel - 1) / r.every; era != r.era {
		resetTrajLanes(r.xs)
		resetTrajLanes(r.ys)
		resetTrajLanes(r.rs)
		r.era = era
	}
	t := r.t
	t.data = binary.AppendUvarint(t.data, uint64(r.gap))
	t.data = append(t.data, flags)
	r.gap = 0
	if flags&trajMoved != 0 {
		t.data = trajAppendIDs(t.data, r.movedIDs)
		for _, u := range r.movedIDs {
			bits := math.Float64bits(w.pos[u].X)
			t.data = binary.AppendUvarint(t.data, trajXorLane(r.xs, int(u), bits))
			r.prevX[u] = w.pos[u].X
		}
		for _, u := range r.movedIDs {
			bits := math.Float64bits(w.pos[u].Y)
			t.data = binary.AppendUvarint(t.data, trajXorLane(r.ys, int(u), bits))
			r.prevY[u] = w.pos[u].Y
		}
	}
	if flags&trajRanges != 0 {
		t.data = trajAppendIDs(t.data, r.rangeIDs)
		for _, u := range r.rangeIDs {
			rg := w.radios[u].Range()
			t.data = binary.AppendUvarint(t.data, trajXorLane(r.rs, int(u), math.Float64bits(rg)))
			r.prevRange[u] = rg
		}
	}
	if flags&trajAdds != 0 {
		t.data = trajAppendPairs(t.data, r.addU, r.addV)
	}
	if flags&trajRemoves != 0 {
		t.data = trajAppendPairs(t.data, r.remU, r.remV)
	}
	if flags&trajAdds != 0 || flags&trajRemoves != 0 {
		r.captureTopo()
	}
	if faultChanged {
		r.prevEpoch = w.FaultEpoch()
		f := w.flt
		var dead, gwDown []int32
		var part bool
		var partX float64
		var injected, recovered uint64
		if f != nil {
			for u := 0; u < n; u++ {
				if f.dead[u] {
					dead = append(dead, int32(u))
				}
				if f.gwDown[u] {
					gwDown = append(gwDown, int32(u))
				}
			}
			part, partX = f.partActive, f.partX
			injected = f.injectedTotal - r.prevInjected
			recovered = f.recoveredTotal - r.prevRecovered
			r.prevInjected, r.prevRecovered = f.injectedTotal, f.recoveredTotal
		}
		t.data = trajAppendIDs(t.data, dead)
		t.data = trajAppendIDs(t.data, gwDown)
		if part {
			t.data = append(t.data, 1)
			t.data = binary.LittleEndian.AppendUint64(t.data, math.Float64bits(partX))
		} else {
			t.data = append(t.data, 0)
		}
		t.data = binary.AppendUvarint(t.data, injected)
		t.data = binary.AppendUvarint(t.data, recovered)
	}
	t.records++
	r.dirty = true
}

// Finish seals and returns the trajectory. The recorder must not be used
// afterwards.
func (r *TrajectoryRecorder) Finish() *Trajectory {
	t := r.t
	t.steps = r.steps
	t.hash = trace.ConfigHashOf(t.hashInput())
	return t
}

// RecordTrajectory steps w `steps` times, recording every delta, and
// returns the sealed trajectory. every <= 0 uses DefaultAnchorEvery.
func RecordTrajectory(w *World, steps, every int) (*Trajectory, error) {
	if steps < 0 {
		return nil, fmt.Errorf("network: trajectory steps must be non-negative, got %d", steps)
	}
	rec, err := NewTrajectoryRecorder(w, every)
	if err != nil {
		return nil, err
	}
	for i := 0; i < steps; i++ {
		w.Step()
		rec.AfterStep()
	}
	return rec.Finish(), nil
}

// TrajectorySource records a trajectory at most once and hands out
// independent replay worlds — RunMany's worldFor shape. The record phase is
// sync.Once-guarded, so concurrent sweep points and parallel replications
// share one recording safely.
type TrajectorySource struct {
	steps int
	every int
	sched *faults.Schedule
	build func() (*World, error)

	once sync.Once
	traj *Trajectory
	err  error
}

// NewTrajectorySource prepares a lazy record-once source: the first
// WorldFor (or Trajectory) call builds a live world via build, attaches
// sched (if any), records steps steps, and caches the result.
func NewTrajectorySource(steps, anchorEvery int, sched *faults.Schedule, build func() (*World, error)) *TrajectorySource {
	return &TrajectorySource{steps: steps, every: anchorEvery, sched: sched, build: build}
}

// Trajectory returns the recorded trajectory, recording it on first call.
func (s *TrajectorySource) Trajectory() (*Trajectory, error) {
	s.once.Do(func() {
		w, err := s.build()
		if err != nil {
			s.err = err
			return
		}
		if s.sched != nil {
			w.SetFaults(s.sched)
		}
		s.traj, s.err = RecordTrajectory(w, s.steps, s.every)
	})
	return s.traj, s.err
}

// WorldFor returns a fresh replay world per call (the run index is unused —
// every replication replays the same environment, as the paper prescribes).
func (s *TrajectorySource) WorldFor(int) (*World, error) {
	t, err := s.Trajectory()
	if err != nil {
		return nil, err
	}
	return t.World()
}

// ---------------------------------------------------------------------------
// Replay

// StepFromTrajectory advances a replay world one step by applying the next
// recorded delta — O(changes), no mobility RNG, no disc scans, no grid.
// Step dispatches here automatically for worlds built by Trajectory.World;
// calling it on a world without a trajectory, or past the recorded horizon,
// panics (the harness contract is steps <= Trajectory.Steps()).
func (w *World) StepFromTrajectory() {
	c := w.traj
	if c == nil {
		panic("network: StepFromTrajectory on a world without an attached trajectory")
	}
	if c.rel >= c.t.steps {
		panic(fmt.Sprintf("network: trajectory exhausted: world stepped past the %d recorded steps", c.t.steps))
	}
	w.step++
	w.m.steps.Inc()
	if w.watch != nil {
		w.watch.reset(w.step)
	}
	has, err := c.next()
	if err != nil {
		// Trajectories are validated at build/unmarshal time; reaching this
		// means the caller bypassed validation or mutated shared data.
		panic(fmt.Sprintf("network: %v during replay at step %d", err, c.rel))
	}
	if !has {
		return
	}
	for i, u := range c.moved {
		w.pos[u] = geom.Point{X: c.movedX[i], Y: c.movedY[i]}
	}
	for i, u := range c.rangeIDs {
		w.radios[u] = radio.New(c.ranges[i])
	}
	if len(c.addU) > 0 || len(c.remU) > 0 {
		for i := range c.addU {
			w.topo.InsertEdgeSorted(NodeID(c.addU[i]), NodeID(c.addV[i]))
		}
		for i := range c.remU {
			w.topo.RemoveEdgeSorted(NodeID(c.remU[i]), NodeID(c.remV[i]))
		}
		w.m.linksAdded.Add(uint64(len(c.addU)))
		w.m.linksRemoved.Add(uint64(len(c.remU)))
		w.m.edges.Set(float64(w.topo.M()))
		if dl := w.watch; dl != nil {
			// Recorded deltas are exact diffs, so replay keeps watchers
			// incremental even across fault steps (the recording diffed the
			// topology straight through the live rebuild). A fault record
			// still forces a resync via the epoch advance consumers track.
			for i := range c.addU {
				dl.add(NodeID(c.addU[i]), NodeID(c.addV[i]))
			}
			for i := range c.remU {
				dl.remove(NodeID(c.remU[i]), NodeID(c.remV[i]))
			}
		}
	}
	if c.faultRec {
		w.applyTrajFault(c.dead, c.gwDown, c.part, c.partX, c.injected, c.recovered)
	}
}

// TrajectoryRemaining returns how many recorded steps are left to replay;
// 0 for worlds without an attached trajectory.
func (w *World) TrajectoryRemaining() int {
	if w.traj == nil {
		return 0
	}
	return w.traj.t.steps - w.traj.rel
}

// applyTrajFault installs one recorded fault-epoch transition: the full
// masks replace the current ones (records carry absolute state, so replay
// needs no event semantics), and the faults_* instruments advance by the
// recorded injected/recovered counts — identical to the live counters.
func (w *World) applyTrajFault(dead, gwDown []int32, part bool, partX float64, injected, recovered uint64) {
	if w.flt == nil {
		w.initFaultState()
	}
	f := w.flt
	for i := range f.dead {
		f.dead[i] = false
	}
	for i := range f.gwDown {
		f.gwDown[i] = false
	}
	for _, u := range dead {
		f.dead[u] = true
	}
	for _, g := range gwDown {
		f.gwDown[g] = true
	}
	f.aliveCount = w.N() - len(dead)
	f.partActive, f.partX = part, partX
	w.refreshActiveGateways()
	f.epoch++
	f.injectedTotal += injected
	f.recoveredTotal += recovered
	// LastFaultEvents comes from the schedule the harness attached; replay
	// itself never consults it for state.
	f.lastEvents = f.sched.At(w.step)
	w.m.faultsInjected.Add(injected)
	w.m.faultsRecovered.Add(recovered)
	w.m.faultsNodesDown.Set(float64(len(dead)))
}

// trajDecoder walks the delta stream one step at a time, maintaining the
// same predictor lanes and era resets as the encoder. It doubles as the
// validation walker (validate) and the per-world replay cursor (World).
type trajDecoder struct {
	t    *Trajectory
	pos  int
	rel  int // steps consumed so far
	era  int
	gap  int  // empty steps remaining before the next record; -1 = unloaded
	rest bool // no more records: every remaining step is empty

	xs, ys, rs []trajLane

	moved, rangeIDs        []int32
	movedX, movedY, ranges []float64
	addU, addV, remU, remV []int32
	dead, gwDown           []int32
	part                   bool
	partX                  float64
	injected, recovered    uint64
	faultRec               bool
}

func newTrajDecoder(t *Trajectory) *trajDecoder {
	return &trajDecoder{
		t:   t,
		gap: -1,
		xs:  make([]trajLane, t.n),
		ys:  make([]trajLane, t.n),
		rs:  make([]trajLane, t.n),
	}
}

// next consumes one step: it reports whether this step carries a record
// (decoded into the cursor's fields) or is empty.
func (d *trajDecoder) next() (bool, error) {
	d.rel++
	if d.gap < 0 {
		if d.pos >= len(d.t.data) {
			d.rest = true
		} else {
			g, err := d.uvarint()
			if err != nil {
				return false, err
			}
			if g > uint64(d.t.steps) {
				return false, trajCorrupt("step gap %d exceeds the %d-step horizon", g, d.t.steps)
			}
			d.gap = int(g)
		}
	}
	if d.rest {
		return false, nil
	}
	if d.gap > 0 {
		d.gap--
		return false, nil
	}
	d.gap = -1
	return true, d.decodeRecord()
}

func (d *trajDecoder) decodeRecord() error {
	d.faultRec = false
	if era := (d.rel - 1) / d.t.every; era != d.era {
		resetTrajLanes(d.xs)
		resetTrajLanes(d.ys)
		resetTrajLanes(d.rs)
		d.era = era
	}
	flags, err := d.byte()
	if err != nil {
		return err
	}
	if flags == 0 || flags&^byte(trajAllFlags) != 0 {
		return trajCorrupt("invalid record flags %#x at step %d", flags, d.rel)
	}
	n := d.t.n
	if flags&trajMoved != 0 {
		if d.moved, err = d.ids(d.moved[:0], n); err != nil {
			return err
		}
		d.movedX, d.movedY = d.movedX[:0], d.movedY[:0]
		for _, u := range d.moved {
			bits, err := d.lane(d.xs, int(u))
			if err != nil {
				return err
			}
			d.movedX = append(d.movedX, math.Float64frombits(bits))
		}
		for _, u := range d.moved {
			bits, err := d.lane(d.ys, int(u))
			if err != nil {
				return err
			}
			d.movedY = append(d.movedY, math.Float64frombits(bits))
		}
	} else {
		d.moved = d.moved[:0]
	}
	if flags&trajRanges != 0 {
		if d.rangeIDs, err = d.ids(d.rangeIDs[:0], n); err != nil {
			return err
		}
		d.ranges = d.ranges[:0]
		for _, u := range d.rangeIDs {
			bits, err := d.lane(d.rs, int(u))
			if err != nil {
				return err
			}
			v := math.Float64frombits(bits)
			if v < 0 {
				return trajCorrupt("negative radio range for node %d at step %d", u, d.rel)
			}
			d.ranges = append(d.ranges, v)
		}
	} else {
		d.rangeIDs = d.rangeIDs[:0]
	}
	if flags&trajAdds != 0 {
		if d.addU, d.addV, err = d.pairs(d.addU[:0], d.addV[:0], n); err != nil {
			return err
		}
	} else {
		d.addU, d.addV = d.addU[:0], d.addV[:0]
	}
	if flags&trajRemoves != 0 {
		if d.remU, d.remV, err = d.pairs(d.remU[:0], d.remV[:0], n); err != nil {
			return err
		}
	} else {
		d.remU, d.remV = d.remU[:0], d.remV[:0]
	}
	if flags&trajFault != 0 {
		d.faultRec = true
		if d.dead, err = d.ids(d.dead[:0], n); err != nil {
			return err
		}
		if d.gwDown, err = d.ids(d.gwDown[:0], n); err != nil {
			return err
		}
		pb, err := d.byte()
		if err != nil {
			return err
		}
		switch pb {
		case 0:
			d.part, d.partX = false, 0
		case 1:
			bits, err := d.u64()
			if err != nil {
				return err
			}
			d.part, d.partX = true, math.Float64frombits(bits)
		default:
			return trajCorrupt("invalid partition marker %d at step %d", pb, d.rel)
		}
		if d.injected, err = d.uvarint(); err != nil {
			return err
		}
		if d.recovered, err = d.uvarint(); err != nil {
			return err
		}
	}
	return nil
}

// validate runs the full decode walk over the stream, checking every bound
// the replay apply path relies on, so a trajectory that validates can never
// panic or build a divergent world during replay.
func (t *Trajectory) validate() error {
	if t.n <= 0 || t.steps < 0 || t.every <= 0 {
		return trajCorrupt("invalid framing: n=%d steps=%d every=%d", t.n, t.steps, t.every)
	}
	if len(t.snap.Positions) != t.n {
		return trajCorrupt("start snapshot has %d nodes, header says %d", len(t.snap.Positions), t.n)
	}
	prevAnchor := 0
	for i, a := range t.anchors {
		if a.Step <= prevAnchor || a.Step > t.steps || a.Step%t.every != 0 {
			return trajCorrupt("anchor %d at step %d is out of order or off the %d-step cadence", i, a.Step, t.every)
		}
		prevAnchor = a.Step
		var s Snapshot
		if err := json.Unmarshal(a.Snap, &s); err != nil {
			return trajCorrupt("anchor %d does not parse: %v", i, err)
		}
		if len(s.Positions) != t.n {
			return trajCorrupt("anchor %d has %d nodes, want %d", i, len(s.Positions), t.n)
		}
	}
	d := newTrajDecoder(t)
	records := 0
	for rel := 1; rel <= t.steps; rel++ {
		has, err := d.next()
		if err != nil {
			return err
		}
		if has {
			records++
		}
	}
	if !d.rest && d.gap > 0 {
		return trajCorrupt("step gap overruns the %d-step horizon", t.steps)
	}
	if d.pos != len(t.data) {
		return trajCorrupt("%d trailing bytes after the final record", len(t.data)-d.pos)
	}
	if records != t.records {
		return trajCorrupt("stream holds %d records, header says %d", records, t.records)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Primitive codec (mirrors the trace binlog idioms)

// trajLane is one node's predictor context in a float lane: the bit
// patterns of its last two values and how many the chain has seen.
type trajLane struct {
	v1, v2 uint64
	seen   uint8
}

func resetTrajLanes(l []trajLane) {
	for i := range l {
		l[i] = trajLane{}
	}
}

// trajPredict returns the predicted bit pattern for lane u's next value: 0
// before any sample, the previous value after one, then the linear
// extrapolation 2*v1 - v2 — both single correctly-rounded IEEE ops, so
// encoder and decoder agree bit for bit on any platform.
func trajPredict(l []trajLane, u int) uint64 {
	st := l[u]
	switch st.seen {
	case 0:
		return 0
	case 1:
		return st.v1
	default:
		return math.Float64bits(2*math.Float64frombits(st.v1) - math.Float64frombits(st.v2))
	}
}

func trajPush(l []trajLane, u int, bits uint64) {
	st := &l[u]
	st.v2, st.v1 = st.v1, bits
	if st.seen < 2 {
		st.seen++
	}
}

func trajXorLane(l []trajLane, u int, bits uint64) uint64 {
	out := bits ^ trajPredict(l, u)
	trajPush(l, u, bits)
	return out
}

// trajAppendIDs writes a strictly ascending id list as a count plus deltas.
func trajAppendIDs(b []byte, ids []int32) []byte {
	b = binary.AppendUvarint(b, uint64(len(ids)))
	prev := int32(0)
	for _, id := range ids {
		b = binary.AppendUvarint(b, uint64(id-prev))
		prev = id
	}
	return b
}

// trajAppendPairs writes an edge list sorted by (u, v) as a count plus
// (du, dv) gaps; dv restarts from zero whenever u advances.
func trajAppendPairs(b []byte, us, vs []int32) []byte {
	b = binary.AppendUvarint(b, uint64(len(us)))
	prevU, prevV := int32(0), int32(0)
	for i := range us {
		u, v := us[i], vs[i]
		du := u - prevU
		if du > 0 {
			prevV = 0
		}
		b = binary.AppendUvarint(b, uint64(du))
		b = binary.AppendUvarint(b, uint64(v-prevV))
		prevU, prevV = u, v
	}
	return b
}

func (d *trajDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.t.data[d.pos:])
	if n <= 0 {
		return 0, trajCorrupt("truncated varint at byte %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *trajDecoder) byte() (byte, error) {
	if d.pos >= len(d.t.data) {
		return 0, trajCorrupt("truncated record at byte %d", d.pos)
	}
	b := d.t.data[d.pos]
	d.pos++
	return b, nil
}

func (d *trajDecoder) u64() (uint64, error) {
	if d.pos+8 > len(d.t.data) {
		return 0, trajCorrupt("truncated float at byte %d", d.pos)
	}
	v := binary.LittleEndian.Uint64(d.t.data[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *trajDecoder) lane(l []trajLane, u int) (uint64, error) {
	wire, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	bits := wire ^ trajPredict(l, u)
	trajPush(l, u, bits)
	return bits, nil
}

// ids decodes a strictly ascending id list with every id in [0, n).
func (d *trajDecoder) ids(dst []int32, n int) ([]int32, error) {
	count, err := d.uvarint()
	if err != nil {
		return dst, err
	}
	if count > uint64(n) {
		return dst, trajCorrupt("id list of %d entries exceeds the %d nodes", count, n)
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := d.uvarint()
		if err != nil {
			return dst, err
		}
		if delta >= uint64(n) {
			return dst, trajCorrupt("id delta %d exceeds the %d nodes at step %d", delta, n, d.rel)
		}
		id := prev + int64(delta)
		if i > 0 && delta == 0 {
			return dst, trajCorrupt("id list not strictly ascending at step %d", d.rel)
		}
		if id >= int64(n) {
			return dst, trajCorrupt("id %d out of range [0,%d) at step %d", id, n, d.rel)
		}
		dst = append(dst, int32(id))
		prev = id
	}
	return dst, nil
}

// pairs decodes an edge list sorted by (u, v), rejecting self-loops,
// duplicates, and out-of-range endpoints.
func (d *trajDecoder) pairs(us, vs []int32, n int) ([]int32, []int32, error) {
	count, err := d.uvarint()
	if err != nil {
		return us, vs, err
	}
	if count > uint64(n)*uint64(n) {
		return us, vs, trajCorrupt("edge list of %d entries exceeds n² at step %d", count, d.rel)
	}
	prevU, prevV := int64(0), int64(0)
	first := true
	for i := uint64(0); i < count; i++ {
		du, err := d.uvarint()
		if err != nil {
			return us, vs, err
		}
		dv, err := d.uvarint()
		if err != nil {
			return us, vs, err
		}
		if du >= uint64(n) || dv >= uint64(n) {
			return us, vs, trajCorrupt("edge delta (%d,%d) exceeds the %d nodes at step %d", du, dv, n, d.rel)
		}
		u := prevU + int64(du)
		if du > 0 {
			prevV = 0
		} else if !first && dv == 0 {
			return us, vs, trajCorrupt("edge list not strictly ascending at step %d", d.rel)
		}
		v := prevV + int64(dv)
		if u >= int64(n) || v >= int64(n) {
			return us, vs, trajCorrupt("edge %d→%d out of range [0,%d) at step %d", u, v, n, d.rel)
		}
		if u == v {
			return us, vs, trajCorrupt("self-loop %d→%d at step %d", u, v, d.rel)
		}
		us = append(us, int32(u))
		vs = append(vs, int32(v))
		prevU, prevV = u, v
		first = false
	}
	return us, vs, nil
}

// ---------------------------------------------------------------------------
// Serialisation (disk-backed reuse across processes)

// MarshalBinary serialises the trajectory with the trace binlog's framing
// idioms: a magic + version header, varint-framed sections, an FNV-64a
// config hash over the framing and start snapshot, and a CRC32-IEEE
// trailer over everything before it.
func (t *Trajectory) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, len(t.data)+len(t.start)+64)
	b = append(b, trajMagic...)
	b = binary.AppendUvarint(b, trajVersion)
	b = binary.AppendUvarint(b, uint64(t.n))
	b = binary.AppendUvarint(b, uint64(t.steps))
	b = binary.AppendUvarint(b, uint64(t.every))
	if t.dynamic {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(t.start)))
	b = append(b, t.start...)
	b = binary.AppendUvarint(b, uint64(len(t.anchors)))
	for _, a := range t.anchors {
		b = binary.AppendUvarint(b, uint64(a.Step))
		b = binary.AppendUvarint(b, uint64(len(a.Snap)))
		b = append(b, a.Snap...)
	}
	b = binary.AppendUvarint(b, uint64(t.records))
	b = binary.AppendUvarint(b, uint64(len(t.data)))
	b = append(b, t.data...)
	b = binary.LittleEndian.AppendUint64(b, t.hash)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// UnmarshalTrajectory decodes and fully validates a serialised trajectory:
// a corrupted stream — truncated churn lists, bit-flipped anchors, a
// mismatched config hash — yields a clean ErrTrajectoryCorrupt-wrapped
// error, never a panic or a divergent replay world.
func UnmarshalTrajectory(b []byte) (*Trajectory, error) {
	if len(b) < len(trajMagic)+4 {
		return nil, trajCorrupt("short buffer: %d bytes", len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, trajCorrupt("CRC mismatch: stored %08x, computed %08x", got, want)
	}
	if string(body[:len(trajMagic)]) != trajMagic {
		return nil, trajCorrupt("bad magic %q", body[:len(trajMagic)])
	}
	r := trajFields{b: body, pos: len(trajMagic)}
	version := r.uvarint()
	if version > trajVersion {
		return nil, trajCorrupt("version %d is newer than the supported %d", version, trajVersion)
	}
	t := &Trajectory{}
	t.n = int(r.uvarint())
	t.steps = int(r.uvarint())
	t.every = int(r.uvarint())
	t.dynamic = r.byte() == 1
	t.start = r.bytes(int(r.uvarint()))
	anchors := int(r.uvarint())
	if r.err == nil && anchors >= 0 && anchors <= t.steps {
		for i := 0; i < anchors && r.err == nil; i++ {
			step := int(r.uvarint())
			t.anchors = append(t.anchors, TrajAnchor{Step: step, Snap: r.bytes(int(r.uvarint()))})
		}
	} else if r.err == nil {
		return nil, trajCorrupt("anchor count %d exceeds the %d-step horizon", anchors, t.steps)
	}
	t.records = int(r.uvarint())
	t.data = r.bytes(int(r.uvarint()))
	t.hash = r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		// t.hash is the final header field; anything left over is junk.
		return nil, trajCorrupt("%d trailing bytes before the checksum", len(body)-r.pos)
	}
	if t.records < 0 || t.records > t.steps {
		return nil, trajCorrupt("record count %d outside [0,%d]", t.records, t.steps)
	}
	if err := json.Unmarshal(t.start, &t.snap); err != nil {
		return nil, trajCorrupt("start snapshot does not parse: %v", err)
	}
	if want := trace.ConfigHashOf(t.hashInput()); want != t.hash {
		return nil, trajCorrupt("config hash mismatch: stored %016x, computed %016x", t.hash, want)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Save writes the serialised trajectory to path.
func (t *Trajectory) Save(path string) error {
	b, err := t.MarshalBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadTrajectory reads and validates a trajectory file written by Save.
func LoadTrajectory(path string) (*Trajectory, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalTrajectory(b)
}

// trajFields is a forgiving little reader for the serialised header: it
// latches the first error so field parsing reads naturally.
type trajFields struct {
	b   []byte
	pos int
	err error
}

func (r *trajFields) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.err = trajCorrupt("truncated header field at byte %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *trajFields) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.b) {
		r.err = trajCorrupt("truncated header at byte %d", r.pos)
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *trajFields) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.b) {
		r.err = trajCorrupt("truncated header at byte %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

func (r *trajFields) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.b) {
		r.err = trajCorrupt("truncated %d-byte section at byte %d", n, r.pos)
		return nil
	}
	v := r.b[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return v
}
