// Package network models the wireless ad hoc network the agents live on:
// node positions, radios, mobility, the gateway set, and the directed
// topology induced by radio ranges. A World owns all of it and exposes a
// per-step evolution (move nodes, drain batteries, recompute links).
//
// Link semantics follow the paper: there is a directed link u→v iff v lies
// within u's *current* radio range. Heterogeneous ranges therefore produce
// asymmetric links, and battery decay breaks links over time.
package network

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
)

// NodeID aliases graph.NodeID for convenience.
type NodeID = graph.NodeID

// Config assembles a World. Positions, Radios and Movers must have equal
// lengths; Gateways lists node IDs that act as stationary gateways.
type Config struct {
	Arena     geom.Rect
	Positions []geom.Point
	Radios    []radio.Radio
	Movers    []mobility.Mover
	Gateways  []NodeID
}

// World is the simulated wireless network.
type World struct {
	arena     geom.Rect
	pos       []geom.Point
	radios    []radio.Radio
	fleet     *mobility.Fleet
	gateways  []NodeID
	isGateway []bool

	grid     *geom.Grid
	topo     *graph.Directed
	step     int
	dynamic  bool    // false ⇒ topology never changes after construction
	maxRange float64 // max base radio range; grid cell side and query bound

	// Per-step rebuilds alternate between two graph buffers so the
	// previous step's topology stays intact for exactly one step (the
	// documented lifetime of Topology()) while its storage is recycled
	// the step after. reach backs ConnectivityToGateways.
	topoBuf [2]*graph.Directed
	topoIdx int
	reach   graph.ReachScratch
	nbrBuf  []int32 // scratch for grid queries

	// incr holds the incremental topology engine's per-world state (nil
	// for static worlds); fullRebuild forces the per-step full recompute
	// path instead, for equivalence tests and benchmarks. shard, when
	// non-nil, steps the incremental engine as concurrent spatial bands
	// (see shard.go); all three paths produce bit-identical topologies.
	incr        *incrState
	fullRebuild bool
	shard       *shardState

	// flt, when non-nil, is the fault-injection runtime (see faults.go):
	// alive mask, gateway service mask, partition cut, and the schedule
	// driving them.
	flt *faultState

	// traj, when non-nil, makes this a replay world (see trajectory.go):
	// every Step applies the next recorded delta instead of running
	// mobility, decay, faults, or topology maintenance.
	traj *trajDecoder

	// watch, when non-nil, is the per-step topology delta stream attached
	// by WatchTopology (see deltas.go): every stepping path either
	// enumerates its edge edits into it or marks it Rebuilt.
	watch *TopoDeltas

	m        worldMetrics
	diffMark []int32 // per-node stamp scratch for the instrumented edge diff
	diffGen  int32
}

// worldMetrics holds the World's instrument handles. All handles are
// nil-safe no-ops until Instrument attaches a registry.
type worldMetrics struct {
	steps        metrics.Counter
	mobility     metrics.Timer
	decay        metrics.Timer
	rebuild      metrics.Timer
	linksAdded   metrics.Counter
	linksRemoved metrics.Counter
	edges        metrics.Gauge

	faultsInjected  metrics.Counter
	faultsRecovered metrics.Counter
	faultsNodesDown metrics.Gauge
}

// Instrument registers the World's per-step phase timers (mobility, radio
// decay, topology rebuild) and link-churn counters on r. A nil registry
// detaches nothing and costs nothing; instruments never feed back into the
// simulation, so seeded results are unchanged.
func (w *World) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	w.m = worldMetrics{
		steps:        r.Counter("world_steps_total"),
		mobility:     r.Timer("world_phase_mobility_seconds"),
		decay:        r.Timer("world_phase_radio_decay_seconds"),
		rebuild:      r.Timer("world_phase_topology_rebuild_seconds"),
		linksAdded:   r.Counter("world_links_added_total"),
		linksRemoved: r.Counter("world_links_removed_total"),
		edges:        r.Gauge("world_edges"),

		faultsInjected:  r.Counter("faults_injected_total"),
		faultsRecovered: r.Counter("faults_recovered_total"),
		faultsNodesDown: r.Gauge("faults_nodes_down"),
	}
	w.m.edges.Set(float64(w.topo.M()))
	if w.flt != nil {
		w.m.faultsNodesDown.Set(float64(w.N() - w.flt.aliveCount))
	}
}

// NewWorld validates cfg and builds the initial topology.
func NewWorld(cfg Config) (*World, error) {
	n := len(cfg.Positions)
	if n == 0 {
		return nil, fmt.Errorf("network: empty world")
	}
	if len(cfg.Radios) != n || len(cfg.Movers) != n {
		return nil, fmt.Errorf("network: mismatched lengths: %d positions, %d radios, %d movers",
			n, len(cfg.Radios), len(cfg.Movers))
	}
	w := &World{
		arena:     cfg.Arena,
		pos:       append([]geom.Point(nil), cfg.Positions...),
		radios:    append([]radio.Radio(nil), cfg.Radios...),
		fleet:     mobility.NewFleet(cfg.Movers),
		isGateway: make([]bool, n),
	}
	for _, g := range cfg.Gateways {
		if int(g) < 0 || int(g) >= n {
			return nil, fmt.Errorf("network: gateway %d out of range [0,%d)", g, n)
		}
		if !w.isGateway[g] {
			w.isGateway[g] = true
			w.gateways = append(w.gateways, g)
		}
	}
	maxRange := 0.0
	for i := range w.radios {
		if r := w.radios[i].BaseRange(); r > maxRange {
			maxRange = r
		}
		if w.radios[i].Decays() {
			w.dynamic = true
		}
	}
	for _, m := range cfg.Movers {
		if _, static := m.(mobility.Static); !static {
			w.dynamic = true
		}
	}
	if maxRange <= 0 {
		return nil, fmt.Errorf("network: all radios have zero range")
	}
	w.maxRange = maxRange
	w.grid = geom.NewGrid(cfg.Arena, n, maxRange)
	if w.dynamic {
		// Incremental updates re-bucket nodes one at a time; pre-grown
		// buckets keep that free of steady-state growth reallocations.
		w.grid.ReserveBuckets(n)
	}
	w.rebuildTopology()
	if w.dynamic {
		w.initIncremental(cfg.Movers)
	}
	return w, nil
}

// N returns the number of nodes.
func (w *World) N() int { return len(w.pos) }

// StepCount returns how many times Step has been called.
func (w *World) StepCount() int { return w.step }

// Dynamic reports whether the topology can change over time.
func (w *World) Dynamic() bool { return w.dynamic }

// Pos returns node u's current position.
func (w *World) Pos(u NodeID) geom.Point { return w.pos[u] }

// Positions returns a copy of all node positions.
func (w *World) Positions() []geom.Point {
	return append([]geom.Point(nil), w.pos...)
}

// Radio returns a copy of node u's radio state.
func (w *World) Radio(u NodeID) radio.Radio { return w.radios[u] }

// Gateways returns the gateway node IDs currently in service: under fault
// injection, dead or failed gateways are excluded. Callers must not modify
// the returned slice.
func (w *World) Gateways() []NodeID {
	if w.flt != nil {
		return w.flt.activeGW
	}
	return w.gateways
}

// IsGateway reports whether u is a gateway currently in service (dead and
// failed gateways do not count as route targets).
func (w *World) IsGateway(u NodeID) bool {
	if w.flt != nil && (w.flt.dead[u] || w.flt.gwDown[u]) {
		return false
	}
	return w.isGateway[u]
}

// Topology returns the current directed topology. The returned graph is
// owned by the World and valid until the next Step; callers must not
// modify it.
func (w *World) Topology() *graph.Directed { return w.topo }

// Neighbors returns the current out-neighbours of u (nodes u can transmit
// to). Callers must not modify the returned slice.
func (w *World) Neighbors(u NodeID) []NodeID { return w.topo.Out(u) }

// Step advances the world one time step: nodes move, batteries drain, and
// the topology is updated. Static worlds skip the update entirely; dynamic
// worlds maintain the link graph incrementally (cost proportional to the
// nodes that can move plus the links that actually churned) unless
// SetFullRebuild forced the per-step full recompute. Both paths produce
// bit-identical topologies — canonical sorted out-lists — pinned by the
// equivalence and fuzz tests in this package.
func (w *World) Step() {
	if w.traj != nil {
		// Replay worlds (Trajectory.World) step from the recorded delta
		// stream — no mobility RNG, no disc scans, no grid maintenance.
		w.StepFromTrajectory()
		return
	}
	w.step++
	w.m.steps.Inc()
	if w.watch != nil {
		w.watch.reset(w.step)
	}
	if f := w.flt; f != nil {
		// Fault steps — and every step while a partition is active on a
		// dynamic world — run the mask-aware full rebuild; the incremental
		// engine resynchronises afterwards through its stale flag.
		if evs := f.sched.At(w.step); len(evs) > 0 {
			w.applyFaults(evs)
			w.stepFullRebuild()
			return
		}
		if f.partActive && w.dynamic {
			w.stepFullRebuild()
			return
		}
	}
	if !w.dynamic {
		return
	}
	if w.fullRebuild || w.incr == nil {
		w.stepFullRebuild()
		return
	}
	if w.shard != nil {
		w.stepSharded()
		return
	}
	w.stepIncremental()
}

// SetFullRebuild selects between the incremental topology engine (the
// default for dynamic worlds) and the full per-step recompute. The two
// paths yield identical topologies, so this is a performance knob only —
// benchmarks and equivalence tests flip it. Safe to toggle at any step
// boundary: the incremental engine re-derives its per-step state from the
// world, and its decay cursors tolerate edges already removed by full
// rebuilds that ran in between.
func (w *World) SetFullRebuild(on bool) { w.fullRebuild = on }

// stepFullRebuild is the pre-incremental Step body: move, decay, rebuild
// the whole topology from the grid.
func (w *World) stepFullRebuild() {
	sp := w.m.mobility.Start()
	if w.flt == nil {
		w.fleet.Step(w.pos)
	} else {
		// Dead nodes freeze: their movers are not stepped, so their RNG
		// streams pause — exactly as the incremental and sharded paths skip
		// them — and resume from the same state on revival.
		for i := range w.pos {
			if !w.flt.dead[i] {
				w.pos[i] = w.fleet.StepOne(i, w.pos[i])
			}
		}
	}
	sp.Stop()
	sp = w.m.decay.Start()
	for i := range w.radios {
		w.radios[i].Step()
	}
	sp.Stop()
	sp = w.m.rebuild.Start()
	old := w.topo
	w.rebuildTopology()
	sp.Stop()
	if w.incr != nil {
		// Positions and topology changed behind the incremental engine's
		// back; its in-source lists must be rebuilt before the next
		// incremental step (decay cursors tolerate staleness on their own).
		w.incr.stale = true
	}
	if w.m.linksAdded.Enabled() {
		w.recordLinkChurn(old, w.topo)
	}
}

// rebuildTopology recomputes the directed link graph using the spatial
// grid, writing into the topology buffer not currently published so the
// rebuild reuses storage instead of allocating a fresh graph per step.
// Grid cells visit each node exactly once and exclude the centre node, so
// the neighbour lists are duplicate- and self-loop-free as SetOut requires.
func (w *World) rebuildTopology() {
	if w.watch != nil {
		// Wholesale rewrite: watchers cannot enumerate the change, so they
		// must resync. Sticky until the next Step resets the buffer, which
		// also covers out-of-band rebuilds (SetFaults detach, snapshot
		// restore) that happen between steps.
		w.watch.Rebuilt = true
	}
	n := w.N()
	w.topoIdx ^= 1
	g := w.topoBuf[w.topoIdx]
	if g == nil {
		g = graph.New(n)
		w.topoBuf[w.topoIdx] = g
	}
	g.Reset(n)
	f := w.flt
	if f == nil {
		w.grid.Rebuild(w.pos)
		for u := 0; u < n; u++ {
			r := w.radios[u].Range()
			if r <= 0 {
				continue
			}
			w.nbrBuf = w.grid.Within(w.pos[u], r, u, w.nbrBuf[:0])
			g.SetOut(NodeID(u), w.nbrBuf)
		}
		w.topo = g
		return
	}
	// Fault-aware rebuild: dead nodes are omitted from the grid (queries
	// cannot see them, so they receive no links) and skipped as sources (so
	// they emit none); an active partition drops every neighbour on the far
	// side of the cut. A fully dead world degenerates to an empty grid and
	// an edgeless graph — no scan runs at all.
	w.grid.RebuildMasked(w.pos, f.dead)
	for u := 0; u < n; u++ {
		if f.dead[u] {
			continue
		}
		r := w.radios[u].Range()
		if r <= 0 {
			continue
		}
		w.nbrBuf = w.grid.Within(w.pos[u], r, u, w.nbrBuf[:0])
		if f.partActive {
			side := w.pos[u].X >= f.partX
			kept := w.nbrBuf[:0]
			for _, v := range w.nbrBuf {
				if (w.pos[v].X >= f.partX) == side {
					kept = append(kept, v)
				}
			}
			w.nbrBuf = kept
		}
		g.SetOut(NodeID(u), w.nbrBuf)
	}
	w.topo = g
}

// recordLinkChurn counts the edges that appeared and disappeared between
// two consecutive topologies using a generation-stamped scratch array —
// O(E_old + E_new) per step and allocation-free after warm-up. Only runs
// when a registry is attached.
func (w *World) recordLinkChurn(old, cur *graph.Directed) {
	n := w.N()
	if len(w.diffMark) < n {
		w.diffMark = make([]int32, n)
		w.diffGen = 0
	}
	if w.diffGen > 1<<30 { // avoid stamp collisions on wraparound
		for i := range w.diffMark {
			w.diffMark[i] = 0
		}
		w.diffGen = 0
	}
	var added, removed uint64
	for u := 0; u < n; u++ {
		// Stamp the new out-set, then scan the old one: unstamped ⇒ removed.
		w.diffGen++
		gen := w.diffGen
		for _, v := range cur.Out(NodeID(u)) {
			w.diffMark[v] = gen
		}
		for _, v := range old.Out(NodeID(u)) {
			if w.diffMark[v] != gen {
				removed++
			}
		}
		// Stamp the old out-set, then scan the new one: unstamped ⇒ added.
		w.diffGen++
		gen = w.diffGen
		for _, v := range old.Out(NodeID(u)) {
			w.diffMark[v] = gen
		}
		for _, v := range cur.Out(NodeID(u)) {
			if w.diffMark[v] != gen {
				added++
			}
		}
	}
	w.m.linksAdded.Add(added)
	w.m.linksRemoved.Add(removed)
	w.m.edges.Set(float64(cur.M()))
}

// ConnectivityToGateways returns the fraction of non-gateway nodes that
// can reach at least one gateway over the *current* topology. This is the
// idealised (omniscient-routing) upper bound on the paper's connectivity
// metric; the routing scenario measures the same fraction over
// agent-maintained tables instead.
func (w *World) ConnectivityToGateways() float64 {
	// Degenerate worlds short-circuit to 0: no in-service gateways (none
	// configured, or all dead/failed) or no alive nodes at all.
	gws := w.Gateways()
	if len(gws) == 0 {
		return 0
	}
	f := w.flt
	if f != nil && f.aliveCount == 0 {
		return 0
	}
	reach := w.topo.CanReachSetScratch(gws, &w.reach)
	nonGateway, connected := 0, 0
	for u := 0; u < w.N(); u++ {
		if w.isGateway[u] || (f != nil && f.dead[u]) {
			continue
		}
		nonGateway++
		if reach[u] {
			connected++
		}
	}
	if nonGateway == 0 {
		return 1
	}
	return float64(connected) / float64(nonGateway)
}
