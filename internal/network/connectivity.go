package network

import "repro/internal/graph"

// ConnTracker maintains ConnectivityToGateways incrementally: instead of a
// fresh reverse BFS over the whole topology every step (O(N+E)), it feeds
// a graph.DynReach witness forest from the world's per-step topology delta
// stream, so steady-state steps cost O(churned edges + affected subtrees).
// Steps the stream cannot enumerate — full rebuilds, fault epochs, missed
// steps — fall back to one full recompute, which is exactly the scratch
// BFS the non-incremental path pays every step. The reported fraction is
// bit-identical to ConnectivityToGateways at every step, pinned by the
// equivalence tests in this package.
//
// A tracker belongs to one world. It keeps its own reverse-adjacency
// mirror (the graph's built-in reverse CSR is invalidated wholesale on any
// mutation, so it is useless incrementally) and repairs it from the same
// delta stream.
type ConnTracker struct {
	w      *World
	deltas *TopoDeltas
	dr     graph.DynReach
	rev    [][]NodeID // dynamic reverse adjacency mirror of w.topo

	lastEpoch int
	lastStep  int
	synced    bool
	resyncs   int

	orc graph.ReachOracle // bound once per Reset (closures capture t)
}

// NewConnTracker attaches a tracker to w and builds its initial state.
func NewConnTracker(w *World) *ConnTracker {
	t := &ConnTracker{}
	t.Reset(w)
	return t
}

// Reset rebinds the tracker to w (possibly a different world — pooled
// harness state reuses trackers across runs) and forces a full resync at
// the next Sync.
func (t *ConnTracker) Reset(w *World) {
	t.w = w
	t.deltas = w.WatchTopology()
	t.synced = false
	t.resyncs = 0
	if t.orc.LiveOut == nil {
		// Bound once per tracker: binding in the per-step path would
		// allocate closures there. The closures read t's current fields,
		// so Reset rebinding t.w retargets them for free.
		t.orc = t.oracle()
	}
}

func (t *ConnTracker) oracle() graph.ReachOracle {
	return graph.ReachOracle{
		LiveOut: func(u NodeID, dst []NodeID) []NodeID {
			return t.w.topo.Out(u)
		},
		LiveIn: func(v NodeID, dst []NodeID) []NodeID {
			return t.rev[v]
		},
		HasLive: func(u, v NodeID) bool {
			return t.w.topo.HasEdgeSorted(u, v)
		},
		// Countable mirrors ConnectivityToGateways' denominator: raw
		// non-gateways (a downed gateway stays excluded — it still isn't a
		// route target for anyone else and never counts itself) that are
		// not dead. Changes only at fault epochs, which force a resync.
		Countable: func(u NodeID) bool {
			if t.w.isGateway[u] {
				return false
			}
			return t.w.flt == nil || !t.w.flt.dead[u]
		},
	}
}

// resync rebuilds the reverse mirror and the reach forest from the current
// world state — the full-recompute fallback, same asymptotic cost as one
// scratch ConnectivityToGateways call.
func (t *ConnTracker) resync() {
	w := t.w
	n := w.N()
	t.lastEpoch = w.FaultEpoch()
	t.lastStep = w.StepCount()
	t.synced = true
	t.resyncs++
	if cap(t.rev) < n {
		t.rev = make([][]NodeID, n)
	}
	t.rev = t.rev[:n]
	for v := range t.rev {
		t.rev[v] = t.rev[v][:0]
	}
	topo := w.topo
	for u := 0; u < n; u++ {
		for _, v := range topo.Out(NodeID(u)) {
			t.rev[v] = appendSlack(t.rev[v], NodeID(u))
		}
	}
	t.dr.Reset(n, t.orc)
	t.dr.Recompute(w.Gateways())
}

// Sync brings the tracker up to date with the world: incremental when the
// delta stream covers everything since the last Sync, a full resync
// otherwise (rebuilt topology, fault epoch, missed steps, first use).
func (t *ConnTracker) Sync() {
	w := t.w
	d := t.deltas
	if t.synced && !d.Rebuilt && w.StepCount() == t.lastStep && w.FaultEpoch() == t.lastEpoch {
		return
	}
	if !t.synced || d.Rebuilt || d.Step != w.StepCount() || d.Step != t.lastStep+1 ||
		w.FaultEpoch() != t.lastEpoch {
		t.resync()
		return
	}
	for i := range d.RemU {
		u, v := d.RemU[i], d.RemV[i]
		t.revRemove(u, v)
		t.dr.Invalidate(u)
	}
	for i := range d.AddU {
		u, v := d.AddU[i], d.AddV[i]
		t.rev[v] = appendSlack(t.rev[v], u)
		t.dr.Candidate(u)
	}
	t.dr.Flush()
	t.lastStep = d.Step
}

// appendSlack appends with headroom: rows grow to 2·len+8 instead of the
// tight doubling append would give from tiny caps. Mirror rows track node
// in-degrees, whose high-water marks drift upward slowly for hundreds of
// steps as movers wander through dense regions — slack keeps that drift
// inside existing capacity, so steady-state steps stay allocation-free.
func appendSlack(row []NodeID, u NodeID) []NodeID {
	if len(row) == cap(row) {
		grown := make([]NodeID, len(row), 2*len(row)+8)
		copy(grown, row)
		row = grown
	}
	return append(row, u)
}

// revRemove drops one occurrence of u from v's reverse-adjacency row.
// Spurious stream entries may name an edge the mirror never held; those
// just scan and leave the row untouched (matching the graph's own no-op).
func (t *ConnTracker) revRemove(u, v NodeID) {
	row := t.rev[v]
	for i, x := range row {
		if x == u {
			row[i] = row[len(row)-1]
			t.rev[v] = row[:len(row)-1]
			return
		}
	}
}

// Connectivity returns ConnectivityToGateways' value, maintained
// incrementally. Degenerate cases replicate the scratch path exactly, in
// the same order.
func (t *ConnTracker) Connectivity() float64 {
	t.Sync()
	w := t.w
	if len(w.Gateways()) == 0 {
		return 0
	}
	if w.flt != nil && w.flt.aliveCount == 0 {
		return 0
	}
	if t.dr.CountableTotal() == 0 {
		return 1
	}
	return float64(t.dr.Count()) / float64(t.dr.CountableTotal())
}

// Resyncs returns how many full recomputes the tracker has performed since
// Reset (first use included) — the fallback counter the harness metrics
// and the degradation tests read.
func (t *ConnTracker) Resyncs() int { return t.resyncs }
