package network

import (
	"math"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// This file implements spatially sharded world stepping: the grid's cell
// columns are partitioned into S contiguous vertical bands, and one step's
// work — mover updates, class-3 disc scans, dwell-expiry checks, decay
// cursors — is split by band and run concurrently, with a deterministic
// halo exchange for the edits that cross a band boundary. The resulting
// topology is bit-identical to the sequential incremental path (and hence
// to a full rebuild) at any shard count, which the equivalence, fuzz, and
// snapshot tests in this package pin.
//
// Ownership. Every node belongs to the band covering its grid column;
// bandOf[] tracks that persistently and is updated (serially) for the
// nodes that moved this step, so ownership always reflects the post-move
// position — the same position the grid buckets hold during the scan
// phase. Row u of the topology (u's out-list) is owned by u's band: only
// the owning shard mutates it during a parallel phase. Edits a scan
// discovers for a row it does not own (the halo: a moved node near a
// boundary links to, or drops, a neighbour across it, so the NEIGHBOUR's
// out-list must change) are buffered as edge ops and applied in a fixed
// band-then-scan order merge between phases. Since the incremental
// engine's predicates touch each directed edge at most once per step, the
// buffered ops are disjoint and the merge order can never change the
// outcome — it exists to keep the churn accounting exact and the memory
// accesses serial.
//
// Phase structure of one sharded step (∥ = parallel over bands, — = serial):
//
//	∥ mobility     each band steps its own movers (per-node RNG streams
//	               make mover order irrelevant), records moved/prevPos
//	               and a band-local max displacement
//	— re-bucket    grid updates for moved nodes in ascending id order
//	               (identical to the sequential path), band re-assignment
//	               for boundary crossers, per-band scan lists
//	— decay        radio drain + squared-range cache refresh (tiny)
//	∥ scan (P1)    class-3 box scans of owned moved nodes; ops on foreign
//	               rows go to the band's halo buffer
//	— merge (M1)   apply halo buffers band by band
//	∥ expiry (P2)  classes 4/5 for owned dwelling movers and class-2
//	               cursors for owned static decaying sources; class-4
//	               removals on foreign rows go to the halo buffer
//	— merge (M2)   apply the removal buffers, fold edge-count deltas and
//	               churn counters, invalidate the reverse adjacency
//
// Workers come from the process-wide budget in internal/parallel, claimed
// per step through a parallel.Group: outer run-level pools claim for whole
// batches and therefore win, and an exhausted budget degrades every phase
// to an inline sequential loop over the bands — same results, one
// goroutine. All per-band scratch (scan lists, halo buffers, counters) is
// pre-sized and reused, so the sharded path stays allocation-free in
// steady state.

// edgeOp is one buffered halo edit: insert (add=true) or remove the
// directed edge u→v in a row some other shard owns.
type edgeOp struct {
	u, v NodeID
	add  bool
}

// worldShard is one band's working state.
type worldShard struct {
	mobile  []int32  // owned mobility-capable ids this step, ascending
	scan    []int32  // owned ids that moved this step, ascending
	cursors []int32  // indices into incr.decay owned by this band
	ops     []edgeOp // halo buffer: P1 cross-band edits, in scan order
	rmOps   []edgeOp // halo buffer: P2 cross-band class-4 removals
	outBuf  []int32  // class-5 out-walk scratch
	// Topology-watch capture, filled only while a watcher is attached:
	// this band's decided edits, folded serially into the watch buffer at
	// the end of the step. Halo ops are captured at decision time too
	// (before the merge applies them), which can over-report — allowed by
	// the TopoDeltas contract.
	dAddU, dAddV []NodeID
	dRemU, dRemV []NodeID
	maxDisp2     float64
	added        uint64
	removed      uint64
	mDelta       int
}

// shardState is the per-world state of sharded stepping (nil when
// sharding is disabled).
type shardState struct {
	bands     int
	colToBand []int32 // grid column -> band
	bandOf    []int32 // node id -> band of its current grid position
	maxDisp   float64 // this step's max displacement, for the scan phase
	shards    []worldShard
	group     parallel.Group

	// Phase method values are bound once at setup: evaluating w.moveShard
	// at a Do call site would allocate a closure every step.
	moveFn, scanFn, expireFn func(int)
}

// SetShardWorkers partitions the world grid into s vertical bands stepped
// concurrently (s <= 1 disables sharding and restores the sequential
// incremental path). The sharded and sequential paths produce bit-identical
// topologies at every step and any shard count, so this is purely a
// performance knob — it can be flipped at any step boundary. Static worlds
// ignore it. Shard workers are drawn from the shared parallel budget;
// when outer run-level parallelism has claimed the budget, shards degrade
// to sequential execution within the step.
func (w *World) SetShardWorkers(s int) {
	if w.incr == nil {
		return
	}
	if cols := w.grid.Cols(); s > cols {
		s = cols // a band needs at least one column
	}
	if s <= 1 {
		w.shard = nil
		return
	}
	n := w.N()
	cols := w.grid.Cols()
	st := &shardState{
		bands:     s,
		colToBand: make([]int32, cols),
		bandOf:    make([]int32, n),
		shards:    make([]worldShard, s),
	}
	for c := 0; c < cols; c++ {
		st.colToBand[c] = int32(c * s / cols)
	}
	for u := 0; u < n; u++ {
		st.bandOf[u] = st.colToBand[w.grid.ColOf(w.grid.Pos(int32(u)))]
	}
	// Class-2 cursors belong to static sources, so their band assignment
	// never changes.
	for i := range w.incr.decay {
		b := st.bandOf[w.incr.decay[i].src]
		st.shards[b].cursors = append(st.shards[b].cursors, int32(i))
	}
	st.moveFn, st.scanFn, st.expireFn = w.moveShard, w.scanShard, w.expireShard
	w.shard = st
}

// ShardWorkers returns the configured shard count (1 = sharding disabled).
func (w *World) ShardWorkers() int {
	if w.shard == nil {
		return 1
	}
	return w.shard.bands
}

// stepSharded is the sharded counterpart of stepIncremental; see the file
// comment for the phase structure.
func (w *World) stepSharded() {
	t := w.incr
	st := w.shard
	if t.stale {
		w.resyncAfterFullRebuild()
		// Full-rebuild interludes moved nodes without maintaining the band
		// stamps — and fault respawns can teleport even static nodes — so
		// re-derive every stamp from the grid, then re-partition the decay
		// cursors to match (cursor row ownership must agree with bandOf).
		for u := 0; u < w.N(); u++ {
			st.bandOf[u] = st.colToBand[w.grid.ColOf(w.grid.Pos(int32(u)))]
		}
		for b := range st.shards {
			st.shards[b].cursors = st.shards[b].cursors[:0]
		}
		for i := range t.decay {
			b := st.bandOf[t.decay[i].src]
			st.shards[b].cursors = append(st.shards[b].cursors, int32(i))
		}
		t.stale = false
	}
	st.group.Acquire(st.bands)
	defer st.group.Release()

	// Partition the mobility-capable nodes by their pre-step band. Bands
	// are filled in ascending id order, preserving the lower-id-scans-first
	// pair dedup rule within each band (across bands the rule is an id
	// compare, so execution order never matters).
	for b := range st.shards {
		sh := &st.shards[b]
		sh.mobile = sh.mobile[:0]
		sh.scan = sh.scan[:0]
		sh.ops = sh.ops[:0]
		sh.rmOps = sh.rmOps[:0]
		sh.dAddU, sh.dAddV = sh.dAddU[:0], sh.dAddV[:0]
		sh.dRemU, sh.dRemV = sh.dRemU[:0], sh.dRemV[:0]
		sh.maxDisp2 = 0
		sh.added, sh.removed, sh.mDelta = 0, 0, 0
	}
	for _, id := range t.mobile {
		b := st.bandOf[id]
		st.shards[b].mobile = append(st.shards[b].mobile, id)
	}

	// ∥ mobility: each band steps its owned movers.
	sp := w.m.mobility.Start()
	st.group.Do(st.bands, st.moveFn)
	maxDisp2 := 0.0
	for b := range st.shards {
		if st.shards[b].maxDisp2 > maxDisp2 {
			maxDisp2 = st.shards[b].maxDisp2
		}
	}
	// — re-bucket: grid updates in ascending id order (the sequential
	// path's order), band re-assignment for boundary crossers, and the
	// per-band scan lists for P1.
	for _, id := range t.mobile {
		if !t.moved[id] {
			continue
		}
		w.grid.Update(id, w.pos[id])
		nb := st.colToBand[w.grid.ColOf(w.pos[id])]
		st.bandOf[id] = nb
		st.shards[nb].scan = append(st.shards[nb].scan, id)
	}
	sp.Stop()

	// — decay: same serial loop as the sequential path.
	sp = w.m.decay.Start()
	w.advanceDecay()
	sp.Stop()

	sp = w.m.rebuild.Start()
	// ∥ P1: class-3 box scans per band.
	st.maxDisp = math.Sqrt(maxDisp2)
	st.group.Do(st.bands, st.scanFn)
	// — M1: apply the halo buffers. Ops are disjoint per directed edge, so
	// order cannot change the topology; band-then-scan order is fixed
	// anyway to keep replay deterministic.
	for b := range st.shards {
		sh := &st.shards[b]
		for _, op := range sh.ops {
			if op.add {
				if w.topo.InsertEdgeSortedLocal(op.u, op.v) {
					sh.mDelta++
				}
			} else if w.topo.RemoveEdgeSortedLocal(op.u, op.v) {
				sh.mDelta--
			}
		}
	}
	// ∥ P2: dwell expiry (classes 4/5) and class-2 cursors per band.
	st.group.Do(st.bands, st.expireFn)
	// — M2: apply cross-band class-4 removals; the existence check keeps
	// the removed counter exact, as in the sequential path.
	added, removed, mDelta := uint64(0), uint64(0), 0
	for b := range st.shards {
		sh := &st.shards[b]
		for _, op := range sh.rmOps {
			if w.topo.RemoveEdgeSortedLocal(op.u, op.v) {
				sh.removed++
				sh.mDelta--
			}
		}
		added += sh.added
		removed += sh.removed
		mDelta += sh.mDelta
	}
	w.topo.AddM(mDelta)
	w.topo.InvalidateIn()
	if dl := w.watch; dl != nil {
		// Fold the per-band captures into the watch buffer, band order.
		for b := range st.shards {
			sh := &st.shards[b]
			for i := range sh.dAddU {
				dl.add(sh.dAddU[i], sh.dAddV[i])
			}
			for i := range sh.dRemU {
				dl.remove(sh.dRemU[i], sh.dRemV[i])
			}
		}
	}
	sp.Stop()
	w.m.linksAdded.Add(added)
	w.m.linksRemoved.Add(removed)
	w.m.edges.Set(float64(w.topo.M()))
}

// moveShard steps band b's movers. Positions, moved flags and prevPos are
// indexed by node id and each node has exactly one owner, so the writes of
// concurrent bands are disjoint; movers own per-node RNG streams, so
// stepping order is unobservable.
func (w *World) moveShard(b int) {
	t := w.incr
	sh := &w.shard.shards[b]
	var dead []bool
	if w.flt != nil {
		dead = w.flt.dead
	}
	for _, id := range sh.mobile {
		if dead != nil && dead[id] {
			t.moved[id] = false
			continue
		}
		old := w.grid.Pos(id)
		np := w.fleet.StepOne(int(id), w.pos[id])
		w.pos[id] = np
		if np == old {
			t.moved[id] = false
			continue
		}
		t.moved[id] = true
		t.prevPos[id] = old
		if d2 := old.Dist2(np); d2 > sh.maxDisp2 {
			sh.maxDisp2 = d2
		}
	}
}

// scanShard runs the class-3 box scans for band b's moved nodes — the
// same candidate coverage, predicates and float expressions as the
// sequential applyChurn, so the two paths stay bit-identical. Edits to
// rows the band owns apply immediately; edits to foreign rows (the halo)
// are buffered for M1. Churn is counted at decision time, exactly as the
// sequential path does for class 3.
func (w *World) scanShard(b int) {
	t := w.incr
	st := w.shard
	sh := &st.shards[b]
	g := w.topo
	maxR2 := w.maxRange * w.maxRange
	reach := w.maxRange + st.maxDisp + 1e-6
	reach2 := reach * reach
	cols := w.grid.Cols()
	moved, prevPos, r2 := t.moved, t.prevPos, t.r2
	bandOf := st.bandOf
	me := int32(b)
	watching := w.watch != nil
	for _, vi := range sh.scan {
		v := NodeID(vi)
		pOld, pNew := t.prevPos[vi], w.pos[vi]
		pr2v, cr2v := t.r2[vi].prev, t.r2[vi].cur
		lo := geom.Point{X: pOld.X - reach, Y: pOld.Y - reach}
		hi := geom.Point{X: pOld.X + reach, Y: pOld.Y + reach}
		x0, x1, y0, y1 := w.grid.BoxCellRange(lo, hi)
		ins := t.inDecay[vi][:0]
		for cy := y0; cy <= y1; cy++ {
			base := cy * cols
			for cx := x0; cx <= x1; cx++ {
				bucket := w.grid.CellBucket(base + cx)
				for bi := range bucket {
					e := &bucket[bi]
					ddx, ddy := pOld.X-e.X, pOld.Y-e.Y
					dOldS := ddx*ddx + ddy*ddy
					if dOldS > reach2 {
						continue
					}
					dx, dy := pNew.X-e.X, pNew.Y-e.Y
					dNew := dx*dx + dy*dy
					wi := e.ID
					if wi == vi {
						continue
					}
					dOld := dOldS
					if moved[wi] {
						if wi < vi {
							continue
						}
						pp := prevPos[wi]
						ddx, ddy = pOld.X-pp.X, pOld.Y-pp.Y
						dOld = ddx*ddx + ddy*ddy
					}
					if dOld > maxR2 && dNew > maxR2 {
						continue
					}
					// v→w: row v is always owned (v's scan runs on v's band).
					if (dNew <= cr2v) != (dOld <= pr2v) {
						if dNew <= cr2v {
							g.InsertEdgeSortedLocal(v, wi)
							sh.mDelta++
							sh.added++
							if watching {
								sh.dAddU = append(sh.dAddU, v)
								sh.dAddV = append(sh.dAddV, wi)
							}
						} else {
							g.RemoveEdgeSortedLocal(v, wi)
							sh.mDelta--
							sh.removed++
							if watching {
								sh.dRemU = append(sh.dRemU, v)
								sh.dRemV = append(sh.dRemV, wi)
							}
						}
					}
					// w→v: row w is owned only if w sits in this band;
					// otherwise the edit crosses the boundary and joins the
					// halo buffer.
					rw := r2[wi]
					wantIn := dNew <= rw.cur
					if wantIn != (dOld <= rw.prev) {
						if bandOf[wi] == me {
							if wantIn {
								g.InsertEdgeSortedLocal(wi, v)
								sh.mDelta++
								sh.added++
							} else {
								g.RemoveEdgeSortedLocal(wi, v)
								sh.mDelta--
								sh.removed++
							}
						} else {
							sh.ops = append(sh.ops, edgeOp{u: wi, v: v, add: wantIn})
							if wantIn {
								sh.added++
							} else {
								sh.removed++
							}
						}
						if watching {
							if wantIn {
								sh.dAddU = append(sh.dAddU, wi)
								sh.dAddV = append(sh.dAddV, v)
							} else {
								sh.dRemU = append(sh.dRemU, wi)
								sh.dRemV = append(sh.dRemV, v)
							}
						}
					}
					if wantIn && t.decays[wi] && !t.isMobile[wi] {
						ins = append(ins, inSrc{src: NodeID(wi), d2: dNew})
					}
				}
			}
		}
		t.inDecay[vi] = ins
	}
}

// expireShard runs classes 4/5 for band b's dwelling movers and the
// class-2 cursors of its static decaying sources. Class-4 removals touch
// the SOURCE's row; when the source lives across the boundary the removal
// is buffered for M2 (counted there on success, mirroring the sequential
// existence check). Class-5 and class-2 rows are owned by construction.
func (w *World) expireShard(b int) {
	t := w.incr
	st := w.shard
	sh := &st.shards[b]
	g := w.topo
	bandOf := st.bandOf
	me := int32(b)
	watching := w.watch != nil
	for _, vi := range sh.mobile {
		if t.moved[vi] {
			continue
		}
		if lst := t.inDecay[vi]; len(lst) > 0 {
			for k := 0; k < len(lst); {
				if lst[k].d2 <= t.r2[lst[k].src].cur {
					k++
					continue
				}
				src := lst[k].src
				if bandOf[src] == me {
					if g.RemoveEdgeSortedLocal(src, NodeID(vi)) {
						sh.removed++
						sh.mDelta--
					}
				} else {
					sh.rmOps = append(sh.rmOps, edgeOp{u: src, v: NodeID(vi)})
				}
				if watching {
					sh.dRemU = append(sh.dRemU, src)
					sh.dRemV = append(sh.dRemV, NodeID(vi))
				}
				lst[k] = lst[len(lst)-1]
				lst = lst[:len(lst)-1]
			}
			t.inDecay[vi] = lst
		}
		if !t.rangeChanged[vi] {
			continue
		}
		cr2 := t.r2[vi].cur
		pv := w.pos[vi]
		sh.outBuf = sh.outBuf[:0]
		for _, tv := range g.Out(NodeID(vi)) {
			if pv.Dist2(w.pos[tv]) > cr2 {
				sh.outBuf = append(sh.outBuf, tv)
			}
		}
		for _, tv := range sh.outBuf {
			if g.RemoveEdgeSortedLocal(NodeID(vi), tv) {
				sh.removed++
				sh.mDelta--
				if watching {
					sh.dRemU = append(sh.dRemU, NodeID(vi))
					sh.dRemV = append(sh.dRemV, tv)
				}
			}
		}
	}
	for _, ci := range sh.cursors {
		dc := &t.decay[ci]
		r := w.radios[dc.src].Range()
		r2 := r * r
		for dc.cursor < len(dc.d2) && (r <= 0 || dc.d2[dc.cursor] > r2) {
			if g.RemoveEdgeSortedLocal(dc.src, dc.dst[dc.cursor]) {
				sh.removed++
				sh.mDelta--
				if watching {
					sh.dRemU = append(sh.dRemU, dc.src)
					sh.dRemV = append(sh.dRemV, dc.dst[dc.cursor])
				}
			}
			dc.cursor++
		}
	}
}
