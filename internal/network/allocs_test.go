package network

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
)

// TestWorldStepZeroAllocs enforces the hot-loop allocation budget: once
// the double-buffered topology, the spatial grid, and the connectivity
// scratch have warmed up, stepping a dynamic world and measuring gateway
// connectivity must be allocation-free in the steady state.
func TestWorldStepZeroAllocs(t *testing.T) {
	s := rng.New(33)
	n := 40
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: s.Range(0, 50), Y: s.Range(0, 50)}
		radios[i] = radio.NewBattery(s.Range(5, 15), 0.0001, 0.3)
		movers[i] = mobility.NewRandomVelocity(geom.Square(50), 0.5, 2, s.Child(uint64(i)))
	}
	w, err := NewWorld(Config{
		Arena:     geom.Square(50),
		Positions: pos,
		Radios:    radios,
		Movers:    movers,
		Gateways:  []NodeID{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: both topology buffers, every grid cell's historic maximum
	// occupancy, and the reach scratch all reach steady state.
	for i := 0; i < 200; i++ {
		w.Step()
		w.ConnectivityToGateways()
	}
	avg := testing.AllocsPerRun(200, func() {
		w.Step()
		w.ConnectivityToGateways()
	})
	// A node wandering into a cell that is fuller than that cell has ever
	// been can still grow one bucket; allow that sliver, nothing more.
	if avg > 0.05 {
		t.Fatalf("World.Step+ConnectivityToGateways allocates %v per step, want ~0", avg)
	}
}

// TestTableResetZeroAllocs enforces the pooled per-worker scratch budget:
// recycling a node table between runs (Reset + refill to the same working
// set) must not allocate, so a replication worker's table array reaches
// steady state after its first run.
func TestTableResetZeroAllocs(t *testing.T) {
	const capacity = 4
	tab := NewTable(capacity)
	fill := func() {
		for g := 0; g < capacity+2; g++ { // +2 forces evictions too
			tab.Update(Entry{Gateway: NodeID(g), NextHop: NodeID(g + 1), Hops: g, Updated: g})
		}
	}
	fill()
	avg := testing.AllocsPerRun(200, func() {
		tab.Reset(capacity)
		fill()
	})
	if avg > 0 {
		t.Fatalf("Table.Reset+refill allocates %v per cycle, want 0", avg)
	}
	if tab.Evictions() == 0 {
		t.Fatal("refill never evicted — the test is not exercising the eviction path")
	}
}

// TestWorldStepZeroAllocsInstrumented repeats the hot-loop budget with a
// live metrics registry attached: phase timers, the link-churn diff, and
// the edge gauge must all stay inside the same allocation budget.
func TestWorldStepZeroAllocsInstrumented(t *testing.T) {
	s := rng.New(33)
	n := 40
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: s.Range(0, 50), Y: s.Range(0, 50)}
		radios[i] = radio.NewBattery(s.Range(5, 15), 0.0001, 0.3)
		movers[i] = mobility.NewRandomVelocity(geom.Square(50), 0.5, 2, s.Child(uint64(i)))
	}
	w, err := NewWorld(Config{
		Arena:     geom.Square(50),
		Positions: pos,
		Radios:    radios,
		Movers:    movers,
		Gateways:  []NodeID{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Instrument(metrics.NewRegistry())
	for i := 0; i < 200; i++ {
		w.Step()
		w.ConnectivityToGateways()
	}
	avg := testing.AllocsPerRun(200, func() {
		w.Step()
		w.ConnectivityToGateways()
	})
	if avg > 0.05 {
		t.Fatalf("instrumented World.Step+ConnectivityToGateways allocates %v per step, want ~0", avg)
	}
}
