package network

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
)

// buildAllocWorld builds the same MANET mix as the root BenchmarkWorldStep
// world — constant node density, half local-waypoint roamers with pause
// times, half stationary, a quarter on decaying batteries — so allocation
// budgets are enforced on the exact population the benchmarks time.
func buildAllocWorld(tb testing.TB, n int) *World {
	tb.Helper()
	s := rng.New(uint64(n))
	side := 150 * math.Sqrt(float64(n)/250)
	arena := geom.Square(side)
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: s.Range(0, side), Y: s.Range(0, side)}
		if i%4 == 1 {
			radios[i] = radio.NewBattery(s.Range(10, 20), 0.0005, 0.6)
		} else {
			radios[i] = radio.New(s.Range(10, 20))
		}
		if i%2 == 0 {
			pause := 40 + int(s.Intn(81))
			movers[i] = mobility.NewLocalWaypoint(arena, 30, 0.5, 3, pause, s.Child(uint64(i)))
		} else {
			movers[i] = mobility.Static{}
		}
	}
	w, err := NewWorld(Config{
		Arena: arena, Positions: pos, Radios: radios, Movers: movers,
		Gateways: []NodeID{0, 1},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// TestWorldStepZeroAllocs enforces the hot-loop allocation budget: once
// the double-buffered topology, the spatial grid, and the connectivity
// scratch have warmed up, stepping a dynamic world and measuring gateway
// connectivity must be allocation-free in the steady state. The small
// subtest is the original all-mobile battery world; the large ones run the
// benchmark MANET mix at sizes where buffer growth used to leak through
// (grid buckets, in-source decay lists, CSR row growth).
func TestWorldStepZeroAllocs(t *testing.T) {
	t.Run("n=40", func(t *testing.T) {
		s := rng.New(33)
		n := 40
		pos := make([]geom.Point, n)
		radios := make([]radio.Radio, n)
		movers := make([]mobility.Mover, n)
		for i := range pos {
			pos[i] = geom.Point{X: s.Range(0, 50), Y: s.Range(0, 50)}
			radios[i] = radio.NewBattery(s.Range(5, 15), 0.0001, 0.3)
			movers[i] = mobility.NewRandomVelocity(geom.Square(50), 0.5, 2, s.Child(uint64(i)))
		}
		w, err := NewWorld(Config{
			Arena:     geom.Square(50),
			Positions: pos,
			Radios:    radios,
			Movers:    movers,
			Gateways:  []NodeID{0, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		measureStepAllocs(t, w)
	})
	for _, n := range []int{2000, 8000} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			if testing.Short() && n > 2000 {
				t.Skip("short mode")
			}
			measureStepAllocs(t, buildAllocWorld(t, n))
		})
	}
}

// measureStepAllocs warms w into steady state and fails if stepping plus
// the connectivity sweep still allocates.
func measureStepAllocs(t *testing.T, w *World) {
	t.Helper()
	// Warm up: both topology buffers, every grid cell's historic maximum
	// occupancy, and the reach scratch all reach steady state.
	for i := 0; i < 300; i++ {
		w.Step()
		w.ConnectivityToGateways()
	}
	avg := testing.AllocsPerRun(200, func() {
		w.Step()
		w.ConnectivityToGateways()
	})
	// A node wandering into a cell that is fuller than that cell has ever
	// been can still grow one bucket; allow that sliver, nothing more.
	if avg > 0.05 {
		t.Fatalf("World.Step+ConnectivityToGateways allocates %v per step, want ~0", avg)
	}
}

// TestTableResetZeroAllocs enforces the pooled per-worker scratch budget:
// recycling a node table between runs (Reset + refill to the same working
// set) must not allocate, so a replication worker's table array reaches
// steady state after its first run.
func TestTableResetZeroAllocs(t *testing.T) {
	const capacity = 4
	tab := NewTable(capacity)
	fill := func() {
		for g := 0; g < capacity+2; g++ { // +2 forces evictions too
			tab.Update(Entry{Gateway: NodeID(g), NextHop: NodeID(g + 1), Hops: g, Updated: g})
		}
	}
	fill()
	avg := testing.AllocsPerRun(200, func() {
		tab.Reset(capacity)
		fill()
	})
	if avg > 0 {
		t.Fatalf("Table.Reset+refill allocates %v per cycle, want 0", avg)
	}
	if tab.Evictions() == 0 {
		t.Fatal("refill never evicted — the test is not exercising the eviction path")
	}
}

// TestWorldStepZeroAllocsInstrumented repeats the hot-loop budget with a
// live metrics registry attached: phase timers, the link-churn diff, and
// the edge gauge must all stay inside the same allocation budget.
func TestWorldStepZeroAllocsInstrumented(t *testing.T) {
	s := rng.New(33)
	n := 40
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: s.Range(0, 50), Y: s.Range(0, 50)}
		radios[i] = radio.NewBattery(s.Range(5, 15), 0.0001, 0.3)
		movers[i] = mobility.NewRandomVelocity(geom.Square(50), 0.5, 2, s.Child(uint64(i)))
	}
	w, err := NewWorld(Config{
		Arena:     geom.Square(50),
		Positions: pos,
		Radios:    radios,
		Movers:    movers,
		Gateways:  []NodeID{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Instrument(metrics.NewRegistry())
	for i := 0; i < 200; i++ {
		w.Step()
		w.ConnectivityToGateways()
	}
	avg := testing.AllocsPerRun(200, func() {
		w.Step()
		w.ConnectivityToGateways()
	})
	if avg > 0.05 {
		t.Fatalf("instrumented World.Step+ConnectivityToGateways allocates %v per step, want ~0", avg)
	}
}
