package network

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
)

// lineWorld places n nodes in a row `gap` apart, all with the given range.
func lineWorld(t *testing.T, n int, gap, rng_ float64, gateways ...NodeID) *World {
	t.Helper()
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * gap, Y: 0}
		radios[i] = radio.New(rng_)
		movers[i] = mobility.Static{}
	}
	w, err := NewWorld(Config{
		Arena:     geom.Rect{MinX: 0, MinY: -1, MaxX: float64(n) * gap, MaxY: 1},
		Positions: pos,
		Radios:    radios,
		Movers:    movers,
		Gateways:  gateways,
	})
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	pos := []geom.Point{{X: 0, Y: 0}}
	if _, err := NewWorld(Config{
		Arena: geom.Square(1), Positions: pos,
		Radios: []radio.Radio{radio.New(1), radio.New(1)},
		Movers: []mobility.Mover{mobility.Static{}},
	}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := NewWorld(Config{
		Arena: geom.Square(1), Positions: pos,
		Radios:   []radio.Radio{radio.New(1)},
		Movers:   []mobility.Mover{mobility.Static{}},
		Gateways: []NodeID{5},
	}); err == nil {
		t.Fatal("out-of-range gateway accepted")
	}
	if _, err := NewWorld(Config{
		Arena: geom.Square(1), Positions: pos,
		Radios: []radio.Radio{{}},
		Movers: []mobility.Mover{mobility.Static{}},
	}); err == nil {
		t.Fatal("all-zero ranges accepted")
	}
}

func TestLineTopology(t *testing.T) {
	w := lineWorld(t, 5, 10, 10.5)
	g := w.Topology()
	for i := 0; i < 4; i++ {
		if !g.HasEdge(NodeID(i), NodeID(i+1)) || !g.HasEdge(NodeID(i+1), NodeID(i)) {
			t.Fatalf("missing adjacency at %d", i)
		}
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected long link")
	}
	if g.M() != 8 {
		t.Fatalf("edge count = %d, want 8", g.M())
	}
}

func TestAsymmetricLinks(t *testing.T) {
	// Node 0 has a long range, node 1 a short one: link 0→1 but not 1→0.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	w, err := NewWorld(Config{
		Arena:     geom.Square(10),
		Positions: pos,
		Radios:    []radio.Radio{radio.New(6), radio.New(2)},
		Movers:    []mobility.Mover{mobility.Static{}, mobility.Static{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := w.Topology()
	if !g.HasEdge(0, 1) {
		t.Fatal("0→1 should exist")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("1→0 should not exist (short radio)")
	}
}

func TestStaticWorldSkipsRebuild(t *testing.T) {
	w := lineWorld(t, 4, 5, 6)
	if w.Dynamic() {
		t.Fatal("static world flagged dynamic")
	}
	before := w.Topology()
	w.Step()
	if w.Topology() != before {
		t.Fatal("static world rebuilt topology")
	}
	if w.StepCount() != 1 {
		t.Fatalf("StepCount = %d", w.StepCount())
	}
}

func TestBatteryDecayBreaksLinks(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 9, Y: 0}}
	w, err := NewWorld(Config{
		Arena:     geom.Square(20),
		Positions: pos,
		Radios:    []radio.Radio{radio.NewBattery(10, 0.05, 0), radio.New(10)},
		Movers:    []mobility.Mover{mobility.Static{}, mobility.Static{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Dynamic() {
		t.Fatal("battery world should be dynamic")
	}
	if !w.Topology().HasEdge(0, 1) {
		t.Fatal("initial link missing")
	}
	for i := 0; i < 5; i++ { // range drops to 10*(1-0.25)=7.5 < 9
		w.Step()
	}
	if w.Topology().HasEdge(0, 1) {
		t.Fatal("battery decay did not break 0→1")
	}
	if !w.Topology().HasEdge(1, 0) {
		t.Fatal("full-battery link 1→0 should survive")
	}
}

func TestMobilityChangesTopology(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}
	s := rng.New(4)
	w, err := NewWorld(Config{
		Arena:     geom.Square(100),
		Positions: pos,
		Radios:    []radio.Radio{radio.New(10), radio.New(10)},
		Movers: []mobility.Mover{
			mobility.Static{},
			mobility.NewConstantVelocity(geom.Square(100), 5, s),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	initial := w.Topology().M()
	for i := 0; i < 200 && !changed; i++ {
		w.Step()
		if w.Topology().M() != initial {
			changed = true
		}
	}
	if !changed {
		t.Fatal("mobile node never changed the topology in 200 steps")
	}
}

func TestGateways(t *testing.T) {
	w := lineWorld(t, 5, 5, 6, 0, 4, 0) // duplicate gateway collapses
	if len(w.Gateways()) != 2 {
		t.Fatalf("gateway count = %d", len(w.Gateways()))
	}
	if !w.IsGateway(0) || !w.IsGateway(4) || w.IsGateway(2) {
		t.Fatal("gateway flags wrong")
	}
}

func TestConnectivityToGateways(t *testing.T) {
	w := lineWorld(t, 5, 5, 6, 0)
	if got := w.ConnectivityToGateways(); got != 1 {
		t.Fatalf("chain fully connected, got %v", got)
	}
	// Break the chain: nodes 10 apart with range 6 — no links at all.
	w2 := lineWorld(t, 5, 10, 6, 0)
	if got := w2.ConnectivityToGateways(); got != 0 {
		t.Fatalf("disconnected world connectivity = %v", got)
	}
	// No gateways at all.
	w3 := lineWorld(t, 3, 5, 6)
	if got := w3.ConnectivityToGateways(); got != 0 {
		t.Fatalf("no-gateway world connectivity = %v", got)
	}
}

func TestPositionsCopied(t *testing.T) {
	w := lineWorld(t, 3, 5, 6)
	p := w.Positions()
	p[0] = geom.Point{X: 999, Y: 999}
	if w.Pos(0).X == 999 {
		t.Fatal("Positions leaked internal storage")
	}
}

func TestTopologyMatchesBruteForce(t *testing.T) {
	s := rng.New(17)
	n := 80
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: s.Range(0, 100), Y: s.Range(0, 100)}
		radios[i] = radio.New(s.Range(5, 20))
		movers[i] = mobility.Static{}
	}
	w, err := NewWorld(Config{Arena: geom.Square(100), Positions: pos, Radios: radios, Movers: movers})
	if err != nil {
		t.Fatal(err)
	}
	g := w.Topology()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			want := pos[u].Dist(pos[v]) <= radios[u].Range()
			if got := g.HasEdge(NodeID(u), NodeID(v)); got != want {
				t.Fatalf("edge %d→%d: got %v want %v (d=%v r=%v)",
					u, v, got, want, pos[u].Dist(pos[v]), radios[u].Range())
			}
		}
	}
}

func TestTableUpdateAndLookup(t *testing.T) {
	tb := NewTable(4)
	if tb.Len() != 0 {
		t.Fatal("new table not empty")
	}
	if !tb.Update(Entry{Gateway: 1, NextHop: 2, Hops: 3, Updated: 10}) {
		t.Fatal("first insert rejected")
	}
	e, ok := tb.Lookup(1)
	if !ok || e.NextHop != 2 || e.Hops != 3 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	// Staler update rejected.
	if tb.Update(Entry{Gateway: 1, NextHop: 9, Hops: 1, Updated: 5}) {
		t.Fatal("staler entry accepted")
	}
	// Fresher update accepted.
	if !tb.Update(Entry{Gateway: 1, NextHop: 7, Hops: 9, Updated: 11}) {
		t.Fatal("fresher entry rejected")
	}
	// Equal freshness, shorter route accepted.
	if !tb.Update(Entry{Gateway: 1, NextHop: 8, Hops: 2, Updated: 11}) {
		t.Fatal("shorter same-step entry rejected")
	}
	// Equal freshness, equal hops rejected (no churn).
	if tb.Update(Entry{Gateway: 1, NextHop: 3, Hops: 2, Updated: 11}) {
		t.Fatal("identical-cost entry accepted")
	}
}

func TestTableEviction(t *testing.T) {
	tb := NewTable(2)
	tb.Update(Entry{Gateway: 1, Hops: 2, Updated: 10})
	tb.Update(Entry{Gateway: 2, Hops: 2, Updated: 20})
	tb.Update(Entry{Gateway: 3, Hops: 2, Updated: 30})
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if _, ok := tb.Lookup(1); ok {
		t.Fatal("stalest entry survived eviction")
	}
	for _, gw := range []NodeID{2, 3} {
		if _, ok := tb.Lookup(gw); !ok {
			t.Fatalf("entry for %d evicted wrongly", gw)
		}
	}
}

func TestTableEvictionTieBreaks(t *testing.T) {
	tb := NewTable(2)
	tb.Update(Entry{Gateway: 5, Hops: 9, Updated: 10})
	tb.Update(Entry{Gateway: 6, Hops: 2, Updated: 10})
	tb.Update(Entry{Gateway: 7, Hops: 1, Updated: 10})
	if _, ok := tb.Lookup(5); ok {
		t.Fatal("higher-hop same-age entry should be evicted first")
	}
}

func TestTableUnbounded(t *testing.T) {
	tb := NewTable(0)
	for i := 0; i < 100; i++ {
		tb.Update(Entry{Gateway: NodeID(i), Updated: i})
	}
	if tb.Len() != 100 {
		t.Fatalf("unbounded table evicted: %d", tb.Len())
	}
}

func TestTableClear(t *testing.T) {
	tb := NewTable(3)
	tb.Update(Entry{Gateway: 1, Updated: 1})
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestTableEntries(t *testing.T) {
	tb := NewTable(0)
	tb.Update(Entry{Gateway: 1, Updated: 1})
	tb.Update(Entry{Gateway: 2, Updated: 2})
	es := tb.Entries()
	if len(es) != 2 {
		t.Fatalf("Entries len = %d", len(es))
	}
	sum := 0
	for _, e := range es {
		sum += int(e.Gateway)
	}
	if sum != 3 {
		t.Fatalf("Entries contents wrong: %v", es)
	}
}

func TestWorldDeterministic(t *testing.T) {
	build := func() *World {
		s := rng.New(33)
		n := 40
		pos := make([]geom.Point, n)
		radios := make([]radio.Radio, n)
		movers := make([]mobility.Mover, n)
		for i := range pos {
			pos[i] = geom.Point{X: s.Range(0, 50), Y: s.Range(0, 50)}
			radios[i] = radio.NewBattery(s.Range(5, 15), 0.001, 0.3)
			movers[i] = mobility.NewRandomVelocity(geom.Square(50), 0.5, 2, s.Child(uint64(i)))
		}
		w, err := NewWorld(Config{Arena: geom.Square(50), Positions: pos, Radios: radios, Movers: movers})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := build(), build()
	for i := 0; i < 50; i++ {
		a.Step()
		b.Step()
		if !a.Topology().Equal(b.Topology()) {
			t.Fatalf("worlds diverged at step %d", i)
		}
		for u := 0; u < a.N(); u++ {
			if math.Abs(a.Pos(NodeID(u)).X-b.Pos(NodeID(u)).X) > 0 {
				t.Fatalf("positions diverged at step %d node %d", i, u)
			}
		}
	}
}

func BenchmarkWorldStep250Mobile(b *testing.B) {
	s := rng.New(1)
	n := 250
	arena := geom.Square(150)
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: s.Range(0, 150), Y: s.Range(0, 150)}
		radios[i] = radio.New(s.Range(10, 20))
		if i%2 == 0 {
			movers[i] = mobility.NewRandomVelocity(arena, 0.5, 3, s.Child(uint64(i)))
		} else {
			movers[i] = mobility.Static{}
		}
	}
	w, err := NewWorld(Config{Arena: arena, Positions: pos, Radios: radios, Movers: movers})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}
