package network

import (
	"encoding/json"

	"repro/internal/trace"
)

// DefaultAnchorEvery is the default snapshot-anchor cadence (in steps) for
// recorded runs: frequent enough that reconstructing any step replays at
// most this many world deltas, sparse enough that anchors stay a small
// fraction of the log.
const DefaultAnchorEvery = 100

// StepRecorder streams a world's evolution into a trace.WorldSink: a full
// snapshot anchor every K harness steps and one compact delta (changed
// positions, changed radio ranges, fault-state transitions) after every
// world step. The recorder only observes — it never mutates the world or
// consumes RNG — so recording cannot perturb a seeded run.
//
// Protocol, mirroring the harness loop:
//
//	rec := NewStepRecorder(world, sink, every) // world at its start state
//	for step := 0; step < steps; step++ {
//	    rec.BeforeStep(step) // anchors V(step) when step%every == 0
//	    ... agent phase: events emitted at this step ...
//	    world.Step()
//	    rec.AfterWorldStep() // delta labeled step+1 = V(step+1)
//	}
//
// With anchors at V(A) and deltas labeled A+1..S, replaying the tail of
// deltas in (A, S] on top of the nearest anchor A <= S reconstructs the
// world exactly as the harness observed it at step S.
type StepRecorder struct {
	w     *World
	sink  trace.WorldSink
	every int

	prevX, prevY []float64
	prevRange    []float64
	prevEpoch    int

	d trace.WorldDelta // scratch, reused between emissions
}

// NewStepRecorder starts recording w into sink, anchoring every `every`
// steps (<= 0 uses DefaultAnchorEvery). Returns nil — a no-op recorder —
// when sink is nil. The world's current state becomes the delta baseline,
// so construct the recorder before the first BeforeStep call.
func NewStepRecorder(w *World, sink trace.WorldSink, every int) *StepRecorder {
	if sink == nil {
		return nil
	}
	if every <= 0 {
		every = DefaultAnchorEvery
	}
	n := w.N()
	r := &StepRecorder{
		w:         w,
		sink:      sink,
		every:     every,
		prevX:     make([]float64, n),
		prevY:     make([]float64, n),
		prevRange: make([]float64, n),
		prevEpoch: w.FaultEpoch(),
	}
	r.capture()
	return r
}

// capture refreshes the delta baseline from the world's current state.
func (r *StepRecorder) capture() {
	for u := 0; u < r.w.N(); u++ {
		p := r.w.pos[u]
		r.prevX[u], r.prevY[u] = p.X, p.Y
		r.prevRange[u] = r.w.radios[u].Range()
	}
}

// BeforeStep anchors a full snapshot of the current world state when step
// falls on the anchor cadence. Call at the top of each harness step,
// before the agent phase.
func (r *StepRecorder) BeforeStep(step int) {
	if r == nil || step%r.every != 0 {
		return
	}
	b, err := json.Marshal(r.w.Snapshot())
	if err != nil {
		// Snapshot marshalling cannot fail for in-range world state; skip
		// the anchor rather than aborting the run if it somehow does.
		return
	}
	r.sink.EmitAnchor(step, b)
}

// AfterWorldStep emits the delta between the previous baseline and the
// world's new state, labeled with the world's own step counter. Call
// immediately after each World.Step.
func (r *StepRecorder) AfterWorldStep() {
	if r == nil {
		return
	}
	w := r.w
	d := &r.d
	d.Step = w.StepCount()
	d.Nodes = d.Nodes[:0]
	d.X = d.X[:0]
	d.Y = d.Y[:0]
	d.RangeNodes = d.RangeNodes[:0]
	d.Ranges = d.Ranges[:0]
	for u := 0; u < w.N(); u++ {
		p := w.pos[u]
		if p.X != r.prevX[u] || p.Y != r.prevY[u] {
			d.Nodes = append(d.Nodes, int32(u))
			d.X = append(d.X, p.X)
			d.Y = append(d.Y, p.Y)
			r.prevX[u], r.prevY[u] = p.X, p.Y
		}
		if rg := w.radios[u].Range(); rg != r.prevRange[u] {
			d.RangeNodes = append(d.RangeNodes, int32(u))
			d.Ranges = append(d.Ranges, rg)
			r.prevRange[u] = rg
		}
	}
	d.FaultChanged = false
	d.Dead = d.Dead[:0]
	d.DownGateways = d.DownGateways[:0]
	d.Partition = false
	d.PartitionX = 0
	if ep := w.FaultEpoch(); ep != r.prevEpoch {
		r.prevEpoch = ep
		d.FaultChanged = true
		if f := w.flt; f != nil {
			for u := 0; u < w.N(); u++ {
				if f.dead[u] {
					d.Dead = append(d.Dead, int32(u))
				}
				if f.gwDown[u] {
					d.DownGateways = append(d.DownGateways, int32(u))
				}
			}
			if f.partActive {
				d.Partition = true
				d.PartitionX = f.partX
			}
		}
	}
	if len(d.Nodes) == 0 && len(d.RangeNodes) == 0 && !d.FaultChanged {
		return // static step: nothing to record
	}
	r.sink.EmitWorld(*d)
}
