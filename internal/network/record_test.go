package network

import (
	"encoding/json"
	"testing"

	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/trace"
)

// sinkBuffer captures everything a StepRecorder emits, deep-copying the
// reused delta buffers.
type sinkBuffer struct {
	anchors map[int][]byte
	deltas  []trace.WorldDelta
}

func (s *sinkBuffer) Emit(trace.Event) {}

func (s *sinkBuffer) EmitAnchor(step int, snapshot []byte) {
	if s.anchors == nil {
		s.anchors = make(map[int][]byte)
	}
	s.anchors[step] = append([]byte(nil), snapshot...)
}

func (s *sinkBuffer) EmitWorld(d trace.WorldDelta) {
	c := d
	c.Nodes = append([]int32(nil), d.Nodes...)
	c.X = append([]float64(nil), d.X...)
	c.Y = append([]float64(nil), d.Y...)
	c.RangeNodes = append([]int32(nil), d.RangeNodes...)
	c.Ranges = append([]float64(nil), d.Ranges...)
	c.Dead = append([]int32(nil), d.Dead...)
	c.DownGateways = append([]int32(nil), d.DownGateways...)
	s.deltas = append(s.deltas, c)
}

// recorderWorld is a small mixed world: one mobile node, one battery node
// (range decays every step), two static anchored nodes.
func recorderWorld(t *testing.T) *World {
	t.Helper()
	s := rng.New(99).Named("record-test")
	w, err := NewWorld(Config{
		Arena: geom.Square(50),
		Positions: []geom.Point{
			{X: 5, Y: 5}, {X: 15, Y: 5}, {X: 25, Y: 5}, {X: 35, Y: 5},
		},
		Radios: []radio.Radio{
			radio.New(12), radio.NewBattery(12, 0.01, 0), radio.New(12), radio.New(12),
		},
		Movers: []mobility.Mover{
			mobility.NewConstantVelocity(geom.Square(50), 2, s),
			mobility.Static{}, mobility.Static{}, mobility.Static{},
		},
		Gateways: []NodeID{3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestStepRecorderStreams drives the recorder through the documented
// protocol and checks anchors land on the cadence with the world's exact
// snapshot, and that applying each delta to the previous state reproduces
// the world that emitted it.
func TestStepRecorderStreams(t *testing.T) {
	w := recorderWorld(t)
	sink := &sinkBuffer{}
	rec := NewStepRecorder(w, sink, 4)
	const steps = 10
	for step := 0; step < steps; step++ {
		rec.BeforeStep(step)
		want, err := json.Marshal(w.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if step%4 == 0 {
			if got := sink.anchors[step]; string(got) != string(want) {
				t.Fatalf("anchor at step %d does not match world snapshot", step)
			}
		} else if _, ok := sink.anchors[step]; ok {
			t.Fatalf("unexpected anchor at step %d", step)
		}
		w.Step()
		rec.AfterWorldStep()
	}
	if len(sink.anchors) != 3 { // steps 0, 4, 8
		t.Fatalf("recorded %d anchors, want 3", len(sink.anchors))
	}
	// The mobile node moves and the battery node decays every step: one
	// delta per step, each carrying both streams.
	if len(sink.deltas) != steps {
		t.Fatalf("recorded %d deltas, want %d", len(sink.deltas), steps)
	}
	for i, d := range sink.deltas {
		if d.Step != i+1 {
			t.Fatalf("delta %d labeled step %d, want %d", i, d.Step, i+1)
		}
		if len(d.Nodes) == 0 || d.Nodes[0] != 0 {
			t.Fatalf("delta %d misses the mobile node: %+v", i, d.Nodes)
		}
		if len(d.RangeNodes) != 1 || d.RangeNodes[0] != 1 {
			t.Fatalf("delta %d misses the decaying radio: %+v", i, d.RangeNodes)
		}
		if d.FaultChanged {
			t.Fatalf("delta %d reports a fault change on a fault-free world", i)
		}
	}
}

// TestStepRecorderStaticWorldSkipsDeltas: a fully static world records
// anchors but no deltas at all.
func TestStepRecorderSkipsEmptyDeltas(t *testing.T) {
	w := lineWorld(t, 4, 10, 10.5, 0, 3)
	sink := &sinkBuffer{}
	rec := NewStepRecorder(w, sink, 5)
	for step := 0; step < 6; step++ {
		rec.BeforeStep(step)
		w.Step()
		rec.AfterWorldStep()
	}
	if len(sink.deltas) != 0 {
		t.Fatalf("static world recorded %d deltas", len(sink.deltas))
	}
	if len(sink.anchors) != 2 {
		t.Fatalf("recorded %d anchors, want 2", len(sink.anchors))
	}
}

// TestStepRecorderFaultTransition: a scheduled node death shows up as one
// FaultChanged delta carrying the full replacement fault state.
func TestStepRecorderFaultTransition(t *testing.T) {
	w := recorderWorld(t)
	w.SetFaults(faults.NewSchedule([]faults.Event{
		{Step: 3, Kind: faults.NodeDown, Node: 2},
	}))

	sink := &sinkBuffer{}
	rec := NewStepRecorder(w, sink, 100)
	for step := 0; step < 6; step++ {
		rec.BeforeStep(step)
		w.Step()
		rec.AfterWorldStep()
	}
	var faulted []trace.WorldDelta
	for _, d := range sink.deltas {
		if d.FaultChanged {
			faulted = append(faulted, d)
		}
	}
	if len(faulted) != 1 {
		t.Fatalf("recorded %d fault transitions, want 1", len(faulted))
	}
	d := faulted[0]
	if len(d.Dead) != 1 || d.Dead[0] != 2 {
		t.Fatalf("fault delta dead list = %v, want [2]", d.Dead)
	}
	if d.Partition || len(d.DownGateways) != 0 {
		t.Fatalf("fault delta carries unexpected state: %+v", d)
	}
}

// TestStepRecorderNilSink: a nil sink yields a nil recorder whose methods
// are safe no-ops, so harness wiring needs no conditionals.
func TestStepRecorderNilSink(t *testing.T) {
	w := recorderWorld(t)
	rec := NewStepRecorder(w, nil, 10)
	if rec != nil {
		t.Fatal("nil sink should yield a nil recorder")
	}
	rec.BeforeStep(0)
	w.Step()
	rec.AfterWorldStep()
}
