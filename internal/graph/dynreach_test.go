package graph

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// matrixHost drives a DynReach over a mutable adjacency-matrix digraph —
// the simplest possible oracle host, so the tests pin the engine's
// semantics without any production plumbing in the loop.
type matrixHost struct {
	n       int
	adj     [][]bool
	cnt     []bool
	targets []NodeID
	dr      DynReach
}

func newMatrixHost(n int, targets []NodeID) *matrixHost {
	h := &matrixHost{n: n, targets: targets}
	h.adj = make([][]bool, n)
	for i := range h.adj {
		h.adj[i] = make([]bool, n)
	}
	h.cnt = make([]bool, n)
	for i := range h.cnt {
		h.cnt[i] = true
	}
	for _, tg := range targets {
		h.cnt[tg] = false
	}
	h.dr.Reset(n, ReachOracle{
		LiveOut: func(u NodeID, dst []NodeID) []NodeID {
			for v := 0; v < h.n; v++ {
				if h.adj[u][v] {
					dst = append(dst, NodeID(v))
				}
			}
			return dst
		},
		LiveIn: func(v NodeID, dst []NodeID) []NodeID {
			for u := 0; u < h.n; u++ {
				if h.adj[u][v] {
					dst = append(dst, NodeID(u))
				}
			}
			return dst
		},
		HasLive:   func(u, v NodeID) bool { return h.adj[u][v] },
		Countable: func(u NodeID) bool { return h.cnt[u] },
	})
	h.dr.Recompute(targets)
	return h
}

func (h *matrixHost) add(u, v NodeID) {
	h.adj[u][v] = true
	h.dr.Candidate(u)
}

func (h *matrixHost) remove(u, v NodeID) {
	h.adj[u][v] = false
	h.dr.Invalidate(u)
}

// brute recomputes the reached set from scratch: u is reached iff a
// directed path u → … → target exists, found by one reverse BFS.
func (h *matrixHost) brute() []bool {
	reached := make([]bool, h.n)
	var queue []NodeID
	for _, tg := range h.targets {
		if !reached[tg] {
			reached[tg] = true
			queue = append(queue, tg)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := 0; u < h.n; u++ {
			if h.adj[u][v] && !reached[u] {
				reached[u] = true
				queue = append(queue, NodeID(u))
			}
		}
	}
	return reached
}

func (h *matrixHost) check(t *testing.T, ctx string) {
	t.Helper()
	h.dr.Flush()
	want := h.brute()
	count, total := 0, 0
	for u := 0; u < h.n; u++ {
		if got := h.dr.Reached(NodeID(u)); got != want[u] {
			t.Fatalf("%s: Reached(%d) = %v, brute force says %v", ctx, u, got, want[u])
		}
		if h.cnt[u] {
			total++
			if want[u] {
				count++
			}
		}
	}
	if got := h.dr.Count(); got != count {
		t.Fatalf("%s: Count() = %d, want %d", ctx, got, count)
	}
	if got := h.dr.CountableTotal(); got != total {
		t.Fatalf("%s: CountableTotal() = %d, want %d", ctx, got, total)
	}
}

// TestDynReachChain pins the basic witness mechanics on a hand-built
// chain: breaking any link severs exactly the upstream suffix, re-adding
// restores it.
func TestDynReachChain(t *testing.T) {
	h := newMatrixHost(6, []NodeID{0})
	for u := NodeID(1); u < 6; u++ {
		h.add(u, u-1)
	}
	h.check(t, "chain built")
	h.remove(3, 2)
	h.check(t, "chain cut at 3→2")
	h.add(3, 2)
	h.check(t, "chain repaired")
	// A shortcut keeps the tail reached when the cut link dies again.
	h.add(5, 1)
	h.remove(3, 2)
	h.check(t, "cut with shortcut 5→1")
}

// TestDynReachCycleCollapse is the no-stale-cycle gate: two nodes whose
// only route to the target runs through each other plus one exit edge must
// BOTH collapse when the exit dies — a naive witness check would let them
// vouch for each other forever.
func TestDynReachCycleCollapse(t *testing.T) {
	h := newMatrixHost(4, []NodeID{0})
	h.add(1, 2)
	h.add(2, 1)
	h.add(2, 3)
	h.add(3, 0)
	h.check(t, "cycle with exit")
	if !h.dr.Reached(1) || !h.dr.Reached(2) {
		t.Fatal("cycle nodes should be reached through the exit")
	}
	h.remove(3, 0)
	h.check(t, "exit removed")
	if h.dr.Reached(1) || h.dr.Reached(2) {
		t.Fatal("cycle nodes survived on a stale mutual witness")
	}
}

// TestDynReachSpuriousEvents pins the over-reporting tolerance the change
// streams rely on: events about edges that never changed, repeated events,
// and events about irrelevant nodes must all be no-ops.
func TestDynReachSpuriousEvents(t *testing.T) {
	h := newMatrixHost(5, []NodeID{0})
	h.add(1, 0)
	h.add(2, 1)
	h.check(t, "built")
	// Spurious: invalidate nodes whose witnesses are intact, candidates
	// that are already reached or have no live exit.
	h.dr.Invalidate(1)
	h.dr.Invalidate(2)
	h.dr.Invalidate(4)
	h.dr.Candidate(1)
	h.dr.Candidate(3)
	h.dr.Candidate(3)
	h.check(t, "after spurious events")
}

// TestDynReachRandomized is the property gate: random digraph mutations,
// occasional bulk rewires, and periodic Recomputes must track a scratch
// reverse BFS exactly at every flush.
func TestDynReachRandomized(t *testing.T) {
	for _, seed := range []uint64{1, 7, 20260808} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := rng.New(seed)
			const n, rounds = 40, 400
			h := newMatrixHost(n, []NodeID{0, 13})
			for round := 0; round < rounds; round++ {
				// A burst of mutations between flushes, like one world step.
				burst := 1 + s.Intn(6)
				for i := 0; i < burst; i++ {
					u := NodeID(s.Intn(n))
					v := NodeID(s.Intn(n))
					if u == v {
						continue
					}
					if h.adj[u][v] {
						h.remove(u, v)
					} else {
						h.add(u, v)
					}
				}
				if s.Intn(50) == 0 {
					h.dr.Recompute(h.targets)
				}
				h.check(t, fmt.Sprintf("round %d", round))
			}
		})
	}
}
