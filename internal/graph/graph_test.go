package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// chain builds 0→1→…→n-1.
func chain(n int) *Directed {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

// cycle builds a directed n-cycle.
func cycle(n int) *Directed {
	g := chain(n)
	g.AddEdge(NodeID(n-1), 0)
	return g
}

// random builds a random directed graph with edge probability p.
func random(n int, p float64, seed uint64) *Directed {
	s := rng.New(seed)
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && s.Bool(p) {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	if !g.AddEdge(0, 1) {
		t.Fatal("first insert rejected")
	}
	if g.AddEdge(0, 1) {
		t.Fatal("duplicate accepted")
	}
	if g.AddEdge(1, 1) {
		t.Fatal("self-loop accepted")
	}
	if g.M() != 1 || !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatalf("edge state wrong: m=%d", g.M())
	}
}

func TestOutInConsistent(t *testing.T) {
	g := random(30, 0.2, 7)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(NodeID(u)) {
			found := false
			for _, w := range g.In(v) {
				if w == NodeID(u) {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from In(%d)", u, v, v)
			}
		}
	}
	inCount := 0
	for v := 0; v < g.N(); v++ {
		inCount += len(g.In(NodeID(v)))
	}
	if inCount != g.M() {
		t.Fatalf("in-edge total %d != M %d", inCount, g.M())
	}
}

func TestInInvalidatedByAddEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	_ = g.In(1)
	g.AddEdge(2, 1)
	if len(g.In(1)) != 2 {
		t.Fatal("In not invalidated after AddEdge")
	}
}

func TestBFSChain(t *testing.T) {
	g := chain(5)
	dist := g.BFSFrom(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	back := g.BFSFrom(4)
	for i := 0; i < 4; i++ {
		if back[i] != -1 {
			t.Fatalf("chain is one-way; dist[%d] from 4 = %d", i, back[i])
		}
	}
}

func TestReachableFrom(t *testing.T) {
	g := chain(4)
	g.AddEdge(2, 0) // small cycle among 0,1,2
	seen := g.ReachableFrom(1)
	for i, want := range []bool{true, true, true, true} {
		if seen[i] != want {
			t.Fatalf("reach[%d] = %v", i, seen[i])
		}
	}
	seen = g.ReachableFrom(3)
	if seen[0] || seen[1] || seen[2] || !seen[3] {
		t.Fatalf("node 3 should reach only itself: %v", seen)
	}
}

func TestCanReachSet(t *testing.T) {
	// 0→1→2, 3→2, 4 isolated; targets {2}
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 2)
	got := g.CanReachSet([]NodeID{2})
	want := []bool{true, true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CanReachSet[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCanReachSetMultipleTargets(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	got := g.CanReachSet([]NodeID{1, 3, 3})
	want := []bool{true, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("idx %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// canReachSetBrute is the O(N·(N+M)) reference: forward search per node.
func canReachSetBrute(g *Directed, targets []NodeID) []bool {
	tset := make([]bool, g.N())
	for _, t := range targets {
		tset[t] = true
	}
	out := make([]bool, g.N())
	for u := 0; u < g.N(); u++ {
		seen := g.ReachableFrom(NodeID(u))
		for v, ok := range seen {
			if ok && tset[v] {
				out[u] = true
				break
			}
		}
	}
	return out
}

func TestCanReachSetMatchesBrute(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		s := rng.New(seed + 100)
		n := 5 + s.Intn(40)
		g := random(n, 0.08, seed)
		k := 1 + s.Intn(4)
		targets := make([]NodeID, k)
		for i := range targets {
			targets[i] = NodeID(s.Intn(n))
		}
		got := g.CanReachSet(targets)
		want := canReachSetBrute(g, targets)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d node %d: got %v want %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestStronglyConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Directed
		want bool
	}{
		{"empty", New(0), true},
		{"single", New(1), true},
		{"chain", chain(4), false},
		{"cycle", cycle(4), true},
		{"two nodes one edge", func() *Directed { g := New(2); g.AddEdge(0, 1); return g }(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.StronglyConnected(); got != tt.want {
				t.Fatalf("StronglyConnected = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSCCsPartition(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%40)
		g := random(n, 0.1, seed)
		comps := g.SCCs()
		seen := make([]int, n)
		for _, c := range comps {
			if len(c) == 0 {
				return false
			}
			for _, v := range c {
				seen[v]++
			}
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCsMutualReachability(t *testing.T) {
	g := random(25, 0.12, 9)
	for _, comp := range g.SCCs() {
		if len(comp) < 2 {
			continue
		}
		base := comp[0]
		reach := g.ReachableFrom(base)
		back := g.CanReachSet([]NodeID{base})
		for _, v := range comp[1:] {
			if !reach[v] || !back[v] {
				t.Fatalf("component members %d and %d not mutually reachable", base, v)
			}
		}
	}
}

func TestSCCsCycleIsOneComponent(t *testing.T) {
	g := cycle(7)
	comps := g.SCCs()
	if len(comps) != 1 || len(comps[0]) != 7 {
		t.Fatalf("cycle SCCs = %v", comps)
	}
}

func TestLargestSCC(t *testing.T) {
	// cycle of 4 (0-3) plus a chain 4→5.
	g := New(6)
	for i := 0; i < 4; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%4))
	}
	g.AddEdge(4, 5)
	big := g.LargestSCC()
	if len(big) != 4 {
		t.Fatalf("largest SCC size = %d, want 4", len(big))
	}
}

func TestCloneIndependent(t *testing.T) {
	g := cycle(3)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.AddEdge(0, 2)
	if g.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("mutating clone mutated original")
	}
}

func TestEqual(t *testing.T) {
	a, b := cycle(3), cycle(3)
	if !a.Equal(b) {
		t.Fatal("identical graphs unequal")
	}
	if a.Equal(New(4)) {
		t.Fatal("different sizes equal")
	}
	c := New(3)
	c.AddEdge(0, 1)
	c.AddEdge(1, 2)
	c.AddEdge(0, 2)
	if a.Equal(c) {
		t.Fatal("different edge sets equal")
	}
}

func TestOutDegreeStats(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	st := g.OutDegreeStats()
	if st.Min != 0 || st.Max != 2 || st.Mean != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if (New(0).OutDegreeStats() != DegreeStats{}) {
		t.Fatal("empty graph stats should be zero")
	}
}

func TestDiffEdges(t *testing.T) {
	a := cycle(4)
	b := a.Clone()
	if DiffEdges(a, b) != 0 {
		t.Fatal("identical graphs differ")
	}
	b.AddEdge(0, 2)
	if got := DiffEdges(a, b); got != 1 {
		t.Fatalf("DiffEdges = %d, want 1", got)
	}
	if got := DiffEdges(b, a); got != 1 {
		t.Fatalf("DiffEdges asymmetric: %d", got)
	}
}

func TestDiffEdgesPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DiffEdges(New(2), New(3))
}

func TestSortAdjacency(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.SortAdjacency()
	adj := g.Out(0)
	for i := 1; i < len(adj); i++ {
		if adj[i-1] >= adj[i] {
			t.Fatalf("adjacency not sorted: %v", adj)
		}
	}
}

func BenchmarkCanReachSet300(b *testing.B) {
	g := random(300, 0.025, 5)
	targets := []NodeID{3, 77, 150, 222}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CanReachSet(targets)
	}
}

func BenchmarkSCCs300(b *testing.B) {
	g := random(300, 0.025, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SCCs()
	}
}

func TestDiameter(t *testing.T) {
	d, ok := chain(5).Diameter()
	if !ok {
		// A one-way chain is not strongly connected.
		t.Log("chain correctly reported disconnected")
	}
	if d != 4 {
		t.Fatalf("chain diameter = %d, want 4", d)
	}
	d, ok = cycle(6).Diameter()
	if !ok || d != 5 {
		t.Fatalf("cycle diameter = %d connected=%v, want 5 true", d, ok)
	}
	d, ok = New(1).Diameter()
	if !ok || d != 0 {
		t.Fatalf("singleton diameter = %d connected=%v", d, ok)
	}
}

// TestLocalEdgeSurgery exercises the concurrent-worker edge API: the
// Local insert/remove variants must edit exactly one row, report success
// accurately, and leave the graph-level bookkeeping to AddM/InvalidateIn.
func TestLocalEdgeSurgery(t *testing.T) {
	g := New(4)
	g.Reset(4)
	g.SetOut(0, []NodeID{1, 3})
	g.SetOut(1, []NodeID{2})
	g.SetOut(2, nil)
	g.SetOut(3, nil)
	g.OwnRows(2)
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	delta := 0
	if !g.InsertEdgeSortedLocal(0, 2) {
		t.Fatal("insert 0->2 should succeed")
	}
	delta++
	if g.InsertEdgeSortedLocal(0, 2) {
		t.Fatal("duplicate insert 0->2 should fail")
	}
	if !g.RemoveEdgeSortedLocal(1, 2) {
		t.Fatal("remove 1->2 should succeed")
	}
	delta--
	if g.RemoveEdgeSortedLocal(1, 2) {
		t.Fatal("removing absent 1->2 should fail")
	}
	// Local variants leave M untouched until the serial fold.
	if g.M() != 3 {
		t.Fatalf("M = %d before AddM, want 3", g.M())
	}
	g.AddM(delta)
	g.InvalidateIn()
	if g.M() != 3 {
		t.Fatalf("M = %d after AddM, want 3", g.M())
	}
	want := [][]NodeID{{1, 2, 3}, {}, {}, {}}
	for u, adj := range want {
		got := g.Out(NodeID(u))
		if len(got) != len(adj) {
			t.Fatalf("Out(%d) = %v, want %v", u, got, adj)
		}
		for i := range adj {
			if got[i] != adj[i] {
				t.Fatalf("Out(%d) = %v, want %v", u, got, adj)
			}
		}
	}
	// InvalidateIn forces the reverse adjacency to rebuild correctly.
	in := g.In(2)
	if len(in) != 1 || in[0] != 0 {
		t.Fatalf("In(2) = %v, want [0]", in)
	}
}

// TestLocalMatchesGlobalSurgery drives random sorted-edge surgery through
// the Local variants plus AddM and through the classic InsertEdgeSorted /
// RemoveEdgeSorted on a twin graph; they must stay identical throughout.
func TestLocalMatchesGlobalSurgery(t *testing.T) {
	const n = 12
	a, b := New(n), New(n)
	a.Reset(n)
	b.Reset(n)
	for u := 0; u < n; u++ {
		a.SetOut(NodeID(u), nil)
		b.SetOut(NodeID(u), nil)
	}
	a.OwnRows(1)
	s := rng.New(7)
	for i := 0; i < 2000; i++ {
		u := NodeID(s.Intn(n))
		v := NodeID(s.Intn(n))
		if u == v {
			continue
		}
		delta := 0
		if s.Intn(2) == 0 {
			if a.InsertEdgeSortedLocal(u, v) {
				delta++
			}
			if b.InsertEdgeSorted(u, v) != (delta == 1) {
				t.Fatalf("op %d: insert disagreement at %d->%d", i, u, v)
			}
		} else {
			if a.RemoveEdgeSortedLocal(u, v) {
				delta--
			}
			if b.RemoveEdgeSorted(u, v) != (delta == -1) {
				t.Fatalf("op %d: remove disagreement at %d->%d", i, u, v)
			}
		}
		a.AddM(delta)
	}
	a.InvalidateIn()
	if !a.Equal(b) {
		t.Fatal("local-surgery graph diverged from global-surgery twin")
	}
	if a.M() != b.M() {
		t.Fatalf("M: local %d vs global %d", a.M(), b.M())
	}
}

// TestOwnRowsPreservesContent pins that OwnRows is content-neutral and
// actually unshares CSR storage: mutating one row afterwards cannot bleed
// into a neighbouring row's slice.
func TestOwnRowsPreservesContent(t *testing.T) {
	g := New(3)
	g.Reset(3)
	g.SetOut(0, []NodeID{1, 2})
	g.SetOut(1, []NodeID{0})
	g.SetOut(2, []NodeID{0, 1})
	before := [][]NodeID{{1, 2}, {0}, {0, 1}}
	g.OwnRows(4)
	for u, adj := range before {
		got := g.Out(NodeID(u))
		if len(got) != len(adj) {
			t.Fatalf("Out(%d) = %v, want %v", u, got, adj)
		}
		for i := range adj {
			if got[i] != adj[i] {
				t.Fatalf("Out(%d) = %v, want %v", u, got, adj)
			}
		}
	}
	// Growing row 0 in place must leave row 1 untouched (disjoint storage).
	g.InsertEdgeSortedLocal(0, 1) // duplicate, no-op
	for i := 0; i < 6; i++ {
		g.InsertEdgeSortedLocal(1, NodeID(2))
		g.RemoveEdgeSortedLocal(1, NodeID(2))
	}
	if got := g.Out(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("row 0 corrupted by row-1 surgery: %v", got)
	}
}
