// Package graph implements the directed-graph machinery the simulator is
// built on: adjacency storage, traversals, strong connectivity, and
// reachability toward gateway sets. Node IDs are dense ints in [0, N).
package graph

import (
	"fmt"
	"slices"
)

// NodeID identifies a node. IDs are dense: a graph over n nodes uses
// IDs 0..n-1.
type NodeID = int32

// Directed is a directed graph stored as out-adjacency lists. The zero
// value is an empty graph with no nodes; use New to size one.
//
// Two build paths exist. AddEdge grows per-node lists one edge at a time
// and suits generators. SetOut (after Reset) lays all adjacency out in one
// flat edge array, CSR style, so a graph that is rebuilt every simulation
// step reuses one backing allocation instead of reallocating per node.
type Directed struct {
	out   [][]NodeID // per-node views; SetOut aliases them into edges
	edges []NodeID   // flat backing storage for SetOut builds
	m     int        // edge count

	// Reverse adjacency in CSR form (inOff has n+1 offsets into inEdges),
	// built lazily by ensureIn and reused across Reset cycles.
	inOff   []int32
	inEdges []NodeID
	inOK    bool
}

// New returns a directed graph with n nodes and no edges.
func New(n int) *Directed {
	return &Directed{out: make([][]NodeID, n)}
}

// Reset clears g to n nodes and no edges, keeping the backing storage of
// previous builds so a per-step rebuild settles into zero allocations.
func (g *Directed) Reset(n int) {
	if cap(g.out) < n {
		g.out = make([][]NodeID, n)
	}
	g.out = g.out[:n]
	for i := range g.out {
		g.out[i] = nil
	}
	g.edges = g.edges[:0]
	g.m = 0
	g.inOK = false
}

// SetOut replaces u's out-neighbour list with a sorted copy of neighbors,
// stored in the graph's flat edge array. The caller guarantees neighbors
// holds no duplicates and not u itself (AddEdge enforces those; SetOut is
// the fast path for rebuilds that already know the list is clean).
func (g *Directed) SetOut(u NodeID, neighbors []NodeID) {
	g.m += len(neighbors) - len(g.out[u])
	start := len(g.edges)
	g.edges = append(g.edges, neighbors...)
	adj := g.edges[start:len(g.edges):len(g.edges)]
	slices.Sort(adj)
	g.out[u] = adj
	g.inOK = false
}

// InsertEdgeSorted inserts the edge u→v into u's sorted out-list, keeping
// it sorted — the incremental counterpart of SetOut, so a surgically
// updated graph stays in the same canonical ascending order as a full
// rebuild. It requires u's out-list to already be sorted (SetOut and
// previous surgeries guarantee that) and returns false if the edge was
// already present. Growing past a CSR-aliased list's capacity reallocates
// it into node-owned storage, after which inserts reuse that storage.
func (g *Directed) InsertEdgeSorted(u, v NodeID) bool {
	adj := g.out[u]
	i := lowerBound(adj, v)
	if i < len(adj) && adj[i] == v {
		return false
	}
	adj = append(adj, 0)
	copy(adj[i+1:], adj[i:])
	adj[i] = v
	g.out[u] = adj
	g.m++
	g.inOK = false
	return true
}

// RemoveEdgeSorted removes the edge u→v from u's sorted out-list, keeping
// it sorted, and returns whether the edge existed. Removal shifts within
// u's own storage, so CSR-aliased lists stay confined to their disjoint
// ranges of the flat edge array.
func (g *Directed) RemoveEdgeSorted(u, v NodeID) bool {
	adj := g.out[u]
	i := lowerBound(adj, v)
	if i == len(adj) || adj[i] != v {
		return false
	}
	copy(adj[i:], adj[i+1:])
	g.out[u] = adj[:len(adj)-1]
	g.m--
	g.inOK = false
	return true
}

// InsertEdgeSortedLocal is InsertEdgeSorted minus the graph-level
// bookkeeping: it edits only row u (its slice header and its disjoint
// storage), leaving the edge count and the reverse-adjacency flag
// untouched. Workers that own disjoint row sets may therefore call it
// concurrently; the caller folds the returned successes back with AddM and
// invalidates the reverse adjacency once with InvalidateIn.
func (g *Directed) InsertEdgeSortedLocal(u, v NodeID) bool {
	adj := g.out[u]
	i := lowerBound(adj, v)
	if i < len(adj) && adj[i] == v {
		return false
	}
	adj = append(adj, 0)
	copy(adj[i+1:], adj[i:])
	adj[i] = v
	g.out[u] = adj
	return true
}

// RemoveEdgeSortedLocal is RemoveEdgeSorted minus the graph-level
// bookkeeping, with the same concurrency contract as
// InsertEdgeSortedLocal.
func (g *Directed) RemoveEdgeSortedLocal(u, v NodeID) bool {
	adj := g.out[u]
	i := lowerBound(adj, v)
	if i == len(adj) || adj[i] != v {
		return false
	}
	copy(adj[i:], adj[i+1:])
	g.out[u] = adj[:len(adj)-1]
	return true
}

// AddM folds a batch of Local edge surgeries into the edge count: delta is
// (successful inserts) - (successful removals).
func (g *Directed) AddM(delta int) { g.m += delta }

// InvalidateIn marks the reverse adjacency stale after a batch of Local
// edge surgeries. Call once per batch from a serial section.
func (g *Directed) InvalidateIn() { g.inOK = false }

// OwnRows migrates every CSR-aliased adjacency list into node-owned
// storage with spare capacity — half the row's current degree plus
// headroom slots — so InsertEdgeSorted calls after a SetOut build rarely
// reallocate. A surgically maintained graph calls this once after
// construction; rows then ratchet to their high-water capacity, and the
// proportional slack keeps record-breaking degrees (hence reallocations)
// rare even across many nodes and long runs.
func (g *Directed) OwnRows(headroom int) {
	if headroom < 0 {
		headroom = 0
	}
	for u, adj := range g.out {
		owned := make([]NodeID, len(adj), len(adj)+len(adj)/2+headroom)
		copy(owned, adj)
		g.out[u] = owned
	}
}

// N returns the number of nodes.
func (g *Directed) N() int { return len(g.out) }

// M returns the number of edges.
func (g *Directed) M() int { return g.m }

// AddEdge inserts the edge u→v. Duplicate edges and self-loops are
// rejected (returning false) so that edge counts stay meaningful.
func (g *Directed) AddEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	for _, w := range g.out[u] {
		if w == v {
			return false
		}
	}
	g.out[u] = append(g.out[u], v)
	g.m++
	g.inOK = false
	return true
}

// HasEdge reports whether the edge u→v exists.
func (g *Directed) HasEdge(u, v NodeID) bool {
	for _, w := range g.out[u] {
		if w == v {
			return true
		}
	}
	return false
}

// HasEdgeSorted reports whether the edge u→v exists by binary search,
// assuming u's out-list is sorted ascending — true for SetOut-built and
// surgically maintained graphs (every World topology, on either stepping
// path), but NOT for graphs grown with bare AddEdge.
func (g *Directed) HasEdgeSorted(u, v NodeID) bool {
	adj := g.out[u]
	i := lowerBound(adj, v)
	return i < len(adj) && adj[i] == v
}

// lowerBound returns the first index in the sorted list adj whose value is
// >= v. A monomorphic loop beats the generic slices.BinarySearch on the
// short adjacency lists the topology surgery operates on.
func lowerBound(adj []NodeID, v NodeID) int {
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Out returns the out-neighbours of u. The returned slice is owned by the
// graph; callers must not modify it.
func (g *Directed) Out(u NodeID) []NodeID { return g.out[u] }

// OutDegree returns the number of out-edges of u.
func (g *Directed) OutDegree(u NodeID) int { return len(g.out[u]) }

// SortAdjacency sorts every adjacency list ascending. Generators call it
// once so that iteration order — and hence every downstream random choice —
// is independent of insertion order.
func (g *Directed) SortAdjacency() {
	for _, adj := range g.out {
		slices.Sort(adj)
	}
	g.inOK = false
}

// ensureIn builds the reverse adjacency in CSR form if stale, reusing the
// offset and edge buffers from previous builds.
func (g *Directed) ensureIn() {
	if g.inOK {
		return
	}
	n := len(g.out)
	if cap(g.inOff) < n+1 {
		g.inOff = make([]int32, n+1)
	}
	g.inOff = g.inOff[:n+1]
	for i := range g.inOff {
		g.inOff[i] = 0
	}
	for _, adj := range g.out {
		for _, v := range adj {
			g.inOff[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	if cap(g.inEdges) < g.m {
		g.inEdges = make([]NodeID, g.m)
	}
	g.inEdges = g.inEdges[:g.m]
	// Fill using inOff[v] as a cursor; afterwards inOff[v] has advanced to
	// the start of v+1's range, so shift offsets back by one node.
	for u, adj := range g.out {
		for _, v := range adj {
			g.inEdges[g.inOff[v]] = NodeID(u)
			g.inOff[v]++
		}
	}
	for v := n; v > 0; v-- {
		g.inOff[v] = g.inOff[v-1]
	}
	g.inOff[0] = 0
	g.inOK = true
}

// In returns the in-neighbours of v. The returned slice is owned by the
// graph and valid until the next mutation; callers must not modify it.
func (g *Directed) In(v NodeID) []NodeID {
	g.ensureIn()
	return g.inEdges[g.inOff[v]:g.inOff[v+1]]
}

// Clone returns a deep copy of g. The copy packs all adjacency into one
// flat edge array (CSR style), so cloning costs two allocations however
// many nodes the graph has; the clone remains fully mutable (appending
// past a node's capacity migrates that list to its own storage).
func (g *Directed) Clone() *Directed {
	c := New(g.N())
	c.edges = make([]NodeID, 0, g.m)
	for u, adj := range g.out {
		if len(adj) == 0 {
			continue
		}
		start := len(c.edges)
		c.edges = append(c.edges, adj...)
		c.out[u] = c.edges[start:len(c.edges):len(c.edges)]
	}
	c.m = g.m
	return c
}

// Equal reports whether g and h have identical node counts and edge sets.
func (g *Directed) Equal(h *Directed) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.out {
		if len(g.out[u]) != len(h.out[u]) {
			return false
		}
		for _, v := range g.out[u] {
			if !h.HasEdge(NodeID(u), v) {
				return false
			}
		}
	}
	return true
}

// BFSFrom returns dist[v] = hop count from src to v, with -1 for
// unreachable nodes.
func (g *Directed) BFSFrom(src NodeID) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.N())
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.out[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ReachableFrom returns the set (as a bool slice) of nodes reachable from
// src, including src itself.
func (g *Directed) ReachableFrom(src NodeID) []bool {
	seen := make([]bool, g.N())
	seen[src] = true
	stack := []NodeID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.out[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// ReachScratch holds the reusable buffers of CanReachSetScratch. The zero
// value is ready; buffers grow on first use and are then reused.
type ReachScratch struct {
	seen  []bool
	queue []NodeID
}

// CanReachSet returns, for every node, whether some member of targets is
// reachable from it. It runs one reverse BFS from the target set, so it is
// O(N + M) regardless of |targets|.
func (g *Directed) CanReachSet(targets []NodeID) []bool {
	var s ReachScratch
	return g.CanReachSetScratch(targets, &s)
}

// CanReachSetScratch is CanReachSet with caller-owned scratch buffers: the
// returned slice aliases s and is valid until the next call with the same
// scratch. Per-step metric loops use it to avoid two allocations per step.
func (g *Directed) CanReachSetScratch(targets []NodeID, s *ReachScratch) []bool {
	g.ensureIn()
	n := g.N()
	if cap(s.seen) < n {
		s.seen = make([]bool, n)
		s.queue = make([]NodeID, 0, n)
	}
	s.seen = s.seen[:n]
	for i := range s.seen {
		s.seen[i] = false
	}
	queue := s.queue[:0]
	for _, t := range targets {
		if !s.seen[t] {
			s.seen[t] = true
			queue = append(queue, t)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.inEdges[g.inOff[v]:g.inOff[v+1]] {
			if !s.seen[u] {
				s.seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	s.queue = queue
	return s.seen
}

// StronglyConnected reports whether the graph is strongly connected
// (every node reaches every other). Vacuously true for N <= 1.
func (g *Directed) StronglyConnected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	fwd := g.ReachableFrom(0)
	for _, ok := range fwd {
		if !ok {
			return false
		}
	}
	back := g.CanReachSet([]NodeID{0})
	for _, ok := range back {
		if !ok {
			return false
		}
	}
	return true
}

// SCCs returns the strongly connected components (Tarjan, iterative),
// each component a slice of node IDs. Components are emitted in reverse
// topological order of the condensation.
func (g *Directed) SCCs() [][]NodeID {
	n := g.N()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps   [][]NodeID
		stack   []NodeID
		next    int32
		callU   []NodeID // explicit DFS call stack: node
		callEi  []int    // and position within its adjacency list
		pushDFS = func(u NodeID) {
			index[u] = next
			low[u] = next
			next++
			stack = append(stack, u)
			onStack[u] = true
			callU = append(callU, u)
			callEi = append(callEi, 0)
		}
	)
	for s := 0; s < n; s++ {
		if index[s] != unvisited {
			continue
		}
		pushDFS(NodeID(s))
		for len(callU) > 0 {
			u := callU[len(callU)-1]
			ei := callEi[len(callEi)-1]
			if ei < len(g.out[u]) {
				callEi[len(callEi)-1]++
				v := g.out[u][ei]
				if index[v] == unvisited {
					pushDFS(v)
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			// u is finished.
			callU = callU[:len(callU)-1]
			callEi = callEi[:len(callEi)-1]
			if len(callU) > 0 {
				parent := callU[len(callU)-1]
				if low[u] < low[parent] {
					low[parent] = low[u]
				}
			}
			if low[u] == index[u] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == u {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// LargestSCC returns the node set of the largest strongly connected
// component.
func (g *Directed) LargestSCC() []NodeID {
	var best []NodeID
	for _, c := range g.SCCs() {
		if len(c) > len(best) {
			best = c
		}
	}
	return best
}

// DegreeStats summarises the out-degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// OutDegreeStats returns min/max/mean out-degree.
func (g *Directed) OutDegreeStats() DegreeStats {
	if g.N() == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: len(g.out[0]), Max: len(g.out[0])}
	total := 0
	for _, adj := range g.out {
		d := len(adj)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(g.N())
	return st
}

// DiffEdges returns the number of edges present in g but not in h plus
// those in h but not in g — the symmetric-difference size. Both graphs
// must have the same node count.
func DiffEdges(g, h *Directed) int {
	if g.N() != h.N() {
		panic(fmt.Sprintf("graph: DiffEdges on mismatched sizes %d vs %d", g.N(), h.N()))
	}
	diff := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.out[u] {
			if !h.HasEdge(NodeID(u), v) {
				diff++
			}
		}
		for _, v := range h.out[u] {
			if !g.HasEdge(NodeID(u), v) {
				diff++
			}
		}
	}
	return diff
}

// Diameter returns the longest finite shortest-path distance between any
// ordered node pair, and whether every ordered pair is connected. It runs
// a BFS from every node — O(N·(N+M)) — so use it for analysis, not in
// simulation loops.
func (g *Directed) Diameter() (diameter int, connected bool) {
	n := g.N()
	connected = true
	for u := 0; u < n; u++ {
		dist := g.BFSFrom(NodeID(u))
		for _, d := range dist {
			if d < 0 {
				connected = false
				continue
			}
			if int(d) > diameter {
				diameter = int(d)
			}
		}
	}
	return diameter, connected
}
