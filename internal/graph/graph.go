// Package graph implements the directed-graph machinery the simulator is
// built on: adjacency storage, traversals, strong connectivity, and
// reachability toward gateway sets. Node IDs are dense ints in [0, N).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense: a graph over n nodes uses
// IDs 0..n-1.
type NodeID = int32

// Directed is a directed graph stored as out-adjacency lists. The zero
// value is an empty graph with no nodes; use New to size one.
type Directed struct {
	out [][]NodeID
	in  [][]NodeID // maintained lazily; nil until ensureIn
	m   int        // edge count
}

// New returns a directed graph with n nodes and no edges.
func New(n int) *Directed {
	return &Directed{out: make([][]NodeID, n)}
}

// N returns the number of nodes.
func (g *Directed) N() int { return len(g.out) }

// M returns the number of edges.
func (g *Directed) M() int { return g.m }

// AddEdge inserts the edge u→v. Duplicate edges and self-loops are
// rejected (returning false) so that edge counts stay meaningful.
func (g *Directed) AddEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	for _, w := range g.out[u] {
		if w == v {
			return false
		}
	}
	g.out[u] = append(g.out[u], v)
	g.m++
	g.in = nil
	return true
}

// HasEdge reports whether the edge u→v exists.
func (g *Directed) HasEdge(u, v NodeID) bool {
	for _, w := range g.out[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Out returns the out-neighbours of u. The returned slice is owned by the
// graph; callers must not modify it.
func (g *Directed) Out(u NodeID) []NodeID { return g.out[u] }

// OutDegree returns the number of out-edges of u.
func (g *Directed) OutDegree(u NodeID) int { return len(g.out[u]) }

// SortAdjacency sorts every adjacency list ascending. Generators call it
// once so that iteration order — and hence every downstream random choice —
// is independent of insertion order.
func (g *Directed) SortAdjacency() {
	for _, adj := range g.out {
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	g.in = nil
}

// ensureIn builds the in-adjacency lists if absent.
func (g *Directed) ensureIn() {
	if g.in != nil {
		return
	}
	g.in = make([][]NodeID, len(g.out))
	for u, adj := range g.out {
		for _, v := range adj {
			g.in[v] = append(g.in[v], NodeID(u))
		}
	}
}

// In returns the in-neighbours of v. The returned slice is owned by the
// graph; callers must not modify it.
func (g *Directed) In(v NodeID) []NodeID {
	g.ensureIn()
	return g.in[v]
}

// Clone returns a deep copy of g.
func (g *Directed) Clone() *Directed {
	c := New(g.N())
	for u, adj := range g.out {
		c.out[u] = append([]NodeID(nil), adj...)
	}
	c.m = g.m
	return c
}

// Equal reports whether g and h have identical node counts and edge sets.
func (g *Directed) Equal(h *Directed) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.out {
		if len(g.out[u]) != len(h.out[u]) {
			return false
		}
		for _, v := range g.out[u] {
			if !h.HasEdge(NodeID(u), v) {
				return false
			}
		}
	}
	return true
}

// BFSFrom returns dist[v] = hop count from src to v, with -1 for
// unreachable nodes.
func (g *Directed) BFSFrom(src NodeID) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.out[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ReachableFrom returns the set (as a bool slice) of nodes reachable from
// src, including src itself.
func (g *Directed) ReachableFrom(src NodeID) []bool {
	seen := make([]bool, g.N())
	seen[src] = true
	stack := []NodeID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.out[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// CanReachSet returns, for every node, whether some member of targets is
// reachable from it. It runs one reverse BFS from the target set, so it is
// O(N + M) regardless of |targets|.
func (g *Directed) CanReachSet(targets []NodeID) []bool {
	g.ensureIn()
	seen := make([]bool, g.N())
	queue := make([]NodeID, 0, len(targets))
	for _, t := range targets {
		if !seen[t] {
			seen[t] = true
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.in[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return seen
}

// StronglyConnected reports whether the graph is strongly connected
// (every node reaches every other). Vacuously true for N <= 1.
func (g *Directed) StronglyConnected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	fwd := g.ReachableFrom(0)
	for _, ok := range fwd {
		if !ok {
			return false
		}
	}
	back := g.CanReachSet([]NodeID{0})
	for _, ok := range back {
		if !ok {
			return false
		}
	}
	return true
}

// SCCs returns the strongly connected components (Tarjan, iterative),
// each component a slice of node IDs. Components are emitted in reverse
// topological order of the condensation.
func (g *Directed) SCCs() [][]NodeID {
	n := g.N()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps   [][]NodeID
		stack   []NodeID
		next    int32
		callU   []NodeID // explicit DFS call stack: node
		callEi  []int    // and position within its adjacency list
		pushDFS = func(u NodeID) {
			index[u] = next
			low[u] = next
			next++
			stack = append(stack, u)
			onStack[u] = true
			callU = append(callU, u)
			callEi = append(callEi, 0)
		}
	)
	for s := 0; s < n; s++ {
		if index[s] != unvisited {
			continue
		}
		pushDFS(NodeID(s))
		for len(callU) > 0 {
			u := callU[len(callU)-1]
			ei := callEi[len(callEi)-1]
			if ei < len(g.out[u]) {
				callEi[len(callEi)-1]++
				v := g.out[u][ei]
				if index[v] == unvisited {
					pushDFS(v)
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			// u is finished.
			callU = callU[:len(callU)-1]
			callEi = callEi[:len(callEi)-1]
			if len(callU) > 0 {
				parent := callU[len(callU)-1]
				if low[u] < low[parent] {
					low[parent] = low[u]
				}
			}
			if low[u] == index[u] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == u {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// LargestSCC returns the node set of the largest strongly connected
// component.
func (g *Directed) LargestSCC() []NodeID {
	var best []NodeID
	for _, c := range g.SCCs() {
		if len(c) > len(best) {
			best = c
		}
	}
	return best
}

// DegreeStats summarises the out-degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// OutDegreeStats returns min/max/mean out-degree.
func (g *Directed) OutDegreeStats() DegreeStats {
	if g.N() == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: len(g.out[0]), Max: len(g.out[0])}
	total := 0
	for _, adj := range g.out {
		d := len(adj)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(g.N())
	return st
}

// DiffEdges returns the number of edges present in g but not in h plus
// those in h but not in g — the symmetric-difference size. Both graphs
// must have the same node count.
func DiffEdges(g, h *Directed) int {
	if g.N() != h.N() {
		panic(fmt.Sprintf("graph: DiffEdges on mismatched sizes %d vs %d", g.N(), h.N()))
	}
	diff := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.out[u] {
			if !h.HasEdge(NodeID(u), v) {
				diff++
			}
		}
		for _, v := range h.out[u] {
			if !g.HasEdge(NodeID(u), v) {
				diff++
			}
		}
	}
	return diff
}

// Diameter returns the longest finite shortest-path distance between any
// ordered node pair, and whether every ordered pair is connected. It runs
// a BFS from every node — O(N·(N+M)) — so use it for analysis, not in
// simulation loops.
func (g *Directed) Diameter() (diameter int, connected bool) {
	n := g.N()
	connected = true
	for u := 0; u < n; u++ {
		dist := g.BFSFrom(NodeID(u))
		for _, d := range dist {
			if d < 0 {
				connected = false
				continue
			}
			if int(d) > diameter {
				diameter = int(d)
			}
		}
	}
	return diameter, connected
}
