package graph

// This file implements DynReach, a dynamic reverse-reachability engine: it
// maintains, under edge insertions and deletions, the set of nodes that can
// reach a fixed target set over a directed graph the host owns. The classic
// use is connectivity measurement — "which nodes still have a live chain to
// a gateway" — recomputed every simulation step. A scratch BFS pays
// O(N + E) per step no matter how little changed; DynReach pays
// O(affected) per step, where affected is the subgraph whose reachability
// status the step's edge events could actually have flipped.
//
// The structure is a witness forest. Every reached non-target node u
// stores a witness: one live out-edge u→witness[u] into another reached
// node, justifying u's membership. Witness edges form a forest rooted at
// the targets (each node one parent, no cycles: a witness chain strictly
// follows edges into nodes whose own chains terminate at a target), and
// each node keeps an intrusive doubly-linked list of its witness children
// so the whole dependent subtree of a dying witness edge is enumerable in
// O(subtree).
//
// Event processing per flush:
//
//  1. Invalidate(u) queues u for a witness check: if u is reached, not a
//     target, and its witness edge is no longer live, u first tries to
//     re-witness — adopt another live out-edge into a reached node whose
//     own witness chain provably terminates at a target without passing
//     through u (an O(chain depth) walk; accepting a descendant would
//     close a stale cycle). Only when no safe witness exists does u's
//     entire witness subtree collapse to unreached, every member becoming
//     a re-attachment candidate. A subtree member may well still be
//     reachable through a different edge — collapse is tentative, not a
//     verdict. Re-witnessing onto a chain that a later event of the same
//     flush kills is safe: the child-list relink makes u part of that
//     chain's subtree, so the eventual collapse absorbs it.
//  2. Candidate(u) queues u for (re-)attachment: a node that gained an
//     out-edge, or lost reached status in a collapse.
//  3. Flush first runs all witness checks (collapses), then scans every
//     candidate's live out-edges for a reached witness, then runs a BFS
//     over live in-edges from the freshly re-attached nodes — exactly the
//     frontier expansion of the scratch BFS, restricted to nodes whose
//     status actually changed.
//
// Correctness does not depend on event precision: a spurious Invalidate
// finds the witness edge still live and no-ops; a spurious Candidate finds
// the node already reached and no-ops. Hosts may therefore over-report
// events (e.g. emit at decision points without success checks). MISSING an
// event is fatal — hosts that cannot account for a step's changes must
// call Recompute instead (the harnesses' resync fallback).
//
// The reached SET is the unique least fixpoint of "is a target, or has a
// live edge to a reached node", so it is independent of event order and of
// which witness each node happens to pick — DynReach is bit-identical to a
// scratch BFS from the same targets, which the randomized property tests
// pin. No stale cycle can survive a collapse: every collapsed node is
// unreached until it finds a witness OUTSIDE the collapsed set, so a ring
// of nodes witnessing each other can never readmit itself.
//
// The engine holds no edges of its own. The host supplies live-edge views
// through a ReachOracle whose function fields are bound once per engine
// (binding per call would allocate closures in the hot path); all internal
// buffers ratchet to their high-water capacity, so steady-state flushes
// allocate nothing.

// ReachOracle is the host-graph view DynReach operates through. LiveOut
// and LiveIn append to dst and return it (dst is engine-owned scratch —
// hosts that already hold a materialized neighbour slice may ignore dst
// and return theirs). Countable flags the nodes the Count aggregate
// tracks; targets are counted like any other node when Countable reports
// them.
type ReachOracle struct {
	// LiveOut returns u's current live out-neighbours.
	LiveOut func(u NodeID, dst []NodeID) []NodeID
	// LiveIn returns v's current live in-neighbours.
	LiveIn func(v NodeID, dst []NodeID) []NodeID
	// HasLive reports whether the edge u→v is currently live.
	HasLive func(u, v NodeID) bool
	// Countable reports whether u participates in Count. Evaluated once
	// per node at Recompute; hosts whose countable set changes must
	// Recompute (the fault-epoch resync rule).
	Countable func(u NodeID) bool
}

// DynReach maintains reverse reachability toward a target set under edge
// churn. The zero value is ready; call Reset, then Recompute, then
// Invalidate/Candidate + Flush per step.
type DynReach struct {
	o ReachOracle
	n int

	reached   []bool
	isTarget  []bool
	countable []bool
	count     int // reached ∧ countable
	total     int // countable

	// witness[u] is the out-neighbour justifying u's reached status
	// (valid for reached non-targets); childHead/childNext/childPrev
	// form each node's intrusive doubly-linked witness-children list.
	witness   []NodeID
	childHead []NodeID
	childNext []NodeID
	childPrev []NodeID

	inval []NodeID // queued witness checks
	cand  []NodeID // queued re-attachment candidates
	mark  []int32  // candidate dedupe stamps
	gen   int32

	queue []NodeID // flush BFS frontier
	stack []NodeID // collapse DFS stack
	nbr   []NodeID // LiveOut scratch
	nbrIn []NodeID // LiveIn scratch
}

// Reset sizes the engine for n nodes and binds the oracle. It does not
// compute anything; follow with Recompute.
func (r *DynReach) Reset(n int, o ReachOracle) {
	r.o = o
	r.n = n
	if cap(r.reached) < n {
		r.reached = make([]bool, n)
		r.isTarget = make([]bool, n)
		r.countable = make([]bool, n)
		r.witness = make([]NodeID, n)
		r.childHead = make([]NodeID, n)
		r.childNext = make([]NodeID, n)
		r.childPrev = make([]NodeID, n)
		r.mark = make([]int32, n)
		r.gen = 0
	}
	r.reached = r.reached[:n]
	r.isTarget = r.isTarget[:n]
	r.countable = r.countable[:n]
	r.witness = r.witness[:n]
	r.childHead = r.childHead[:n]
	r.childNext = r.childNext[:n]
	r.childPrev = r.childPrev[:n]
	r.mark = r.mark[:n]
	r.inval = r.inval[:0]
	r.cand = r.cand[:0]
	r.gen++
}

// Recompute rebuilds the reach set from scratch: a reverse BFS from
// targets over live in-edges, recording witnesses as it expands. This is
// the resync fallback for steps whose changes the host cannot enumerate
// (full topology rebuilds, fault epochs) and the required follow-up to
// Reset or to a change in the target or countable sets.
func (r *DynReach) Recompute(targets []NodeID) {
	r.count, r.total = 0, 0
	for i := 0; i < r.n; i++ {
		u := NodeID(i)
		r.reached[i] = false
		r.isTarget[i] = false
		r.witness[i] = -1
		r.childHead[i] = -1
		r.childNext[i] = -1
		r.childPrev[i] = -1
		c := r.o.Countable(u)
		r.countable[i] = c
		if c {
			r.total++
		}
	}
	r.inval = r.inval[:0]
	r.cand = r.cand[:0]
	queue := r.queue[:0]
	for _, t := range targets {
		if r.reached[t] {
			continue
		}
		r.reached[t] = true
		r.isTarget[t] = true
		if r.countable[t] {
			r.count++
		}
		queue = append(queue, t)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		r.nbrIn = r.o.LiveIn(v, r.nbrIn[:0])
		for _, u := range r.nbrIn {
			if !r.reached[u] {
				r.attach(u, v)
				queue = append(queue, u)
			}
		}
	}
	r.queue = queue
}

// Invalidate queues u for a witness check at the next Flush: call it when
// an out-edge of u may have died. Spurious calls are harmless.
func (r *DynReach) Invalidate(u NodeID) {
	r.inval = append(r.inval, u)
}

// Candidate queues u for re-attachment at the next Flush: call it when an
// out-edge of u may have appeared. Spurious calls are harmless.
func (r *DynReach) Candidate(u NodeID) {
	r.pushCand(u)
}

// Flush settles all queued events, restoring the least-fixpoint reach set.
func (r *DynReach) Flush() {
	// Phase 1 — witness checks: collapse every subtree whose root's
	// witness edge died. Collapsed members join the candidate queue.
	for _, u := range r.inval {
		if !r.reached[u] {
			// Not reached, so nothing to invalidate — but the event means
			// u's edges changed, so give it a re-attachment chance.
			r.pushCand(u)
			continue
		}
		if r.isTarget[u] {
			continue
		}
		if w := r.witness[u]; w >= 0 && r.o.HasLive(u, w) {
			continue
		}
		if r.rewitness(u) {
			continue
		}
		r.collapse(u)
	}
	r.inval = r.inval[:0]
	// Phase 2 — re-attachment: each candidate scans its live out-edges for
	// a reached witness.
	queue := r.queue[:0]
	for _, u := range r.cand {
		if r.reached[u] {
			continue
		}
		r.nbr = r.o.LiveOut(u, r.nbr[:0])
		for _, v := range r.nbr {
			if r.reached[v] {
				r.attach(u, v)
				queue = append(queue, u)
				break
			}
		}
	}
	r.cand = r.cand[:0]
	r.bumpGen()
	// Phase 3 — frontier expansion: the scratch BFS, restricted to the
	// newly reached.
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		r.nbrIn = r.o.LiveIn(v, r.nbrIn[:0])
		for _, u := range r.nbrIn {
			if !r.reached[u] {
				r.attach(u, v)
				queue = append(queue, u)
			}
		}
	}
	r.queue = queue
}

// Reached reports whether u currently reaches a target.
func (r *DynReach) Reached(u NodeID) bool { return r.reached[u] }

// Count returns the number of reached countable nodes.
func (r *DynReach) Count() int { return r.count }

// CountableTotal returns the number of countable nodes (as of the last
// Recompute).
func (r *DynReach) CountableTotal() int { return r.total }

// attach marks u reached with witness v, linking u into v's child list.
func (r *DynReach) attach(u, v NodeID) {
	r.reached[u] = true
	if r.countable[u] {
		r.count++
	}
	r.witness[u] = v
	r.childPrev[u] = -1
	head := r.childHead[v]
	r.childNext[u] = head
	if head >= 0 {
		r.childPrev[head] = u
	}
	r.childHead[v] = u
}

// rewitness tries to keep a reached node whose witness edge died reached,
// by adopting another live out-edge into a reached node whose witness
// chain terminates at a target without passing through u. Succeeding costs
// O(out-degree × chain depth) and spares the O(subtree) collapse+rebuild;
// failing costs the same scan and falls through to collapse.
func (r *DynReach) rewitness(u NodeID) bool {
	r.nbr = r.o.LiveOut(u, r.nbr[:0])
	for _, v := range r.nbr {
		if !r.reached[v] || !r.chainSafe(v, u) {
			continue
		}
		r.unlink(u)
		r.witness[u] = v
		r.childPrev[u] = -1
		head := r.childHead[v]
		r.childNext[u] = head
		if head >= 0 {
			r.childPrev[head] = u
		}
		r.childHead[v] = u
		return true
	}
	return false
}

// chainSafe reports whether v's current witness chain terminates at a
// target without passing through u. Reached nodes' chains are always
// target-terminated and acyclic (the forest invariant), so the walk is
// bounded by the forest depth; the n-step guard is pure defence.
func (r *DynReach) chainSafe(v, u NodeID) bool {
	for steps := 0; steps < r.n; steps++ {
		if v == u {
			return false
		}
		if r.isTarget[v] {
			return true
		}
		if !r.reached[v] {
			return false
		}
		v = r.witness[v]
		if v < 0 {
			return false
		}
	}
	return false
}

// unlink removes u from its witness parent's child list.
func (r *DynReach) unlink(u NodeID) {
	p := r.witness[u]
	if prev := r.childPrev[u]; prev >= 0 {
		r.childNext[prev] = r.childNext[u]
	} else {
		r.childHead[p] = r.childNext[u]
	}
	if next := r.childNext[u]; next >= 0 {
		r.childPrev[next] = r.childPrev[u]
	}
}

// collapse unlinks u from its witness parent and marks u's whole witness
// subtree unreached, queueing every member as a re-attachment candidate.
// Only the root needs a real unlink: descendants' sibling pointers die
// wholesale with their parent's cleared child list and are rewritten on
// re-attach.
func (r *DynReach) collapse(u NodeID) {
	r.unlink(u)
	stack := append(r.stack[:0], u)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r.reached[x] = false
		if r.countable[x] {
			r.count--
		}
		r.pushCand(x)
		for c := r.childHead[x]; c >= 0; c = r.childNext[c] {
			stack = append(stack, c)
		}
		r.childHead[x] = -1
	}
	r.stack = stack
}

// pushCand queues u as a re-attachment candidate, deduplicated per flush
// generation.
func (r *DynReach) pushCand(u NodeID) {
	if r.mark[u] == r.gen {
		return
	}
	r.mark[u] = r.gen
	r.cand = append(r.cand, u)
}

// bumpGen opens a fresh dedupe generation, clearing stamps on wraparound.
func (r *DynReach) bumpGen() {
	r.gen++
	if r.gen > 1<<30 {
		for i := range r.mark {
			r.mark[i] = 0
		}
		r.gen = 1
	}
}
