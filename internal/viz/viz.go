// Package viz renders simulation state and results for terminals. The
// paper's Java harness shipped "a graphical view and plots"; this is the
// equivalent for a CLI-first reproduction: arena heat maps, series
// sparklines, line charts, and horizontal bar charts, all plain text.
package viz

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/network"
)

// ramp is the density ramp used by heat maps and sparklines.
var ramp = []rune(" ·:-=+*#%@")

// sparkRamp is the block-character ramp for sparklines.
var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as one line of block characters, downsampled
// to at most width cells. Values are clamped to [0, 1].
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 || width <= 0 {
		return ""
	}
	stride := (len(xs) + width - 1) / width
	var b strings.Builder
	for i := 0; i < len(xs); i += stride {
		v := clamp01(xs[i])
		b.WriteRune(sparkRamp[int(v*float64(len(sparkRamp)-1)+0.5)])
	}
	return b.String()
}

// SparklineScaled renders a series scaled to its own min/max range, for
// quantities that are not fractions (finishing times, counts).
func SparklineScaled(xs []float64, width int) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		return Sparkline(make([]float64, len(xs)), width)
	}
	scaled := make([]float64, len(xs))
	for i, x := range xs {
		scaled[i] = (x - lo) / (hi - lo)
	}
	return Sparkline(scaled, width)
}

// Heatmap renders per-node values over the world's arena as a character
// grid: each cell shows the maximum value of the nodes inside it, using a
// density ramp. Gateways are drawn as 'G' regardless of value. values is
// indexed by node ID and expected in [0, 1].
func Heatmap(w *network.World, values []float64, cols, rows int) string {
	if cols <= 0 {
		cols = 60
	}
	if rows <= 0 {
		rows = 20
	}
	grid := make([]float64, cols*rows)
	for i := range grid {
		grid[i] = math.NaN()
	}
	gateway := make([]bool, cols*rows)
	arenaW, arenaH, minX, minY := arenaDims(w)
	for u := 0; u < w.N(); u++ {
		p := w.Pos(network.NodeID(u))
		cx := int((p.X - minX) / arenaW * float64(cols))
		cy := int((p.Y - minY) / arenaH * float64(rows))
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		idx := cy*cols + cx
		v := 0.0
		if u < len(values) {
			v = clamp01(values[u])
		}
		if math.IsNaN(grid[idx]) || v > grid[idx] {
			grid[idx] = v
		}
		if w.IsGateway(network.NodeID(u)) {
			gateway[idx] = true
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	// Render top row last so y grows upward, like the arena.
	for cy := rows - 1; cy >= 0; cy-- {
		b.WriteByte('|')
		for cx := 0; cx < cols; cx++ {
			idx := cy*cols + cx
			switch {
			case gateway[idx]:
				b.WriteByte('G')
			case math.IsNaN(grid[idx]):
				b.WriteByte(' ')
			default:
				b.WriteRune(ramp[int(grid[idx]*float64(len(ramp)-1)+0.5)])
			}
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	return b.String()
}

// arenaDims extracts the bounding box of the node positions (worlds do
// not export their arena; positions are what matters for display).
func arenaDims(w *network.World) (width, height, minX, minY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for u := 0; u < w.N(); u++ {
		p := w.Pos(network.NodeID(u))
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	width = maxX - minX
	height = maxY - minY
	if width <= 0 {
		width = 1
	}
	if height <= 0 {
		height = 1
	}
	return width, height, minX, minY
}

// Bars renders labelled values as a horizontal bar chart, scaled so the
// largest value spans width characters.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if width <= 0 {
		width = 40
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	var b strings.Builder
	for i, l := range labels {
		n := 0
		if maxVal > 0 {
			n = int(values[i] / maxVal * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %s %.3g\n", maxLabel, l, strings.Repeat("█", n), values[i])
	}
	return b.String()
}

// Chart renders one or more series as a multi-row ASCII line chart with a
// y-axis from 0 to 1. Each series gets a distinct glyph.
func Chart(names []string, series [][]float64, width, height int) string {
	if len(series) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	glyphs := []byte{'*', 'o', '+', 'x', '~', '^'}
	cells := make([][]byte, height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", width))
	}
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if maxLen == 0 {
		return ""
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for col := 0; col < width; col++ {
			idx := col * (maxLen - 1) / max(1, width-1)
			if idx >= len(s) {
				idx = len(s) - 1
			}
			if idx < 0 {
				continue
			}
			row := int(clamp01(s[idx]) * float64(height-1))
			cells[height-1-row][col] = g
		}
	}
	var b strings.Builder
	for i, row := range cells {
		label := "      "
		if i == 0 {
			label = "1.0 | "
		} else if i == height-1 {
			label = "0.0 | "
		} else {
			label = "    | "
		}
		b.WriteString(label)
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("      " + strings.Repeat("-", width) + "\n")
	var legend []string
	for i, n := range names {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], n))
	}
	b.WriteString("      " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
