package viz

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/network"
	"repro/internal/radio"
)

func testWorld(t *testing.T) *network.World {
	t.Helper()
	pos := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}, {X: 20, Y: 0}}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Square(20),
		Positions: pos,
		Radios:    []radio.Radio{radio.New(15), radio.New(15), radio.New(15)},
		Movers:    []mobility.Mover{mobility.Static{}, mobility.Static{}, mobility.Static{}},
		Gateways:  []network.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1}, 10)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline runes = %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	if Sparkline(nil, 10) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Fatal("degenerate inputs should render empty")
	}
	// Downsampling caps width.
	long := make([]float64, 1000)
	if n := len([]rune(Sparkline(long, 50))); n > 50 {
		t.Fatalf("width not respected: %d", n)
	}
	// Clamping.
	s = Sparkline([]float64{-5, 7}, 10)
	runes = []rune(s)
	if runes[0] != '▁' || runes[1] != '█' {
		t.Fatalf("clamping wrong: %q", s)
	}
}

func TestSparklineScaled(t *testing.T) {
	s := SparklineScaled([]float64{100, 200, 300}, 10)
	runes := []rune(s)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("scaling wrong: %q", s)
	}
	// Constant series renders all-low, not a panic.
	s = SparklineScaled([]float64{5, 5, 5}, 10)
	for _, r := range s {
		if r != '▁' {
			t.Fatalf("constant series wrong: %q", s)
		}
	}
	if SparklineScaled(nil, 10) != "" {
		t.Fatal("empty input should render empty")
	}
}

func TestHeatmap(t *testing.T) {
	w := testWorld(t)
	out := Heatmap(w, []float64{1, 0.5, 0}, 20, 10)
	if !strings.Contains(out, "G") {
		t.Fatal("gateway marker missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 { // 10 rows + 2 borders
		t.Fatalf("heatmap rows = %d", len(lines))
	}
	for _, l := range lines {
		if len([]rune(l)) != 22 {
			t.Fatalf("ragged heatmap line %q", l)
		}
	}
	// Defaults kick in for non-positive dims.
	if Heatmap(w, nil, 0, 0) == "" {
		t.Fatal("default dims failed")
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"aa", "b"}, []float64{2, 1}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bars lines = %d", len(lines))
	}
	if strings.Count(lines[0], "█") != 10 {
		t.Fatalf("max bar should span width: %q", lines[0])
	}
	if strings.Count(lines[1], "█") != 5 {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
	if Bars([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Fatal("mismatched inputs should render empty")
	}
	if Bars(nil, nil, 10) != "" {
		t.Fatal("empty inputs should render empty")
	}
	// All-zero values: no panic, no bars.
	if strings.Count(Bars([]string{"z"}, []float64{0}, 10), "█") != 0 {
		t.Fatal("zero values should have no bars")
	}
}

func TestChart(t *testing.T) {
	out := Chart([]string{"up", "down"},
		[][]float64{{0, 0.5, 1}, {1, 0.5, 0}}, 30, 8)
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // 8 rows + axis + legend
		t.Fatalf("chart rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "1.0 |") || !strings.HasPrefix(lines[7], "0.0 |") {
		t.Fatalf("axis labels wrong:\n%s", out)
	}
	if Chart(nil, nil, 10, 5) != "" {
		t.Fatal("empty chart should render empty")
	}
	if Chart([]string{"a"}, [][]float64{{}}, 10, 5) != "" {
		t.Fatal("empty series should render empty")
	}
}

func TestChartSingleColumn(t *testing.T) {
	// width 1 exercises the division guard.
	out := Chart([]string{"s"}, [][]float64{{0.5}}, 1, 3)
	if out == "" {
		t.Fatal("single-column chart failed")
	}
}
