// Package baseline implements the non-agent comparators the overhead
// experiments measure the mobile agents against: a synchronous flooding
// protocol for topology mapping and a distance-vector routing protocol
// (DSDV-lite) for gateway routing. Both are classical, message-heavy
// solutions; the agents' claim is not that they beat these on raw speed
// but that they approach them at a fraction of the traffic.
package baseline

import (
	"repro/internal/network"
)

// NodeID aliases network.NodeID.
type NodeID = network.NodeID

// FloodResult reports a flooding-based mapping run.
type FloodResult struct {
	// Rounds is the number of synchronous rounds until every node knew
	// the whole topology (-1 if the budget ran out).
	Rounds int
	// Messages counts node-record transmissions over links.
	Messages int
	// Bytes estimates the traffic (records × record size).
	Bytes int
	// Complete reports whether flooding finished within the budget.
	Complete bool
}

// recordBytes mirrors the agents' per-record cost model so the comparison
// is apples-to-apples.
const recordBytes = 32

// FloodMap runs synchronous flooding on the world's current topology:
// every node starts knowing its own adjacency record and, each round,
// forwards every record it learned in the previous round to all of its
// out-neighbours. It returns when every node holds all n records.
//
// This is the centralised-knowledge baseline for the mapping scenario:
// optimal in rounds (network diameter) but costing O(n·m) messages.
func FloodMap(w *network.World, maxRounds int) FloodResult {
	n := w.N()
	topo := w.Topology()
	if maxRounds <= 0 {
		maxRounds = 4 * n
	}
	// known[u] marks which records node u holds; fresh are last round's.
	known := make([][]bool, n)
	fresh := make([][]NodeID, n)
	for u := 0; u < n; u++ {
		known[u] = make([]bool, n)
		known[u][u] = true
		fresh[u] = []NodeID{NodeID(u)}
	}
	complete := func() bool {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if !known[u][v] {
					return false
				}
			}
		}
		return true
	}
	res := FloodResult{Rounds: -1}
	if complete() { // single-node network
		res.Rounds, res.Complete = 0, true
		return res
	}
	next := make([][]NodeID, n)
	for round := 1; round <= maxRounds; round++ {
		for i := range next {
			next[i] = nil
		}
		for u := 0; u < n; u++ {
			if len(fresh[u]) == 0 {
				continue
			}
			for _, v := range topo.Out(NodeID(u)) {
				for _, rec := range fresh[u] {
					res.Messages++
					if !known[v][rec] {
						known[v][rec] = true
						next[v] = append(next[v], rec)
					}
				}
			}
		}
		fresh, next = next, fresh
		if complete() {
			res.Rounds, res.Complete = round, true
			break
		}
	}
	res.Bytes = res.Messages * recordBytes
	return res
}
