package baseline

import (
	"repro/internal/network"
	"repro/internal/routing"
)

// DistanceVector is a DSDV-style routing baseline: every step each node
// exchanges its gateway-distance vector with its bidirectional neighbours
// and adopts the best offers. It is the message-heavy comparator for the
// agent-based router — near-ideal connectivity at a cost of
// O(edges × gateways) messages per step, versus the agents'
// O(population) migrations.
type DistanceVector struct {
	w      *network.World
	maxAge int

	dist    [][]int32  // node → gateway index → hop distance (-1 unknown)
	via     [][]NodeID // node → gateway index → next hop
	age     [][]int32  // node → gateway index → steps since refreshed
	gateIdx map[NodeID]int

	// Messages counts vector transmissions over links so far.
	Messages int
}

// NewDistanceVector initialises the protocol over w.
// maxAge is the route expiry in steps (entries not re-confirmed within it
// are dropped); <= 0 means 3.
func NewDistanceVector(w *network.World, maxAge int) *DistanceVector {
	if maxAge <= 0 {
		maxAge = 3
	}
	g := len(w.Gateways())
	dv := &DistanceVector{
		w:       w,
		maxAge:  maxAge,
		dist:    make([][]int32, w.N()),
		via:     make([][]NodeID, w.N()),
		age:     make([][]int32, w.N()),
		gateIdx: make(map[NodeID]int, g),
	}
	for i, gw := range w.Gateways() {
		dv.gateIdx[gw] = i
	}
	for u := 0; u < w.N(); u++ {
		dv.dist[u] = make([]int32, g)
		dv.via[u] = make([]NodeID, g)
		dv.age[u] = make([]int32, g)
		for k := range dv.dist[u] {
			dv.dist[u][k] = -1
		}
	}
	return dv
}

// Step runs one synchronous exchange round against the world's current
// topology. Call once per world step, before the world moves.
func (dv *DistanceVector) Step() {
	n := dv.w.N()
	topo := dv.w.Topology()
	g := len(dv.w.Gateways())

	// Age out stale routes; gateways always know themselves.
	for u := 0; u < n; u++ {
		for k := 0; k < g; k++ {
			if dv.dist[u][k] >= 0 {
				dv.age[u][k]++
				if dv.age[u][k] > int32(dv.maxAge) {
					dv.dist[u][k] = -1
				}
			}
		}
	}
	for _, gw := range dv.w.Gateways() {
		k := dv.gateIdx[gw]
		dv.dist[gw][k] = 0
		dv.age[gw][k] = 0
		dv.via[gw][k] = gw
	}

	// Synchronous exchange: node v learns from neighbour u when the link
	// is bidirectional (v needs v→u to forward and u→v to hear the
	// advertisement). Offers are computed against the pre-step snapshot.
	type cell struct {
		dist int32
		via  NodeID
	}
	offers := make([][]cell, n)
	for v := 0; v < n; v++ {
		offers[v] = make([]cell, g)
		for k := range offers[v] {
			offers[v][k] = cell{dist: -1}
		}
		for _, u := range topo.Out(NodeID(v)) {
			if !topo.HasEdge(u, NodeID(v)) {
				continue
			}
			dv.Messages++
			for k := 0; k < g; k++ {
				if dv.dist[u][k] < 0 {
					continue
				}
				d := dv.dist[u][k] + 1
				if offers[v][k].dist < 0 || d < offers[v][k].dist {
					offers[v][k] = cell{dist: d, via: u}
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if dv.w.IsGateway(NodeID(v)) {
			continue
		}
		for k := 0; k < g; k++ {
			o := offers[v][k]
			if o.dist < 0 {
				continue
			}
			if dv.dist[v][k] < 0 || o.dist <= dv.dist[v][k] {
				dv.dist[v][k] = o.dist
				dv.via[v][k] = o.via
				dv.age[v][k] = 0
			}
		}
	}
}

// Tables exports the protocol state as routing tables so the same
// connectivity metrics apply to baseline and agents alike.
func (dv *DistanceVector) Tables(step int) *routing.Tables {
	ts := routing.NewTables(dv.w.N(), len(dv.w.Gateways()))
	for u := 0; u < dv.w.N(); u++ {
		for k, gw := range dv.w.Gateways() {
			if dv.dist[u][k] < 0 || dv.w.IsGateway(NodeID(u)) {
				continue
			}
			ts.At(NodeID(u)).Update(network.Entry{
				Gateway: gw,
				NextHop: dv.via[u][k],
				Hops:    int(dv.dist[u][k]),
				Updated: step - int(dv.age[u][k]),
			})
		}
	}
	return ts
}

// Connectivity returns the end-to-end connectivity of the current
// distance-vector tables.
func (dv *DistanceVector) Connectivity(step int) float64 {
	return routing.Connectivity(dv.w, dv.Tables(step))
}
