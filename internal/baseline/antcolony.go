package baseline

import (
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/routing"
)

// AntColony is a simplified AntHocNet-style router (Di Caro, Ducatelle,
// Gambardella [9]; Amin & Mikler [11] — both discussed in the paper's
// related work): forward ants wander from random nodes biased by
// pheromone; when one reaches a gateway a backward ant retraces the path,
// depositing pheromone on each node's choice of next hop toward that
// gateway; pheromone evaporates every step; data packets follow the
// strongest trail. It is the nature-inspired comparator for the paper's
// deliberate (history-driven) agents.
type AntColony struct {
	w           *network.World
	evaporation float64
	deposit     float64
	ttl         int
	stream      *rng.Stream

	// pher[u][v] is the pheromone on choosing v as u's next hop; gwHint
	// remembers which gateway that trail led to.
	pher   []map[network.NodeID]float64
	gwHint []map[network.NodeID]network.NodeID
	ants   []ant

	// Messages counts ant hops (forward and backward), the protocol's
	// traffic unit.
	Messages int
}

type ant struct {
	at   network.NodeID
	path []network.NodeID
}

// NewAntColony creates a colony of the given size. evaporation is the
// per-step pheromone retention loss (e.g. 0.02); ttl caps a forward
// ant's path before it is respawned.
func NewAntColony(w *network.World, ants int, evaporation float64, ttl int, stream *rng.Stream) *AntColony {
	if ttl <= 0 {
		ttl = 64
	}
	c := &AntColony{
		w:           w,
		evaporation: evaporation,
		deposit:     1,
		ttl:         ttl,
		stream:      stream,
		pher:        make([]map[network.NodeID]float64, w.N()),
		gwHint:      make([]map[network.NodeID]network.NodeID, w.N()),
		ants:        make([]ant, ants),
	}
	for i := range c.pher {
		c.pher[i] = make(map[network.NodeID]float64)
		c.gwHint[i] = make(map[network.NodeID]network.NodeID)
	}
	for i := range c.ants {
		c.ants[i] = c.spawn()
	}
	return c
}

// spawn places a fresh forward ant on a random node.
func (c *AntColony) spawn() ant {
	start := network.NodeID(c.stream.Intn(c.w.N()))
	return ant{at: start, path: []network.NodeID{start}}
}

// Step advances every ant one hop and evaporates pheromone. Call once per
// world step, before the world moves.
func (c *AntColony) Step() {
	for i := range c.ants {
		c.stepAnt(&c.ants[i])
	}
	// Evaporation; fully dried-out trails are deleted so tables shrink.
	for u := range c.pher {
		for v, tau := range c.pher[u] {
			tau *= 1 - c.evaporation
			if tau < 1e-4 {
				delete(c.pher[u], v)
				delete(c.gwHint[u], v)
			} else {
				c.pher[u][v] = tau
			}
		}
	}
}

// stepAnt moves one forward ant, retracing as a backward ant when it
// finds a gateway.
func (c *AntColony) stepAnt(a *ant) {
	nbrs := c.w.Neighbors(a.at)
	if len(nbrs) == 0 || len(a.path) >= c.ttl {
		*a = c.spawn()
		return
	}
	next := c.pick(a.at, nbrs)
	c.Messages++
	// Loop compaction keeps deposited trails cycle-free.
	trimmed := false
	for i, u := range a.path {
		if u == next {
			a.path = a.path[:i+1]
			trimmed = true
			break
		}
	}
	if !trimmed {
		a.path = append(a.path, next)
	}
	a.at = next
	if c.w.IsGateway(next) {
		c.retrace(a.path, next)
		*a = c.spawn()
	}
}

// pick chooses the next hop proportionally to pheromone (plus a floor so
// unexplored links keep being sampled).
func (c *AntColony) pick(u network.NodeID, nbrs []network.NodeID) network.NodeID {
	const floor = 0.05
	total := 0.0
	for _, v := range nbrs {
		total += c.pher[u][v] + floor
	}
	r := c.stream.Float64() * total
	for _, v := range nbrs {
		r -= c.pher[u][v] + floor
		if r <= 0 {
			return v
		}
	}
	return nbrs[len(nbrs)-1]
}

// retrace runs the backward ant: walk the found path from the gateway end
// back, depositing pheromone on each node's forward choice. The deposit
// scales with trail quality (shorter path to the gateway ⇒ more
// pheromone), as in AntHocNet.
func (c *AntColony) retrace(path []network.NodeID, gw network.NodeID) {
	for i := 0; i < len(path)-1; i++ {
		u, v := path[i], path[i+1]
		hopsToGW := len(path) - 1 - i
		c.pher[u][v] += c.deposit / float64(hopsToGW)
		c.gwHint[u][v] = gw
		c.Messages++
	}
}

// Tables exports the colony's strongest trails as routing tables so the
// same connectivity metrics apply to ants and agents alike. Each node
// contributes its highest-pheromone next hop.
func (c *AntColony) Tables(step int) *routing.Tables {
	ts := routing.NewTables(c.w.N(), 1)
	for u := range c.pher {
		if c.w.IsGateway(network.NodeID(u)) {
			continue
		}
		best := network.NodeID(-1)
		bestTau := 0.0
		for v, tau := range c.pher[u] {
			if tau > bestTau || (tau == bestTau && best >= 0 && v < best) {
				best, bestTau = v, tau
			}
		}
		if best < 0 {
			continue
		}
		ts.At(network.NodeID(u)).Update(network.Entry{
			Gateway: c.gwHint[u][best],
			NextHop: best,
			Hops:    1, // pheromone does not encode distance; hops are nominal
			Updated: step,
		})
	}
	return ts
}

// Connectivity returns end-to-end connectivity over the colony's tables.
func (c *AntColony) Connectivity(step int) float64 {
	return routing.Connectivity(c.w, c.Tables(step))
}

// LocalConnectivity returns next-hop-liveness connectivity over the
// colony's tables.
func (c *AntColony) LocalConnectivity(step int) float64 {
	return routing.LocalConnectivity(c.w, c.Tables(step))
}
