package baseline

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/radio"
)

// chain builds a static bidirectional chain of n nodes, gateway at 0.
func chain(t *testing.T, n int) *network.World {
	t.Helper()
	pos := make([]geom.Point, n)
	radios := make([]radio.Radio, n)
	movers := make([]mobility.Mover, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * 10, Y: 0}
		radios[i] = radio.New(10.5)
		movers[i] = mobility.Static{}
	}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Rect{MinX: 0, MinY: -1, MaxX: float64(n) * 10, MaxY: 1},
		Positions: pos,
		Radios:    radios,
		Movers:    movers,
		Gateways:  []NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFloodMapChain(t *testing.T) {
	w := chain(t, 6)
	res := FloodMap(w, 0)
	if !res.Complete {
		t.Fatal("flooding did not complete on a connected chain")
	}
	// A 6-chain has diameter 5: records from one end need 5 rounds.
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", res.Rounds)
	}
	if res.Messages == 0 || res.Bytes != res.Messages*recordBytes {
		t.Fatalf("message accounting wrong: %+v", res)
	}
}

func TestFloodMapSingleNode(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Square(1),
		Positions: pos,
		Radios:    []radio.Radio{radio.New(1)},
		Movers:    []mobility.Mover{mobility.Static{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := FloodMap(w, 0)
	if !res.Complete || res.Rounds != 0 || res.Messages != 0 {
		t.Fatalf("single node should finish instantly: %+v", res)
	}
}

func TestFloodMapDisconnected(t *testing.T) {
	// Nodes out of radio range: flooding can never complete.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Square(100),
		Positions: pos,
		Radios:    []radio.Radio{radio.New(1), radio.New(1)},
		Movers:    []mobility.Mover{mobility.Static{}, mobility.Static{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := FloodMap(w, 10)
	if res.Complete || res.Rounds != -1 {
		t.Fatalf("disconnected network reported complete: %+v", res)
	}
}

func TestFloodMapGeneratedWorld(t *testing.T) {
	w, err := netgen.Generate(netgen.Spec{
		N: 80, TargetEdges: 560, ArenaSide: 60, RangeSpread: 0.25, RequireStrong: true,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := FloodMap(w, 0)
	if !res.Complete {
		t.Fatal("flooding failed on strongly connected world")
	}
	if res.Rounds <= 0 || res.Rounds > 40 {
		t.Fatalf("implausible round count %d", res.Rounds)
	}
	// Flooding must move at least one record per (node, record) pair
	// beyond the first.
	if res.Messages < w.N()*(w.N()-1) {
		t.Fatalf("message count %d implausibly low", res.Messages)
	}
}

func TestDistanceVectorChainConverges(t *testing.T) {
	w := chain(t, 6)
	dv := NewDistanceVector(w, 3)
	for i := 0; i < 6; i++ {
		dv.Step()
	}
	if got := dv.Connectivity(6); got != 1 {
		t.Fatalf("DV connectivity on chain = %v, want 1", got)
	}
	ts := dv.Tables(6)
	// Node 5 must route via node 4 with 5 hops.
	e, ok := ts.At(5).Lookup(0)
	if !ok || e.NextHop != 4 || e.Hops != 5 {
		t.Fatalf("entry at node 5 = %+v, %v", e, ok)
	}
	if dv.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

func TestDistanceVectorConvergesGradually(t *testing.T) {
	w := chain(t, 8)
	dv := NewDistanceVector(w, 3)
	dv.Step()
	early := dv.Connectivity(1)
	for i := 0; i < 7; i++ {
		dv.Step()
	}
	late := dv.Connectivity(8)
	if early >= late {
		t.Fatalf("DV should converge gradually: early %v, late %v", early, late)
	}
}

func TestDistanceVectorExpiry(t *testing.T) {
	// Build a 2-node world where the link dies from battery decay; the
	// route must expire with it.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 9, Y: 0}}
	w, err := network.NewWorld(network.Config{
		Arena:     geom.Square(20),
		Positions: pos,
		Radios:    []radio.Radio{radio.New(10), radio.NewBattery(10, 0.05, 0)},
		Movers:    []mobility.Mover{mobility.Static{}, mobility.Static{}},
		Gateways:  []NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	dv := NewDistanceVector(w, 2)
	dv.Step()
	if got := dv.Connectivity(0); got != 1 {
		t.Fatalf("initial DV connectivity = %v", got)
	}
	// Decay until the 1→0 link is gone (range 10·0.85 < 9 after 3 steps),
	// then let the route age out.
	for i := 0; i < 6; i++ {
		w.Step()
		dv.Step()
	}
	if got := dv.Connectivity(6); got != 0 {
		t.Fatalf("expired route still counted: %v", got)
	}
}

func TestDistanceVectorOnMANET(t *testing.T) {
	w, err := netgen.Generate(netgen.Routing250(), 42)
	if err != nil {
		t.Fatal(err)
	}
	dv := NewDistanceVector(w, 3)
	for i := 0; i < 30; i++ {
		dv.Step()
		w.Step()
	}
	got := dv.Connectivity(30)
	ideal := w.ConnectivityToGateways()
	if got < ideal-0.15 {
		t.Fatalf("DV connectivity %v too far below ideal %v", got, ideal)
	}
}
