package baseline

import (
	"testing"

	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/rng"
	"repro/internal/routing"
)

func TestAntColonyChainConverges(t *testing.T) {
	w := chain(t, 6)
	c := NewAntColony(w, 8, 0.02, 32, rng.New(1))
	for i := 0; i < 300; i++ {
		c.Step()
	}
	if got := c.Connectivity(300); got < 0.8 {
		t.Fatalf("ant connectivity on chain = %v", got)
	}
	if c.Messages == 0 {
		t.Fatal("no ant traffic counted")
	}
}

func TestAntColonyTablesPointTowardGateway(t *testing.T) {
	w := chain(t, 5)
	c := NewAntColony(w, 6, 0.02, 32, rng.New(2))
	for i := 0; i < 400; i++ {
		c.Step()
	}
	ts := c.Tables(400)
	// On a chain with the gateway at 0, strong trails must point down.
	downhill := 0
	for u := network.NodeID(1); u < 5; u++ {
		if e, ok := ts.At(u).Lookup(0); ok && e.NextHop == u-1 {
			downhill++
		}
	}
	if downhill < 3 {
		t.Fatalf("only %d/4 nodes point toward the gateway", downhill)
	}
}

func TestAntColonyEvaporationForgetsDeadTrails(t *testing.T) {
	w := chain(t, 4)
	c := NewAntColony(w, 4, 0.3, 32, rng.New(3)) // aggressive evaporation
	for i := 0; i < 100; i++ {
		c.Step()
	}
	// Freeze the ants (no new deposits) and evaporate.
	c.ants = nil
	for i := 0; i < 100; i++ {
		c.Step()
	}
	for u := range c.pher {
		if len(c.pher[u]) != 0 {
			t.Fatalf("pheromone survived evaporation at node %d: %v", u, c.pher[u])
		}
	}
	if got := c.Connectivity(200); got != 0 {
		t.Fatalf("connectivity after full evaporation = %v", got)
	}
}

func TestAntColonyDeterministic(t *testing.T) {
	run := func() (float64, int) {
		w, err := netgen.Generate(netgen.Routing250(), 4)
		if err != nil {
			t.Fatal(err)
		}
		c := NewAntColony(w, 50, 0.02, 64, rng.New(9))
		for i := 0; i < 100; i++ {
			c.Step()
			w.Step()
		}
		return c.Connectivity(100), c.Messages
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("colony not deterministic: %v/%d vs %v/%d", c1, m1, c2, m2)
	}
}

func TestAntColonyOnMANET(t *testing.T) {
	w, err := netgen.Generate(netgen.Routing250(), 42)
	if err != nil {
		t.Fatal(err)
	}
	c := NewAntColony(w, 100, 0.02, 64, rng.New(5))
	var conn []float64
	for i := 0; i < 300; i++ {
		c.Step()
		if i >= 150 {
			conn = append(conn, c.LocalConnectivity(i))
		}
		w.Step()
	}
	mean := 0.0
	for _, v := range conn {
		mean += v
	}
	mean /= float64(len(conn))
	if mean < 0.3 {
		t.Fatalf("ant colony too weak on MANET: %v", mean)
	}
}

func TestAntColonyStrandedAntRespawns(t *testing.T) {
	// A world where one node has no out-edges: ants landing there must
	// respawn, not wedge.
	w := chain(t, 3)
	c := NewAntColony(w, 2, 0.02, 4, rng.New(7)) // tiny TTL forces respawns
	for i := 0; i < 50; i++ {
		c.Step()
	}
	// Reaching here without a panic or infinite loop is the assertion;
	// sanity-check ants still exist and move.
	if c.Messages == 0 {
		t.Fatal("ants never moved")
	}
}

func TestAntColonyTablesUsableByTraffic(t *testing.T) {
	w := chain(t, 5)
	c := NewAntColony(w, 6, 0.02, 32, rng.New(8))
	for i := 0; i < 300; i++ {
		c.Step()
	}
	ts := c.Tables(300)
	visited := make([]bool, w.N())
	if !routing.Reaches(w, ts, 4, 10, visited) {
		t.Fatal("strongest trails do not carry a walk to the gateway")
	}
}
