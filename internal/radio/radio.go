// Package radio models each node's transmitter: a disc of a given radius
// whose reach shrinks as the node's battery drains. Heterogeneous base
// ranges make links asymmetric (u can hear v without v hearing u), turning
// the topology into a directed graph — one of the paper's departures from
// Minar et al.'s environment.
package radio

import "repro/internal/rng"

// Radio is one node's transmitter. Construct with New; the zero value is a
// dead radio (zero range).
type Radio struct {
	base     float64 // range at full battery
	fraction float64 // remaining battery in [0, 1]
	decay    float64 // battery fraction lost per step
	floor    float64 // battery never drains below this fraction
	jam      float64 // external degradation factor in [0, 1]; 1 = none
}

// New returns a radio with the given base range that never decays.
func New(baseRange float64) Radio {
	return Radio{base: baseRange, fraction: 1, floor: 0, jam: 1}
}

// NewBattery returns a radio whose battery drains decayPerStep of its full
// charge each step, but never below floorFraction. Its effective range is
// base × battery fraction, so links sourced at this node drop over time —
// the paper's "degradation on a percentage of radio links due to battery
// power".
func NewBattery(baseRange, decayPerStep, floorFraction float64) Radio {
	if floorFraction < 0 {
		floorFraction = 0
	}
	if floorFraction > 1 {
		floorFraction = 1
	}
	return Radio{base: baseRange, fraction: 1, decay: decayPerStep, floor: floorFraction, jam: 1}
}

// Range returns the current transmission radius: the base range scaled by
// both the remaining battery and any external degradation.
func (r Radio) Range() float64 { return r.base * r.fraction * r.jam }

// BaseRange returns the full-battery transmission radius.
func (r Radio) BaseRange() float64 { return r.base }

// Battery returns the remaining battery fraction in [0, 1].
func (r Radio) Battery() float64 { return r.fraction }

// Decays reports whether this radio loses charge over time.
func (r Radio) Decays() bool { return r.decay > 0 }

// Step drains one step of battery.
func (r *Radio) Step() {
	if r.decay == 0 {
		return
	}
	r.fraction -= r.decay
	if r.fraction < r.floor {
		r.fraction = r.floor
	}
}

// Reaches reports whether a node with this radio at distance d can be
// heard, i.e. d is within the current range.
func (r Radio) Reaches(d float64) bool { return d <= r.Range() }

// Degrade scales the radio's range by factor (clamped to [0, 1]) on top of
// any existing degradation — external interference or damage, independent
// of battery charge, so it composes with (and survives) battery decay.
// Degradation never increases range, preserving the invariant that a
// radio's range stays within its base range.
func (r *Radio) Degrade(factor float64) {
	if factor < 0 {
		factor = 0
	}
	if factor > 1 {
		factor = 1
	}
	r.jam *= factor
}

// Restore removes all external degradation, returning the range to
// base × battery fraction.
func (r *Radio) Restore() { r.jam = 1 }

// Degraded reports whether any external degradation is active.
func (r Radio) Degraded() bool { return r.jam != 1 }

// Profile describes how a population of radios is sampled. It is the
// knob set experiments use to build heterogeneous networks.
type Profile struct {
	// MinRange and MaxRange bound the uniformly sampled base range.
	// Equal values give a homogeneous network (Minar's assumption).
	MinRange, MaxRange float64
	// BatteryFraction of nodes get a decaying battery.
	BatteryFraction float64
	// DecayPerStep is the per-step charge loss for battery nodes.
	DecayPerStep float64
	// FloorFraction is the minimum battery level for battery nodes.
	FloorFraction float64
}

// Sample draws n radios from the profile. The battery flag for node i is
// drawn independently with probability BatteryFraction.
func (p Profile) Sample(n int, s *rng.Stream) []Radio {
	radios := make([]Radio, n)
	for i := range radios {
		base := p.MinRange
		if p.MaxRange > p.MinRange {
			base = s.Range(p.MinRange, p.MaxRange)
		}
		if p.BatteryFraction > 0 && s.Bool(p.BatteryFraction) {
			radios[i] = NewBattery(base, p.DecayPerStep, p.FloorFraction)
		} else {
			radios[i] = New(base)
		}
	}
	return radios
}
