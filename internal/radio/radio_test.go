package radio

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewFullRange(t *testing.T) {
	r := New(12)
	if r.Range() != 12 || r.Battery() != 1 || r.Decays() {
		t.Fatalf("unexpected state: range=%v battery=%v", r.Range(), r.Battery())
	}
	for i := 0; i < 100; i++ {
		r.Step()
	}
	if r.Range() != 12 {
		t.Fatalf("non-battery radio decayed to %v", r.Range())
	}
}

func TestZeroValueDead(t *testing.T) {
	var r Radio
	if r.Range() != 0 || r.Reaches(0.1) {
		t.Fatal("zero-value radio should be dead")
	}
}

func TestBatteryDecay(t *testing.T) {
	r := NewBattery(10, 0.01, 0.5)
	if !r.Decays() {
		t.Fatal("battery radio should decay")
	}
	r.Step()
	if math.Abs(r.Range()-9.9) > 1e-9 {
		t.Fatalf("range after one step = %v, want 9.9", r.Range())
	}
	for i := 0; i < 1000; i++ {
		r.Step()
	}
	if math.Abs(r.Range()-5) > 1e-9 {
		t.Fatalf("range should floor at 5, got %v", r.Range())
	}
	if math.Abs(r.Battery()-0.5) > 1e-9 {
		t.Fatalf("battery should floor at 0.5, got %v", r.Battery())
	}
}

func TestBatteryFloorClamping(t *testing.T) {
	r := NewBattery(10, 0.5, -1)
	for i := 0; i < 10; i++ {
		r.Step()
	}
	if r.Range() != 0 {
		t.Fatalf("negative floor should clamp to 0, range=%v", r.Range())
	}
	r2 := NewBattery(10, 0.5, 2)
	r2.Step()
	if r2.Range() != 10 {
		t.Fatalf("floor > 1 should clamp to 1, range=%v", r2.Range())
	}
}

func TestReaches(t *testing.T) {
	r := New(5)
	tests := []struct {
		d    float64
		want bool
	}{
		{0, true}, {5, true}, {5.0001, false}, {100, false},
	}
	for _, tt := range tests {
		if got := r.Reaches(tt.d); got != tt.want {
			t.Fatalf("Reaches(%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestProfileHomogeneous(t *testing.T) {
	p := Profile{MinRange: 7, MaxRange: 7}
	radios := p.Sample(50, rng.New(1))
	for i, r := range radios {
		if r.Range() != 7 {
			t.Fatalf("radio %d range %v, want 7", i, r.Range())
		}
		if r.Decays() {
			t.Fatalf("radio %d should not decay", i)
		}
	}
}

func TestProfileHeterogeneousRanges(t *testing.T) {
	p := Profile{MinRange: 5, MaxRange: 15}
	radios := p.Sample(200, rng.New(2))
	distinct := map[float64]bool{}
	for i, r := range radios {
		if r.Range() < 5 || r.Range() >= 15 {
			t.Fatalf("radio %d range %v outside [5,15)", i, r.Range())
		}
		distinct[r.Range()] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("expected diverse ranges, got %d distinct", len(distinct))
	}
}

func TestProfileBatteryFraction(t *testing.T) {
	p := Profile{MinRange: 10, MaxRange: 10, BatteryFraction: 0.4, DecayPerStep: 0.01}
	radios := p.Sample(2000, rng.New(3))
	battery := 0
	for _, r := range radios {
		if r.Decays() {
			battery++
		}
	}
	frac := float64(battery) / 2000
	if math.Abs(frac-0.4) > 0.05 {
		t.Fatalf("battery fraction %v, want ~0.4", frac)
	}
}

func TestProfileDeterministic(t *testing.T) {
	p := Profile{MinRange: 5, MaxRange: 15, BatteryFraction: 0.3, DecayPerStep: 0.01}
	a := p.Sample(100, rng.New(9))
	b := p.Sample(100, rng.New(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("samples diverged at %d", i)
		}
	}
}
