package knowledge

import "testing"

// FuzzTrailOps drives a Trail with an arbitrary operation tape and checks
// its structural invariants after every operation.
func FuzzTrailOps(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 2, 3, 1, 0})
	f.Add(uint8(2), []byte{200, 200, 200})
	f.Add(uint8(16), []byte{})
	f.Fuzz(func(t *testing.T, capacity uint8, tape []byte) {
		tr := NewTrail(int(capacity))
		for i, op := range tape {
			node := NodeID(op % 32)
			if op >= 224 { // ~1/8 of ops are gateway visits
				tr.ResetAt(node)
			} else {
				tr.Extend(node)
			}
			// Invariants after every op.
			if tr.Len() > tr.Capacity() {
				t.Fatalf("op %d: len %d > capacity %d", i, tr.Len(), tr.Capacity())
			}
			if tr.Anchored() {
				if tr.Hops() != tr.Len()-1 {
					t.Fatalf("op %d: anchored hops %d != len-1 %d", i, tr.Hops(), tr.Len()-1)
				}
				if tr.Gateway() < 0 {
					t.Fatalf("op %d: anchored but no gateway", i)
				}
			} else if tr.Hops() != -1 || tr.Gateway() != -1 {
				t.Fatalf("op %d: unanchored trail reports a route", i)
			}
			seen := map[NodeID]bool{}
			for _, u := range tr.Nodes() {
				if seen[u] {
					t.Fatalf("op %d: duplicate node %d in trail %v", i, u, tr.Nodes())
				}
				seen[u] = true
			}
			if tr.Len() > 0 && tr.Current() != tr.At(tr.Len()-1) {
				t.Fatalf("op %d: Current mismatch", i)
			}
		}
	})
}

// FuzzVisitsOps drives a Visits memory with an arbitrary tape and checks
// the capacity bound and recency semantics.
func FuzzVisitsOps(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5})
	f.Add(uint8(0), []byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, capacity uint8, tape []byte) {
		v := NewVisits(int(capacity))
		highest := map[NodeID]int{}
		for step, op := range tape {
			node := NodeID(op % 16)
			v.Record(node, step)
			if prev, ok := highest[node]; !ok || step > prev {
				highest[node] = step
			}
			if capacity > 0 && v.Len() > int(capacity) {
				t.Fatalf("step %d: len %d > capacity %d", step, v.Len(), capacity)
			}
			// Anything remembered must match the true latest step.
			if got, ok := v.Last(node); !ok || got != highest[node] {
				t.Fatalf("step %d: Last(%d) = %d,%v want %d", step, node, got, ok, highest[node])
			}
		}
	})
}
