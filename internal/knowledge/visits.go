package knowledge

import (
	"slices"
	"sort"
)

// Visits is an agent's bounded memory of when it last visited each node.
// It drives the conscientious / super-conscientious / oldest-node policies:
// "go to the neighbour you have never visited, don't remember visiting, or
// visited longest ago."
//
// Capacity 0 means unbounded. When bounded and full, the entry with the
// oldest step is evicted — forgetting the most distant visit first, which
// is what a fixed-size ring of visit records would do.
type Visits struct {
	capacity int
	last     map[NodeID]int
}

// NewVisits returns a visit memory holding at most capacity entries
// (0 = unbounded).
func NewVisits(capacity int) *Visits {
	return &Visits{capacity: capacity, last: make(map[NodeID]int)}
}

// Len returns the number of remembered nodes.
func (v *Visits) Len() int { return len(v.last) }

// Capacity returns the configured bound (0 = unbounded).
func (v *Visits) Capacity() int { return v.capacity }

// Record notes that the agent stood on node u at the given step.
func (v *Visits) Record(u NodeID, step int) {
	if _, ok := v.last[u]; !ok && v.capacity > 0 && len(v.last) >= v.capacity {
		v.evictOldest()
	}
	if prev, ok := v.last[u]; !ok || step > prev {
		v.last[u] = step
	}
}

// Last returns when u was last visited. ok is false if the agent never
// visited u or has forgotten the visit.
func (v *Visits) Last(u NodeID) (step int, ok bool) {
	step, ok = v.last[u]
	return step, ok
}

// evictOldest removes the entry with the smallest step, breaking ties by
// smallest node ID so the choice is deterministic regardless of map
// iteration order.
func (v *Visits) evictOldest() {
	first := true
	var victim NodeID
	victimStep := 0
	for u, s := range v.last {
		if first || s < victimStep || (s == victimStep && u < victim) {
			victim, victimStep, first = u, s, false
		}
	}
	if !first {
		delete(v.last, victim)
	}
}

// MergeFrom folds other's visit records into v, keeping the most recent
// step per node. This is the "become identical after meeting" mechanism of
// super-conscientious (mapping) and communicating oldest-node (routing)
// agents. It returns the number of records that changed v.
//
// Records are applied freshest-first (ties by node ID) rather than in map
// iteration order, so bounded merges evict deterministically.
func (v *Visits) MergeFrom(other *Visits) int {
	entries := make([]visitRec, 0, len(other.last))
	for u, s := range other.last {
		entries = append(entries, visitRec{node: u, step: s})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].step != entries[j].step {
			return entries[i].step > entries[j].step
		}
		return entries[i].node < entries[j].node
	})
	changed := 0
	for _, e := range entries {
		if prev, ok := v.last[e.node]; !ok || e.step > prev {
			// Eviction applies only to brand-new entries.
			if !ok && v.capacity > 0 && len(v.last) >= v.capacity {
				v.evictOldest()
			}
			v.last[e.node] = e.step
			changed++
		}
	}
	return changed
}

type visitRec struct {
	node NodeID
	step int
}

// MergeAll folds the visit memories of a meeting group into their union —
// the most recent step per node — and installs that union in every member,
// bounded to each member's own capacity by dropping the oldest records.
// Afterwards equal-capacity members are identical, which is exactly the
// post-meeting state the paper describes. It returns, per member, how many
// records were added or refreshed. It is much cheaper than pairwise
// MergeFrom for the clumped groups cooperation produces.
func MergeAll(ms []*Visits) []int {
	var s MergeScratch
	return s.MergeAll(ms)
}

// MergeScratch carries the reusable buffers of MergeAll: the union map,
// the sorted record list, and the per-member change counts. Meetings
// happen tens of thousands of times per run, so reusing these is a large
// share of making the simulation loop allocation-free. The zero value is
// ready; the slice MergeAll returns aliases the scratch and is valid until
// the next call.
type MergeScratch struct {
	union   map[NodeID]int
	entries []visitRec
	changed []int
}

// MergeAll is the scratch-buffered form of the package-level MergeAll:
// identical results and member states, zero steady-state allocations.
func (s *MergeScratch) MergeAll(ms []*Visits) []int {
	if s.union == nil {
		s.union = make(map[NodeID]int)
	} else {
		clear(s.union)
	}
	for _, m := range ms {
		for u, st := range m.last {
			if p, ok := s.union[u]; !ok || st > p {
				s.union[u] = st
			}
		}
	}
	entries := s.entries[:0]
	for u, st := range s.union {
		entries = append(entries, visitRec{node: u, step: st})
	}
	slices.SortFunc(entries, func(a, b visitRec) int {
		if a.step != b.step {
			if a.step > b.step {
				return -1
			}
			return 1
		}
		if a.node != b.node {
			if a.node < b.node {
				return -1
			}
			return 1
		}
		return 0
	})
	s.entries = entries
	if cap(s.changed) < len(ms) {
		s.changed = make([]int, len(ms))
	}
	changed := s.changed[:len(ms)]
	for i, m := range ms {
		kept := entries
		if m.capacity > 0 && len(kept) > m.capacity {
			kept = kept[:m.capacity]
		}
		// Count what the union adds or refreshes against the member's
		// pre-meeting state, then rewrite the member in place — the
		// entries are unique per node, so counting first and installing
		// second matches building a fresh map.
		changed[i] = 0
		for _, e := range kept {
			if p, ok := m.last[e.node]; !ok || e.step > p {
				changed[i]++
			}
		}
		clear(m.last)
		for _, e := range kept {
			m.last[e.node] = e.step
		}
	}
	return changed
}

// Clone returns a deep copy.
func (v *Visits) Clone() *Visits {
	c := NewVisits(v.capacity)
	for u, s := range v.last {
		c.last[u] = s
	}
	return c
}
