package knowledge

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestTopologyLearnFirstHand(t *testing.T) {
	k := NewTopology(5)
	if k.KnownCount() != 0 || k.Complete() || k.Fraction() != 0 {
		t.Fatal("fresh knowledge not empty")
	}
	k.LearnFirstHand(2, []NodeID{0, 1})
	if !k.Knows(2) || k.SourceOf(2) != FirstHand || k.KnownCount() != 1 {
		t.Fatal("learn failed")
	}
	if got := k.Neighbors(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("neighbors = %v", got)
	}
	// Relearning the same node doesn't double count.
	k.LearnFirstHand(2, []NodeID{3})
	if k.KnownCount() != 1 || len(k.Neighbors(2)) != 1 {
		t.Fatal("relearn mishandled")
	}
}

func TestTopologyFractionAndComplete(t *testing.T) {
	k := NewTopology(4)
	for i := 0; i < 4; i++ {
		k.LearnFirstHand(NodeID(i), nil)
	}
	if !k.Complete() || k.Fraction() != 1 {
		t.Fatal("complete detection failed")
	}
	empty := NewTopology(0)
	if !empty.Complete() || empty.Fraction() != 1 {
		t.Fatal("empty network should be trivially complete")
	}
}

func TestTopologyMerge(t *testing.T) {
	a, b := NewTopology(4), NewTopology(4)
	a.LearnFirstHand(0, []NodeID{1})
	b.LearnFirstHand(1, []NodeID{2})
	b.LearnFirstHand(0, []NodeID{3}) // conflicting view of node 0

	moved := a.MergeFrom(b)
	if moved != 1 {
		t.Fatalf("moved = %d, want 1 (only node 1)", moved)
	}
	if a.SourceOf(1) != SecondHand {
		t.Fatal("merged knowledge should be second-hand")
	}
	// First-hand view of node 0 must not be overwritten by hearsay.
	if got := a.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("first-hand overwritten: %v", got)
	}
	// Second merge is a no-op.
	if again := a.MergeFrom(b); again != 0 {
		t.Fatalf("idempotence violated: %d", again)
	}
}

func TestTopologyMergeMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 3 + s.Intn(20)
		mk := func() *Topology {
			k := NewTopology(n)
			for i := 0; i < n; i++ {
				if s.Bool(0.5) {
					k.LearnFirstHand(NodeID(i), []NodeID{NodeID(s.Intn(n))})
				}
			}
			return k
		}
		a, b := mk(), mk()
		beforeA := a.KnownCount()
		a.MergeFrom(b)
		if a.KnownCount() < beforeA {
			return false
		}
		// Everything b knows, a now knows.
		for i := 0; i < n; i++ {
			if b.Knows(NodeID(i)) && !a.Knows(NodeID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyMergeCommutativeOnKnownSets(t *testing.T) {
	// The set of known nodes after a∪b equals b∪a even though sources may
	// differ.
	s := rng.New(12)
	n := 15
	mk := func() *Topology {
		k := NewTopology(n)
		for i := 0; i < n; i++ {
			if s.Bool(0.4) {
				k.LearnFirstHand(NodeID(i), nil)
			}
		}
		return k
	}
	a1, b1 := mk(), mk()
	a2, b2 := a1.Clone(), b1.Clone()
	a1.MergeFrom(b1)
	b2.MergeFrom(a2)
	if a1.KnownCount() != b2.KnownCount() {
		t.Fatalf("union sizes differ: %d vs %d", a1.KnownCount(), b2.KnownCount())
	}
	for i := 0; i < n; i++ {
		if a1.Knows(NodeID(i)) != b2.Knows(NodeID(i)) {
			t.Fatalf("union membership differs at %d", i)
		}
	}
}

func TestTopologyReconstruct(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	k := NewTopology(4)
	for u := 0; u < 4; u++ {
		k.LearnFirstHand(NodeID(u), g.Out(NodeID(u)))
	}
	if !k.Reconstruct().Equal(g) {
		t.Fatal("reconstructed graph differs from source")
	}
}

func TestTopologyCloneIndependent(t *testing.T) {
	k := NewTopology(3)
	k.LearnFirstHand(0, []NodeID{1, 2})
	c := k.Clone()
	c.LearnFirstHand(1, nil)
	if k.Knows(1) {
		t.Fatal("clone mutated original")
	}
	adj := c.Neighbors(0)
	adj[0] = 99
	if k.Neighbors(0)[0] == 99 {
		t.Fatal("clone shares adjacency storage")
	}
}

func TestVisitsRecordAndLast(t *testing.T) {
	v := NewVisits(0)
	if _, ok := v.Last(3); ok {
		t.Fatal("fresh memory remembers")
	}
	v.Record(3, 10)
	if s, ok := v.Last(3); !ok || s != 10 {
		t.Fatalf("Last = %d,%v", s, ok)
	}
	v.Record(3, 20)
	if s, _ := v.Last(3); s != 20 {
		t.Fatalf("newer visit not recorded: %d", s)
	}
	// Stale record never rolls back.
	v.Record(3, 5)
	if s, _ := v.Last(3); s != 20 {
		t.Fatalf("stale record rolled back to %d", s)
	}
}

func TestVisitsBounded(t *testing.T) {
	v := NewVisits(3)
	for i := 0; i < 10; i++ {
		v.Record(NodeID(i), i)
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	// The three most recent survive.
	for i := 7; i < 10; i++ {
		if _, ok := v.Last(NodeID(i)); !ok {
			t.Fatalf("recent visit %d evicted", i)
		}
	}
	for i := 0; i < 7; i++ {
		if _, ok := v.Last(NodeID(i)); ok {
			t.Fatalf("old visit %d survived", i)
		}
	}
}

func TestVisitsEvictionDeterministicTies(t *testing.T) {
	// All entries share a step; eviction must pick the smallest node ID.
	run := func() []bool {
		v := NewVisits(3)
		v.Record(5, 1)
		v.Record(2, 1)
		v.Record(9, 1)
		v.Record(7, 2) // forces one eviction
		out := make([]bool, 10)
		for i := 0; i < 10; i++ {
			_, out[i] = v.Last(NodeID(i))
		}
		return out
	}
	a := run()
	for trial := 0; trial < 20; trial++ {
		b := run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("eviction nondeterministic across runs")
			}
		}
	}
	if got := run(); got[2] {
		t.Fatal("tie should evict smallest node ID (2)")
	}
}

func TestVisitsMerge(t *testing.T) {
	a, b := NewVisits(0), NewVisits(0)
	a.Record(1, 10)
	a.Record(2, 5)
	b.Record(2, 8)
	b.Record(3, 1)
	changed := a.MergeFrom(b)
	if changed != 2 {
		t.Fatalf("changed = %d, want 2", changed)
	}
	if s, _ := a.Last(2); s != 8 {
		t.Fatalf("merge should take max: %d", s)
	}
	if s, _ := a.Last(1); s != 10 {
		t.Fatalf("merge damaged unrelated entry: %d", s)
	}
	if _, ok := a.Last(3); !ok {
		t.Fatal("merge dropped new entry")
	}
	// Merging into a bounded memory respects the bound.
	c := NewVisits(2)
	c.Record(9, 100)
	c.MergeFrom(a)
	if c.Len() > 2 {
		t.Fatalf("bounded merge overflowed: %d", c.Len())
	}
}

func TestVisitsMergeIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		a, b := NewVisits(0), NewVisits(0)
		for i := 0; i < 20; i++ {
			if s.Bool(0.5) {
				a.Record(NodeID(s.Intn(10)), s.Intn(100))
			}
			if s.Bool(0.5) {
				b.Record(NodeID(s.Intn(10)), s.Intn(100))
			}
		}
		a.MergeFrom(b)
		return a.MergeFrom(b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTrailBasics(t *testing.T) {
	tr := NewTrail(5)
	if tr.Anchored() || tr.Len() != 0 || tr.Current() != -1 || tr.Gateway() != -1 {
		t.Fatal("fresh trail state wrong")
	}
	tr.ResetAt(7)
	if !tr.Anchored() || tr.Gateway() != 7 || tr.Hops() != 0 || tr.Current() != 7 {
		t.Fatal("ResetAt state wrong")
	}
	tr.Extend(3)
	tr.Extend(4)
	if tr.Hops() != 2 || tr.Current() != 4 {
		t.Fatalf("hops=%d current=%d", tr.Hops(), tr.Current())
	}
	hop, ok := tr.NextHopBack()
	if !ok || hop != 3 {
		t.Fatalf("NextHopBack = %d,%v", hop, ok)
	}
}

func TestTrailCapacityMinimum(t *testing.T) {
	tr := NewTrail(0)
	if tr.Capacity() != 2 {
		t.Fatalf("capacity = %d, want raised to 2", tr.Capacity())
	}
}

func TestTrailOverflowLosesAnchor(t *testing.T) {
	tr := NewTrail(3)
	tr.ResetAt(0)
	tr.Extend(1)
	tr.Extend(2)
	if !tr.Anchored() {
		t.Fatal("should still be anchored at capacity")
	}
	tr.Extend(3) // drops gateway 0
	if tr.Anchored() {
		t.Fatal("anchor should be lost on overflow")
	}
	if tr.Hops() != -1 || tr.Gateway() != -1 {
		t.Fatal("unanchored trail should report no route")
	}
	if _, ok := tr.NextHopBack(); ok {
		t.Fatal("unanchored trail offered a next hop")
	}
	// Visiting a gateway re-anchors.
	tr.ResetAt(9)
	if !tr.Anchored() || tr.Hops() != 0 {
		t.Fatal("re-anchor failed")
	}
}

func TestTrailLoopCompaction(t *testing.T) {
	tr := NewTrail(10)
	tr.ResetAt(0)
	tr.Extend(1)
	tr.Extend(2)
	tr.Extend(1) // loop back to 1: trail becomes 0,1
	if tr.Hops() != 1 || tr.Current() != 1 {
		t.Fatalf("loop not compacted: hops=%d current=%d nodes=%v", tr.Hops(), tr.Current(), tr.Nodes())
	}
	// Revisiting the gateway compacts to just the gateway.
	tr.Extend(0)
	if tr.Hops() != 0 || !tr.Anchored() {
		t.Fatalf("gateway revisit not compacted: %v", tr.Nodes())
	}
}

func TestTrailBetterThan(t *testing.T) {
	short := NewTrail(5)
	short.ResetAt(0)
	short.Extend(1)
	long := NewTrail(5)
	long.ResetAt(0)
	long.Extend(2)
	long.Extend(3)
	unanchored := NewTrail(5)
	if !short.BetterThan(long) || long.BetterThan(short) {
		t.Fatal("hop comparison wrong")
	}
	if !short.BetterThan(unanchored) || unanchored.BetterThan(short) {
		t.Fatal("anchored should beat unanchored")
	}
	if unanchored.BetterThan(unanchored) {
		t.Fatal("unanchored never better")
	}
}

func TestTrailCopyFrom(t *testing.T) {
	src := NewTrail(10)
	src.ResetAt(0)
	for i := 1; i <= 4; i++ {
		src.Extend(NodeID(i))
	}
	dst := NewTrail(10)
	dst.CopyFrom(src)
	if dst.Hops() != 4 || dst.Gateway() != 0 || dst.Current() != 4 {
		t.Fatalf("copy wrong: %v", dst.Nodes())
	}
	// Copy into a smaller trail truncates and unanchors.
	small := NewTrail(3)
	small.CopyFrom(src)
	if small.Len() != 3 || small.Anchored() {
		t.Fatalf("truncating copy wrong: %v anchored=%v", small.Nodes(), small.Anchored())
	}
	// Copies are independent.
	dst.Extend(9)
	if src.Current() == 9 {
		t.Fatal("copy shares storage")
	}
}

func TestTrailNodesCopy(t *testing.T) {
	tr := NewTrail(5)
	tr.ResetAt(1)
	nodes := tr.Nodes()
	nodes[0] = 42
	if tr.Gateway() != 1 {
		t.Fatal("Nodes leaked internal storage")
	}
}

func TestMergeAllUnboundedMembersBecomeIdentical(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		g := 2 + s.Intn(4)
		ms := make([]*Visits, g)
		for i := range ms {
			ms[i] = NewVisits(0)
			for j := 0; j < s.Intn(20); j++ {
				ms[i].Record(NodeID(s.Intn(15)), s.Intn(50))
			}
		}
		MergeAll(ms)
		for u := NodeID(0); u < 15; u++ {
			s0, ok0 := ms[0].Last(u)
			for _, m := range ms[1:] {
				si, oki := m.Last(u)
				if ok0 != oki || (ok0 && s0 != si) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAllTakesUnionMax(t *testing.T) {
	a, b := NewVisits(0), NewVisits(0)
	a.Record(1, 10)
	a.Record(2, 5)
	b.Record(2, 8)
	b.Record(3, 1)
	changed := MergeAll([]*Visits{a, b})
	if s, _ := a.Last(2); s != 8 {
		t.Fatalf("union max wrong: %d", s)
	}
	if s, _ := b.Last(1); s != 10 {
		t.Fatalf("b missing a's record: %d", s)
	}
	// a gained node 3 and refreshed node 2; b gained node 1.
	if changed[0] != 2 || changed[1] != 1 {
		t.Fatalf("changed = %v", changed)
	}
}

func TestMergeAllRespectsCapacity(t *testing.T) {
	small := NewVisits(2)
	big := NewVisits(0)
	for i := 0; i < 10; i++ {
		big.Record(NodeID(i), i)
	}
	MergeAll([]*Visits{small, big})
	if small.Len() != 2 {
		t.Fatalf("bounded member holds %d", small.Len())
	}
	// It keeps the freshest records.
	for _, u := range []NodeID{8, 9} {
		if _, ok := small.Last(u); !ok {
			t.Fatalf("freshest record %d missing", u)
		}
	}
	if big.Len() != 10 {
		t.Fatalf("unbounded member lost records: %d", big.Len())
	}
}

func TestMergeAllIdempotent(t *testing.T) {
	a, b := NewVisits(0), NewVisits(0)
	a.Record(1, 5)
	b.Record(2, 7)
	MergeAll([]*Visits{a, b})
	changed := MergeAll([]*Visits{a, b})
	if changed[0] != 0 || changed[1] != 0 {
		t.Fatalf("second merge changed records: %v", changed)
	}
}

func TestTrailExtendAlwaysEndsAtArgument(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		tr := NewTrail(2 + s.Intn(10))
		tr.ResetAt(NodeID(s.Intn(5)))
		for i := 0; i < 40; i++ {
			v := NodeID(s.Intn(12))
			tr.Extend(v)
			if tr.Current() != v {
				return false
			}
			if tr.Len() > tr.Capacity() {
				return false
			}
			// Anchored trails always report hops = len-1.
			if tr.Anchored() && tr.Hops() != tr.Len()-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTrailNoDuplicateNodes(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		tr := NewTrail(16)
		tr.ResetAt(0)
		for i := 0; i < 60; i++ {
			tr.Extend(NodeID(s.Intn(10)))
		}
		seen := map[NodeID]bool{}
		for _, u := range tr.Nodes() {
			if seen[u] {
				return false
			}
			seen[u] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
