// Package knowledge implements the state a mobile agent carries: what it
// knows about the topology (first- and second-hand), which nodes it has
// visited and when, and — in the routing scenario — the trail back to the
// last gateway it saw.
package knowledge

import (
	"math/bits"

	"repro/internal/graph"
)

// NodeID aliases graph.NodeID.
type NodeID = graph.NodeID

// Source labels how a piece of knowledge was obtained.
type Source uint8

const (
	// Unknown means the agent knows nothing about the node.
	Unknown Source = iota
	// SecondHand knowledge was learned from another agent.
	SecondHand
	// FirstHand knowledge was experienced directly.
	FirstHand
)

// Topology is an agent's accumulating model of the network: for each node,
// the full out-neighbour list once learned, tagged first- or second-hand.
// The paper's "knowledge" metric counts learned nodes; "perfect knowledge"
// means every node's neighbour list is known.
//
// Alongside the per-node source tags, a known-set bitmask (one bit per
// node) mirrors "source != Unknown". Learning only ever sets bits, so
// set-difference questions — which records does a peer hold that I lack? —
// collapse to word-parallel scans over the masks, 64 nodes per AND-NOT.
type Topology struct {
	source []Source
	mask   []uint64 // bit u set ⇔ source[u] != Unknown
	adj    [][]NodeID
	known  int
}

// maskWords returns the number of 64-bit words covering n nodes.
func maskWords(n int) int { return (n + 63) / 64 }

// NewTopology returns empty knowledge over an n-node network.
func NewTopology(n int) *Topology {
	return &Topology{
		source: make([]Source, n),
		mask:   make([]uint64, maskWords(n)),
		adj:    make([][]NodeID, n),
	}
}

// Reset returns t to empty knowledge over an n-node network, reusing all
// of its storage (per-node neighbour lists keep their capacity). A reset
// topology behaves exactly like a fresh one, so pooled per-run agent state
// can recycle it without allocating.
func (t *Topology) Reset(n int) {
	if cap(t.source) < n {
		t.source = make([]Source, n)
	}
	t.source = t.source[:n]
	clear(t.source)
	words := maskWords(n)
	if cap(t.mask) < words {
		t.mask = make([]uint64, words)
	}
	t.mask = t.mask[:words]
	clear(t.mask)
	if cap(t.adj) < n {
		t.adj = make([][]NodeID, n)
	}
	t.adj = t.adj[:n]
	for u := range t.adj {
		if t.adj[u] != nil {
			t.adj[u] = t.adj[u][:0]
		}
	}
	t.known = 0
}

// N returns the network size this knowledge covers.
func (t *Topology) N() int { return len(t.source) }

// KnownCount returns how many nodes' neighbour lists are known.
func (t *Topology) KnownCount() int { return t.known }

// Fraction returns the fraction of nodes known, in [0, 1].
func (t *Topology) Fraction() float64 {
	if len(t.source) == 0 {
		return 1
	}
	return float64(t.known) / float64(len(t.source))
}

// Complete reports whether every node is known.
func (t *Topology) Complete() bool { return t.known == len(t.source) }

// SourceOf returns how node u's neighbourhood is known.
func (t *Topology) SourceOf(u NodeID) Source { return t.source[u] }

// Knows reports whether node u's neighbourhood is known at all.
func (t *Topology) Knows(u NodeID) bool { return t.source[u] != Unknown }

// KnownMask returns the known-set bitmask: bit u of word u/64 is set iff
// node u is known. The slice is owned by t and mutates as t learns;
// callers must not modify it. Meeting exchanges snapshot it to find the
// records a peer can contribute with word-parallel AND-NOT scans.
func (t *Topology) KnownMask() []uint64 { return t.mask }

// LearnFirstHand records node u's out-neighbour list as directly
// experienced. First-hand knowledge always overwrites second-hand (the
// network may have changed since the peer learned it).
func (t *Topology) LearnFirstHand(u NodeID, neighbors []NodeID) {
	if t.source[u] == Unknown {
		t.known++
		t.mask[u>>6] |= 1 << (uint(u) & 63)
	}
	t.source[u] = FirstHand
	t.adj[u] = append(t.adj[u][:0], neighbors...)
}

// LearnSecondHand records hearsay about node u. It never overwrites
// first-hand knowledge.
func (t *Topology) LearnSecondHand(u NodeID, neighbors []NodeID) {
	if t.source[u] == FirstHand {
		return
	}
	if t.source[u] == Unknown {
		t.known++
		t.mask[u>>6] |= 1 << (uint(u) & 63)
	}
	t.source[u] = SecondHand
	t.adj[u] = append(t.adj[u][:0], neighbors...)
}

// MergeFrom copies everything other knows that t does not, as second-hand
// knowledge. It returns the number of node records transferred, which the
// overhead accounting uses as the message size of the exchange. The
// transferable set comes from a word-parallel scan of the known masks
// (other &^ t), so a merge with nothing to move costs O(n/64) instead of
// O(n), and records are visited in ascending node order exactly as the
// per-node scan did.
func (t *Topology) MergeFrom(other *Topology) int {
	moved := 0
	for wi, ow := range other.mask {
		missing := ow &^ t.mask[wi]
		for missing != 0 {
			u := NodeID(wi<<6 + bits.TrailingZeros64(missing))
			missing &= missing - 1
			t.LearnSecondHand(u, other.adj[u])
			moved++
		}
	}
	return moved
}

// Neighbors returns the known out-neighbour list for u (nil or empty if
// unknown). Callers must not modify the returned slice.
func (t *Topology) Neighbors(u NodeID) []NodeID { return t.adj[u] }

// Reconstruct builds the directed graph this agent believes in. Unknown
// nodes contribute no edges.
func (t *Topology) Reconstruct() *graph.Directed {
	return t.ReconstructInto(graph.New(len(t.source)))
}

// ReconstructInto rebuilds the believed graph into g, reusing its storage
// (graph.Reset + SetOut), and returns g. A caller that reconstructs every
// measurement step can hold one scratch graph and pay zero steady-state
// allocations. Adjacency comes out in canonical sorted order.
func (t *Topology) ReconstructInto(g *graph.Directed) *graph.Directed {
	g.Reset(len(t.source))
	for u := range t.adj {
		if len(t.adj[u]) > 0 {
			g.SetOut(NodeID(u), t.adj[u])
		}
	}
	return g
}

// Clone returns a deep copy. All neighbour lists are packed into one flat
// backing array, so a clone costs five allocations however many nodes are
// known; the clone remains fully mutable (learning a longer list than a
// node's packed capacity migrates that list to its own storage).
func (t *Topology) Clone() *Topology {
	c := &Topology{
		source: append([]Source(nil), t.source...),
		mask:   append([]uint64(nil), t.mask...),
		adj:    make([][]NodeID, len(t.adj)),
		known:  t.known,
	}
	total := 0
	for u := range t.adj {
		total += len(t.adj[u])
	}
	flat := make([]NodeID, 0, total)
	for u := range t.adj {
		if t.adj[u] == nil {
			continue
		}
		start := len(flat)
		flat = append(flat, t.adj[u]...)
		c.adj[u] = flat[start:len(flat):len(flat)]
	}
	return c
}
