// Package knowledge implements the state a mobile agent carries: what it
// knows about the topology (first- and second-hand), which nodes it has
// visited and when, and — in the routing scenario — the trail back to the
// last gateway it saw.
package knowledge

import "repro/internal/graph"

// NodeID aliases graph.NodeID.
type NodeID = graph.NodeID

// Source labels how a piece of knowledge was obtained.
type Source uint8

const (
	// Unknown means the agent knows nothing about the node.
	Unknown Source = iota
	// SecondHand knowledge was learned from another agent.
	SecondHand
	// FirstHand knowledge was experienced directly.
	FirstHand
)

// Topology is an agent's accumulating model of the network: for each node,
// the full out-neighbour list once learned, tagged first- or second-hand.
// The paper's "knowledge" metric counts learned nodes; "perfect knowledge"
// means every node's neighbour list is known.
type Topology struct {
	source []Source
	adj    [][]NodeID
	known  int
}

// NewTopology returns empty knowledge over an n-node network.
func NewTopology(n int) *Topology {
	return &Topology{
		source: make([]Source, n),
		adj:    make([][]NodeID, n),
	}
}

// N returns the network size this knowledge covers.
func (t *Topology) N() int { return len(t.source) }

// KnownCount returns how many nodes' neighbour lists are known.
func (t *Topology) KnownCount() int { return t.known }

// Fraction returns the fraction of nodes known, in [0, 1].
func (t *Topology) Fraction() float64 {
	if len(t.source) == 0 {
		return 1
	}
	return float64(t.known) / float64(len(t.source))
}

// Complete reports whether every node is known.
func (t *Topology) Complete() bool { return t.known == len(t.source) }

// SourceOf returns how node u's neighbourhood is known.
func (t *Topology) SourceOf(u NodeID) Source { return t.source[u] }

// Knows reports whether node u's neighbourhood is known at all.
func (t *Topology) Knows(u NodeID) bool { return t.source[u] != Unknown }

// LearnFirstHand records node u's out-neighbour list as directly
// experienced. First-hand knowledge always overwrites second-hand (the
// network may have changed since the peer learned it).
func (t *Topology) LearnFirstHand(u NodeID, neighbors []NodeID) {
	if t.source[u] == Unknown {
		t.known++
	}
	t.source[u] = FirstHand
	t.adj[u] = append(t.adj[u][:0], neighbors...)
}

// LearnSecondHand records hearsay about node u. It never overwrites
// first-hand knowledge.
func (t *Topology) LearnSecondHand(u NodeID, neighbors []NodeID) {
	if t.source[u] == FirstHand {
		return
	}
	if t.source[u] == Unknown {
		t.known++
	}
	t.source[u] = SecondHand
	t.adj[u] = append(t.adj[u][:0], neighbors...)
}

// MergeFrom copies everything other knows that t does not, as second-hand
// knowledge. It returns the number of node records transferred, which the
// overhead accounting uses as the message size of the exchange.
func (t *Topology) MergeFrom(other *Topology) int {
	moved := 0
	for u := range other.source {
		if other.source[u] == Unknown || t.source[u] != Unknown {
			continue
		}
		t.LearnSecondHand(NodeID(u), other.adj[u])
		moved++
	}
	return moved
}

// Neighbors returns the known out-neighbour list for u (nil if unknown).
// Callers must not modify the returned slice.
func (t *Topology) Neighbors(u NodeID) []NodeID { return t.adj[u] }

// Reconstruct builds the directed graph this agent believes in. Unknown
// nodes contribute no edges.
func (t *Topology) Reconstruct() *graph.Directed {
	g := graph.New(len(t.source))
	for u := range t.adj {
		for _, v := range t.adj[u] {
			g.AddEdge(NodeID(u), v)
		}
	}
	return g
}

// Clone returns a deep copy.
func (t *Topology) Clone() *Topology {
	c := NewTopology(len(t.source))
	copy(c.source, t.source)
	for u := range t.adj {
		if t.adj[u] != nil {
			c.adj[u] = append([]NodeID(nil), t.adj[u]...)
		}
	}
	c.known = t.known
	return c
}
