package knowledge

// Trail is the routing-scenario history an agent carries: the walk from
// the most recently visited gateway to its current node, bounded by the
// agent's history size. While the trail is still anchored at a gateway it
// lets the agent deposit a route (gateway, next hop, hop count) into every
// node it lands on; once the gateway end falls off the bounded history the
// agent has nothing valid to offer until it sees a gateway again.
//
// Loops are compacted: re-entering a node already on the trail truncates
// back to that occurrence, so deposited routes never contain cycles.
type Trail struct {
	capacity int
	nodes    []NodeID // nodes[0] is the gateway while anchored
	anchored bool
}

// NewTrail returns a trail bounded to capacity nodes. capacity must be at
// least 2 to ever deposit a route (gateway + one hop); smaller values are
// raised to 2.
func NewTrail(capacity int) *Trail {
	if capacity < 2 {
		capacity = 2
	}
	return &Trail{capacity: capacity}
}

// Capacity returns the history bound.
func (t *Trail) Capacity() int { return t.capacity }

// Len returns the current trail length in nodes.
func (t *Trail) Len() int { return len(t.nodes) }

// Anchored reports whether the trail still starts at a gateway.
func (t *Trail) Anchored() bool { return t.anchored }

// Gateway returns the anchoring gateway. Valid only while Anchored.
func (t *Trail) Gateway() NodeID {
	if !t.anchored || len(t.nodes) == 0 {
		return -1
	}
	return t.nodes[0]
}

// Hops returns the hop distance from the gateway to the trail's current
// end, or -1 if the trail is not anchored.
func (t *Trail) Hops() int {
	if !t.anchored {
		return -1
	}
	return len(t.nodes) - 1
}

// Current returns the node at the end of the trail, or -1 if empty.
func (t *Trail) Current() NodeID {
	if len(t.nodes) == 0 {
		return -1
	}
	return t.nodes[len(t.nodes)-1]
}

// ResetAt restarts the trail at gateway gw (the agent just landed on it).
func (t *Trail) ResetAt(gw NodeID) {
	t.nodes = append(t.nodes[:0], gw)
	t.anchored = true
}

// Clear empties the trail and drops the anchor — the state of an agent
// that has never seen a gateway. Respawned agents (teleported off a dead
// node by fault handling) clear their trail: the recorded walk no longer
// connects to their new position, so deposits from it would be bogus.
func (t *Trail) Clear() {
	t.nodes = t.nodes[:0]
	t.anchored = false
}

// Extend records a move onto node v. Loops are compacted; when the bounded
// history overflows, the oldest node (the gateway end) is dropped and the
// trail becomes unanchored.
func (t *Trail) Extend(v NodeID) {
	for i, u := range t.nodes {
		if u == v {
			t.nodes = t.nodes[:i+1]
			return
		}
	}
	t.nodes = append(t.nodes, v)
	if len(t.nodes) > t.capacity {
		copy(t.nodes, t.nodes[1:])
		t.nodes = t.nodes[:len(t.nodes)-1]
		t.anchored = false
	}
}

// NextHopBack returns the node preceding the current one on the trail —
// the next hop a deposited route should use — and whether one exists.
func (t *Trail) NextHopBack() (NodeID, bool) {
	if !t.anchored || len(t.nodes) < 2 {
		return -1, false
	}
	return t.nodes[len(t.nodes)-2], true
}

// BetterThan reports whether t offers a strictly shorter anchored route
// than other.
func (t *Trail) BetterThan(other *Trail) bool {
	if !t.anchored {
		return false
	}
	if !other.anchored {
		return true
	}
	return t.Hops() < other.Hops()
}

// CopyFrom makes t an exact copy of other's contents (capacity keeps t's
// own bound; if other is longer than t's capacity the oldest nodes are
// dropped and the anchor is lost).
func (t *Trail) CopyFrom(other *Trail) {
	t.nodes = append(t.nodes[:0], other.nodes...)
	t.anchored = other.anchored
	for len(t.nodes) > t.capacity {
		copy(t.nodes, t.nodes[1:])
		t.nodes = t.nodes[:len(t.nodes)-1]
		t.anchored = false
	}
}

// At returns the i-th trail node, gateway end first. It panics if i is
// out of range.
func (t *Trail) At(i int) NodeID { return t.nodes[i] }

// Nodes returns a copy of the trail contents, gateway end first.
func (t *Trail) Nodes() []NodeID {
	return append([]NodeID(nil), t.nodes...)
}
