package knowledge

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// learnTape builds a topology over n nodes where every node u with
// u % stride == phase is known with a small neighbour list.
func learnTape(n, stride, phase int) *Topology {
	k := NewTopology(n)
	for u := phase; u < n; u += stride {
		k.LearnFirstHand(NodeID(u), []NodeID{NodeID((u + 1) % n), NodeID((u + 2) % n)})
	}
	return k
}

// TestKnownMaskTracksSources pins the bitset invariant: bit u of the
// known mask is set exactly when SourceOf(u) != Unknown, across a random
// mix of first- and second-hand learning and resets.
func TestKnownMaskTracksSources(t *testing.T) {
	s := rng.New(99)
	const n = 130 // spans three mask words, last one partial
	k := NewTopology(n)
	check := func() {
		t.Helper()
		mask := k.KnownMask()
		if len(mask) != (n+63)/64 {
			t.Fatalf("mask has %d words, want %d", len(mask), (n+63)/64)
		}
		count := 0
		for u := 0; u < n; u++ {
			bit := mask[u>>6]&(1<<(uint(u)&63)) != 0
			if bit != k.Knows(NodeID(u)) {
				t.Fatalf("node %d: mask bit %v but Knows %v", u, bit, k.Knows(NodeID(u)))
			}
			if k.Knows(NodeID(u)) {
				count++
			}
		}
		if count != k.KnownCount() {
			t.Fatalf("KnownCount %d, mask has %d set bits", k.KnownCount(), count)
		}
	}
	for op := 0; op < 500; op++ {
		u := NodeID(s.Intn(n))
		if s.Bool(0.5) {
			k.LearnFirstHand(u, []NodeID{NodeID((u + 1) % n)})
		} else {
			k.LearnSecondHand(u, []NodeID{NodeID((u + 2) % n)})
		}
		if op%97 == 0 {
			check()
		}
	}
	check()
	k.Reset(n)
	if k.KnownCount() != 0 {
		t.Fatalf("KnownCount %d after Reset, want 0", k.KnownCount())
	}
	check()
}

// TestResetBehavesLikeFresh checks a recycled topology is observationally
// identical to a freshly allocated one.
func TestResetBehavesLikeFresh(t *testing.T) {
	used := learnTape(100, 2, 0)
	used.Reset(100)
	fresh := NewTopology(100)
	src := learnTape(100, 3, 1)
	if got, want := used.MergeFrom(src), fresh.MergeFrom(src); got != want {
		t.Fatalf("MergeFrom moved %d records into reset topology, %d into fresh", got, want)
	}
	for u := 0; u < 100; u++ {
		if used.SourceOf(NodeID(u)) != fresh.SourceOf(NodeID(u)) {
			t.Fatalf("node %d: source %v (reset) vs %v (fresh)", u,
				used.SourceOf(NodeID(u)), fresh.SourceOf(NodeID(u)))
		}
	}
	// Resizing across Reset must work in both directions.
	used.Reset(40)
	if used.N() != 40 || used.KnownCount() != 0 {
		t.Fatalf("Reset(40): N=%d known=%d", used.N(), used.KnownCount())
	}
	used.Reset(256)
	if used.N() != 256 || used.Fraction() != 0 {
		t.Fatalf("Reset(256): N=%d fraction=%v", used.N(), used.Fraction())
	}
}

// TestMergeFromZeroAllocs enforces the word-parallel MergeFrom allocation
// budget: once the destination's per-node lists have storage for the
// working set, a Reset + full re-merge cycle allocates nothing.
func TestMergeFromZeroAllocs(t *testing.T) {
	const n = 300
	evens := learnTape(n, 2, 0)
	odds := learnTape(n, 2, 1)
	dst := NewTopology(n)
	dst.MergeFrom(evens)
	dst.MergeFrom(odds) // warm every per-node list
	avg := testing.AllocsPerRun(200, func() {
		dst.Reset(n)
		if dst.MergeFrom(evens)+dst.MergeFrom(odds) != n {
			t.Fatal("merge did not transfer every record")
		}
	})
	if avg > 0 {
		t.Fatalf("Reset+MergeFrom allocates %v per cycle, want 0", avg)
	}
	// A no-op merge (nothing transferable) must also be allocation-free.
	avg = testing.AllocsPerRun(200, func() {
		if dst.MergeFrom(evens) != 0 {
			t.Fatal("no-op merge moved records")
		}
	})
	if avg > 0 {
		t.Fatalf("no-op MergeFrom allocates %v per call, want 0", avg)
	}
}

// TestReconstructIntoZeroAllocs enforces the scratch-reconstruction
// budget: rebuilding the believed graph into a warmed caller-owned
// graph.Directed allocates nothing.
func TestReconstructIntoZeroAllocs(t *testing.T) {
	k := learnTape(200, 1, 0)
	g := graph.New(k.N())
	k.ReconstructInto(g) // warm the flat edge array
	avg := testing.AllocsPerRun(200, func() {
		if k.ReconstructInto(g).M() != 2*k.N() {
			t.Fatal("reconstruction lost edges")
		}
	})
	if avg > 0 {
		t.Fatalf("ReconstructInto allocates %v per call, want 0", avg)
	}
}

// TestCloneAllocBudget pins the flat-backed Clone cost: five allocations
// (struct, sources, mask, adjacency index, one packed edge array) no
// matter how many nodes are known.
func TestCloneAllocBudget(t *testing.T) {
	k := learnTape(400, 1, 0)
	avg := testing.AllocsPerRun(100, func() { _ = k.Clone() })
	if avg > 5 {
		t.Fatalf("Clone allocates %v times, want <= 5", avg)
	}
	// And the clone must still be correct and independent.
	c := k.Clone()
	c.LearnFirstHand(0, []NodeID{9, 8, 7, 6, 5})
	if len(k.Neighbors(0)) != 2 {
		t.Fatal("mutating a clone leaked into the original")
	}
}
