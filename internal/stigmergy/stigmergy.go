// Package stigmergy implements the paper's footprint mechanism: before an
// agent leaves a node it imprints its chosen next-hop there, and later
// agents (or the same agent coming back) treat recently imprinted
// neighbours as "someone already went that way" and prefer the others.
// This is the inverse of ant pheromone trails — marks repel instead of
// attract — and costs one table write per agent step.
package stigmergy

import "repro/internal/graph"

// NodeID aliases graph.NodeID.
type NodeID = graph.NodeID

// Mark is one footprint: at Step, some agent left the node toward Target.
type Mark struct {
	Target NodeID
	Step   int
}

// Board stores the footprints for every node in the network. Construct
// with NewBoard.
type Board struct {
	perNode int
	window  int // marks older than this many steps are ignored; 0 = forever
	marks   [][]Mark
}

// NewBoard returns a board for an n-node network keeping at most perNode
// recent marks per node (older marks are displaced). window limits how
// long a mark stays relevant: a mark left at step s influences queries at
// step q only while q-s < window; window 0 means marks never expire
// (displacement is then the only forgetting mechanism).
func NewBoard(n, perNode, window int) *Board {
	if perNode < 1 {
		perNode = 1
	}
	return &Board{
		perNode: perNode,
		window:  window,
		marks:   make([][]Mark, n),
	}
}

// PerNode returns the per-node mark capacity.
func (b *Board) PerNode() int { return b.perNode }

// Leave imprints "I am heading to target" on node at the given step.
func (b *Board) Leave(node, target NodeID, step int) {
	ms := b.marks[node]
	// Replace an existing mark for the same target instead of duplicating.
	for i := range ms {
		if ms[i].Target == target {
			ms[i].Step = step
			b.marks[node] = ms
			return
		}
	}
	if len(ms) >= b.perNode {
		// Displace the oldest mark (they are kept in arrival order, and
		// same-target refreshes do not reorder, so index of the minimum
		// step is the victim).
		victim := 0
		for i := 1; i < len(ms); i++ {
			if ms[i].Step < ms[victim].Step {
				victim = i
			}
		}
		ms = append(ms[:victim], ms[victim+1:]...)
	}
	b.marks[node] = append(ms, Mark{Target: target, Step: step})
}

// active reports whether a mark still influences decisions at step.
func (b *Board) active(m Mark, step int) bool {
	if b.window <= 0 {
		return true
	}
	return step-m.Step < b.window
}

// IsMarked reports whether node currently carries an active mark toward
// target.
func (b *Board) IsMarked(node, target NodeID, step int) bool {
	for _, m := range b.marks[node] {
		if m.Target == target && b.active(m, step) {
			return true
		}
	}
	return false
}

// Unmarked appends to dst the candidates that carry no active mark on
// node, and returns the extended slice. If every candidate is marked the
// result is empty — callers then fall back to the full candidate set.
func (b *Board) Unmarked(node NodeID, step int, candidates []NodeID, dst []NodeID) []NodeID {
	for _, c := range candidates {
		if !b.IsMarked(node, c, step) {
			dst = append(dst, c)
		}
	}
	return dst
}

// Marks returns a copy of the active marks on node at the given step.
func (b *Board) Marks(node NodeID, step int) []Mark {
	var out []Mark
	for _, m := range b.marks[node] {
		if b.active(m, step) {
			out = append(out, m)
		}
	}
	return out
}

// Reset clears every mark.
func (b *Board) Reset() {
	for i := range b.marks {
		b.marks[i] = b.marks[i][:0]
	}
}
