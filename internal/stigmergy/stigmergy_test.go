package stigmergy

import (
	"testing"
)

func TestLeaveAndIsMarked(t *testing.T) {
	b := NewBoard(5, 3, 0)
	if b.IsMarked(0, 1, 10) {
		t.Fatal("fresh board has marks")
	}
	b.Leave(0, 1, 10)
	if !b.IsMarked(0, 1, 11) {
		t.Fatal("mark not found")
	}
	if b.IsMarked(0, 2, 11) || b.IsMarked(1, 1, 11) {
		t.Fatal("mark leaked to wrong target/node")
	}
}

func TestSameTargetRefreshes(t *testing.T) {
	b := NewBoard(3, 2, 5)
	b.Leave(0, 1, 10)
	b.Leave(0, 1, 20) // refresh, not duplicate
	ms := b.Marks(0, 21)
	if len(ms) != 1 || ms[0].Step != 20 {
		t.Fatalf("marks = %v", ms)
	}
}

func TestPerNodeDisplacement(t *testing.T) {
	b := NewBoard(2, 2, 0)
	b.Leave(0, 10, 1)
	b.Leave(0, 11, 2)
	b.Leave(0, 12, 3) // displaces the oldest (target 10)
	if b.IsMarked(0, 10, 4) {
		t.Fatal("oldest mark survived displacement")
	}
	for _, target := range []NodeID{11, 12} {
		if !b.IsMarked(0, target, 4) {
			t.Fatalf("mark %d displaced wrongly", target)
		}
	}
}

func TestWindowExpiry(t *testing.T) {
	b := NewBoard(2, 4, 10)
	b.Leave(0, 5, 100)
	if !b.IsMarked(0, 5, 109) {
		t.Fatal("mark expired early")
	}
	if b.IsMarked(0, 5, 110) {
		t.Fatal("mark survived past window")
	}
}

func TestInfiniteWindow(t *testing.T) {
	b := NewBoard(2, 4, 0)
	b.Leave(0, 5, 1)
	if !b.IsMarked(0, 5, 1_000_000) {
		t.Fatal("window 0 should never expire")
	}
}

func TestUnmarked(t *testing.T) {
	b := NewBoard(3, 4, 0)
	b.Leave(0, 1, 5)
	b.Leave(0, 3, 6)
	got := b.Unmarked(0, 7, []NodeID{1, 2, 3, 4}, nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Unmarked = %v, want [2 4]", got)
	}
	// All marked → empty result signals the fallback.
	all := b.Unmarked(0, 7, []NodeID{1, 3}, nil)
	if len(all) != 0 {
		t.Fatalf("expected empty, got %v", all)
	}
}

func TestUnmarkedRespectsWindow(t *testing.T) {
	b := NewBoard(2, 4, 3)
	b.Leave(0, 1, 10)
	if got := b.Unmarked(0, 20, []NodeID{1}, nil); len(got) != 1 {
		t.Fatal("expired mark still filtering")
	}
}

func TestPerNodeMinimumOne(t *testing.T) {
	b := NewBoard(1, 0, 0)
	if b.PerNode() != 1 {
		t.Fatalf("PerNode = %d, want raised to 1", b.PerNode())
	}
	b.Leave(0, 2, 1)
	b.Leave(0, 3, 2)
	if b.IsMarked(0, 2, 3) {
		t.Fatal("capacity-1 board kept two marks")
	}
	if !b.IsMarked(0, 3, 3) {
		t.Fatal("newest mark lost")
	}
}

func TestReset(t *testing.T) {
	b := NewBoard(2, 2, 0)
	b.Leave(0, 1, 1)
	b.Leave(1, 0, 1)
	b.Reset()
	if b.IsMarked(0, 1, 2) || b.IsMarked(1, 0, 2) {
		t.Fatal("Reset left marks")
	}
}

func TestSingleAgentAvoidOwnPath(t *testing.T) {
	// The paper's single-agent case: the agent marks its next hop; when it
	// returns to the node the mark steers it elsewhere.
	b := NewBoard(4, 2, 0)
	b.Leave(0, 1, 1) // agent went 0→1
	candidates := []NodeID{1, 2, 3}
	free := b.Unmarked(0, 50, candidates, nil)
	for _, f := range free {
		if f == 1 {
			t.Fatal("previously taken path not filtered")
		}
	}
	if len(free) != 2 {
		t.Fatalf("free = %v", free)
	}
}

func BenchmarkLeaveAndQuery(b *testing.B) {
	board := NewBoard(300, 3, 0)
	candidates := []NodeID{1, 2, 3, 4, 5, 6, 7}
	var buf []NodeID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node := NodeID(i % 300)
		board.Leave(node, candidates[i%7], i)
		buf = board.Unmarked(node, i, candidates, buf[:0])
	}
}
