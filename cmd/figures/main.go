// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -fig 1            # reproduce Figure 1
//	figures -fig extA         # run the stigmergic-routing extension
//	figures -all              # everything, in order
//	figures -all -quick       # fast smoke pass (8 runs, smaller sweeps)
//	figures -all -expworkers 4 -runworkers 2   # parallel, same numbers
//	figures -fig 7 -tsv out/  # also write plottable TSV series
//
// Every experiment prints the regenerated results table and a set of
// "shape checks" comparing the outcome with the paper's qualitative
// claims.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	var (
		fig          = flag.String("fig", "", "figure to reproduce: 1..11, A..E (or fig1..extE); empty with -all for everything")
		all          = flag.Bool("all", false, "run every experiment")
		quick        = flag.Bool("quick", false, "fast smoke pass (fewer runs, smaller sweeps)")
		runs         = flag.Int("runs", 0, "independent runs per setting (default 40, paper-faithful)")
		seed         = flag.Uint64("seed", 1, "root seed")
		workers      = flag.Int("workers", runtime.NumCPU(), "simulation workers (1 = sequential)")
		runWorkers   = flag.Int("runworkers", 1, "concurrent independent runs per setting (results are identical at any value)")
		shardWorkers = flag.Int("shardworkers", 1, "concurrent spatial shards per world step (results are identical at any value)")
		expWorkers   = flag.Int("expworkers", 1, "concurrent experiments (reports still print in order)")
		tsvDir       = flag.String("tsv", "", "directory to write per-figure TSV series into")
		mdFile       = flag.String("md", "", "append Markdown sections for each experiment to this file")
		list         = flag.Bool("list", false, "list available experiments")
		fromLog      = flag.String("fromlog", "", "render curves from a recorded binary run log (routing/mapping -binlog) instead of simulating")
	)
	flag.Parse()

	if *fromLog != "" {
		if err := figuresFromLog(*fromLog, *tsvDir); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, experiments.Title(id))
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != "":
		ids = []string{experiments.NormalizeID(*fig)}
	default:
		fmt.Fprintln(os.Stderr, "figures: pass -fig <id> or -all (use -list to see experiments)")
		os.Exit(2)
	}

	cfg := experiments.Config{
		Runs:         *runs,
		Seed:         *seed,
		Workers:      *workers,
		RunWorkers:   *runWorkers,
		ShardWorkers: *shardWorkers,
		Quick:        *quick,
	}
	var md *os.File
	if *mdFile != "" {
		var err error
		md, err = os.Create(*mdFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		defer md.Close()
		fmt.Fprintf(md, "# Reproduction report (seed=%d)\n\n", cfg.Seed)
	}

	// Experiments are independent, so -expworkers runs them concurrently;
	// reports are parked per slot and flushed strictly in id order, so the
	// output (and any -md/-tsv files) is byte-identical at any worker
	// count. Each experiment's seeds derive from its own labels, so the
	// numbers themselves never depend on scheduling.
	type outcome struct {
		rep     experiments.Report
		elapsed time.Duration
	}
	results := make([]outcome, len(ids))
	done := make([]bool, len(ids))
	failed, emitted := 0, 0
	var emitErr error
	var mu sync.Mutex
	flush := func() {
		for emitted < len(ids) && done[emitted] {
			id, out := ids[emitted], results[emitted]
			emitted++
			fmt.Println(out.rep.String())
			fmt.Printf("(%s in %v)\n\n", id, out.elapsed.Round(time.Millisecond))
			for _, c := range out.rep.Checks {
				if !c.OK && !c.Known {
					failed++
				}
			}
			if md != nil {
				if _, err := md.WriteString(out.rep.Markdown()); err != nil && emitErr == nil {
					emitErr = err
				}
			}
			if *tsvDir != "" && len(out.rep.Series) > 0 {
				if err := os.MkdirAll(*tsvDir, 0o755); err != nil {
					if emitErr == nil {
						emitErr = err
					}
					continue
				}
				path := filepath.Join(*tsvDir, id+".tsv")
				if err := os.WriteFile(path, []byte(out.rep.TSV()), 0o644); err != nil {
					if emitErr == nil {
						emitErr = err
					}
					continue
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	err := parallel.NewPool(*expWorkers).Run(len(ids), func(i int) error {
		start := time.Now()
		rep, err := experiments.Run(ids[i], cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[i] = outcome{rep: rep, elapsed: time.Since(start)}
		done[i] = true
		flush()
		mu.Unlock()
		return nil
	})
	if err == nil {
		err = emitErr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d shape check(s) deviated from the paper\n", failed)
		os.Exit(1)
	}
}

// figuresFromLog renders measurement curves from a recorded binary log —
// the offline path: no simulation runs, only the event stream is read.
// With tsvDir set, the curves also land as one TSV (step + one column per
// measure) named after the log file.
func figuresFromLog(path, tsvDir string) error {
	lr, closeLog, err := trace.OpenLog(path)
	if err != nil {
		return err
	}
	defer closeLog()
	hdr := lr.Header()
	fmt.Printf("log: %s seed=%d confighash=%016x\n", path, hdr.BaseSeed, hdr.ConfigHash)
	if meta, err := replay.MetaFromHeader(hdr); err == nil {
		fmt.Printf("run: scenario=%s worldseed=%d seed=%d steps=%d faults=%q\n",
			meta.Scenario, meta.WorldSeed, meta.Seed, meta.Steps, meta.FaultPreset)
	}
	sum, err := replay.SummarizeLog(lr)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", sum)
	for _, name := range sum.MeasureNames {
		curve := sum.MeasuresByName[name]
		if len(curve) == 0 {
			continue
		}
		fmt.Printf("\n%s (%d points, final %.4f):\n%s\n",
			name, len(curve), curve[len(curve)-1], viz.Sparkline(curve, 75))
	}
	if len(sum.FaultSteps) > 0 {
		fmt.Printf("\nfault steps: %v\n", sum.FaultSteps)
	}
	if tsvDir == "" {
		return nil
	}
	if err := os.MkdirAll(tsvDir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("step")
	longest := 0
	for _, name := range sum.MeasureNames {
		b.WriteString("\t" + name)
		if n := len(sum.MeasuresByName[name]); n > longest {
			longest = n
		}
	}
	b.WriteByte('\n')
	for i := 0; i < longest; i++ {
		fmt.Fprintf(&b, "%d", i)
		for _, name := range sum.MeasureNames {
			curve := sum.MeasuresByName[name]
			if i < len(curve) {
				fmt.Fprintf(&b, "\t%.6f", curve[i])
			} else {
				b.WriteString("\t")
			}
		}
		b.WriteByte('\n')
	}
	base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	out := filepath.Join(tsvDir, base+".tsv")
	if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	return nil
}
