// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -fig 1            # reproduce Figure 1
//	figures -fig extA         # run the stigmergic-routing extension
//	figures -all              # everything, in order
//	figures -all -quick       # fast smoke pass (8 runs, smaller sweeps)
//	figures -all -expworkers 4 -runworkers 2   # parallel, same numbers
//	figures -fig 7 -tsv out/  # also write plottable TSV series
//
// Every experiment prints the regenerated results table and a set of
// "shape checks" comparing the outcome with the paper's qualitative
// claims.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	var (
		fig          = flag.String("fig", "", "figure to reproduce: 1..11, A..E (or fig1..extE); empty with -all for everything")
		all          = flag.Bool("all", false, "run every experiment")
		quick        = flag.Bool("quick", false, "fast smoke pass (fewer runs, smaller sweeps)")
		runs         = flag.Int("runs", 0, "independent runs per setting (default 40, paper-faithful)")
		seed         = flag.Uint64("seed", 1, "root seed")
		workers      = flag.Int("workers", runtime.NumCPU(), "simulation workers (1 = sequential)")
		runWorkers   = flag.Int("runworkers", 1, "concurrent independent runs per setting (results are identical at any value)")
		shardWorkers = flag.Int("shardworkers", 1, "concurrent spatial shards per world step (results are identical at any value)")
		expWorkers   = flag.Int("expworkers", 1, "concurrent experiments (reports still print in order)")
		tsvDir       = flag.String("tsv", "", "directory to write per-figure TSV series into")
		mdFile       = flag.String("md", "", "append Markdown sections for each experiment to this file")
		list         = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, experiments.Title(id))
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != "":
		ids = []string{experiments.NormalizeID(*fig)}
	default:
		fmt.Fprintln(os.Stderr, "figures: pass -fig <id> or -all (use -list to see experiments)")
		os.Exit(2)
	}

	cfg := experiments.Config{
		Runs:         *runs,
		Seed:         *seed,
		Workers:      *workers,
		RunWorkers:   *runWorkers,
		ShardWorkers: *shardWorkers,
		Quick:        *quick,
	}
	var md *os.File
	if *mdFile != "" {
		var err error
		md, err = os.Create(*mdFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		defer md.Close()
		fmt.Fprintf(md, "# Reproduction report (seed=%d)\n\n", cfg.Seed)
	}

	// Experiments are independent, so -expworkers runs them concurrently;
	// reports are parked per slot and flushed strictly in id order, so the
	// output (and any -md/-tsv files) is byte-identical at any worker
	// count. Each experiment's seeds derive from its own labels, so the
	// numbers themselves never depend on scheduling.
	type outcome struct {
		rep     experiments.Report
		elapsed time.Duration
	}
	results := make([]outcome, len(ids))
	done := make([]bool, len(ids))
	failed, emitted := 0, 0
	var emitErr error
	var mu sync.Mutex
	flush := func() {
		for emitted < len(ids) && done[emitted] {
			id, out := ids[emitted], results[emitted]
			emitted++
			fmt.Println(out.rep.String())
			fmt.Printf("(%s in %v)\n\n", id, out.elapsed.Round(time.Millisecond))
			for _, c := range out.rep.Checks {
				if !c.OK && !c.Known {
					failed++
				}
			}
			if md != nil {
				if _, err := md.WriteString(out.rep.Markdown()); err != nil && emitErr == nil {
					emitErr = err
				}
			}
			if *tsvDir != "" && len(out.rep.Series) > 0 {
				if err := os.MkdirAll(*tsvDir, 0o755); err != nil {
					if emitErr == nil {
						emitErr = err
					}
					continue
				}
				path := filepath.Join(*tsvDir, id+".tsv")
				if err := os.WriteFile(path, []byte(out.rep.TSV()), 0o644); err != nil {
					if emitErr == nil {
						emitErr = err
					}
					continue
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	err := parallel.NewPool(*expWorkers).Run(len(ids), func(i int) error {
		start := time.Now()
		rep, err := experiments.Run(ids[i], cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[i] = outcome{rep: rep, elapsed: time.Since(start)}
		done[i] = true
		flush()
		mu.Unlock()
		return nil
	})
	if err == nil {
		err = emitErr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d shape check(s) deviated from the paper\n", failed)
		os.Exit(1)
	}
}
