// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -fig 1            # reproduce Figure 1
//	figures -fig extA         # run the stigmergic-routing extension
//	figures -all              # everything, in order
//	figures -all -quick       # fast smoke pass (8 runs, smaller sweeps)
//	figures -fig 7 -tsv out/  # also write plottable TSV series
//
// Every experiment prints the regenerated results table and a set of
// "shape checks" comparing the outcome with the paper's qualitative
// claims.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to reproduce: 1..11, A..E (or fig1..extE); empty with -all for everything")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "fast smoke pass (fewer runs, smaller sweeps)")
		runs    = flag.Int("runs", 0, "independent runs per setting (default 40, paper-faithful)")
		seed    = flag.Uint64("seed", 1, "root seed")
		workers = flag.Int("workers", runtime.NumCPU(), "simulation workers (1 = sequential)")
		tsvDir  = flag.String("tsv", "", "directory to write per-figure TSV series into")
		mdFile  = flag.String("md", "", "append Markdown sections for each experiment to this file")
		list    = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, experiments.Title(id))
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != "":
		ids = []string{experiments.NormalizeID(*fig)}
	default:
		fmt.Fprintln(os.Stderr, "figures: pass -fig <id> or -all (use -list to see experiments)")
		os.Exit(2)
	}

	cfg := experiments.Config{
		Runs:    *runs,
		Seed:    *seed,
		Workers: *workers,
		Quick:   *quick,
	}
	var md *os.File
	if *mdFile != "" {
		var err error
		md, err = os.Create(*mdFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		defer md.Close()
		fmt.Fprintf(md, "# Reproduction report (seed=%d)\n\n", cfg.Seed)
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		for _, c := range rep.Checks {
			if !c.OK && !c.Known {
				failed++
			}
		}
		if md != nil {
			if _, err := md.WriteString(rep.Markdown()); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
		if *tsvDir != "" && len(rep.Series) > 0 {
			if err := os.MkdirAll(*tsvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*tsvDir, id+".tsv")
			if err := os.WriteFile(path, []byte(rep.TSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d shape check(s) deviated from the paper\n", failed)
		os.Exit(1)
	}
}
