// Command mapping runs the network-mapping scenario with full parameter
// control — the knob-level companion to `figures`, which reproduces the
// paper's exact settings.
//
// Examples:
//
//	mapping -agents 15 -policy conscientious -cooperate -stigmergy
//	mapping -agents 1  -policy random -runs 10 -curve
//	mapping -nodes 100 -edges 700 -agents 8 -policy super -epsilon 0.1
//	mapping -agents 15 -faults churn                 # map while nodes die and revive
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/network"
	"repro/internal/replay"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		nodes        = flag.Int("nodes", 300, "network size")
		edges        = flag.Int("edges", 2164, "target directed edge count")
		arena        = flag.Float64("arena", 100, "arena side length")
		spread       = flag.Float64("spread", 0.25, "radio range spread (0 = homogeneous)")
		agents       = flag.Int("agents", 15, "agent population")
		policy       = flag.String("policy", "conscientious", "random | conscientious | super")
		cooperate    = flag.Bool("cooperate", true, "exchange topology knowledge when agents meet")
		stigmergy    = flag.Bool("stigmergy", false, "leave and respect footprints")
		epsilon      = flag.Float64("epsilon", 0, "probability of a random move (Minar's fix)")
		memory       = flag.Int("memory", 0, "visit-memory bound (0 = unbounded)")
		runs         = flag.Int("runs", 40, "independent runs")
		seed         = flag.Uint64("seed", 1, "root seed (network and placements)")
		maxSteps     = flag.Int("maxsteps", 200000, "per-run step budget")
		faultPreset  = flag.String("faults", "", "fault preset to inject (churn|gwfail|partition|degrade|blackout)")
		workers      = flag.Int("workers", runtime.NumCPU(), "simulation workers")
		runWorkers   = flag.Int("runworkers", 1, "concurrent independent runs (aggregates are identical at any value)")
		shardWorkers = flag.Int("shardworkers", 1, "concurrent spatial shards per world step (topologies are identical at any value)")
		curve        = flag.Bool("curve", false, "print the averaged knowledge curve as TSV")
		traceFile    = flag.String("trace", "", "write a JSONL event trace of ONE run to this file")
		binlogFile   = flag.String("binlog", "", "write a binary event+world log of ONE run to this file (replayable with cmd/replay)")
		anchorEvery  = flag.Int("anchorevery", network.DefaultAnchorEvery, "snapshot anchor cadence in the binary log")
		metricsFile  = flag.String("metrics", "", "dump a metrics snapshot to this file (Prometheus text; .json for JSON)")
		httpAddr     = flag.String("http", "", "serve /metrics, expvar and pprof on this address (e.g. :6060) while running")
	)
	flag.Parse()

	kind, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapping:", err)
		os.Exit(2)
	}
	spec := netgen.Spec{
		N: *nodes, TargetEdges: *edges, ArenaSide: *arena,
		RangeSpread: *spread, RequireStrong: true,
	}
	w, err := netgen.Generate(spec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapping:", err)
		os.Exit(1)
	}
	fmt.Println("network:", netgen.Describe(w))

	sc := mapping.Scenario{
		Agents:        *agents,
		Kind:          kind,
		Cooperate:     *cooperate,
		Stigmergy:     *stigmergy,
		Epsilon:       *epsilon,
		VisitCapacity: *memory,
		MaxSteps:      *maxSteps,
		Workers:       *workers,
		RunWorkers:    *runWorkers,
		ShardWorkers:  *shardWorkers,
	}
	if *faultPreset != "" {
		// Cap the preset horizon well below the step budget: mapping runs
		// finish in hundreds of steps, so a schedule spread over the whole
		// budget would fire almost every event after the map is complete.
		horizon := *maxSteps
		if horizon > 2000 {
			horizon = 2000
		}
		sched, err := faults.Preset(*faultPreset, w.N(), w.Gateways(), horizon, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapping:", err)
			os.Exit(2)
		}
		sc.Faults = sched
		fmt.Printf("faults: preset=%s events=%d\n", *faultPreset, sched.Len())
	}
	var reg *metrics.Registry
	if *metricsFile != "" || *httpAddr != "" {
		reg = metrics.NewRegistry()
		sc.Metrics = reg
	}
	if *httpAddr != "" {
		addr, err := metrics.StartServer(*httpAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapping:", err)
			os.Exit(1)
		}
		fmt.Printf("serving metrics/expvar/pprof on http://%s\n", addr)
	}
	if *traceFile != "" {
		if err := traceOneRun(*traceFile, w, sc, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "mapping:", err)
			os.Exit(1)
		}
		fmt.Printf("trace of one run written to %s\n", *traceFile)
	}
	if *binlogFile != "" {
		meta := replay.RunMeta{
			Scenario:    "mapping",
			Spec:        spec,
			WorldSeed:   *seed,
			Seed:        *seed,
			Steps:       *maxSteps,
			AnchorEvery: *anchorEvery,
		}
		n, err := recordOneRun(*binlogFile, meta, w, sc, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapping:", err)
			os.Exit(1)
		}
		fmt.Printf("binary log of one run written to %s (%d events)\n", *binlogFile, n)
	}
	// Record the world trajectory once and replay it for every run —
	// bit-identical to stepping each run's world live, and every run gets
	// its own world, so replication parallelises safely and fault
	// schedules (which fire at absolute world steps) stay aligned.
	build := func() (*network.World, error) { return netgen.Generate(spec, *seed) }
	agg, err := mapping.RunManyCached(build, sc, *runs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapping:", err)
		os.Exit(1)
	}

	fmt.Printf("agents=%d policy=%s cooperate=%v stigmergy=%v epsilon=%v runs=%d\n",
		*agents, kind, *cooperate, *stigmergy, *epsilon, *runs)
	fmt.Printf("finishing time: %s\n", agg.Finish)
	fmt.Printf("completed runs: %d/%d\n", agg.Completed, agg.Runs)
	fmt.Printf("overhead: moves=%d meetings=%d topo-records=%d marks=%d\n",
		agg.Overhead.Moves, agg.Overhead.Meetings,
		agg.Overhead.TopoRecordsReceived, agg.Overhead.MarksLeft)
	if *faultPreset != "" {
		fmt.Printf("stranded agents respawned: %d\n", agg.Stranded)
	}
	if *metricsFile != "" {
		if err := metrics.WriteFile(reg, *metricsFile); err != nil {
			fmt.Fprintln(os.Stderr, "mapping:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsFile)
	}

	if *curve {
		fmt.Println("\nstep\tavg-knowledge\tslowest-agent")
		avg := stats.Downsample(agg.AvgCurve, downsampleStride(len(agg.AvgCurve)))
		min := stats.Downsample(agg.AvgMinCurve, downsampleStride(len(agg.AvgMinCurve)))
		stride := downsampleStride(len(agg.AvgCurve))
		for i := range avg {
			m := 0.0
			if i < len(min) {
				m = min[i]
			}
			fmt.Printf("%d\t%.4f\t%.4f\n", i*stride, avg[i], m)
		}
	}
}

// downsampleStride keeps curve printouts under ~200 lines.
func downsampleStride(n int) int {
	stride := n / 200
	if stride < 1 {
		stride = 1
	}
	return stride
}

// recordOneRun executes a single sequential run recorded into a binary
// log at path (snapshot anchors + world deltas + events), returning the
// event count. The sidecar index lands at path+".idx".
func recordOneRun(path string, meta replay.RunMeta, w *network.World, sc mapping.Scenario, seed uint64) (int, error) {
	hdr, err := replay.NewLogHeader(meta)
	if err != nil {
		return 0, err
	}
	lw, err := trace.CreateLog(path, hdr)
	if err != nil {
		return 0, err
	}
	sc.Tracer = lw
	sc.AnchorEvery = meta.AnchorEvery
	sc.Workers = 1 // sequential: reproducible log
	if _, err := mapping.Run(w, sc, seed); err != nil {
		lw.Close()
		return 0, err
	}
	return lw.Count(), lw.Close()
}

// traceOneRun executes a single sequential run with tracing into path.
func traceOneRun(path string, w *network.World, sc mapping.Scenario, seed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw := trace.NewWriter(f)
	sc.Tracer = tw
	sc.Workers = 1 // sequential: reproducible trace
	if _, err := mapping.Run(w, sc, seed); err != nil {
		return err
	}
	// Close surfaces any encode error Emit swallowed during the run.
	return tw.Close()
}

func parsePolicy(s string) (core.PolicyKind, error) {
	switch s {
	case "random":
		return core.PolicyRandom, nil
	case "conscientious":
		return core.PolicyConscientious, nil
	case "super", "super-conscientious":
		return core.PolicySuperConscientious, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want random, conscientious, super)", s)
	}
}
